// tac3d_serve: sweep-as-a-service front door.
//
// Server mode (default) boots a ServiceServer on loopback and serves
// until SIGTERM/SIGINT, which triggers a graceful drain: admissions
// stop, accepted sweeps finish, every client gets kDrainComplete, then
// the process exits.
//
//   ./build/examples/tac3d_serve [--port N] [--budget CORES]
//
// Client subcommands (CI smoke tests and quick probes):
//
//   ./build/examples/tac3d_serve --what-if HOST PORT   # run one scenario
//   ./build/examples/tac3d_serve --status  HOST PORT   # server counters
//   ./build/examples/tac3d_serve --drain   HOST PORT   # graceful shutdown
#include <csignal>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>
#include <thread>

#include <unistd.h>

#include "common/table.hpp"
#include "common/units.hpp"
#include "obs/metrics.hpp"
#include "service/client.hpp"
#include "service/server.hpp"

namespace {

// Self-pipe for async-signal-safe shutdown: the handler only write()s.
int g_signal_pipe[2] = {-1, -1};

void on_signal(int) {
  const char byte = 1;
  [[maybe_unused]] ssize_t n = ::write(g_signal_pipe[1], &byte, 1);
}

int serve(int port, int budget) {
  using namespace tac3d::service;

  ServerOptions opts;
  opts.port = port;
  opts.service.core_budget = budget;
  ServiceServer server(opts);
  server.start();
  std::cout << "tac3d_serve listening on 127.0.0.1:" << server.port()
            << " (core budget " << server.service().core_budget() << ")"
            << std::endl;

  if (::pipe(g_signal_pipe) != 0) {
    std::cerr << "pipe() failed\n";
    return 1;
  }
  std::signal(SIGTERM, on_signal);
  std::signal(SIGINT, on_signal);
  std::thread watcher([&server] {
    char byte = 0;
    while (::read(g_signal_pipe[0], &byte, 1) < 0 && errno == EINTR) {
    }
    if (!server.running()) return;  // already stopped (drain over the wire)
    std::cout << "tac3d_serve: shutdown signal, draining..." << std::endl;
    server.request_drain();
  });

  server.wait();
  const ServiceStatus st = server.service().status();
  std::cout << "tac3d_serve: drained; " << st.scenarios_completed
            << " scenarios completed, " << st.scenarios_failed << " failed, "
            << st.scenarios_cancelled << " cancelled" << std::endl;

  // Unblock the watcher if the drain came over the wire instead.
  on_signal(0);
  watcher.join();
  server.stop();
  return 0;
}

int what_if(const std::string& host, int port) {
  using namespace tac3d;
  service::ServiceClient client;
  client.connect(host, port);

  sim::Scenario s;
  s.tiers = 2;
  s.policy = sim::PolicyKind::kLcFuzzy;
  s.workload = power::WorkloadKind::kWebServer;
  s.trace_seconds = 20;
  s.grid = thermal::GridOptions{10, 10};

  const auto result = client.what_if(s);
  if (!result.ok) {
    std::cerr << "what-if failed: " << result.error << "\n";
    return 1;
  }
  std::cout << "what-if ok: peak "
            << fmt(kelvin_to_celsius(result.metrics.peak_temp), 2)
            << " C, hot-time fraction "
            << fmt(result.metrics.hotspot_frac_any(), 4) << ", energy "
            << fmt(result.metrics.system_energy(), 1)
            << " J" << std::endl;
  return 0;
}

int status(const std::string& host, int port) {
  using namespace tac3d;
  using namespace tac3d::service;
  ServiceClient client;
  client.connect(host, port);
  const protocol::StatusMsg st = client.query_status();
  std::cout << "jobs: " << st.active_jobs << " active, " << st.queued_jobs
            << " queued; scenarios: " << st.scenarios_completed
            << " completed, " << st.scenarios_failed << " failed, "
            << st.scenarios_cancelled << " cancelled; cores: "
            << st.cores_in_use << "/" << st.core_budget
            << (st.draining ? " (draining)" : "") << "\n"
            << "bank: trace " << st.bank_trace_hits << "/"
            << st.bank_trace_hits + st.bank_trace_misses << ", model "
            << st.bank_model_hits << "/"
            << st.bank_model_hits + st.bank_model_misses << ", steady "
            << st.bank_steady_hits << "/"
            << st.bank_steady_hits + st.bank_steady_misses << " hits"
            << std::endl;

  // Live registry snapshot over the same connection: queue depth and
  // the latency histograms the StatusMsg cannot carry.
  const protocol::MetricsMsg metrics = client.query_metrics();
  for (const protocol::MetricEntryMsg& e : metrics.entries) {
    if (e.kind != protocol::MetricEntryMsg::kHistogram) continue;
    if (e.name != "service/ttfr_ms" && e.name != "service/admission_wait_ms")
      continue;
    const obs::Histogram h =
        obs::Histogram::from_parts(e.count, e.value, e.min, e.max, e.buckets);
    std::cout << e.name << ": n=" << h.count() << " mean="
              << fmt(h.mean(), 2) << " p50=" << fmt(h.quantile(0.5), 2)
              << " p99=" << fmt(h.quantile(0.99), 2) << " max="
              << fmt(h.max(), 2) << " ms" << std::endl;
  }
  for (const protocol::MetricEntryMsg& e : metrics.entries) {
    if (e.kind == protocol::MetricEntryMsg::kGauge &&
        e.name == "service/queue_depth") {
      std::cout << "queue depth: " << e.value << std::endl;
    }
  }
  return 0;
}

int drain(const std::string& host, int port) {
  using namespace tac3d::service;
  ServiceClient client;
  client.connect(host, port);
  client.request_drain();
  const protocol::DrainCompleteMsg done = client.wait_drain_complete();
  std::cout << "drain complete after " << done.scenarios_finished
            << " scenarios" << std::endl;
  return 0;
}

int usage() {
  std::cerr << "usage:\n"
               "  tac3d_serve [--port N] [--budget CORES]\n"
               "  tac3d_serve --what-if HOST PORT\n"
               "  tac3d_serve --status  HOST PORT\n"
               "  tac3d_serve --drain   HOST PORT\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  int port = 0;
  int budget = 0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const bool has_two = i + 2 < argc;
    if (arg == "--what-if" && has_two) {
      return what_if(argv[i + 1], std::atoi(argv[i + 2]));
    }
    if (arg == "--status" && has_two) {
      return status(argv[i + 1], std::atoi(argv[i + 2]));
    }
    if (arg == "--drain" && has_two) {
      return drain(argv[i + 1], std::atoi(argv[i + 2]));
    }
    if (arg == "--port" && i + 1 < argc) {
      port = std::atoi(argv[++i]);
    } else if (arg == "--budget" && i + 1 < argc) {
      budget = std::atoi(argv[++i]);
    } else {
      return usage();
    }
  }
  try {
    return serve(port, budget);
  } catch (const std::exception& e) {
    std::cerr << "tac3d_serve: " << e.what() << "\n";
    return 1;
  }
}
