// Policy explorer: run any of the thermal-management policies on any
// workload/stack combination and print the resulting thermal/energy/
// performance metrics — or sweep the paper's whole policy/stack matrix
// in parallel.
//
// Usage:
//   policy_explorer [tiers] [policy] [workload] [seconds] [--timeline]
//     tiers:    2 | 4                       (default 2)
//     policy:   ac_lb | ac_tdvfs | lc_lb | lc_tdvfs | lc_fuzzy
//               (default lc_fuzzy)
//     workload: web | db | mmedia | mixed | maxutil | idle (default web)
//     seconds:  trace length               (default 120)
//     --timeline: drive the run step by step (SimulationSession) and
//               print a 10 s trajectory of temperature/pump state
//   policy_explorer sweep [seconds]
//     run the paper's seven stack x policy configurations on every
//     workload through the parallel sweep runner (TAC3D_JOBS pins the
//     worker count) and print the sorted result table.
#include <algorithm>
#include <cstdlib>
#include <iostream>
#include <limits>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/table.hpp"
#include "common/units.hpp"
#include "sim/bank.hpp"
#include "sim/sweep.hpp"

namespace {

using namespace tac3d;

sim::PolicyKind parse_policy(const std::string& s) {
  if (s == "ac_lb") return sim::PolicyKind::kAcLb;
  if (s == "ac_tdvfs") return sim::PolicyKind::kAcTdvfsLb;
  if (s == "lc_lb") return sim::PolicyKind::kLcLb;
  if (s == "lc_tdvfs") return sim::PolicyKind::kLcTdvfsLb;
  if (s == "lc_fuzzy") return sim::PolicyKind::kLcFuzzy;
  throw InvalidArgument("unknown policy: " + s);
}

power::WorkloadKind parse_workload(const std::string& s) {
  using W = power::WorkloadKind;
  for (const auto w : {W::kWebServer, W::kDatabase, W::kMultimedia,
                       W::kMixed, W::kMaxUtil, W::kIdle}) {
    if (power::workload_name(w) == s) return w;
  }
  throw InvalidArgument("unknown workload: " + s);
}

void print_metrics(const sim::SimMetrics& m) {
  TextTable t;
  t.set_header({"Metric", "Value"});
  t.add_row({"Peak core temperature",
             fmt(kelvin_to_celsius(m.peak_temp), 1) + " C"});
  t.add_row({"Hot-spot time (any core > 85 C)",
             fmt_pct(m.hotspot_frac_any())});
  t.add_row({"Hot-spot time (per-core average)",
             fmt_pct(m.hotspot_frac_avg_core())});
  t.add_row({"Chip energy", fmt(m.chip_energy, 0) + " J"});
  t.add_row({"Pump energy", fmt(m.pump_energy, 0) + " J"});
  t.add_row({"System energy", fmt(m.system_energy(), 0) + " J"});
  t.add_row({"Mean system power",
             fmt(m.system_energy() / m.duration, 1) + " W"});
  t.add_row({"Average flow (fraction of max)",
             fmt(m.avg_flow_fraction, 2)});
  t.add_row({"Performance degradation", fmt_pct(m.perf_degradation(), 3)});
  t.add_row({"Thread migrations", std::to_string(m.migrations)});
  std::cout << t;
}

/// Step the session manually and print a trajectory every 10 simulated
/// seconds: the incremental API the sweep runner builds on.
void run_timeline(const sim::Scenario& spec) {
  sim::ScenarioInstance inst = sim::instantiate(spec);
  sim::SimulationSession session = inst.session();

  TextTable t;
  t.set_header({"t [s]", "hottest core [C]", "pump level", "hot time [s]",
                "system E [J]"});
  const double horizon = session.total_steps() * session.config().control_dt;
  for (double mark = 10.0; !session.done(); mark += 10.0) {
    session.run_until(std::min(mark, horizon));
    const auto m = session.metrics();
    t.add_row({fmt(session.time(), 0),
               fmt(kelvin_to_celsius(session.max_core_temp()), 1),
               std::to_string(session.pump_level()), fmt(m.any_hot_time, 1),
               fmt(m.system_energy(), 0)});
  }
  std::cout << t << '\n';
  print_metrics(session.metrics());
}

int run_matrix_sweep(int seconds) {
  using W = power::WorkloadKind;
  const auto scenarios =
      sim::ScenarioMatrix::paper_fig67()
          .workloads({W::kWebServer, W::kDatabase, W::kMultimedia, W::kMixed,
                      W::kMaxUtil})
          .trace_seconds(seconds)
          .build();
  std::cout << "Sweeping " << scenarios.size() << " scenarios...\n\n";

  auto report = sim::run_sweep(scenarios, {
      .jobs = 0,
      .on_result = [](const sim::SweepResult& r) {
        std::cout << "  [" << (r.index + 1) << "] " << r.scenario.label
                  << (r.ok() ? "" : "  FAILED: " + r.error) << '\n';
      }});
  std::cout << '\n';

  // Failed scenarios carry zero metrics; rank them last, not first.
  report.sort_by([](const sim::SweepResult& r) {
    return r.ok() ? r.metrics.system_energy()
                  : std::numeric_limits<double>::infinity();
  });
  std::cout << report.table() << '\n'
            << "Sorted by system energy; " << report.size()
            << " scenarios in " << fmt(report.wall_seconds(), 1) << " s on "
            << report.jobs_used() << " worker(s).\n";

  // Where the time went: construction vs stepping (a warm ScenarioBank
  // drives the setup share toward zero), how the bank's cache tiers
  // behaved, and how many scenarios rode in batched lockstep jobs.
  std::cout << "Setup " << fmt(report.setup_seconds_total(), 2)
            << " s + stepping " << fmt(report.stepping_seconds_total(), 2)
            << " s (setup fraction " << fmt_pct(report.setup_fraction())
            << ").\n";
  if (const auto& bank = report.bank()) {
    const sim::BankCounters c = bank->counters();
    std::cout << "Bank hits/misses: trace " << c.trace_hits << "/"
              << c.trace_misses << ", model " << c.model_hits << "/"
              << c.model_misses << ", steady " << c.steady_hits << "/"
              << c.steady_misses
              << " (hand the same bank to another sweep to keep them "
                 "warm).\n";
  }
  int batched = 0, max_lanes = 0;
  for (const auto& r : report.results()) {
    if (r.batch_lanes > 1) {
      ++batched;
      max_lanes = std::max(max_lanes, r.batch_lanes);
    }
  }
  if (batched > 0) {
    std::cout << "Batched lockstep stepping: " << batched << " of "
              << report.size() << " scenarios in batches up to " << max_lanes
              << " lanes wide (chunk width " << report.batch_width_used()
              << ", " << report.batch_compaction_events()
              << " mid-solve lane compactions).\n";
  }
  return report.all_ok() ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  if (!args.empty() && args[0] == "sweep") {
    return run_matrix_sweep(args.size() > 1 ? std::atoi(args[1].c_str())
                                            : 120);
  }

  bool timeline = false;
  std::vector<std::string> positional;
  for (const auto& a : args) {
    if (a == "--timeline") {
      timeline = true;
    } else {
      positional.push_back(a);
    }
  }

  sim::Scenario spec;
  spec.tiers = positional.size() > 0 ? std::atoi(positional[0].c_str()) : 2;
  spec.policy =
      positional.size() > 1 ? parse_policy(positional[1])
                            : sim::PolicyKind::kLcFuzzy;
  spec.workload = positional.size() > 2 ? parse_workload(positional[2])
                                        : power::WorkloadKind::kWebServer;
  spec.trace_seconds =
      positional.size() > 3 ? std::atoi(positional[3].c_str()) : 120;

  std::cout << "Running " << spec.tiers << "-tier "
            << sim::policy_label(spec.policy) << " on '"
            << power::workload_name(spec.workload) << "' for "
            << spec.trace_seconds << " s of trace...\n\n";

  if (timeline) {
    run_timeline(spec);
  } else {
    print_metrics(sim::run_scenario(spec));
  }
  return 0;
}
