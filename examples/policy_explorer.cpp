// Policy explorer: run any of the paper's four thermal-management
// policies on any workload/stack combination and print the resulting
// thermal/energy/performance metrics.
//
// Usage:
//   policy_explorer [tiers] [policy] [workload] [seconds]
//     tiers:    2 | 4                       (default 2)
//     policy:   ac_lb | ac_tdvfs | lc_lb | lc_fuzzy   (default lc_fuzzy)
//     workload: web | db | mmedia | mixed | maxutil | idle (default web)
//     seconds:  trace length               (default 120)
#include <cstdlib>
#include <iostream>
#include <string>

#include "common/error.hpp"
#include "common/table.hpp"
#include "common/units.hpp"
#include "sim/experiment.hpp"

namespace {

using namespace tac3d;

sim::PolicyKind parse_policy(const std::string& s) {
  if (s == "ac_lb") return sim::PolicyKind::kAcLb;
  if (s == "ac_tdvfs") return sim::PolicyKind::kAcTdvfsLb;
  if (s == "lc_lb") return sim::PolicyKind::kLcLb;
  if (s == "lc_fuzzy") return sim::PolicyKind::kLcFuzzy;
  throw InvalidArgument("unknown policy: " + s);
}

power::WorkloadKind parse_workload(const std::string& s) {
  using W = power::WorkloadKind;
  for (const auto w : {W::kWebServer, W::kDatabase, W::kMultimedia,
                       W::kMixed, W::kMaxUtil, W::kIdle}) {
    if (power::workload_name(w) == s) return w;
  }
  throw InvalidArgument("unknown workload: " + s);
}

}  // namespace

int main(int argc, char** argv) {
  sim::ExperimentSpec spec;
  spec.tiers = argc > 1 ? std::atoi(argv[1]) : 2;
  spec.policy = argc > 2 ? parse_policy(argv[2]) : sim::PolicyKind::kLcFuzzy;
  spec.workload = argc > 3 ? parse_workload(argv[3])
                           : power::WorkloadKind::kWebServer;
  spec.trace_seconds = argc > 4 ? std::atoi(argv[4]) : 120;

  std::cout << "Running " << spec.tiers << "-tier "
            << sim::policy_label(spec.policy) << " on '"
            << power::workload_name(spec.workload) << "' for "
            << spec.trace_seconds << " s of trace...\n\n";

  const auto m = sim::run_experiment(spec);

  TextTable t;
  t.set_header({"Metric", "Value"});
  t.add_row({"Peak core temperature",
             fmt(kelvin_to_celsius(m.peak_temp), 1) + " C"});
  t.add_row({"Hot-spot time (any core > 85 C)",
             fmt_pct(m.hotspot_frac_any())});
  t.add_row({"Hot-spot time (per-core average)",
             fmt_pct(m.hotspot_frac_avg_core())});
  t.add_row({"Chip energy", fmt(m.chip_energy, 0) + " J"});
  t.add_row({"Pump energy", fmt(m.pump_energy, 0) + " J"});
  t.add_row({"System energy", fmt(m.system_energy(), 0) + " J"});
  t.add_row({"Mean system power",
             fmt(m.system_energy() / m.duration, 1) + " W"});
  t.add_row({"Average flow (fraction of max)",
             fmt(m.avg_flow_fraction, 2)});
  t.add_row({"Performance degradation", fmt_pct(m.perf_degradation(), 3)});
  t.add_row({"Thread migrations", std::to_string(m.migrations)});
  std::cout << t;
  return 0;
}
