// Two-phase design exploration: sweep refrigerant, mass flux and heat
// flux for an inter-tier-scale micro-evaporator, tracking outlet
// quality, dry-out margin, saturation-temperature drop and pumping
// power — the feasibility questions Section III raises for scaling
// flow boiling down to inter-tier cavities.
#include <iostream>

#include "common/error.hpp"
#include "common/table.hpp"
#include "common/units.hpp"
#include "twophase/channel_march.hpp"
#include "twophase/refrigerant.hpp"

int main() {
  using namespace tac3d;
  using namespace tac3d::twophase;

  // Inter-tier-like channel (wider than Table I single-phase channels,
  // as the paper notes two-phase methods "must be scaled down to the
  // 50 um height ... permissible in between the TSVs").
  const microchannel::RectDuct duct{um(85.0), um(200.0)};
  const double pitch = um(170.0);
  const double length = mm(10.0);
  const int steps = 60;

  std::cout << "Channel: " << fmt(duct.width * 1e6, 0) << " x "
            << fmt(duct.height * 1e6, 0) << " um, pitch "
            << fmt(pitch * 1e6, 0) << " um, length "
            << fmt(length * 1e3, 0) << " mm, inlet Tsat 30 C\n\n";

  for (const Refrigerant* ref :
       {&Refrigerant::r134a(), &Refrigerant::r236fa(),
        &Refrigerant::r245fa()}) {
    TextTable t;
    t.set_header({"G [kg/m2s]", "q [W/cm2]", "x_out", "dry-out",
                  "Tsat drop [K]", "dP [kPa]", "peak wall [C]",
                  "pump/ch [uW]"});
    for (const double g_flux : {200.0, 400.0, 800.0}) {
      for (const double q_cm2 : {20.0, 50.0, 100.0}) {
        ChannelMarchInput in;
        in.refrigerant = ref;
        in.duct = duct;
        in.length = length;
        in.steps = steps;
        in.mass_flow = g_flux * duct.area();
        in.inlet_pressure =
            ref->saturation_pressure(celsius_to_kelvin(30.0));
        in.heated_width = pitch;
        in.heat_flux.assign(steps, w_per_cm2(q_cm2));
        try {
          const auto res = march_channel(in);
          double peak_wall = 0.0;
          for (double tw : res.t_wall) peak_wall = std::max(peak_wall, tw);
          const double q_vol =
              in.mass_flow / ref->liquid_density(celsius_to_kelvin(30.0));
          t.add_row({fmt(g_flux, 0), fmt(q_cm2, 0),
                     fmt(res.quality.back(), 2),
                     res.dryout ? "YES @" + fmt(res.dryout_position * 1e3, 1) +
                                      "mm"
                                : "no",
                     fmt(celsius_to_kelvin(30.0) - res.outlet_t_sat, 2),
                     fmt(res.pressure_drop / 1e3, 1),
                     fmt(kelvin_to_celsius(peak_wall), 1),
                     fmt(res.pressure_drop * q_vol * 1e6, 1)});
        } catch (const Error& e) {
          t.add_row({fmt(g_flux, 0), fmt(q_cm2, 0), "-", "out of range",
                     "-", "-", "-", "-"});
        }
      }
    }
    std::cout << "=== " << ref->name() << " ===\n" << t << '\n';
  }

  std::cout
      << "Reading the table: pick the lowest G whose row stays clear of\n"
         "dry-out at your heat flux — that minimizes pumping power while\n"
         "the falling Tsat keeps the wall temperature nearly uniform.\n";
  return 0;
}
