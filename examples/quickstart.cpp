// Quickstart: build a 2-tier liquid-cooled 3D MPSoC, run a steady-state
// and a short transient simulation, and read the per-element sensors.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <iostream>
#include <vector>

#include "arch/mpsoc.hpp"
#include "common/table.hpp"
#include "common/units.hpp"
#include "microchannel/pump.hpp"
#include "thermal/transient.hpp"

int main() {
  using namespace tac3d;

  // 1. Build the stack: UltraSPARC T1 split over two tiers (cores on
  //    the bottom tier, L2 caches on top) with a water micro-channel
  //    cavity above each tier — the paper's Table I geometry.
  arch::Mpsoc3D soc(arch::Mpsoc3D::Options{
      /*tiers=*/2, arch::CoolingKind::kLiquidCooled,
      thermal::GridOptions{16, 16}, arch::NiagaraConfig::paper()});

  std::cout << "Stack: " << soc.model().grid().spec().name << " with "
            << soc.model().n_cavities() << " cavities, "
            << soc.model().node_count() << " thermal nodes\n\n";

  // 2. Set the coolant flow: the pump has 16 discrete settings between
  //    10 and 32.3 ml/min per cavity (Table I).
  const auto pump = microchannel::PumpModel::table1();
  soc.model().set_all_flows(pump.flow_per_cavity(pump.levels() - 1));

  // 3. Apply a workload: all eight cores fully busy at the nominal VF
  //    point. element_powers() adds temperature-dependent leakage, so
  //    pass the previous temperature field (empty = reference temp).
  std::vector<arch::CoreState> cores(soc.n_cores(),
                                     {1.0, soc.chip().vf.max_level()});
  soc.model().set_element_powers(soc.element_powers(cores, {}));
  std::cout << "Chip power: " << fmt(soc.model().total_power(), 1)
            << " W, pump power: "
            << fmt(pump.power(pump.levels() - 1, soc.model().n_cavities()), 2)
            << " W\n\n";

  // 4. Steady state.
  const auto steady = soc.model().steady_state();
  TextTable t;
  t.set_header({"Element", "T max [C]", "T avg [C]"});
  for (int e = 0; e < soc.model().grid().element_count(); ++e) {
    t.add_row({soc.model().grid().element(e).name,
               fmt(kelvin_to_celsius(soc.model().element_max(steady, e)), 1),
               fmt(kelvin_to_celsius(soc.model().element_avg(steady, e)), 1)});
  }
  std::cout << "Steady state at maximum flow:\n" << t << '\n';
  std::cout << "Coolant outlet: cavity0 "
            << fmt(kelvin_to_celsius(
                       soc.model().cavity_outlet_temp(steady, 0)), 1)
            << " C, heat removed "
            << fmt(soc.model().advective_heat_removal(steady, 0) +
                       soc.model().advective_heat_removal(steady, 1), 1)
            << " W\n\n";

  // 5. Transient: drop the pump to its lowest setting and watch the
  //    hottest core heat up over 10 seconds of backward-Euler stepping.
  thermal::TransientSolver sim(soc.model(), /*dt=*/0.1);
  sim.set_state(steady);
  soc.model().set_all_flows(pump.flow_per_cavity(0));
  std::cout << "Pump dropped to " << fmt(to_ml_per_min(pump.flow_per_cavity(0)), 1)
            << " ml/min per cavity:\n";
  for (int s = 0; s <= 100; ++s) {
    sim.step();
    if (s % 20 == 0) {
      std::cout << "  t=" << fmt(sim.time(), 1) << " s  hottest core "
                << fmt(kelvin_to_celsius(
                           soc.max_core_temp(sim.temperatures())), 2)
                << " C\n";
    }
  }
  return 0;
}
