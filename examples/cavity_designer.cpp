// Cavity designer: compare the paper's single-phase heat-transfer
// structures (Section II-C) for a tier with one strong hot spot —
// uniform straight channels, hot-spot-aware width modulation, and
// circular pin-fin arrays (in-line vs staggered) — at the same pump
// operating point.
#include <iostream>
#include <vector>

#include "common/table.hpp"
#include "common/units.hpp"
#include "microchannel/coolant.hpp"
#include "microchannel/modulation.hpp"
#include "microchannel/pinfin.hpp"

int main() {
  using namespace tac3d;
  using namespace tac3d::microchannel;

  const Coolant fluid = water(celsius_to_kelvin(27.0));
  const double k_si = 130.0;
  const double t_in = celsius_to_kelvin(27.0);
  const double t_limit = celsius_to_kelvin(85.0);

  // A 10 x 10 mm tier, 40 W/cm2 background with a 2 mm 250 W/cm2 hot
  // spot at 60-80% of the channel length; Table I cavity: 100 um tall,
  // 150 um pitch, 66 channels, 32.3 ml/min.
  const int n = 20;
  std::vector<double> seg_len(n, mm(10.0) / n);
  std::vector<double> q(n, w_per_cm2(40.0));
  for (int i = 12; i < 16; ++i) q[i] = w_per_cm2(250.0);
  const double height = um(100.0);
  const double pitch = um(150.0);
  const double q_cavity = ml_per_min(32.3);
  const double q_channel = q_cavity / 66.0;

  std::cout << "Tier: 10x10 mm, 40 W/cm2 background, 250 W/cm2 hot spot;\n"
               "cavity flow "
            << fmt(to_ml_per_min(q_cavity), 1) << " ml/min\n\n";

  TextTable t;
  t.set_header({"Design", "Peak wall T [C]", "dP [kPa]",
                "Pump power (cavity) [mW]", "Holds 85C?"});

  auto report_channel = [&](const std::string& name,
                            const ModulatedChannel& chan) {
    const auto r = evaluate_modulated_channel(chan, q, pitch, q_channel,
                                              t_in, fluid, k_si);
    t.add_row({name, fmt(kelvin_to_celsius(r.peak_wall_temperature), 1),
               fmt(r.pressure_drop / 1e3, 1),
               fmt(r.pumping_power * 66.0 * 1e3, 2),
               r.peak_wall_temperature <= t_limit ? "yes" : "NO"});
  };

  report_channel("channels, uniform 50 um",
                 ModulatedChannel{seg_len,
                                  std::vector<double>(n, um(50.0)), height});
  report_channel("channels, uniform 30 um",
                 ModulatedChannel{seg_len,
                                  std::vector<double>(n, um(30.0)), height});
  report_channel(
      "channels, width-modulated",
      design_width_profile(seg_len, q, height, pitch, um(30.0), um(50.0),
                           q_channel, t_in, t_limit, fluid, k_si));

  // Pin-fin cavities: same footprint and flow; thermal budget check via
  // total conductance against the hot-spot superheat requirement.
  for (const auto arr : {PinArrangement::kInline, PinArrangement::kStaggered}) {
    PinFinArray geom;
    geom.pin_diameter = um(50.0);
    geom.transverse_pitch = um(150.0);
    geom.longitudinal_pitch = um(150.0);
    geom.height = height;
    geom.footprint_width = mm(10.0);
    geom.footprint_length = mm(10.0);
    geom.arrangement = arr;
    const auto perf = evaluate_pin_fin(geom, q_cavity, fluid, k_si);
    // Local check at the hot spot: conductance share over the hot-spot
    // footprint vs its flux, plus the bulk fluid rise up to that point.
    const double g_per_area = perf.thermal_conductance /
                              (geom.footprint_width * geom.footprint_length);
    const double superheat = w_per_cm2(250.0) / g_per_area * 1.0;
    const double mcp =
        fluid.density * fluid.specific_heat * q_cavity;
    const double heat_upstream = w_per_cm2(40.0) * mm(10.0) * mm(6.0) +
                                 0.0;  // background up to the hot spot
    const double t_fluid = t_in + heat_upstream / mcp;
    const double peak = t_fluid + superheat;
    t.add_row({std::string("pin fins, circular ") +
                   (arr == PinArrangement::kInline ? "in-line" : "staggered"),
               fmt(kelvin_to_celsius(peak), 1),
               fmt(perf.pressure_drop / 1e3, 1),
               fmt(perf.pumping_power * 1e3, 2),
               peak <= t_limit ? "yes" : "NO"});
  }
  std::cout << t << '\n';

  std::cout << "Design guidance (Section II-C): prefer the lowest-pressure-"
               "drop\nstructure that holds the limit — width modulation "
               "beats uniformly\nnarrow channels; in-line pins beat "
               "staggered on pumping power.\n";
  return 0;
}
