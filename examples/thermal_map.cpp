// Thermal map export: run the 2-tier stack at a chosen pump level and
// dump per-layer temperature fields plus the element summary as CSV —
// ready for plotting (e.g. pandas/matplotlib heat maps).
//
// Usage:
//   thermal_map [pump_level 0..15] [layer]        # CSV to stdout
//   thermal_map --elements [pump_level]           # element summary CSV
//   thermal_map --stack                            # dump the stack file
#include <cstdlib>
#include <iostream>
#include <algorithm>
#include <string>

#include "arch/mpsoc.hpp"
#include "common/table.hpp"
#include "common/units.hpp"
#include "microchannel/pump.hpp"
#include "thermal/stackup_io.hpp"

int main(int argc, char** argv) {
  using namespace tac3d;

  arch::Mpsoc3D soc(arch::Mpsoc3D::Options{
      2, arch::CoolingKind::kLiquidCooled, thermal::GridOptions{24, 24},
      arch::NiagaraConfig::paper()});

  const std::string first = argc > 1 ? argv[1] : "";
  if (first == "--stack") {
    std::cout << thermal::stack_to_text(soc.model().grid().spec());
    return 0;
  }

  const auto pump = microchannel::PumpModel::table1(16);
  const bool elements = first == "--elements";
  const int level_arg = elements ? (argc > 2 ? std::atoi(argv[2]) : 15)
                                 : (argc > 1 ? std::atoi(argv[1]) : 15);
  const int level = std::clamp(level_arg, 0, pump.levels() - 1);
  soc.model().set_all_flows(pump.flow_per_cavity(level));

  // Full-power workload, leakage-consistent steady state.
  std::vector<arch::CoreState> cores(soc.n_cores(),
                                     {1.0, soc.chip().vf.max_level()});
  const std::vector<double> temps = soc.leakage_consistent_steady(cores);

  if (elements) {
    thermal::write_element_csv(soc.model(), temps, std::cout);
    return 0;
  }

  const int layer = argc > 2 ? std::atoi(argv[2]) : 0;  // 0 = core tier
  std::cerr << "Layer " << layer << " ("
            << soc.model().grid().layer(layer).name << ") at pump level "
            << level << " ("
            << fmt(to_ml_per_min(pump.flow_per_cavity(level)), 1)
            << " ml/min per cavity)\n";
  thermal::write_layer_csv(soc.model(), temps, layer, std::cout);
  return 0;
}
