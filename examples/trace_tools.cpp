// Trace tools: generate the synthetic workload traces used by the
// evaluation (web server, database, multimedia, mixed, max-utilization)
// and write them to CSV for inspection or external replay.
//
// Usage:
//   trace_tools [workload] [threads] [seconds] [seed] > trace.csv
//   trace_tools --stats                # print summary of all workloads
#include <cstdlib>
#include <iostream>
#include <string>

#include "common/table.hpp"
#include "power/workloads.hpp"

int main(int argc, char** argv) {
  using namespace tac3d;
  using W = power::WorkloadKind;

  if (argc > 1 && std::string(argv[1]) == "--stats") {
    TextTable t;
    t.set_header({"Workload", "Mean util", "Peak util", "Thread0 mean"});
    for (const auto w : {W::kWebServer, W::kDatabase, W::kMultimedia,
                         W::kMixed, W::kMaxUtil, W::kIdle}) {
      const auto tr = power::generate_workload(w, 32, 180, 1);
      t.add_row({tr.name(), fmt(tr.mean(), 3), fmt(tr.peak(), 3),
                 fmt(tr.thread_mean(0), 3)});
    }
    std::cout << t;
    return 0;
  }

  const std::string name = argc > 1 ? argv[1] : "web";
  const int threads = argc > 2 ? std::atoi(argv[2]) : 32;
  const int seconds = argc > 3 ? std::atoi(argv[3]) : 180;
  const std::uint64_t seed = argc > 4 ? std::strtoull(argv[4], nullptr, 10)
                                      : 1;

  W kind = W::kWebServer;
  for (const auto w : {W::kWebServer, W::kDatabase, W::kMultimedia,
                       W::kMixed, W::kMaxUtil, W::kIdle}) {
    if (power::workload_name(w) == name) kind = w;
  }
  const auto trace = power::generate_workload(kind, threads, seconds, seed);
  trace.to_csv(std::cout);
  return 0;
}
