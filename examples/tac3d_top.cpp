// tac3d_top: live introspection of a running tac3d_serve.
//
// Queries the server's metrics registry over the wire protocol
// (kQueryMetrics) and renders it as a table: queue depth and core
// gauges, per-tier bank hit rates, solver/predictor counters, and the
// latency histograms (TTFR, admission wait) with interpolated
// quantiles.
//
//   ./build/tac3d_top HOST PORT              # one snapshot
//   ./build/tac3d_top HOST PORT --watch N    # re-query every N seconds
//
// In watch mode counters are also shown as deltas per interval, so a
// busy server reads like `top`: scenarios/s, hits/s.
#include <chrono>
#include <cstdlib>
#include <iostream>
#include <map>
#include <string>
#include <thread>

#include "common/table.hpp"
#include "obs/metrics.hpp"
#include "service/client.hpp"

namespace {

using tac3d::fmt;
namespace proto = tac3d::service::protocol;

struct View {
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, tac3d::obs::Histogram> histograms;
};

View parse(const proto::MetricsMsg& msg) {
  View v;
  for (const proto::MetricEntryMsg& e : msg.entries) {
    switch (e.kind) {
      case proto::MetricEntryMsg::kCounter:
        v.counters[e.name] = e.count;
        break;
      case proto::MetricEntryMsg::kGauge:
        v.gauges[e.name] = e.value;
        break;
      case proto::MetricEntryMsg::kHistogram:
        v.histograms[e.name] = tac3d::obs::Histogram::from_parts(
            e.count, e.value, e.min, e.max, e.buckets);
        break;
      default:
        break;
    }
  }
  return v;
}

double rate_of(const View& now, const View& prev, const std::string& name,
               double dt) {
  if (dt <= 0.0) return 0.0;
  const auto a = now.counters.find(name);
  const auto b = prev.counters.find(name);
  if (a == now.counters.end() || b == prev.counters.end()) return 0.0;
  return static_cast<double>(a->second - b->second) / dt;
}

void hit_rate_row(const View& v, const std::string& tier) {
  const auto hit = v.counters.find("bank/" + tier + "_hits");
  const auto miss = v.counters.find("bank/" + tier + "_misses");
  if (hit == v.counters.end() && miss == v.counters.end()) return;
  const std::uint64_t h = hit == v.counters.end() ? 0 : hit->second;
  const std::uint64_t m = miss == v.counters.end() ? 0 : miss->second;
  const std::uint64_t total = h + m;
  std::cout << "  " << tier << ": " << h << "/" << total;
  if (total > 0) {
    std::cout << " (" << fmt(100.0 * static_cast<double>(h) /
                                 static_cast<double>(total),
                             1)
              << "% warm)";
  }
  std::cout << "\n";
}

void render(const View& v, const View* prev, double dt) {
  std::cout << "-- gauges --------------------------------------\n";
  for (const auto& [name, value] : v.gauges) {
    std::cout << "  " << name << ": " << fmt(value, 0) << "\n";
  }
  std::cout << "-- bank hit rates ------------------------------\n";
  hit_rate_row(v, "trace");
  hit_rate_row(v, "model");
  hit_rate_row(v, "steady");
  std::cout << "-- histograms ----------------------------------\n";
  for (const auto& [name, h] : v.histograms) {
    if (h.count() == 0) continue;
    std::cout << "  " << name << ": n=" << h.count() << " mean="
              << fmt(h.mean(), 3) << " p50=" << fmt(h.quantile(0.5), 3)
              << " p90=" << fmt(h.quantile(0.9), 3) << " p99="
              << fmt(h.quantile(0.99), 3) << " max=" << fmt(h.max(), 3)
              << "\n";
  }
  std::cout << "-- counters ------------------------------------\n";
  for (const auto& [name, value] : v.counters) {
    std::cout << "  " << name << ": " << value;
    if (prev != nullptr) {
      std::cout << "  (" << fmt(rate_of(v, *prev, name, dt), 1) << "/s)";
    }
    std::cout << "\n";
  }
  std::cout.flush();
}

int usage() {
  std::cerr << "usage: tac3d_top HOST PORT [--watch SECONDS]\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) return usage();
  const std::string host = argv[1];
  const int port = std::atoi(argv[2]);
  double watch = 0.0;
  for (int i = 3; i < argc; ++i) {
    if (std::string(argv[i]) == "--watch" && i + 1 < argc) {
      watch = std::atof(argv[++i]);
    } else {
      return usage();
    }
  }

  try {
    tac3d::service::ServiceClient client;
    client.connect(host, port);
    View prev = parse(client.query_metrics());
    render(prev, nullptr, 0.0);
    while (watch > 0.0) {
      std::this_thread::sleep_for(std::chrono::duration<double>(watch));
      const View now = parse(client.query_metrics());
      std::cout << "\n";
      render(now, &prev, watch);
      prev = now;
    }
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "tac3d_top: " << e.what() << "\n";
    return 1;
  }
}
