// Tests of the two-phase substrate: refrigerant property fits, boiling
// correlations, the channel march and the Fig. 8 micro-evaporator.
#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "common/units.hpp"
#include "twophase/boiling.hpp"
#include "twophase/channel_march.hpp"
#include "twophase/evaporator.hpp"
#include "twophase/refrigerant.hpp"

namespace tac3d::twophase {
namespace {

class RefrigerantSweep
    : public ::testing::TestWithParam<const Refrigerant*> {};

TEST_P(RefrigerantSweep, SaturationCurveIsMonotone) {
  const Refrigerant& r = *GetParam();
  double prev = 0.0;
  for (double tc = 0.0; tc <= 60.0; tc += 5.0) {
    const double p = r.saturation_pressure(celsius_to_kelvin(tc));
    EXPECT_GT(p, prev);
    prev = p;
  }
}

TEST_P(RefrigerantSweep, SaturationInverseRoundTrips) {
  const Refrigerant& r = *GetParam();
  for (double tc = 5.0; tc <= 55.0; tc += 10.0) {
    const double t = celsius_to_kelvin(tc);
    EXPECT_NEAR(r.saturation_temperature(r.saturation_pressure(t)), t, 1e-6);
  }
}

TEST_P(RefrigerantSweep, LatentHeatFallsWithTemperature) {
  const Refrigerant& r = *GetParam();
  EXPECT_GT(r.latent_heat(celsius_to_kelvin(10.0)),
            r.latent_heat(celsius_to_kelvin(50.0)));
  EXPECT_GT(r.latent_heat(celsius_to_kelvin(30.0)), 1e5);  // > 100 kJ/kg
}

TEST_P(RefrigerantSweep, DensitiesAndTransportArephysical) {
  const Refrigerant& r = *GetParam();
  const double t = celsius_to_kelvin(30.0);
  EXPECT_GT(r.liquid_density(t), 20.0 * r.vapor_density(t));
  EXPECT_GT(r.liquid_viscosity(t), r.vapor_viscosity(t));
  EXPECT_GT(r.liquid_specific_heat(t), 1000.0);
  EXPECT_GT(r.liquid_conductivity(t), 0.05);
  EXPECT_LT(r.reduced_pressure(r.saturation_pressure(t)), 0.3);
}

TEST_P(RefrigerantSweep, PropertyQueriesOutsideFitThrow) {
  const Refrigerant& r = *GetParam();
  EXPECT_THROW(r.saturation_pressure(celsius_to_kelvin(90.0)),
               ModelRangeError);
}

TEST_P(RefrigerantSweep, LiquidCoolantAdapterIsConsistent) {
  const Refrigerant& r = *GetParam();
  const double t = celsius_to_kelvin(30.0);
  const auto c = r.liquid_coolant(t);
  EXPECT_DOUBLE_EQ(c.density, r.liquid_density(t));
  EXPECT_DOUBLE_EQ(c.conductivity, r.liquid_conductivity(t));
}

INSTANTIATE_TEST_SUITE_P(AllRefrigerants, RefrigerantSweep,
                         ::testing::Values(&Refrigerant::r134a(),
                                           &Refrigerant::r236fa(),
                                           &Refrigerant::r245fa()));

TEST(Refrigerant, R134aLatentHeatMatchesPaperQuote) {
  // "about 150 kJ/kg of R-134a" (Section III, at warm conditions).
  const double hfg = Refrigerant::r134a().latent_heat(celsius_to_kelvin(50.0));
  EXPECT_NEAR(hfg, 150e3, 10e3);
}

TEST(Refrigerant, R245faSaturation30CIsAboveAmbientPressure) {
  // R245fa at 30 C sits near 1.8 bar: low-pressure, suitable for chips.
  const double p =
      Refrigerant::r245fa().saturation_pressure(celsius_to_kelvin(30.0));
  EXPECT_NEAR(to_bar(p), 1.78, 0.1);
}

// --- boiling correlations ------------------------------------------------

TEST(Cooper, KnownScalingWithHeatFlux) {
  const auto& r = Refrigerant::r134a();
  const double p = r.saturation_pressure(celsius_to_kelvin(30.0));
  const double h1 = cooper_pool_boiling_htc(r, p, 1e4);
  const double h2 = cooper_pool_boiling_htc(r, p, 2e4);
  EXPECT_NEAR(h2 / h1, std::pow(2.0, 0.67), 1e-6);
}

TEST(Cooper, ZeroFluxZeroTransferAndGuards) {
  const auto& r = Refrigerant::r134a();
  const double p = r.saturation_pressure(celsius_to_kelvin(30.0));
  EXPECT_DOUBLE_EQ(cooper_pool_boiling_htc(r, p, 0.0), 0.0);
  EXPECT_THROW(cooper_pool_boiling_htc(r, -1.0, 1e4), InvalidArgument);
}

TEST(FlowBoiling, IncreasesWithHeatFlux) {
  const auto& r = Refrigerant::r245fa();
  const microchannel::RectDuct duct{um(85.0), um(560.0)};
  const double p = r.saturation_pressure(celsius_to_kelvin(30.0));
  const double h_lo = flow_boiling_htc(r, duct, {p, 0.1, 350.0, w_per_cm2(2)});
  const double h_hi =
      flow_boiling_htc(r, duct, {p, 0.1, 350.0, w_per_cm2(30.2)});
  EXPECT_GT(h_hi, 4.0 * h_lo);  // strong nucleate enhancement
  EXPECT_LT(h_hi, 12.0 * h_lo);
}

TEST(FlowBoiling, SuperheatGrowsSubLinearlyWithFlux) {
  // The key Fig. 8 behaviour: dT ~ q^(1-0.76), so a 15x hot spot only
  // raises the superheat ~2x (vs 15x for constant-h water cooling).
  const auto& r = Refrigerant::r245fa();
  const microchannel::RectDuct duct{um(85.0), um(560.0)};
  const double p = r.saturation_pressure(celsius_to_kelvin(30.0));
  const double q1 = w_per_cm2(2.0), q2 = w_per_cm2(30.2);
  const double dt1 = q1 / flow_boiling_htc(r, duct, {p, 0.05, 350.0, q1});
  const double dt2 = q2 / flow_boiling_htc(r, duct, {p, 0.05, 350.0, q2});
  EXPECT_GT(dt2 / dt1, 1.5);
  EXPECT_LT(dt2 / dt1, 3.5);
}

TEST(DryoutQuality, BoundedAndDecreasingInMassFlux) {
  EXPECT_GE(dryout_quality(100.0), dryout_quality(1000.0));
  EXPECT_LE(dryout_quality(10.0), 0.95);
  EXPECT_GE(dryout_quality(5000.0), 0.4);
  EXPECT_THROW(dryout_quality(0.0), InvalidArgument);
}

TEST(TwoPhasePressure, GradientGrowsWithQuality) {
  // In the laminar homogeneous model dP/dz ~ mu_h/rho_h, which grows
  // moderately with quality (vapor accumulation accelerates the flow
  // while the McAdams viscosity falls).
  const auto& r = Refrigerant::r245fa();
  const microchannel::RectDuct duct{um(85.0), um(560.0)};
  const double p = r.saturation_pressure(celsius_to_kelvin(30.0));
  const double g0 = two_phase_pressure_gradient(r, duct, {p, 0.05, 200.0, 0});
  const double g1 = two_phase_pressure_gradient(r, duct, {p, 0.5, 200.0, 0});
  const double g2 = two_phase_pressure_gradient(r, duct, {p, 0.9, 200.0, 0});
  EXPECT_GT(g1, 1.2 * g0);
  EXPECT_GT(g2, g1);
}

// --- channel march ------------------------------------------------------

ChannelMarchInput basic_march(double q_cm2 = 20.0) {
  ChannelMarchInput in;
  in.refrigerant = &Refrigerant::r245fa();
  in.duct = microchannel::RectDuct{um(85.0), um(560.0)};
  in.length = mm(12.7);
  in.steps = 60;
  in.mass_flow = 350.0 * in.duct.area();
  in.inlet_pressure =
      in.refrigerant->saturation_pressure(celsius_to_kelvin(30.0));
  in.heated_width = um(94.0);
  in.heat_flux.assign(60, w_per_cm2(q_cm2));
  return in;
}

TEST(ChannelMarch, EnergyBalanceSetsOutletQuality) {
  const auto in = basic_march();
  const auto res = march_channel(in);
  const double q_total = w_per_cm2(20.0) * in.heated_width * in.length;
  const double hfg =
      in.refrigerant->latent_heat(celsius_to_kelvin(30.0));
  const double x_expected = q_total / (in.mass_flow * hfg);
  EXPECT_NEAR(res.quality.back(), x_expected, 0.05 * x_expected);
}

TEST(ChannelMarch, SaturationTemperatureFallsDownstream) {
  // Section III: "in flow boiling the exit temperature of the
  // refrigerant is lower than at the inlet".
  const auto res = march_channel(basic_march());
  EXPECT_LT(res.outlet_t_sat, celsius_to_kelvin(30.0));
  for (std::size_t i = 1; i < res.t_sat.size(); ++i) {
    EXPECT_LE(res.t_sat[i], res.t_sat[i - 1] + 1e-9);
  }
}

TEST(ChannelMarch, PressureDropPositiveAndQualityMonotone) {
  const auto res = march_channel(basic_march());
  EXPECT_GT(res.pressure_drop, 0.0);
  for (std::size_t i = 1; i < res.quality.size(); ++i) {
    EXPECT_GE(res.quality[i], res.quality[i - 1]);
  }
}

TEST(ChannelMarch, DryoutDetectedAtHighFlux) {
  auto in = basic_march(250.0);
  in.mass_flow *= 0.3;  // starve the channel
  const auto res = march_channel(in);
  EXPECT_TRUE(res.dryout);
  EXPECT_GT(res.dryout_position, 0.0);
  in.throw_on_dryout = true;
  EXPECT_THROW(march_channel(in), ModelRangeError);
}

TEST(ChannelMarch, ValidatesInputs) {
  auto in = basic_march();
  in.heat_flux.resize(10);
  EXPECT_THROW(march_channel(in), InvalidArgument);
  auto in2 = basic_march();
  in2.mass_flow = 0.0;
  EXPECT_THROW(march_channel(in2), InvalidArgument);
}

// --- Fig. 8 micro-evaporator ---------------------------------------------

TEST(Evaporator, Fig8HeaterMapShape) {
  const HeaterMap m = HeaterMap::fig8_hotspot();
  EXPECT_EQ(m.rows, 5);
  EXPECT_EQ(m.cols, 7);
  EXPECT_DOUBLE_EQ(m.row_avg(0), w_per_cm2(2.0));
  EXPECT_DOUBLE_EQ(m.row_avg(2), w_per_cm2(30.2));
  EXPECT_NEAR(m.row_avg(2) / m.row_avg(0), 15.1, 1e-9);
}

TEST(Evaporator, Fig8RatiosMatchPaperBands) {
  const auto res = simulate_evaporator(EvaporatorDesign::fig8_vehicle(),
                                       HeaterMap::fig8_hotspot(), 20);
  ASSERT_EQ(res.rows.size(), 5u);
  const auto& cold = res.rows[0];
  const auto& hot = res.rows[2];
  // HTC under the hot spot ~8x higher (we land ~7x).
  EXPECT_GT(hot.htc / cold.htc, 5.0);
  EXPECT_LT(hot.htc / cold.htc, 10.0);
  // Wall superheat only ~2x higher.
  const double sh_ratio = (hot.wall_temp - hot.fluid_temp) /
                          (cold.wall_temp - cold.fluid_temp);
  EXPECT_GT(sh_ratio, 1.5);
  EXPECT_LT(sh_ratio, 3.0);
  // Fluid leaves slightly colder than it entered (30 -> ~29.5 C).
  EXPECT_LT(res.outlet_t_sat, celsius_to_kelvin(30.0));
  EXPECT_GT(res.outlet_t_sat, celsius_to_kelvin(28.5));
  EXPECT_FALSE(res.dryout);
}

TEST(Evaporator, UniformMapGivesUniformRows) {
  auto design = EvaporatorDesign::fig8_vehicle();
  const auto res = simulate_evaporator(
      design, HeaterMap::uniform(5, 7, w_per_cm2(10.0)), 10);
  for (const auto& row : res.rows) {
    EXPECT_NEAR(row.heat_flux, w_per_cm2(10.0), 1e-9);
  }
  // Wall superheat is nearly uniform along the channel (the two-phase
  // advantage for temperature balance).
  const double sh0 = res.rows.front().wall_temp - res.rows.front().fluid_temp;
  const double sh4 = res.rows.back().wall_temp - res.rows.back().fluid_temp;
  EXPECT_NEAR(sh0, sh4, 0.4 * sh0);
}

TEST(Evaporator, BaseHotterThanWallHotterThanFluid) {
  const auto res = simulate_evaporator(EvaporatorDesign::fig8_vehicle(),
                                       HeaterMap::fig8_hotspot(), 10);
  for (const auto& row : res.rows) {
    EXPECT_GT(row.base_temp, row.wall_temp);
    EXPECT_GT(row.wall_temp, row.fluid_temp);
  }
}

TEST(Evaporator, RejectsBadGeometry) {
  auto design = EvaporatorDesign::fig8_vehicle();
  design.n_channels = 0;
  EXPECT_THROW(
      simulate_evaporator(design, HeaterMap::fig8_hotspot(), 10),
      InvalidArgument);
}

}  // namespace
}  // namespace tac3d::twophase
