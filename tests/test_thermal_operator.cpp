// ThermalOperator: the backward-Euler matrix split into a constant
// conduction/capacitance part and an indexed flow-dependent advection
// part, plus the staleness-aware refresh policies layered on top.
//
//  - update_flow() must reproduce, entry for entry, the operator a fresh
//    construction at the same flows produces, and report a sensible
//    dirty fraction (advection entries over nnz; zero on a no-op).
//  - Lazy refresh (keep the stale ILU, refactor on degradation) must
//    match always-refactor stepping to 1e-8 — the preconditioner only
//    steers convergence, the tolerance guarantees the answer.
//  - BandedLu::factor_rows must be bitwise identical to a full factor().
//  - The flow-transition warm-start predictor must not change results
//    beyond solver tolerance.
//  - A fluid-focused column profile (HydraulicNetwork -> flow fractions
//    -> RcModel::set_cavity_flow_profile) must reach the thermal answer
//    through the same indexed update path.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "arch/mpsoc.hpp"
#include "common/units.hpp"
#include "microchannel/coolant.hpp"
#include "microchannel/flow_network.hpp"
#include "microchannel/modulation.hpp"
#include "microchannel/pump.hpp"
#include "sparse/banded_lu.hpp"
#include "sparse/rcm.hpp"
#include "thermal/operator.hpp"
#include "thermal/transient.hpp"

namespace tac3d {
namespace {

arch::Mpsoc3D make_soc(int rows = 10, int cols = 10) {
  return arch::Mpsoc3D(arch::Mpsoc3D::Options{
      2, arch::CoolingKind::kLiquidCooled, thermal::GridOptions{rows, cols},
      arch::NiagaraConfig::paper()});
}

void load_power(arch::Mpsoc3D& soc, double busy = 1.0) {
  std::vector<arch::CoreState> cores(soc.n_cores(),
                                     {busy, soc.chip().vf.max_level()});
  soc.model().set_element_powers(soc.element_powers(cores, {}));
}

double max_abs_diff(std::span<const double> a, std::span<const double> b) {
  double m = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    m = std::max(m, std::abs(a[i] - b[i]));
  }
  return m;
}

TEST(ThermalOperator, UpdateFlowMatchesFreshConstruction) {
  auto pump = microchannel::PumpModel::table1();
  auto soc = make_soc();
  load_power(soc);
  soc.model().set_all_flows(pump.q_max());
  thermal::ThermalOperator op(soc.model(), 0.1);

  for (const int level : {0, 7, 15, 3}) {
    soc.model().set_all_flows(pump.flow_per_cavity(level));
    EXPECT_FALSE(op.in_sync());
    const sparse::ValueUpdate upd = op.update_flow();
    EXPECT_TRUE(op.in_sync());
    EXPECT_GT(upd.dirty_fraction, 0.0);
    EXPECT_LT(upd.dirty_fraction, 1.0);
    EXPECT_FALSE(upd.rows.empty());

    // Fresh operator at the same flows: identical values, entry for
    // entry (both compose base + unit*q with one rounding).
    thermal::ThermalOperator fresh(soc.model(), 0.1);
    EXPECT_EQ(max_abs_diff(op.matrix().values(), fresh.matrix().values()),
              0.0)
        << "level " << level;
  }

  // No flow change => clean no-op update.
  const sparse::ValueUpdate noop = op.update_flow();
  EXPECT_EQ(noop.dirty_fraction, 0.0);
  EXPECT_TRUE(noop.rows.empty());
}

TEST(ThermalOperator, DirtyRowsAreExactlyTheFluidNodes) {
  auto pump = microchannel::PumpModel::table1();
  auto soc = make_soc();
  soc.model().set_all_flows(pump.q_max());
  thermal::ThermalOperator op(soc.model(), 0.1);

  soc.model().set_all_flows(pump.flow_per_cavity(2));
  const sparse::ValueUpdate upd = op.update_flow();
  std::size_t advection_nodes = 0;
  for (int cav = 0; cav < soc.model().n_cavities(); ++cav) {
    advection_nodes += soc.model().advection_entries(cav).size();
  }
  EXPECT_EQ(upd.rows.size(), advection_nodes);
}

TEST(BandedLuPartial, FactorRowsBitwiseMatchesFullFactor) {
  auto pump = microchannel::PumpModel::table1();
  auto soc = make_soc(8, 8);
  load_power(soc);
  soc.model().set_all_flows(pump.q_max());
  thermal::ThermalOperator op(soc.model(), 0.1);

  sparse::BandedLu partial(op.matrix());
  soc.model().set_all_flows(pump.flow_per_cavity(1));
  const sparse::ValueUpdate upd = op.update_flow();
  partial.factor_rows(op.matrix(), upd.rows);
  sparse::BandedLu full(op.matrix());

  const std::int32_t n = op.matrix().rows();
  std::vector<double> b(n, 1.0), x_partial(n), x_full(n);
  for (std::int32_t i = 0; i < n; ++i) b[i] = 1.0 + 0.01 * i;
  partial.solve(b, x_partial);
  full.solve(b, x_full);
  EXPECT_EQ(max_abs_diff(x_partial, x_full), 0.0);
}

// On the paper stack plain RCM scatters the fluid rows across nearly the
// whole ordering (their permuted indices span ~[1, n-2]), so the test
// above restarts from ~row 0 and barely exercises the partial path. This
// synthetic band (identity permutation, dirty rows in the middle) forces
// a deep restart.
TEST(BandedLuPartial, DeepRestartBitwiseOnSyntheticBand) {
  const std::int32_t n = 60;
  std::vector<sparse::Triplet> trips;
  for (std::int32_t i = 0; i < n; ++i) {
    trips.push_back({i, i, 4.0 + 0.01 * i});
    if (i + 1 < n) {
      trips.push_back({i, i + 1, -1.0 - 0.001 * i});
      trips.push_back({i + 1, i, -0.9});
    }
    if (i + 2 < n) trips.push_back({i, i + 2, -0.3});
  }
  sparse::CsrMatrix a =
      sparse::CsrMatrix::from_triplets(n, n, std::move(trips));
  std::vector<std::int32_t> identity(static_cast<std::size_t>(n));
  for (std::int32_t i = 0; i < n; ++i) identity[i] = i;

  sparse::BandedLu partial(a, identity);
  // Perturb values of rows 30..35 only (pattern unchanged).
  std::vector<std::int32_t> dirty;
  for (std::int32_t r = 30; r < 36; ++r) {
    dirty.push_back(r);
    a.coeff_ref(r, r) *= 1.25;
    a.coeff_ref(r, r + 1) -= 0.05;
  }
  EXPECT_EQ(partial.first_permuted_row(dirty), 30);
  partial.factor_rows(a, dirty);
  sparse::BandedLu full(a, identity);

  std::vector<double> b(static_cast<std::size_t>(n));
  for (std::int32_t i = 0; i < n; ++i) b[i] = 1.0 + 0.03 * i;
  std::vector<double> x_partial(b.size()), x_full(b.size());
  partial.solve(b, x_partial);
  full.solve(b, x_full);
  EXPECT_EQ(max_abs_diff(x_partial, x_full), 0.0);
}

// Flow-aware banded ordering (sparse::rcm_ordering_constrained): with
// the fluid/advection rows pinned to the tail of the permutation, a flow
// change's dirty rows all land in the tail block, so factor_rows
// re-eliminates only that tail — and must still be bitwise identical to
// a full refactor.
TEST(BandedLuPartial, FluidTailOrderingRefactorsOnlyTheTail) {
  auto pump = microchannel::PumpModel::table1();
  auto soc = make_soc(8, 8);
  load_power(soc);
  soc.model().set_all_flows(pump.q_max());
  thermal::ThermalOperator op(soc.model(), 0.1);

  // Every advection-touched node, deduplicated: the tail constraint.
  std::vector<std::int32_t> fluid_rows;
  {
    std::vector<char> seen(static_cast<std::size_t>(op.matrix().rows()), 0);
    for (int cav = 0; cav < soc.model().n_cavities(); ++cav) {
      for (const auto& e : soc.model().advection_entries(cav)) {
        if (!seen[static_cast<std::size_t>(e.node)]) {
          seen[static_cast<std::size_t>(e.node)] = 1;
          fluid_rows.push_back(e.node);
        }
      }
    }
  }
  ASSERT_FALSE(fluid_rows.empty());

  const std::vector<std::int32_t> order =
      sparse::rcm_ordering_constrained(op.matrix(), fluid_rows);
  sparse::BandedLu partial(op.matrix(), order);

  // Every fluid row sits in the tail block [n - n_fluid, n).
  const std::int32_t n = op.matrix().rows();
  const std::int32_t tail_start =
      n - static_cast<std::int32_t>(fluid_rows.size());
  EXPECT_EQ(partial.first_permuted_row(fluid_rows), tail_start);

  soc.model().set_all_flows(pump.flow_per_cavity(4));
  const sparse::ValueUpdate upd = op.update_flow();
  ASSERT_FALSE(upd.rows.empty());
  // The whole point of the constrained ordering: the dirty rows of a
  // flow update start no earlier than the fluid tail, so the partial
  // re-elimination touches only |fluid| rows, not ~all of them.
  EXPECT_GE(partial.first_permuted_row(upd.rows), tail_start);

  partial.factor_rows(op.matrix(), upd.rows);
  sparse::BandedLu full(op.matrix(), order);
  std::vector<double> b(static_cast<std::size_t>(n));
  for (std::int32_t i = 0; i < n; ++i) b[i] = 1.0 + 0.01 * i;
  std::vector<double> x_partial(b.size()), x_full(b.size());
  partial.solve(b, x_partial);
  full.solve(b, x_full);
  EXPECT_EQ(max_abs_diff(x_partial, x_full), 0.0);
}

// The TransientSolver plumbing of the same lever: a flow-aware banded
// solver must step to the same temperatures as the default-ordered one
// (both direct solves — agreement to rounding, not bitwise, since the
// elimination order differs).
TEST(BandedLuPartial, FlowAwareBandedSteppingMatchesDefaultOrdering) {
  auto pump = microchannel::PumpModel::table1();
  auto soc_a = make_soc(8, 8);
  auto soc_b = make_soc(8, 8);
  for (auto* soc : {&soc_a, &soc_b}) {
    load_power(*soc);
    soc->model().set_all_flows(pump.q_max());
  }

  thermal::TransientSolver::Options base;
  base.kind = sparse::SolverKind::kBandedLu;
  thermal::TransientSolver::Options tail = base;
  tail.flow_aware_banded = true;

  thermal::TransientSolver ref(soc_a.model(), 0.1, base);
  thermal::TransientSolver fat(soc_b.model(), 0.1, tail);
  ref.initialize_steady();
  fat.set_state({ref.temperatures().begin(), ref.temperatures().end()});

  for (int step = 0; step < 12; ++step) {
    const int level = step % pump.levels();
    soc_a.model().set_all_flows(pump.flow_per_cavity(level));
    soc_b.model().set_all_flows(pump.flow_per_cavity(level));
    ref.step();
    fat.step();
    EXPECT_LT(max_abs_diff(ref.temperatures(), fat.temperatures()), 1e-8)
        << "step " << step;
  }
}

// The staleness-policy correctness requirement: lazy refresh must agree
// with always-refactor stepping to 1e-8 over a full modulation sweep,
// for every solver kind.
class StalenessPolicyTest
    : public ::testing::TestWithParam<sparse::SolverKind> {};

TEST_P(StalenessPolicyTest, LazyRefreshMatchesAlwaysRefactor) {
  auto pump = microchannel::PumpModel::table1();

  auto run = [&](const sparse::RefreshPolicy& policy, int slots) {
    auto soc = make_soc();
    load_power(soc);
    soc.model().set_all_flows(pump.q_max());
    thermal::TransientSolver::Options opts;
    opts.kind = GetParam();
    opts.refresh = policy;
    opts.warm_start_slots = slots;
    thermal::TransientSolver sim(soc.model(), 0.1, opts);
    sim.initialize_steady();
    for (int i = 0; i < 64; ++i) {
      soc.model().set_all_flows(pump.flow_per_cavity(i % pump.levels()));
      sim.step();
    }
    return std::vector<double>(sim.temperatures().begin(),
                               sim.temperatures().end());
  };

  const std::vector<double> lazy = run(sparse::RefreshPolicy{}, 16);
  const std::vector<double> eager = run(sparse::RefreshPolicy::eager(), 0);
  EXPECT_LT(max_abs_diff(lazy, eager), 1e-8);
}

TEST_P(StalenessPolicyTest, LazyPolicyActuallyDefersRefactors) {
  if (GetParam() == sparse::SolverKind::kBandedLu) {
    GTEST_SKIP() << "direct solver refreshes exactly (partial factor)";
  }
  auto pump = microchannel::PumpModel::table1();
  auto soc = make_soc();
  load_power(soc);
  soc.model().set_all_flows(pump.q_max());
  thermal::TransientSolver sim(soc.model(), 0.1, GetParam());
  sim.initialize_steady();
  const int flow_steps = 48;
  for (int i = 0; i < flow_steps; ++i) {
    soc.model().set_all_flows(pump.flow_per_cavity(i % pump.levels()));
    sim.step();
  }
  const sparse::SolverStats& stats = sim.solver_stats();
  // Every step changed the flow; the whole point is refactoring (much)
  // less than once per change. Partial row refreshes (Jacobi) are exact
  // and allowed.
  EXPECT_LT(stats.refactors, static_cast<std::uint64_t>(flow_steps) / 2)
      << "lazy policy refactored almost every flow change";
}

INSTANTIATE_TEST_SUITE_P(
    AllSolverKinds, StalenessPolicyTest,
    ::testing::Values(sparse::SolverKind::kBandedLu,
                      sparse::SolverKind::kBicgstabIlu0,
                      sparse::SolverKind::kBicgstabJacobi));

TEST(FlowTransitionPredictor, DoesNotChangeResultsBeyondTolerance) {
  auto pump = microchannel::PumpModel::table1();

  auto run = [&](int slots) {
    auto soc = make_soc();
    load_power(soc);
    soc.model().set_all_flows(pump.q_max());
    thermal::TransientSolver::Options opts;
    opts.warm_start_slots = slots;
    thermal::TransientSolver sim(soc.model(), 0.1, opts);
    sim.initialize_steady();
    for (int i = 0; i < 80; ++i) {
      soc.model().set_all_flows(pump.flow_per_cavity(i % pump.levels()));
      sim.step();
    }
    return std::pair<std::vector<double>, std::uint64_t>(
        std::vector<double>(sim.temperatures().begin(),
                            sim.temperatures().end()),
        sim.predictor_hits());
  };

  const auto [with, hits_with] = run(16);
  const auto [without, hits_without] = run(0);
  EXPECT_LT(max_abs_diff(with, without), 1e-8);
  EXPECT_EQ(hits_without, 0u);
  // After the first 16-level cycle every flow state is cached; nearly
  // every subsequent flow change should hit.
  EXPECT_GT(hits_with, 40u);
}

TEST(FlowTransitionPredictor, InterpolatesBetweenBracketingCachedStates) {
  // Continuous modulation (the fuzzy-policy regime) almost never
  // revisits an exact flow state, so the exact-match cache misses every
  // step — but the new state usually lies between two cached ones, and
  // the interpolated jump prediction should engage (residual-guarded,
  // so the answer stays within solver tolerance regardless).
  auto pump = microchannel::PumpModel::table1();
  const double q0 = pump.flow_per_cavity(8);

  auto run = [&](int slots) {
    auto soc = make_soc();
    load_power(soc);
    soc.model().set_all_flows(pump.q_max());
    thermal::TransientSolver::Options opts;
    opts.warm_start_slots = slots;
    thermal::TransientSolver sim(soc.model(), 0.1, opts);
    sim.initialize_steady();
    // Smooth incommensurate oscillation: sin(i) for integer i never
    // repeats, so every step is an exact-cache miss with plenty of
    // bracketing neighbors once the slots fill.
    for (int i = 0; i < 60; ++i) {
      soc.model().set_all_flows(q0 * (1.0 + 0.25 * std::sin(0.7 * i)));
      sim.step();
    }
    return std::pair<std::vector<double>, std::uint64_t>(
        std::vector<double>(sim.temperatures().begin(),
                            sim.temperatures().end()),
        sim.predictor_interpolations());
  };

  const auto [with, interps] = run(16);
  const auto [without, none] = run(0);
  EXPECT_EQ(none, 0u);
  EXPECT_GE(interps, 5u) << "interpolating warm start never engaged";
  EXPECT_LT(max_abs_diff(with, without), 1e-8);
}

TEST(TrajectoryWarmStart, AcceptsExtrapolationAndStaysWithinTolerance) {
  // Drive a power ramp (the closed-loop regime: the RHS changes every
  // step) and check that the guarded extrapolation x0 = 2 T_n - T_{n-1}
  // actually engages, saves Krylov iterations, and never changes the
  // answer beyond solver tolerance.
  auto run = [&](bool trajectory) {
    auto soc = make_soc();
    soc.model().set_all_flows(microchannel::PumpModel::table1().q_max());
    load_power(soc, 0.2);
    thermal::TransientSolver::Options opts;
    opts.trajectory_warm_start = trajectory;
    thermal::TransientSolver sim(soc.model(), 0.1, opts);
    sim.initialize_steady();
    for (int i = 0; i < 60; ++i) {
      load_power(soc, 0.2 + 0.01 * i);  // piecewise-linear-ish ramp
      sim.step();
    }
    struct Out {
      std::vector<double> temps;
      std::uint64_t traj_hits;
      std::uint64_t iterations;
    };
    return Out{{sim.temperatures().begin(), sim.temperatures().end()},
               sim.trajectory_hits(),
               sim.solver_stats().iterations};
  };

  const auto with = run(true);
  const auto without = run(false);
  EXPECT_LT(max_abs_diff(with.temps, without.temps), 1e-8);
  EXPECT_EQ(without.traj_hits, 0u);
  // On a smooth ramp the guard should adopt the extrapolation on most
  // steps and the iteration total should drop, not rise.
  EXPECT_GT(with.traj_hits, 30u);
  EXPECT_LE(with.iterations, without.iterations);
}

TEST(FlowProfile, HydraulicNetworkDrivesColumnShares) {
  auto pump = microchannel::PumpModel::table1();
  auto soc = make_soc();
  load_power(soc);
  soc.model().set_all_flows(pump.q_max());
  const int cols = soc.model().grid().cols();

  // A distributor network that feeds the central channels through twice
  // the hydraulic conductance (fluid focusing a la Fig. 4).
  microchannel::HydraulicNetwork net;
  const auto inlet = net.add_fixed_node(1000.0);
  const auto outlet = net.add_fixed_node(0.0);
  const int channels = 40;
  std::vector<std::int32_t> edges;
  for (int ch = 0; ch < channels; ++ch) {
    const auto entry = net.add_node();
    const bool focused = ch >= channels / 3 && ch < 2 * channels / 3;
    net.add_edge(inlet, entry, (focused ? 2.0 : 1.0) * 1e-12);
    edges.push_back(net.add_edge(entry, outlet, 1e-12));
  }
  const auto fractions =
      microchannel::flow_fractions(net.solve(), edges);
  // Passed as-is: shares landing on fluid-less columns are dropped and
  // renormalized by set_cavity_flow_profile.
  const std::vector<double> shares =
      microchannel::coarsen_fractions(fractions, cols);

  const auto uniform = soc.model().steady_state();
  soc.model().set_cavity_flow_profile(0, shares);
  const auto focused = soc.model().steady_state();

  // The redistribution must actually change the field, flow totals must
  // be preserved, and the operator must pick the change up as a regular
  // indexed update.
  EXPECT_GT(max_abs_diff(uniform, focused), 1e-6);
  EXPECT_DOUBLE_EQ(soc.model().cavity_flow(0), pump.q_max());
  double share_sum = 0.0;
  for (const double s : soc.model().cavity_flow_shares(0)) share_sum += s;
  EXPECT_NEAR(share_sum, 1.0, 1e-12);

  // A profile change must dirty the operator like a flow-rate change.
  thermal::ThermalOperator op(soc.model(), 0.1);
  EXPECT_TRUE(op.in_sync());
  std::vector<double> grid_shares(static_cast<std::size_t>(cols), 0.0);
  for (int c = 0; c < cols; ++c) {
    grid_shares[static_cast<std::size_t>(c)] =
        std::max(0.0, soc.model().grid().column_flow_share(c));
  }
  soc.model().set_cavity_flow_profile(0, grid_shares);
  EXPECT_FALSE(op.in_sync());
  const sparse::ValueUpdate upd = op.update_flow();
  EXPECT_GT(upd.dirty_fraction, 0.0);
  EXPECT_TRUE(op.in_sync());
}

// Width modulation redistributes flow across a cavity's parallel
// channels: narrowed channels have a lower series hydraulic conductance
// and draw less flow at equal pressure head. The full chain
// (ModulatedChannel -> modulated_channel_conductance -> HydraulicNetwork
// -> flow_fractions -> coarsen_fractions -> set_cavity_flow_profile)
// must compose.
TEST(FlowProfile, WidthModulationRedistributesCavityFlow) {
  using namespace microchannel;
  const Coolant fluid = water(celsius_to_kelvin(27.0));
  const int channels = 20;
  const double height = um(100.0);

  HydraulicNetwork net;
  const auto inlet = net.add_fixed_node(1e4);
  const auto outlet = net.add_fixed_node(0.0);
  std::vector<std::int32_t> edges;
  for (int ch = 0; ch < channels; ++ch) {
    // Channels 8..11 narrowed over their central segments (a hot spot).
    ModulatedChannel chan;
    chan.height = height;
    chan.segment_lengths.assign(10, mm(1.0));
    chan.segment_widths.assign(10, um(50.0));
    const bool narrowed = ch >= 8 && ch < 12;
    if (narrowed) {
      for (int s = 4; s < 8; ++s) chan.segment_widths[s] = um(30.0);
    }
    edges.push_back(net.add_edge(
        inlet, outlet, modulated_channel_conductance(chan, fluid)));
  }
  const auto fractions = flow_fractions(net.solve(), edges);
  // Narrowed channels must carry less flow than uniform ones.
  EXPECT_LT(fractions[9], fractions[0]);
  double sum = 0.0;
  for (const double f : fractions) sum += f;
  EXPECT_NEAR(sum, 1.0, 1e-12);

  // And the redistribution must flow through to the RC model.
  auto pump = microchannel::PumpModel::table1();
  auto soc = make_soc();
  load_power(soc);
  soc.model().set_all_flows(pump.q_max());
  const int cols = soc.model().grid().cols();
  const std::vector<double> shares = coarsen_fractions(fractions, cols);
  const auto before = soc.model().steady_state();
  soc.model().set_cavity_flow_profile(0, shares);
  const auto after = soc.model().steady_state();
  EXPECT_GT(max_abs_diff(before, after), 0.0);
}

// Energy bookkeeping stays consistent under a focused profile: the
// advective heat removal uses the share-weighted outlet temperature.
TEST(FlowProfile, AdvectiveRemovalConsistentWithProfile) {
  auto pump = microchannel::PumpModel::table1();
  auto soc = make_soc();
  load_power(soc);
  soc.model().set_all_flows(pump.q_max());
  const int cols = soc.model().grid().cols();
  std::vector<double> shares(static_cast<std::size_t>(cols), 0.0);
  for (int c = 0; c < cols; ++c) {
    if (soc.model().grid().column_flow_share(c) > 0.0) {
      shares[static_cast<std::size_t>(c)] = (c < cols / 2) ? 2.0 : 1.0;
    }
  }
  soc.model().set_cavity_flow_profile(0, shares);
  const auto temps = soc.model().steady_state();
  double removed = 0.0;
  for (int cav = 0; cav < soc.model().n_cavities(); ++cav) {
    removed += soc.model().advective_heat_removal(temps, cav);
  }
  removed += soc.model().sink_heat_removal(temps);
  EXPECT_NEAR(removed, soc.model().total_power(),
              0.02 * soc.model().total_power());
}

}  // namespace
}  // namespace tac3d
