// Integration tests asserting the paper's Section IV anchors with
// tolerance bands. These lock the calibration in arch/calibration.hpp:
// if a model change moves an anchor out of band, the corresponding
// bench output has drifted from the paper too.
//
// Bands are deliberately generous: we reproduce *shapes* (who wins, by
// roughly what factor), not the authors' exact testbed numbers — see
// EXPERIMENTS.md for the measured values.
//
// All closed-loop runs are described as Scenarios and executed once,
// up front, by the parallel sweep runner; each test reads the cached
// metrics it needs.
#include <gtest/gtest.h>

#include <map>
#include <tuple>

#include "arch/stacks.hpp"
#include "common/units.hpp"
#include "microchannel/pump.hpp"
#include "sim/sweep.hpp"
#include "thermal/rc_model.hpp"

namespace tac3d {
namespace {

using Key = std::tuple<int, sim::PolicyKind, power::WorkloadKind, int>;

sim::Scenario make_scenario(int tiers, sim::PolicyKind policy,
                            power::WorkloadKind workload, int seconds) {
  sim::Scenario spec;
  spec.tiers = tiers;
  spec.policy = policy;
  spec.workload = workload;
  spec.trace_seconds = seconds;
  return spec;
}

/// Every closed-loop scenario this file asserts on, executed as one
/// deterministic parallel sweep on first use.
const std::map<Key, sim::SimMetrics>& sweep_cache() {
  static const std::map<Key, sim::SimMetrics> cache = [] {
    using W = power::WorkloadKind;
    std::vector<sim::Scenario> scenarios;
    auto add = [&](std::vector<sim::Scenario> batch) {
      scenarios.insert(scenarios.end(), batch.begin(), batch.end());
    };
    // Section IV-A peak temperatures: the paper's seven stack x policy
    // configurations on the maximum-utilization benchmark.
    add(sim::ScenarioMatrix::paper_fig67()
            .workloads({W::kMaxUtil})
            .trace_seconds(90)
            .build());
    // Shorter max-util runs used by the hot-spot/energy spot checks.
    add(sim::ScenarioMatrix()
            .tiers({2, 4})
            .policies({sim::PolicyKind::kLcLb, sim::PolicyKind::kLcFuzzy})
            .workloads({W::kMaxUtil})
            .trace_seconds(60)
            .build());
    // Section IV-A energy savings: LC policies on average workloads.
    add(sim::ScenarioMatrix()
            .tiers({2, 4})
            .policies({sim::PolicyKind::kLcLb, sim::PolicyKind::kLcFuzzy})
            .workloads({W::kWebServer, W::kDatabase})
            .trace_seconds(90)
            .build());
    // Fuzzy performance-loss check on the web workload.
    add(sim::ScenarioMatrix()
            .tiers({2})
            .policies({sim::PolicyKind::kLcFuzzy})
            .workloads({W::kWebServer})
            .trace_seconds(60)
            .build());

    const sim::SweepReport report = sim::run_sweep(scenarios);
    std::map<Key, sim::SimMetrics> out;
    for (const sim::SweepResult& r : report.results()) {
      if (!r.ok()) {
        ADD_FAILURE() << "sweep scenario failed: " << r.scenario.label
                      << ": " << r.error;
        continue;
      }
      out[Key{r.scenario.tiers, r.scenario.policy, r.scenario.workload,
              r.scenario.trace_seconds}] = r.metrics;
    }
    return out;
  }();
  return cache;
}

sim::SimMetrics run(int tiers, sim::PolicyKind policy,
                    power::WorkloadKind workload, int seconds = 90) {
  const auto& cache = sweep_cache();
  const auto it = cache.find(Key{tiers, policy, workload, seconds});
  if (it != cache.end()) return it->second;
  // Not part of the pre-computed sweep (shouldn't happen for the
  // anchors below, but keeps the helper total).
  return sim::run_scenario(make_scenario(tiers, policy, workload, seconds));
}

// --- Section IV-A peak temperatures (maximum-utilization benchmark) ----

TEST(PaperAnchors, TwoTierAirCooledPeaksNear87C) {
  const auto m = run(2, sim::PolicyKind::kAcLb,
                     power::WorkloadKind::kMaxUtil);
  EXPECT_GT(kelvin_to_celsius(m.peak_temp), 85.0);  // hot spots exist
  EXPECT_LT(kelvin_to_celsius(m.peak_temp), 92.0);  // paper: 87 C
  EXPECT_GT(m.hotspot_frac_any(), 0.5);
}

TEST(PaperAnchors, TdvfsHoldsNearThresholdAndCutsHotSpots) {
  const auto lb = run(2, sim::PolicyKind::kAcLb,
                      power::WorkloadKind::kMaxUtil);
  const auto dv = run(2, sim::PolicyKind::kAcTdvfsLb,
                      power::WorkloadKind::kMaxUtil);
  EXPECT_LT(kelvin_to_celsius(dv.peak_temp), 87.0);  // paper: 85 C
  EXPECT_LT(dv.hotspot_frac_any(), 0.4 * lb.hotspot_frac_any());
  EXPECT_GT(dv.perf_degradation(), 0.005);  // throttling costs performance
}

TEST(PaperAnchors, TwoTierLiquidMaxFlowPeaksInThe50sCelsius) {
  const auto m = run(2, sim::PolicyKind::kLcLb,
                     power::WorkloadKind::kMaxUtil);
  EXPECT_GT(kelvin_to_celsius(m.peak_temp), 45.0);
  EXPECT_LT(kelvin_to_celsius(m.peak_temp), 60.0);  // paper: 56 C
  EXPECT_DOUBLE_EQ(m.hotspot_frac_any(), 0.0);
}

TEST(PaperAnchors, FuzzyRunsWarmerButBelowThreshold) {
  const auto lb = run(2, sim::PolicyKind::kLcLb,
                      power::WorkloadKind::kMaxUtil);
  const auto fz = run(2, sim::PolicyKind::kLcFuzzy,
                      power::WorkloadKind::kMaxUtil);
  // Paper: LC_FUZZY pushes the system to a higher peak (68 C vs 56 C)
  // but still avoids any hot spot.
  EXPECT_GT(fz.peak_temp, lb.peak_temp + 5.0);
  EXPECT_LT(kelvin_to_celsius(fz.peak_temp), 80.0);
  EXPECT_DOUBLE_EQ(fz.hotspot_frac_any(), 0.0);
}

TEST(PaperAnchors, FourTierAirCooledIsCatastrophic) {
  const auto m = run(4, sim::PolicyKind::kAcLb,
                     power::WorkloadKind::kMaxUtil);
  // Paper: "much higher than 110 C and reaching up to 178 C".
  EXPECT_GT(kelvin_to_celsius(m.peak_temp), 140.0);
  EXPECT_LT(kelvin_to_celsius(m.peak_temp), 230.0);
  EXPECT_GT(m.hotspot_frac_any(), 0.95);
}

TEST(PaperAnchors, FourTierLiquidIsCoolerThanTwoTier) {
  const auto two = run(2, sim::PolicyKind::kLcLb,
                       power::WorkloadKind::kMaxUtil);
  const auto four = run(4, sim::PolicyKind::kLcLb,
                        power::WorkloadKind::kMaxUtil);
  // Paper: "the system temperature of a 4-tier 3D MPSoC is maintained
  // even lower than the 2-tier ... due to the increased number of
  // cooling tiers (cavities)".
  EXPECT_LT(four.peak_temp, two.peak_temp - 5.0);
}

TEST(PaperAnchors, LiquidCoolingRemovesAllHotSpots) {
  for (int tiers : {2, 4}) {
    for (const auto policy :
         {sim::PolicyKind::kLcLb, sim::PolicyKind::kLcFuzzy}) {
      const auto m = run(tiers, policy, power::WorkloadKind::kMaxUtil, 60);
      EXPECT_DOUBLE_EQ(m.hotspot_frac_any(), 0.0)
          << tiers << "-tier " << sim::policy_label(policy);
    }
  }
}

// --- Section IV-A energy savings (average workloads) --------------------

TEST(PaperAnchors, FuzzySavesCoolingAndSystemEnergy) {
  // Averaged over two representative workloads to keep the test fast;
  // the full four-workload sweep lives in bench_fig7_energy.
  for (int tiers : {2, 4}) {
    double lb_sys = 0.0, lb_pump = 0.0, fz_sys = 0.0, fz_pump = 0.0;
    for (const auto w :
         {power::WorkloadKind::kWebServer, power::WorkloadKind::kDatabase}) {
      const auto lb = run(tiers, sim::PolicyKind::kLcLb, w);
      const auto fz = run(tiers, sim::PolicyKind::kLcFuzzy, w);
      lb_sys += lb.system_energy();
      lb_pump += lb.pump_energy;
      fz_sys += fz.system_energy();
      fz_pump += fz.pump_energy;
    }
    const double cooling_saving = 1.0 - fz_pump / lb_pump;
    const double system_saving = 1.0 - fz_sys / lb_sys;
    // Paper: 50%/52% cooling and 14%/18% system (up to 67% / 30%).
    EXPECT_GT(cooling_saving, 0.30) << tiers << "-tier";
    EXPECT_LT(cooling_saving, 0.75) << tiers << "-tier";
    EXPECT_GT(system_saving, 0.05) << tiers << "-tier";
    EXPECT_LT(system_saving, 0.35) << tiers << "-tier";
  }
}

TEST(PaperAnchors, FuzzyPerformanceLossIsNegligible) {
  // Paper: "the performance degradation results do not exceed 0.01%".
  for (const auto w : {power::WorkloadKind::kWebServer,
                       power::WorkloadKind::kMaxUtil}) {
    const auto m = run(2, sim::PolicyKind::kLcFuzzy, w, 60);
    EXPECT_LE(m.perf_degradation(), 1e-4);
  }
}

TEST(PaperAnchors, TwoTierChipPowerNear70W) {
  // Section II-D: a 2-tier 3D MPSoC consumes about 70 W.
  const auto m = run(2, sim::PolicyKind::kLcLb,
                     power::WorkloadKind::kMaxUtil, 60);
  const double avg_w = m.chip_energy / m.duration;
  EXPECT_GT(avg_w, 60.0);
  EXPECT_LT(avg_w, 85.0);
}

// --- Section II-C scalability -------------------------------------------

TEST(PaperAnchors, InterTierCoolingScalesWhereBacksideFails) {
  const double hs = w_per_cm2(250.0);
  const double bg = w_per_cm2(50.0);
  double rise[2];
  int i = 0;
  for (const bool inter_tier : {true, false}) {
    auto spec = arch::build_scalability_stack(3, inter_tier, hs, bg);
    thermal::RcModel model(spec, thermal::GridOptions{16, 16});
    if (inter_tier) {
      model.set_all_flows(microchannel::PumpModel::table1().q_max());
    }
    model.set_element_powers(
        arch::scalability_element_powers(model.grid(), hs, bg));
    const auto temps = model.steady_state();
    rise[i++] =
        model.max_temperature(temps) - model.grid().spec().coolant_inlet;
  }
  // Paper: 55 K vs 223 K. Shape: inter-tier acceptable, back-side
  // catastrophic, ratio of several x.
  EXPECT_LT(rise[0], 70.0);
  EXPECT_GT(rise[1], 150.0);
  EXPECT_GT(rise[1] / rise[0], 3.0);
}

}  // namespace
}  // namespace tac3d
