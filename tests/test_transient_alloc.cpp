// Asserts the zero-allocation contract of the solver hot path: once a
// TransientSolver is constructed, step() must never touch the heap —
// including steps that follow a flow-rate change (matrix value update +
// in-place refactorization) — for every SolverKind.
//
// The same hook also guards the simulation layer above the solver: a
// SimulationSession's per-step control tail (sampling, load balancing,
// policy, power/leakage, sensors, metrics) and a BatchSession's
// lane-fused batched tail must both run allocation-free once warm.
//
// The hook replaces the global operator new/delete with counting
// wrappers. Counting is scoped: only allocations between
// AllocCounter::start() and AllocCounter::stop() are recorded, so gtest
// bookkeeping outside the measured window does not interfere. Under
// ASan/UBSan the replacement would fight the sanitizer's own allocator
// interceptors, so the whole hook compiles away and the tests skip.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <memory>
#include <new>
#include <vector>

#include "arch/mpsoc.hpp"
#include "microchannel/pump.hpp"
#include "power/trace.hpp"
#include "sim/bank.hpp"
#include "sim/batch.hpp"
#include "sim/experiment.hpp"
#include "thermal/operator.hpp"
#include "thermal/transient.hpp"

#if defined(__SANITIZE_ADDRESS__)
#define TAC3D_ALLOC_HOOK 0
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define TAC3D_ALLOC_HOOK 0
#else
#define TAC3D_ALLOC_HOOK 1
#endif
#else
#define TAC3D_ALLOC_HOOK 1
#endif

namespace {

struct AllocCounter {
  static std::atomic<long long> count;
  static std::atomic<bool> active;

  static void start() {
    count.store(0, std::memory_order_relaxed);
    active.store(true, std::memory_order_relaxed);
  }
  static long long stop() {
    active.store(false, std::memory_order_relaxed);
    return count.load(std::memory_order_relaxed);
  }
};

std::atomic<long long> AllocCounter::count{0};
std::atomic<bool> AllocCounter::active{false};

}  // namespace

#if TAC3D_ALLOC_HOOK

void* operator new(std::size_t size) {
  if (AllocCounter::active.load(std::memory_order_relaxed)) {
    AllocCounter::count.fetch_add(1, std::memory_order_relaxed);
  }
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc{};
}

void* operator new[](std::size_t size) { return ::operator new(size); }

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

#endif  // TAC3D_ALLOC_HOOK

namespace tac3d {
namespace {

arch::Mpsoc3D make_soc() {
  return arch::Mpsoc3D(arch::Mpsoc3D::Options{
      2, arch::CoolingKind::kLiquidCooled, thermal::GridOptions{10, 10},
      arch::NiagaraConfig::paper()});
}

void load_power(arch::Mpsoc3D& soc) {
  std::vector<arch::CoreState> cores(soc.n_cores(),
                                     {1.0, soc.chip().vf.max_level()});
  soc.model().set_element_powers(soc.element_powers(cores, {}));
}

class TransientAllocTest
    : public ::testing::TestWithParam<sparse::SolverKind> {};

TEST_P(TransientAllocTest, StepIsAllocationFreeAtFixedFlow) {
#if !TAC3D_ALLOC_HOOK
  GTEST_SKIP() << "allocation hook disabled under sanitizers";
#endif
  auto soc = make_soc();
  soc.model().set_all_flows(microchannel::PumpModel::table1().q_max());
  load_power(soc);
  thermal::TransientSolver sim(soc.model(), 0.25, GetParam());
  sim.initialize_steady();
  sim.step();  // settle any lazy first-step work before counting

  AllocCounter::start();
  for (int i = 0; i < 20; ++i) sim.step();
  const long long allocs = AllocCounter::stop();
  EXPECT_EQ(allocs, 0) << "TransientSolver::step() must not allocate";
}

TEST_P(TransientAllocTest, StepIsAllocationFreeAcrossFlowChanges) {
#if !TAC3D_ALLOC_HOOK
  GTEST_SKIP() << "allocation hook disabled under sanitizers";
#endif
  auto soc = make_soc();
  auto pump = microchannel::PumpModel::table1();
  soc.model().set_all_flows(pump.q_max());
  load_power(soc);
  thermal::TransientSolver sim(soc.model(), 0.25, GetParam());
  sim.initialize_steady();
  sim.step();

  // A flow change dirties the matrix: the next step refreshes the
  // factorization/preconditioner, which must also happen in place.
  AllocCounter::start();
  for (int i = 0; i < 10; ++i) {
    soc.model().set_all_flows(pump.flow_per_cavity(i % pump.levels()));
    sim.step();
  }
  const long long allocs = AllocCounter::stop();
  EXPECT_EQ(allocs, 0)
      << "flow update + refactor + step must not allocate";
}

INSTANTIATE_TEST_SUITE_P(
    AllSolverKinds, TransientAllocTest,
    ::testing::Values(sparse::SolverKind::kBandedLu,
                      sparse::SolverKind::kBicgstabIlu0,
                      sparse::SolverKind::kBicgstabJacobi));

TEST(ThermalOperatorAlloc, UpdateFlowIsAllocationFree) {
#if !TAC3D_ALLOC_HOOK
  GTEST_SKIP() << "allocation hook disabled under sanitizers";
#endif
  auto soc = make_soc();
  auto pump = microchannel::PumpModel::table1();
  soc.model().set_all_flows(pump.q_max());
  load_power(soc);
  thermal::ThermalOperator op(soc.model(), 0.25);

  AllocCounter::start();
  for (int i = 0; i < 32; ++i) {
    soc.model().set_all_flows(pump.flow_per_cavity(i % pump.levels()));
    const sparse::ValueUpdate upd = op.update_flow();
    ASSERT_GT(upd.dirty_fraction, 0.0);
  }
  const long long allocs = AllocCounter::stop();
  EXPECT_EQ(allocs, 0)
      << "ThermalOperator::update_flow (and RcModel's indexed "
         "apply_cavity_flow) must not allocate";
}

sim::Scenario session_scenario(sim::PolicyKind policy, std::uint64_t seed) {
  sim::Scenario s;
  s.tiers = 2;
  s.policy = policy;
  s.workload = power::WorkloadKind::kWebServer;
  s.seed = seed;
  s.trace_seconds = 30;
  s.grid = thermal::GridOptions{8, 8};
  return s;
}

TEST(SessionAlloc, ScalarStepLoopIsAllocationFree) {
#if !TAC3D_ALLOC_HOOK
  GTEST_SKIP() << "allocation hook disabled under sanitizers";
#endif
  // LC_FUZZY covers the most allocation-prone tail: fuzzy inference,
  // flow modulation (matrix refresh) and pump-energy accounting.
  sim::ScenarioInstance inst =
      sim::instantiate(session_scenario(sim::PolicyKind::kLcFuzzy, 1));
  sim::SimulationSession session = inst.session();
  for (int i = 0; i < 3; ++i) session.step();  // settle lazy first-use work

  AllocCounter::start();
  for (int i = 0; i < 10; ++i) session.step();
  const long long allocs = AllocCounter::stop();
  EXPECT_EQ(allocs, 0)
      << "SimulationSession::step() must not allocate once warm";
}

TEST(SessionAlloc, BatchedFusedTailIsAllocationFree) {
#if !TAC3D_ALLOC_HOOK
  GTEST_SKIP() << "allocation hook disabled under sanitizers";
#endif
  sim::ScenarioBank bank;
  std::vector<sim::PreparedScenario> prepared;
  for (const std::uint64_t seed : {1ull, 2ull, 3ull}) {
    prepared.push_back(
        bank.prepare(session_scenario(sim::PolicyKind::kLcFuzzy, seed)));
  }
  sim::BatchSession batch(std::move(prepared));
  ASSERT_TRUE(batch.thermal_batched());
  ASSERT_TRUE(batch.tail_fused());
  for (int i = 0; i < 3; ++i) batch.step();  // settle lazy first-use work

  AllocCounter::start();
  for (int i = 0; i < 10; ++i) batch.step();
  const long long allocs = AllocCounter::stop();
  EXPECT_EQ(allocs, 0)
      << "the lane-fused batched tail must not allocate once warm";
}

TEST(SessionAlloc, WarmReplayJournalAndFastForwardAreAllocationFree) {
#if !TAC3D_ALLOC_HOOK
  GTEST_SKIP() << "allocation hook disabled under sanitizers";
#endif
  // A constant trace (period_hint 1 s = 4 control steps) drives the
  // loop to a fixed point, so the limit-cycle detector locks after a
  // few cycle boundaries. Both journaling steps and the fast-forward
  // replay itself must stay off the heap: the journal is sized at
  // arm() and cycles are re-applied from it in place.
  auto trace =
      std::make_shared<power::UtilizationTrace>("const", 32, 60);
  for (int th = 0; th < 32; ++th) {
    for (int t = 0; t < 60; ++t) trace->set(th, t, 0.45 + 0.01 * (th % 4));
  }
  sim::Scenario s;
  s.tiers = 2;
  s.policy = sim::PolicyKind::kLcLb;
  s.trace = trace;
  s.trace_seconds = 60;
  s.grid = thermal::GridOptions{8, 8};
  s.sim.solver = sparse::SolverKind::kBicgstabIlu0;
  sim::ScenarioInstance inst = sim::instantiate(s);
  sim::SimulationSession session = inst.session();

  for (int i = 0; i < 4; ++i) session.step();  // settle; first boundary

  AllocCounter::start();
  // Covers the match boundary, the 4 journaling steps and the verify
  // boundary that flips the detector to locked.
  for (int i = 0; i < 12; ++i) session.step();
  const long long journal_allocs = AllocCounter::stop();
  EXPECT_EQ(journal_allocs, 0)
      << "journaling a candidate cycle must not allocate";

  AllocCounter::start();
  const int replayed = session.replay_fast_forward(30.0);
  const long long replay_allocs = AllocCounter::stop();
  EXPECT_GT(replayed, 0) << "replay should engage on a constant trace";
  EXPECT_EQ(replay_allocs, 0)
      << "fast-forwarding locked cycles must not allocate";
  EXPECT_GT(session.replay_solves_skipped(), 0u);
}

TEST(RhsInto, FusedRhsPlusScaledMatchesTwoPassBuild) {
  auto soc = make_soc();
  soc.model().set_all_flows(microchannel::PumpModel::table1().q_max());
  load_power(soc);
  const std::size_t n =
      static_cast<std::size_t>(soc.model().node_count());
  std::vector<double> scale(n), x(n);
  for (std::size_t i = 0; i < n; ++i) {
    scale[i] = 0.5 + 0.001 * static_cast<double>(i);
    x[i] = 300.0 + 0.1 * static_cast<double>(i % 17);
  }
  std::vector<double> fused(n);
  soc.model().rhs_plus_scaled_into(fused, scale, x);
  std::vector<double> two_pass(n);
  soc.model().rhs_into(two_pass);
  for (std::size_t i = 0; i < n; ++i) two_pass[i] += scale[i] * x[i];
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_DOUBLE_EQ(fused[i], two_pass[i]) << i;
  }
}

}  // namespace
}  // namespace tac3d
