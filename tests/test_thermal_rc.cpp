// Physics validation of the RC thermal model against closed-form
// solutions: 1-D slab conduction, lumped RC step response, cavity energy
// balance, and steady/transient consistency.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include <sstream>

#include "common/error.hpp"
#include "common/units.hpp"
#include "microchannel/coolant.hpp"
#include "thermal/rc_model.hpp"
#include "thermal/transient.hpp"

namespace tac3d::thermal {
namespace {

/// A single solid slab with a uniform heater floorplan and a sink on top.
StackSpec slab_spec(double power_area_ratio = 1.0) {
  (void)power_area_ratio;
  StackSpec spec;
  spec.name = "slab";
  spec.width = mm(10.0);
  spec.length = mm(10.0);
  Floorplan fp;
  fp.add("heater", Rect{0.0, 0.0, mm(10.0), mm(10.0)});
  spec.floorplans.push_back(fp);
  spec.layers.push_back(Layer::solid("body", mm(0.5), materials::silicon(),
                                     /*floorplan=*/0));
  spec.sink.present = true;
  spec.sink.conductance_to_ambient = 10.0;
  spec.sink.capacitance = 140.0;
  spec.sink.coupling_conductance = 1e4;  // near-ideal attach
  spec.ambient = celsius_to_kelvin(45.0);
  return spec;
}

/// Two dies around one water cavity, uniform heaters on both dies.
StackSpec cavity_spec() {
  StackSpec spec;
  spec.name = "cavity";
  spec.width = mm(10.0);
  spec.length = mm(10.0);
  Floorplan fp0, fp1;
  fp0.add("bottom_heater", Rect{0.0, 0.0, mm(10.0), mm(10.0)});
  fp1.add("top_heater", Rect{0.0, 0.0, mm(10.0), mm(10.0)});
  spec.floorplans.push_back(fp0);
  spec.floorplans.push_back(fp1);
  const auto water = microchannel::water(celsius_to_kelvin(27.0));
  spec.layers.push_back(
      Layer::solid("die0", mm(0.15), materials::silicon(), 0));
  spec.layers.push_back(Layer::cavity("cav", um(100.0), um(50.0), um(150.0),
                                      materials::silicon(), water));
  spec.layers.push_back(
      Layer::solid("die1", mm(0.15), materials::silicon(), 1));
  spec.coolant_inlet = celsius_to_kelvin(27.0);
  spec.ambient = celsius_to_kelvin(27.0);
  return spec;
}

TEST(RcModel, SteadySlabMatchesLumpedResistance) {
  RcModel model(slab_spec(), GridOptions{8, 8});
  const int heater = model.grid().element_id("heater");
  std::vector<double> p(model.grid().element_count(), 0.0);
  p[heater] = 20.0;  // W
  model.set_element_powers(p);
  const auto temps = model.steady_state();
  // All heat exits through the 10 W/K sink: sink node at ambient + 2 K.
  const double t_sink = temps[model.grid().sink_node()];
  EXPECT_NEAR(t_sink - celsius_to_kelvin(45.0), 2.0, 1e-6);
  // The die sits above the sink temperature but within a few K (thick
  // silicon, near-ideal attach).
  const double t_die = model.element_avg(temps, heater);
  EXPECT_GT(t_die, t_sink);
  EXPECT_LT(t_die - t_sink, 1.0);
}

TEST(RcModel, SteadyEnergyBalanceThroughSink) {
  RcModel model(slab_spec(), GridOptions{8, 8});
  model.set_element_power(0, 35.0);
  const auto temps = model.steady_state();
  EXPECT_NEAR(model.sink_heat_removal(temps), 35.0, 1e-6);
}

TEST(RcModel, CavityEnergyBalanceAndOutletTemperature) {
  RcModel model(cavity_spec(), GridOptions{16, 8});
  model.set_all_flows(ml_per_min(32.3));
  std::vector<double> p(model.grid().element_count(), 0.0);
  p[0] = 30.0;
  p[1] = 30.0;
  model.set_element_powers(p);
  const auto temps = model.steady_state();

  // All 60 W leave through the coolant.
  EXPECT_NEAR(model.advective_heat_removal(temps, 0), 60.0, 0.1);

  // Outlet temperature from the energy balance: dT = P / (rho cp Q).
  const auto& gl_cool = microchannel::water(celsius_to_kelvin(27.0));
  const double mcp =
      gl_cool.density * gl_cool.specific_heat * ml_per_min(32.3);
  const double dt_expected = 60.0 / mcp;
  const double t_out = model.cavity_outlet_temp(temps, 0);
  EXPECT_NEAR(t_out - celsius_to_kelvin(27.0), dt_expected,
              0.05 * dt_expected);
}

TEST(RcModel, HigherFlowLowersPeakTemperature) {
  RcModel model(cavity_spec(), GridOptions{16, 8});
  model.set_element_power(0, 40.0);
  model.set_all_flows(ml_per_min(10.0));
  const double hot = model.max_temperature(model.steady_state());
  model.set_all_flows(ml_per_min(32.3));
  const double cold = model.max_temperature(model.steady_state());
  EXPECT_GT(hot, cold + 2.0);
}

TEST(RcModel, TemperatureIncreasesAlongFlowDirection) {
  RcModel model(cavity_spec(), GridOptions{16, 8});
  model.set_element_power(0, 40.0);
  model.set_all_flows(ml_per_min(20.0));
  const auto temps = model.steady_state();
  // Fluid nodes: layer 1; compare inlet-row vs outlet-row cell.
  const auto& g = model.grid();
  int cav_layer = -1;
  for (int l = 0; l < g.n_layers(); ++l) {
    if (g.layer(l).kind == LayerKind::kCavity) cav_layer = l;
  }
  ASSERT_GE(cav_layer, 0);
  const double t_in = temps[g.cell_node(cav_layer, 0, 4)];
  const double t_out = temps[g.cell_node(cav_layer, g.rows() - 1, 4)];
  EXPECT_GT(t_out, t_in + 0.5);
}

TEST(RcModel, LinearInPower) {
  RcModel model(cavity_spec(), GridOptions{12, 8});
  model.set_all_flows(ml_per_min(20.0));
  model.set_element_power(0, 10.0);
  const auto t1 = model.steady_state();
  model.set_element_power(0, 20.0);
  const auto t2 = model.steady_state();
  const double in = celsius_to_kelvin(27.0);
  // Temperature *rise* doubles when power doubles (linear network).
  for (std::size_t i = 0; i < t1.size(); i += 37) {
    EXPECT_NEAR(t2[i] - in, 2.0 * (t1[i] - in), 2e-3);
  }
}

TEST(TransientSolver, ConvergesToSteadyState) {
  RcModel model(cavity_spec(), GridOptions{12, 8});
  model.set_all_flows(ml_per_min(20.0));
  model.set_element_power(0, 25.0);
  model.set_element_power(1, 15.0);
  const auto steady = model.steady_state();

  TransientSolver sim(model, 0.05);
  sim.advance(30.0);  // much longer than the thermal time constants
  const auto now = sim.temperatures();
  for (std::size_t i = 0; i < steady.size(); i += 11) {
    EXPECT_NEAR(now[i], steady[i], 0.05);
  }
}

TEST(TransientSolver, StepResponseIsMonotone) {
  RcModel model(cavity_spec(), GridOptions{12, 8});
  model.set_all_flows(ml_per_min(20.0));
  TransientSolver sim(model, 0.05);
  sim.initialize_steady();  // zero-power steady state
  model.set_element_power(0, 30.0);
  const int heater = model.grid().element_id("bottom_heater");
  double prev = model.element_max(sim.temperatures(), heater);
  for (int s = 0; s < 40; ++s) {
    sim.step();
    const double cur = model.element_max(sim.temperatures(), heater);
    EXPECT_GE(cur, prev - 1e-9);
    prev = cur;
  }
}

TEST(TransientSolver, FlowChangeMidRunIsHandled) {
  RcModel model(cavity_spec(), GridOptions{12, 8});
  model.set_all_flows(ml_per_min(10.0));
  model.set_element_power(0, 40.0);
  TransientSolver sim(model, 0.1);
  sim.initialize_steady();
  const int heater = model.grid().element_id("bottom_heater");
  const double hot = model.element_max(sim.temperatures(), heater);
  model.set_all_flows(ml_per_min(32.3));  // matrix version bump
  sim.advance(20.0);
  const double cooled = model.element_max(sim.temperatures(), heater);
  EXPECT_LT(cooled, hot - 1.0);
}

TEST(RcModel, DiscreteChannelModelAgreesWithHomogenized) {
  // The detailed per-channel model and the homogenized porous-media
  // model must agree on peak temperature within a few percent of the
  // total rise (the paper reports <= 3.4% error vs detailed CFD).
  StackSpec spec = cavity_spec();
  RcModel coarse(spec, GridOptions{16, 8});
  GridOptions fine;
  fine.rows = 16;
  fine.discrete_channels = true;
  RcModel detailed(cavity_spec(), fine);

  for (auto* m : {&coarse, &detailed}) {
    m->set_all_flows(ml_per_min(32.3));
    std::vector<double> p(m->grid().element_count(), 0.0);
    p[0] = 30.0;
    p[1] = 30.0;
    m->set_element_powers(p);
  }
  const double rise_c =
      coarse.max_temperature(coarse.steady_state()) -
      celsius_to_kelvin(27.0);
  const double rise_d =
      detailed.max_temperature(detailed.steady_state()) -
      celsius_to_kelvin(27.0);
  EXPECT_NEAR(rise_c, rise_d, 0.10 * rise_d);
}

TEST(RcModel, MatrixIsDiagonallyDominant) {
  RcModel model(cavity_spec(), GridOptions{12, 8});
  model.set_all_flows(ml_per_min(20.0));
  EXPECT_TRUE(model.conductance().is_diagonally_dominant(1e-9));
}

TEST(Floorplan, ParseRoundTrip) {
  std::istringstream in(
      "# comment\n"
      "core0 0 0 2.5 4\n"
      "core1 2.5 0 2.5 4\n");
  const Floorplan fp = Floorplan::parse(in);
  EXPECT_EQ(fp.size(), 2u);
  EXPECT_NEAR(fp[0].rect.w, mm(2.5), 1e-12);
  EXPECT_NO_THROW(fp.validate(mm(5.0), mm(4.0)));
  std::istringstream in2(fp.to_text());
  const Floorplan fp2 = Floorplan::parse(in2);
  EXPECT_EQ(fp2.size(), 2u);
}

TEST(Floorplan, RejectsOverlap) {
  Floorplan fp;
  fp.add("a", Rect{0, 0, mm(2), mm(2)});
  fp.add("b", Rect{mm(1), 0, mm(2), mm(2)});
  EXPECT_THROW(fp.validate(mm(4), mm(4)), InvalidArgument);
}

TEST(StackSpec, RejectsCavityOnBoundary) {
  StackSpec spec;
  spec.width = mm(5);
  spec.length = mm(5);
  const auto water = microchannel::water(300.0);
  spec.layers.push_back(Layer::cavity("cav", um(100), um(50), um(150),
                                      materials::silicon(), water));
  spec.layers.push_back(Layer::solid("die", mm(0.15), materials::silicon()));
  EXPECT_THROW(spec.validate(), InvalidArgument);
}

}  // namespace
}  // namespace tac3d::thermal
