// Unit tests for the common utilities: units, geometry, RNG,
// interpolation tables, text tables.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "common/error.hpp"
#include "common/geometry.hpp"
#include "common/interp.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "common/units.hpp"

namespace tac3d {
namespace {

TEST(Units, TemperatureConversionsRoundTrip) {
  EXPECT_DOUBLE_EQ(celsius_to_kelvin(0.0), 273.15);
  EXPECT_DOUBLE_EQ(kelvin_to_celsius(celsius_to_kelvin(85.0)), 85.0);
}

TEST(Units, FlowRateConversions) {
  EXPECT_NEAR(ml_per_min(60.0), 1e-6, 1e-15);  // 60 ml/min = 1 ml/s
  EXPECT_NEAR(to_ml_per_min(ml_per_min(32.3)), 32.3, 1e-9);
  EXPECT_DOUBLE_EQ(l_per_min(1.0), ml_per_min(1000.0));
}

TEST(Units, AreaAndFluxConversions) {
  EXPECT_DOUBLE_EQ(mm2(115.0), 115e-6);
  EXPECT_DOUBLE_EQ(w_per_cm2(250.0), 2.5e6);
  EXPECT_DOUBLE_EQ(to_w_per_cm2(w_per_cm2(30.2)), 30.2);
  EXPECT_DOUBLE_EQ(to_bar(bar(0.9)), 0.9);
}

TEST(Geometry, OverlapArea) {
  const Rect a{0, 0, 2, 2};
  const Rect b{1, 1, 2, 2};
  EXPECT_DOUBLE_EQ(a.overlap_area(b), 1.0);
  EXPECT_TRUE(a.intersects(b));
  const Rect c{5, 5, 1, 1};
  EXPECT_DOUBLE_EQ(a.overlap_area(c), 0.0);
  EXPECT_FALSE(a.intersects(c));
}

TEST(Geometry, TouchingRectanglesDoNotIntersect) {
  const Rect a{0, 0, 1, 1};
  const Rect b{1, 0, 1, 1};  // shares an edge
  EXPECT_FALSE(a.intersects(b));
}

TEST(Geometry, Containment) {
  const Rect chip{0, 0, 10, 10};
  EXPECT_TRUE(chip.contains(Rect{0, 0, 10, 10}));
  EXPECT_TRUE(chip.contains(Rect{2, 3, 4, 5}));
  EXPECT_FALSE(chip.contains(Rect{8, 8, 3, 3}));
}

TEST(Geometry, BoundingBox) {
  const Rect box = bounding_box({Rect{0, 0, 1, 1}, Rect{3, 4, 2, 1}});
  EXPECT_DOUBLE_EQ(box.x, 0.0);
  EXPECT_DOUBLE_EQ(box.right(), 5.0);
  EXPECT_DOUBLE_EQ(box.top(), 5.0);
}

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformIsInRangeAndRoughlyCentered) {
  Rng rng(7);
  double sum = 0.0;
  for (int i = 0; i < 20000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 20000, 0.5, 0.01);
}

TEST(Rng, NormalHasUnitVariance) {
  Rng rng(11);
  double sum = 0.0, sq = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sq / n, 1.0, 0.03);
}

TEST(LinearTable, InterpolatesLinearly) {
  const LinearTable t({0.0, 1.0, 2.0}, {0.0, 10.0, 40.0});
  EXPECT_DOUBLE_EQ(t(0.5), 5.0);
  EXPECT_DOUBLE_EQ(t(1.5), 25.0);
  EXPECT_DOUBLE_EQ(t.derivative(0.5), 10.0);
  EXPECT_DOUBLE_EQ(t.derivative(1.5), 30.0);
}

TEST(LinearTable, ClampsByDefault) {
  const LinearTable t({0.0, 1.0}, {3.0, 5.0});
  EXPECT_DOUBLE_EQ(t(-10.0), 3.0);
  EXPECT_DOUBLE_EQ(t(10.0), 5.0);
}

TEST(LinearTable, ThrowPolicy) {
  const LinearTable t({0.0, 1.0}, {3.0, 5.0}, LinearTable::OutOfRange::kThrow);
  EXPECT_THROW(t(2.0), ModelRangeError);
  EXPECT_NO_THROW(t(0.5));
}

TEST(LinearTable, ExtrapolatePolicy) {
  const LinearTable t({0.0, 1.0}, {0.0, 2.0},
                      LinearTable::OutOfRange::kExtrapolate);
  EXPECT_DOUBLE_EQ(t(2.0), 4.0);
}

TEST(LinearTable, InverseOfMonotone) {
  const LinearTable t({0.0, 1.0, 2.0}, {10.0, 20.0, 50.0});
  EXPECT_DOUBLE_EQ(t.inverse(15.0), 0.5);
  EXPECT_DOUBLE_EQ(t.inverse(35.0), 1.5);
  // Decreasing table.
  const LinearTable d({0.0, 1.0}, {5.0, 1.0});
  EXPECT_DOUBLE_EQ(d.inverse(3.0), 0.5);
}

TEST(LinearTable, InverseRejectsNonMonotone) {
  const LinearTable t({0.0, 1.0, 2.0}, {0.0, 5.0, 3.0});
  EXPECT_THROW(t.inverse(1.0), InvalidArgument);
}

TEST(LinearTable, RejectsUnsortedAbscissae) {
  EXPECT_THROW(LinearTable({1.0, 0.0}, {0.0, 1.0}), InvalidArgument);
  EXPECT_THROW(LinearTable({0.0, 0.0}, {0.0, 1.0}), InvalidArgument);
}

TEST(TextTable, AlignsColumnsAndCountsRows) {
  TextTable t;
  t.set_header({"a", "bbbb"});
  t.add_row({"xxxx", "y"});
  t.add_row("row", {1.0, 2.5}, 1);
  EXPECT_EQ(t.rows(), 2u);
  const std::string s = t.str();
  EXPECT_NE(s.find("xxxx"), std::string::npos);
  EXPECT_NE(s.find("2.5"), std::string::npos);
  EXPECT_NE(s.find("----"), std::string::npos);
}

TEST(TextTable, FormattersProducePercentAndPrecision) {
  EXPECT_EQ(fmt(3.14159, 2), "3.14");
  EXPECT_EQ(fmt_pct(0.5), "50.0%");
  EXPECT_EQ(fmt_pct(0.123456, 2), "12.35%");
}

TEST(Errors, HierarchyIsCatchable) {
  try {
    throw NumericalError("boom");
  } catch (const Error& e) {
    EXPECT_STREQ(e.what(), "boom");
  }
  EXPECT_THROW(require(false, "msg"), InvalidArgument);
  EXPECT_NO_THROW(require(true, "msg"));
}

}  // namespace
}  // namespace tac3d
