// Tests of the scenario subsystem: SimulationSession stepping vs the
// one-shot simulate() wrapper, ScenarioMatrix cartesian expansion
// (including the paper's seven Fig. 6/7 configurations), and the
// parallel sweep runner (determinism serial vs parallel, TAC3D_JOBS,
// error capture, report sorting).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include "sim/sweep.hpp"

namespace tac3d::sim {
namespace {

/// A deliberately small scenario so the closed loop runs in milliseconds.
Scenario quick_scenario(int tiers = 2,
                        PolicyKind policy = PolicyKind::kLcFuzzy,
                        power::WorkloadKind workload =
                            power::WorkloadKind::kWebServer) {
  Scenario s;
  s.tiers = tiers;
  s.policy = policy;
  s.workload = workload;
  s.trace_seconds = 20;
  s.grid = thermal::GridOptions{10, 10};
  return s;
}

void expect_same_metrics(const SimMetrics& a, const SimMetrics& b,
                         const std::string& what) {
  // Bitwise equality: both paths must execute the identical arithmetic.
  EXPECT_EQ(a.duration, b.duration) << what;
  EXPECT_EQ(a.peak_temp, b.peak_temp) << what;
  EXPECT_EQ(a.any_hot_time, b.any_hot_time) << what;
  EXPECT_EQ(a.chip_energy, b.chip_energy) << what;
  EXPECT_EQ(a.pump_energy, b.pump_energy) << what;
  EXPECT_EQ(a.offered_work, b.offered_work) << what;
  EXPECT_EQ(a.lost_work, b.lost_work) << what;
  EXPECT_EQ(a.avg_flow_fraction, b.avg_flow_fraction) << what;
  EXPECT_EQ(a.migrations, b.migrations) << what;
  EXPECT_EQ(a.core_hot_time, b.core_hot_time) << what;
}

// --- SimulationSession ---------------------------------------------------

TEST(SimulationSession, StepwiseRunMatchesSimulateWrapper) {
  const Scenario spec = quick_scenario();

  ScenarioInstance one_shot = instantiate(spec);
  const SimMetrics reference = simulate(*one_shot.soc, *one_shot.trace,
                                        *one_shot.policy, one_shot.sim);

  ScenarioInstance stepped = instantiate(spec);
  SimulationSession session = stepped.session();
  // Mixed driving styles: a few manual steps, a run_until, then the rest.
  session.step();
  session.step();
  session.run_until(10.0);
  session.run_to_end();

  expect_same_metrics(reference, session.metrics(), "stepwise vs simulate");
}

TEST(SimulationSession, ExposesMidRunState) {
  ScenarioInstance inst = instantiate(quick_scenario());
  SimulationSession session = inst.session();

  EXPECT_FALSE(session.done());
  EXPECT_EQ(session.steps_done(), 0);
  EXPECT_GT(session.total_steps(), 0);
  EXPECT_DOUBLE_EQ(session.time(), 0.0);
  EXPECT_FALSE(session.temperatures().empty());

  session.step();
  EXPECT_EQ(session.steps_done(), 1);
  EXPECT_DOUBLE_EQ(session.time(), session.config().control_dt);
  const SimMetrics mid = session.metrics();
  EXPECT_DOUBLE_EQ(mid.duration, session.config().control_dt);
  EXPECT_GT(mid.chip_energy, 0.0);
  EXPECT_GT(session.max_core_temp(), 273.15);
  EXPECT_GE(session.pump_level(), 0);  // liquid-cooled scenario

  const int taken = session.run_until(5.0);
  EXPECT_GT(taken, 0);
  EXPECT_NEAR(session.time(), 5.0, session.config().control_dt);

  session.run_to_end();
  EXPECT_TRUE(session.done());
  session.step();  // no-op past the end
  EXPECT_EQ(session.steps_done(), session.total_steps());
  EXPECT_DOUBLE_EQ(session.metrics().duration,
                   session.total_steps() * session.config().control_dt);
}

TEST(SimulationSession, RunUntilIsIdempotentPastTheEnd) {
  ScenarioInstance inst = instantiate(quick_scenario());
  SimulationSession session = inst.session();
  session.run_to_end();
  EXPECT_EQ(session.run_until(1e9), 0);
  EXPECT_EQ(session.run_to_end(), 0);
}

// --- ScenarioMatrix ------------------------------------------------------

TEST(ScenarioMatrix, ExpandsThePaperSevenConfigurations) {
  const auto scenarios = ScenarioMatrix::paper_fig67()
                             .workloads({power::WorkloadKind::kMaxUtil})
                             .trace_seconds(30)
                             .build();
  ASSERT_EQ(scenarios.size(), 7u);

  const std::vector<std::pair<int, PolicyKind>> expected = {
      {2, PolicyKind::kAcLb}, {2, PolicyKind::kAcTdvfsLb},
      {2, PolicyKind::kLcLb}, {2, PolicyKind::kLcFuzzy},
      {4, PolicyKind::kAcLb}, {4, PolicyKind::kLcLb},
      {4, PolicyKind::kLcFuzzy}};
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(scenarios[i].tiers, expected[i].first) << i;
    EXPECT_EQ(scenarios[i].policy, expected[i].second) << i;
    EXPECT_EQ(scenarios[i].workload, power::WorkloadKind::kMaxUtil) << i;
    EXPECT_EQ(scenarios[i].trace_seconds, 30) << i;
    EXPECT_FALSE(scenarios[i].label.empty()) << i;
  }
  // The paper does not evaluate 4-tier AC_TDVFS_LB.
  for (const Scenario& s : scenarios) {
    EXPECT_FALSE(s.tiers == 4 && s.policy == PolicyKind::kAcTdvfsLb);
  }
}

TEST(ScenarioMatrix, CartesianExpansionCoversAllAxes) {
  const auto scenarios =
      ScenarioMatrix()
          .tiers({2, 4})
          .policies({PolicyKind::kLcLb})
          .workloads({power::WorkloadKind::kWebServer,
                      power::WorkloadKind::kDatabase})
          .seeds({1, 2, 3})
          .grid(thermal::GridOptions{8, 8})
          .trace_seconds(15)
          .build();
  EXPECT_EQ(scenarios.size(), 2u * 2u * 3u);
  std::vector<std::string> labels;
  for (const Scenario& s : scenarios) {
    EXPECT_EQ(s.grid.rows, 8);
    EXPECT_EQ(s.trace_seconds, 15);
    labels.push_back(s.label);
  }
  std::sort(labels.begin(), labels.end());
  EXPECT_EQ(std::unique(labels.begin(), labels.end()), labels.end())
      << "labels must be unique across the matrix";
}

TEST(ScenarioMatrix, FiltersCompose) {
  const auto scenarios =
      ScenarioMatrix::paper_fig67()
          .filter([](const Scenario& s) { return s.tiers == 2; })
          .build();
  EXPECT_EQ(scenarios.size(), 4u);
  for (const Scenario& s : scenarios) EXPECT_EQ(s.tiers, 2);
}

TEST(ScenarioMatrix, CoolingDefaultsFollowThePolicy) {
  Scenario s = quick_scenario(2, PolicyKind::kAcLb);
  EXPECT_EQ(s.effective_cooling(), arch::CoolingKind::kAirCooled);
  s.cooling = arch::CoolingKind::kLiquidCooled;
  EXPECT_EQ(s.effective_cooling(), arch::CoolingKind::kLiquidCooled);
}

// --- sweep runner --------------------------------------------------------

std::vector<Scenario> small_mixed_batch() {
  return {quick_scenario(2, PolicyKind::kLcFuzzy),
          quick_scenario(2, PolicyKind::kLcLb),
          quick_scenario(2, PolicyKind::kAcLb,
                         power::WorkloadKind::kDatabase),
          quick_scenario(4, PolicyKind::kLcFuzzy,
                         power::WorkloadKind::kMixed),
          quick_scenario(2, PolicyKind::kLcTdvfsLb),
          quick_scenario(2, PolicyKind::kAcTdvfsLb,
                         power::WorkloadKind::kMaxUtil)};
}

TEST(Sweep, SerialAndParallelRunsAreBitwiseIdentical) {
  const auto scenarios = small_mixed_batch();

  SweepOptions serial;
  serial.jobs = 1;
  const SweepReport a = run_sweep(scenarios, serial);

  SweepOptions parallel;
  parallel.jobs = 4;
  parallel.batch_width = 1;  // one scenario per job: all 4 workers engage
  const SweepReport b = run_sweep(scenarios, parallel);

  // Batched lockstep stepping (default auto width) groups same-pattern
  // scenarios into shared jobs — fewer jobs, same bits.
  SweepOptions batched;
  batched.jobs = 4;
  const SweepReport c = run_sweep(scenarios, batched);

  ASSERT_TRUE(a.all_ok());
  ASSERT_TRUE(b.all_ok());
  ASSERT_TRUE(c.all_ok());
  ASSERT_EQ(a.size(), scenarios.size());
  ASSERT_EQ(b.size(), scenarios.size());
  ASSERT_EQ(c.size(), scenarios.size());
  EXPECT_EQ(a.jobs_used(), 1);
  EXPECT_EQ(b.jobs_used(), 4);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.at(i).scenario.label, b.at(i).scenario.label) << i;
    expect_same_metrics(a.at(i).metrics, b.at(i).metrics,
                        a.at(i).scenario.label);
    expect_same_metrics(a.at(i).metrics, c.at(i).metrics,
                        a.at(i).scenario.label + " (batched)");
  }
}

TEST(Sweep, ResultsComeBackInInputOrder) {
  const auto scenarios = small_mixed_batch();
  const SweepReport report = run_sweep(scenarios, {.jobs = 3});
  ASSERT_EQ(report.size(), scenarios.size());
  for (std::size_t i = 0; i < report.size(); ++i) {
    EXPECT_EQ(report.at(i).index, i);
    EXPECT_EQ(report.at(i).scenario.label, scenario_label(scenarios[i]));
  }
}

TEST(Sweep, CapturesScenarioErrorsWithoutAborting) {
  auto scenarios = small_mixed_batch();
  scenarios.resize(2);
  scenarios[1].sim.control_dt = -1.0;  // run_scenario must throw
  const SweepReport report = run_sweep(scenarios, {.jobs = 2});
  ASSERT_EQ(report.size(), 2u);
  EXPECT_TRUE(report.at(0).ok());
  EXPECT_FALSE(report.at(1).ok());
  EXPECT_FALSE(report.at(1).error.empty());
  EXPECT_FALSE(report.all_ok());
  EXPECT_EQ(report.errors().size(), 1u);
}

TEST(Sweep, ReportSortsAndFinds) {
  auto scenarios = small_mixed_batch();
  scenarios.resize(3);
  SweepReport report = run_sweep(scenarios, {.jobs = 2});
  ASSERT_TRUE(report.all_ok());

  report.sort_by(
      [](const SweepResult& r) { return r.metrics.peak_temp; }, false);
  for (std::size_t i = 1; i < report.size(); ++i) {
    EXPECT_GE(report.at(i - 1).metrics.peak_temp,
              report.at(i).metrics.peak_temp);
  }
  report.sort_by_index();
  for (std::size_t i = 0; i < report.size(); ++i) {
    EXPECT_EQ(report.at(i).index, i);
  }

  const SweepResult* found = report.find(report.at(1).scenario.label);
  ASSERT_NE(found, nullptr);
  EXPECT_EQ(found->index, 1u);
  EXPECT_EQ(report.find("no such scenario"), nullptr);

  EXPECT_EQ(report.table().rows(), report.size());
}

TEST(Sweep, ResolveJobsHonorsEnvironment) {
  const char* saved = std::getenv("TAC3D_JOBS");
  const std::string saved_value = saved ? saved : "";

  EXPECT_EQ(resolve_jobs(5), 5);  // explicit request wins

  ::setenv("TAC3D_JOBS", "3", 1);
  EXPECT_EQ(resolve_jobs(0), 3);
  EXPECT_EQ(resolve_jobs(-1), 3);
  EXPECT_EQ(resolve_jobs(2), 2);  // explicit request still wins

  ::setenv("TAC3D_JOBS", "not-a-number", 1);
  EXPECT_GE(resolve_jobs(0), 1);  // falls back to hardware concurrency

  ::setenv("TAC3D_JOBS", "0", 1);
  EXPECT_GE(resolve_jobs(0), 1);

  if (saved) {
    ::setenv("TAC3D_JOBS", saved_value.c_str(), 1);
  } else {
    ::unsetenv("TAC3D_JOBS");
  }
}

TEST(Sweep, EnvironmentVariablePinsWorkerCount) {
  const char* saved = std::getenv("TAC3D_JOBS");
  const std::string saved_value = saved ? saved : "";
  ::setenv("TAC3D_JOBS", "2", 1);

  auto scenarios = small_mixed_batch();
  scenarios.resize(3);
  const SweepReport report = run_sweep(scenarios);  // jobs = 0 -> env
  EXPECT_EQ(report.jobs_used(), 2);

  if (saved) {
    ::setenv("TAC3D_JOBS", saved_value.c_str(), 1);
  } else {
    ::unsetenv("TAC3D_JOBS");
  }
}

}  // namespace
}  // namespace tac3d::sim
