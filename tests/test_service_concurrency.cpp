// Concurrency contract of the sweep service: several clients hammering
// one server over loopback get results bitwise identical to a direct
// run_sweep of the same scenarios, the shared warm bank serves every
// repeat submission from its cached tiers, acks always precede the
// job's streamed results, and admission respects the core budget.
#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "service/client.hpp"
#include "service/server.hpp"
#include "sim/bank.hpp"
#include "sim/prepared.hpp"
#include "sim/sweep.hpp"

namespace tac3d::service {
namespace {

/// The paper's Fig. 6/7 stack x policy matrix, shrunk (short trace,
/// coarse grid) so the whole suite runs in seconds.
std::vector<sim::Scenario> paper_matrix() {
  sim::Scenario base;
  base.trace_seconds = 20;
  base.grid = thermal::GridOptions{10, 10};
  return sim::ScenarioMatrix::paper_fig67().base(base).build();
}

void expect_bitwise_equal(const sim::SimMetrics& a, const sim::SimMetrics& b,
                          const std::string& what) {
  EXPECT_EQ(a.duration, b.duration) << what;
  EXPECT_EQ(a.peak_temp, b.peak_temp) << what;
  EXPECT_EQ(a.any_hot_time, b.any_hot_time) << what;
  EXPECT_EQ(a.chip_energy, b.chip_energy) << what;
  EXPECT_EQ(a.pump_energy, b.pump_energy) << what;
  EXPECT_EQ(a.offered_work, b.offered_work) << what;
  EXPECT_EQ(a.lost_work, b.lost_work) << what;
  EXPECT_EQ(a.avg_flow_fraction, b.avg_flow_fraction) << what;
  EXPECT_EQ(a.migrations, b.migrations) << what;
  EXPECT_EQ(a.core_hot_time, b.core_hot_time) << what;
}

TEST(ServiceConcurrency, ConcurrentClientsMatchDirectSweepBitwise) {
  const std::vector<sim::Scenario> scenarios = paper_matrix();

  // Direct reference: the plain parallel sweep runner.
  const sim::SweepReport reference = sim::run_sweep(scenarios);
  ASSERT_TRUE(reference.all_ok());

  ServerOptions opts;
  opts.service.core_budget = 4;
  ServiceServer server(opts);
  server.start();

  constexpr int kClients = 3;
  std::vector<SweepOutcome> outcomes(kClients);
  std::vector<std::string> failures(kClients);
  std::vector<std::thread> threads;
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      try {
        ServiceClient client;
        client.connect("127.0.0.1", server.port());
        outcomes[static_cast<std::size_t>(c)] =
            client.run_sweep(scenarios, /*cores_requested=*/2);
      } catch (const std::exception& e) {
        failures[static_cast<std::size_t>(c)] = e.what();
      }
    });
  }
  for (auto& t : threads) t.join();

  for (int c = 0; c < kClients; ++c) {
    SCOPED_TRACE("client " + std::to_string(c));
    ASSERT_TRUE(failures[static_cast<std::size_t>(c)].empty())
        << failures[static_cast<std::size_t>(c)];
    const SweepOutcome& out = outcomes[static_cast<std::size_t>(c)];
    EXPECT_FALSE(out.complete.was_cancelled);
    EXPECT_EQ(out.complete.failed, 0u);
    EXPECT_EQ(out.complete.completed, scenarios.size());
    ASSERT_EQ(out.results.size(), scenarios.size());
    for (std::size_t i = 0; i < scenarios.size(); ++i) {
      ASSERT_TRUE(out.results[i].ok) << out.results[i].error;
      EXPECT_EQ(out.results[i].index, i);
      expect_bitwise_equal(out.results[i].metrics,
                           reference.at(i).metrics,
                           "scenario " + scenarios[i].label);
    }
  }

  server.stop();
}

TEST(ServiceConcurrency, WarmBankServesRepeatSubmissionsFromCache) {
  const std::vector<sim::Scenario> scenarios = paper_matrix();

  ServerOptions opts;
  opts.service.core_budget = 2;
  ServiceServer server(opts);
  server.start();

  // Scenarios cross the wire without their attached trace pointer; the
  // server re-synthesizes from the (workload, seed, length) axes. Count
  // the distinct bank keys of that server-side view: policies sharing a
  // stack share model and steady artifacts.
  std::set<std::string> steady_keys, model_keys;
  for (sim::Scenario s : scenarios) {
    s.trace.reset();
    steady_keys.insert(sim::scenario_steady_key(s));
    model_keys.insert(sim::scenario_model_key(s));
  }
  ASSERT_LT(steady_keys.size(), scenarios.size());  // sharing is real

  ServiceClient first;
  first.connect("127.0.0.1", server.port());
  const SweepOutcome cold = first.run_sweep(scenarios, 2);
  ASSERT_EQ(cold.complete.failed, 0u);

  const protocol::StatusMsg after_cold = first.query_status();
  // The cold sweep built each distinct steady state exactly once and
  // served the equal-keyed repeats from the tier.
  EXPECT_EQ(after_cold.bank_steady_misses, steady_keys.size());
  EXPECT_EQ(after_cold.bank_steady_hits,
            scenarios.size() - steady_keys.size());
  EXPECT_EQ(after_cold.bank_model_misses, model_keys.size());

  // A second client replaying the matrix must be served entirely from
  // the shared warm bank: steady hits grow by the scenario count, the
  // miss counters stay frozen.
  ServiceClient second;
  second.connect("127.0.0.1", server.port());
  const SweepOutcome warm = second.run_sweep(scenarios, 2);
  ASSERT_EQ(warm.complete.failed, 0u);

  const protocol::StatusMsg after_warm = second.query_status();
  EXPECT_EQ(after_warm.bank_steady_misses, after_cold.bank_steady_misses);
  EXPECT_EQ(after_warm.bank_steady_hits,
            after_cold.bank_steady_hits + scenarios.size());
  EXPECT_EQ(after_warm.bank_model_misses, after_cold.bank_model_misses);
  EXPECT_EQ(after_warm.scenarios_completed, 2 * scenarios.size());

  // Warm results stay bitwise identical to cold ones.
  ASSERT_EQ(warm.results.size(), cold.results.size());
  for (std::size_t i = 0; i < warm.results.size(); ++i) {
    expect_bitwise_equal(warm.results[i].metrics, cold.results[i].metrics,
                         "warm vs cold " + scenarios[i].label);
  }

  server.stop();
}

TEST(ServiceConcurrency, ResultsStreamBeforeSweepCompletes) {
  // Streaming contract: with a multi-scenario job, at least one
  // kScenarioResult is observable before kSweepComplete (trivially true
  // by ordering) AND the ack arrives before any result.
  std::vector<sim::Scenario> scenarios = paper_matrix();
  scenarios.resize(3);

  ServerOptions opts;
  opts.service.core_budget = 2;
  ServiceServer server(opts);
  server.start();

  ServiceClient client;
  client.connect("127.0.0.1", server.port());
  const protocol::SubmitAckMsg ack = client.submit_sweep(scenarios, 2);
  EXPECT_EQ(ack.admitted, 1);

  int results_seen = 0;
  bool complete_seen = false;
  const SweepOutcome out =
      client.collect(ack.job_id, [&](const protocol::ScenarioResultMsg&) {
        EXPECT_FALSE(complete_seen);
        ++results_seen;
      });
  complete_seen = true;
  EXPECT_EQ(results_seen, 3);
  EXPECT_EQ(out.complete.completed, 3u);

  server.stop();
}

}  // namespace
}  // namespace tac3d::service
