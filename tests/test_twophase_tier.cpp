// Tests of the two-phase tier model (extension: flow boiling under a
// full processor floorplan).
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/units.hpp"
#include "thermal/floorplan.hpp"
#include "twophase/tier_model.hpp"

namespace tac3d::twophase {
namespace {

TwoPhaseTierDesign tier_design(double height_um = 400.0) {
  TwoPhaseTierDesign d;
  d.tier_width = mm(10.0);
  d.tier_length = mm(10.0);
  d.die_thickness = um(150.0);
  d.channel_width = um(85.0);
  d.channel_height = um(height_um);
  d.n_channels = 58;  // ~170 um pitch
  d.refrigerant = &Refrigerant::r245fa();
  d.inlet_sat_temp = celsius_to_kelvin(30.0);
  d.total_mass_flow = 40.0 / (0.5 * d.refrigerant->latent_heat(
                                        d.inlet_sat_temp));
  return d;
}

thermal::Floorplan half_hot_floorplan() {
  thermal::Floorplan fp;
  fp.add("hot", Rect{0.0, 0.0, mm(5.0), mm(10.0)});
  fp.add("cool", Rect{mm(5.0), 0.0, mm(5.0), mm(10.0)});
  return fp;
}

TEST(TierModel, OutletQualityMatchesEnergyBalance) {
  const auto d = tier_design();
  const auto fp = half_hot_floorplan();
  const std::vector<double> powers{20.0, 20.0};  // uniform 40 W
  const auto res = simulate_twophase_tier(d, fp, powers, 20);
  const double hfg = d.refrigerant->latent_heat(d.inlet_sat_temp);
  const double x_expected = 40.0 / (d.total_mass_flow * hfg);
  EXPECT_NEAR(res.max_outlet_quality, x_expected, 0.1 * x_expected);
}

TEST(TierModel, HotHalfRunsHotter) {
  const auto d = tier_design();
  const auto fp = half_hot_floorplan();
  const std::vector<double> powers{35.0, 5.0};
  const auto res = simulate_twophase_tier(d, fp, powers, 20);
  // Channels under the hot half (low channel index) must be hotter.
  const int mid_row = res.rows / 2;
  EXPECT_GT(res.base(mid_row, 5), res.base(mid_row, res.channels - 6) + 1.0);
  EXPECT_GT(res.peak_base_temp, celsius_to_kelvin(30.0));
}

TEST(TierModel, TemperatureUniformityBeatsFluxContrast) {
  // The two-phase selling point: a 7x power contrast produces a much
  // smaller superheat contrast.
  const auto d = tier_design();
  const auto fp = half_hot_floorplan();
  const std::vector<double> powers{35.0, 5.0};
  const auto res = simulate_twophase_tier(d, fp, powers, 20);
  const int mid_row = res.rows / 2;
  const double sh_hot =
      res.wall(mid_row, 5) - d.inlet_sat_temp;
  const double sh_cool =
      res.wall(mid_row, res.channels - 6) - d.inlet_sat_temp;
  EXPECT_LT(sh_hot / std::max(sh_cool, 0.1), 4.0);  // << 7x
}

TEST(TierModel, ShallowChannelsRaisePressureDrop) {
  const auto fp = half_hot_floorplan();
  const std::vector<double> powers{20.0, 20.0};
  const auto deep = simulate_twophase_tier(tier_design(500.0), fp, powers,
                                           16);
  const auto shallow = simulate_twophase_tier(tier_design(150.0), fp,
                                              powers, 16);
  EXPECT_GT(shallow.pressure_drop, 3.0 * deep.pressure_drop);
  EXPECT_GT(shallow.pumping_power, deep.pumping_power);
}

TEST(TierModel, DryoutFlaggedWhenStarved) {
  auto d = tier_design();
  d.total_mass_flow *= 0.2;
  const auto fp = half_hot_floorplan();
  const std::vector<double> powers{30.0, 30.0};
  const auto res = simulate_twophase_tier(d, fp, powers, 16);
  EXPECT_TRUE(res.dryout);
}

TEST(TierModel, ValidatesInputs) {
  const auto d = tier_design();
  const auto fp = half_hot_floorplan();
  const std::vector<double> wrong{1.0};
  EXPECT_THROW(simulate_twophase_tier(d, fp, wrong, 16), InvalidArgument);
  auto bad = tier_design();
  bad.n_channels = 0;
  const std::vector<double> powers{20.0, 20.0};
  EXPECT_THROW(simulate_twophase_tier(bad, fp, powers, 16),
               InvalidArgument);
}

}  // namespace
}  // namespace tac3d::twophase
