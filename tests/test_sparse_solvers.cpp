// Direct and iterative solver tests, including property sweeps on random
// diagonally dominant systems (the class produced by the RC assembly).
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "sparse/banded_lu.hpp"
#include "sparse/csr.hpp"
#include "sparse/iterative.hpp"
#include "sparse/preconditioner.hpp"
#include "sparse/rcm.hpp"
#include "sparse/solver.hpp"
#include "sparse/tridiag.hpp"

namespace tac3d::sparse {
namespace {

/// Random strictly diagonally dominant sparse matrix; asymmetric if
/// requested (mimicking advection terms).
CsrMatrix random_dd(std::int32_t n, double density, bool symmetric,
                    Rng& rng) {
  std::vector<Triplet> trips;
  std::vector<double> rowsum(n, 0.0);
  for (std::int32_t i = 0; i < n; ++i) {
    for (std::int32_t j = 0; j < n; ++j) {
      if (i == j) continue;
      if (symmetric && j < i) continue;
      if (rng.uniform() < density) {
        const double v = rng.uniform(-1.0, 1.0);
        trips.push_back({i, j, v});
        rowsum[i] += std::abs(v);
        if (symmetric) {
          trips.push_back({j, i, v});
          rowsum[j] += std::abs(v);
        }
      }
    }
  }
  for (std::int32_t i = 0; i < n; ++i) {
    trips.push_back({i, i, rowsum[i] + 1.0 + rng.uniform()});
  }
  return CsrMatrix::from_triplets(n, n, std::move(trips));
}

double residual_inf(const CsrMatrix& a, const std::vector<double>& x,
                    const std::vector<double>& b) {
  std::vector<double> ax(b.size());
  a.multiply(x, ax);
  double r = 0.0;
  for (std::size_t i = 0; i < b.size(); ++i) {
    r = std::max(r, std::abs(ax[i] - b[i]));
  }
  return r;
}

TEST(Tridiagonal, SolvesKnownSystem) {
  // 2x = [2, 4, 6] with identity-like tridiagonal.
  const std::vector<double> lower{0, -1, -1};
  const std::vector<double> diag{2, 2, 2};
  const std::vector<double> upper{-1, -1, 0};
  const std::vector<double> rhs{1, 0, 1};
  const auto x = solve_tridiagonal(lower, diag, upper, rhs);
  // Solution of the discrete Poisson problem: [1, 1, 1].
  EXPECT_NEAR(x[0], 1.0, 1e-12);
  EXPECT_NEAR(x[1], 1.0, 1e-12);
  EXPECT_NEAR(x[2], 1.0, 1e-12);
}

TEST(Tridiagonal, ThrowsOnSingular) {
  const std::vector<double> z{0.0};
  EXPECT_THROW(solve_tridiagonal(z, z, z, z), NumericalError);
}

TEST(Rcm, ReducesBandwidthOfALongPath) {
  // A path graph numbered randomly has large bandwidth; RCM restores ~1.
  const std::int32_t n = 50;
  std::vector<std::int32_t> label(n);
  for (std::int32_t i = 0; i < n; ++i) label[i] = i;
  Rng rng(7);
  for (std::int32_t i = n - 1; i > 0; --i) {
    std::swap(label[i], label[rng.uniform_index(i + 1)]);
  }
  std::vector<Triplet> trips;
  for (std::int32_t i = 0; i < n; ++i) trips.push_back({label[i], label[i], 2.0});
  for (std::int32_t i = 0; i + 1 < n; ++i) {
    trips.push_back({label[i], label[i + 1], -1.0});
    trips.push_back({label[i + 1], label[i], -1.0});
  }
  const auto a = CsrMatrix::from_triplets(n, n, std::move(trips));
  const auto perm = rcm_ordering(a);
  EXPECT_GT(bandwidth(a, {}), 5);
  EXPECT_EQ(bandwidth(a, perm), 1);
}

TEST(BandedLu, SolvesSmallSystemExactly) {
  const CsrMatrix a = CsrMatrix::from_triplets(
      2, 2, {{0, 0, 2.0}, {0, 1, 1.0}, {1, 0, 1.0}, {1, 1, 3.0}});
  BandedLu lu(a);
  const std::vector<double> b{5.0, 10.0};
  std::vector<double> x(2);
  lu.solve(b, x);
  EXPECT_NEAR(x[0], 1.0, 1e-12);
  EXPECT_NEAR(x[1], 3.0, 1e-12);
}

TEST(BandedLu, RefactorAfterValueUpdate) {
  CsrMatrix a = CsrMatrix::from_triplets(
      2, 2, {{0, 0, 2.0}, {0, 1, 1.0}, {1, 0, 1.0}, {1, 1, 3.0}});
  BandedLu lu(a);
  a.coeff_ref(0, 0) = 4.0;
  lu.factor(a);
  const std::vector<double> b{9.0, 10.0};
  std::vector<double> x(2);
  lu.solve(b, x);
  EXPECT_NEAR(4.0 * x[0] + x[1], 9.0, 1e-12);
  EXPECT_NEAR(x[0] + 3.0 * x[1], 10.0, 1e-12);
}

struct SolverCase {
  std::int32_t n;
  double density;
  bool symmetric;
};

class SolverSweep : public ::testing::TestWithParam<SolverCase> {};

TEST_P(SolverSweep, BandedLuResidualSmall) {
  const auto p = GetParam();
  Rng rng(42 + p.n);
  const CsrMatrix a = random_dd(p.n, p.density, p.symmetric, rng);
  std::vector<double> b(p.n);
  for (auto& v : b) v = rng.uniform(-10.0, 10.0);
  BandedLu lu(a);
  std::vector<double> x(p.n);
  lu.solve(b, x);
  EXPECT_LT(residual_inf(a, x, b), 1e-8);
}

TEST_P(SolverSweep, BicgstabIlu0ResidualSmall) {
  const auto p = GetParam();
  Rng rng(1042 + p.n);
  const CsrMatrix a = random_dd(p.n, p.density, p.symmetric, rng);
  std::vector<double> b(p.n);
  for (auto& v : b) v = rng.uniform(-10.0, 10.0);
  std::vector<double> x(p.n, 0.0);
  Ilu0Preconditioner m(a);
  const auto res = bicgstab(a, b, x, m, {1e-12, 2000});
  EXPECT_TRUE(res.converged);
  EXPECT_LT(residual_inf(a, x, b), 1e-6);
}

TEST_P(SolverSweep, CgConvergesOnSymmetricSystems) {
  const auto p = GetParam();
  if (!p.symmetric) GTEST_SKIP() << "CG requires symmetry";
  Rng rng(2042 + p.n);
  const CsrMatrix a = random_dd(p.n, p.density, true, rng);
  std::vector<double> b(p.n);
  for (auto& v : b) v = rng.uniform(-10.0, 10.0);
  std::vector<double> x(p.n, 0.0);
  JacobiPreconditioner m(a);
  const auto res = cg(a, b, x, m, {1e-12, 2000});
  EXPECT_TRUE(res.converged);
  EXPECT_LT(residual_inf(a, x, b), 1e-6);
}

INSTANTIATE_TEST_SUITE_P(
    RandomSystems, SolverSweep,
    ::testing::Values(SolverCase{10, 0.3, true}, SolverCase{10, 0.3, false},
                      SolverCase{50, 0.1, true}, SolverCase{50, 0.1, false},
                      SolverCase{200, 0.02, true},
                      SolverCase{200, 0.02, false},
                      SolverCase{400, 0.01, false}));

TEST(SolverFacade, AllKindsSolveTheSameSystem) {
  Rng rng(9);
  const CsrMatrix a = random_dd(64, 0.1, false, rng);
  std::vector<double> b(64);
  for (auto& v : b) v = rng.uniform(-5.0, 5.0);
  for (const auto kind :
       {SolverKind::kBandedLu, SolverKind::kBicgstabIlu0,
        SolverKind::kBicgstabJacobi}) {
    auto solver = make_solver(kind, a);
    std::vector<double> x(64, 0.0);
    solver->solve(b, x);
    EXPECT_LT(residual_inf(a, x, b), 1e-6) << solver->name();
  }
}

TEST(SolverFacade, UpdateValuesTracksMatrixChanges) {
  Rng rng(11);
  CsrMatrix a = random_dd(32, 0.15, false, rng);
  auto solver = make_solver(SolverKind::kBandedLu, a);
  // Change a diagonal value and refresh.
  a.coeff_ref(5, 5) *= 3.0;
  solver->update_values(a);
  std::vector<double> b(32, 1.0), x(32, 0.0);
  solver->solve(b, x);
  EXPECT_LT(residual_inf(a, x, b), 1e-8);
}

TEST(Ilu0, ExactForTriangularPattern) {
  // For a lower-triangular matrix the ILU(0) factorization is exact.
  const CsrMatrix a = CsrMatrix::from_triplets(
      3, 3,
      {{0, 0, 2.0}, {1, 0, -1.0}, {1, 1, 3.0}, {2, 1, -1.0}, {2, 2, 4.0}});
  Ilu0Preconditioner m(a);
  std::vector<double> b{2.0, 2.0, 3.0}, z(3);
  m.apply(b, z);
  EXPECT_NEAR(z[0], 1.0, 1e-12);
  EXPECT_NEAR(z[1], 1.0, 1e-12);
  EXPECT_NEAR(z[2], 1.0, 1e-12);
}

}  // namespace
}  // namespace tac3d::sparse
