// Contract tests of the sweep-service wire protocol
// (service/protocol.hpp): every message type round-trips bit-exactly
// through encode_frame/split_frame/decode_payload, and adversarial
// inputs — truncated frames at every prefix length, hostile length
// prefixes, unknown tags, version mismatches, out-of-range enums,
// trailing garbage, random bytes — are rejected with the matching typed
// DecodeError, never UB (this suite runs under ASan/UBSan in the
// sanitize CI leg).
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <limits>
#include <string>
#include <variant>
#include <vector>

#include "service/protocol.hpp"

namespace tac3d::service::protocol {
namespace {

// --- helpers --------------------------------------------------------------

/// Payload bytes of an encoded frame (version byte onward).
std::vector<std::uint8_t> payload_of(const Message& msg) {
  const std::vector<std::uint8_t> frame = encode_frame(msg);
  EXPECT_GE(frame.size(), 6u);  // prefix + version + tag
  return {frame.begin() + 4, frame.end()};
}

Decoded decode(const std::vector<std::uint8_t>& payload) {
  return decode_payload(std::span<const std::uint8_t>(payload));
}

sim::Scenario sample_scenario() {
  sim::Scenario s;
  s.label = "2-tier LC_FUZZY web s7";
  s.tiers = 2;
  s.policy = sim::PolicyKind::kLcFuzzy;
  s.cooling = arch::CoolingKind::kLiquidCooled;
  s.workload = power::WorkloadKind::kWebServer;
  s.trace_seconds = 42;
  s.seed = 7;
  s.grid = thermal::GridOptions{12, 14};
  s.grid.x_refine = 2;
  s.sim.control_dt = 0.25;
  s.sim.duration = 33.5;
  return s;
}

void expect_scenario_equal(const sim::Scenario& a, const sim::Scenario& b) {
  EXPECT_EQ(a.label, b.label);
  EXPECT_EQ(a.tiers, b.tiers);
  EXPECT_EQ(a.policy, b.policy);
  EXPECT_EQ(a.cooling.has_value(), b.cooling.has_value());
  if (a.cooling && b.cooling) EXPECT_EQ(*a.cooling, *b.cooling);
  EXPECT_EQ(a.workload, b.workload);
  EXPECT_EQ(a.trace_seconds, b.trace_seconds);
  EXPECT_EQ(a.seed, b.seed);
  EXPECT_EQ(a.grid.rows, b.grid.rows);
  EXPECT_EQ(a.grid.cols, b.grid.cols);
  EXPECT_EQ(a.grid.x_refine, b.grid.x_refine);
  EXPECT_EQ(a.sim.control_dt, b.sim.control_dt);
  EXPECT_EQ(a.sim.duration, b.sim.duration);
}

sim::SimMetrics sample_metrics() {
  sim::SimMetrics m;
  m.duration = 180.0;
  m.core_hot_time = {1.5, 0.0, 2.25, 0.125};
  m.any_hot_time = 3.875;
  m.peak_temp = 361.125;
  m.chip_energy = 1234.5;
  m.pump_energy = 67.875;
  m.offered_work = 100.0;
  m.lost_work = 3.0625;
  m.migrations = -9;  // sign must survive the wire
  m.avg_flow_fraction = 0.7265625;
  return m;
}

void expect_metrics_equal(const sim::SimMetrics& a, const sim::SimMetrics& b) {
  // Bitwise: doubles travel as IEEE bit patterns.
  EXPECT_EQ(a.duration, b.duration);
  EXPECT_EQ(a.core_hot_time, b.core_hot_time);
  EXPECT_EQ(a.any_hot_time, b.any_hot_time);
  EXPECT_EQ(a.peak_temp, b.peak_temp);
  EXPECT_EQ(a.chip_energy, b.chip_energy);
  EXPECT_EQ(a.pump_energy, b.pump_energy);
  EXPECT_EQ(a.offered_work, b.offered_work);
  EXPECT_EQ(a.lost_work, b.lost_work);
  EXPECT_EQ(a.migrations, b.migrations);
  EXPECT_EQ(a.avg_flow_fraction, b.avg_flow_fraction);
}

/// Round-trip through the full pipeline: encode, split, decode.
Decoded round_trip(const Message& msg) {
  const std::vector<std::uint8_t> frame = encode_frame(msg);
  const FrameSplit split = split_frame(frame);
  EXPECT_EQ(split.status, FrameSplit::Status::kFrame);
  EXPECT_EQ(split.consumed, frame.size());
  return decode_payload(std::span<const std::uint8_t>(frame).subspan(
      split.payload_offset, split.payload_size));
}

// --- round-trips, every message type --------------------------------------

TEST(ServiceProtocol, RoundTripSubmitSweep) {
  SubmitSweepMsg msg;
  msg.client_tag = 0xDEADBEEF;
  msg.cores_requested = 3;
  msg.scenarios.push_back(sample_scenario());
  sim::Scenario second = sample_scenario();
  second.label = "";
  second.cooling.reset();
  second.policy = sim::PolicyKind::kAcLb;
  msg.scenarios.push_back(second);

  const Decoded d = round_trip(msg);
  ASSERT_TRUE(d.ok()) << d.detail;
  const auto& out = std::get<SubmitSweepMsg>(d.msg);
  EXPECT_EQ(out.client_tag, msg.client_tag);
  EXPECT_EQ(out.cores_requested, msg.cores_requested);
  ASSERT_EQ(out.scenarios.size(), 2u);
  expect_scenario_equal(out.scenarios[0], msg.scenarios[0]);
  expect_scenario_equal(out.scenarios[1], msg.scenarios[1]);
}

TEST(ServiceProtocol, RoundTripWhatIf) {
  WhatIfMsg msg;
  msg.client_tag = 11;
  msg.scenario = sample_scenario();
  const Decoded d = round_trip(msg);
  ASSERT_TRUE(d.ok()) << d.detail;
  const auto& out = std::get<WhatIfMsg>(d.msg);
  EXPECT_EQ(out.client_tag, 11u);
  expect_scenario_equal(out.scenario, msg.scenario);
}

TEST(ServiceProtocol, RoundTripQueryStatusCancelShutdown) {
  {
    QueryStatusMsg msg;
    msg.job_id = 5;
    const Decoded d = round_trip(msg);
    ASSERT_TRUE(d.ok()) << d.detail;
    EXPECT_EQ(std::get<QueryStatusMsg>(d.msg).job_id, 5u);
  }
  {
    CancelMsg msg;
    msg.job_id = 99;
    const Decoded d = round_trip(msg);
    ASSERT_TRUE(d.ok()) << d.detail;
    EXPECT_EQ(std::get<CancelMsg>(d.msg).job_id, 99u);
  }
  {
    const Decoded d = round_trip(ShutdownDrainMsg{});
    ASSERT_TRUE(d.ok()) << d.detail;
    EXPECT_TRUE(std::holds_alternative<ShutdownDrainMsg>(d.msg));
  }
}

TEST(ServiceProtocol, RoundTripSubmitAck) {
  SubmitAckMsg msg;
  msg.client_tag = 21;
  msg.job_id = 17;
  msg.admitted = 0;
  msg.queue_position = 4;
  const Decoded d = round_trip(msg);
  ASSERT_TRUE(d.ok()) << d.detail;
  const auto& out = std::get<SubmitAckMsg>(d.msg);
  EXPECT_EQ(out.client_tag, 21u);
  EXPECT_EQ(out.job_id, 17u);
  EXPECT_EQ(out.admitted, 0);
  EXPECT_EQ(out.queue_position, 4u);
}

TEST(ServiceProtocol, RoundTripScenarioResult) {
  ScenarioResultMsg msg;
  msg.job_id = 3;
  msg.index = 12;
  msg.ok = 1;
  msg.metrics = sample_metrics();
  const Decoded d = round_trip(msg);
  ASSERT_TRUE(d.ok()) << d.detail;
  const auto& out = std::get<ScenarioResultMsg>(d.msg);
  EXPECT_EQ(out.job_id, 3u);
  EXPECT_EQ(out.index, 12u);
  EXPECT_EQ(out.ok, 1);
  expect_metrics_equal(out.metrics, msg.metrics);

  ScenarioResultMsg failed;
  failed.job_id = 3;
  failed.index = 13;
  failed.ok = 0;
  failed.error = "control_dt must be positive";
  const Decoded df = round_trip(failed);
  ASSERT_TRUE(df.ok()) << df.detail;
  EXPECT_EQ(std::get<ScenarioResultMsg>(df.msg).error, failed.error);
}

TEST(ServiceProtocol, RoundTripSweepCompleteStatusErrorDrain) {
  {
    SweepCompleteMsg msg;
    msg.job_id = 8;
    msg.completed = 30;
    msg.failed = 1;
    msg.cancelled = 4;
    msg.was_cancelled = 1;
    const Decoded d = round_trip(msg);
    ASSERT_TRUE(d.ok()) << d.detail;
    const auto& out = std::get<SweepCompleteMsg>(d.msg);
    EXPECT_EQ(out.completed, 30u);
    EXPECT_EQ(out.failed, 1u);
    EXPECT_EQ(out.cancelled, 4u);
    EXPECT_EQ(out.was_cancelled, 1);
  }
  {
    StatusMsg msg;
    msg.active_jobs = 2;
    msg.queued_jobs = 5;
    msg.scenarios_completed = 1234567890123ull;
    msg.core_budget = 8;
    msg.cores_in_use = 7;
    msg.draining = 1;
    msg.bank_steady_hits = 42;
    const Decoded d = round_trip(msg);
    ASSERT_TRUE(d.ok()) << d.detail;
    const auto& out = std::get<StatusMsg>(d.msg);
    EXPECT_EQ(out.scenarios_completed, 1234567890123ull);
    EXPECT_EQ(out.queued_jobs, 5u);
    EXPECT_EQ(out.draining, 1);
    EXPECT_EQ(out.bank_steady_hits, 42u);
  }
  {
    ErrorMsg msg;
    msg.code = static_cast<std::uint16_t>(ServiceError::kRejectedDraining);
    msg.client_tag = 77;
    msg.text = "server is draining";
    const Decoded d = round_trip(msg);
    ASSERT_TRUE(d.ok()) << d.detail;
    const auto& out = std::get<ErrorMsg>(d.msg);
    EXPECT_EQ(out.code, msg.code);
    EXPECT_EQ(out.client_tag, 77u);
    EXPECT_EQ(out.text, msg.text);
  }
  {
    DrainCompleteMsg msg;
    msg.scenarios_finished = 420;
    const Decoded d = round_trip(msg);
    ASSERT_TRUE(d.ok()) << d.detail;
    EXPECT_EQ(std::get<DrainCompleteMsg>(d.msg).scenarios_finished, 420u);
  }
}

MetricsMsg sample_metrics_msg() {
  MetricEntryMsg counter;
  counter.name = "bank/steady_hits";
  counter.kind = MetricEntryMsg::kCounter;
  counter.count = 1234567890123ull;
  MetricEntryMsg gauge;
  gauge.name = "service/queue_depth";
  gauge.kind = MetricEntryMsg::kGauge;
  gauge.value = 3.0;
  MetricEntryMsg hist;
  hist.name = "service/ttfr_ms";
  hist.kind = MetricEntryMsg::kHistogram;
  hist.count = 42;
  hist.value = 1234.5;  // sum
  hist.min = 0.5;
  hist.max = 250.25;
  hist.buckets = {{3, 10}, {57, 30}, {127, 2}};
  MetricsMsg msg;
  msg.entries = {counter, gauge, hist};
  return msg;
}

TEST(ServiceProtocol, RoundTripQueryMetricsAndMetrics) {
  {
    const Decoded d = round_trip(QueryMetricsMsg{});
    ASSERT_TRUE(d.ok()) << d.detail;
    EXPECT_TRUE(std::holds_alternative<QueryMetricsMsg>(d.msg));
  }
  const MetricsMsg msg = sample_metrics_msg();
  const Decoded d = round_trip(msg);
  ASSERT_TRUE(d.ok()) << d.detail;
  const auto& out = std::get<MetricsMsg>(d.msg);
  ASSERT_EQ(out.entries.size(), msg.entries.size());
  for (std::size_t i = 0; i < msg.entries.size(); ++i) {
    const MetricEntryMsg& a = msg.entries[i];
    const MetricEntryMsg& b = out.entries[i];
    EXPECT_EQ(a.name, b.name);
    EXPECT_EQ(a.kind, b.kind);
    EXPECT_EQ(a.count, b.count);
    EXPECT_EQ(a.value, b.value);  // bitwise, IEEE bit pattern
    EXPECT_EQ(a.min, b.min);
    EXPECT_EQ(a.max, b.max);
    EXPECT_EQ(a.buckets, b.buckets);
  }
}

// --- adversarial decoding -------------------------------------------------

TEST(ServiceProtocol, TruncationAtEveryPrefixLengthIsTyped) {
  // Every proper prefix of every message type's payload must decode to a
  // typed error — kTruncated for mid-field cuts, kMalformed for an empty
  // payload — and never crash (ASan/UBSan guard the never-UB claim).
  SubmitSweepMsg sweep;
  sweep.client_tag = 1;
  sweep.scenarios.push_back(sample_scenario());
  ScenarioResultMsg result;
  result.ok = 1;
  result.metrics = sample_metrics();
  const std::vector<Message> all = {
      sweep,          WhatIfMsg{2, sample_scenario()},
      QueryStatusMsg{}, CancelMsg{3},
      ShutdownDrainMsg{}, QueryMetricsMsg{},
      SubmitAckMsg{4, 5, 1, 0},
      result,         SweepCompleteMsg{6, 7, 8, 9, 1},
      StatusMsg{},    ErrorMsg{1, 2, "boom"},
      DrainCompleteMsg{10}, sample_metrics_msg()};

  for (const Message& msg : all) {
    const std::vector<std::uint8_t> payload = payload_of(msg);
    for (std::size_t cut = 0; cut < payload.size(); ++cut) {
      const std::vector<std::uint8_t> prefix(payload.begin(),
                                             payload.begin() + cut);
      const Decoded d = decode(prefix);
      EXPECT_FALSE(d.ok()) << "tag " << static_cast<int>(msg_type(msg))
                           << " cut at " << cut;
      EXPECT_TRUE(d.error == DecodeError::kTruncated ||
                  d.error == DecodeError::kMalformed)
          << "tag " << static_cast<int>(msg_type(msg)) << " cut at " << cut
          << " -> " << decode_error_name(d.error);
    }
    // The full payload still decodes.
    EXPECT_TRUE(decode(payload).ok());
  }
}

TEST(ServiceProtocol, OversizedLengthPrefixIsRejectedNotTrusted) {
  for (const std::uint32_t declared :
       {kMaxFramePayload + 1, 0x40000000u,
        std::numeric_limits<std::uint32_t>::max()}) {
    std::vector<std::uint8_t> buffer(4);
    std::memcpy(buffer.data(), &declared, 4);  // host LE in CI
    // Ensure byte order explicitly:
    for (int i = 0; i < 4; ++i) {
      buffer[static_cast<std::size_t>(i)] =
          static_cast<std::uint8_t>(declared >> (8 * i));
    }
    const FrameSplit split = split_frame(buffer);
    EXPECT_EQ(split.status, FrameSplit::Status::kOversized);
    EXPECT_EQ(split.consumed, 4u);
    EXPECT_EQ(split.declared_size, declared);
  }
}

TEST(ServiceProtocol, ZeroLengthFrameIsMalformed) {
  const std::vector<std::uint8_t> buffer = {0, 0, 0, 0};
  const FrameSplit split = split_frame(buffer);
  EXPECT_EQ(split.status, FrameSplit::Status::kMalformed);
  EXPECT_EQ(split.consumed, 4u);
}

TEST(ServiceProtocol, SplitNeedsMoreUntilComplete) {
  const std::vector<std::uint8_t> frame = encode_frame(CancelMsg{1});
  for (std::size_t n = 0; n < frame.size(); ++n) {
    const FrameSplit split = split_frame(
        std::span<const std::uint8_t>(frame.data(), n));
    EXPECT_EQ(split.status, FrameSplit::Status::kNeedMore) << "at " << n;
    EXPECT_EQ(split.consumed, 0u);
  }
  EXPECT_EQ(split_frame(frame).status, FrameSplit::Status::kFrame);
}

TEST(ServiceProtocol, UnknownTagIsTyped) {
  // 6 (kQueryMetrics) and 70 (kMetrics) became real tags in protocol
  // v2; the probes sit just past the live request/response ranges.
  for (const std::uint8_t tag : {0, 7, 42, 63, 71, 255}) {
    const std::vector<std::uint8_t> payload = {kProtocolVersion, tag};
    const Decoded d = decode(payload);
    EXPECT_FALSE(d.ok());
    EXPECT_EQ(d.error, DecodeError::kUnknownType) << "tag " << int(tag);
  }
}

TEST(ServiceProtocol, VersionMismatchIsTyped) {
  std::vector<std::uint8_t> payload = payload_of(CancelMsg{1});
  payload[0] = kProtocolVersion + 1;
  const Decoded d = decode(payload);
  EXPECT_EQ(d.error, DecodeError::kVersionMismatch);
  payload[0] = 0;
  EXPECT_EQ(decode(payload).error, DecodeError::kVersionMismatch);
}

TEST(ServiceProtocol, TrailingBytesAreMalformed) {
  std::vector<std::uint8_t> payload = payload_of(CancelMsg{1});
  payload.push_back(0xAB);
  const Decoded d = decode(payload);
  EXPECT_EQ(d.error, DecodeError::kMalformed);
}

TEST(ServiceProtocol, OutOfRangeEnumsAreBadValue) {
  WhatIfMsg msg;
  msg.client_tag = 1;
  msg.scenario = sample_scenario();
  const std::vector<std::uint8_t> good = payload_of(msg);

  // Find the policy byte by differential encoding: flip the scenario's
  // policy and diff the payloads.
  WhatIfMsg other = msg;
  other.scenario.policy = sim::PolicyKind::kAcLb;
  const std::vector<std::uint8_t> alt = payload_of(other);
  ASSERT_EQ(good.size(), alt.size());
  std::size_t policy_at = good.size();
  for (std::size_t i = 0; i < good.size(); ++i) {
    if (good[i] != alt[i]) {
      policy_at = i;
      break;
    }
  }
  ASSERT_LT(policy_at, good.size());

  std::vector<std::uint8_t> evil = good;
  evil[policy_at] = 200;  // far past the last PolicyKind
  const Decoded d = decode(evil);
  EXPECT_EQ(d.error, DecodeError::kBadValue) << d.detail;
}

TEST(ServiceProtocol, MetricEntryBadKindIsTyped) {
  // Same differential trick as the policy enum: two payloads identical
  // except for the entry's kind byte locate it, then an out-of-range
  // kind (past kHistogram) must decode to kBadValue.
  MetricEntryMsg e;
  e.name = "x";
  e.kind = MetricEntryMsg::kCounter;
  MetricsMsg a;
  a.entries = {e};
  e.kind = MetricEntryMsg::kGauge;
  MetricsMsg b;
  b.entries = {e};
  const std::vector<std::uint8_t> good = payload_of(a);
  const std::vector<std::uint8_t> alt = payload_of(b);
  ASSERT_EQ(good.size(), alt.size());
  std::size_t kind_at = good.size();
  for (std::size_t i = 0; i < good.size(); ++i) {
    if (good[i] != alt[i]) {
      kind_at = i;
      break;
    }
  }
  ASSERT_LT(kind_at, good.size());

  std::vector<std::uint8_t> evil = good;
  evil[kind_at] = 3;  // one past kHistogram
  EXPECT_EQ(decode(evil).error, DecodeError::kBadValue);
  evil[kind_at] = 255;
  EXPECT_EQ(decode(evil).error, DecodeError::kBadValue);
}

TEST(ServiceProtocol, MetricsEntryCountPastCapIsTyped) {
  // A kMetrics frame claiming 2^32-1 entries (or any count past
  // kMaxMetricEntries) must be rejected by the count cap, not trusted
  // into an allocation loop.
  std::vector<std::uint8_t> payload = {
      kProtocolVersion, static_cast<std::uint8_t>(MsgType::kMetrics)};
  for (int i = 0; i < 4; ++i) payload.push_back(0xFF);
  const Decoded d = decode(payload);
  EXPECT_FALSE(d.ok());
  EXPECT_TRUE(d.error == DecodeError::kTruncated ||
              d.error == DecodeError::kMalformed ||
              d.error == DecodeError::kBadValue)
      << decode_error_name(d.error);
}

TEST(ServiceProtocol, HugeStringLengthInsideBodyIsTyped) {
  // An ErrorMsg whose string claims 2^31 bytes: the count cap must
  // reject it instead of allocating or reading past the payload.
  std::vector<std::uint8_t> payload = {
      kProtocolVersion, static_cast<std::uint8_t>(MsgType::kError)};
  payload.push_back(1);  // code u16 LE
  payload.push_back(0);
  for (int i = 0; i < 4; ++i) payload.push_back(0);  // client_tag
  payload.push_back(0x00);  // string length 0x80000000
  payload.push_back(0x00);
  payload.push_back(0x00);
  payload.push_back(0x80);
  payload.push_back('x');  // one actual byte
  const Decoded d = decode(payload);
  EXPECT_FALSE(d.ok());
  EXPECT_TRUE(d.error == DecodeError::kTruncated ||
              d.error == DecodeError::kMalformed ||
              d.error == DecodeError::kBadValue)
      << decode_error_name(d.error);
}

TEST(ServiceProtocol, DeterministicFuzzNeverCrashes) {
  // A cheap xorshift fuzz over random payloads: every outcome must be a
  // typed error or a clean decode — never a crash, hang, or sanitizer
  // report. Deterministic seed so failures reproduce.
  std::uint64_t state = 0x9E3779B97F4A7C15ull;
  auto next = [&state] {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return state;
  };
  for (int iter = 0; iter < 2000; ++iter) {
    const std::size_t len = static_cast<std::size_t>(next() % 96);
    std::vector<std::uint8_t> payload(len);
    for (auto& b : payload) b = static_cast<std::uint8_t>(next());
    if (len >= 1 && iter % 2 == 0) payload[0] = kProtocolVersion;
    if (len >= 2 && iter % 4 == 0) {
      payload[1] = static_cast<std::uint8_t>(1 + next() % 5);  // real tags
    }
    const Decoded d = decode(payload);
    if (d.ok()) continue;  // a tiny fraction may decode; that's fine
    EXPECT_NE(d.error, DecodeError::kOk);
  }
}

}  // namespace
}  // namespace tac3d::service::protocol
