// Tests of the grid discretization itself: node numbering, column
// structure in discrete mode, sublayer splitting, floorplan-to-cell
// mapping, and grid-refinement convergence of the solution.
#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "common/units.hpp"
#include "microchannel/coolant.hpp"
#include "thermal/grid.hpp"
#include "thermal/rc_model.hpp"

namespace tac3d::thermal {
namespace {

StackSpec two_die_spec() {
  StackSpec spec;
  spec.name = "grid-test";
  spec.width = mm(9.0);
  spec.length = mm(9.0);
  Floorplan fp;
  fp.add("left", Rect{0.0, 0.0, mm(4.5), mm(9.0)});
  fp.add("right", Rect{mm(4.5), 0.0, mm(4.5), mm(9.0)});
  spec.floorplans.push_back(fp);
  const auto water = microchannel::water(celsius_to_kelvin(27.0));
  spec.layers.push_back(Layer::solid("die0", mm(0.15),
                                     materials::silicon(), 0));
  spec.layers.push_back(Layer::cavity("cav", um(100.0), um(50.0),
                                      um(150.0), materials::silicon(),
                                      water));
  spec.layers.push_back(Layer::solid("die1", mm(0.15),
                                     materials::silicon()));
  spec.ambient = celsius_to_kelvin(27.0);
  spec.coolant_inlet = celsius_to_kelvin(27.0);
  return spec;
}

TEST(Grid, NodeNumberingIsDenseAndUnique) {
  ThermalGrid grid(two_die_spec(), GridOptions{6, 5});
  EXPECT_EQ(grid.n_layers(), 3);
  EXPECT_EQ(grid.node_count(), 3 * 6 * 5);
  EXPECT_EQ(grid.cell_node(0, 0, 0), 0);
  EXPECT_EQ(grid.cell_node(2, 5, 4), grid.node_count() - 1);
  EXPECT_EQ(grid.sink_node(), -1);  // no sink in this spec
}

TEST(Grid, SinkNodeAppendedWhenPresent) {
  StackSpec spec = two_die_spec();
  spec.layers.pop_back();
  spec.layers.pop_back();  // solid die only
  spec.sink.present = true;
  ThermalGrid grid(spec, GridOptions{4, 4});
  EXPECT_EQ(grid.node_count(), 4 * 4 + 1);
  EXPECT_EQ(grid.sink_node(), 16);
}

TEST(Grid, HomogenizedChannelFractionMatchesGeometry) {
  ThermalGrid grid(two_die_spec(), GridOptions{6, 5});
  for (int c = 0; c < grid.cols(); ++c) {
    EXPECT_NEAR(grid.channel_fraction(c), 50.0 / 150.0, 1e-12);
  }
  // Flow shares sum to one.
  double sum = 0.0;
  for (int c = 0; c < grid.cols(); ++c) sum += grid.column_flow_share(c);
  EXPECT_NEAR(sum, 1.0, 1e-12);
}

TEST(Grid, DiscreteColumnsAlternateChannelAndWall) {
  GridOptions opts;
  opts.rows = 6;
  opts.discrete_channels = true;
  ThermalGrid grid(two_die_spec(), opts);
  // 9 mm / 150 um = 60 channels -> 2*60+1 columns.
  EXPECT_EQ(grid.cols(), 121);
  int channels = 0;
  double fluid_width = 0.0, total_width = 0.0;
  for (int c = 0; c < grid.cols(); ++c) {
    const double phi = grid.channel_fraction(c);
    EXPECT_TRUE(phi == 0.0 || phi == 1.0);
    if (phi == 1.0) {
      ++channels;
      fluid_width += grid.dx(c);
      EXPECT_NEAR(grid.dx(c), um(50.0), 1e-12);
    }
    total_width += grid.dx(c);
  }
  EXPECT_EQ(channels, 60);
  EXPECT_NEAR(total_width, mm(9.0), 1e-9);
  EXPECT_NEAR(fluid_width, 60 * um(50.0), 1e-9);
  // Edge columns are walls.
  EXPECT_DOUBLE_EQ(grid.channel_fraction(0), 0.0);
  EXPECT_DOUBLE_EQ(grid.channel_fraction(grid.cols() - 1), 0.0);
}

TEST(Grid, XRefineSplitsColumns) {
  GridOptions opts;
  opts.rows = 4;
  opts.discrete_channels = true;
  opts.x_refine = 2;
  ThermalGrid grid(two_die_spec(), opts);
  EXPECT_EQ(grid.cols(), 2 * 121);
  int fluid_cols = 0;
  for (int c = 0; c < grid.cols(); ++c) {
    if (grid.channel_fraction(c) == 1.0) ++fluid_cols;
  }
  EXPECT_EQ(fluid_cols, 2 * 60);
}

TEST(Grid, ZRefineSplitsSolidLayersOnly) {
  GridOptions opts{6, 5};
  opts.z_refine = 3;
  ThermalGrid grid(two_die_spec(), opts);
  // 2 solid layers x 3 sublayers + 1 cavity = 7 grid layers.
  EXPECT_EQ(grid.n_layers(), 7);
  // Power attaches to the TOP sublayer of the source layer.
  int source_layers = 0;
  for (int l = 0; l < grid.n_layers(); ++l) {
    if (grid.layer(l).floorplan_index >= 0) {
      ++source_layers;
      EXPECT_EQ(l, 2);  // third sublayer of die0
    }
  }
  EXPECT_EQ(source_layers, 1);
  // Sublayer thickness is a third of the die.
  EXPECT_NEAR(grid.layer(0).thickness, mm(0.15) / 3.0, 1e-12);
}

TEST(Grid, ElementWeightsSumToOne) {
  ThermalGrid grid(two_die_spec(), GridOptions{7, 9});
  ASSERT_EQ(grid.element_count(), 2);
  for (int e = 0; e < 2; ++e) {
    double sum = 0.0;
    for (const auto& cw : grid.element_cells(e)) sum += cw.weight;
    EXPECT_NEAR(sum, 1.0, 1e-9);
  }
}

TEST(Grid, ElementLookupByName) {
  ThermalGrid grid(two_die_spec(), GridOptions{6, 5});
  EXPECT_EQ(grid.element(grid.element_id("left")).name, "left");
  EXPECT_THROW(grid.element_id("nope"), InvalidArgument);
}

TEST(Grid, PowerMapsOntoCorrectSide) {
  RcModel model(two_die_spec(), GridOptions{8, 8});
  model.set_all_flows(ml_per_min(20.0));
  model.set_element_power(model.grid().element_id("left"), 30.0);
  const auto temps = model.steady_state();
  // Left half of the die must be hotter than the right half.
  const auto& g = model.grid();
  const double t_left = temps[g.cell_node(0, 4, 1)];
  const double t_right = temps[g.cell_node(0, 4, 6)];
  EXPECT_GT(t_left, t_right + 2.0);
}

TEST(Grid, RefinementConvergence) {
  // Peak temperature must converge as the grid is refined: the 16->24
  // change must be much smaller than the 8->16 change, and the total
  // spread small.
  double peaks[3];
  int i = 0;
  for (const int n : {8, 16, 24}) {
    RcModel model(two_die_spec(), GridOptions{n, n});
    model.set_all_flows(ml_per_min(20.0));
    model.set_element_power(0, 20.0);
    model.set_element_power(1, 20.0);
    peaks[i++] = model.max_temperature(model.steady_state());
  }
  const double d1 = std::abs(peaks[1] - peaks[0]);
  const double d2 = std::abs(peaks[2] - peaks[1]);
  EXPECT_LT(d2, d1 + 0.1);
  EXPECT_LT(d2, 1.0);  // < 1 K between 16x16 and 24x24
}

TEST(Grid, RejectsDegenerateOptions) {
  EXPECT_THROW(ThermalGrid(two_die_spec(), GridOptions{1, 8}),
               InvalidArgument);
  GridOptions bad{8, 8};
  bad.z_refine = 0;
  EXPECT_THROW(ThermalGrid(two_die_spec(), bad), InvalidArgument);
}

TEST(Grid, DiscreteRequiresCavity) {
  StackSpec spec = two_die_spec();
  spec.layers = {Layer::solid("die", mm(0.3), materials::silicon(), 0)};
  spec.sink.present = true;
  GridOptions opts{8, 8};
  opts.discrete_channels = true;
  EXPECT_THROW(ThermalGrid(spec, opts), InvalidArgument);
}

}  // namespace
}  // namespace tac3d::thermal
