// Tests of the stack text format and CSV exporters.
#include <gtest/gtest.h>

#include <sstream>

#include "arch/niagara.hpp"
#include "arch/stacks.hpp"
#include "common/error.hpp"
#include "common/units.hpp"
#include "thermal/stackup_io.hpp"

namespace tac3d::thermal {
namespace {

const char* kSampleStack = R"(# two dies around a cavity, sink on top
stack sample
dimensions 10 10
ambient 45
coolant_inlet 27
material glue 1.5 2.0e6
sink 10 140 50
floorplan begin
  heater 0 0 10 10
floorplan end
layer die0 0.15 silicon floorplan 0
cavity cav 0.1 0.05 0.15 silicon
layer die1 0.15 silicon
layer bond 0.02 glue
layer cap 0.3 pyrex
)";

TEST(StackIo, ParsesSampleStack) {
  std::istringstream in(kSampleStack);
  const StackSpec spec = parse_stack(in);
  EXPECT_EQ(spec.name, "sample");
  EXPECT_NEAR(spec.width, mm(10.0), 1e-12);
  EXPECT_NEAR(spec.ambient, celsius_to_kelvin(45.0), 1e-9);
  EXPECT_EQ(spec.layers.size(), 5u);
  EXPECT_EQ(spec.n_cavities(), 1);
  EXPECT_TRUE(spec.sink.present);
  EXPECT_EQ(spec.layers[0].floorplan_index, 0);
  EXPECT_EQ(spec.layers[3].material.name, "glue");
  EXPECT_DOUBLE_EQ(spec.layers[3].material.conductivity, 1.5);
  EXPECT_EQ(spec.floorplans.size(), 1u);
}

TEST(StackIo, RoundTripsThroughText) {
  std::istringstream in(kSampleStack);
  const StackSpec spec = parse_stack(in);
  std::istringstream in2(stack_to_text(spec));
  const StackSpec back = parse_stack(in2);
  EXPECT_EQ(back.layers.size(), spec.layers.size());
  EXPECT_NEAR(back.width, spec.width, 1e-12);
  EXPECT_EQ(back.n_cavities(), spec.n_cavities());
  for (std::size_t i = 0; i < spec.layers.size(); ++i) {
    EXPECT_NEAR(back.layers[i].thickness, spec.layers[i].thickness, 1e-12);
    EXPECT_EQ(back.layers[i].material.name, spec.layers[i].material.name);
  }
}

TEST(StackIo, BuiltStacksRoundTrip) {
  // The 2-tier liquid stack built by arch serializes and re-parses.
  const StackSpec spec = arch::build_stack(arch::NiagaraConfig::paper(), 2,
                                           arch::CoolingKind::kLiquidCooled);
  std::istringstream in(stack_to_text(spec));
  const StackSpec back = parse_stack(in);
  EXPECT_EQ(back.n_cavities(), 2);
  EXPECT_EQ(back.floorplans.size(), 2u);
  // And it still builds a working model.
  RcModel model(back, GridOptions{8, 8});
  model.set_all_flows(ml_per_min(20.0));
  model.set_element_power(model.grid().element_id("core0"), 5.0);
  EXPECT_NO_THROW(model.steady_state());
}

TEST(StackIo, RejectsMalformedInput) {
  for (const char* bad :
       {"layer die 0.15 unobtainium\n",
        "dimensions 10\n",
        "floorplan begin\n  heater 0 0 10 10\n",  // unterminated
        "nonsense 1 2 3\n"}) {
    std::istringstream in(bad);
    EXPECT_THROW(parse_stack(in), InvalidArgument) << bad;
  }
}

TEST(CsvExport, LayerFieldHasGridShape) {
  std::istringstream in(kSampleStack);
  RcModel model(parse_stack(in), GridOptions{6, 5});
  model.set_all_flows(ml_per_min(20.0));
  model.set_element_power(0, 10.0);
  const auto temps = model.steady_state();
  std::ostringstream os;
  write_layer_csv(model, temps, 0, os);
  const std::string csv = os.str();
  // Header + 6 rows.
  EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 7);
  // 5 columns + label per row -> 5 commas per line.
  const auto first_line = csv.substr(0, csv.find('\n'));
  EXPECT_EQ(std::count(first_line.begin(), first_line.end(), ','), 5);
}

TEST(CsvExport, ElementSummaryListsAllElements) {
  std::istringstream in(kSampleStack);
  RcModel model(parse_stack(in), GridOptions{6, 5});
  model.set_all_flows(ml_per_min(20.0));
  model.set_element_power(0, 10.0);
  const auto temps = model.steady_state();
  std::ostringstream os;
  write_element_csv(model, temps, os);
  EXPECT_NE(os.str().find("heater,die0,"), std::string::npos);
}

}  // namespace
}  // namespace tac3d::thermal
