// Failure-injection tests: what happens when the cooling or control
// subsystem misbehaves — and, for the sweep service, when clients do.
// A thermally-aware design must degrade loudly (threshold violations
// surface in the metrics), not silently; a serving deployment must
// contain each fault to the client that caused it.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <vector>

#include "arch/mpsoc.hpp"
#include "common/units.hpp"
#include "control/policy.hpp"
#include "power/workloads.hpp"
#include "service/client.hpp"
#include "service/server.hpp"
#include "sim/engine.hpp"
#include "sim/experiment.hpp"
#include "thermal/transient.hpp"

namespace tac3d {
namespace {

/// A policy wrapper that simulates a stuck pump: whatever the wrapped
/// policy commands, the pump stays at a fixed level.
class StuckPumpPolicy final : public control::ThermalPolicy {
 public:
  StuckPumpPolicy(std::unique_ptr<control::ThermalPolicy> inner,
                  int stuck_level)
      : inner_(std::move(inner)), stuck_level_(stuck_level) {}

  control::PolicyActions decide(const control::PolicyInputs& in) override {
    auto act = inner_->decide(in);
    act.pump_level = stuck_level_;
    return act;
  }
  std::string name() const override { return inner_->name() + "+stuck"; }

 private:
  std::unique_ptr<control::ThermalPolicy> inner_;
  int stuck_level_;
};

arch::Mpsoc3D make_soc(int tiers) {
  return arch::Mpsoc3D(arch::Mpsoc3D::Options{
      tiers, arch::CoolingKind::kLiquidCooled, thermal::GridOptions{12, 12},
      arch::NiagaraConfig::paper()});
}

TEST(FailureInjection, PumpStuckAtMinimumViolatesThresholdVisibly) {
  auto soc = make_soc(2);
  const auto pump = microchannel::PumpModel::table1(16);
  auto inner = std::make_unique<control::MaxPerformancePolicy>(
      8, soc.chip().vf, pump.levels() - 1);
  StuckPumpPolicy policy(std::move(inner), 0);  // stuck at minimum

  const auto trace =
      power::generate_workload(power::WorkloadKind::kMaxUtil, 32, 40, 1);
  sim::SimulationConfig cfg;
  cfg.pump = pump;
  const auto m = sim::simulate(soc, trace, policy, cfg);

  // The failure is *visible*: hot spots accumulate in the metrics.
  EXPECT_GT(kelvin_to_celsius(m.peak_temp), 85.0);
  EXPECT_GT(m.hotspot_frac_any(), 0.3);
  // And the pump energy reflects the stuck (minimum) setting.
  EXPECT_NEAR(m.avg_flow_fraction, pump.q_min() / pump.q_max(), 1e-6);
}

TEST(FailureInjection, FuzzyCompensatesASinglePumpGlitch) {
  // A one-interval glitch (pump forced low once) must not leave a
  // lasting thermal violation when the fuzzy controller resumes.
  auto soc = make_soc(2);
  const auto pump = microchannel::PumpModel::table1(16);
  control::FuzzyFlowDvfsPolicy fuzzy(8, soc.chip().vf, pump.levels(),
                                     celsius_to_kelvin(85.0));

  // Drive manually: 20 s normal, one glitch, 20 s recovery.
  const auto trace =
      power::generate_workload(power::WorkloadKind::kMaxUtil, 32, 60, 1);
  soc.model().set_all_flows(pump.q_max());
  std::vector<arch::CoreState> cores(8, {1.0, soc.chip().vf.max_level()});
  std::vector<double> temps = soc.leakage_consistent_steady(cores, 3);
  thermal::TransientSolver sim(soc.model(), 0.25);
  sim.set_state(temps);

  double peak_after_recovery = 0.0;
  for (int s = 0; s < 160; ++s) {
    control::PolicyInputs in;
    in.core_temps.resize(8);
    for (int c = 0; c < 8; ++c) {
      in.core_temps[c] = soc.core_temp(sim.temperatures(), c);
    }
    in.core_demands.assign(8, 1.0);
    in.dt = 0.25;
    auto act = fuzzy.decide(in);
    if (s == 80) act.pump_level = 0;  // the glitch
    soc.model().set_all_flows(pump.flow_per_cavity(act.pump_level));
    for (int c = 0; c < 8; ++c) cores[c].vf_level = act.vf_levels[c];
    soc.model().set_element_powers(
        soc.element_powers(cores, sim.temperatures()));
    sim.step();
    if (s > 120) {
      peak_after_recovery = std::max(
          peak_after_recovery, soc.max_core_temp(sim.temperatures()));
    }
  }
  EXPECT_LT(kelvin_to_celsius(peak_after_recovery), 85.0);
}

TEST(FailureInjection, LeakageClampPreventsNumericalRunaway) {
  // Even a 4-tier air-cooled stack at full power must reach a bounded
  // steady state (the leakage clamp is the physical/numerical guard).
  arch::Mpsoc3D soc(arch::Mpsoc3D::Options{
      4, arch::CoolingKind::kAirCooled, thermal::GridOptions{12, 12},
      arch::NiagaraConfig::paper()});
  std::vector<arch::CoreState> cores(8, {1.0, soc.chip().vf.max_level()});
  double prev_peak = 0.0;
  for (int iters = 1; iters <= 12; iters += 4) {
    const auto temps = soc.leakage_consistent_steady(cores, iters);
    const double peak = soc.model().max_temperature(temps);
    EXPECT_TRUE(std::isfinite(peak));
    EXPECT_LT(kelvin_to_celsius(peak), 300.0);
    prev_peak = peak;
  }
  EXPECT_GT(kelvin_to_celsius(prev_peak), 140.0);  // still catastrophic
}

TEST(FailureInjection, ZeroFlowLiquidStackStillSolvesTransient) {
  // Pump fully off: the advection terms vanish but the transient system
  // (C/dt + G) remains well-posed; temperatures climb monotonically.
  auto soc = make_soc(2);
  soc.model().set_all_flows(0.0);
  std::vector<arch::CoreState> cores(8, {1.0, soc.chip().vf.max_level()});
  thermal::TransientSolver sim(soc.model(), 0.25);
  soc.model().set_element_powers(soc.element_powers(cores, {}));
  double prev = soc.max_core_temp(sim.temperatures());
  for (int s = 0; s < 20; ++s) {
    sim.step();
    const double cur = soc.max_core_temp(sim.temperatures());
    EXPECT_GE(cur, prev - 1e-9);
    EXPECT_TRUE(std::isfinite(cur));
    prev = cur;
  }
  EXPECT_GT(prev, celsius_to_kelvin(60.0));  // heating up fast
}

// --- sweep-service fault containment --------------------------------------

/// A small scenario the service can run in well under a second.
sim::Scenario quick_service_scenario(int seed = 1) {
  sim::Scenario s;
  s.tiers = 2;
  s.policy = sim::PolicyKind::kLcFuzzy;
  s.workload = power::WorkloadKind::kWebServer;
  s.trace_seconds = 20;
  s.seed = static_cast<std::uint64_t>(seed);
  s.grid = thermal::GridOptions{10, 10};
  return s;
}

TEST(FailureInjection, ServiceClientDisconnectCancelsOnlyItsJobs) {
  service::ServerOptions opts;
  opts.service.core_budget = 1;  // serialize: victim's sweep holds the core
  service::ServiceServer server(opts);
  server.start();

  // The victim submits a long sweep (many distinct seeds) and vanishes.
  service::ServiceClient victim;
  victim.connect("127.0.0.1", server.port());
  std::vector<sim::Scenario> long_sweep;
  for (int i = 0; i < 24; ++i) long_sweep.push_back(quick_service_scenario(i));
  const auto victim_ack = victim.submit_sweep(long_sweep, 1);
  EXPECT_EQ(victim_ack.admitted, 1);

  // A bystander queues work behind it on its own connection.
  service::ServiceClient bystander;
  bystander.connect("127.0.0.1", server.port());
  const auto bystander_ack =
      bystander.submit_sweep({quick_service_scenario(100)}, 1);
  EXPECT_EQ(bystander_ack.admitted, 0);  // budget 1: queued behind victim

  victim.close();  // mid-sweep disconnect

  // The bystander's job must still complete, and soon: the victim's
  // pending scenarios were cancelled rather than ground through.
  const service::SweepOutcome out = bystander.collect(bystander_ack.job_id);
  EXPECT_FALSE(out.complete.was_cancelled);
  EXPECT_EQ(out.complete.completed, 1u);
  ASSERT_EQ(out.results.size(), 1u);
  EXPECT_TRUE(out.results[0].ok) << out.results[0].error;

  // The server's books show the victim's cancellation.
  const auto status = bystander.query_status();
  EXPECT_GT(status.scenarios_cancelled, 0u);
  EXPECT_EQ(status.active_jobs, 0u);
  EXPECT_EQ(status.queued_jobs, 0u);

  server.stop();
}

TEST(FailureInjection, ServiceDrainFinishesInFlightWork) {
  service::ServerOptions opts;
  opts.service.core_budget = 2;
  service::ServiceServer server(opts);
  server.start();

  service::ServiceClient client;
  client.connect("127.0.0.1", server.port());
  std::vector<sim::Scenario> sweep;
  for (int i = 0; i < 4; ++i) sweep.push_back(quick_service_scenario(i));
  const auto ack = client.submit_sweep(sweep, 2);
  EXPECT_EQ(ack.admitted, 1);

  // Drain while the sweep runs: accepted work must finish, not be cut.
  client.request_drain();
  const service::SweepOutcome out = client.collect(ack.job_id);
  EXPECT_FALSE(out.complete.was_cancelled);
  EXPECT_EQ(out.complete.completed, 4u);
  EXPECT_EQ(out.complete.cancelled, 0u);

  const auto done = client.wait_drain_complete();
  EXPECT_GE(done.scenarios_finished, 4u);
  server.wait();
  EXPECT_FALSE(server.running());
}

TEST(FailureInjection, ServiceOverBudgetRequestIsQueuedNotRefused) {
  service::ServerOptions opts;
  opts.service.core_budget = 1;
  service::ServiceServer server(opts);
  server.start();

  service::ServiceClient client;
  client.connect("127.0.0.1", server.port());

  // First job takes the only core; the second asks for more cores than
  // the budget even has — it must be admitted-later, never rejected
  // (the admission queue is the backpressure).
  const auto first = client.submit_sweep(
      {quick_service_scenario(1), quick_service_scenario(2)}, 1);
  EXPECT_EQ(first.admitted, 1);
  const auto second = client.submit_sweep(
      {quick_service_scenario(3), quick_service_scenario(4)}, 8);
  EXPECT_EQ(second.admitted, 0);
  EXPECT_EQ(second.queue_position, 0u);  // head of the admission queue

  const service::SweepOutcome out1 = client.collect(first.job_id);
  const service::SweepOutcome out2 = client.collect(second.job_id);
  EXPECT_EQ(out1.complete.completed, 2u);
  EXPECT_EQ(out2.complete.completed, 2u);
  EXPECT_FALSE(out2.complete.was_cancelled);

  server.stop();
}

TEST(FailureInjection, ServiceScenarioErrorDoesNotPoisonOtherClients) {
  service::ServerOptions opts;
  opts.service.core_budget = 2;
  service::ServiceServer server(opts);
  server.start();

  // Client A submits a sweep whose middle scenario is invalid
  // (non-positive control interval — the bank-layer forcing idiom).
  service::ServiceClient poisoned;
  poisoned.connect("127.0.0.1", server.port());
  std::vector<sim::Scenario> bad_sweep = {quick_service_scenario(1),
                                          quick_service_scenario(2),
                                          quick_service_scenario(3)};
  bad_sweep[1].sim.control_dt = -1.0;
  const auto bad_ack = poisoned.submit_sweep(bad_sweep, 1);

  // Client B runs a clean sweep concurrently.
  service::ServiceClient clean;
  clean.connect("127.0.0.1", server.port());
  const service::SweepOutcome clean_out =
      clean.run_sweep({quick_service_scenario(10),
                       quick_service_scenario(11)}, 1);
  EXPECT_EQ(clean_out.complete.completed, 2u);
  EXPECT_EQ(clean_out.complete.failed, 0u);
  for (const auto& r : clean_out.results) {
    EXPECT_TRUE(r.ok) << r.error;
  }

  // Client A gets a per-scenario error, not a dead job or connection.
  const service::SweepOutcome bad_out = poisoned.collect(bad_ack.job_id);
  EXPECT_EQ(bad_out.complete.completed, 2u);
  EXPECT_EQ(bad_out.complete.failed, 1u);
  EXPECT_FALSE(bad_out.complete.was_cancelled);
  ASSERT_EQ(bad_out.results.size(), 3u);
  for (const auto& r : bad_out.results) {
    if (r.index == 1) {
      EXPECT_FALSE(r.ok);
      EXPECT_FALSE(r.error.empty());
    } else {
      EXPECT_TRUE(r.ok) << r.error;
    }
  }

  // The connection survived: the same client can keep submitting.
  const service::SweepOutcome retry =
      poisoned.run_sweep({quick_service_scenario(1)}, 1);
  EXPECT_EQ(retry.complete.completed, 1u);

  server.stop();
}

}  // namespace
}  // namespace tac3d
