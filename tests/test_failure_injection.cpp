// Failure-injection tests: what happens when the cooling or control
// subsystem misbehaves. A thermally-aware design must degrade loudly
// (threshold violations surface in the metrics), not silently.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "arch/mpsoc.hpp"
#include "common/units.hpp"
#include "control/policy.hpp"
#include "power/workloads.hpp"
#include "sim/engine.hpp"
#include "thermal/transient.hpp"

namespace tac3d {
namespace {

/// A policy wrapper that simulates a stuck pump: whatever the wrapped
/// policy commands, the pump stays at a fixed level.
class StuckPumpPolicy final : public control::ThermalPolicy {
 public:
  StuckPumpPolicy(std::unique_ptr<control::ThermalPolicy> inner,
                  int stuck_level)
      : inner_(std::move(inner)), stuck_level_(stuck_level) {}

  control::PolicyActions decide(const control::PolicyInputs& in) override {
    auto act = inner_->decide(in);
    act.pump_level = stuck_level_;
    return act;
  }
  std::string name() const override { return inner_->name() + "+stuck"; }

 private:
  std::unique_ptr<control::ThermalPolicy> inner_;
  int stuck_level_;
};

arch::Mpsoc3D make_soc(int tiers) {
  return arch::Mpsoc3D(arch::Mpsoc3D::Options{
      tiers, arch::CoolingKind::kLiquidCooled, thermal::GridOptions{12, 12},
      arch::NiagaraConfig::paper()});
}

TEST(FailureInjection, PumpStuckAtMinimumViolatesThresholdVisibly) {
  auto soc = make_soc(2);
  const auto pump = microchannel::PumpModel::table1(16);
  auto inner = std::make_unique<control::MaxPerformancePolicy>(
      8, soc.chip().vf, pump.levels() - 1);
  StuckPumpPolicy policy(std::move(inner), 0);  // stuck at minimum

  const auto trace =
      power::generate_workload(power::WorkloadKind::kMaxUtil, 32, 40, 1);
  sim::SimulationConfig cfg;
  cfg.pump = pump;
  const auto m = sim::simulate(soc, trace, policy, cfg);

  // The failure is *visible*: hot spots accumulate in the metrics.
  EXPECT_GT(kelvin_to_celsius(m.peak_temp), 85.0);
  EXPECT_GT(m.hotspot_frac_any(), 0.3);
  // And the pump energy reflects the stuck (minimum) setting.
  EXPECT_NEAR(m.avg_flow_fraction, pump.q_min() / pump.q_max(), 1e-6);
}

TEST(FailureInjection, FuzzyCompensatesASinglePumpGlitch) {
  // A one-interval glitch (pump forced low once) must not leave a
  // lasting thermal violation when the fuzzy controller resumes.
  auto soc = make_soc(2);
  const auto pump = microchannel::PumpModel::table1(16);
  control::FuzzyFlowDvfsPolicy fuzzy(8, soc.chip().vf, pump.levels(),
                                     celsius_to_kelvin(85.0));

  // Drive manually: 20 s normal, one glitch, 20 s recovery.
  const auto trace =
      power::generate_workload(power::WorkloadKind::kMaxUtil, 32, 60, 1);
  soc.model().set_all_flows(pump.q_max());
  std::vector<arch::CoreState> cores(8, {1.0, soc.chip().vf.max_level()});
  std::vector<double> temps = soc.leakage_consistent_steady(cores, 3);
  thermal::TransientSolver sim(soc.model(), 0.25);
  sim.set_state(temps);

  double peak_after_recovery = 0.0;
  for (int s = 0; s < 160; ++s) {
    control::PolicyInputs in;
    in.core_temps.resize(8);
    for (int c = 0; c < 8; ++c) {
      in.core_temps[c] = soc.core_temp(sim.temperatures(), c);
    }
    in.core_demands.assign(8, 1.0);
    in.dt = 0.25;
    auto act = fuzzy.decide(in);
    if (s == 80) act.pump_level = 0;  // the glitch
    soc.model().set_all_flows(pump.flow_per_cavity(act.pump_level));
    for (int c = 0; c < 8; ++c) cores[c].vf_level = act.vf_levels[c];
    soc.model().set_element_powers(
        soc.element_powers(cores, sim.temperatures()));
    sim.step();
    if (s > 120) {
      peak_after_recovery = std::max(
          peak_after_recovery, soc.max_core_temp(sim.temperatures()));
    }
  }
  EXPECT_LT(kelvin_to_celsius(peak_after_recovery), 85.0);
}

TEST(FailureInjection, LeakageClampPreventsNumericalRunaway) {
  // Even a 4-tier air-cooled stack at full power must reach a bounded
  // steady state (the leakage clamp is the physical/numerical guard).
  arch::Mpsoc3D soc(arch::Mpsoc3D::Options{
      4, arch::CoolingKind::kAirCooled, thermal::GridOptions{12, 12},
      arch::NiagaraConfig::paper()});
  std::vector<arch::CoreState> cores(8, {1.0, soc.chip().vf.max_level()});
  double prev_peak = 0.0;
  for (int iters = 1; iters <= 12; iters += 4) {
    const auto temps = soc.leakage_consistent_steady(cores, iters);
    const double peak = soc.model().max_temperature(temps);
    EXPECT_TRUE(std::isfinite(peak));
    EXPECT_LT(kelvin_to_celsius(peak), 300.0);
    prev_peak = peak;
  }
  EXPECT_GT(kelvin_to_celsius(prev_peak), 140.0);  // still catastrophic
}

TEST(FailureInjection, ZeroFlowLiquidStackStillSolvesTransient) {
  // Pump fully off: the advection terms vanish but the transient system
  // (C/dt + G) remains well-posed; temperatures climb monotonically.
  auto soc = make_soc(2);
  soc.model().set_all_flows(0.0);
  std::vector<arch::CoreState> cores(8, {1.0, soc.chip().vf.max_level()});
  thermal::TransientSolver sim(soc.model(), 0.25);
  soc.model().set_element_powers(soc.element_powers(cores, {}));
  double prev = soc.max_core_temp(sim.temperatures());
  for (int s = 0; s < 20; ++s) {
    sim.step();
    const double cur = soc.max_core_temp(sim.temperatures());
    EXPECT_GE(cur, prev - 1e-9);
    EXPECT_TRUE(std::isfinite(cur));
    prev = cur;
  }
  EXPECT_GT(prev, celsius_to_kelvin(60.0));  // heating up fast
}

}  // namespace
}  // namespace tac3d
