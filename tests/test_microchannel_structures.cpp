// Tests of the heat-transfer-structure design blocks: pin-fin arrays,
// channel-width modulation and the hydraulic flow network.
#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "common/units.hpp"
#include "microchannel/coolant.hpp"
#include "microchannel/flow_network.hpp"
#include "microchannel/modulation.hpp"
#include "microchannel/pinfin.hpp"

namespace tac3d::microchannel {
namespace {

Coolant water27() { return water(celsius_to_kelvin(27.0)); }

PinFinArray base_array() {
  PinFinArray g;
  g.pin_diameter = um(50.0);
  g.transverse_pitch = um(150.0);
  g.longitudinal_pitch = um(150.0);
  g.height = um(100.0);
  g.footprint_width = mm(10.0);
  g.footprint_length = mm(10.0);
  return g;
}

TEST(PinFin, GeometryCounts) {
  const PinFinArray g = base_array();
  EXPECT_EQ(g.rows_along_flow(), 66);
  EXPECT_EQ(g.pins_per_row(), 66);
  EXPECT_NEAR(g.min_flow_area(), mm(10.0) * um(100.0) * (2.0 / 3.0), 1e-12);
  EXPECT_GT(g.pin_surface_area(), 0.0);
}

TEST(PinFin, StaggeredHasMoreDragAndMoreTransfer) {
  PinFinArray g = base_array();
  g.arrangement = PinArrangement::kInline;
  const auto inline_perf = evaluate_pin_fin(g, ml_per_min(32.3), water27(),
                                            130.0);
  g.arrangement = PinArrangement::kStaggered;
  const auto stag = evaluate_pin_fin(g, ml_per_min(32.3), water27(), 130.0);
  // Section II-C: in-line = low pressure drop, acceptable transfer.
  EXPECT_GT(stag.pressure_drop, 1.2 * inline_perf.pressure_drop);
  EXPECT_GT(stag.htc, inline_perf.htc);
  EXPECT_GT(inline_perf.htc, 0.6 * stag.htc);  // "acceptable"
}

TEST(PinFin, ShapeOrdering) {
  PinFinArray g = base_array();
  double dp[3];
  int i = 0;
  for (const auto s : {PinShape::kDrop, PinShape::kCircular,
                       PinShape::kSquare}) {
    g.shape = s;
    dp[i++] = evaluate_pin_fin(g, ml_per_min(32.3), water27(), 130.0)
                  .pressure_drop;
  }
  EXPECT_LT(dp[0], dp[1]);  // drop < circular
  EXPECT_LT(dp[1], dp[2]);  // circular < square
}

TEST(PinFin, ZeroFlowGivesZeroPerformance) {
  const auto perf = evaluate_pin_fin(base_array(), 0.0, water27(), 130.0);
  EXPECT_DOUBLE_EQ(perf.pressure_drop, 0.0);
  EXPECT_DOUBLE_EQ(perf.htc, 0.0);
}

TEST(PinFin, RejectsOutOfRangeReynolds) {
  EXPECT_THROW(
      evaluate_pin_fin(base_array(), ml_per_min(3000.0), water27(), 130.0),
      ModelRangeError);
}

TEST(PinFin, RejectsOverlappingPins) {
  PinFinArray g = base_array();
  g.transverse_pitch = um(40.0);  // < diameter
  EXPECT_THROW(g.min_flow_area(), InvalidArgument);
}

class PinFlowSweep : public ::testing::TestWithParam<double> {};

TEST_P(PinFlowSweep, PressureAndTransferIncreaseWithFlow) {
  PinFinArray g = base_array();
  const double q = ml_per_min(GetParam());
  const auto lo = evaluate_pin_fin(g, q, water27(), 130.0);
  const auto hi = evaluate_pin_fin(g, 1.5 * q, water27(), 130.0);
  EXPECT_GT(hi.pressure_drop, lo.pressure_drop);
  EXPECT_GT(hi.htc, lo.htc);
}

INSTANTIATE_TEST_SUITE_P(Flows, PinFlowSweep,
                         ::testing::Values(5.0, 10.0, 20.0, 30.0));

// --- width modulation ----------------------------------------------------

TEST(Modulation, FluidTemperatureIndependentOfWidths) {
  const std::vector<double> len(10, mm(1.0));
  const std::vector<double> q(10, w_per_cm2(50.0));
  const double q_ch = ml_per_min(0.4);
  ModulatedChannel wide{len, std::vector<double>(10, um(50.0)), um(100.0)};
  ModulatedChannel narrow{len, std::vector<double>(10, um(30.0)), um(100.0)};
  const auto rw = evaluate_modulated_channel(wide, q, um(150.0), q_ch,
                                             300.0, water27(), 130.0);
  const auto rn = evaluate_modulated_channel(narrow, q, um(150.0), q_ch,
                                             300.0, water27(), 130.0);
  for (int i = 0; i < 10; ++i) {
    EXPECT_NEAR(rw.fluid_temp[i], rn.fluid_temp[i], 1e-9);
  }
}

TEST(Modulation, NarrowerSegmentsCoolBetterButCostMore) {
  const std::vector<double> len(10, mm(1.0));
  const std::vector<double> q(10, w_per_cm2(100.0));
  const double q_ch = ml_per_min(0.4);
  ModulatedChannel wide{len, std::vector<double>(10, um(50.0)), um(100.0)};
  ModulatedChannel narrow{len, std::vector<double>(10, um(30.0)), um(100.0)};
  const auto rw = evaluate_modulated_channel(wide, q, um(150.0), q_ch,
                                             300.0, water27(), 130.0);
  const auto rn = evaluate_modulated_channel(narrow, q, um(150.0), q_ch,
                                             300.0, water27(), 130.0);
  EXPECT_LT(rn.wall_superheat[5], rw.wall_superheat[5]);
  EXPECT_GT(rn.pressure_drop, rw.pressure_drop);
}

TEST(Modulation, DesignNarrowsOnlyAtHotSpot) {
  const int n = 12;
  std::vector<double> len(n, mm(1.0));
  std::vector<double> q(n, w_per_cm2(40.0));
  q[7] = w_per_cm2(250.0);
  q[8] = w_per_cm2(250.0);
  const auto chan = design_width_profile(
      len, q, um(100.0), um(150.0), um(30.0), um(50.0), ml_per_min(0.49),
      celsius_to_kelvin(27.0), celsius_to_kelvin(85.0), water27(), 130.0);
  for (int i = 0; i < n; ++i) {
    if (i == 7 || i == 8) {
      EXPECT_LT(chan.segment_widths[i], um(49.0)) << "segment " << i;
    } else {
      EXPECT_NEAR(chan.segment_widths[i], um(50.0), 1e-9) << "segment " << i;
    }
  }
  const auto r = evaluate_modulated_channel(chan, q, um(150.0),
                                            ml_per_min(0.49),
                                            celsius_to_kelvin(27.0),
                                            water27(), 130.0);
  EXPECT_LE(r.peak_wall_temperature, celsius_to_kelvin(85.0) + 0.1);
}

TEST(Modulation, MinFlowBisectionFindsThreshold) {
  const int n = 10;
  std::vector<double> len(n, mm(1.0));
  std::vector<double> q(n, w_per_cm2(60.0));
  const ModulatedChannel chan{len, std::vector<double>(n, um(50.0)),
                              um(100.0)};
  const double q_min = min_flow_for_limit(chan, q, um(150.0),
                                          celsius_to_kelvin(27.0),
                                          celsius_to_kelvin(85.0), water27(),
                                          130.0, ml_per_min(0.02),
                                          ml_per_min(0.5));
  const auto at_min = evaluate_modulated_channel(
      chan, q, um(150.0), q_min, celsius_to_kelvin(27.0), water27(), 130.0);
  EXPECT_NEAR(kelvin_to_celsius(at_min.peak_wall_temperature), 85.0, 0.5);
  // Slightly less flow must violate the limit.
  const auto below = evaluate_modulated_channel(
      chan, q, um(150.0), 0.95 * q_min, celsius_to_kelvin(27.0), water27(),
      130.0);
  EXPECT_GT(below.peak_wall_temperature, celsius_to_kelvin(85.0));
}

TEST(Modulation, MinFlowThrowsWhenLimitUnreachable) {
  const int n = 4;
  std::vector<double> len(n, mm(1.0));
  std::vector<double> q(n, w_per_cm2(2000.0));  // absurd flux
  const ModulatedChannel chan{len, std::vector<double>(n, um(50.0)),
                              um(100.0)};
  EXPECT_THROW(min_flow_for_limit(chan, q, um(150.0),
                                  celsius_to_kelvin(27.0),
                                  celsius_to_kelvin(85.0), water27(), 130.0,
                                  ml_per_min(0.02), ml_per_min(0.5)),
               InvalidArgument);
}

// --- hydraulic network ---------------------------------------------------

TEST(FlowNetwork, SeriesResistorsSplitPressure) {
  HydraulicNetwork net;
  const auto in = net.add_fixed_node(100.0);
  const auto mid = net.add_node();
  const auto out = net.add_fixed_node(0.0);
  net.add_edge(in, mid, 1.0);
  net.add_edge(mid, out, 1.0);
  const auto sol = net.solve();
  EXPECT_NEAR(sol.pressures[mid], 50.0, 1e-9);
  EXPECT_NEAR(sol.edge_flows[0], 50.0, 1e-9);
  EXPECT_NEAR(sol.edge_flows[1], 50.0, 1e-9);
}

TEST(FlowNetwork, ParallelBranchesShareByConductance) {
  HydraulicNetwork net;
  const auto in = net.add_fixed_node(10.0);
  const auto out = net.add_fixed_node(0.0);
  const auto e1 = net.add_edge(in, out, 1.0);
  const auto e2 = net.add_edge(in, out, 3.0);
  const auto sol = net.solve();
  EXPECT_NEAR(sol.edge_flows[e2], 3.0 * sol.edge_flows[e1], 1e-9);
}

TEST(FlowNetwork, MassConservationAtInteriorNodes) {
  HydraulicNetwork net;
  const auto in = net.add_fixed_node(50.0);
  const auto a = net.add_node();
  const auto b = net.add_node();
  const auto out = net.add_fixed_node(0.0);
  net.add_edge(in, a, 2.0);
  net.add_edge(a, b, 1.0);
  net.add_edge(a, out, 0.5);
  net.add_edge(b, out, 3.0);
  const auto sol = net.solve();
  // Flow into a == flow out of a.
  EXPECT_NEAR(sol.edge_flows[0], sol.edge_flows[1] + sol.edge_flows[2],
              1e-9);
}

TEST(FlowNetwork, InjectionRaisesLocalPressure) {
  HydraulicNetwork net;
  const auto ref = net.add_fixed_node(0.0);
  const auto n1 = net.add_node();
  net.add_edge(ref, n1, 2.0);
  net.set_injection(n1, 4.0);
  const auto sol = net.solve();
  EXPECT_NEAR(sol.pressures[n1], 2.0, 1e-9);  // P = Q / g
}

TEST(FlowNetwork, RejectsFloatingNetworkAndBadEdges) {
  HydraulicNetwork net;
  const auto a = net.add_node();
  const auto b = net.add_node();
  net.add_edge(a, b, 1.0);
  EXPECT_THROW(net.solve(), InvalidArgument);
  EXPECT_THROW(net.add_edge(a, a, 1.0), InvalidArgument);
  EXPECT_THROW(net.add_edge(a, 99, 1.0), InvalidArgument);
  EXPECT_THROW(net.add_edge(a, b, -1.0), InvalidArgument);
}

TEST(FlowNetwork, ChannelConductanceMatchesPressureDrop) {
  const RectDuct duct{um(50.0), um(100.0)};
  const Coolant w = water27();
  const double g = channel_conductance(duct, mm(10.0), w);
  const double q = ml_per_min(0.3);
  const double dp = pressure_drop(duct, mm(10.0), q, w);
  EXPECT_NEAR(g * dp, q, 0.01 * q);  // Q = g dP (laminar linearity)
}

}  // namespace
}  // namespace tac3d::microchannel
