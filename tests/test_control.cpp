// Tests of the fuzzy-inference engine and the run-time thermal policies.
#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "common/units.hpp"
#include "control/fuzzy.hpp"
#include "control/policy.hpp"

namespace tac3d::control {
namespace {

TEST(Membership, TriangularShape) {
  const auto mf = MembershipFunction::triangular(0.0, 1.0, 2.0);
  EXPECT_DOUBLE_EQ(mf(1.0), 1.0);
  EXPECT_DOUBLE_EQ(mf(0.5), 0.5);
  EXPECT_DOUBLE_EQ(mf(1.5), 0.5);
  EXPECT_DOUBLE_EQ(mf(-1.0), 0.0);
  EXPECT_DOUBLE_EQ(mf(3.0), 0.0);
}

TEST(Membership, TrapezoidShapeAndShoulders) {
  const auto mf = MembershipFunction::trapezoid(0.0, 1.0, 2.0, 3.0);
  EXPECT_DOUBLE_EQ(mf(1.5), 1.0);
  EXPECT_DOUBLE_EQ(mf(0.5), 0.5);
  EXPECT_DOUBLE_EQ(mf(2.5), 0.5);
  // Crisp left shoulder (a == b).
  const auto left = MembershipFunction::trapezoid(0.0, 0.0, 1.0, 2.0);
  EXPECT_DOUBLE_EQ(left(0.0), 1.0);
}

TEST(Membership, RejectsDegenerateParameters) {
  EXPECT_THROW(MembershipFunction::triangular(2.0, 1.0, 3.0),
               InvalidArgument);
  EXPECT_THROW(MembershipFunction::trapezoid(0.0, 0.0, 0.0, 0.0),
               InvalidArgument);
}

TEST(LinguisticVariableTest, SetLookupAndMembership) {
  LinguisticVariable v("temp", 0.0, 100.0);
  v.add_set("cold", MembershipFunction::trapezoid(0, 0, 20, 40));
  v.add_set("hot", MembershipFunction::trapezoid(60, 80, 100, 100));
  EXPECT_EQ(v.set_index("hot"), 1);
  EXPECT_THROW(v.set_index("warm"), InvalidArgument);
  EXPECT_DOUBLE_EQ(v.membership(0, 10.0), 1.0);
  // Inputs are clamped to the domain.
  EXPECT_DOUBLE_EQ(v.membership(1, 500.0), 1.0);
}

FuzzyController make_simple_controller() {
  // One input (error in [0, 1]) and one output (command in [0, 1]):
  // small error -> low command, large error -> high command.
  LinguisticVariable err("err", 0.0, 1.0);
  err.add_set("small", MembershipFunction::trapezoid(0, 0, 0.2, 0.5));
  err.add_set("large", MembershipFunction::trapezoid(0.5, 0.8, 1, 1));
  LinguisticVariable cmd("cmd", 0.0, 1.0);
  cmd.add_set("low", MembershipFunction::triangular(0.0, 0.2, 0.4));
  cmd.add_set("high", MembershipFunction::triangular(0.6, 0.8, 1.0));
  FuzzyController fc;
  fc.add_input(std::move(err));
  fc.set_output(std::move(cmd));
  fc.add_rule({{"err", "small"}}, "low");
  fc.add_rule({{"err", "large"}}, "high");
  return fc;
}

TEST(FuzzyControllerTest, CrispRegionsHitSetCentroids) {
  auto fc = make_simple_controller();
  EXPECT_NEAR(fc.evaluate({0.1}), 0.2, 0.02);
  EXPECT_NEAR(fc.evaluate({0.9}), 0.8, 0.02);
}

TEST(FuzzyControllerTest, OutputIsMonotoneInInput) {
  auto fc = make_simple_controller();
  double prev = -1.0;
  for (double e = 0.0; e <= 1.0; e += 0.05) {
    const double out = fc.evaluate({e});
    EXPECT_GE(out, prev - 1e-9) << "at e=" << e;
    prev = out;
  }
}

TEST(FuzzyControllerTest, NoFiringRuleFallsBackToMidpoint) {
  LinguisticVariable in("x", 0.0, 1.0);
  in.add_set("edge", MembershipFunction::triangular(0.0, 0.0 + 1e-9, 0.1));
  LinguisticVariable out("y", 0.0, 2.0);
  out.add_set("a", MembershipFunction::triangular(0.0, 0.5, 1.0));
  FuzzyController fc;
  fc.add_input(std::move(in));
  fc.set_output(std::move(out));
  fc.add_rule({{"x", "edge"}}, "a");
  EXPECT_NEAR(fc.evaluate({0.9}), 1.0, 1e-9);  // midpoint of [0, 2]
}

TEST(FuzzyControllerTest, ValidatesRulesAndInputs) {
  auto fc = make_simple_controller();
  EXPECT_THROW(fc.evaluate({0.5, 0.5}), InvalidArgument);
  EXPECT_THROW(fc.add_rule({{"nope", "small"}}, "low"), InvalidArgument);
  EXPECT_THROW(fc.add_rule({{"err", "nope"}}, "low"), InvalidArgument);
  EXPECT_THROW(fc.add_rule({{"err", "small"}}, "nope"), InvalidArgument);
}

TEST(FuzzyControllerTest, AndSemanticsTakeTheMinimum) {
  LinguisticVariable a("a", 0.0, 1.0);
  a.add_set("on", MembershipFunction::trapezoid(0, 0, 1, 1));
  LinguisticVariable b("b", 0.0, 1.0);
  b.add_set("half", MembershipFunction::triangular(0.0, 0.5, 1.0));
  LinguisticVariable out("y", 0.0, 1.0);
  out.add_set("go", MembershipFunction::triangular(0.4, 0.5, 0.6));
  out.add_set("stop", MembershipFunction::triangular(0.0, 0.05, 0.1));
  FuzzyController fc;
  fc.add_input(std::move(a));
  fc.add_input(std::move(b));
  fc.set_output(std::move(out));
  fc.add_rule({{"a", "on"}, {"b", "half"}}, "go");
  // b = 0.5 -> full activation; centroid near 0.5.
  EXPECT_NEAR(fc.evaluate({0.7, 0.5}), 0.5, 0.02);
}

// --- policies -------------------------------------------------------------

PolicyInputs inputs_at(double temp_c, int n_cores, double demand,
                       double dt = 0.25) {
  PolicyInputs in;
  in.core_temps.assign(n_cores, celsius_to_kelvin(temp_c));
  in.core_demands.assign(n_cores, demand);
  in.dt = dt;
  return in;
}

TEST(MaxPerformance, AlwaysTopLevelAndFixedPump) {
  const auto vf = power::VfTable::ultrasparc_t1();
  MaxPerformancePolicy air(8, vf, -1);
  MaxPerformancePolicy liquid(8, vf, 15);
  const auto a = air.decide(inputs_at(90.0, 8, 1.0));
  const auto l = liquid.decide(inputs_at(30.0, 8, 0.1));
  for (int c = 0; c < 8; ++c) {
    EXPECT_EQ(a.vf_levels[c], vf.max_level());
    EXPECT_EQ(l.vf_levels[c], vf.max_level());
  }
  EXPECT_EQ(a.pump_level, -1);
  EXPECT_EQ(l.pump_level, 15);
  EXPECT_EQ(air.name(), "AC_LB");
  EXPECT_EQ(liquid.name(), "LC_LB");
}

TEST(Tdvfs, ScalesDownAboveTripAndRecoversBelowRelease) {
  const auto vf = power::VfTable::ultrasparc_t1();
  TemperatureTriggeredDvfsPolicy pol(4, vf, celsius_to_kelvin(85.0),
                                     celsius_to_kelvin(82.0));
  // Hot: one step down per interval.
  auto act = pol.decide(inputs_at(86.0, 4, 1.0));
  EXPECT_EQ(act.vf_levels[0], vf.max_level() - 1);
  act = pol.decide(inputs_at(86.0, 4, 1.0));
  EXPECT_EQ(act.vf_levels[0], vf.max_level() - 2);
  // Hysteresis band: hold.
  act = pol.decide(inputs_at(83.5, 4, 1.0));
  EXPECT_EQ(act.vf_levels[0], vf.max_level() - 2);
  // Cool: climb back.
  act = pol.decide(inputs_at(80.0, 4, 1.0));
  EXPECT_EQ(act.vf_levels[0], vf.max_level() - 1);
}

TEST(Tdvfs, SaturatesAtLowestLevel) {
  const auto vf = power::VfTable::ultrasparc_t1();
  TemperatureTriggeredDvfsPolicy pol(2, vf, celsius_to_kelvin(85.0),
                                     celsius_to_kelvin(82.0));
  for (int i = 0; i < 20; ++i) pol.decide(inputs_at(95.0, 2, 1.0));
  const auto act = pol.decide(inputs_at(95.0, 2, 1.0));
  EXPECT_EQ(act.vf_levels[0], 0);
}

TEST(Fuzzy, ColdStackShedsFlow) {
  const auto vf = power::VfTable::ultrasparc_t1();
  FuzzyFlowDvfsPolicy pol(8, vf, 16, celsius_to_kelvin(85.0));
  int level = 15;
  for (int i = 0; i < 60; ++i) {
    level = pol.decide(inputs_at(40.0, 8, 0.2)).pump_level;
  }
  EXPECT_LT(level, 4);  // large margin -> near-minimum flow
}

TEST(Fuzzy, CriticalTemperatureForcesMaxPumpAndNominalVf) {
  const auto vf = power::VfTable::ultrasparc_t1();
  FuzzyFlowDvfsPolicy pol(8, vf, 16, celsius_to_kelvin(85.0));
  const auto act = pol.decide(inputs_at(86.0, 8, 0.3));
  EXPECT_EQ(act.pump_level, 15);
  for (int c = 0; c < 8; ++c) {
    EXPECT_EQ(act.vf_levels[c], vf.max_level());
  }
}

TEST(Fuzzy, DvfsCapacityCoversDemand) {
  const auto vf = power::VfTable::ultrasparc_t1();
  FuzzyFlowDvfsPolicy pol(8, vf, 16, celsius_to_kelvin(85.0));
  for (double demand : {0.1, 0.3, 0.5, 0.7, 0.95}) {
    const auto act = pol.decide(inputs_at(55.0, 8, demand));
    for (int c = 0; c < 8; ++c) {
      EXPECT_GE(vf.speed_scale(act.vf_levels[c]) + 1e-12,
                std::min(1.0, demand))
          << "demand " << demand;
    }
  }
}

TEST(Fuzzy, PumpSlewIsLimited) {
  const auto vf = power::VfTable::ultrasparc_t1();
  FuzzyFlowDvfsPolicy pol(8, vf, 16, celsius_to_kelvin(85.0));
  int prev = pol.decide(inputs_at(60.0, 8, 0.5)).pump_level;
  for (int i = 0; i < 30; ++i) {
    const double temp = (i % 2 == 0) ? 45.0 : 75.0;  // churn the input
    const int level = pol.decide(inputs_at(temp, 8, 0.5)).pump_level;
    EXPECT_LE(level - prev, 2);
    EXPECT_GE(level - prev, -1);
    prev = level;
  }
}

TEST(Fuzzy, FlowFractionExposedForDiagnostics) {
  const auto vf = power::VfTable::ultrasparc_t1();
  FuzzyFlowDvfsPolicy pol(8, vf, 16, celsius_to_kelvin(85.0));
  pol.decide(inputs_at(84.9, 8, 1.0));
  EXPECT_GE(pol.last_flow_fraction(), 0.0);
  EXPECT_LE(pol.last_flow_fraction(), 1.0);
}

}  // namespace
}  // namespace tac3d::control
