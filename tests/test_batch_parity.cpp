// Batched lockstep stepping must be invisible in the results: a lane of
// a BatchSession — one shared matrix traversal advancing K scenarios —
// steps bitwise identically to the same scenario on the scalar path,
// across solver kinds (direct solvers fall back to scalar lockstep),
// mixed policies/workloads/durations within a batch, and through the
// sweep runner's batch dispatch. Lanes are isolated: one throwing lane
// must not perturb its batchmates' bits.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "sim/bank.hpp"
#include "sim/batch.hpp"
#include "sim/sweep.hpp"
#include "sparse/batched.hpp"
#include "sparse/iterative.hpp"
#include "sparse/preconditioner.hpp"

namespace tac3d::sim {
namespace {

Scenario lane_scenario(PolicyKind policy, power::WorkloadKind workload,
                       std::uint64_t seed, int trace_seconds = 16) {
  Scenario s;
  s.tiers = 2;
  s.policy = policy;
  s.workload = workload;
  s.seed = seed;
  s.trace_seconds = trace_seconds;
  s.grid = thermal::GridOptions{8, 8};
  return s;
}

/// Mixed-policy, mixed-workload, mixed-duration lanes that share one
/// model key (2-tier liquid) — the regime the sweep runner batches.
std::vector<Scenario> liquid_lanes(sparse::SolverKind kind) {
  std::vector<Scenario> lanes = {
      lane_scenario(PolicyKind::kLcLb, power::WorkloadKind::kWebServer, 1),
      lane_scenario(PolicyKind::kLcFuzzy, power::WorkloadKind::kWebServer, 1),
      lane_scenario(PolicyKind::kLcFuzzy, power::WorkloadKind::kDatabase, 2),
      // Shorter trace: this lane finishes first and must sit masked
      // while the others keep stepping.
      lane_scenario(PolicyKind::kLcLb, power::WorkloadKind::kMixed, 3, 12),
  };
  for (Scenario& s : lanes) s.sim.solver = kind;
  return lanes;
}

struct LaneReference {
  SimMetrics metrics;
  std::vector<double> temps;
};

/// Scalar-path reference: prepare through \p bank and run each scenario
/// alone (prepared sessions are bitwise equal to from-scratch ones —
/// test_scenario_bank).
std::vector<LaneReference> scalar_reference(ScenarioBank& bank,
                                            const std::vector<Scenario>& v) {
  std::vector<LaneReference> out;
  for (const Scenario& s : v) {
    PreparedScenario p = bank.prepare(s);
    SimulationSession session = p.session();
    session.run_to_end();
    const auto t = session.temperatures();
    out.push_back({session.metrics(), {t.begin(), t.end()}});
  }
  return out;
}

void expect_same_metrics(const SimMetrics& a, const SimMetrics& b,
                         const std::string& what) {
  EXPECT_EQ(a.duration, b.duration) << what;
  EXPECT_EQ(a.peak_temp, b.peak_temp) << what;
  EXPECT_EQ(a.any_hot_time, b.any_hot_time) << what;
  EXPECT_EQ(a.chip_energy, b.chip_energy) << what;
  EXPECT_EQ(a.pump_energy, b.pump_energy) << what;
  EXPECT_EQ(a.offered_work, b.offered_work) << what;
  EXPECT_EQ(a.lost_work, b.lost_work) << what;
  EXPECT_EQ(a.avg_flow_fraction, b.avg_flow_fraction) << what;
  EXPECT_EQ(a.migrations, b.migrations) << what;
  EXPECT_EQ(a.core_hot_time, b.core_hot_time) << what;
}

void expect_lane_matches(const BatchSession& batch, int lane,
                         const LaneReference& ref, const std::string& what) {
  ASSERT_TRUE(batch.lane_ok(lane)) << what << ": " << batch.lane_error(lane);
  expect_same_metrics(batch.metrics(lane), ref.metrics, what);
  const auto temps = batch.session(lane).temperatures();
  ASSERT_EQ(temps.size(), ref.temps.size()) << what;
  for (std::size_t i = 0; i < temps.size(); ++i) {
    ASSERT_EQ(temps[i], ref.temps[i]) << what << " node " << i;
  }
}

class BatchParityTest : public ::testing::TestWithParam<sparse::SolverKind> {};

TEST_P(BatchParityTest, LanesMatchScalarPathBitwise) {
  const sparse::SolverKind kind = GetParam();
  const std::vector<Scenario> lanes = liquid_lanes(kind);
  ScenarioBank bank;
  const std::vector<LaneReference> refs = scalar_reference(bank, lanes);

  std::vector<PreparedScenario> prepared;
  for (const Scenario& s : lanes) prepared.push_back(bank.prepare(s));
  BatchSession batch(std::move(prepared));
  // Iterative kinds batch the thermal solves; the direct solver falls
  // back to scalar lockstep — and must be just as invisible. These
  // lanes share the floorplan, so a thermal batch also fuses its tail.
  EXPECT_EQ(batch.thermal_batched(),
            kind != sparse::SolverKind::kBandedLu);
  EXPECT_EQ(batch.tail_fused(), batch.thermal_batched());
  batch.run_to_end();
  EXPECT_TRUE(batch.done());

  for (int l = 0; l < batch.lanes(); ++l) {
    expect_lane_matches(batch, l, refs[static_cast<std::size_t>(l)],
                        "lane " + std::to_string(l) + " kind " +
                            std::to_string(static_cast<int>(kind)));
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllSolverKinds, BatchParityTest,
    ::testing::Values(sparse::SolverKind::kBicgstabIlu0,
                      sparse::SolverKind::kBicgstabJacobi,
                      sparse::SolverKind::kBandedLu));

TEST(BatchSession, SingleLaneFallsBackToScalar) {
  ScenarioBank bank;
  const Scenario s = lane_scenario(PolicyKind::kLcFuzzy,
                                   power::WorkloadKind::kWebServer, 1);
  const std::vector<LaneReference> refs = scalar_reference(bank, {s});

  std::vector<PreparedScenario> prepared;
  prepared.push_back(bank.prepare(s));
  BatchSession batch(std::move(prepared));
  EXPECT_FALSE(batch.thermal_batched());
  batch.run_to_end();
  expect_lane_matches(batch, 0, refs[0], "single lane");
}

TEST(BatchSession, WiderThanKernelCapFallsBackToScalar) {
  // sparse::kMaxBatchLanes bounds the interleaved kernels; a wider
  // BatchSession must degrade to scalar lockstep, not throw (the sweep
  // runner chunks below the cap — this guards direct users).
  ScenarioBank bank;
  std::vector<PreparedScenario> prepared;
  for (std::uint64_t seed = 1;
       seed <= static_cast<std::uint64_t>(sparse::kMaxBatchLanes) + 1;
       ++seed) {
    Scenario s = lane_scenario(PolicyKind::kLcLb,
                               power::WorkloadKind::kWebServer, seed, 8);
    prepared.push_back(bank.prepare(s));
  }
  BatchSession batch(std::move(prepared));
  EXPECT_FALSE(batch.thermal_batched());
  batch.run_to_end();
  for (int l = 0; l < batch.lanes(); ++l) {
    EXPECT_TRUE(batch.lane_ok(l)) << batch.lane_error(l);
  }
}

/// Forwards to the real policy until a trigger step, then throws —
/// injected into one lane to prove batch isolation.
class ThrowAfterPolicy final : public control::ThermalPolicy {
 public:
  ThrowAfterPolicy(std::unique_ptr<control::ThermalPolicy> inner, int after)
      : inner_(std::move(inner)), after_(after) {}

  control::PolicyActions decide(const control::PolicyInputs& in) override {
    if (++calls_ > after_) {
      throw std::runtime_error("injected mid-batch policy failure");
    }
    return inner_->decide(in);
  }

  std::string name() const override { return "throw-after"; }

 private:
  std::unique_ptr<control::ThermalPolicy> inner_;
  int after_;
  int calls_ = 0;
};

TEST(BatchSession, ThrowingLaneLeavesOtherLanesIntact) {
  const std::vector<Scenario> lanes =
      liquid_lanes(sparse::SolverKind::kBicgstabIlu0);
  ScenarioBank bank;
  const std::vector<LaneReference> refs = scalar_reference(bank, lanes);

  std::vector<PreparedScenario> prepared;
  for (const Scenario& s : lanes) prepared.push_back(bank.prepare(s));
  // Lane 1 blows up mid-run (after 5 control intervals).
  prepared[1].policy =
      std::make_unique<ThrowAfterPolicy>(std::move(prepared[1].policy), 5);
  BatchSession batch(std::move(prepared));
  EXPECT_TRUE(batch.thermal_batched());
  // The wrapped lane is not a FuzzyFlowDvfsPolicy, so it decides on the
  // per-lane path inside the fused tail — fusion itself stays on.
  EXPECT_TRUE(batch.tail_fused());
  batch.run_to_end();
  EXPECT_TRUE(batch.done());

  EXPECT_FALSE(batch.lane_ok(1));
  EXPECT_NE(batch.lane_error(1).find("injected"), std::string::npos);
  for (const int l : {0, 2, 3}) {
    expect_lane_matches(batch, l, refs[static_cast<std::size_t>(l)],
                        "surviving lane " + std::to_string(l));
  }
}

TEST(BatchSession, AirCooledLanesFuseTailAndMatchScalar) {
  // Air-cooled stacks take the no-pump branches of the tail (no flow
  // application, no pump energy); the fused tail must still be bitwise
  // the scalar path there.
  std::vector<Scenario> lanes = {
      lane_scenario(PolicyKind::kAcLb, power::WorkloadKind::kWebServer, 1),
      lane_scenario(PolicyKind::kAcTdvfsLb, power::WorkloadKind::kDatabase,
                    2),
      lane_scenario(PolicyKind::kAcLb, power::WorkloadKind::kMixed, 3, 12),
  };
  for (Scenario& s : lanes) {
    s.sim.solver = sparse::SolverKind::kBicgstabIlu0;
  }
  ScenarioBank bank;
  const std::vector<LaneReference> refs = scalar_reference(bank, lanes);

  std::vector<PreparedScenario> prepared;
  for (const Scenario& s : lanes) prepared.push_back(bank.prepare(s));
  BatchSession batch(std::move(prepared));
  EXPECT_TRUE(batch.thermal_batched());
  EXPECT_TRUE(batch.tail_fused());
  batch.run_to_end();
  for (int l = 0; l < batch.lanes(); ++l) {
    expect_lane_matches(batch, l, refs[static_cast<std::size_t>(l)],
                        "air lane " + std::to_string(l));
  }
}

TEST(BatchSession, AllFuzzyBatchSharesInferenceBitwise) {
  // Every lane is LC_FUZZY, so the fused tail routes all of them through
  // FuzzyFlowDvfsPolicy::decide_batch — one shared Mamdani inference
  // pass per step — which must not move a bit on any lane.
  std::vector<Scenario> lanes = {
      lane_scenario(PolicyKind::kLcFuzzy, power::WorkloadKind::kWebServer, 1),
      lane_scenario(PolicyKind::kLcFuzzy, power::WorkloadKind::kDatabase, 2),
      lane_scenario(PolicyKind::kLcFuzzy, power::WorkloadKind::kMixed, 3),
      lane_scenario(PolicyKind::kLcFuzzy, power::WorkloadKind::kWebServer, 4,
                    12),
  };
  for (Scenario& s : lanes) {
    s.sim.solver = sparse::SolverKind::kBicgstabIlu0;
  }
  ScenarioBank bank;
  const std::vector<LaneReference> refs = scalar_reference(bank, lanes);

  std::vector<PreparedScenario> prepared;
  for (const Scenario& s : lanes) prepared.push_back(bank.prepare(s));
  BatchSession batch(std::move(prepared));
  EXPECT_TRUE(batch.thermal_batched());
  EXPECT_TRUE(batch.tail_fused());
  batch.run_to_end();
  for (int l = 0; l < batch.lanes(); ++l) {
    expect_lane_matches(batch, l, refs[static_cast<std::size_t>(l)],
                        "fuzzy lane " + std::to_string(l));
  }
}

/// 2D convection-diffusion system (nonsymmetric 5-point stencil on a
/// g x g grid), lane-perturbed so the lanes share the pattern but not
/// the values — the sparse-level fixture for the compaction tests. A 2D
/// stencil matters: ILU(0) on a tridiagonal system is an exact LU, which
/// would converge every lane at iteration 1 and never stagger.
sparse::CsrMatrix lane_matrix(std::int32_t g, double eps) {
  std::vector<sparse::Triplet> t;
  for (std::int32_t r = 0; r < g; ++r) {
    for (std::int32_t c = 0; c < g; ++c) {
      const std::int32_t i = r * g + c;
      t.push_back({i, i, 4.5 + eps});
      if (c > 0) t.push_back({i, i - 1, -1.3 - eps});  // upwind advection
      if (c + 1 < g) t.push_back({i, i + 1, -0.7 + eps});
      if (r > 0) t.push_back({i, i - g, -1.0});
      if (r + 1 < g) t.push_back({i, i + g, -1.0});
    }
  }
  return sparse::CsrMatrix::from_triplets(g * g, g * g, std::move(t));
}

/// Staggered-convergence batch straight at the sparse layer: lanes with
/// tolerances decades apart converge at different Krylov iterations, so
/// the solve must compact its fused kernels mid-flight (8 -> ... -> 1)
/// — and every lane must still finish with exactly the bits and the
/// iteration count of a serial bicgstab() on that lane alone.
void staggered_compaction_case(int lanes) {
  const std::int32_t grid = 13;
  const std::int32_t n = grid * grid;
  std::vector<sparse::CsrMatrix> mats;
  for (int l = 0; l < lanes; ++l) {
    mats.push_back(lane_matrix(grid, 0.01 * l));
  }
  sparse::BatchedCsr a(mats[0], lanes);
  for (int l = 0; l < lanes; ++l) a.load_lane(l, mats[l]);
  sparse::BatchedIlu0Preconditioner precond(a);
  for (int l = 0; l < lanes; ++l) precond.refactor_lane(l, a);

  // Tolerances staggered over many decades: lane 0 converges first,
  // the last lane keeps iterating alone at width 1.
  std::vector<double> tol(static_cast<std::size_t>(lanes));
  for (int l = 0; l < lanes; ++l) {
    tol[static_cast<std::size_t>(l)] =
        std::pow(10.0, -2.0 - 10.0 * l / std::max(lanes - 1, 1));
  }

  const std::size_t total = static_cast<std::size_t>(n) * lanes;
  std::vector<double> b(total), x(total, 0.0);
  for (std::int32_t i = 0; i < n; ++i) {
    for (int l = 0; l < lanes; ++l) {
      b[static_cast<std::size_t>(i) * lanes + l] =
          std::sin(0.1 * i + 0.3 * l) + 1.0;
    }
  }

  std::vector<std::uint8_t> active(static_cast<std::size_t>(lanes), 1);
  std::vector<sparse::BatchedLaneResult> results(
      static_cast<std::size_t>(lanes));
  sparse::BatchedKrylovWorkspace ws;
  const int events = sparse::batched_bicgstab(
      a, b, x, precond, tol, 500, active, ws, results);
  EXPECT_GE(events, 1) << "staggered tolerances never compacted";

  for (int l = 0; l < lanes; ++l) {
    sparse::Ilu0Preconditioner sprecond(mats[static_cast<std::size_t>(l)]);
    std::vector<double> sb(static_cast<std::size_t>(n)),
        sx(static_cast<std::size_t>(n), 0.0);
    for (std::int32_t i = 0; i < n; ++i) {
      sb[static_cast<std::size_t>(i)] =
          b[static_cast<std::size_t>(i) * lanes + l];
    }
    sparse::IterativeOptions opts;
    opts.rel_tolerance = tol[static_cast<std::size_t>(l)];
    opts.max_iterations = 500;
    const sparse::IterativeResult ref = sparse::bicgstab(
        mats[static_cast<std::size_t>(l)], sb, sx, sprecond, opts);
    const std::string what = "lane " + std::to_string(l) + " of " +
                             std::to_string(lanes);
    EXPECT_EQ(results[static_cast<std::size_t>(l)].converged, ref.converged)
        << what;
    EXPECT_EQ(results[static_cast<std::size_t>(l)].iterations, ref.iterations)
        << what << ": compaction changed a lane's iteration count";
    for (std::int32_t i = 0; i < n; ++i) {
      ASSERT_EQ(x[static_cast<std::size_t>(i) * lanes + l],
                sx[static_cast<std::size_t>(i)])
          << what << " row " << i;
    }
  }
}

TEST(BatchedCompaction, StaggeredLanesStayBitwiseSerial) {
  staggered_compaction_case(6);
}

TEST(BatchedCompaction, FullWidthEightCompactsDown) {
  staggered_compaction_case(8);
}

TEST(BatchedCompaction, CacheBlockedWidth16MatchesSerial) {
  // 16 lanes dispatch the cache-blocked two-half kernels; compaction
  // then re-dispatches through 8 and below as lanes finish.
  staggered_compaction_case(sparse::kMaxBatchLanes);
}

TEST(SweepBatching, BatchedSweepIsBitwiseIdenticalToScalarSweep) {
  // A design-space slice with two batchable groups (ilu0 + jacobi), a
  // direct-solver scenario (grouping must fall it back to scalar), and
  // group sizes that don't divide the batch width evenly.
  std::vector<Scenario> scenarios;
  for (const std::uint64_t seed : {1ull, 2ull, 3ull}) {
    scenarios.push_back(lane_scenario(PolicyKind::kLcFuzzy,
                                      power::WorkloadKind::kWebServer, seed));
    scenarios.push_back(lane_scenario(PolicyKind::kLcLb,
                                      power::WorkloadKind::kWebServer, seed));
  }
  scenarios[4].sim.solver = sparse::SolverKind::kBicgstabJacobi;
  scenarios[5].sim.solver = sparse::SolverKind::kBandedLu;

  SweepOptions off;
  off.jobs = 1;
  off.batch_width = 1;  // batching off — the unchanged scalar sweep
  const SweepReport scalar = run_sweep(scenarios, off);

  SweepOptions on;
  on.jobs = 1;
  on.batch_width = 3;
  const SweepReport batched = run_sweep(scenarios, on);

  SweepOptions parallel;
  parallel.jobs = 2;
  const SweepReport wide = run_sweep(scenarios, parallel);  // auto width

  ASSERT_TRUE(scalar.all_ok());
  ASSERT_TRUE(batched.all_ok());
  ASSERT_TRUE(wide.all_ok());
  ASSERT_EQ(scalar.size(), scenarios.size());

  bool any_batched = false;
  for (std::size_t i = 0; i < scenarios.size(); ++i) {
    const std::string what = scalar.at(i).scenario.label;
    EXPECT_EQ(scalar.at(i).batch_lanes, 0) << what;
    expect_same_metrics(scalar.at(i).metrics, batched.at(i).metrics, what);
    expect_same_metrics(scalar.at(i).metrics, wide.at(i).metrics, what);
    any_batched |= batched.at(i).batch_lanes > 1;
  }
  EXPECT_TRUE(any_batched) << "batch dispatch never engaged";
  // The direct-solver scenario must have taken the scalar path.
  EXPECT_EQ(batched.at(5).batch_lanes, 0);
  // Grouping splits fuzzy from non-fuzzy (iteration-class scheduling):
  // the ilu0 scenarios form two 2-lane batches, not one 3+1 chunk.
  EXPECT_EQ(batched.at(0).batch_lanes, 2);  // fuzzy s1 + fuzzy s2
  EXPECT_EQ(batched.at(1).batch_lanes, 2);  // lclb s1 + lclb s2
  int widest = 0;
  for (std::size_t i = 0; i < scenarios.size(); ++i) {
    widest = std::max(widest, batched.at(i).batch_lanes);
  }
  EXPECT_EQ(widest, 2);
}

}  // namespace
}  // namespace tac3d::sim
