// Golden-reference regression suite: the paper's seven Fig. 6/7
// stack x policy configurations run as one sweep and every metric is
// compared against the recorded CSVs in tests/golden/. Numeric refactors
// of the solver stack (kernel fusion, structure sharing, workspace
// reuse) must not drift the paper's results — the tolerances are tight
// enough to catch a single misplaced operation while absorbing
// last-digit libm differences across platforms.
//
// Refreshing the baselines after an *intentional* numeric change:
//   TAC3D_UPDATE_GOLDEN=1 ./test_golden_regression
// rewrites the CSVs in the source tree (build with the default
// TAC3D_GOLDEN_DIR pointing at tests/golden). Commit the diff together
// with the change that explains it.
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "sim/sweep.hpp"

#ifndef TAC3D_GOLDEN_DIR
#define TAC3D_GOLDEN_DIR "tests/golden"
#endif

namespace tac3d::sim {
namespace {

/// The canned configuration behind the golden files: the seven paper
/// cells on the max-utilization workload, sized to run in seconds.
/// Changing anything here invalidates the recorded baselines.
std::vector<Scenario> golden_scenarios() {
  return ScenarioMatrix::paper_fig67()
      .workloads({power::WorkloadKind::kMaxUtil})
      .trace_seconds(30)
      .grid(thermal::GridOptions{12, 12})
      .build();
}

struct GoldenRow {
  std::vector<double> values;
};

using GoldenTable = std::map<std::string, GoldenRow>;

std::string golden_path(const std::string& file) {
  return std::string(TAC3D_GOLDEN_DIR) + "/" + file;
}

/// Parse "label,v1,v2,..." CSV with one header line.
GoldenTable read_golden(const std::string& file,
                        std::vector<std::string>* header_out = nullptr) {
  std::ifstream in(golden_path(file));
  if (!in) return {};
  GoldenTable table;
  std::string line;
  bool first = true;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::stringstream ss(line);
    std::string cell;
    std::vector<std::string> cells;
    while (std::getline(ss, cell, ',')) cells.push_back(cell);
    if (first) {
      first = false;
      if (header_out) *header_out = cells;
      continue;
    }
    GoldenRow row;
    for (std::size_t i = 1; i < cells.size(); ++i) {
      row.values.push_back(std::stod(cells[i]));
    }
    table[cells[0]] = std::move(row);
  }
  return table;
}

void write_golden(const std::string& file, const std::string& header,
                  const std::vector<std::pair<std::string,
                                              std::vector<double>>>& rows) {
  std::ofstream out(golden_path(file));
  ASSERT_TRUE(out) << "cannot write " << golden_path(file);
  out << header << "\n";
  out.precision(17);
  for (const auto& [label, values] : rows) {
    out << label;
    for (const double v : values) out << "," << v;
    out << "\n";
  }
}

/// Fig. 6 quantities: temperatures and hot-spot residency.
std::vector<double> hotspot_values(const SimMetrics& m) {
  return {m.peak_temp, m.hotspot_frac_any(), m.hotspot_frac_avg_core(),
          m.duration};
}
constexpr const char* kHotspotHeader =
    "label,peak_temp_k,hotspot_frac_any,hotspot_frac_avg_core,duration_s";

/// Fig. 7 quantities: energy split, pumping effort, policy counters.
std::vector<double> energy_values(const SimMetrics& m) {
  return {m.chip_energy, m.pump_energy, m.system_energy(),
          m.avg_flow_fraction, static_cast<double>(m.migrations),
          m.perf_degradation()};
}
constexpr const char* kEnergyHeader =
    "label,chip_energy_j,pump_energy_j,system_energy_j,avg_flow_fraction,"
    "migrations,perf_degradation";

/// Tight relative tolerance: far below any physical effect, far above
/// cross-platform last-digit libm drift accumulated over a run.
constexpr double kRelTol = 1e-6;

void expect_near_golden(double actual, double golden, const std::string& ctx) {
  const double tol = kRelTol * std::max(1.0, std::abs(golden));
  EXPECT_NEAR(actual, golden, tol) << ctx;
}

class GoldenRegression : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    report_ = new SweepReport(run_sweep(golden_scenarios(), {.jobs = 2}));
  }
  static void TearDownTestSuite() {
    delete report_;
    report_ = nullptr;
  }
  static SweepReport* report_;
};

SweepReport* GoldenRegression::report_ = nullptr;

bool update_mode() {
  const char* env = std::getenv("TAC3D_UPDATE_GOLDEN");
  return env != nullptr && env[0] != '\0' && env[0] != '0';
}

TEST_F(GoldenRegression, SweepCompletes) {
  ASSERT_NE(report_, nullptr);
  ASSERT_TRUE(report_->all_ok())
      << "golden sweep had failures: "
      << (report_->errors().empty() ? "" : report_->errors().front());
  ASSERT_EQ(report_->size(), 7u) << "the paper evaluates seven cells";
}

TEST_F(GoldenRegression, HotspotMetricsMatchGolden) {
  ASSERT_TRUE(report_->all_ok());
  if (update_mode()) {
    std::vector<std::pair<std::string, std::vector<double>>> rows;
    for (const SweepResult& r : report_->results()) {
      rows.emplace_back(r.scenario.label, hotspot_values(r.metrics));
    }
    write_golden("fig67_hotspots.csv", kHotspotHeader, rows);
    GTEST_SKIP() << "golden hotspot baselines rewritten";
  }
  const GoldenTable golden = read_golden("fig67_hotspots.csv");
  ASSERT_EQ(golden.size(), 7u)
      << "missing/incomplete " << golden_path("fig67_hotspots.csv")
      << " — regenerate with TAC3D_UPDATE_GOLDEN=1";
  for (const SweepResult& r : report_->results()) {
    const auto it = golden.find(r.scenario.label);
    ASSERT_NE(it, golden.end()) << "no golden row for " << r.scenario.label;
    const auto actual = hotspot_values(r.metrics);
    ASSERT_EQ(actual.size(), it->second.values.size());
    for (std::size_t i = 0; i < actual.size(); ++i) {
      expect_near_golden(actual[i], it->second.values[i],
                         r.scenario.label + " hotspot col " +
                             std::to_string(i));
    }
  }
}

TEST_F(GoldenRegression, EnergyMetricsMatchGolden) {
  ASSERT_TRUE(report_->all_ok());
  if (update_mode()) {
    std::vector<std::pair<std::string, std::vector<double>>> rows;
    for (const SweepResult& r : report_->results()) {
      rows.emplace_back(r.scenario.label, energy_values(r.metrics));
    }
    write_golden("fig67_energy.csv", kEnergyHeader, rows);
    GTEST_SKIP() << "golden energy baselines rewritten";
  }
  const GoldenTable golden = read_golden("fig67_energy.csv");
  ASSERT_EQ(golden.size(), 7u)
      << "missing/incomplete " << golden_path("fig67_energy.csv")
      << " — regenerate with TAC3D_UPDATE_GOLDEN=1";
  for (const SweepResult& r : report_->results()) {
    const auto it = golden.find(r.scenario.label);
    ASSERT_NE(it, golden.end()) << "no golden row for " << r.scenario.label;
    const auto actual = energy_values(r.metrics);
    ASSERT_EQ(actual.size(), it->second.values.size());
    for (std::size_t i = 0; i < actual.size(); ++i) {
      expect_near_golden(actual[i], it->second.values[i],
                         r.scenario.label + " energy col " +
                             std::to_string(i));
    }
  }
}

// The structural invariant behind the golden numbers: sharing symbolic
// solver structure across the sweep must not move a single bit, serial
// or parallel.
TEST_F(GoldenRegression, StructureSharingIsBitwiseNeutral) {
  ASSERT_TRUE(report_->all_ok());
  SweepOptions no_share;
  no_share.jobs = 1;
  no_share.share_structures = false;
  const SweepReport isolated = run_sweep(golden_scenarios(), no_share);
  ASSERT_TRUE(isolated.all_ok());
  ASSERT_EQ(isolated.size(), report_->size());
  for (std::size_t i = 0; i < isolated.size(); ++i) {
    const SimMetrics& a = isolated.at(i).metrics;
    const SimMetrics& b = report_->at(i).metrics;
    EXPECT_EQ(a.peak_temp, b.peak_temp) << i;
    EXPECT_EQ(a.chip_energy, b.chip_energy) << i;
    EXPECT_EQ(a.pump_energy, b.pump_energy) << i;
    EXPECT_EQ(a.any_hot_time, b.any_hot_time) << i;
    EXPECT_EQ(a.lost_work, b.lost_work) << i;
    EXPECT_EQ(a.migrations, b.migrations) << i;
  }
}

}  // namespace
}  // namespace tac3d::sim
