// Tests of the ScenarioBank prepared-scenario subsystem: prepared /
// cloned sessions must be bitwise identical to from-scratch
// materialization across all three solver kinds, serial and parallel,
// bank on and off; the steady tier must miss whenever cooling or grid
// differ; ScenarioMatrix must dedupe trace synthesis even without a
// bank; and a bank shared across sweeps must stay warm (and neutral).
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "arch/niagara.hpp"
#include "sim/bank.hpp"
#include "sim/sweep.hpp"
#include "thermal/transient.hpp"

namespace tac3d::sim {
namespace {

Scenario quick_scenario(int tiers = 2,
                        PolicyKind policy = PolicyKind::kLcFuzzy,
                        power::WorkloadKind workload =
                            power::WorkloadKind::kWebServer) {
  Scenario s;
  s.tiers = tiers;
  s.policy = policy;
  s.workload = workload;
  s.trace_seconds = 16;
  s.grid = thermal::GridOptions{8, 8};
  return s;
}

void expect_same_metrics(const SimMetrics& a, const SimMetrics& b,
                         const std::string& what) {
  EXPECT_EQ(a.duration, b.duration) << what;
  EXPECT_EQ(a.peak_temp, b.peak_temp) << what;
  EXPECT_EQ(a.any_hot_time, b.any_hot_time) << what;
  EXPECT_EQ(a.chip_energy, b.chip_energy) << what;
  EXPECT_EQ(a.pump_energy, b.pump_energy) << what;
  EXPECT_EQ(a.offered_work, b.offered_work) << what;
  EXPECT_EQ(a.lost_work, b.lost_work) << what;
  EXPECT_EQ(a.avg_flow_fraction, b.avg_flow_fraction) << what;
  EXPECT_EQ(a.migrations, b.migrations) << what;
  EXPECT_EQ(a.core_hot_time, b.core_hot_time) << what;
}

/// Run to the end and return (metrics, final temperature field).
std::pair<SimMetrics, std::vector<double>> run_session(
    SimulationSession session) {
  session.run_to_end();
  const auto temps = session.temperatures();
  return {session.metrics(), {temps.begin(), temps.end()}};
}

// --- bitwise neutrality --------------------------------------------------

TEST(ScenarioBank, PreparedSessionsMatchFromScratchAcrossSolverKinds) {
  for (const sparse::SolverKind kind :
       {sparse::SolverKind::kBicgstabIlu0, sparse::SolverKind::kBicgstabJacobi,
        sparse::SolverKind::kBandedLu}) {
    for (const PolicyKind policy :
         {PolicyKind::kLcFuzzy, PolicyKind::kAcTdvfsLb}) {
      Scenario spec = quick_scenario(2, policy);
      spec.sim.solver = kind;
      const std::string what = scenario_label(spec) + " solver " +
                               std::to_string(static_cast<int>(kind));

      ScenarioInstance fresh = instantiate(spec);
      const auto [m_fresh, t_fresh] = run_session(fresh.session());

      ScenarioBank bank;
      PreparedScenario prepared = bank.prepare(spec);
      const auto [m_prep, t_prep] = run_session(prepared.session());

      expect_same_metrics(m_fresh, m_prep, what);
      ASSERT_EQ(t_fresh.size(), t_prep.size()) << what;
      for (std::size_t i = 0; i < t_fresh.size(); ++i) {
        ASSERT_EQ(t_fresh[i], t_prep[i]) << what << " node " << i;
      }
    }
  }
}

TEST(ScenarioBank, SecondPreparationHitsEveryTierAndStaysBitwise) {
  const Scenario spec = quick_scenario();
  ScenarioBank bank;

  PreparedScenario first = bank.prepare(spec);
  const auto [m1, t1] = run_session(first.session());
  const BankCounters after_first = bank.counters();
  EXPECT_EQ(after_first.trace_misses, 1u);
  EXPECT_EQ(after_first.model_misses, 1u);
  EXPECT_EQ(after_first.steady_misses, 1u);
  EXPECT_EQ(after_first.hits(), 0u);

  PreparedScenario second = bank.prepare(spec);
  const auto [m2, t2] = run_session(second.session());
  const BankCounters after_second = bank.counters();
  EXPECT_EQ(after_second.trace_hits, 1u);
  EXPECT_EQ(after_second.model_hits, 1u);
  EXPECT_EQ(after_second.steady_hits, 1u);
  EXPECT_EQ(after_second.misses(), 3u);  // unchanged

  expect_same_metrics(m1, m2, "prepare twice");
  EXPECT_EQ(t1, t2);

  // The two prepared scenarios share the immutable artifacts but own
  // their mutable model clones.
  EXPECT_EQ(first.trace.get(), second.trace.get());
  EXPECT_NE(first.soc.get(), second.soc.get());
  EXPECT_EQ(first.sim.initial_state.get(), second.sim.initial_state.get());
  EXPECT_EQ(first.sim.operator_prototype.get(),
            second.sim.operator_prototype.get());
}

// --- key discrimination --------------------------------------------------

TEST(ScenarioBank, SteadyTierMissesWhenCoolingOrGridDiffer) {
  ScenarioBank bank;
  const Scenario base = quick_scenario(2, PolicyKind::kLcLb);
  bank.prepare(base);

  Scenario other_grid = base;
  other_grid.grid = thermal::GridOptions{10, 10};
  bank.prepare(other_grid);

  Scenario other_cooling = base;
  other_cooling.cooling = arch::CoolingKind::kAirCooled;
  bank.prepare(other_cooling);

  const BankCounters c = bank.counters();
  EXPECT_EQ(c.steady_misses, 3u);
  EXPECT_EQ(c.steady_hits, 0u);
  EXPECT_EQ(c.model_misses, 3u);
  EXPECT_EQ(bank.steady_entries(), 3u);
  EXPECT_EQ(bank.model_entries(), 3u);
  // All three share the synthesized trace (same workload axes).
  EXPECT_EQ(bank.trace_entries(), 1u);
  EXPECT_EQ(c.trace_hits, 2u);

  // Keys spell the difference out directly.
  EXPECT_NE(scenario_steady_key(base), scenario_steady_key(other_grid));
  EXPECT_NE(scenario_steady_key(base), scenario_steady_key(other_cooling));
  EXPECT_EQ(scenario_steady_key(base), scenario_steady_key(base));
}

TEST(ScenarioBank, SteadyTierSharedAcrossPoliciesAndSolvers) {
  // The initial state is policy- and stepping-solver-independent: LC_LB
  // and LC_FUZZY on the same stack start from the same fixed point.
  ScenarioBank bank;
  Scenario a = quick_scenario(2, PolicyKind::kLcLb);
  Scenario b = quick_scenario(2, PolicyKind::kLcFuzzy);
  b.sim.solver = sparse::SolverKind::kBandedLu;
  bank.prepare(a);
  bank.prepare(b);
  const BankCounters c = bank.counters();
  EXPECT_EQ(c.steady_misses, 1u);
  EXPECT_EQ(c.steady_hits, 1u);
  EXPECT_EQ(c.model_hits, 1u);
}

// --- sweep integration ---------------------------------------------------

std::vector<Scenario> mixed_batch() {
  return {quick_scenario(2, PolicyKind::kLcFuzzy),
          quick_scenario(2, PolicyKind::kLcLb),
          quick_scenario(2, PolicyKind::kAcLb),
          quick_scenario(4, PolicyKind::kLcFuzzy,
                         power::WorkloadKind::kDatabase),
          quick_scenario(2, PolicyKind::kLcFuzzy)};  // exact repeat of [0]
}

TEST(ScenarioBank, SweepIsBitwiseIdenticalBankOnOffSerialParallel) {
  const auto scenarios = mixed_batch();

  SweepOptions off_serial;
  off_serial.jobs = 1;
  off_serial.use_bank = false;
  const SweepReport reference = run_sweep(scenarios, off_serial);
  ASSERT_TRUE(reference.all_ok());
  EXPECT_EQ(reference.bank(), nullptr);

  SweepOptions on_serial;
  on_serial.jobs = 1;
  const SweepReport bank_serial = run_sweep(scenarios, on_serial);

  SweepOptions off_parallel;
  off_parallel.jobs = 3;
  off_parallel.use_bank = false;
  const SweepReport plain_parallel = run_sweep(scenarios, off_parallel);

  SweepOptions on_parallel;
  on_parallel.jobs = 3;
  const SweepReport bank_parallel = run_sweep(scenarios, on_parallel);

  for (const SweepReport* r :
       {&bank_serial, &plain_parallel, &bank_parallel}) {
    ASSERT_TRUE(r->all_ok());
    ASSERT_EQ(r->size(), reference.size());
    for (std::size_t i = 0; i < r->size(); ++i) {
      expect_same_metrics(reference.at(i).metrics, r->at(i).metrics,
                          reference.at(i).scenario.label);
    }
  }

  ASSERT_NE(bank_serial.bank(), nullptr);
  const BankCounters c = bank_serial.bank()->counters();
  // Scenario [4] repeats [0] exactly; [1] shares its stack and start.
  EXPECT_GE(c.steady_hits, 2u);
  EXPECT_GE(c.model_hits, 2u);

  // The setup/stepping split is populated and consistent.
  for (const SweepResult& r : bank_serial.results()) {
    EXPECT_GT(r.setup_seconds, 0.0) << r.scenario.label;
    EXPECT_GT(r.stepping_seconds, 0.0) << r.scenario.label;
    EXPECT_DOUBLE_EQ(r.wall_seconds,
                     r.setup_seconds + r.stepping_seconds)
        << r.scenario.label;
  }
  EXPECT_GT(bank_serial.setup_fraction(), 0.0);
  EXPECT_LT(bank_serial.setup_fraction(), 1.0);
}

TEST(ScenarioBank, WarmBankKeepsArtifactsAcrossSweepsAndStaysNeutral) {
  const auto scenarios = mixed_batch();
  auto bank = std::make_shared<ScenarioBank>();

  SweepOptions opts;
  opts.jobs = 1;
  opts.bank = bank;
  const SweepReport cold = run_sweep(scenarios, opts);
  ASSERT_TRUE(cold.all_ok());
  EXPECT_EQ(cold.bank(), bank);
  const BankCounters after_cold = bank.get()->counters();

  const SweepReport warm = run_sweep(scenarios, opts);
  ASSERT_TRUE(warm.all_ok());
  const BankCounters after_warm = bank.get()->counters();

  // Second sweep built nothing new: misses unchanged, hits grew by one
  // full sweep's worth of lookups per tier.
  EXPECT_EQ(after_warm.misses(), after_cold.misses());
  EXPECT_EQ(after_warm.steady_hits,
            after_cold.steady_hits + scenarios.size());

  for (std::size_t i = 0; i < cold.size(); ++i) {
    expect_same_metrics(cold.at(i).metrics, warm.at(i).metrics,
                        cold.at(i).scenario.label);
  }
  // Warm setup is cheaper than cold setup in aggregate.
  EXPECT_LT(warm.setup_seconds_total(), cold.setup_seconds_total());
}

TEST(ScenarioBank, EnvResolvedPoolWidthSharesOneBank) {
  // jobs <= 0 resolves TAC3D_JOBS (CI's ASan bank-stress step sets 4,
  // wider than the pinned suites above), so concurrent prepare() of
  // equal and distinct keys runs at whatever width the environment
  // asks for — results must still match the serial reference bitwise.
  const auto scenarios = mixed_batch();

  SweepOptions serial;
  serial.jobs = 1;
  const SweepReport reference = run_sweep(scenarios, serial);
  ASSERT_TRUE(reference.all_ok());

  SweepOptions env;  // jobs = 0 -> TAC3D_JOBS / hardware concurrency
  const SweepReport wide = run_sweep(scenarios, env);
  ASSERT_TRUE(wide.all_ok());
  EXPECT_EQ(wide.jobs_used(), std::min<int>(resolve_jobs(0),
                                            static_cast<int>(
                                                scenarios.size())));
  for (std::size_t i = 0; i < wide.size(); ++i) {
    expect_same_metrics(reference.at(i).metrics, wide.at(i).metrics,
                        wide.at(i).scenario.label);
  }
}

TEST(ScenarioBank, CapturesPreparationErrorsPerScenario) {
  auto scenarios = mixed_batch();
  scenarios.resize(2);
  scenarios[1].sim.control_dt = -1.0;  // prepare/session must throw
  const SweepReport report = run_sweep(scenarios, {.jobs = 2});
  ASSERT_EQ(report.size(), 2u);
  EXPECT_TRUE(report.at(0).ok());
  EXPECT_FALSE(report.at(1).ok());
  EXPECT_FALSE(report.at(1).error.empty());
}

// --- matrix trace dedupe (bank off) --------------------------------------

TEST(ScenarioMatrix, BuildSharesOneTraceAcrossEqualTraceAxes) {
  const auto scenarios =
      ScenarioMatrix()
          .tiers({2, 4})
          .policies({PolicyKind::kLcLb, PolicyKind::kLcFuzzy})
          .seeds({1, 2})
          .grid(thermal::GridOptions{8, 8})
          .trace_seconds(12)
          .build();
  ASSERT_EQ(scenarios.size(), 8u);
  for (const Scenario& s : scenarios) {
    ASSERT_NE(s.trace, nullptr) << s.label;
  }
  // 2 seeds -> exactly 2 distinct trace objects, shared by 4 scenarios
  // each; equal seeds share the pointer.
  for (const Scenario& a : scenarios) {
    for (const Scenario& b : scenarios) {
      if (a.seed == b.seed) {
        EXPECT_EQ(a.trace.get(), b.trace.get());
      } else {
        EXPECT_NE(a.trace.get(), b.trace.get());
      }
    }
  }
  // instantiate() references the shared trace instead of re-synthesizing.
  ScenarioInstance inst = instantiate(scenarios.front());
  EXPECT_EQ(inst.trace.get(), scenarios.front().trace.get());
}

TEST(ScenarioBank, ChipIncompatibleAttachedTraceFallsBackToSynthesis) {
  // instantiate() ignores an attached trace whose thread count does not
  // match the chip and synthesizes from the axes; the bank must do the
  // same so bank on/off stay result-identical (instead of erroring).
  Scenario spec = quick_scenario();
  spec.trace = std::make_shared<const power::UtilizationTrace>(
      power::generate_workload(spec.workload, 3 /* != chip threads */,
                               spec.trace_seconds, spec.seed));
  EXPECT_FALSE(scenario_trace_usable(spec));

  ScenarioInstance fresh = instantiate(spec);
  EXPECT_NE(fresh.trace.get(), spec.trace.get());
  const auto [m_fresh, t_fresh] = run_session(fresh.session());

  ScenarioBank bank;
  PreparedScenario prepared = bank.prepare(spec);
  EXPECT_NE(prepared.trace.get(), spec.trace.get());
  const auto [m_prep, t_prep] = run_session(prepared.session());

  expect_same_metrics(m_fresh, m_prep, "mismatched attached trace");
  EXPECT_EQ(t_fresh, t_prep);
  EXPECT_EQ(bank.counters().trace_misses, 1u);  // synthesized, not reused
}

TEST(ScenarioMatrix, AttachedTracesKeyTheBankByContent) {
  const auto scenarios = ScenarioMatrix()
                             .policies({PolicyKind::kLcLb})
                             .tiers({2, 4})
                             .grid(thermal::GridOptions{8, 8})
                             .trace_seconds(12)
                             .build();
  ASSERT_EQ(scenarios.size(), 2u);
  // Same content -> same trace key; a separately built equal matrix
  // produces the same key even though the pointers differ.
  const auto rebuilt = ScenarioMatrix()
                           .policies({PolicyKind::kLcLb})
                           .tiers({2, 4})
                           .grid(thermal::GridOptions{8, 8})
                           .trace_seconds(12)
                           .build();
  EXPECT_NE(scenarios[0].trace.get(), rebuilt[0].trace.get());
  EXPECT_EQ(scenario_trace_key(scenarios[0]), scenario_trace_key(rebuilt[0]));
  EXPECT_EQ(scenario_steady_key(scenarios[0]),
            scenario_steady_key(rebuilt[0]));
  // ... so a warm bank hits for the rebuilt scenarios too.
  ScenarioBank bank;
  bank.prepare(scenarios[0]);
  bank.prepare(rebuilt[0]);
  const BankCounters c = bank.counters();
  EXPECT_EQ(c.steady_misses, 1u);
  EXPECT_EQ(c.steady_hits, 1u);
}

TEST(ScenarioBank, SteadyTierKeysAttachedTracesByTZeroDemand) {
  // Only the t=0 demand enters compute_initial_state, so attached traces
  // that agree at t=0 but diverge later must share one cached steady
  // solve — and a t=0 difference must still miss.
  const int threads = arch::NiagaraConfig::paper().hardware_threads();
  const power::UtilizationTrace base = power::generate_workload(
      power::WorkloadKind::kWebServer, threads, 12, 1);
  power::UtilizationTrace later = base;
  for (int th = 0; th < threads; ++th) {
    for (int t = 1; t < later.seconds(); ++t) {
      later.set(th, t, std::min(1.0, 0.5 * base.at(th, t) + 0.1));
    }
  }
  power::UtilizationTrace t0diff = base;
  t0diff.set(0, 0, base.at(0, 0) > 0.5 ? 0.1 : 0.9);

  Scenario a = quick_scenario();
  a.trace = std::make_shared<const power::UtilizationTrace>(base);
  Scenario b = quick_scenario();
  b.trace = std::make_shared<const power::UtilizationTrace>(later);
  Scenario c2 = quick_scenario();
  c2.trace = std::make_shared<const power::UtilizationTrace>(t0diff);

  EXPECT_NE(scenario_trace_key(a), scenario_trace_key(b));  // full content
  EXPECT_EQ(scenario_steady_key(a), scenario_steady_key(b));  // t=0 equal
  EXPECT_NE(scenario_steady_key(a), scenario_steady_key(c2));

  ScenarioBank bank;
  bank.prepare(a);
  bank.prepare(b);
  bank.prepare(c2);
  const BankCounters cnt = bank.counters();
  EXPECT_EQ(cnt.steady_misses, 2u);
  EXPECT_EQ(cnt.steady_hits, 1u);  // b reused a's steady solve
  EXPECT_EQ(bank.steady_entries(), 2u);

  // The coarser key is sound: b started from the shared solve must step
  // bitwise like b prepared in a bank of its own.
  ScenarioBank lone;
  PreparedScenario pb = lone.prepare(b);
  const auto [m_lone, t_lone] = run_session(pb.session());
  PreparedScenario shared_b = bank.prepare(b);
  const auto [m_shared, t_shared] = run_session(shared_b.session());
  expect_same_metrics(m_lone, m_shared, "t0-shared steady");
  EXPECT_EQ(t_lone, t_shared);
}

}  // namespace
}  // namespace tac3d::sim
