// Property sweeps on the assembled RC systems across the full stack
// configuration matrix: invariants that must hold for every tier count,
// cooling kind, flow rate and grid resolution.
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <tuple>

#include "arch/mpsoc.hpp"
#include "common/units.hpp"
#include "microchannel/pump.hpp"
#include "thermal/transient.hpp"

namespace tac3d {
namespace {

struct StackCase {
  int tiers;
  arch::CoolingKind cooling;
  int grid_n;

  std::string label() const {
    return std::to_string(tiers) + "t_" +
           (cooling == arch::CoolingKind::kAirCooled ? "air" : "liquid") +
           "_g" + std::to_string(grid_n);
  }
};

class StackSweep : public ::testing::TestWithParam<StackCase> {
 protected:
  arch::Mpsoc3D make() const {
    const auto p = GetParam();
    return arch::Mpsoc3D(arch::Mpsoc3D::Options{
        p.tiers, p.cooling, thermal::GridOptions{p.grid_n, p.grid_n},
        arch::NiagaraConfig::paper()});
  }

  void load(arch::Mpsoc3D& soc, double busy) const {
    if (GetParam().cooling == arch::CoolingKind::kLiquidCooled) {
      soc.model().set_all_flows(microchannel::PumpModel::table1().q_max());
    }
    std::vector<arch::CoreState> cores(soc.n_cores(),
                                       {busy, soc.chip().vf.max_level()});
    soc.model().set_element_powers(soc.element_powers(cores, {}));
  }
};

TEST_P(StackSweep, MatrixIsStrictlyDiagonallyDominant) {
  auto soc = make();
  load(soc, 1.0);
  EXPECT_TRUE(soc.model().conductance().is_diagonally_dominant(1e-9));
}

TEST_P(StackSweep, CapacitancesArePositive) {
  auto soc = make();
  for (const double c : soc.model().capacitance()) {
    ASSERT_GT(c, 0.0);
  }
}

TEST_P(StackSweep, SteadyStateEnergyBalanceCloses) {
  auto soc = make();
  load(soc, 1.0);
  const auto temps = soc.model().steady_state();
  double removed = soc.model().sink_heat_removal(temps);
  for (int cav = 0; cav < soc.model().n_cavities(); ++cav) {
    removed += soc.model().advective_heat_removal(temps, cav);
  }
  const double injected = soc.model().total_power();
  EXPECT_NEAR(removed, injected, 0.01 * injected) << GetParam().label();
}

TEST_P(StackSweep, AllTemperaturesAboveCoolantAndBounded) {
  auto soc = make();
  load(soc, 1.0);
  const auto temps = soc.model().steady_state();
  const double floor_t =
      std::min(soc.model().grid().spec().ambient,
               soc.model().grid().spec().coolant_inlet);
  for (std::size_t i = 0; i < temps.size(); ++i) {
    ASSERT_GE(temps[i], floor_t - 1e-6);
    ASSERT_LT(temps[i], celsius_to_kelvin(350.0));
  }
}

TEST_P(StackSweep, MorePowerMeansHotterEverywhere) {
  auto soc = make();
  load(soc, 0.3);
  const auto cool = soc.model().steady_state();
  load(soc, 1.0);
  const auto hot = soc.model().steady_state();
  for (std::size_t i = 0; i < cool.size(); i += 17) {
    ASSERT_GE(hot[i], cool[i] - 1e-9);
  }
}

TEST_P(StackSweep, HottestElementMatchesStackTopology) {
  auto soc = make();
  load(soc, 1.0);
  const auto temps = soc.model().steady_state();
  const double hottest_core = soc.max_core_temp(temps);
  double hottest_l2 = 0.0;
  for (int b = 0; b < soc.chip().n_l2_banks; ++b) {
    hottest_l2 = std::max(
        hottest_l2, soc.model().element_max(temps, soc.l2_element(b)));
  }
  const auto p = GetParam();
  if (p.tiers == 4 && p.cooling == arch::CoolingKind::kAirCooled) {
    // 4-tier air: the bottom *cache* tier is buried farthest from the
    // sink, so the caches (not the cores) run hottest.
    EXPECT_GT(hottest_l2, hottest_core - 2.0) << p.label();
  } else {
    // Everywhere else the high-power-density cores dominate.
    EXPECT_GT(hottest_core, hottest_l2 - 2.0) << p.label();
  }
}

INSTANTIATE_TEST_SUITE_P(
    Configurations, StackSweep,
    ::testing::Values(
        StackCase{2, arch::CoolingKind::kLiquidCooled, 12},
        StackCase{2, arch::CoolingKind::kLiquidCooled, 20},
        StackCase{2, arch::CoolingKind::kAirCooled, 12},
        StackCase{4, arch::CoolingKind::kLiquidCooled, 12},
        StackCase{4, arch::CoolingKind::kAirCooled, 12}),
    [](const ::testing::TestParamInfo<StackCase>& info) {
      return info.param.label();
    });

class FlowSweep : public ::testing::TestWithParam<double> {};

TEST_P(FlowSweep, PeakTemperatureDecreasesMonotonicallyWithFlow) {
  arch::Mpsoc3D soc(arch::Mpsoc3D::Options{
      2, arch::CoolingKind::kLiquidCooled, thermal::GridOptions{12, 12},
      arch::NiagaraConfig::paper()});
  std::vector<arch::CoreState> cores(8, {1.0, soc.chip().vf.max_level()});
  const double q = ml_per_min(GetParam());
  soc.model().set_all_flows(q);
  soc.model().set_element_powers(soc.element_powers(cores, {}));
  const double peak_lo = soc.max_core_temp(soc.model().steady_state());
  soc.model().set_all_flows(q * 1.3);
  const double peak_hi = soc.max_core_temp(soc.model().steady_state());
  EXPECT_LT(peak_hi, peak_lo);
}

TEST_P(FlowSweep, OutletTemperatureMatchesEnergyBalance) {
  arch::Mpsoc3D soc(arch::Mpsoc3D::Options{
      2, arch::CoolingKind::kLiquidCooled, thermal::GridOptions{12, 12},
      arch::NiagaraConfig::paper()});
  std::vector<arch::CoreState> cores(8, {1.0, soc.chip().vf.max_level()});
  const double q = ml_per_min(GetParam());
  soc.model().set_all_flows(q);
  soc.model().set_element_powers(soc.element_powers(cores, {}));
  const auto temps = soc.model().steady_state();
  double advected = 0.0;
  for (int cav = 0; cav < soc.model().n_cavities(); ++cav) {
    advected += soc.model().advective_heat_removal(temps, cav);
  }
  EXPECT_NEAR(advected, soc.model().total_power(),
              0.01 * soc.model().total_power());
}

INSTANTIATE_TEST_SUITE_P(FlowRange, FlowSweep,
                         ::testing::Values(10.0, 15.0, 20.0, 25.0, 32.3));

TEST(TransientEnergy, BackwardEulerStepConservesEnergy) {
  // Over one implicit step: sum_i C_i (T1_i - T0_i) must equal
  // dt * (P_injected - heat removed at T1) exactly (backward Euler
  // evaluates the fluxes at T1).
  arch::Mpsoc3D soc(arch::Mpsoc3D::Options{
      2, arch::CoolingKind::kLiquidCooled, thermal::GridOptions{12, 12},
      arch::NiagaraConfig::paper()});
  soc.model().set_all_flows(ml_per_min(20.0));
  std::vector<arch::CoreState> cores(8, {1.0, soc.chip().vf.max_level()});
  soc.model().set_element_powers(soc.element_powers(cores, {}));

  const double dt = 0.5;
  thermal::TransientSolver sim(soc.model(), dt);
  const std::vector<double> t0(sim.temperatures().begin(),
                               sim.temperatures().end());
  sim.step();
  const auto t1 = sim.temperatures();

  const auto c = soc.model().capacitance();
  double stored = 0.0;
  for (std::size_t i = 0; i < c.size(); ++i) {
    stored += c[i] * (t1[i] - t0[i]);
  }
  double removed = soc.model().sink_heat_removal(t1);
  for (int cav = 0; cav < soc.model().n_cavities(); ++cav) {
    removed += soc.model().advective_heat_removal(t1, cav);
  }
  const double injected = soc.model().total_power();
  EXPECT_NEAR(stored, dt * (injected - removed), 0.01 * dt * injected);
}

TEST(LeakageFixedPoint, ConvergesAndIsHotterThanLeakageFree) {
  arch::Mpsoc3D soc(arch::Mpsoc3D::Options{
      2, arch::CoolingKind::kAirCooled, thermal::GridOptions{12, 12},
      arch::NiagaraConfig::paper()});
  std::vector<arch::CoreState> cores(8, {1.0, soc.chip().vf.max_level()});
  const auto t3 = soc.leakage_consistent_steady(cores, 3);
  const double p3 = soc.model().total_power();
  const auto t8 = soc.leakage_consistent_steady(cores, 8);
  const double p8 = soc.model().total_power();
  // Fixed point: more iterations barely change power or peak.
  EXPECT_NEAR(p3, p8, 0.01 * p8);
  EXPECT_NEAR(soc.model().max_temperature(t3),
              soc.model().max_temperature(t8), 0.5);
  // And the self-heated chip draws more than the reference-temperature
  // evaluation (leakage feedback is positive).
  const double p_ref = soc.chip_power(cores, {});
  EXPECT_GT(p8, p_ref + 2.0);
}

}  // namespace
}  // namespace tac3d
