// Tests of the power substrate: VF table, leakage model, utilization
// traces and the synthetic workload generators.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "common/error.hpp"
#include "common/units.hpp"
#include "power/leakage.hpp"
#include "power/trace.hpp"
#include "power/vf.hpp"
#include "power/workloads.hpp"

namespace tac3d::power {
namespace {

TEST(VfTable, UltrasparcLadderShape) {
  const VfTable vf = VfTable::ultrasparc_t1();
  EXPECT_EQ(vf.levels(), 5);
  EXPECT_DOUBLE_EQ(vf.point(vf.max_level()).frequency, 1.2e9);
  EXPECT_DOUBLE_EQ(vf.point(0).voltage, 0.90);
}

TEST(VfTable, PowerScaleIsVSquaredF) {
  const VfTable vf = VfTable::ultrasparc_t1();
  EXPECT_DOUBLE_EQ(vf.power_scale(vf.max_level()), 1.0);
  // Lowest point: (0.9/1.2)^2 * (0.6/1.2) = 0.28125.
  EXPECT_NEAR(vf.power_scale(0), 0.28125, 1e-9);
  for (int l = 1; l < vf.levels(); ++l) {
    EXPECT_GT(vf.power_scale(l), vf.power_scale(l - 1));
    EXPECT_GT(vf.speed_scale(l), vf.speed_scale(l - 1));
  }
}

TEST(VfTable, LevelForDemandCoversDemand) {
  const VfTable vf = VfTable::ultrasparc_t1();
  for (double demand : {0.0, 0.2, 0.45, 0.6, 0.85, 1.0}) {
    const int l = vf.level_for_demand(demand, 0.05);
    EXPECT_GE(vf.speed_scale(l) + 1e-12, std::min(1.0, demand + 0.05))
        << "demand " << demand;
    if (l > 0) {
      // One level lower would not cover it.
      EXPECT_LT(vf.speed_scale(l - 1), std::min(1.0, demand + 0.05));
    }
  }
}

TEST(VfTable, RejectsUnsortedPoints) {
  EXPECT_THROW(VfTable({{1.2e9, 1.2}, {0.6e9, 0.9}}), InvalidArgument);
}

TEST(Leakage, ExponentialInTemperatureWithClamp) {
  const LeakageModel leak(1e4, celsius_to_kelvin(45.0), 50.0, 4.0);
  EXPECT_DOUBLE_EQ(leak.factor(celsius_to_kelvin(45.0)), 1.0);
  EXPECT_NEAR(leak.factor(celsius_to_kelvin(45.0 + 50.0 * std::log(2.0))),
              2.0, 1e-9);
  EXPECT_DOUBLE_EQ(leak.factor(celsius_to_kelvin(300.0)), 4.0);  // clamped
}

TEST(Leakage, ScalesWithArea) {
  const LeakageModel leak(1e4, celsius_to_kelvin(45.0), 50.0);
  const double t = celsius_to_kelvin(60.0);
  EXPECT_NEAR(leak.power(2e-5, t), 2.0 * leak.power(1e-5, t), 1e-12);
  EXPECT_DOUBLE_EQ(leak.power(0.0, t), 0.0);
  EXPECT_THROW(leak.power(-1.0, t), InvalidArgument);
}

TEST(Trace, SetGetAndInterpolation) {
  UtilizationTrace tr("test", 2, 3);
  tr.set(0, 0, 0.2);
  tr.set(0, 1, 0.6);
  tr.set(0, 2, 1.0);
  EXPECT_DOUBLE_EQ(tr.at(0, 1), 0.6);
  EXPECT_DOUBLE_EQ(tr.sample(0, 0.5), 0.4);
  EXPECT_DOUBLE_EQ(tr.sample(0, 2.9), 1.0);   // clamped at trace end
  EXPECT_DOUBLE_EQ(tr.sample(0, -1.0), 0.2);  // clamped at start
}

TEST(Trace, RejectsOutOfRangeValues) {
  UtilizationTrace tr("test", 1, 2);
  EXPECT_THROW(tr.set(0, 0, 1.5), InvalidArgument);
  EXPECT_THROW(tr.set(1, 0, 0.5), InvalidArgument);
  EXPECT_THROW(tr.at(5, 0), InvalidArgument);
}

TEST(Trace, CsvRoundTrip) {
  UtilizationTrace tr("rt", 3, 4);
  for (int th = 0; th < 3; ++th) {
    for (int t = 0; t < 4; ++t) {
      tr.set(th, t, 0.1 * (th + 1) + 0.01 * t);
    }
  }
  std::stringstream ss;
  tr.to_csv(ss);
  const UtilizationTrace back = UtilizationTrace::from_csv(ss, "rt");
  EXPECT_EQ(back.threads(), 3);
  EXPECT_EQ(back.seconds(), 4);
  for (int th = 0; th < 3; ++th) {
    for (int t = 0; t < 4; ++t) {
      EXPECT_NEAR(back.at(th, t), tr.at(th, t), 1e-12);
    }
  }
}

TEST(Trace, Statistics) {
  UtilizationTrace tr("s", 2, 2);
  tr.set(0, 0, 0.0);
  tr.set(0, 1, 1.0);
  tr.set(1, 0, 0.5);
  tr.set(1, 1, 0.5);
  EXPECT_DOUBLE_EQ(tr.mean(), 0.5);
  EXPECT_DOUBLE_EQ(tr.peak(), 1.0);
  EXPECT_DOUBLE_EQ(tr.thread_mean(1), 0.5);
}

class WorkloadSweep : public ::testing::TestWithParam<WorkloadKind> {};

TEST_P(WorkloadSweep, BoundedAndDeterministic) {
  const auto a = generate_workload(GetParam(), 32, 60, 99);
  const auto b = generate_workload(GetParam(), 32, 60, 99);
  for (int th = 0; th < 32; th += 7) {
    for (int t = 0; t < 60; t += 11) {
      ASSERT_GE(a.at(th, t), 0.0);
      ASSERT_LE(a.at(th, t), 1.0);
      ASSERT_DOUBLE_EQ(a.at(th, t), b.at(th, t));
    }
  }
}

TEST_P(WorkloadSweep, DifferentSeedsGiveDifferentTraces) {
  if (GetParam() == WorkloadKind::kMaxUtil) {
    GTEST_SKIP() << "max-util traces are near-constant by design";
  }
  const auto a = generate_workload(GetParam(), 8, 60, 1);
  const auto b = generate_workload(GetParam(), 8, 60, 2);
  double diff = 0.0;
  for (int t = 0; t < 60; ++t) diff += std::abs(a.at(0, t) - b.at(0, t));
  EXPECT_GT(diff, 0.1);
}

INSTANTIATE_TEST_SUITE_P(
    AllKinds, WorkloadSweep,
    ::testing::Values(WorkloadKind::kWebServer, WorkloadKind::kDatabase,
                      WorkloadKind::kMultimedia, WorkloadKind::kMixed,
                      WorkloadKind::kMaxUtil, WorkloadKind::kIdle));

TEST(Workloads, ClassStatisticsHaveTheRightShape) {
  const auto web = generate_workload(WorkloadKind::kWebServer, 32, 300, 5);
  const auto db = generate_workload(WorkloadKind::kDatabase, 32, 300, 5);
  const auto mm = generate_workload(WorkloadKind::kMultimedia, 32, 300, 5);
  const auto mx = generate_workload(WorkloadKind::kMaxUtil, 32, 300, 5);
  const auto idle = generate_workload(WorkloadKind::kIdle, 32, 300, 5);

  // Ordering: idle << web < db/mmedia << maxutil.
  EXPECT_LT(idle.mean(), 0.1);
  EXPECT_GT(web.mean(), 0.35);
  EXPECT_LT(web.mean(), db.mean());
  EXPECT_GT(mm.mean(), 0.6);
  EXPECT_GT(mx.mean(), 0.97);

  // Web is bursty: peak far above mean.
  EXPECT_GT(web.peak(), web.mean() + 0.3);
}

TEST(Workloads, MixedIsHalfWebHalfDb) {
  const auto mixed = generate_workload(WorkloadKind::kMixed, 32, 200, 3);
  double lo = 0.0, hi = 0.0;
  for (int th = 0; th < 16; ++th) lo += mixed.thread_mean(th) / 16.0;
  for (int th = 16; th < 32; ++th) hi += mixed.thread_mean(th) / 16.0;
  EXPECT_LT(lo, hi);  // web half is lighter than the db half
}

TEST(Workloads, AverageCaseSetMatchesPaper) {
  const auto set = average_case_workloads();
  EXPECT_EQ(set.size(), 4u);
  EXPECT_EQ(workload_name(set[0]), "web");
  EXPECT_EQ(workload_name(set[1]), "db");
}

}  // namespace
}  // namespace tac3d::power
