// The telemetry subsystem must be trustworthy before it is useful:
// histogram quantiles have to match the order statistics they replace
// (including the small-sample interpolation fix), merges have to be
// deterministic regardless of thread arrival order, the trace writer
// has to emit well-formed Chrome trace JSON with properly nested spans,
// and — most importantly — turning telemetry on must not change a
// single bit of any simulation result.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "power/trace.hpp"
#include "sim/sweep.hpp"

namespace tac3d {
namespace {

using obs::Histogram;

// --- Histogram: record / quantile ------------------------------------------

TEST(ObsHistogram, EmptyIsAllZero) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sum(), 0.0);
  EXPECT_EQ(h.min(), 0.0);
  EXPECT_EQ(h.max(), 0.0);
  EXPECT_EQ(h.mean(), 0.0);
  EXPECT_EQ(h.quantile(0.5), 0.0);
}

TEST(ObsHistogram, SmallSampleQuantilesAreInterpolatedOrderStatistics) {
  Histogram h;
  for (int v = 1; v <= 10; ++v) h.record(static_cast<double>(v));
  ASSERT_TRUE(h.exact());
  EXPECT_EQ(h.count(), 10u);
  EXPECT_EQ(h.sum(), 55.0);
  EXPECT_EQ(h.min(), 1.0);
  EXPECT_EQ(h.max(), 10.0);
  // R-7 / numpy "linear": pos = p * (n - 1).
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 5.5);
  EXPECT_DOUBLE_EQ(h.quantile(0.25), 3.25);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 10.0);
  // Out-of-range p clamps instead of reading out of bounds.
  EXPECT_DOUBLE_EQ(h.quantile(-1.0), 1.0);
  EXPECT_DOUBLE_EQ(h.quantile(2.0), 10.0);
}

TEST(ObsHistogram, SmallSampleP99DoesNotCollapseToMax) {
  // The nearest-rank bias the benches used to have: on tiny samples
  // p99 would just return the max. The interpolated rule sits between
  // the two top order statistics instead.
  Histogram h;
  for (const double v : {10.0, 20.0, 30.0, 40.0, 100.0}) h.record(v);
  const double p99 = h.quantile(0.99);
  EXPECT_GT(p99, 40.0);
  EXPECT_LT(p99, 100.0);
  EXPECT_NEAR(p99, 40.0 + 0.96 * 60.0, 1e-9);  // pos = .99*4 = 3.96
}

TEST(ObsHistogram, BucketIndexFloorInvariant) {
  EXPECT_EQ(Histogram::bucket_index(0.0), 0);
  EXPECT_EQ(Histogram::bucket_index(-5.0), 0);
  EXPECT_EQ(Histogram::bucket_index(std::nan("")), 0);
  EXPECT_EQ(Histogram::bucket_floor(0), 0.0);
  // Every positive value lands in the bucket whose [floor, next-floor)
  // range contains it (except at the overflow/underflow clamps).
  for (double v = 1e-9; v < 1e9; v *= 1.7) {
    const int idx = Histogram::bucket_index(v);
    ASSERT_GE(idx, 1);
    ASSERT_LT(idx, Histogram::kBuckets);
    EXPECT_GE(v, Histogram::bucket_floor(idx) * (1.0 - 1e-12)) << v;
    if (idx + 1 < Histogram::kBuckets) {
      EXPECT_LT(v, Histogram::bucket_floor(idx + 1) * (1.0 + 1e-12)) << v;
    }
  }
}

TEST(ObsHistogram, SpilledQuantilesStayBoundedAndMonotone) {
  Histogram h;
  std::vector<double> raw;
  std::uint64_t state = 12345;
  for (int i = 0; i < 4000; ++i) {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    const double u = static_cast<double>(state >> 11) / 9007199254740992.0;
    const double v = std::exp2(10.0 * u);  // spread over ~10 octaves
    raw.push_back(v);
    h.record(v);
  }
  ASSERT_FALSE(h.exact());
  EXPECT_EQ(h.count(), raw.size());
  std::sort(raw.begin(), raw.end());
  double prev = 0.0;
  for (const double p : {0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0}) {
    const double q = h.quantile(p);
    EXPECT_GE(q, h.min());
    EXPECT_LE(q, h.max());
    EXPECT_GE(q, prev) << "quantiles must be monotone in p";
    prev = q;
  }
  // Half-octave buckets: the bucketed median is within one bucket
  // boundary ratio (sqrt 2) of the exact one.
  const double exact_median = raw[raw.size() / 2];
  const double q50 = h.quantile(0.5);
  EXPECT_GT(q50, exact_median / std::sqrt(2.0) * 0.99);
  EXPECT_LT(q50, exact_median * std::sqrt(2.0) * 1.01);
}

// --- Histogram: merge -------------------------------------------------------

void fill(Histogram& h, int n, double scale) {
  for (int i = 1; i <= n; ++i) h.record(scale * i);
}

void expect_same_histogram(const Histogram& a, const Histogram& b) {
  EXPECT_EQ(a.count(), b.count());
  EXPECT_EQ(a.sum(), b.sum());
  EXPECT_EQ(a.min(), b.min());
  EXPECT_EQ(a.max(), b.max());
  EXPECT_EQ(a.exact(), b.exact());
  for (int i = 0; i < Histogram::kBuckets; ++i)
    ASSERT_EQ(a.bucket_count(i), b.bucket_count(i)) << "bucket " << i;
  for (const double p : {0.0, 0.25, 0.5, 0.9, 0.99, 1.0})
    EXPECT_EQ(a.quantile(p), b.quantile(p)) << "p=" << p;
}

TEST(ObsHistogram, MergeIsOrderIndependent) {
  Histogram a, b, c;
  fill(a, 300, 1.0);
  fill(b, 300, 0.01);   // a+b exceeds kExactCap: collective spill
  fill(c, 50, 1000.0);
  Histogram fwd = a;
  fwd.merge(b);
  fwd.merge(c);
  Histogram rev = c;
  rev.merge(b);
  rev.merge(a);
  ASSERT_FALSE(fwd.exact());
  expect_same_histogram(fwd, rev);
  EXPECT_EQ(fwd.count(), 650u);
}

TEST(ObsHistogram, MergeKeepsExactSetWhileUnderCap) {
  Histogram a, b;
  fill(a, 100, 1.0);
  fill(b, 100, 2.0);
  Histogram m = a;
  m.merge(b);
  ASSERT_TRUE(m.exact());
  EXPECT_EQ(m.count(), 200u);
  // Quantiles over the union, not either part: a holds 1..100, b holds
  // 2,4,...,200.
  EXPECT_DOUBLE_EQ(m.quantile(1.0), 200.0);
  EXPECT_DOUBLE_EQ(m.quantile(0.0), 1.0);
}

TEST(ObsHistogram, CrossThreadMergeIsDeterministic) {
  // Four threads record disjoint deterministic streams into their own
  // histograms; any merge order must produce the identical result —
  // that is what makes a sharded registry snapshot reproducible.
  constexpr int kThreads = 4;
  std::vector<Histogram> parts(kThreads);
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&parts, t] {
      for (int i = 1; i <= 400; ++i) {
        parts[static_cast<std::size_t>(t)].record(
            static_cast<double>(i) * std::exp2(t));
      }
    });
  }
  for (auto& w : workers) w.join();

  const std::vector<std::vector<int>> orders = {
      {0, 1, 2, 3}, {3, 2, 1, 0}, {2, 0, 3, 1}};
  std::vector<Histogram> merged;
  for (const auto& order : orders) {
    Histogram m;
    for (const int t : order) m.merge(parts[static_cast<std::size_t>(t)]);
    merged.push_back(m);
  }
  expect_same_histogram(merged[0], merged[1]);
  expect_same_histogram(merged[0], merged[2]);
  EXPECT_EQ(merged[0].count(), 1600u);
}

TEST(ObsHistogram, WireRoundTripPreservesBucketResolution) {
  Histogram h;
  fill(h, 700, 0.37);  // spilled: bucket resolution is the wire truth
  const Histogram back = Histogram::from_parts(
      h.count(), h.sum(), h.min(), h.max(), h.sparse_buckets());
  expect_same_histogram(h, back);
}

// --- Registry ----------------------------------------------------------------

TEST(ObsRegistry, CounterGaugeHistogramSnapshotDelta) {
  obs::set_metrics_enabled(true);
  static obs::Counter counter("test/obs_counter");
  static obs::Gauge gauge("test/obs_gauge");
  static obs::HistogramMetric hist("test/obs_hist");

  const obs::Snapshot before = obs::snapshot();
  counter.add(5);
  counter.add();
  gauge.set(42.0);
  hist.record(3.0);
  hist.record(5.0);
  const obs::Snapshot delta = obs::snapshot().since(before);

  ASSERT_TRUE(delta.counters.count("test/obs_counter"));
  EXPECT_EQ(delta.counters.at("test/obs_counter"), 6u);
  ASSERT_TRUE(delta.gauges.count("test/obs_gauge"));
  EXPECT_EQ(delta.gauges.at("test/obs_gauge"), 42.0);
  ASSERT_TRUE(delta.histograms.count("test/obs_hist"));
  EXPECT_EQ(delta.histograms.at("test/obs_hist").count(), 2u);
  EXPECT_EQ(delta.histograms.at("test/obs_hist").sum(), 8.0);
}

TEST(ObsRegistry, DisabledPublicationIsANoOp) {
  static obs::Counter counter("test/obs_disabled_counter");
  obs::set_metrics_enabled(true);
  const obs::Snapshot before = obs::snapshot();
  obs::set_metrics_enabled(false);
  counter.add(100);
  obs::set_metrics_enabled(true);
  const obs::Snapshot delta = obs::snapshot().since(before);
  ASSERT_TRUE(delta.counters.count("test/obs_disabled_counter"));
  EXPECT_EQ(delta.counters.at("test/obs_disabled_counter"), 0u);
}

TEST(ObsRegistry, RetiredThreadCountsFoldIntoSnapshot) {
  obs::set_metrics_enabled(true);
  static obs::Counter counter("test/obs_thread_counter");
  const obs::Snapshot before = obs::snapshot();
  std::vector<std::thread> workers;
  for (int t = 0; t < 4; ++t) {
    workers.emplace_back([] {
      for (int i = 0; i < 1000; ++i) counter.add();
    });
  }
  for (auto& w : workers) w.join();  // slabs retire with the threads
  const obs::Snapshot delta = obs::snapshot().since(before);
  EXPECT_EQ(delta.counters.at("test/obs_thread_counter"), 4000u);
}

// --- Trace -------------------------------------------------------------------

sim::Scenario lane_scenario(std::uint64_t seed) {
  sim::Scenario s;
  s.tiers = 2;
  s.policy = sim::PolicyKind::kLcFuzzy;
  s.workload = power::WorkloadKind::kWebServer;
  s.seed = seed;
  s.trace_seconds = 12;
  s.grid = thermal::GridOptions{8, 8};
  return s;
}

/// A constant-trace closed loop settles onto an exact fixed point, so
/// the limit-cycle detector locks within a few control intervals and
/// the rest of the run fast-forwards — putting the session/replay span
/// on the traced timeline.
sim::Scenario replay_scenario() {
  auto tr = std::make_shared<power::UtilizationTrace>("const", 32, 30);
  for (int th = 0; th < 32; ++th) {
    for (int t = 0; t < 30; ++t) tr->set(th, t, 0.45 + 0.01 * (th % 4));
  }
  sim::Scenario s;
  s.tiers = 2;
  s.policy = sim::PolicyKind::kLcLb;
  s.trace = std::move(tr);
  s.trace_seconds = 30;
  s.grid = thermal::GridOptions{8, 8};
  return s;
}

struct ParsedEvent {
  std::string name;
  char phase = '?';
  int tid = 0;
};

/// Minimal parser for the writer's one-event-per-line JSON.
std::vector<ParsedEvent> parse_trace(const std::string& text) {
  std::vector<ParsedEvent> events;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    const auto name_at = line.find("\"name\":\"");
    if (name_at == std::string::npos) continue;
    ParsedEvent ev;
    const auto name_from = name_at + 8;
    ev.name = line.substr(name_from, line.find('"', name_from) - name_from);
    const auto ph_at = line.find("\"ph\":\"");
    const auto tid_at = line.find("\"tid\":");
    if (ph_at == std::string::npos || tid_at == std::string::npos) continue;
    ev.phase = line[ph_at + 6];
    ev.tid = std::atoi(line.c_str() + tid_at + 6);
    events.push_back(std::move(ev));
  }
  return events;
}

TEST(ObsTrace, DisabledSpanIsInert) {
  ASSERT_FALSE(obs::trace_enabled());
  obs::TraceSpan span("test/never_emitted");
  obs::trace_end();  // no-op while not tracing
}

TEST(ObsTrace, BatchedSweepTraceIsWellFormedAndNested) {
  // CI points TAC3D_TRACE at the artifact path and then validates it
  // again with scripts/check_trace.py; standalone runs use a local
  // file. (The env-var auto-start already began tracing in that case;
  // trace_begin below just resets the buffers to this test's window.)
  const char* env_path = std::getenv("TAC3D_TRACE");
  const std::string path =
      env_path && *env_path ? env_path : "test_obs_trace.json";

  obs::trace_begin(path);
  {
    // 2-lane batched sweep: same pattern, two seeds.
    sim::SweepOptions batched;
    batched.jobs = 1;
    batched.batch_width = 2;
    const sim::SweepReport report =
        sim::run_sweep({lane_scenario(1), lane_scenario(2)}, batched);
    ASSERT_TRUE(report.all_ok());
    EXPECT_EQ(report.at(0).batch_lanes, 2);
    // One scalar scenario so the per-step solver phases (refresh /
    // Krylov) show on the timeline next to the fused batched tail,
    // plus a limit-cycle-locking scenario for the replay span.
    sim::SweepOptions scalar;
    scalar.jobs = 1;
    scalar.batch_width = 1;
    const sim::SweepReport rest =
        sim::run_sweep({lane_scenario(3), replay_scenario()}, scalar);
    ASSERT_TRUE(rest.all_ok());
    EXPECT_GT(rest.at(1).replay_steps, 0u)
        << "the constant-trace scenario should have locked and replayed";
  }
  obs::trace_end();
  ASSERT_FALSE(obs::trace_enabled());

  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << "trace file missing: " << path;
  std::stringstream buf;
  buf << in.rdbuf();
  const std::string text = buf.str();

  // Chrome trace-event envelope.
  EXPECT_EQ(text.rfind("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[", 0),
            0u);
  EXPECT_NE(text.find("]}"), std::string::npos);

  const std::vector<ParsedEvent> events = parse_trace(text);
  ASSERT_FALSE(events.empty());

  // Per-thread B/E stack discipline: every end matches the innermost
  // open begin, and nothing stays open.
  std::map<int, std::vector<std::string>> stacks;
  std::set<std::string> names;
  for (const ParsedEvent& ev : events) {
    ASSERT_TRUE(ev.phase == 'B' || ev.phase == 'E') << ev.name;
    names.insert(ev.name);
    auto& stack = stacks[ev.tid];
    if (ev.phase == 'B') {
      stack.push_back(ev.name);
    } else {
      ASSERT_FALSE(stack.empty()) << "E without B: " << ev.name;
      EXPECT_EQ(stack.back(), ev.name) << "mis-nested span";
      stack.pop_back();
    }
  }
  for (const auto& [tid, stack] : stacks) {
    EXPECT_TRUE(stack.empty()) << "tid " << tid << " left spans open";
  }

  // The sweep/bank/solver/batched-tail phases must all be on the
  // timeline (the acceptance floor is >= 6 distinct phase spans).
  for (const char* required :
       {"sweep/job", "bank/prepare", "solver/refresh", "solver/krylov",
        "batch/solve", "tail/control", "tail/power", "tail/sensors",
        "tail/metrics", "session/replay"}) {
    EXPECT_TRUE(names.count(required)) << "missing span: " << required;
  }
  EXPECT_GE(names.size(), 6u);

  if (!env_path || !*env_path) std::remove(path.c_str());
}

// --- Neutrality --------------------------------------------------------------

TEST(ObsNeutrality, TelemetryOnOffSweepsAreBitwiseIdentical) {
  const std::vector<sim::Scenario> scenarios = {lane_scenario(1),
                                                lane_scenario(2)};
  sim::SweepOptions opts;
  opts.jobs = 1;
  opts.batch_width = 2;

  obs::set_metrics_enabled(false);
  const sim::SweepReport off = sim::run_sweep(scenarios, opts);

  obs::set_metrics_enabled(true);
  const std::string trace_path = "test_obs_neutrality_trace.json";
  obs::trace_begin(trace_path);
  const sim::SweepReport on = sim::run_sweep(scenarios, opts);
  obs::trace_end();
  std::remove(trace_path.c_str());

  ASSERT_TRUE(off.all_ok());
  ASSERT_TRUE(on.all_ok());
  ASSERT_EQ(off.size(), on.size());
  for (std::size_t i = 0; i < off.size(); ++i) {
    const sim::SimMetrics& a = off.at(i).metrics;
    const sim::SimMetrics& b = on.at(i).metrics;
    EXPECT_EQ(a.duration, b.duration) << i;
    EXPECT_EQ(a.peak_temp, b.peak_temp) << i;
    EXPECT_EQ(a.any_hot_time, b.any_hot_time) << i;
    EXPECT_EQ(a.chip_energy, b.chip_energy) << i;
    EXPECT_EQ(a.pump_energy, b.pump_energy) << i;
    EXPECT_EQ(a.offered_work, b.offered_work) << i;
    EXPECT_EQ(a.lost_work, b.lost_work) << i;
    EXPECT_EQ(a.migrations, b.migrations) << i;
    EXPECT_EQ(a.avg_flow_fraction, b.avg_flow_fraction) << i;
    EXPECT_EQ(a.core_hot_time, b.core_hot_time) << i;
  }
}

}  // namespace
}  // namespace tac3d
