// Tests of the simulation layer: scheduler load balancing, metrics
// arithmetic, and short closed-loop runs of the engine.
#include <gtest/gtest.h>

#include <numeric>

#include "common/error.hpp"
#include "common/units.hpp"
#include "sim/engine.hpp"
#include "sim/experiment.hpp"
#include "sim/metrics.hpp"
#include "sim/scheduler.hpp"

namespace tac3d::sim {
namespace {

TEST(Scheduler, InitialPlacementIsRoundRobin) {
  Scheduler s(8, 4, 4);
  for (int t = 0; t < 8; ++t) {
    EXPECT_EQ(s.placement()[t], t % 4);
  }
}

TEST(Scheduler, BalancesSkewedLoad) {
  Scheduler s(8, 2, 4, 0.1);
  // All the work initially lands on threads of core 0.
  std::vector<double> demand{1.0, 0.0, 1.0, 0.0, 1.0, 0.0, 1.0, 0.0};
  const auto q = s.balance(demand);
  EXPECT_NEAR(q[0], q[1], 0.3);
  EXPECT_GT(s.migrations(), 0);
}

TEST(Scheduler, NoMigrationWhenBalanced) {
  Scheduler s(8, 4, 4, 0.25);
  std::vector<double> demand(8, 0.5);
  s.balance(demand);
  EXPECT_EQ(s.migrations(), 0);
}

TEST(Scheduler, CoreDemandIsNormalizedAndCapped) {
  Scheduler s(8, 2, 4);
  std::vector<double> demand(8, 1.0);  // 4 threads/core, all saturated
  const auto q = s.balance(demand);
  for (double d : q) {
    EXPECT_LE(d, 1.0);
    EXPECT_GE(d, 0.9);
  }
}

TEST(Scheduler, ConservesTotalDemandBelowCap) {
  Scheduler s(16, 4, 4, 0.2);
  std::vector<double> demand(16);
  for (int t = 0; t < 16; ++t) demand[t] = 0.1 + 0.05 * (t % 5);
  const auto q = s.balance(demand);
  const double total_threads =
      std::accumulate(demand.begin(), demand.end(), 0.0);
  const double total_cores = std::accumulate(q.begin(), q.end(), 0.0) * 4.0;
  EXPECT_NEAR(total_cores, total_threads, 1e-9);
}

TEST(Scheduler, RejectsBadConfiguration) {
  EXPECT_THROW(Scheduler(0, 2, 4), InvalidArgument);
  EXPECT_THROW(Scheduler(8, 2, 4, 0.0), InvalidArgument);
  Scheduler s(4, 2, 4);
  std::vector<double> wrong(3, 0.5);
  EXPECT_THROW(s.balance(wrong), InvalidArgument);
}

TEST(Metrics, DerivedQuantities) {
  SimMetrics m;
  m.duration = 100.0;
  m.core_hot_time = {50.0, 0.0, 25.0, 25.0};
  m.any_hot_time = 60.0;
  m.chip_energy = 500.0;
  m.pump_energy = 100.0;
  m.offered_work = 200.0;
  m.lost_work = 10.0;
  EXPECT_DOUBLE_EQ(m.hotspot_frac_avg_core(), 0.25);
  EXPECT_DOUBLE_EQ(m.hotspot_frac_any(), 0.6);
  EXPECT_DOUBLE_EQ(m.system_energy(), 600.0);
  EXPECT_DOUBLE_EQ(m.perf_degradation(), 0.05);
}

TEST(Metrics, EmptyMetricsAreZero) {
  const SimMetrics m;
  EXPECT_DOUBLE_EQ(m.hotspot_frac_avg_core(), 0.0);
  EXPECT_DOUBLE_EQ(m.hotspot_frac_any(), 0.0);
  EXPECT_DOUBLE_EQ(m.perf_degradation(), 0.0);
}

// --- closed-loop engine ---------------------------------------------------

ExperimentSpec quick_spec(int tiers, PolicyKind policy,
                          power::WorkloadKind workload) {
  ExperimentSpec spec;
  spec.tiers = tiers;
  spec.policy = policy;
  spec.workload = workload;
  spec.trace_seconds = 40;
  spec.grid = thermal::GridOptions{12, 12};
  spec.sim.control_dt = 0.25;
  return spec;
}

TEST(Engine, MetricsAreConsistent) {
  const auto m = run_experiment(quick_spec(2, PolicyKind::kLcFuzzy,
                                           power::WorkloadKind::kWebServer));
  EXPECT_NEAR(m.duration, 39.0, 1.5);
  EXPECT_GT(m.chip_energy, 0.0);
  EXPECT_GT(m.pump_energy, 0.0);
  EXPECT_GE(m.offered_work, m.lost_work);
  EXPECT_GT(m.peak_temp, celsius_to_kelvin(27.0));
  EXPECT_GE(m.avg_flow_fraction, 0.0);
  EXPECT_LE(m.avg_flow_fraction, 1.0);
}

TEST(Engine, AirCooledRunsHaveNoPumpEnergy) {
  const auto m = run_experiment(quick_spec(2, PolicyKind::kAcLb,
                                           power::WorkloadKind::kWebServer));
  EXPECT_DOUBLE_EQ(m.pump_energy, 0.0);
  EXPECT_DOUBLE_EQ(m.avg_flow_fraction, 0.0);
}

TEST(Engine, LiquidCoolingIsColderThanAir) {
  const auto ac = run_experiment(quick_spec(2, PolicyKind::kAcLb,
                                            power::WorkloadKind::kDatabase));
  const auto lc = run_experiment(quick_spec(2, PolicyKind::kLcLb,
                                            power::WorkloadKind::kDatabase));
  EXPECT_LT(lc.peak_temp, ac.peak_temp - 10.0);
  EXPECT_DOUBLE_EQ(lc.hotspot_frac_any(), 0.0);
}

TEST(Engine, FuzzySavesPumpEnergyVersusMaxFlow) {
  const auto lb = run_experiment(quick_spec(2, PolicyKind::kLcLb,
                                            power::WorkloadKind::kWebServer));
  const auto fz = run_experiment(quick_spec(2, PolicyKind::kLcFuzzy,
                                            power::WorkloadKind::kWebServer));
  EXPECT_LT(fz.pump_energy, 0.85 * lb.pump_energy);
  EXPECT_LT(fz.peak_temp, celsius_to_kelvin(85.0));  // threshold held
  EXPECT_LT(fz.perf_degradation(), 1e-4);            // < 0.01%
}

TEST(Engine, MaxFlowPolicyKeepsPumpAtMaximum) {
  const auto m = run_experiment(quick_spec(4, PolicyKind::kLcLb,
                                           power::WorkloadKind::kMixed));
  EXPECT_NEAR(m.avg_flow_fraction, 1.0, 1e-9);
}

TEST(Engine, RejectsMismatchedTraceWidth) {
  arch::Mpsoc3D soc(arch::Mpsoc3D::Options{
      2, arch::CoolingKind::kLiquidCooled, thermal::GridOptions{8, 8},
      arch::NiagaraConfig::paper()});
  const auto trace = power::generate_workload(
      power::WorkloadKind::kIdle, 7 /* != 32 threads */, 10, 1);
  const auto pump = microchannel::PumpModel::table1();
  const auto policy = make_policy(PolicyKind::kLcLb, soc, pump);
  EXPECT_THROW(simulate(soc, trace, *policy), InvalidArgument);
}

TEST(Experiment, LabelsAndCoolingMapping) {
  EXPECT_EQ(policy_label(PolicyKind::kAcLb), "AC_LB");
  EXPECT_EQ(policy_label(PolicyKind::kLcFuzzy), "LC_FUZZY");
  EXPECT_EQ(cooling_for(PolicyKind::kAcTdvfsLb),
            arch::CoolingKind::kAirCooled);
  EXPECT_EQ(cooling_for(PolicyKind::kLcLb),
            arch::CoolingKind::kLiquidCooled);
}

TEST(Experiment, DeterministicForSameSeed) {
  const auto a = run_experiment(quick_spec(2, PolicyKind::kLcFuzzy,
                                           power::WorkloadKind::kMixed));
  const auto b = run_experiment(quick_spec(2, PolicyKind::kLcFuzzy,
                                           power::WorkloadKind::kMixed));
  EXPECT_DOUBLE_EQ(a.chip_energy, b.chip_energy);
  EXPECT_DOUBLE_EQ(a.peak_temp, b.peak_temp);
  EXPECT_EQ(a.migrations, b.migrations);
}

}  // namespace
}  // namespace tac3d::sim
