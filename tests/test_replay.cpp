// Limit-cycle fast-forward must be invisible in the results: a session
// that detects an exactly-periodic closed loop and replays journaled
// cycles (sim/replay.hpp) must finish with bitwise the metrics and the
// temperature field of the step-everything run — across solver kinds,
// scalar and batched stepping, and run_until calls that land mid
// control interval or mid replay cycle. The trace periodicity probe
// (power::UtilizationTrace::period_hint) that arms the machinery is
// covered here too.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "power/trace.hpp"
#include "power/workloads.hpp"
#include "sim/bank.hpp"
#include "sim/batch.hpp"
#include "sim/experiment.hpp"
#include "sim/sweep.hpp"

namespace tac3d::sim {
namespace {

// --- trace periodicity probe ---------------------------------------------

/// A trace whose first \p period seconds are pseudo-random and tiled
/// bitwise over the rest.
power::UtilizationTrace tiled_trace(int threads, int seconds, int period) {
  power::UtilizationTrace tr("tiled", threads, seconds);
  for (int th = 0; th < threads; ++th) {
    for (int t = 0; t < seconds; ++t) {
      const int base = t % period;
      // A strict ramp over the period: no shorter hidden period.
      tr.set(th, t, 0.3 + 0.01 * base + 0.001 * th);
    }
  }
  return tr;
}

TEST(TracePeriodicity, DetectsExactPeriod) {
  const auto tr = tiled_trace(4, 40, 9);
  EXPECT_EQ(tr.period_hint(), 9);
}

TEST(TracePeriodicity, ConstantTraceHasPeriodOne) {
  power::UtilizationTrace tr("const", 3, 20);
  for (int th = 0; th < 3; ++th) {
    for (int t = 0; t < 20; ++t) tr.set(th, t, 0.4 + 0.01 * th);
  }
  EXPECT_EQ(tr.period_hint(), 1);
}

TEST(TracePeriodicity, AperiodicTraceReturnsZero) {
  power::UtilizationTrace tr("aperiodic", 2, 30);
  for (int th = 0; th < 2; ++th) {
    for (int t = 0; t < 30; ++t) {
      tr.set(th, t, 0.5 + 0.001 * (t * t % 101) + 0.1 * th);
    }
  }
  EXPECT_EQ(tr.period_hint(), 0);
}

TEST(TracePeriodicity, OneSampleOffMakesTraceAperiodic) {
  auto tr = tiled_trace(4, 40, 9);
  ASSERT_EQ(tr.period_hint(), 9);
  // Perturb a single sample in the last repetition by one part in 2^52
  // — far below any physical tolerance, but not bitwise equal.
  const double v = tr.at(2, 31);
  tr.set(2, 31, v * (1.0 + 1e-15));
  EXPECT_EQ(tr.period_hint(), 0);
}

TEST(TracePeriodicity, PeriodLongerThanHalfTheTraceDoesNotQualify) {
  // 24 s of an 18 s pattern: only 6 s of the repetition are visible, so
  // the probe must not claim an 18 s period (len/2 cap).
  const auto tr = tiled_trace(2, 24, 18);
  EXPECT_EQ(tr.period_hint(), 0);
}

TEST(TracePeriodicity, GeneratedPeriodicWorkloadIsDetected) {
  const auto tr = power::generate_workload(power::WorkloadKind::kPeriodic,
                                           32, 90, 7);
  EXPECT_EQ(tr.period_hint(), power::kPeriodicWorkloadSeconds);
}

TEST(TracePeriodicity, WindowsEqualComparesInclusiveAndClamped) {
  const auto tr = tiled_trace(4, 40, 9);
  EXPECT_TRUE(tr.windows_equal(9, 18, 9));
  EXPECT_TRUE(tr.windows_equal(0, 27, 9));
  EXPECT_FALSE(tr.windows_equal(0, 1, 9));
  // Past-the-end windows compare the held final sample: second 39 is a
  // genuine continuation of the tiling only when 39+j == 39 everywhere,
  // which the clamp breaks once the pattern would have moved on.
  EXPECT_FALSE(tr.windows_equal(27, 36, 9));
}

// --- scalar replay parity --------------------------------------------------

Scenario periodic_scenario(sparse::SolverKind kind,
                           PolicyKind policy = PolicyKind::kLcFuzzy) {
  Scenario s;
  s.tiers = 2;
  s.policy = policy;
  s.workload = power::WorkloadKind::kPeriodic;
  s.seed = 7;
  // The warm-up transient decays to bitwise recurrence at ~96 s on this
  // stack; the trace must run well past that for replay to engage.
  s.trace_seconds = 240;
  s.grid = thermal::GridOptions{8, 8};
  s.sim.solver = kind;
  return s;
}

struct RunOutcome {
  SimMetrics metrics;
  std::vector<double> temps;
  std::uint64_t cycles = 0;
  std::uint64_t steps = 0;
  std::uint64_t solves_skipped = 0;
};

RunOutcome run_full(const Scenario& s) {
  ScenarioInstance inst = instantiate(s);
  SimulationSession session = inst.session();
  session.run_to_end();
  const auto t = session.temperatures();
  return {session.metrics(),
          {t.begin(), t.end()},
          session.replay_cycles(),
          session.replay_steps(),
          session.replay_solves_skipped()};
}

void expect_same_outcome(const RunOutcome& a, const RunOutcome& b,
                         const std::string& what) {
  EXPECT_EQ(a.metrics.duration, b.metrics.duration) << what;
  EXPECT_EQ(a.metrics.peak_temp, b.metrics.peak_temp) << what;
  EXPECT_EQ(a.metrics.any_hot_time, b.metrics.any_hot_time) << what;
  EXPECT_EQ(a.metrics.chip_energy, b.metrics.chip_energy) << what;
  EXPECT_EQ(a.metrics.pump_energy, b.metrics.pump_energy) << what;
  EXPECT_EQ(a.metrics.offered_work, b.metrics.offered_work) << what;
  EXPECT_EQ(a.metrics.lost_work, b.metrics.lost_work) << what;
  EXPECT_EQ(a.metrics.avg_flow_fraction, b.metrics.avg_flow_fraction)
      << what;
  EXPECT_EQ(a.metrics.migrations, b.metrics.migrations) << what;
  EXPECT_EQ(a.metrics.core_hot_time, b.metrics.core_hot_time) << what;
  ASSERT_EQ(a.temps.size(), b.temps.size()) << what;
  for (std::size_t i = 0; i < a.temps.size(); ++i) {
    ASSERT_EQ(a.temps[i], b.temps[i]) << what << " node " << i;
  }
}

class ReplayParityTest : public ::testing::TestWithParam<sparse::SolverKind> {
};

TEST_P(ReplayParityTest, ReplayOnMatchesStepEverythingBitwise) {
  const Scenario on = periodic_scenario(GetParam());
  Scenario off = on;
  off.sim.limit_cycle_replay = false;

  const RunOutcome replayed = run_full(on);
  const RunOutcome stepped = run_full(off);
  expect_same_outcome(replayed, stepped, "replay on vs off");
  EXPECT_EQ(stepped.cycles, 0u);
  EXPECT_EQ(stepped.solves_skipped, 0u);
  if (GetParam() == sparse::SolverKind::kBandedLu) {
    // The direct solver is a pure function of the operator values, so
    // the loop bitwise-locks once warm and most of the run is replayed.
    EXPECT_GT(replayed.cycles, 0u);
    EXPECT_GT(replayed.solves_skipped, 0u);
  }
}

TEST_P(ReplayParityTest, RunUntilMidIntervalAndMidCycleResumesBitwise) {
  const Scenario s = periodic_scenario(GetParam());

  ScenarioInstance ref_inst = instantiate(s);
  SimulationSession ref = ref_inst.session();
  ref.run_to_end();

  // Stops straddling a control interval (13.1, 181.7), replay-cycle
  // interiors once the loop is locked (170.0, 181.7), and an aligned
  // cycle boundary (204.0). run_until steps/replays to the first state
  // at or past the stop; each resume must continue the exact trajectory.
  ScenarioInstance inst = instantiate(s);
  SimulationSession chopped = inst.session();
  int taken = 0;
  for (const double t : {13.1, 170.0, 181.7, 204.0}) {
    taken += chopped.run_until(t);
    EXPECT_GE(chopped.time(), t - 1e-9);
    EXPECT_LE(chopped.time(), t + 0.25 + 1e-9);
  }
  taken += chopped.run_to_end();
  EXPECT_EQ(taken, chopped.steps_done());
  if (GetParam() == sparse::SolverKind::kBandedLu) {
    EXPECT_GT(chopped.replay_steps(), 0u);  // stops landed inside replay
  }

  EXPECT_EQ(ref.steps_done(), chopped.steps_done());
  const auto a = ref.temperatures();
  const auto b = chopped.temperatures();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i], b[i]) << "node " << i;
  }
  const SimMetrics ma = ref.metrics();
  const SimMetrics mb = chopped.metrics();
  EXPECT_EQ(ma.chip_energy, mb.chip_energy);
  EXPECT_EQ(ma.pump_energy, mb.pump_energy);
  EXPECT_EQ(ma.peak_temp, mb.peak_temp);
  EXPECT_EQ(ma.offered_work, mb.offered_work);
  EXPECT_EQ(ma.lost_work, mb.lost_work);
  EXPECT_EQ(ma.migrations, mb.migrations);
  EXPECT_EQ(ma.core_hot_time, mb.core_hot_time);
}

INSTANTIATE_TEST_SUITE_P(
    AllSolverKinds, ReplayParityTest,
    ::testing::Values(sparse::SolverKind::kBandedLu,
                      sparse::SolverKind::kBicgstabIlu0,
                      sparse::SolverKind::kBicgstabJacobi));

// --- iterative solvers on a true fixed point -------------------------------

std::shared_ptr<const power::UtilizationTrace> constant_trace(
    int seconds, double base = 0.45) {
  auto tr =
      std::make_shared<power::UtilizationTrace>("const", 32, seconds);
  for (int th = 0; th < 32; ++th) {
    for (int t = 0; t < seconds; ++t) {
      tr->set(th, t, base + 0.01 * (th % 4));
    }
  }
  return tr;
}

Scenario constant_scenario(sparse::SolverKind kind, double base = 0.45) {
  Scenario s;
  s.tiers = 2;
  s.policy = PolicyKind::kLcLb;
  s.trace = constant_trace(60, base);
  s.trace_seconds = 60;
  s.grid = thermal::GridOptions{8, 8};
  s.sim.solver = kind;
  return s;
}

class ConstantTraceReplayTest
    : public ::testing::TestWithParam<sparse::SolverKind> {};

TEST_P(ConstantTraceReplayTest, IterativeSolversLockOnFixedPoint) {
  // A constant trace drives the loop to an exact fixed point: warm
  // starts hit at iteration 0 and even the history-carrying iterative
  // solvers bitwise-recur, so replay must engage — and stay invisible.
  const Scenario on = constant_scenario(GetParam());
  Scenario off = on;
  off.sim.limit_cycle_replay = false;

  const RunOutcome replayed = run_full(on);
  const RunOutcome stepped = run_full(off);
  expect_same_outcome(replayed, stepped, "constant trace replay");
  EXPECT_GT(replayed.cycles, 0u);
  EXPECT_GT(replayed.solves_skipped, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    AllSolverKinds, ConstantTraceReplayTest,
    ::testing::Values(sparse::SolverKind::kBandedLu,
                      sparse::SolverKind::kBicgstabIlu0,
                      sparse::SolverKind::kBicgstabJacobi));

// --- batched lanes ---------------------------------------------------------

TEST(BatchedReplay, ReplayingLanesDropOutAndStayBitwise) {
  // Two ilu0 lanes on (different) constant traces: both sessions lock
  // on their fixed-point cycle under the conservative batched rule
  // (quiescent cycles only — LC_LB never changes the pump level) and
  // drop out of the batched solve, fast-forwarding independently. Each
  // lane must finish bitwise identical to its scalar replay-off run.
  std::vector<Scenario> lanes = {
      constant_scenario(sparse::SolverKind::kBicgstabIlu0, 0.45),
      constant_scenario(sparse::SolverKind::kBicgstabIlu0, 0.55),
  };

  std::vector<RunOutcome> refs;
  for (const Scenario& s : lanes) {
    Scenario off = s;
    off.sim.limit_cycle_replay = false;
    refs.push_back(run_full(off));
  }

  ScenarioBank bank;
  std::vector<PreparedScenario> prepared;
  for (const Scenario& s : lanes) prepared.push_back(bank.prepare(s));
  BatchSession batch(std::move(prepared));
  ASSERT_TRUE(batch.thermal_batched());
  batch.run_to_end();
  ASSERT_TRUE(batch.done());

  for (int l = 0; l < batch.lanes(); ++l) {
    ASSERT_TRUE(batch.lane_ok(l)) << batch.lane_error(l);
    const SimulationSession& session = batch.session(l);
    EXPECT_GT(session.replay_solves_skipped(), 0u) << "lane " << l;
    const RunOutcome got = {batch.metrics(l),
                            {session.temperatures().begin(),
                             session.temperatures().end()},
                            session.replay_cycles(),
                            session.replay_steps(),
                            session.replay_solves_skipped()};
    expect_same_outcome(got, refs[static_cast<std::size_t>(l)],
                        "batched lane " + std::to_string(l));
  }
}

TEST(BatchedReplay, PeriodicSweepMatchesReplayOffSweep) {
  // End to end through the sweep runner: periodic-workload scenarios,
  // batched and scalar, replay on vs off — identical results, and the
  // replay telemetry surfaces in the SweepResult rows.
  std::vector<Scenario> scenarios = {
      periodic_scenario(sparse::SolverKind::kBandedLu),
      periodic_scenario(sparse::SolverKind::kBandedLu, PolicyKind::kLcLb),
      constant_scenario(sparse::SolverKind::kBicgstabIlu0, 0.45),
      constant_scenario(sparse::SolverKind::kBicgstabIlu0, 0.55),
  };

  SweepOptions opts;
  opts.jobs = 1;
  const SweepReport on = run_sweep(scenarios, opts);

  std::vector<Scenario> off_scenarios = scenarios;
  for (Scenario& s : off_scenarios) s.sim.limit_cycle_replay = false;
  const SweepReport off = run_sweep(off_scenarios, opts);

  ASSERT_TRUE(on.all_ok());
  ASSERT_TRUE(off.all_ok());
  for (std::size_t i = 0; i < scenarios.size(); ++i) {
    const std::string what = on.at(i).scenario.label;
    EXPECT_EQ(on.at(i).metrics.chip_energy, off.at(i).metrics.chip_energy)
        << what;
    EXPECT_EQ(on.at(i).metrics.peak_temp, off.at(i).metrics.peak_temp)
        << what;
    EXPECT_EQ(on.at(i).metrics.migrations, off.at(i).metrics.migrations)
        << what;
    EXPECT_EQ(off.at(i).replay_solves_skipped, 0u) << what;
  }
  EXPECT_GT(on.replay_cycles_total(), 0u);
  EXPECT_GT(on.replay_steps_total(), 0u);
  EXPECT_GT(on.replay_solves_skipped_total(), 0u);
}

TEST(Replay, ConfigOffNeverEngages) {
  Scenario s = periodic_scenario(sparse::SolverKind::kBandedLu);
  s.sim.limit_cycle_replay = false;
  const RunOutcome r = run_full(s);
  EXPECT_EQ(r.cycles, 0u);
  EXPECT_EQ(r.steps, 0u);
  EXPECT_EQ(r.solves_skipped, 0u);
}

}  // namespace
}  // namespace tac3d::sim
