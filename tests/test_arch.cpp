// Tests of the architecture builders: Niagara floorplans, 2-/4-tier
// stack composition, the MPSoC power model and the scalability stack.
#include <gtest/gtest.h>

#include <cmath>

#include "arch/calibration.hpp"
#include "arch/mpsoc.hpp"
#include "arch/niagara.hpp"
#include "arch/stacks.hpp"
#include "common/error.hpp"
#include "common/units.hpp"

namespace tac3d::arch {
namespace {

TEST(Niagara, PaperConfigurationMatchesTable1) {
  const auto chip = NiagaraConfig::paper();
  EXPECT_EQ(chip.n_cores, 8);
  EXPECT_EQ(chip.threads_per_core, 4);
  EXPECT_EQ(chip.hardware_threads(), 32);
  EXPECT_DOUBLE_EQ(chip.core_area, mm2(10.0));
  EXPECT_DOUBLE_EQ(chip.l2_area, mm2(19.0));
  EXPECT_DOUBLE_EQ(chip.layer_area, mm2(115.0));
}

TEST(Floorplans, CoreTierAreasAreExact) {
  const auto chip = NiagaraConfig::paper();
  const double w = std::sqrt(chip.layer_area);
  const auto fp = core_tier_floorplan(chip, 8, 0, 0, w);
  EXPECT_EQ(fp.size(), 9u);  // 8 cores + crossbar
  for (int i = 0; i < 8; ++i) {
    EXPECT_NEAR(fp[fp.index_of(core_name(i))].rect.area(), mm2(10.0),
                mm2(0.01));
  }
  EXPECT_NO_THROW(fp.validate(w, w));
  EXPECT_NEAR(fp.total_area(), chip.layer_area, mm2(0.1));  // full tier
}

TEST(Floorplans, CacheTierAreasAreExact) {
  const auto chip = NiagaraConfig::paper();
  const double w = std::sqrt(chip.layer_area);
  const auto fp = cache_tier_floorplan(chip, 4, 0, 0, w);
  EXPECT_EQ(fp.size(), 5u);
  for (int i = 0; i < 4; ++i) {
    EXPECT_NEAR(fp[fp.index_of(l2_name(i))].rect.area(), mm2(19.0),
                mm2(0.01));
  }
  EXPECT_NO_THROW(fp.validate(w, w));
}

TEST(Stacks, TwoTierLiquidComposition) {
  const auto spec = build_stack(NiagaraConfig::paper(), 2,
                                CoolingKind::kLiquidCooled);
  EXPECT_EQ(spec.n_cavities(), 2);
  EXPECT_FALSE(spec.sink.present);
  EXPECT_NEAR(spec.width * spec.length, mm2(115.0), mm2(0.1));
  // Layer ordering: tier0 silicon first, lid last.
  EXPECT_EQ(spec.layers.front().name, "tier0.si");
  EXPECT_EQ(spec.layers.back().name, "lid");
}

TEST(Stacks, TwoTierAirComposition) {
  const auto spec = build_stack(NiagaraConfig::paper(), 2,
                                CoolingKind::kAirCooled);
  EXPECT_EQ(spec.n_cavities(), 0);
  EXPECT_TRUE(spec.sink.present);
  EXPECT_DOUBLE_EQ(spec.sink.conductance_to_ambient, 10.0);  // Table I
  EXPECT_DOUBLE_EQ(spec.sink.capacitance, 140.0);            // Table I
  EXPECT_EQ(spec.layers.back().name, "spreader");
}

TEST(Stacks, FourTierHasFourCavitiesAndHalfFootprint) {
  const auto spec = build_stack(NiagaraConfig::paper(), 4,
                                CoolingKind::kLiquidCooled);
  EXPECT_EQ(spec.n_cavities(), 4);
  EXPECT_NEAR(spec.width * spec.length, mm2(57.5), mm2(0.1));
  // 4 floorplans: cache/core/cache/core.
  EXPECT_EQ(spec.floorplans.size(), 4u);
  EXPECT_TRUE(spec.floorplans[0].has(l2_name(0)));
  EXPECT_TRUE(spec.floorplans[1].has(core_name(0)));
  EXPECT_TRUE(spec.floorplans[3].has(core_name(7)));
}

TEST(Stacks, RejectsUnsupportedTierCount) {
  EXPECT_THROW(build_stack(NiagaraConfig::paper(), 3,
                           CoolingKind::kLiquidCooled),
               InvalidArgument);
}

TEST(Mpsoc, ElementLookupFindsAllUnits) {
  Mpsoc3D soc(Mpsoc3D::Options{2, CoolingKind::kLiquidCooled,
                               thermal::GridOptions{12, 12},
                               NiagaraConfig::paper()});
  for (int i = 0; i < 8; ++i) EXPECT_GE(soc.core_element(i), 0);
  for (int i = 0; i < 4; ++i) EXPECT_GE(soc.l2_element(i), 0);
  EXPECT_EQ(soc.n_cores(), 8);
}

TEST(Mpsoc, ChipPowerRespondsToActivityAndVf) {
  Mpsoc3D soc(Mpsoc3D::Options{2, CoolingKind::kLiquidCooled,
                               thermal::GridOptions{12, 12},
                               NiagaraConfig::paper()});
  const int top = soc.chip().vf.max_level();
  std::vector<CoreState> idle(8, {0.0, top});
  std::vector<CoreState> busy(8, {1.0, top});
  std::vector<CoreState> busy_slow(8, {1.0, 0});
  const double p_idle = soc.chip_power(idle, {});
  const double p_busy = soc.chip_power(busy, {});
  const double p_slow = soc.chip_power(busy_slow, {});
  EXPECT_GT(p_busy, p_idle + 25.0);  // cores swing ~4.7 W each
  EXPECT_LT(p_slow, p_busy);         // DVFS cuts dynamic power
  // Full-speed fully-busy chip draws ~70-80 W (the paper's ~70 W).
  EXPECT_GT(p_busy, 60.0);
  EXPECT_LT(p_busy, 90.0);
}

TEST(Mpsoc, LeakageRisesWithTemperature) {
  Mpsoc3D soc(Mpsoc3D::Options{2, CoolingKind::kLiquidCooled,
                               thermal::GridOptions{12, 12},
                               NiagaraConfig::paper()});
  std::vector<CoreState> idle(8, {0.0, 0});
  const std::vector<double> cold(soc.model().node_count(),
                                 celsius_to_kelvin(45.0));
  const std::vector<double> hot(soc.model().node_count(),
                                celsius_to_kelvin(100.0));
  EXPECT_GT(soc.chip_power(idle, hot), soc.chip_power(idle, cold) + 5.0);
}

TEST(Mpsoc, ElementPowersRequireOneStatePerCore) {
  Mpsoc3D soc(Mpsoc3D::Options{2, CoolingKind::kLiquidCooled,
                               thermal::GridOptions{12, 12},
                               NiagaraConfig::paper()});
  std::vector<CoreState> wrong(3, {0.5, 0});
  EXPECT_THROW(soc.element_powers(wrong, {}), InvalidArgument);
}

TEST(Scalability, StackCompositionAndPowers) {
  const auto spec = build_scalability_stack(3, true, w_per_cm2(250.0),
                                            w_per_cm2(50.0));
  EXPECT_EQ(spec.n_cavities(), 4);  // tiers + 1, the paper's arrangement
  thermal::ThermalGrid grid(spec, thermal::GridOptions{10, 10});
  const auto p = scalability_element_powers(grid, w_per_cm2(250.0),
                                            w_per_cm2(50.0));
  double total = 0.0;
  for (double v : p) total += v;
  // 3 tiers x (50 W background + (250-50)*0.04 hot spot) = 174 W.
  EXPECT_NEAR(total, 174.0, 1.0);
}

TEST(Scalability, BacksideVariantHasColdPlate) {
  const auto spec = build_scalability_stack(3, false, w_per_cm2(250.0),
                                            w_per_cm2(50.0));
  EXPECT_EQ(spec.n_cavities(), 0);
  EXPECT_TRUE(spec.sink.present);
}

}  // namespace
}  // namespace tac3d::arch
