// Property tests for the sparse layer: solver-kind agreement on random
// diagonally-dominant SPD systems, RCM permutation validity and
// bandwidth monotonicity, in-place update_values() equivalence with a
// freshly constructed solver, StructureCache sharing, and the fused
// kernels against their naive formulations.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

#include "common/rng.hpp"
#include "sparse/csr.hpp"
#include "sparse/iterative.hpp"
#include "sparse/kernels.hpp"
#include "sparse/preconditioner.hpp"
#include "sparse/rcm.hpp"
#include "sparse/solver.hpp"
#include "sparse/structure_cache.hpp"

namespace tac3d::sparse {
namespace {

constexpr SolverKind kAllKinds[] = {SolverKind::kBandedLu,
                                    SolverKind::kBicgstabIlu0,
                                    SolverKind::kBicgstabJacobi};

/// Random strictly diagonally dominant matrix; symmetric (hence SPD)
/// when requested, asymmetric otherwise (mimicking advection).
CsrMatrix random_dd(std::int32_t n, double density, bool symmetric,
                    Rng& rng) {
  std::vector<Triplet> trips;
  std::vector<double> rowsum(n, 0.0);
  for (std::int32_t i = 0; i < n; ++i) {
    for (std::int32_t j = 0; j < n; ++j) {
      if (i == j) continue;
      if (symmetric && j < i) continue;
      if (rng.uniform() < density) {
        const double v = rng.uniform(-1.0, 1.0);
        trips.push_back({i, j, v});
        rowsum[i] += std::abs(v);
        if (symmetric) {
          trips.push_back({j, i, v});
          rowsum[j] += std::abs(v);
        }
      }
    }
  }
  for (std::int32_t i = 0; i < n; ++i) {
    trips.push_back({i, i, rowsum[i] + 1.0 + rng.uniform()});
  }
  return CsrMatrix::from_triplets(n, n, std::move(trips));
}

std::vector<double> random_vec(std::int32_t n, Rng& rng) {
  std::vector<double> v(n);
  for (auto& x : v) x = rng.uniform(-10.0, 10.0);
  return v;
}

double max_diff(const std::vector<double>& a, const std::vector<double>& b) {
  double d = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    d = std::max(d, std::abs(a[i] - b[i]));
  }
  return d;
}

// --- solver-kind agreement ----------------------------------------------

TEST(SolverAgreement, AllKindsAgreeOnRandomSpdSystems) {
  for (const std::int32_t n : {12, 60, 150, 300}) {
    Rng rng(100 + n);
    const CsrMatrix a = random_dd(n, 6.0 / n, /*symmetric=*/true, rng);
    ASSERT_TRUE(a.is_diagonally_dominant());
    const std::vector<double> b = random_vec(n, rng);

    std::vector<std::vector<double>> solutions;
    for (const SolverKind kind : kAllKinds) {
      auto solver = make_solver(kind, a);
      std::vector<double> x(n, 0.0);
      solver->solve(b, x);
      solutions.push_back(std::move(x));
    }
    for (std::size_t i = 1; i < solutions.size(); ++i) {
      EXPECT_LT(max_diff(solutions[0], solutions[i]), 1e-8)
          << "n=" << n << " kind " << i << " disagrees with banded LU";
    }
  }
}

TEST(SolverAgreement, AllKindsAgreeOnAsymmetricAdvectionLikeSystems) {
  for (const std::int32_t n : {40, 120}) {
    Rng rng(7000 + n);
    const CsrMatrix a = random_dd(n, 8.0 / n, /*symmetric=*/false, rng);
    const std::vector<double> b = random_vec(n, rng);
    std::vector<std::vector<double>> solutions;
    for (const SolverKind kind : kAllKinds) {
      auto solver = make_solver(kind, a);
      std::vector<double> x(n, 0.0);
      solver->solve(b, x);
      solutions.push_back(std::move(x));
    }
    for (std::size_t i = 1; i < solutions.size(); ++i) {
      EXPECT_LT(max_diff(solutions[0], solutions[i]), 1e-8) << "n=" << n;
    }
  }
}

// --- RCM properties -------------------------------------------------------

TEST(RcmProperties, OutputIsAValidPermutationThatNeverIncreasesBandwidth) {
  for (const std::int32_t n : {5, 30, 80, 200}) {
    for (const double density : {0.02, 0.1, 0.4}) {
      Rng rng(static_cast<std::uint64_t>(n * 1000 + density * 100));
      const CsrMatrix a = random_dd(n, density, /*symmetric=*/true, rng);
      const auto perm = rcm_ordering(a);

      ASSERT_EQ(static_cast<std::int32_t>(perm.size()), n);
      std::vector<std::int32_t> sorted = perm;
      std::sort(sorted.begin(), sorted.end());
      for (std::int32_t i = 0; i < n; ++i) {
        ASSERT_EQ(sorted[i], i) << "not a permutation (n=" << n << ")";
      }

      EXPECT_LE(bandwidth(a, perm), bandwidth(a, {}))
          << "RCM must never increase bandwidth (n=" << n
          << ", density=" << density << ")";
    }
  }
}

TEST(RcmProperties, HandlesDisconnectedComponents) {
  // Two disjoint paths with shuffled labels.
  const std::int32_t n = 40;
  std::vector<Triplet> trips;
  for (std::int32_t i = 0; i < n; ++i) trips.push_back({i, i, 2.0});
  for (std::int32_t i = 0; i + 1 < n / 2; ++i) {
    trips.push_back({i, i + 1, -1.0});
    trips.push_back({i + 1, i, -1.0});
  }
  for (std::int32_t i = n / 2; i + 1 < n; ++i) {
    trips.push_back({i, i + 1, -1.0});
    trips.push_back({i + 1, i, -1.0});
  }
  const auto a = CsrMatrix::from_triplets(n, n, std::move(trips));
  const auto perm = rcm_ordering(a);
  std::vector<std::int32_t> sorted = perm;
  std::sort(sorted.begin(), sorted.end());
  for (std::int32_t i = 0; i < n; ++i) EXPECT_EQ(sorted[i], i);
  EXPECT_LE(bandwidth(a, perm), bandwidth(a, {}));
}

// --- update_values equivalence -------------------------------------------

TEST(UpdateValues, InPlaceEditMatchesFreshlyConstructedSolver) {
  for (const SolverKind kind : kAllKinds) {
    Rng rng(42);
    CsrMatrix a = random_dd(80, 0.08, /*symmetric=*/false, rng);
    auto solver = make_solver(kind, a);

    // Perturb the values in place, keeping diagonal dominance.
    auto v = a.values_mut();
    Rng perturb(43);
    for (auto& x : v) x *= 1.0 + 0.1 * perturb.uniform();
    for (std::int32_t i = 0; i < a.rows(); ++i) {
      a.coeff_ref(i, i) = std::abs(a.coeff_ref(i, i)) + 5.0;
    }
    solver->update_values(a);

    auto fresh = make_solver(kind, a);
    const std::vector<double> b = random_vec(a.rows(), rng);
    std::vector<double> x_updated(a.rows(), 0.0), x_fresh(a.rows(), 0.0);
    solver->solve(b, x_updated);
    fresh->solve(b, x_fresh);
    // Same factors, same iteration sequence: bit-identical results.
    EXPECT_EQ(max_diff(x_updated, x_fresh), 0.0) << fresh->name();
  }
}

// --- StructureCache -------------------------------------------------------

TEST(StructureCacheTest, SharesOneAnalysisPerPattern) {
  Rng rng(9);
  const CsrMatrix a = random_dd(64, 0.1, /*symmetric=*/false, rng);
  CsrMatrix same_pattern = a;
  auto v = same_pattern.values_mut();
  for (auto& x : v) x *= 2.0;

  StructureCache cache;
  const auto s1 = cache.get(a);
  const auto s2 = cache.get(same_pattern);
  EXPECT_EQ(s1.get(), s2.get()) << "same pattern must share one structure";
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u);

  Rng rng2(10);
  const CsrMatrix other = random_dd(64, 0.2, /*symmetric=*/false, rng2);
  const auto s3 = cache.get(other);
  EXPECT_NE(s1.get(), s3.get());
  EXPECT_EQ(cache.size(), 2u);
}

TEST(StructureCacheTest, AnalysisMatchesDirectComputation) {
  Rng rng(21);
  const CsrMatrix a = random_dd(100, 0.05, /*symmetric=*/true, rng);
  const auto cached = StructureCache().get(a);
  const auto direct = analyze_structure(a);
  EXPECT_EQ(cached->rcm_perm, direct->rcm_perm);
  EXPECT_EQ(cached->ilu_diag, direct->ilu_diag);
  EXPECT_EQ(cached->band_lower, direct->band_lower);
  EXPECT_EQ(cached->band_upper, direct->band_upper);
  EXPECT_TRUE(cached->matches(a));
}

TEST(StructureCacheTest, CachedStructureGivesBitIdenticalSolutions) {
  Rng rng(31);
  const CsrMatrix a = random_dd(120, 0.05, /*symmetric=*/false, rng);
  const std::vector<double> b = random_vec(a.rows(), rng);
  StructureCache cache;
  for (const SolverKind kind : kAllKinds) {
    auto plain = make_solver(kind, a);
    auto shared = make_solver(kind, a, cache.get(a));
    std::vector<double> x_plain(a.rows(), 0.0), x_shared(a.rows(), 0.0);
    plain->solve(b, x_plain);
    shared->solve(b, x_shared);
    EXPECT_EQ(max_diff(x_plain, x_shared), 0.0) << plain->name();
  }
}

// --- fused kernels --------------------------------------------------------

TEST(Kernels, FusedOperationsMatchNaiveFormulations) {
  Rng rng(55);
  const std::int32_t n = 90;
  const CsrMatrix a = random_dd(n, 0.07, /*symmetric=*/false, rng);
  const std::vector<double> x = random_vec(n, rng);
  const std::vector<double> b = random_vec(n, rng);
  const std::vector<double> w = random_vec(n, rng);

  std::vector<double> ax(n);
  a.multiply(x, ax);

  std::vector<double> y(n);
  spmv(a, x, y);
  EXPECT_EQ(max_diff(y, ax), 0.0);

  std::vector<double> y2(n);
  const double wy = spmv_dot(a, x, y2, w);
  EXPECT_EQ(max_diff(y2, ax), 0.0);
  EXPECT_NEAR(wy, dot(w, ax), 1e-9 * std::abs(wy) + 1e-12);

  std::vector<double> y3(n);
  double wy2 = 0.0;
  const double yy = spmv_dot2(a, x, y3, w, &wy2);
  EXPECT_EQ(max_diff(y3, ax), 0.0);
  EXPECT_NEAR(yy, dot(ax, ax), 1e-9 * yy + 1e-12);
  EXPECT_NEAR(wy2, dot(w, ax), 1e-9 * std::abs(wy2) + 1e-12);

  std::vector<double> r(n);
  const double rr = residual(a, x, b, r);
  double rr_naive = 0.0;
  for (std::int32_t i = 0; i < n; ++i) {
    const double ri = b[i] - ax[i];
    EXPECT_DOUBLE_EQ(r[i], ri);
    rr_naive += ri * ri;
  }
  EXPECT_NEAR(rr, rr_naive, 1e-9 * rr_naive + 1e-12);

  std::vector<double> s(n);
  const double ss = waxpby(s, b, -0.5, x);
  for (std::int32_t i = 0; i < n; ++i) {
    EXPECT_DOUBLE_EQ(s[i], b[i] - 0.5 * x[i]);
  }
  EXPECT_GE(ss, 0.0);

  std::vector<double> acc = b;
  axpy_product(2.0, w, x, acc);
  for (std::int32_t i = 0; i < n; ++i) {
    EXPECT_DOUBLE_EQ(acc[i], b[i] + 2.0 * w[i] * x[i]);
  }
}

TEST(Kernels, WorkspaceReuseAcrossSizesAndSolves) {
  KrylovWorkspace ws;
  ws.resize(10);
  EXPECT_EQ(ws.size(), 10u);
  EXPECT_EQ(ws.r.size(), 10u);
  ws.resize(25);
  EXPECT_EQ(ws.t.size(), 25u);
  ws.resize(25);  // no-op
  EXPECT_EQ(ws.sh.size(), 25u);

  // The same workspace drives repeated solves correctly.
  Rng rng(77);
  const CsrMatrix a = random_dd(25, 0.2, /*symmetric=*/false, rng);
  Ilu0Preconditioner m(a);
  for (int trial = 0; trial < 3; ++trial) {
    const std::vector<double> b = random_vec(25, rng);
    std::vector<double> x(25, 0.0);
    const auto res = bicgstab(a, b, x, m, {1e-12, 2000}, ws);
    EXPECT_TRUE(res.converged);
    std::vector<double> r(25);
    EXPECT_LT(std::sqrt(residual(a, x, b, r)), 1e-6);
  }
}

}  // namespace
}  // namespace tac3d::sparse
