// Validation of the rectangular-duct correlations, water properties and
// the Table I pump model.
#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "common/units.hpp"
#include "microchannel/coolant.hpp"
#include "microchannel/duct.hpp"
#include "microchannel/pump.hpp"

namespace tac3d::microchannel {
namespace {

TEST(Coolant, WaterMatchesTable1NearRoomTemperature) {
  const Coolant w = water(celsius_to_kelvin(22.0));
  EXPECT_NEAR(w.conductivity, 0.6, 0.01);
  EXPECT_NEAR(w.specific_heat, 4183.0, 10.0);
  EXPECT_NEAR(w.density, 998.0, 2.0);
  EXPECT_NEAR(w.volumetric_heat_capacity(), 4.17e6, 0.05e6);
}

TEST(Coolant, WaterViscosityFallsWithTemperature) {
  EXPECT_GT(water(celsius_to_kelvin(20.0)).viscosity,
            water(celsius_to_kelvin(60.0)).viscosity);
}

TEST(Coolant, PrandtlNumberReasonable) {
  const double pr = water(celsius_to_kelvin(27.0)).prandtl();
  EXPECT_GT(pr, 4.0);
  EXPECT_LT(pr, 8.0);
}

TEST(Coolant, DielectricHasMuchLowerHeatCapacity) {
  // Section II-C: dielectric fluids are rejected because of their lower
  // volumetric heat capacity and conductivity.
  const Coolant w = water(celsius_to_kelvin(27.0));
  const Coolant fc = dielectric_fc72(celsius_to_kelvin(27.0));
  EXPECT_LT(fc.volumetric_heat_capacity(),
            0.6 * w.volumetric_heat_capacity());
  EXPECT_LT(fc.conductivity, 0.15 * w.conductivity);
}

TEST(RectDuct, GeometryDerivedQuantities) {
  const RectDuct d{um(50.0), um(100.0)};
  EXPECT_DOUBLE_EQ(d.area(), 5e-9);
  EXPECT_DOUBLE_EQ(d.wetted_perimeter(), 300e-6);
  EXPECT_NEAR(d.hydraulic_diameter(), 66.67e-6, 0.01e-6);
  EXPECT_DOUBLE_EQ(d.aspect(), 0.5);
}

TEST(Correlations, ShahLondonLimitsMatchLiterature) {
  // Parallel plates (aspect -> 0): f*Re = 24, Nu_H1 = 8.235.
  EXPECT_NEAR(fanning_friction_constant(1e-6), 24.0, 0.01);
  EXPECT_NEAR(nusselt_h1(1e-6), 8.235, 0.01);
  // Square duct: f*Re = 14.23, Nu_H1 = 3.61.
  EXPECT_NEAR(fanning_friction_constant(1.0), 14.23, 0.05);
  EXPECT_NEAR(nusselt_h1(1.0), 3.61, 0.05);
}

TEST(Correlations, RejectInvalidAspect) {
  EXPECT_THROW(fanning_friction_constant(0.0), InvalidArgument);
  EXPECT_THROW(fanning_friction_constant(1.5), InvalidArgument);
  EXPECT_THROW(nusselt_h1(-0.1), InvalidArgument);
}

class AspectSweep : public ::testing::TestWithParam<double> {};

TEST_P(AspectSweep, FrictionAndNusseltWithinPhysicalBounds) {
  const double a = GetParam();
  const double fre = fanning_friction_constant(a);
  const double nu = nusselt_h1(a);
  EXPECT_GT(fre, 14.0);
  EXPECT_LE(fre, 24.01);
  EXPECT_GT(nu, 3.5);
  EXPECT_LE(nu, 8.24);
}

TEST_P(AspectSweep, FrictionDecreasesTowardSquare) {
  const double a = GetParam();
  if (a < 0.95) {
    EXPECT_GT(fanning_friction_constant(a),
              fanning_friction_constant(std::min(1.0, a + 0.05)));
  }
}

INSTANTIATE_TEST_SUITE_P(Aspects, AspectSweep,
                         ::testing::Values(0.05, 0.1, 0.2, 0.3, 0.5, 0.7,
                                           0.9, 1.0));

TEST(Pressure, PoiseuilleParallelPlateLimit) {
  // Very wide duct behaves like parallel plates:
  // dP/dz = 12 mu v / h^2.
  const RectDuct d{mm(10.0), um(100.0)};
  const Coolant w = water(celsius_to_kelvin(27.0));
  const double v = 0.5;  // m/s
  const double q = v * d.area();
  const double expected = 12.0 * w.viscosity * v / (d.height * d.height);
  EXPECT_NEAR(pressure_gradient(d, q, w), expected, 0.05 * expected);
}

TEST(Pressure, LinearInFlowWhileLaminar) {
  const RectDuct d{um(50.0), um(100.0)};
  const Coolant w = water(celsius_to_kelvin(27.0));
  const double q1 = ml_per_min(0.2);
  EXPECT_NEAR(pressure_drop(d, mm(10.0), 2.0 * q1, w),
              2.0 * pressure_drop(d, mm(10.0), q1, w), 1.0);
}

TEST(Pressure, ThrowsInTurbulentRegime) {
  const RectDuct d{mm(1.0), mm(1.0)};
  const Coolant w = water(celsius_to_kelvin(27.0));
  const double q_fast = 5.0 * d.area();  // 5 m/s in a 1 mm duct
  EXPECT_THROW(pressure_gradient(d, q_fast, w), ModelRangeError);
}

TEST(Pressure, ZeroFlowZeroDrop) {
  const RectDuct d{um(50.0), um(100.0)};
  const Coolant w = water(celsius_to_kelvin(27.0));
  EXPECT_DOUBLE_EQ(pressure_drop(d, mm(10.0), 0.0, w), 0.0);
}

TEST(Pressure, PumpingPowerDefinition) {
  EXPECT_DOUBLE_EQ(pumping_power(1000.0, 1e-6), 1e-3);
  EXPECT_DOUBLE_EQ(pumping_power(1000.0, 1e-6, 0.5), 2e-3);
  EXPECT_THROW(pumping_power(1.0, 1.0, 0.0), InvalidArgument);
}

TEST(Htc, Table1ChannelFilmCoefficient) {
  // 50 x 100 um water channel: h = Nu k / Dh ~ 3.6e4 W/(m^2 K).
  const RectDuct d{um(50.0), um(100.0)};
  const double h = heat_transfer_coefficient(d, water_table1());
  EXPECT_GT(h, 3.0e4);
  EXPECT_LT(h, 4.5e4);
}

TEST(FinEfficiency, LimitsAndMonotonicity) {
  EXPECT_DOUBLE_EQ(fin_efficiency(0.0, 130.0, 1e-4, 1e-4), 1.0);
  EXPECT_DOUBLE_EQ(fin_efficiency(1e4, 130.0, 1e-4, 0.0), 1.0);
  const double tall = fin_efficiency(4e4, 130.0, 1e-4, 500e-6);
  const double short_fin = fin_efficiency(4e4, 130.0, 1e-4, 50e-6);
  EXPECT_LT(tall, short_fin);
  EXPECT_GT(tall, 0.0);
  EXPECT_LE(short_fin, 1.0);
}

// --- pump model ---------------------------------------------------------

TEST(Pump, Table1EndpointsReproduced) {
  const PumpModel pump = PumpModel::table1();
  // 2-cavity (2-tier) stack: 3.5 - 11.176 W over the flow range.
  EXPECT_NEAR(pump.power(0, 2), 3.5, 0.05);
  EXPECT_NEAR(pump.power(pump.levels() - 1, 2), 11.176, 0.001);
}

TEST(Pump, FlowLevelsSpanTable1Range) {
  const PumpModel pump = PumpModel::table1(16);
  EXPECT_NEAR(to_ml_per_min(pump.flow_per_cavity(0)), 10.0, 1e-9);
  EXPECT_NEAR(to_ml_per_min(pump.flow_per_cavity(15)), 32.3, 1e-9);
  for (int l = 1; l < pump.levels(); ++l) {
    EXPECT_GT(pump.flow_per_cavity(l), pump.flow_per_cavity(l - 1));
  }
}

TEST(Pump, LevelForFlowRoundsUp) {
  const PumpModel pump = PumpModel::table1(16);
  EXPECT_EQ(pump.level_for_flow(0.0), 0);
  EXPECT_EQ(pump.level_for_flow(pump.q_max() * 2), 15);
  const double mid = 0.5 * (pump.flow_per_cavity(7) + pump.flow_per_cavity(8));
  EXPECT_EQ(pump.level_for_flow(mid), 8);  // never under-provision
  EXPECT_EQ(pump.level_for_flow(pump.flow_per_cavity(5)), 5);
}

TEST(Pump, PowerScalesWithCavities) {
  const PumpModel pump = PumpModel::table1();
  EXPECT_NEAR(pump.power(8, 4), 2.0 * pump.power(8, 2), 1e-12);
  EXPECT_DOUBLE_EQ(pump.power(8, 0), 0.0);
}

TEST(Pump, RejectsBadConfiguration) {
  EXPECT_THROW(PumpModel(0.0, 1.0, 4, 1.0), InvalidArgument);
  EXPECT_THROW(PumpModel(1.0, 0.5, 4, 1.0), InvalidArgument);
  EXPECT_THROW(PumpModel(1e-7, 2e-7, 1, 1.0), InvalidArgument);
}

}  // namespace
}  // namespace tac3d::microchannel
