// Unit tests for the CSR matrix container.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "sparse/csr.hpp"

namespace tac3d::sparse {
namespace {

CsrMatrix small() {
  // [ 4 -1  0]
  // [-1  4 -1]
  // [ 0 -1  4]
  return CsrMatrix::from_triplets(3, 3,
                                  {{0, 0, 4.0},
                                   {0, 1, -1.0},
                                   {1, 0, -1.0},
                                   {1, 1, 4.0},
                                   {1, 2, -1.0},
                                   {2, 1, -1.0},
                                   {2, 2, 4.0}});
}

TEST(CsrMatrix, FromTripletsBuildsSortedRows) {
  const CsrMatrix m = small();
  EXPECT_EQ(m.rows(), 3);
  EXPECT_EQ(m.cols(), 3);
  EXPECT_EQ(m.nnz(), 7);
  EXPECT_DOUBLE_EQ(m.coeff(0, 0), 4.0);
  EXPECT_DOUBLE_EQ(m.coeff(2, 1), -1.0);
  EXPECT_DOUBLE_EQ(m.coeff(0, 2), 0.0);
}

TEST(CsrMatrix, DuplicateTripletsAreSummed) {
  const CsrMatrix m = CsrMatrix::from_triplets(
      2, 2, {{0, 0, 1.0}, {0, 0, 2.5}, {1, 1, 1.0}});
  EXPECT_DOUBLE_EQ(m.coeff(0, 0), 3.5);
  EXPECT_EQ(m.nnz(), 2);
}

TEST(CsrMatrix, MultiplyMatchesManualComputation) {
  const CsrMatrix m = small();
  const std::vector<double> x{1.0, 2.0, 3.0};
  std::vector<double> y(3);
  m.multiply(x, y);
  EXPECT_DOUBLE_EQ(y[0], 4.0 * 1 - 2);
  EXPECT_DOUBLE_EQ(y[1], -1 + 8 - 3);
  EXPECT_DOUBLE_EQ(y[2], -2 + 12);
}

TEST(CsrMatrix, MultiplyTransposeMatchesForSymmetric) {
  const CsrMatrix m = small();
  const std::vector<double> x{0.5, -1.0, 2.0};
  std::vector<double> y1(3), y2(3);
  m.multiply(x, y1);
  m.multiply_transpose(x, y2);
  for (int i = 0; i < 3; ++i) EXPECT_DOUBLE_EQ(y1[i], y2[i]);
}

TEST(CsrMatrix, CoeffRefMutatesInPlace) {
  CsrMatrix m = small();
  m.coeff_ref(1, 1) = 10.0;
  EXPECT_DOUBLE_EQ(m.coeff(1, 1), 10.0);
  EXPECT_THROW(m.coeff_ref(0, 2), InvalidArgument);
}

TEST(CsrMatrix, HasEntryReflectsPattern) {
  const CsrMatrix m = small();
  EXPECT_TRUE(m.has_entry(0, 1));
  EXPECT_FALSE(m.has_entry(0, 2));
}

TEST(CsrMatrix, DiagonalAndNormInf) {
  const CsrMatrix m = small();
  const auto d = m.diagonal();
  EXPECT_EQ(d.size(), 3u);
  EXPECT_DOUBLE_EQ(d[1], 4.0);
  EXPECT_DOUBLE_EQ(m.norm_inf(), 6.0);
}

TEST(CsrMatrix, DiagonalDominanceCheck) {
  EXPECT_TRUE(small().is_diagonally_dominant());
  const CsrMatrix bad = CsrMatrix::from_triplets(
      2, 2, {{0, 0, 1.0}, {0, 1, -2.0}, {1, 1, 3.0}});
  EXPECT_FALSE(bad.is_diagonally_dominant());
}

TEST(CsrMatrix, RejectsOutOfRangeTriplets) {
  EXPECT_THROW(CsrMatrix::from_triplets(2, 2, {{2, 0, 1.0}}),
               InvalidArgument);
}

TEST(CsrMatrix, SetZeroKeepsPattern) {
  CsrMatrix m = small();
  m.set_zero();
  EXPECT_EQ(m.nnz(), 7);
  EXPECT_DOUBLE_EQ(m.coeff(0, 0), 0.0);
  EXPECT_TRUE(m.has_entry(0, 1));
}

}  // namespace
}  // namespace tac3d::sparse
