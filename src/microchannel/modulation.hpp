#pragma once
/// \file modulation.hpp
/// \brief Hot-spot-aware channel-width modulation (Section II-C).
///
/// The effective convective resistance of a micro-channel can be adjusted
/// spatially by narrowing the channel only where the junction temperature
/// limit would otherwise be exceeded. Narrow sections raise the local
/// heat-transfer coefficient (smaller hydraulic diameter) at the cost of
/// a higher pressure gradient, so restricting them to hot spots improves
/// total pressure drop and pumping power — the paper reports factors of
/// ~2 and ~5 respectively.

#include <vector>

#include "microchannel/coolant.hpp"
#include "microchannel/duct.hpp"

namespace tac3d::microchannel {

/// A channel divided into axial segments with independent widths.
struct ModulatedChannel {
  std::vector<double> segment_lengths;  ///< [m]
  std::vector<double> segment_widths;   ///< [m]
  double height = 0.0;                  ///< [m], common cavity height
};

/// Per-segment thermal/hydraulic evaluation of a modulated channel.
struct ModulationResult {
  std::vector<double> wall_superheat;  ///< T_wall - T_fluid per segment [K]
  std::vector<double> fluid_temp;      ///< bulk fluid temp at segment exit [K]
  double peak_wall_temperature = 0.0;  ///< [K]
  double pressure_drop = 0.0;          ///< [Pa]
  double pumping_power = 0.0;          ///< [W], dP * Q per channel
};

/// March a single channel carrying \p q_channel with inlet temperature
/// \p t_inlet against per-segment applied heat flux \p q_flux [W/m^2 of
/// footprint]. \p pitch is the channel repeat distance (wall + channel).
ModulationResult evaluate_modulated_channel(
    const ModulatedChannel& chan, std::vector<double> const& q_flux,
    double pitch, double q_channel, double t_inlet, const Coolant& fluid,
    double k_wall);

/// Design a width profile: use \p w_max everywhere, narrowing segments
/// (down to \p w_min) only where the wall temperature would exceed
/// \p t_limit. Widths are chosen per segment by bisection on the local
/// superheat. Returns the designed channel.
ModulatedChannel design_width_profile(const std::vector<double>& seg_lengths,
                                      const std::vector<double>& q_flux,
                                      double height, double pitch,
                                      double w_min, double w_max,
                                      double q_channel, double t_inlet,
                                      double t_limit, const Coolant& fluid,
                                      double k_wall);

/// Smallest per-channel flow rate for which the peak wall temperature of
/// \p chan stays below \p t_limit (bisection; throws if even q_hi fails).
double min_flow_for_limit(const ModulatedChannel& chan,
                          const std::vector<double>& q_flux, double pitch,
                          double t_inlet, double t_limit,
                          const Coolant& fluid, double k_wall, double q_lo,
                          double q_hi);

/// Aggregate hydraulic conductance of a width-modulated channel: its
/// segments are resistances in series (1/g = sum of 1/g_i). Use as the
/// per-channel edge conductance of a HydraulicNetwork to get the flow
/// redistribution a width profile causes across a cavity's parallel
/// channels (narrowed hot-spot channels draw less flow at equal head),
/// then feed flow_fractions()/coarsen_fractions() of the solved network
/// into thermal::RcModel::set_cavity_flow_profile.
double modulated_channel_conductance(const ModulatedChannel& chan,
                                     const Coolant& fluid);

}  // namespace tac3d::microchannel
