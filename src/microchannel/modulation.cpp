#include "microchannel/modulation.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "microchannel/flow_network.hpp"

namespace tac3d::microchannel {

namespace {

/// Thermal conductance per unit length of a channel segment: film
/// coefficient times effective wetted width (floor plus side walls as
/// fins).
double conductance_per_length(double width, double height,
                              const Coolant& fluid, double k_wall) {
  const RectDuct duct{width, height};
  const double h = heat_transfer_coefficient(duct, fluid);
  const double eta = fin_efficiency(h, k_wall, width /*fin thickness*/,
                                    height);
  return h * (width + 2.0 * eta * height);
}

}  // namespace

ModulationResult evaluate_modulated_channel(const ModulatedChannel& chan,
                                            std::vector<double> const& q_flux,
                                            double pitch, double q_channel,
                                            double t_inlet,
                                            const Coolant& fluid,
                                            double k_wall) {
  const std::size_t n = chan.segment_lengths.size();
  require(chan.segment_widths.size() == n && q_flux.size() == n,
          "evaluate_modulated_channel: segment array size mismatch");
  require(q_channel > 0.0, "evaluate_modulated_channel: flow must be > 0");
  require(pitch > 0.0, "evaluate_modulated_channel: invalid pitch");

  const double m_dot = fluid.density * q_channel;
  const double mcp = m_dot * fluid.specific_heat;

  ModulationResult res;
  res.wall_superheat.resize(n);
  res.fluid_temp.resize(n);

  double t_fluid = t_inlet;
  for (std::size_t i = 0; i < n; ++i) {
    const double len = chan.segment_lengths[i];
    const double width = chan.segment_widths[i];
    require(len > 0.0 && width > 0.0,
            "evaluate_modulated_channel: invalid segment geometry");

    const double q_seg = q_flux[i] * pitch * len;  // heat into this channel
    const double t_mid = t_fluid + 0.5 * q_seg / mcp;
    t_fluid += q_seg / mcp;
    res.fluid_temp[i] = t_fluid;

    const double g_len = conductance_per_length(width, chan.height, fluid,
                                                k_wall);
    const double superheat = q_seg / (g_len * len);
    res.wall_superheat[i] = superheat;
    res.peak_wall_temperature =
        std::max(res.peak_wall_temperature, t_mid + superheat);

    const RectDuct duct{width, chan.height};
    res.pressure_drop += pressure_drop(duct, len, q_channel, fluid);
  }
  res.pumping_power = res.pressure_drop * q_channel;
  return res;
}

ModulatedChannel design_width_profile(const std::vector<double>& seg_lengths,
                                      const std::vector<double>& q_flux,
                                      double height, double pitch,
                                      double w_min, double w_max,
                                      double q_channel, double t_inlet,
                                      double t_limit, const Coolant& fluid,
                                      double k_wall) {
  const std::size_t n = seg_lengths.size();
  require(q_flux.size() == n, "design_width_profile: array size mismatch");
  require(w_min > 0.0 && w_max >= w_min, "design_width_profile: bad widths");

  ModulatedChannel chan;
  chan.segment_lengths = seg_lengths;
  chan.segment_widths.assign(n, w_max);
  chan.height = height;

  // The bulk fluid profile depends only on flow and heat, not width, so
  // the per-segment superheat budget is known up front.
  const double mcp = fluid.density * q_channel * fluid.specific_heat;
  double t_fluid = t_inlet;
  for (std::size_t i = 0; i < n; ++i) {
    const double q_seg = q_flux[i] * pitch * seg_lengths[i];
    const double t_mid = t_fluid + 0.5 * q_seg / mcp;
    t_fluid += q_seg / mcp;
    const double budget = t_limit - t_mid;
    if (budget <= 0.0) continue;  // fluid itself too hot; width cannot help

    auto superheat_at = [&](double w) {
      return q_seg /
             (conductance_per_length(w, height, fluid, k_wall) *
              seg_lengths[i]);
    };
    if (superheat_at(w_max) <= budget) continue;  // wide channel suffices
    if (superheat_at(w_min) > budget) {
      chan.segment_widths[i] = w_min;  // best effort at this flow
      continue;
    }
    double lo = w_min, hi = w_max;
    for (int it = 0; it < 60; ++it) {
      const double mid = 0.5 * (lo + hi);
      (superheat_at(mid) <= budget ? lo : hi) = mid;
    }
    chan.segment_widths[i] = lo;
  }
  return chan;
}

double min_flow_for_limit(const ModulatedChannel& chan,
                          const std::vector<double>& q_flux, double pitch,
                          double t_inlet, double t_limit,
                          const Coolant& fluid, double k_wall, double q_lo,
                          double q_hi) {
  require(q_lo > 0.0 && q_hi > q_lo, "min_flow_for_limit: bad flow bracket");
  auto peak = [&](double q) {
    return evaluate_modulated_channel(chan, q_flux, pitch, q, t_inlet, fluid,
                                      k_wall)
        .peak_wall_temperature;
  };
  require(peak(q_hi) <= t_limit,
          "min_flow_for_limit: limit unreachable even at maximum flow");
  if (peak(q_lo) <= t_limit) return q_lo;
  double lo = q_lo, hi = q_hi;
  for (int it = 0; it < 60; ++it) {
    const double mid = 0.5 * (lo + hi);
    (peak(mid) <= t_limit ? hi : lo) = mid;
  }
  return hi;
}

double modulated_channel_conductance(const ModulatedChannel& chan,
                                     const Coolant& fluid) {
  require(chan.segment_lengths.size() == chan.segment_widths.size() &&
              !chan.segment_lengths.empty(),
          "modulated_channel_conductance: malformed channel");
  double resistance = 0.0;
  for (std::size_t i = 0; i < chan.segment_lengths.size(); ++i) {
    const RectDuct duct{chan.segment_widths[i], chan.height};
    resistance += 1.0 / channel_conductance(duct, chan.segment_lengths[i],
                                            fluid);
  }
  return 1.0 / resistance;
}

}  // namespace tac3d::microchannel
