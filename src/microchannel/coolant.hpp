#pragma once
/// \file coolant.hpp
/// \brief Coolant (liquid) property bundles and water property fits.
///
/// Table I of the paper pins water conductivity at 0.6 W/(m K) and
/// specific heat at 4183 J/(kg K); the tabulated fits below reproduce
/// those values near room temperature and extend them over 0-100 C for
/// property-sensitivity studies.

#include <string>

namespace tac3d::microchannel {

/// Thermophysical properties of a liquid coolant at one temperature.
struct Coolant {
  std::string name;
  double density = 0.0;        ///< rho [kg/m^3]
  double viscosity = 0.0;      ///< dynamic viscosity mu [Pa s]
  double specific_heat = 0.0;  ///< c_p [J/(kg K)]
  double conductivity = 0.0;   ///< k [W/(m K)]

  /// Volumetric heat capacity rho * c_p [J/(m^3 K)].
  double volumetric_heat_capacity() const { return density * specific_heat; }

  /// Prandtl number mu * c_p / k.
  double prandtl() const { return viscosity * specific_heat / conductivity; }
};

/// Liquid water properties at temperature \p t_kelvin (valid 273-373 K,
/// clamped outside).
Coolant water(double t_kelvin);

/// Water evaluated at the paper's Table I conditions (k = 0.6 W/(m K),
/// c_p = 4183 J/(kg K)); use this for runs that must mirror Table I.
Coolant water_table1();

/// A representative single-phase dielectric coolant (perfluorinated,
/// FC-72-like): ~4x lower volumetric heat capacity than water and
/// noticeably lower conductivity. Used to demonstrate why the paper
/// rejects dielectric liquids for inter-tier cavities.
Coolant dielectric_fc72(double t_kelvin);

}  // namespace tac3d::microchannel
