#pragma once
/// \file flow_network.hpp
/// \brief Linear hydraulic network solver for fluid-focusing studies
/// (Fig. 4 of the paper).
///
/// Laminar micro-channel flow is linear in the pressure difference
/// (Q = g * dP), so a cavity with manifolds and guiding structures is a
/// resistor network. Solving the network gives the per-channel flow
/// distribution for uniform vs fluid-focused designs.

#include <cstdint>
#include <span>
#include <vector>

#include "microchannel/coolant.hpp"
#include "microchannel/duct.hpp"

namespace tac3d::microchannel {

/// Solution of a hydraulic network solve.
struct NetworkSolution {
  std::vector<double> pressures;   ///< node pressures [Pa]
  std::vector<double> edge_flows;  ///< flow a->b per edge [m^3/s]
};

/// Incompressible linear flow network: unknown-pressure nodes, fixed-
/// pressure boundary nodes, conductive edges, and nodal flow injections.
class HydraulicNetwork {
 public:
  /// Add an interior node with unknown pressure; returns its id.
  std::int32_t add_node();

  /// Add a boundary node held at \p pressure [Pa]; returns its id.
  std::int32_t add_fixed_node(double pressure);

  /// Connect nodes \p a and \p b with hydraulic conductance
  /// \p conductance [m^3/(s Pa)]; returns the edge id.
  std::int32_t add_edge(std::int32_t a, std::int32_t b, double conductance);

  /// Inject \p flow [m^3/s] into an interior node (positive = source).
  void set_injection(std::int32_t node, double flow);

  std::int32_t node_count() const {
    return static_cast<std::int32_t>(fixed_.size());
  }
  std::int32_t edge_count() const {
    return static_cast<std::int32_t>(edges_.size());
  }

  /// Solve mass conservation for all interior pressures.
  NetworkSolution solve() const;

 private:
  struct Edge {
    std::int32_t a;
    std::int32_t b;
    double g;
  };
  std::vector<bool> fixed_;
  std::vector<double> fixed_pressure_;
  std::vector<double> injection_;
  std::vector<Edge> edges_;
};

/// Hydraulic conductance of a straight rectangular channel
/// (laminar: Q = g dP).
double channel_conductance(const RectDuct& duct, double length,
                           const Coolant& fluid);

/// Normalized flow fractions of the listed edges of a solved network
/// (|flow| per edge / total), e.g. the per-channel edges of a cavity
/// distributor. Throws if the total flow is zero.
std::vector<double> flow_fractions(const NetworkSolution& sol,
                                   std::span<const std::int32_t> edges);

/// Resample \p fractions (one value per fine bin, e.g. per channel) onto
/// \p bins coarse bins (e.g. thermal grid columns) by proportional
/// overlap; the result sums to the same total. Feed the result to
/// thermal::RcModel::set_cavity_flow_profile to drive the RC model's
/// advection from a hydraulic-network solve.
std::vector<double> coarsen_fractions(std::span<const double> fractions,
                                      int bins);

}  // namespace tac3d::microchannel
