#pragma once
/// \file pinfin.hpp
/// \brief Pin-fin heat-transfer-structure model (Section II-C of the
/// paper): in-line vs staggered arrangements, circular/square/drop
/// shapes, pressure drop and convective performance.
///
/// Correlations follow the classic Zukauskas tube-bank forms adapted to
/// micro pin fins; shape factors for square and drop pins are constant
/// multipliers taken from published micro-pin-fin comparisons (square
/// pins raise drag ~35%, streamlined drop shapes cut it ~35% at similar
/// heat transfer).

#include "microchannel/coolant.hpp"

namespace tac3d::microchannel {

/// Pin arrangement in the flow direction.
enum class PinArrangement { kInline, kStaggered };

/// Pin cross-section shape.
enum class PinShape { kCircular, kSquare, kDrop };

/// Geometry of a uniform pin-fin cavity.
struct PinFinArray {
  double pin_diameter = 0.0;       ///< [m] characteristic width
  double transverse_pitch = 0.0;   ///< [m] across the flow
  double longitudinal_pitch = 0.0; ///< [m] along the flow
  double height = 0.0;             ///< [m] cavity height
  double footprint_width = 0.0;    ///< [m] cavity extent across flow
  double footprint_length = 0.0;   ///< [m] cavity extent along flow
  PinArrangement arrangement = PinArrangement::kInline;
  PinShape shape = PinShape::kCircular;

  /// Number of pin rows encountered along the flow.
  int rows_along_flow() const;
  /// Number of pins per row.
  int pins_per_row() const;
  /// Maximum-velocity free-flow area between pins of one row [m^2].
  double min_flow_area() const;
  /// Total wetted pin surface area [m^2].
  double pin_surface_area() const;
};

/// Performance of a pin-fin cavity at a given total flow.
struct PinFinPerformance {
  double reynolds_max = 0.0;       ///< Re at the minimum flow section
  double pressure_drop = 0.0;      ///< [Pa]
  double htc = 0.0;                ///< average h on pin surfaces [W/(m^2 K)]
  double thermal_conductance = 0.0;///< h * A_wetted * eta_fin [W/K]
  double pumping_power = 0.0;      ///< dP * Q [W]
};

/// Evaluate a pin-fin cavity carrying total volumetric flow \p q_total.
/// \p k_pin is the pin (silicon) conductivity for the fin efficiency.
PinFinPerformance evaluate_pin_fin(const PinFinArray& geom, double q_total,
                                   const Coolant& fluid, double k_pin);

}  // namespace tac3d::microchannel
