#pragma once
/// \file duct.hpp
/// \brief Laminar rectangular-duct correlations (friction and Nusselt)
/// and pressure-drop/pumping-power arithmetic for micro-channels.
///
/// The inter-tier channels of the paper have cross-sections below
/// 100 x 50 um^2 and Reynolds numbers of a few hundred, so fully
/// developed laminar correlations (Shah & London polynomial fits) apply.

#include "microchannel/coolant.hpp"

namespace tac3d::microchannel {

/// Rectangular duct cross-section.
struct RectDuct {
  double width = 0.0;   ///< [m], in-plane channel width
  double height = 0.0;  ///< [m], channel (cavity) height

  double area() const { return width * height; }
  double wetted_perimeter() const { return 2.0 * (width + height); }
  double hydraulic_diameter() const {
    return 4.0 * area() / wetted_perimeter();
  }
  /// Aspect ratio alpha = short side / long side, in (0, 1].
  double aspect() const;
};

/// Fanning friction constant f*Re for a rectangular duct
/// (Shah & London 5th-order polynomial in the aspect ratio).
double fanning_friction_constant(double aspect);

/// Fully developed laminar Nusselt number for the H1 (uniform axial heat
/// flux) boundary condition (Shah & London polynomial).
double nusselt_h1(double aspect);

/// Reynolds number of a duct carrying volumetric flow \p q_channel.
double reynolds(const RectDuct& duct, double q_channel, const Coolant& fluid);

/// Convective heat transfer coefficient h = Nu * k / D_h [W/(m^2 K)].
double heat_transfer_coefficient(const RectDuct& duct, const Coolant& fluid);

/// Laminar pressure gradient dP/dz [Pa/m] of flow \p q_channel.
/// Throws ModelRangeError if the flow is turbulent (Re > 2300).
double pressure_gradient(const RectDuct& duct, double q_channel,
                         const Coolant& fluid);

/// Total pressure drop over a duct of length \p length [Pa].
double pressure_drop(const RectDuct& duct, double length, double q_channel,
                     const Coolant& fluid);

/// Hydraulic pumping power P = dP * Q / eta [W].
double pumping_power(double pressure_drop_pa, double q_total,
                     double pump_efficiency = 1.0);

/// Straight-fin efficiency tanh(m L)/(m L) for a channel side wall of
/// height \p fin_height and thickness \p fin_thickness in material with
/// conductivity \p k_solid facing a film coefficient \p h.
double fin_efficiency(double h, double k_solid, double fin_thickness,
                      double fin_height);

}  // namespace tac3d::microchannel
