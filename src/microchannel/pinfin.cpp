#include "microchannel/pinfin.hpp"

#include <cmath>

#include "common/error.hpp"

namespace tac3d::microchannel {

namespace {

/// Drag (Euler number) and Nusselt shape multipliers relative to a
/// circular pin.
struct ShapeFactors {
  double drag = 1.0;
  double nusselt = 1.0;
};

ShapeFactors shape_factors(PinShape shape) {
  switch (shape) {
    case PinShape::kCircular:
      return {1.0, 1.0};
    case PinShape::kSquare:
      return {1.35, 1.05};  // sharp edges: more drag, slightly better mixing
    case PinShape::kDrop:
      return {0.65, 0.95};  // streamlined: much less drag, similar HTC
  }
  throw InvalidArgument("shape_factors: unknown shape");
}

}  // namespace

int PinFinArray::rows_along_flow() const {
  require(longitudinal_pitch > 0.0, "PinFinArray: invalid longitudinal pitch");
  return std::max(1, static_cast<int>(footprint_length / longitudinal_pitch));
}

int PinFinArray::pins_per_row() const {
  require(transverse_pitch > 0.0, "PinFinArray: invalid transverse pitch");
  return std::max(1, static_cast<int>(footprint_width / transverse_pitch));
}

double PinFinArray::min_flow_area() const {
  require(transverse_pitch > pin_diameter,
          "PinFinArray: pins overlap (transverse pitch <= diameter)");
  return footprint_width * height * (1.0 - pin_diameter / transverse_pitch);
}

double PinFinArray::pin_surface_area() const {
  const double per_pin = (shape == PinShape::kSquare)
                             ? 4.0 * pin_diameter * height
                             : M_PI * pin_diameter * height;
  return per_pin * pins_per_row() * rows_along_flow();
}

PinFinPerformance evaluate_pin_fin(const PinFinArray& geom, double q_total,
                                   const Coolant& fluid, double k_pin) {
  require(q_total >= 0.0, "evaluate_pin_fin: flow must be non-negative");
  require(geom.pin_diameter > 0.0 && geom.height > 0.0,
          "evaluate_pin_fin: invalid geometry");

  PinFinPerformance perf;
  if (q_total == 0.0) return perf;

  const double v_max = q_total / geom.min_flow_area();
  const double re =
      fluid.density * v_max * geom.pin_diameter / fluid.viscosity;
  if (re > 1000.0) {
    throw ModelRangeError(
        "evaluate_pin_fin: Re_max > 1000 outside the laminar bank "
        "correlation range");
  }
  perf.reynolds_max = re;

  const ShapeFactors sf = shape_factors(geom.shape);
  const bool staggered = geom.arrangement == PinArrangement::kStaggered;

  // Zukauskas-form Nusselt for banks in the 40-1000 Re range; staggered
  // banks mix better (C = 0.71 vs 0.52 in-line).
  const double c_nu = staggered ? 0.71 : 0.52;
  const double nu =
      sf.nusselt * c_nu * std::sqrt(re) * std::pow(fluid.prandtl(), 0.36);
  perf.htc = nu * fluid.conductivity / geom.pin_diameter;

  // Per-row Euler number: laminar-dominated drag; staggered rows sit in
  // each other's wakes less and present more frontal blockage.
  const double eu = sf.drag * (staggered ? 3.2 * std::pow(re, -0.25) + 0.40
                                         : 2.2 * std::pow(re, -0.25) + 0.25);
  perf.pressure_drop = geom.rows_along_flow() * eu * fluid.density * v_max *
                       v_max / 2.0;
  perf.pumping_power = perf.pressure_drop * q_total;

  // Cylindrical-pin fin efficiency: m = sqrt(4h / (k d)).
  const double m = std::sqrt(4.0 * perf.htc / (k_pin * geom.pin_diameter));
  const double ml = m * geom.height;
  const double eta = ml < 1e-9 ? 1.0 : std::tanh(ml) / ml;
  perf.thermal_conductance = perf.htc * geom.pin_surface_area() * eta;
  return perf;
}

}  // namespace tac3d::microchannel
