#include "microchannel/flow_network.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "sparse/csr.hpp"
#include "sparse/iterative.hpp"
#include "sparse/preconditioner.hpp"

namespace tac3d::microchannel {

std::int32_t HydraulicNetwork::add_node() {
  fixed_.push_back(false);
  fixed_pressure_.push_back(0.0);
  injection_.push_back(0.0);
  return node_count() - 1;
}

std::int32_t HydraulicNetwork::add_fixed_node(double pressure) {
  fixed_.push_back(true);
  fixed_pressure_.push_back(pressure);
  injection_.push_back(0.0);
  return node_count() - 1;
}

std::int32_t HydraulicNetwork::add_edge(std::int32_t a, std::int32_t b,
                                        double conductance) {
  require(a >= 0 && a < node_count() && b >= 0 && b < node_count() && a != b,
          "HydraulicNetwork::add_edge: invalid endpoints");
  require(conductance > 0.0,
          "HydraulicNetwork::add_edge: conductance must be positive");
  edges_.push_back(Edge{a, b, conductance});
  return edge_count() - 1;
}

void HydraulicNetwork::set_injection(std::int32_t node, double flow) {
  require(node >= 0 && node < node_count(),
          "HydraulicNetwork::set_injection: invalid node");
  require(!fixed_[node],
          "HydraulicNetwork::set_injection: node has fixed pressure");
  injection_[node] = flow;
}

NetworkSolution HydraulicNetwork::solve() const {
  const std::int32_t n = node_count();
  require(n > 0, "HydraulicNetwork::solve: empty network");

  // Map interior nodes to unknown indices.
  std::vector<std::int32_t> unknown_of(static_cast<std::size_t>(n), -1);
  std::int32_t n_unknown = 0;
  for (std::int32_t i = 0; i < n; ++i) {
    if (!fixed_[i]) unknown_of[i] = n_unknown++;
  }
  require(n_unknown < n || std::any_of(fixed_.begin(), fixed_.end(),
                                       [](bool f) { return f; }) ||
              n_unknown == 0,
          "HydraulicNetwork::solve: network needs at least one fixed node");

  NetworkSolution sol;
  sol.pressures.assign(static_cast<std::size_t>(n), 0.0);
  for (std::int32_t i = 0; i < n; ++i) {
    if (fixed_[i]) sol.pressures[i] = fixed_pressure_[i];
  }

  if (n_unknown > 0) {
    require(std::any_of(fixed_.begin(), fixed_.end(), [](bool f) { return f; }),
            "HydraulicNetwork::solve: floating network (no fixed pressure)");
    std::vector<sparse::Triplet> trips;
    std::vector<double> rhs(static_cast<std::size_t>(n_unknown), 0.0);
    for (std::int32_t i = 0; i < n; ++i) {
      if (!fixed_[i]) rhs[unknown_of[i]] = injection_[i];
    }
    for (const Edge& e : edges_) {
      const std::int32_t ua = unknown_of[e.a];
      const std::int32_t ub = unknown_of[e.b];
      if (ua >= 0) trips.push_back({ua, ua, e.g});
      if (ub >= 0) trips.push_back({ub, ub, e.g});
      if (ua >= 0 && ub >= 0) {
        trips.push_back({ua, ub, -e.g});
        trips.push_back({ub, ua, -e.g});
      } else if (ua >= 0) {
        rhs[ua] += e.g * fixed_pressure_[e.b];
      } else if (ub >= 0) {
        rhs[ub] += e.g * fixed_pressure_[e.a];
      }
    }
    const auto laplacian =
        sparse::CsrMatrix::from_triplets(n_unknown, n_unknown, std::move(trips));
    std::vector<double> x(static_cast<std::size_t>(n_unknown), 0.0);
    sparse::JacobiPreconditioner precond(laplacian);
    sparse::IterativeOptions opts;
    opts.rel_tolerance = 1e-12;
    opts.max_iterations = 10000;
    const auto res = sparse::cg(laplacian, rhs, x, precond, opts);
    if (!res.converged) {
      throw NumericalError("HydraulicNetwork::solve: CG did not converge");
    }
    for (std::int32_t i = 0; i < n; ++i) {
      if (!fixed_[i]) sol.pressures[i] = x[unknown_of[i]];
    }
  }

  sol.edge_flows.reserve(edges_.size());
  for (const Edge& e : edges_) {
    sol.edge_flows.push_back(e.g *
                             (sol.pressures[e.a] - sol.pressures[e.b]));
  }
  return sol;
}

double channel_conductance(const RectDuct& duct, double length,
                           const Coolant& fluid) {
  require(length > 0.0, "channel_conductance: length must be positive");
  // Laminar: dP = (4 f_fanning / Dh) (rho v^2 / 2) L with f = C/Re, so
  // dP is linear in Q; evaluate the slope with a unit-velocity probe.
  const double c = fanning_friction_constant(duct.aspect());
  const double dh = duct.hydraulic_diameter();
  // dP/Q = 2 c mu L / (A Dh^2)  [Pa s / m^3]
  const double resistance =
      2.0 * c * fluid.viscosity * length / (duct.area() * dh * dh);
  return 1.0 / resistance;
}

std::vector<double> flow_fractions(const NetworkSolution& sol,
                                   std::span<const std::int32_t> edges) {
  std::vector<double> fractions(edges.size(), 0.0);
  double total = 0.0;
  for (std::size_t i = 0; i < edges.size(); ++i) {
    const std::int32_t e = edges[i];
    require(e >= 0 && e < static_cast<std::int32_t>(sol.edge_flows.size()),
            "flow_fractions: edge id out of range");
    fractions[i] = std::abs(sol.edge_flows[e]);
    total += fractions[i];
  }
  require(total > 0.0, "flow_fractions: zero aggregate flow");
  for (double& f : fractions) f /= total;
  return fractions;
}

std::vector<double> coarsen_fractions(std::span<const double> fractions,
                                      int bins) {
  require(bins > 0, "coarsen_fractions: bins must be positive");
  require(!fractions.empty(), "coarsen_fractions: empty input");
  const int m = static_cast<int>(fractions.size());
  std::vector<double> out(static_cast<std::size_t>(bins), 0.0);
  // Proportional overlap of fine bin [i/m, (i+1)/m) with coarse bin
  // [b/bins, (b+1)/bins); conserves the total.
  for (int i = 0; i < m; ++i) {
    const double lo = static_cast<double>(i) / m;
    const double hi = static_cast<double>(i + 1) / m;
    for (int b = static_cast<int>(lo * bins); b < bins; ++b) {
      const double blo = static_cast<double>(b) / bins;
      const double bhi = static_cast<double>(b + 1) / bins;
      if (blo >= hi) break;
      const double overlap = std::min(hi, bhi) - std::max(lo, blo);
      if (overlap > 0.0) {
        out[static_cast<std::size_t>(b)] +=
            fractions[static_cast<std::size_t>(i)] * overlap * m;
      }
    }
  }
  return out;
}

}  // namespace tac3d::microchannel
