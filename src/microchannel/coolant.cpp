#include "microchannel/coolant.hpp"

#include "common/interp.hpp"
#include "common/units.hpp"

namespace tac3d::microchannel {

namespace {

const LinearTable& water_rho() {
  static const LinearTable t({273.15, 293.15, 313.15, 333.15, 353.15, 373.15},
                             {999.8, 998.2, 992.2, 983.2, 971.8, 958.4});
  return t;
}

const LinearTable& water_mu() {
  static const LinearTable t(
      {273.15, 293.15, 313.15, 333.15, 353.15, 373.15},
      {1.787e-3, 1.002e-3, 0.653e-3, 0.467e-3, 0.355e-3, 0.282e-3});
  return t;
}

const LinearTable& water_cp() {
  static const LinearTable t({273.15, 293.15, 313.15, 333.15, 353.15, 373.15},
                             {4217.0, 4182.0, 4179.0, 4185.0, 4197.0, 4216.0});
  return t;
}

const LinearTable& water_k() {
  static const LinearTable t({273.15, 293.15, 313.15, 333.15, 353.15, 373.15},
                             {0.561, 0.598, 0.631, 0.654, 0.670, 0.679});
  return t;
}

}  // namespace

Coolant water(double t_kelvin) {
  return Coolant{"water", water_rho()(t_kelvin), water_mu()(t_kelvin),
                 water_cp()(t_kelvin), water_k()(t_kelvin)};
}

Coolant water_table1() {
  // Exactly the Table I values, density chosen at ~25 C.
  return Coolant{"water(table1)", 997.0, 0.89e-3, 4183.0, 0.6};
}

Coolant dielectric_fc72(double t_kelvin) {
  // FC-72-like: rho ~1680 kg/m^3, cp ~1100 J/(kg K), k ~0.057 W/(m K),
  // mu ~0.64 mPa s at 25 C with mild temperature dependence.
  const double tc = t_kelvin - 298.15;
  return Coolant{"fc72", 1680.0 - 2.4 * tc, (0.64e-3) * (1.0 - 0.01 * tc),
                 1100.0 + 1.5 * tc, 0.057 - 1e-4 * tc};
}

}  // namespace tac3d::microchannel
