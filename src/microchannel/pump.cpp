#include "microchannel/pump.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/units.hpp"

namespace tac3d::microchannel {

PumpModel::PumpModel(double q_min_per_cavity, double q_max_per_cavity,
                     std::int32_t levels, double coeff_w_per_m3s)
    : q_min_(q_min_per_cavity),
      q_max_(q_max_per_cavity),
      levels_(levels),
      coeff_(coeff_w_per_m3s) {
  require(q_min_ > 0.0 && q_max_ > q_min_, "PumpModel: invalid flow range");
  require(levels_ >= 2, "PumpModel: need at least two levels");
  require(coeff_ > 0.0, "PumpModel: coefficient must be positive");
}

PumpModel PumpModel::table1(std::int32_t levels) {
  // 0.173 W/(ml/min) expressed in W/(m^3/s).
  const double coeff = 11.176 / (2.0 * ml_per_min(32.3));
  return PumpModel(ml_per_min(10.0), ml_per_min(32.3), levels, coeff);
}

double PumpModel::flow_per_cavity(std::int32_t level) const {
  require(level >= 0 && level < levels_, "PumpModel: level out of range");
  const double t = static_cast<double>(level) / (levels_ - 1);
  return q_min_ + t * (q_max_ - q_min_);
}

std::int32_t PumpModel::level_for_flow(double q_per_cavity) const {
  if (q_per_cavity <= q_min_) return 0;
  if (q_per_cavity >= q_max_) return levels_ - 1;
  const double t = (q_per_cavity - q_min_) / (q_max_ - q_min_);
  return static_cast<std::int32_t>(
      std::ceil(t * (levels_ - 1) - 1e-12));
}

double PumpModel::power(std::int32_t level, std::int32_t n_cavities) const {
  require(n_cavities >= 0, "PumpModel: negative cavity count");
  return coeff_ * flow_per_cavity(level) * n_cavities;
}

}  // namespace tac3d::microchannel
