#pragma once
/// \file pump.hpp
/// \brief Pumping-network model calibrated on Table I of the paper.
///
/// Table I gives a per-cavity flow-rate range of 10-32.3 ml/min and a
/// pumping-network power of 3.5-11.176 W. Both endpoints are reproduced
/// by a power *linear* in total volumetric flow for the 2-cavity 2-tier
/// stack: 11.176 W / (2 x 32.3 ml/min) = 0.173 W/(ml/min), and
/// 0.173 * 2 * 10 = 3.46 ~ 3.5 W. Linear power-vs-flow also matches the
/// paper's statement that pumping power is directly proportional to flow
/// rate (Section III).

#include <cstdint>
#include <vector>

namespace tac3d::microchannel {

/// Pump with a discrete set of per-cavity flow-rate settings.
///
/// Real pumping networks are driven in steps; discretizing also lets the
/// thermal solver cache one factorization per setting.
class PumpModel {
 public:
  /// \param q_min_per_cavity minimum per-cavity flow [m^3/s]
  /// \param q_max_per_cavity maximum per-cavity flow [m^3/s]
  /// \param levels number of settings (>= 2), level 0 = q_min
  /// \param coeff_w_per_m3s pumping power per unit total flow [W/(m^3/s)]
  PumpModel(double q_min_per_cavity, double q_max_per_cavity,
            std::int32_t levels, double coeff_w_per_m3s);

  /// Pump calibrated on the paper's Table I (10-32.3 ml/min per cavity,
  /// 0.173 W/(ml/min) of total flow), with \p levels settings.
  static PumpModel table1(std::int32_t levels = 16);

  std::int32_t levels() const { return levels_; }

  /// Per-cavity flow rate of \p level [m^3/s].
  double flow_per_cavity(std::int32_t level) const;

  /// Smallest level whose flow is >= \p q_per_cavity (clamped to max).
  std::int32_t level_for_flow(double q_per_cavity) const;

  /// Electrical pumping power for \p n_cavities cavities at \p level [W].
  double power(std::int32_t level, std::int32_t n_cavities) const;

  double q_min() const { return q_min_; }
  double q_max() const { return q_max_; }
  double coefficient() const { return coeff_; }

 private:
  double q_min_;
  double q_max_;
  std::int32_t levels_;
  double coeff_;
};

}  // namespace tac3d::microchannel
