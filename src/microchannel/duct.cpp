#include "microchannel/duct.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace tac3d::microchannel {

double RectDuct::aspect() const {
  require(width > 0.0 && height > 0.0, "RectDuct: dimensions must be positive");
  const double lo = std::min(width, height);
  const double hi = std::max(width, height);
  return lo / hi;
}

double fanning_friction_constant(double aspect) {
  require(aspect > 0.0 && aspect <= 1.0,
          "fanning_friction_constant: aspect must be in (0, 1]");
  const double a = aspect;
  // Shah & London (1978), Table 42: f*Re for rectangular ducts.
  return 24.0 * (1.0 - 1.3553 * a + 1.9467 * a * a - 1.7012 * a * a * a +
                 0.9564 * a * a * a * a - 0.2537 * a * a * a * a * a);
}

double nusselt_h1(double aspect) {
  require(aspect > 0.0 && aspect <= 1.0, "nusselt_h1: aspect must be in (0,1]");
  const double a = aspect;
  // Shah & London (1978): Nu_H1 for rectangular ducts, four walls heated.
  return 8.235 * (1.0 - 2.0421 * a + 3.0853 * a * a - 2.4765 * a * a * a +
                  1.0578 * a * a * a * a - 0.1861 * a * a * a * a * a);
}

double reynolds(const RectDuct& duct, double q_channel, const Coolant& fluid) {
  require(q_channel >= 0.0, "reynolds: flow must be non-negative");
  const double v = q_channel / duct.area();
  return fluid.density * v * duct.hydraulic_diameter() / fluid.viscosity;
}

double heat_transfer_coefficient(const RectDuct& duct, const Coolant& fluid) {
  return nusselt_h1(duct.aspect()) * fluid.conductivity /
         duct.hydraulic_diameter();
}

double pressure_gradient(const RectDuct& duct, double q_channel,
                         const Coolant& fluid) {
  const double re = reynolds(duct, q_channel, fluid);
  if (re > 2300.0) {
    throw ModelRangeError(
        "pressure_gradient: turbulent regime (Re > 2300) outside the "
        "laminar micro-channel model");
  }
  if (q_channel == 0.0) return 0.0;
  const double v = q_channel / duct.area();
  const double f_fanning = fanning_friction_constant(duct.aspect()) / re;
  // dP/dz = 4 f_fanning (1/Dh) (rho v^2 / 2)
  return 4.0 * f_fanning * fluid.density * v * v /
         (2.0 * duct.hydraulic_diameter());
}

double pressure_drop(const RectDuct& duct, double length, double q_channel,
                     const Coolant& fluid) {
  require(length >= 0.0, "pressure_drop: length must be non-negative");
  return pressure_gradient(duct, q_channel, fluid) * length;
}

double pumping_power(double pressure_drop_pa, double q_total,
                     double pump_efficiency) {
  require(pump_efficiency > 0.0 && pump_efficiency <= 1.0,
          "pumping_power: efficiency must be in (0, 1]");
  return pressure_drop_pa * q_total / pump_efficiency;
}

double fin_efficiency(double h, double k_solid, double fin_thickness,
                      double fin_height) {
  require(h >= 0.0 && k_solid > 0.0 && fin_thickness > 0.0,
          "fin_efficiency: invalid parameters");
  if (fin_height <= 0.0 || h == 0.0) return 1.0;
  const double m = std::sqrt(2.0 * h / (k_solid * fin_thickness));
  const double ml = m * fin_height;
  return ml < 1e-9 ? 1.0 : std::tanh(ml) / ml;
}

}  // namespace tac3d::microchannel
