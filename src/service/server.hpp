#pragma once
/// \file server.hpp
/// \brief Socket front-end of the sweep service: one SOCK_STREAM
/// acceptor on loopback, per-connection reader threads, all compute on
/// the SweepService's shared worker pool.
///
/// Per-scenario results are streamed to the submitting connection as
/// they finish. The connection layer owns the robustness guarantees the
/// protocol promises:
///
///   - malformed or oversized frames are answered with a typed kError
///     and the connection stays alive (oversized payloads are discarded
///     byte-for-byte to stay frame-aligned);
///   - a client disconnect (EOF, reset, failed write) cancels exactly
///     that connection's jobs — in-flight scenarios finish, pending ones
///     are skipped, other clients never notice;
///   - a drain request (or SIGTERM in tac3d_serve) stops admissions,
///     finishes all accepted work, answers kDrainComplete and only then
///     shuts the sockets down.

#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "service/protocol.hpp"
#include "service/service.hpp"

namespace tac3d::service {

struct ServerOptions {
  /// TCP port on 127.0.0.1; 0 = ephemeral (query with port()).
  int port = 0;
  int backlog = 16;
  ServiceOptions service;
};

/// A running sweep server. start() binds and spawns the acceptor;
/// request_drain() (idempotent) finishes accepted work then stops;
/// wait() blocks until the server stopped; stop() is the hard variant
/// (pending scenarios cancelled). The destructor stops hard.
class ServiceServer {
 public:
  explicit ServiceServer(ServerOptions opts = {});
  ~ServiceServer();

  ServiceServer(const ServiceServer&) = delete;
  ServiceServer& operator=(const ServiceServer&) = delete;

  /// Bind/listen/spawn the acceptor. Throws tac3d::Error on failure.
  void start();

  /// Bound port (valid after start()).
  int port() const { return port_; }

  /// Graceful shutdown: stop admitting, finish every accepted job,
  /// send kDrainComplete to every live connection, close everything.
  /// Safe from any thread (including a connection handler); returns
  /// once the drain worker has been started — use wait() to block.
  void request_drain();

  /// Block until the server has fully stopped (drain finished or stop()
  /// called).
  void wait();

  /// Hard stop: cancel pending work, close all sockets, join threads.
  void stop();

  bool running() const;

  SweepService& service() { return *service_; }

 private:
  struct Connection;

  void accept_loop();
  void connection_loop(const std::shared_ptr<Connection>& conn);
  void handle_message(const std::shared_ptr<Connection>& conn,
                      const protocol::Message& msg);
  /// Serialize + send on the connection. On a failed write the
  /// connection is marked dead and its read side shut down, so its
  /// reader thread wakes up and cancels the connection's jobs — the
  /// sender never re-enters the service (no lock re-entry).
  bool send_frame(Connection& conn, const protocol::Message& msg);
  void cancel_connection_jobs(Connection& conn);
  /// Join + close connections whose reader has exited (acceptor-side
  /// cleanup; event callbacks keep the Connection alive via shared_ptr).
  void reap_finished_locked();
  void drain_worker();
  void close_all_sockets();

  ServerOptions opts_;
  std::unique_ptr<SweepService> service_;
  int listen_fd_ = -1;
  int port_ = 0;
  std::thread acceptor_;
  std::thread drainer_;

  mutable std::mutex mu_;
  std::condition_variable stopped_cv_;
  std::vector<std::shared_ptr<Connection>> conns_;
  bool accepting_ = false;
  bool drain_requested_ = false;
  bool stopped_ = false;
};

}  // namespace tac3d::service
