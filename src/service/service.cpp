#include "service/service.hpp"

#include <algorithm>
#include <chrono>
#include <unordered_set>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sim/prepared.hpp"
#include "sim/sweep.hpp"

namespace tac3d::service {

namespace {

/// Registry handles of the service's live-introspection metrics (the
/// kQueryMetrics wire stream and tac3d_top read these by name).
struct ServiceMetrics {
  obs::Gauge queue_depth{"service/queue_depth"};
  obs::Gauge active_jobs{"service/active_jobs"};
  obs::Gauge cores_in_use{"service/cores_in_use"};
  obs::HistogramMetric admission_wait{"service/admission_wait_ms"};
  obs::HistogramMetric ttfr{"service/ttfr_ms"};
  obs::Counter done{"service/scenarios_done"};
  obs::Counter failed{"service/scenarios_failed"};
  obs::Counter cancelled{"service/scenarios_cancelled"};
};

ServiceMetrics& sm() {
  static ServiceMetrics m;
  return m;
}

double ms_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

/// One submitted request. Lifecycle: kQueued (admission FIFO) ->
/// kRunning (cores granted, workers claim tasks in LPT order) ->
/// kDone/kCancelled (finalized, erased from the service's books).
///
/// Lock protocol: scheduling state (state, next, active, counters) is
/// guarded by the service-wide mu_; event emission is serialized by the
/// per-job emit_mu so a job's kComplete can never overtake the last
/// kResult even when two workers finish its final scenarios
/// concurrently. Lock order is always emit_mu before mu_.
struct SweepService::Job {
  enum class State { kQueued, kRunning, kCancelled };

  std::uint32_t id = 0;
  State state = State::kQueued;
  int cores_requested = 1;
  int cores_granted = 0;
  std::vector<sim::Scenario> scenarios;
  std::vector<std::size_t> order;  ///< task indices, longest-first (LPT)
  std::size_t next = 0;            ///< next unclaimed position in order
  int active = 0;                  ///< workers currently inside a task
  std::uint32_t completed = 0, failed = 0, cancelled = 0;
  bool was_cancelled = false;
  bool finalized = false;  ///< kComplete emitted; books already closed
  EventFn on_event;
  std::mutex emit_mu;
  /// Telemetry timestamps (guarded by mu_ like the scheduling state).
  std::chrono::steady_clock::time_point submitted{};
  bool ttfr_recorded = false;

  bool claimable() const {
    return state == State::kRunning && next < order.size() &&
           active < cores_granted;
  }
  bool finished() const {
    return next >= order.size() && active == 0;
  }
};

SweepService::SweepService(ServiceOptions opts)
    : bank_(opts.bank ? std::move(opts.bank)
                      : std::make_shared<sim::ScenarioBank>()),
      budget_(std::max(1, sim::resolve_jobs(opts.core_budget))) {
  workers_.reserve(static_cast<std::size_t>(budget_));
  for (int i = 0; i < budget_; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

SweepService::~SweepService() { stop(/*cancel_pending=*/true); }

std::optional<SweepService::Ticket> SweepService::submit(
    std::vector<sim::Scenario> scenarios, int cores_requested,
    EventFn on_event) {
  auto job = std::make_shared<Job>();
  job->scenarios = std::move(scenarios);
  job->on_event = std::move(on_event);

  // Resolve labels and inject the shared symbolic cache, mirroring
  // run_sweep's per-scenario preamble; scenarios carrying their own
  // cache keep it.
  for (sim::Scenario& s : job->scenarios) {
    if (s.label.empty()) s.label = sim::scenario_label(s);
    if (!s.sim.structure_cache) s.sim.structure_cache = bank_->structures();
  }

  // LPT order with the sweep runner's cost model: within the job, the
  // longest-estimated scenario is claimed first so one expensive
  // straggler cannot serialize the job's tail; scenarios whose steady
  // key the shared bank already holds are costed as clone-and-reset.
  std::vector<double> cost(job->scenarios.size(), 0.0);
  {
    std::unordered_set<std::string> seen_steady;
    for (std::size_t i = 0; i < job->scenarios.size(); ++i) {
      const sim::Scenario& s = job->scenarios[i];
      double setup_factor = 1.0;
      const std::string key = sim::scenario_steady_key(s);
      if (!seen_steady.insert(key).second || bank_->has_steady(key)) {
        setup_factor = sim::kPreparedScenarioSetupFactor;
      }
      cost[i] = sim::estimated_scenario_cost(s, setup_factor);
    }
  }
  job->order.resize(job->scenarios.size());
  for (std::size_t i = 0; i < job->order.size(); ++i) job->order[i] = i;
  std::stable_sort(job->order.begin(), job->order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return cost[a] > cost[b];
                   });

  Ticket ticket;
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (draining_ || stopping_) return std::nullopt;
    job->submitted = std::chrono::steady_clock::now();
    job->id = next_job_id_++;
    job->cores_requested = std::clamp(
        cores_requested, 1,
        std::max(1, std::min(budget_,
                             static_cast<int>(job->scenarios.size()))));
    queue_.push_back(job);
    try_admit_locked();
    ticket.job_id = job->id;
    ticket.admitted = job->state == Job::State::kRunning;
    if (!ticket.admitted) {
      const auto it = std::find(queue_.begin(), queue_.end(), job);
      ticket.queue_position =
          static_cast<std::uint32_t>(it - queue_.begin());
    }
  }
  work_cv_.notify_all();

  // An empty job has nothing to schedule: complete it right away so the
  // client's stream still terminates.
  if (job->scenarios.empty()) {
    std::lock_guard<std::mutex> em(job->emit_mu);
    bool finalize = false;
    JobEvent ev;
    {
      std::lock_guard<std::mutex> lk(mu_);
      if (!job->finalized) {
        ev = finalize_locked(job);
        finalize = true;
      }
    }
    if (finalize) emit(job, ev);
  }
  return ticket;
}

bool SweepService::cancel(std::uint32_t job_id) {
  std::shared_ptr<Job> job;
  {
    std::lock_guard<std::mutex> lk(mu_);
    for (const auto& j : queue_) {
      if (j->id == job_id) job = j;
    }
    for (const auto& j : running_) {
      if (j->id == job_id) job = j;
    }
  }
  if (!job) return false;

  std::lock_guard<std::mutex> em(job->emit_mu);
  bool finalize = false;
  JobEvent ev;
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (job->finalized) return true;
    switch (job->state) {
      case Job::State::kQueued: {
        const auto it = std::find(queue_.begin(), queue_.end(), job);
        if (it == queue_.end()) return false;  // finalized meanwhile
        queue_.erase(it);
        job->state = Job::State::kCancelled;
        job->was_cancelled = true;
        job->cancelled =
            static_cast<std::uint32_t>(job->scenarios.size());
        cancelled_total_ += job->cancelled;
        ev = finalize_locked(job);
        finalize = true;
        break;
      }
      case Job::State::kRunning: {
        const std::uint32_t skipped =
            static_cast<std::uint32_t>(job->order.size() - job->next);
        job->next = job->order.size();
        job->cancelled += skipped;
        cancelled_total_ += skipped;
        job->state = Job::State::kCancelled;
        job->was_cancelled = true;
        if (job->active == 0) {
          ev = finalize_locked(job);
          finalize = true;
        }
        // else: the last in-flight worker finalizes on its way out.
        break;
      }
      case Job::State::kCancelled:
        return true;
    }
  }
  if (finalize) {
    emit(job, ev);
    work_cv_.notify_all();
  }
  return true;
}

void SweepService::drain() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    draining_ = true;
  }
  stop(/*cancel_pending=*/false);
}

ServiceStatus SweepService::status() const {
  ServiceStatus st;
  {
    std::lock_guard<std::mutex> lk(mu_);
    st.active_jobs = static_cast<std::uint32_t>(running_.size());
    st.queued_jobs = static_cast<std::uint32_t>(queue_.size());
    st.scenarios_completed = done_total_;
    st.scenarios_failed = failed_total_;
    st.scenarios_cancelled = cancelled_total_;
    st.core_budget = static_cast<std::uint32_t>(budget_);
    st.cores_in_use = static_cast<std::uint32_t>(cores_in_use_);
    st.draining = draining_;
  }
  st.bank = bank_->counters();
  return st;
}

void SweepService::try_admit_locked() {
  // FIFO with head-of-line blocking: a large request waits for cores
  // rather than being overtaken forever by small ones (and is never
  // refused — the admission queue is the backpressure).
  while (!queue_.empty()) {
    const std::shared_ptr<Job>& head = queue_.front();
    const int grant = head->cores_requested;
    if (cores_in_use_ + grant > budget_) break;
    head->cores_granted = grant;
    head->state = Job::State::kRunning;
    sm().admission_wait.record(ms_since(head->submitted));
    cores_in_use_ += grant;
    running_.push_back(head);
    queue_.erase(queue_.begin());
  }
  sm().queue_depth.set(static_cast<double>(queue_.size()));
  sm().active_jobs.set(static_cast<double>(running_.size()));
  sm().cores_in_use.set(static_cast<double>(cores_in_use_));
}

JobEvent SweepService::finalize_locked(
    const std::shared_ptr<Job>& job) {
  job->finalized = true;
  const auto it = std::find(running_.begin(), running_.end(), job);
  if (it != running_.end()) {
    running_.erase(it);
    cores_in_use_ -= job->cores_granted;
    job->cores_granted = 0;
    try_admit_locked();
  }
  if (job->cancelled > 0) sm().cancelled.add(job->cancelled);
  sm().queue_depth.set(static_cast<double>(queue_.size()));
  sm().active_jobs.set(static_cast<double>(running_.size()));
  sm().cores_in_use.set(static_cast<double>(cores_in_use_));
  JobEvent ev;
  ev.kind = JobEvent::Kind::kComplete;
  ev.job_id = job->id;
  ev.completed = job->completed;
  ev.failed = job->failed;
  ev.cancelled = job->cancelled;
  ev.was_cancelled = job->was_cancelled;
  if (running_.empty() && queue_.empty()) idle_cv_.notify_all();
  return ev;
}

void SweepService::emit(const std::shared_ptr<Job>& job, const JobEvent& ev) {
  // Caller holds job->emit_mu. A throwing sink (dead socket, broken
  // client) must not unwind through a worker.
  if (!job->on_event) return;
  try {
    job->on_event(ev);
  } catch (...) {
  }
}

void SweepService::worker_loop() {
  for (;;) {
    std::shared_ptr<Job> job;
    std::size_t task = 0;
    {
      std::unique_lock<std::mutex> lk(mu_);
      work_cv_.wait(lk, [&] {
        if (stopping_) return true;
        return std::any_of(running_.begin(), running_.end(),
                           [](const auto& j) { return j->claimable(); });
      });
      for (const auto& j : running_) {
        if (j->claimable()) {
          job = j;
          break;
        }
      }
      if (!job) {
        if (stopping_) return;
        continue;  // spurious wake or task claimed by a sibling
      }
      task = job->order[job->next++];
      ++job->active;
    }

    JobEvent ev;
    ev.kind = JobEvent::Kind::kResult;
    ev.job_id = job->id;
    ev.index = static_cast<std::uint32_t>(task);
    try {
      obs::TraceSpan job_span("sweep/job");
      sim::PreparedScenario prepared =
          bank_->prepare(job->scenarios[task]);
      sim::SimulationSession session = prepared.session();
      session.run_to_end();
      ev.metrics = session.metrics();
      ev.ok = true;
    } catch (const std::exception& e) {
      ev.error = e.what();
    } catch (...) {
      ev.error = "unknown error";
    }

    std::unique_lock<std::mutex> em(job->emit_mu);
    bool finalize = false;
    JobEvent complete;
    {
      std::lock_guard<std::mutex> lk(mu_);
      --job->active;
      if (!job->ttfr_recorded) {
        job->ttfr_recorded = true;
        sm().ttfr.record(ms_since(job->submitted));
      }
      if (ev.ok) {
        ++job->completed;
        ++done_total_;
        sm().done.add();
      } else {
        ++job->failed;
        ++failed_total_;
        sm().failed.add();
      }
      if (job->finished() && !job->finalized) {
        complete = finalize_locked(job);
        finalize = true;
      }
    }
    emit(job, ev);
    if (finalize) {
      emit(job, complete);
      em.unlock();
      work_cv_.notify_all();
    }
  }
}

void SweepService::stop(bool cancel_pending) {
  if (cancel_pending) {
    // Snapshot every live job id, then cancel through the regular path
    // (which respects the emit ordering and releases cores).
    std::vector<std::uint32_t> ids;
    {
      std::lock_guard<std::mutex> lk(mu_);
      draining_ = true;
      for (const auto& j : queue_) ids.push_back(j->id);
      for (const auto& j : running_) ids.push_back(j->id);
    }
    for (const std::uint32_t id : ids) cancel(id);
  }
  {
    std::unique_lock<std::mutex> lk(mu_);
    idle_cv_.wait(lk, [&] { return running_.empty() && queue_.empty(); });
    if (joined_) return;
    stopping_ = true;
    joined_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

}  // namespace tac3d::service
