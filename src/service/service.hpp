#pragma once
/// \file service.hpp
/// \brief SweepService: the long-lived compute core of sweep-as-a-service.
///
/// One process-wide ScenarioBank + StructureCache serves every client:
/// concurrent submissions that share stacks/traces/steady keys hit the
/// warm tiers instead of re-compiling, exactly as repeated run_sweep()
/// calls against a caller-owned bank do — and with the same
/// bitwise-neutrality guarantee, so a scenario's metrics are identical
/// whether it ran through the service, a sweep, or a from-scratch
/// session.
///
/// Admission control: the service owns a fixed pool of core_budget
/// worker threads. Each submitted job declares how many cores it wants;
/// jobs are admitted FIFO while the sum of granted cores fits the
/// budget, and a job that would exceed it is queued — never refused.
/// Within an admitted job, scenarios run longest-estimated-first (the
/// sweep runner's LPT cost model, steady-tier discounts included) on the
/// job's granted cores, and every finished scenario is streamed to the
/// job's event callback immediately — time-to-first-result does not wait
/// for sweep end.
///
/// Robustness contract: a cancelled job (client disconnect) skips its
/// pending scenarios but lets in-flight ones finish — other jobs are
/// untouched; a scenario that throws is reported as that scenario's
/// error without poisoning its job or any other client; drain() stops
/// admissions and completes all accepted work before returning.

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "sim/bank.hpp"
#include "sim/experiment.hpp"

namespace tac3d::service {

struct ServiceOptions {
  /// Worker threads (= admissible cores). <= 0 defers to TAC3D_JOBS /
  /// hardware concurrency via sim::resolve_jobs.
  int core_budget = 0;
  /// Shared prepared-scenario bank; null = the service creates its own.
  /// Handing in a pre-warmed bank makes the first requests construction-
  /// free too.
  std::shared_ptr<sim::ScenarioBank> bank;
};

/// One streamed event of a job: a finished scenario or the job's end.
struct JobEvent {
  enum class Kind { kResult, kComplete };
  Kind kind = Kind::kResult;
  std::uint32_t job_id = 0;

  // kResult
  std::uint32_t index = 0;  ///< position in the submitted scenario list
  bool ok = false;
  sim::SimMetrics metrics;  ///< valid when ok
  std::string error;        ///< non-empty when !ok

  // kComplete
  std::uint32_t completed = 0;
  std::uint32_t failed = 0;
  std::uint32_t cancelled = 0;
  bool was_cancelled = false;
};

/// Point-in-time service counters (see protocol::StatusMsg).
struct ServiceStatus {
  std::uint32_t active_jobs = 0;
  std::uint32_t queued_jobs = 0;
  std::uint64_t scenarios_completed = 0;
  std::uint64_t scenarios_failed = 0;
  std::uint64_t scenarios_cancelled = 0;
  std::uint32_t core_budget = 0;
  std::uint32_t cores_in_use = 0;
  bool draining = false;
  sim::BankCounters bank;
};

class SweepService {
 public:
  /// Job event sink. Invoked from worker threads; calls of one job are
  /// serialized and ordered (every kResult strictly before the job's
  /// kComplete), calls of different jobs may interleave. Exceptions
  /// thrown by the callback are swallowed (a dead client must not take
  /// the worker down).
  using EventFn = std::function<void(const JobEvent&)>;

  struct Ticket {
    std::uint32_t job_id = 0;
    bool admitted = false;         ///< false = waiting in admission queue
    std::uint32_t queue_position = 0;  ///< 0-based, valid when !admitted
  };

  explicit SweepService(ServiceOptions opts = {});
  /// Cancels pending work (in-flight scenarios finish) and joins the
  /// workers. Use drain() first for a graceful finish-everything stop.
  ~SweepService();

  SweepService(const SweepService&) = delete;
  SweepService& operator=(const SweepService&) = delete;

  /// Queue a job of \p scenarios weighted as \p cores_requested cores
  /// (clamped to [1, core_budget] and to the scenario count). Returns
  /// nullopt when the service is draining — the caller maps that to a
  /// typed rejection. Empty scenario lists are rejected by the caller
  /// (protocol::ServiceError::kBadRequest); submitting one anyway yields
  /// an immediate empty kComplete.
  std::optional<Ticket> submit(std::vector<sim::Scenario> scenarios,
                               int cores_requested, EventFn on_event);

  /// Cancel a job: a queued job completes immediately as fully
  /// cancelled; a running job skips its pending scenarios while
  /// in-flight ones finish and stream normally. The job's kComplete
  /// event carries was_cancelled. Returns false for unknown/finished
  /// ids.
  bool cancel(std::uint32_t job_id);

  /// Stop admitting (submit returns nullopt) and block until every
  /// accepted job — running or queued — has fully completed, then stop
  /// the workers. Idempotent; concurrent callers all block until done.
  void drain();

  ServiceStatus status() const;

  const std::shared_ptr<sim::ScenarioBank>& bank() const { return bank_; }
  int core_budget() const { return budget_; }

 private:
  struct Job;

  void worker_loop();
  /// Admit queued jobs while their grants fit the free budget (FIFO,
  /// head-of-line). Caller holds mu_.
  void try_admit_locked();
  /// Release a finished/cancelled job's cores, erase it, fill its
  /// kComplete event. Caller holds mu_ (and the job's emit_mu).
  JobEvent finalize_locked(const std::shared_ptr<Job>& job);
  void emit(const std::shared_ptr<Job>& job, const JobEvent& ev);
  void stop(bool cancel_pending);

  std::shared_ptr<sim::ScenarioBank> bank_;
  int budget_ = 1;

  mutable std::mutex mu_;
  std::condition_variable work_cv_;  ///< workers: claimable task / stop
  std::condition_variable idle_cv_;  ///< drain: all accepted work done
  std::vector<std::shared_ptr<Job>> queue_;    ///< admission FIFO
  std::vector<std::shared_ptr<Job>> running_;  ///< admission order
  std::uint32_t next_job_id_ = 1;
  int cores_in_use_ = 0;
  bool draining_ = false;
  bool stopping_ = false;
  bool joined_ = false;
  std::uint64_t done_total_ = 0, failed_total_ = 0, cancelled_total_ = 0;

  std::vector<std::thread> workers_;
};

}  // namespace tac3d::service
