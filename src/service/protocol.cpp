#include "service/protocol.hpp"

#include <bit>
#include <cstring>

namespace tac3d::service::protocol {

namespace {

// --- little-endian writer -------------------------------------------------

class Writer {
 public:
  explicit Writer(std::vector<std::uint8_t>& out) : out_(out) {}

  void u8(std::uint8_t v) { out_.push_back(v); }
  void u16(std::uint16_t v) {
    out_.push_back(static_cast<std::uint8_t>(v));
    out_.push_back(static_cast<std::uint8_t>(v >> 8));
  }
  void u32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i) {
      out_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
  }
  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      out_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
  }
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
  void f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }
  void str(const std::string& s) {
    // Encoding is trusted (our own messages); decoding enforces the cap.
    u32(static_cast<std::uint32_t>(s.size()));
    out_.insert(out_.end(), s.begin(), s.end());
  }

 private:
  std::vector<std::uint8_t>& out_;
};

// --- bounds-checked little-endian reader ----------------------------------

/// Every read checks the remaining byte count and latches kTruncated on
/// underflow; subsequent reads return zeros. Callers check ok() (or the
/// latched error) once at the end instead of after every field — no read
/// ever touches memory past the payload.
class Reader {
 public:
  explicit Reader(std::span<const std::uint8_t> data) : data_(data) {}

  bool ok() const { return error_ == DecodeError::kOk; }
  DecodeError error() const { return error_; }
  std::size_t remaining() const { return data_.size() - pos_; }

  void fail(DecodeError e) {
    if (error_ == DecodeError::kOk) error_ = e;
  }

  std::uint8_t u8() {
    if (!take(1)) return 0;
    return data_[pos_++];
  }
  std::uint16_t u16() {
    if (!take(2)) return 0;
    std::uint16_t v = 0;
    for (int i = 0; i < 2; ++i) {
      v = static_cast<std::uint16_t>(v | (static_cast<std::uint16_t>(
                                             data_[pos_ + static_cast<std::size_t>(i)])
                                         << (8 * i)));
    }
    pos_ += 2;
    return v;
  }
  std::uint32_t u32() {
    if (!take(4)) return 0;
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<std::uint32_t>(data_[pos_ + static_cast<std::size_t>(i)])
           << (8 * i);
    }
    pos_ += 4;
    return v;
  }
  std::uint64_t u64() {
    if (!take(8)) return 0;
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<std::uint64_t>(data_[pos_ + static_cast<std::size_t>(i)])
           << (8 * i);
    }
    pos_ += 8;
    return v;
  }
  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
  double f64() { return std::bit_cast<double>(u64()); }

  std::string str() {
    const std::uint32_t n = u32();
    if (!ok()) return {};
    if (n > kMaxStringBytes) {
      fail(DecodeError::kBadValue);
      return {};
    }
    if (!take(n)) return {};
    std::string s(reinterpret_cast<const char*>(data_.data() + pos_), n);
    pos_ += n;
    return s;
  }

  /// A bounded count prefix (vector lengths). Rejects values above
  /// \p max with kBadValue so a hostile count cannot drive a huge
  /// reserve or a quadratic loop.
  std::uint32_t count(std::uint32_t max) {
    const std::uint32_t n = u32();
    if (ok() && n > max) fail(DecodeError::kBadValue);
    return ok() ? n : 0;
  }

 private:
  bool take(std::size_t n) {
    if (!ok()) return false;
    if (remaining() < n) {
      error_ = DecodeError::kTruncated;
      return false;
    }
    return true;
  }

  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
  DecodeError error_ = DecodeError::kOk;
};

// --- scenario / metrics codecs --------------------------------------------

void encode_scenario(Writer& w, const sim::Scenario& s) {
  w.str(s.label);
  w.u8(static_cast<std::uint8_t>(s.tiers));
  w.u8(static_cast<std::uint8_t>(s.policy));
  w.u8(s.cooling.has_value() ? 1 : 0);
  w.u8(s.cooling ? static_cast<std::uint8_t>(*s.cooling) : 0);
  w.u8(static_cast<std::uint8_t>(s.workload));
  w.u32(static_cast<std::uint32_t>(s.trace_seconds));
  w.u64(s.seed);
  w.u16(static_cast<std::uint16_t>(s.grid.rows));
  w.u16(static_cast<std::uint16_t>(s.grid.cols));
  w.u8(s.grid.discrete_channels ? 1 : 0);
  w.u16(static_cast<std::uint16_t>(s.grid.x_refine));
  w.u16(static_cast<std::uint16_t>(s.grid.z_refine));
  w.u8(static_cast<std::uint8_t>(s.sim.solver));
  w.f64(s.sim.control_dt);
  w.f64(s.sim.duration);
  w.f64(s.sim.solver_tolerance);
  w.u32(static_cast<std::uint32_t>(s.sim.init_iterations));
}

sim::Scenario decode_scenario(Reader& r) {
  sim::Scenario s;
  s.label = r.str();
  s.tiers = r.u8();
  const std::uint8_t policy = r.u8();
  const std::uint8_t has_cooling = r.u8();
  const std::uint8_t cooling = r.u8();
  const std::uint8_t workload = r.u8();
  s.trace_seconds = static_cast<int>(r.u32());
  s.seed = r.u64();
  s.grid.rows = r.u16();
  s.grid.cols = r.u16();
  s.grid.discrete_channels = r.u8() != 0;
  s.grid.x_refine = r.u16();
  s.grid.z_refine = r.u16();
  const std::uint8_t solver = r.u8();
  s.sim.control_dt = r.f64();
  s.sim.duration = r.f64();
  s.sim.solver_tolerance = r.f64();
  s.sim.init_iterations = static_cast<int>(r.u32());
  if (!r.ok()) return s;
  // Range-validate every enum before the cast becomes a live value.
  if (policy > static_cast<std::uint8_t>(sim::PolicyKind::kLcFuzzy) ||
      has_cooling > 1 ||
      cooling > static_cast<std::uint8_t>(arch::CoolingKind::kLiquidCooled) ||
      workload > static_cast<std::uint8_t>(power::WorkloadKind::kPeriodic) ||
      solver > static_cast<std::uint8_t>(sparse::SolverKind::kBicgstabJacobi)) {
    r.fail(DecodeError::kBadValue);
    return s;
  }
  s.policy = static_cast<sim::PolicyKind>(policy);
  if (has_cooling) s.cooling = static_cast<arch::CoolingKind>(cooling);
  s.workload = static_cast<power::WorkloadKind>(workload);
  s.sim.solver = static_cast<sparse::SolverKind>(solver);
  return s;
}

void encode_metrics(Writer& w, const sim::SimMetrics& m) {
  w.f64(m.duration);
  w.f64(m.any_hot_time);
  w.f64(m.peak_temp);
  w.f64(m.chip_energy);
  w.f64(m.pump_energy);
  w.f64(m.offered_work);
  w.f64(m.lost_work);
  w.f64(m.avg_flow_fraction);
  w.i64(m.migrations);
  w.u32(static_cast<std::uint32_t>(m.core_hot_time.size()));
  for (const double t : m.core_hot_time) w.f64(t);
}

sim::SimMetrics decode_metrics(Reader& r) {
  sim::SimMetrics m;
  m.duration = r.f64();
  m.any_hot_time = r.f64();
  m.peak_temp = r.f64();
  m.chip_energy = r.f64();
  m.pump_energy = r.f64();
  m.offered_work = r.f64();
  m.lost_work = r.f64();
  m.avg_flow_fraction = r.f64();
  m.migrations = r.i64();
  // 1024 cores is far beyond any modeled chip; the cap bounds the
  // allocation a hostile count could demand.
  const std::uint32_t n = r.count(1024);
  // A truthful count still cannot outrun the payload: each entry is 8
  // bytes, so an overlong count fails as kTruncated on the first read.
  for (std::uint32_t i = 0; i < n && r.ok(); ++i) {
    m.core_hot_time.push_back(r.f64());
  }
  return m;
}

void encode_metric_entry(Writer& w, const MetricEntryMsg& e) {
  w.str(e.name);
  w.u8(e.kind);
  w.u64(e.count);
  w.f64(e.value);
  w.f64(e.min);
  w.f64(e.max);
  w.u32(static_cast<std::uint32_t>(e.buckets.size()));
  for (const auto& [idx, c] : e.buckets) {
    w.u8(idx);
    w.u64(c);
  }
}

MetricEntryMsg decode_metric_entry(Reader& r) {
  MetricEntryMsg e;
  e.name = r.str();
  e.kind = r.u8();
  e.count = r.u64();
  e.value = r.f64();
  e.min = r.f64();
  e.max = r.f64();
  if (r.ok() && e.kind > MetricEntryMsg::kHistogram) {
    r.fail(DecodeError::kBadValue);
    return e;
  }
  // Each bucket is 9 bytes, so a truthful count cannot outrun the
  // payload; the cap bounds what a hostile one may reserve.
  const std::uint32_t n = r.count(kMaxMetricBuckets);
  for (std::uint32_t i = 0; i < n && r.ok(); ++i) {
    const std::uint8_t idx = r.u8();
    const std::uint64_t c = r.u64();
    e.buckets.emplace_back(idx, c);
  }
  return e;
}

}  // namespace

const char* decode_error_name(DecodeError e) {
  switch (e) {
    case DecodeError::kOk: return "ok";
    case DecodeError::kTruncated: return "truncated";
    case DecodeError::kOversized: return "oversized";
    case DecodeError::kUnknownType: return "unknown-type";
    case DecodeError::kVersionMismatch: return "version-mismatch";
    case DecodeError::kMalformed: return "malformed";
    case DecodeError::kBadValue: return "bad-value";
  }
  return "invalid-error-code";
}

MsgType msg_type(const Message& msg) {
  struct Visitor {
    MsgType operator()(const SubmitSweepMsg&) { return MsgType::kSubmitSweep; }
    MsgType operator()(const WhatIfMsg&) { return MsgType::kWhatIf; }
    MsgType operator()(const QueryStatusMsg&) { return MsgType::kQueryStatus; }
    MsgType operator()(const CancelMsg&) { return MsgType::kCancel; }
    MsgType operator()(const ShutdownDrainMsg&) {
      return MsgType::kShutdownDrain;
    }
    MsgType operator()(const SubmitAckMsg&) { return MsgType::kSubmitAck; }
    MsgType operator()(const ScenarioResultMsg&) {
      return MsgType::kScenarioResult;
    }
    MsgType operator()(const SweepCompleteMsg&) {
      return MsgType::kSweepComplete;
    }
    MsgType operator()(const StatusMsg&) { return MsgType::kStatus; }
    MsgType operator()(const ErrorMsg&) { return MsgType::kError; }
    MsgType operator()(const DrainCompleteMsg&) {
      return MsgType::kDrainComplete;
    }
    MsgType operator()(const QueryMetricsMsg&) {
      return MsgType::kQueryMetrics;
    }
    MsgType operator()(const MetricsMsg&) { return MsgType::kMetrics; }
  };
  return std::visit(Visitor{}, msg);
}

std::vector<std::uint8_t> encode_frame(const Message& msg) {
  std::vector<std::uint8_t> out;
  Writer w(out);
  w.u32(0);  // length placeholder
  w.u8(kProtocolVersion);
  w.u8(static_cast<std::uint8_t>(msg_type(msg)));

  struct Visitor {
    Writer& w;
    void operator()(const SubmitSweepMsg& m) {
      w.u32(m.client_tag);
      w.u16(m.cores_requested);
      w.u32(static_cast<std::uint32_t>(m.scenarios.size()));
      for (const sim::Scenario& s : m.scenarios) encode_scenario(w, s);
    }
    void operator()(const WhatIfMsg& m) {
      w.u32(m.client_tag);
      encode_scenario(w, m.scenario);
    }
    void operator()(const QueryStatusMsg& m) { w.u32(m.job_id); }
    void operator()(const CancelMsg& m) { w.u32(m.job_id); }
    void operator()(const ShutdownDrainMsg&) {}
    void operator()(const SubmitAckMsg& m) {
      w.u32(m.client_tag);
      w.u32(m.job_id);
      w.u8(m.admitted);
      w.u32(m.queue_position);
    }
    void operator()(const ScenarioResultMsg& m) {
      w.u32(m.job_id);
      w.u32(m.index);
      w.u8(m.ok);
      if (m.ok) {
        encode_metrics(w, m.metrics);
      } else {
        w.str(m.error);
      }
    }
    void operator()(const SweepCompleteMsg& m) {
      w.u32(m.job_id);
      w.u32(m.completed);
      w.u32(m.failed);
      w.u32(m.cancelled);
      w.u8(m.was_cancelled);
    }
    void operator()(const StatusMsg& m) {
      w.u32(m.active_jobs);
      w.u32(m.queued_jobs);
      w.u64(m.scenarios_completed);
      w.u64(m.scenarios_failed);
      w.u64(m.scenarios_cancelled);
      w.u32(m.core_budget);
      w.u32(m.cores_in_use);
      w.u8(m.draining);
      w.u64(m.bank_trace_hits);
      w.u64(m.bank_trace_misses);
      w.u64(m.bank_model_hits);
      w.u64(m.bank_model_misses);
      w.u64(m.bank_steady_hits);
      w.u64(m.bank_steady_misses);
    }
    void operator()(const ErrorMsg& m) {
      w.u16(m.code);
      w.u32(m.client_tag);
      w.str(m.text);
    }
    void operator()(const DrainCompleteMsg& m) { w.u64(m.scenarios_finished); }
    void operator()(const QueryMetricsMsg&) {}
    void operator()(const MetricsMsg& m) {
      w.u32(static_cast<std::uint32_t>(m.entries.size()));
      for (const MetricEntryMsg& e : m.entries) encode_metric_entry(w, e);
    }
  };
  std::visit(Visitor{w}, msg);

  const std::uint32_t payload =
      static_cast<std::uint32_t>(out.size() - 4);
  for (int i = 0; i < 4; ++i) {
    out[static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(payload >> (8 * i));
  }
  return out;
}

Decoded decode_payload(std::span<const std::uint8_t> payload) {
  Decoded d;
  Reader r(payload);
  const std::uint8_t version = r.u8();
  const std::uint8_t tag = r.u8();
  if (!r.ok()) {
    d.error = DecodeError::kTruncated;
    d.detail = "payload shorter than the version/tag header";
    return d;
  }
  if (version != kProtocolVersion) {
    d.error = DecodeError::kVersionMismatch;
    d.detail = "frame version " + std::to_string(version) + ", expected " +
               std::to_string(kProtocolVersion);
    return d;
  }

  switch (static_cast<MsgType>(tag)) {
    case MsgType::kSubmitSweep: {
      SubmitSweepMsg m;
      m.client_tag = r.u32();
      m.cores_requested = r.u16();
      const std::uint32_t n = r.count(kMaxScenariosPerSubmit);
      for (std::uint32_t i = 0; i < n && r.ok(); ++i) {
        m.scenarios.push_back(decode_scenario(r));
      }
      d.msg = std::move(m);
      break;
    }
    case MsgType::kWhatIf: {
      WhatIfMsg m;
      m.client_tag = r.u32();
      m.scenario = decode_scenario(r);
      d.msg = std::move(m);
      break;
    }
    case MsgType::kQueryStatus: {
      QueryStatusMsg m;
      m.job_id = r.u32();
      d.msg = m;
      break;
    }
    case MsgType::kCancel: {
      CancelMsg m;
      m.job_id = r.u32();
      d.msg = m;
      break;
    }
    case MsgType::kShutdownDrain:
      d.msg = ShutdownDrainMsg{};
      break;
    case MsgType::kSubmitAck: {
      SubmitAckMsg m;
      m.client_tag = r.u32();
      m.job_id = r.u32();
      m.admitted = r.u8();
      m.queue_position = r.u32();
      if (r.ok() && m.admitted > 1) r.fail(DecodeError::kBadValue);
      d.msg = m;
      break;
    }
    case MsgType::kScenarioResult: {
      ScenarioResultMsg m;
      m.job_id = r.u32();
      m.index = r.u32();
      m.ok = r.u8();
      if (r.ok() && m.ok > 1) {
        r.fail(DecodeError::kBadValue);
      } else if (m.ok) {
        m.metrics = decode_metrics(r);
      } else {
        m.error = r.str();
      }
      d.msg = std::move(m);
      break;
    }
    case MsgType::kSweepComplete: {
      SweepCompleteMsg m;
      m.job_id = r.u32();
      m.completed = r.u32();
      m.failed = r.u32();
      m.cancelled = r.u32();
      m.was_cancelled = r.u8();
      if (r.ok() && m.was_cancelled > 1) r.fail(DecodeError::kBadValue);
      d.msg = m;
      break;
    }
    case MsgType::kStatus: {
      StatusMsg m;
      m.active_jobs = r.u32();
      m.queued_jobs = r.u32();
      m.scenarios_completed = r.u64();
      m.scenarios_failed = r.u64();
      m.scenarios_cancelled = r.u64();
      m.core_budget = r.u32();
      m.cores_in_use = r.u32();
      m.draining = r.u8();
      m.bank_trace_hits = r.u64();
      m.bank_trace_misses = r.u64();
      m.bank_model_hits = r.u64();
      m.bank_model_misses = r.u64();
      m.bank_steady_hits = r.u64();
      m.bank_steady_misses = r.u64();
      if (r.ok() && m.draining > 1) r.fail(DecodeError::kBadValue);
      d.msg = m;
      break;
    }
    case MsgType::kError: {
      ErrorMsg m;
      m.code = r.u16();
      m.client_tag = r.u32();
      m.text = r.str();
      d.msg = std::move(m);
      break;
    }
    case MsgType::kDrainComplete: {
      DrainCompleteMsg m;
      m.scenarios_finished = r.u64();
      d.msg = m;
      break;
    }
    case MsgType::kQueryMetrics:
      d.msg = QueryMetricsMsg{};
      break;
    case MsgType::kMetrics: {
      MetricsMsg m;
      const std::uint32_t n = r.count(kMaxMetricEntries);
      for (std::uint32_t i = 0; i < n && r.ok(); ++i) {
        m.entries.push_back(decode_metric_entry(r));
      }
      d.msg = std::move(m);
      break;
    }
    default:
      d.error = DecodeError::kUnknownType;
      d.detail = "unknown message tag " + std::to_string(tag);
      return d;
  }

  if (!r.ok()) {
    d.error = r.error();
    d.detail = std::string(decode_error_name(r.error())) +
               " while decoding message tag " + std::to_string(tag);
    return d;
  }
  if (r.remaining() != 0) {
    d.error = DecodeError::kMalformed;
    d.detail = std::to_string(r.remaining()) +
               " trailing bytes after message tag " + std::to_string(tag);
    return d;
  }
  return d;
}

FrameSplit split_frame(std::span<const std::uint8_t> buffer) {
  FrameSplit out;
  if (buffer.size() < 4) return out;  // kNeedMore
  std::uint32_t len = 0;
  for (int i = 0; i < 4; ++i) {
    len |= static_cast<std::uint32_t>(buffer[static_cast<std::size_t>(i)])
           << (8 * i);
  }
  if (len == 0) {
    out.status = FrameSplit::Status::kMalformed;
    out.consumed = 4;
    return out;
  }
  if (len > kMaxFramePayload) {
    out.status = FrameSplit::Status::kOversized;
    out.consumed = 4;
    out.declared_size = len;
    return out;
  }
  if (buffer.size() < 4u + len) return out;  // kNeedMore
  out.status = FrameSplit::Status::kFrame;
  out.consumed = 4u + len;
  out.payload_offset = 4;
  out.payload_size = len;
  return out;
}

}  // namespace tac3d::service::protocol
