#include "service/client.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <utility>

#include "common/error.hpp"

namespace tac3d::service {

namespace proto = protocol;

ServiceClient::~ServiceClient() { close(); }

void ServiceClient::connect(const std::string& host, int port) {
  require(fd_ < 0, "ServiceClient::connect: already connected");
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw Error("socket() failed");

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    throw Error("inet_pton failed for host '" + host + "'");
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    const int err = errno;
    ::close(fd);
    throw Error("connect to " + host + ":" + std::to_string(port) +
                " failed: " + std::strerror(err));
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  fd_ = fd;
}

void ServiceClient::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  buffer_.clear();
  inbox_.clear();
}

void ServiceClient::send_raw(const void* data, std::size_t n) {
  require(fd_ >= 0, "ServiceClient: not connected");
  const auto* bytes = static_cast<const std::uint8_t*>(data);
  std::size_t off = 0;
  while (off < n) {
    const ssize_t w = ::send(fd_, bytes + off, n - off, MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EINTR) continue;
      throw Error("ServiceClient: send failed: " +
                  std::string(std::strerror(errno)));
    }
    off += static_cast<std::size_t>(w);
  }
}

void ServiceClient::send(const proto::Message& msg) {
  const std::vector<std::uint8_t> frame = proto::encode_frame(msg);
  send_raw(frame.data(), frame.size());
}

proto::Message ServiceClient::read_message() {
  require(fd_ >= 0, "ServiceClient: not connected");
  std::uint8_t chunk[4096];
  for (;;) {
    const proto::FrameSplit split = proto::split_frame(buffer_);
    if (split.status == proto::FrameSplit::Status::kFrame) {
      const proto::Decoded decoded = proto::decode_payload(
          std::span<const std::uint8_t>(buffer_).subspan(
              split.payload_offset, split.payload_size));
      buffer_.erase(
          buffer_.begin(),
          buffer_.begin() + static_cast<std::ptrdiff_t>(split.consumed));
      if (!decoded.ok()) {
        throw Error("ServiceClient: undecodable frame from server: " +
                    std::string(proto::decode_error_name(decoded.error)) +
                    " (" + decoded.detail + ")");
      }
      return decoded.msg;
    }
    if (split.status != proto::FrameSplit::Status::kNeedMore) {
      throw Error("ServiceClient: corrupt frame stream from server");
    }
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) throw Error("ServiceClient: connection closed by server");
    buffer_.insert(buffer_.end(), chunk, chunk + n);
  }
}

template <typename Pred>
proto::Message ServiceClient::read_matching(Pred pred) {
  for (auto it = inbox_.begin(); it != inbox_.end(); ++it) {
    if (pred(*it)) {
      proto::Message msg = std::move(*it);
      inbox_.erase(it);
      return msg;
    }
  }
  for (;;) {
    proto::Message msg = read_message();
    if (pred(msg)) return msg;
    inbox_.push_back(std::move(msg));
  }
}

proto::SubmitAckMsg ServiceClient::submit_sweep(
    std::vector<sim::Scenario> scenarios, int cores_requested,
    std::uint32_t client_tag) {
  proto::SubmitSweepMsg req;
  req.client_tag = client_tag;
  req.cores_requested = static_cast<std::uint16_t>(
      std::clamp(cores_requested, 1, 0xFFFF));
  req.scenarios = std::move(scenarios);
  send(req);

  const proto::Message reply = read_matching([&](const proto::Message& m) {
    if (const auto* ack = std::get_if<proto::SubmitAckMsg>(&m)) {
      return ack->client_tag == client_tag;
    }
    if (const auto* err = std::get_if<proto::ErrorMsg>(&m)) {
      return err->client_tag == client_tag;
    }
    return false;
  });
  if (const auto* err = std::get_if<proto::ErrorMsg>(&reply)) {
    throw Error("submit rejected (code " + std::to_string(err->code) +
                "): " + err->text);
  }
  return std::get<proto::SubmitAckMsg>(reply);
}

SweepOutcome ServiceClient::collect(
    std::uint32_t job_id,
    const std::function<void(const proto::ScenarioResultMsg&)>& on_result) {
  SweepOutcome out;
  out.job_id = job_id;
  for (;;) {
    const proto::Message msg = read_matching([&](const proto::Message& m) {
      if (const auto* r = std::get_if<proto::ScenarioResultMsg>(&m)) {
        return r->job_id == job_id;
      }
      if (const auto* c = std::get_if<proto::SweepCompleteMsg>(&m)) {
        return c->job_id == job_id;
      }
      return false;
    });
    if (const auto* r = std::get_if<proto::ScenarioResultMsg>(&msg)) {
      if (on_result) on_result(*r);
      out.results.push_back(*r);
      continue;
    }
    out.complete = std::get<proto::SweepCompleteMsg>(msg);
    break;
  }
  std::sort(out.results.begin(), out.results.end(),
            [](const proto::ScenarioResultMsg& a,
               const proto::ScenarioResultMsg& b) { return a.index < b.index; });
  return out;
}

SweepOutcome ServiceClient::run_sweep(std::vector<sim::Scenario> scenarios,
                                      int cores_requested) {
  const proto::SubmitAckMsg ack =
      submit_sweep(std::move(scenarios), cores_requested);
  return collect(ack.job_id);
}

proto::ScenarioResultMsg ServiceClient::what_if(const sim::Scenario& scenario) {
  proto::WhatIfMsg req;
  req.scenario = scenario;
  send(req);
  const proto::Message reply = read_matching([&](const proto::Message& m) {
    return std::holds_alternative<proto::SubmitAckMsg>(m) ||
           std::holds_alternative<proto::ErrorMsg>(m);
  });
  if (const auto* err = std::get_if<proto::ErrorMsg>(&reply)) {
    throw Error("what-if rejected (code " + std::to_string(err->code) +
                "): " + err->text);
  }
  const std::uint32_t job_id = std::get<proto::SubmitAckMsg>(reply).job_id;
  SweepOutcome out = collect(job_id);
  require(out.results.size() == 1, "what-if job streamed an unexpected count");
  return out.results.front();
}

proto::StatusMsg ServiceClient::query_status() {
  send(proto::QueryStatusMsg{});
  const proto::Message reply = read_matching([](const proto::Message& m) {
    return std::holds_alternative<proto::StatusMsg>(m);
  });
  return std::get<proto::StatusMsg>(reply);
}

proto::MetricsMsg ServiceClient::query_metrics() {
  send(proto::QueryMetricsMsg{});
  const proto::Message reply = read_matching([](const proto::Message& m) {
    return std::holds_alternative<proto::MetricsMsg>(m);
  });
  return std::get<proto::MetricsMsg>(reply);
}

bool ServiceClient::cancel(std::uint32_t job_id) {
  proto::CancelMsg req;
  req.job_id = job_id;
  send(req);
  // Success has no direct reply (the job's stream ends with
  // kSweepComplete); failure is an ErrorMsg{kUnknownJob}. Disambiguate
  // by asking for status afterwards: the status reply acts as a fence —
  // any kUnknownJob error for this cancel was sent before it.
  send(proto::QueryStatusMsg{});
  bool ok = true;
  for (;;) {
    proto::Message msg = read_message();
    if (const auto* err = std::get_if<proto::ErrorMsg>(&msg)) {
      if (err->code ==
          static_cast<std::uint16_t>(proto::ServiceError::kUnknownJob)) {
        ok = false;
        continue;
      }
    }
    if (std::holds_alternative<proto::StatusMsg>(msg)) return ok;
    inbox_.push_back(std::move(msg));
  }
}

void ServiceClient::request_drain() { send(proto::ShutdownDrainMsg{}); }

proto::DrainCompleteMsg ServiceClient::wait_drain_complete() {
  const proto::Message msg = read_matching([](const proto::Message& m) {
    return std::holds_alternative<proto::DrainCompleteMsg>(m);
  });
  return std::get<proto::DrainCompleteMsg>(msg);
}

}  // namespace tac3d::service
