#pragma once
/// \file protocol.hpp
/// \brief Wire protocol of the sweep service: length-prefixed binary
/// frames with versioned message types.
///
/// Framing: every message travels as
///
///   u32 LE payload length | u8 version | u8 message tag | body
///
/// The length counts the payload (version byte onward) and is capped at
/// kMaxFramePayload; a prefix above the cap is reported as kOversized
/// with the declared size, so a server can reject the frame, discard the
/// declared bytes as they arrive and keep the connection alive. All
/// integers are little-endian regardless of host order; doubles travel
/// as their IEEE-754 bit pattern.
///
/// Decoding is defensive by contract: every read is bounds-checked, enum
/// fields are range-validated, strings carry explicit lengths, and a
/// payload must be consumed exactly — any violation yields a typed
/// DecodeError (never UB, never an exception), which
/// tests/test_service_protocol.cpp exercises adversarially under
/// ASan/UBSan.
///
/// Scenarios are self-describing on the wire: the swept axes (stack,
/// policy, workload, trace synthesis, grid, solver, timing) cross, while
/// process-local attachments (shared trace pointers, structure caches,
/// prepared initial states) never do — the serving side re-resolves them
/// through its ScenarioBank, which is bitwise-neutral by construction.

#include <cstdint>
#include <span>
#include <string>
#include <variant>
#include <vector>

#include "sim/experiment.hpp"
#include "sim/metrics.hpp"

namespace tac3d::service::protocol {

/// Protocol version carried by every frame; a mismatch is rejected with
/// DecodeError::kVersionMismatch (no negotiation — the service and its
/// clients ship from one tree).
inline constexpr std::uint8_t kProtocolVersion = 2;

/// Maximum payload bytes of one frame. Generous for the largest real
/// message (a submit of kMaxScenariosPerSubmit scenarios) while keeping
/// a hostile length prefix from reserving gigabytes.
inline constexpr std::uint32_t kMaxFramePayload = 1u << 20;

/// Maximum scenarios one submit-sweep request may carry.
inline constexpr std::uint32_t kMaxScenariosPerSubmit = 4096;

/// Maximum bytes of any string field (labels, error texts).
inline constexpr std::uint32_t kMaxStringBytes = 1u << 14;

/// Message tags. Requests are < 64, responses >= 64; unknown values are
/// rejected with DecodeError::kUnknownType.
enum class MsgType : std::uint8_t {
  // requests
  kSubmitSweep = 1,    ///< run a batch of scenarios, stream the results
  kWhatIf = 2,         ///< single-scenario convenience submit
  kQueryStatus = 3,    ///< server/bank/admission counters
  kCancel = 4,         ///< cancel one job (pending scenarios are skipped)
  kShutdownDrain = 5,  ///< finish accepted work, then shut down
  kQueryMetrics = 6,   ///< live registry snapshot (obs counters/histograms)
  // responses
  kSubmitAck = 64,       ///< job id + admitted-or-queued
  kScenarioResult = 65,  ///< one scenario's metrics, streamed on finish
  kSweepComplete = 66,   ///< end of a job's stream
  kStatus = 67,          ///< answer to kQueryStatus
  kError = 68,           ///< typed rejection (decode or service level)
  kDrainComplete = 69,   ///< all accepted work finished; server stopping
  kMetrics = 70,         ///< answer to kQueryMetrics
};

/// Typed decode failures. Values double as wire error codes (ErrorMsg).
enum class DecodeError : std::uint16_t {
  kOk = 0,
  kTruncated = 1,        ///< payload ended before a field did
  kOversized = 2,        ///< length prefix beyond kMaxFramePayload
  kUnknownType = 3,      ///< unrecognized message tag
  kVersionMismatch = 4,  ///< frame version != kProtocolVersion
  kMalformed = 5,        ///< structurally invalid (zero frame, trailing bytes)
  kBadValue = 6,         ///< enum/range-validated field out of range
};

/// Service-level error codes (share the ErrorMsg::code space with
/// DecodeError; decode codes are < 64, service codes >= 64).
enum class ServiceError : std::uint16_t {
  kRejectedDraining = 64,  ///< submit refused: server is draining
  kBadRequest = 65,        ///< semantically invalid request (0 scenarios)
  kUnknownJob = 66,        ///< cancel/query of a job id never issued
};

const char* decode_error_name(DecodeError e);

// --- message bodies -------------------------------------------------------

struct SubmitSweepMsg {
  std::uint32_t client_tag = 0;  ///< echoed in the ack (client correlation)
  std::uint16_t cores_requested = 1;  ///< admission weight against the budget
  std::vector<sim::Scenario> scenarios;
};

struct WhatIfMsg {
  std::uint32_t client_tag = 0;
  sim::Scenario scenario;
};

struct QueryStatusMsg {
  std::uint32_t job_id = 0;  ///< reserved; 0 = server-wide status
};

struct CancelMsg {
  std::uint32_t job_id = 0;
};

struct ShutdownDrainMsg {};

struct SubmitAckMsg {
  std::uint32_t client_tag = 0;
  std::uint32_t job_id = 0;
  std::uint8_t admitted = 0;        ///< 1 = running, 0 = queued
  std::uint32_t queue_position = 0; ///< 0-based position when queued
};

struct ScenarioResultMsg {
  std::uint32_t job_id = 0;
  std::uint32_t index = 0;  ///< position in the submitted scenario list
  std::uint8_t ok = 0;
  sim::SimMetrics metrics;  ///< valid when ok
  std::string error;        ///< non-empty when !ok
};

struct SweepCompleteMsg {
  std::uint32_t job_id = 0;
  std::uint32_t completed = 0;
  std::uint32_t failed = 0;
  std::uint32_t cancelled = 0;
  std::uint8_t was_cancelled = 0;
};

struct StatusMsg {
  std::uint32_t active_jobs = 0;
  std::uint32_t queued_jobs = 0;
  std::uint64_t scenarios_completed = 0;
  std::uint64_t scenarios_failed = 0;
  std::uint64_t scenarios_cancelled = 0;
  std::uint32_t core_budget = 0;
  std::uint32_t cores_in_use = 0;
  std::uint8_t draining = 0;
  // Shared-bank tier counters (see sim::BankCounters).
  std::uint64_t bank_trace_hits = 0, bank_trace_misses = 0;
  std::uint64_t bank_model_hits = 0, bank_model_misses = 0;
  std::uint64_t bank_steady_hits = 0, bank_steady_misses = 0;
};

struct ErrorMsg {
  std::uint16_t code = 0;        ///< DecodeError or ServiceError value
  std::uint32_t client_tag = 0;  ///< 0 when the request never decoded
  std::string text;
};

struct DrainCompleteMsg {
  std::uint64_t scenarios_finished = 0;  ///< completed over the server's life
};

struct QueryMetricsMsg {};

/// One metric of a registry snapshot on the wire.
struct MetricEntryMsg {
  /// Kinds; range-validated on decode (kBadValue past kHistogram).
  enum : std::uint8_t { kCounter = 0, kGauge = 1, kHistogram = 2 };
  std::string name;        ///< registry name, e.g. "service/ttfr_ms"
  std::uint8_t kind = kCounter;
  std::uint64_t count = 0; ///< counter value / histogram sample count
  double value = 0.0;      ///< gauge value / histogram sum
  double min = 0.0, max = 0.0;  ///< histogram extremes (0 otherwise)
  /// Sparse non-empty histogram buckets: (obs::Histogram index, count).
  std::vector<std::pair<std::uint8_t, std::uint64_t>> buckets;
};

/// Maximum entries of one kMetrics frame / buckets of one entry (the
/// truthful counts cannot outrun the payload cap, but the bounds keep
/// a hostile count from reserving memory up front).
inline constexpr std::uint32_t kMaxMetricEntries = 1024;
inline constexpr std::uint32_t kMaxMetricBuckets = 128;

struct MetricsMsg {
  std::vector<MetricEntryMsg> entries;
};

using Message =
    std::variant<SubmitSweepMsg, WhatIfMsg, QueryStatusMsg, CancelMsg,
                 ShutdownDrainMsg, QueryMetricsMsg, SubmitAckMsg,
                 ScenarioResultMsg, SweepCompleteMsg, StatusMsg, ErrorMsg,
                 DrainCompleteMsg, MetricsMsg>;

MsgType msg_type(const Message& msg);

// --- encode ---------------------------------------------------------------

/// Serialize \p msg into one complete frame (length prefix included).
std::vector<std::uint8_t> encode_frame(const Message& msg);

// --- decode ---------------------------------------------------------------

/// Result of decoding one frame payload.
struct Decoded {
  DecodeError error = DecodeError::kOk;
  std::string detail;  ///< human-readable context on failure
  Message msg;         ///< valid when ok()

  bool ok() const { return error == DecodeError::kOk; }
};

/// Decode one payload (the bytes after the length prefix). Never throws,
/// never reads out of bounds; rejects unknown tags, version mismatches,
/// truncated/overlong bodies and out-of-range enum values with the
/// matching DecodeError.
Decoded decode_payload(std::span<const std::uint8_t> payload);

/// Stream-splitting outcome of split_frame().
struct FrameSplit {
  enum class Status {
    kNeedMore,   ///< buffer holds no complete frame yet
    kFrame,      ///< one payload available at [payload_offset, +payload_size)
    kOversized,  ///< length prefix exceeds kMaxFramePayload
    kMalformed,  ///< zero-length frame
  };
  Status status = Status::kNeedMore;
  std::size_t consumed = 0;        ///< bytes to drop from the buffer head
  std::size_t payload_offset = 0;  ///< valid for kFrame
  std::size_t payload_size = 0;    ///< valid for kFrame
  /// kOversized: payload bytes the peer declared (still in flight); the
  /// server discards exactly this many bytes to stay frame-aligned
  /// without buffering them.
  std::uint64_t declared_size = 0;
};

/// Find the first complete frame at the head of \p buffer. kFrame
/// consumes prefix+payload; kOversized/kMalformed consume only the
/// 4-byte prefix (the caller discards declared_size bytes for
/// kOversized).
FrameSplit split_frame(std::span<const std::uint8_t> buffer);

}  // namespace tac3d::service::protocol
