#include "service/server.hpp"

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <mutex>

#include "common/error.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "service/protocol.hpp"

namespace tac3d::service {

namespace proto = protocol;

/// One client connection: the socket, its reader thread, the write lock
/// that serializes ack/stream frames, and the job ids submitted over it
/// (cancelled as a group when the peer goes away). Held by shared_ptr:
/// job event callbacks keep the connection alive until their job is
/// fully finalized, even after the acceptor reaped it.
struct ServiceServer::Connection {
  int fd = -1;
  std::thread reader;
  std::mutex write_mu;
  bool dead = false;  ///< guarded by write_mu; set before fd close
  std::mutex jobs_mu;
  std::vector<std::uint32_t> jobs;
  bool done = false;  ///< guarded by the server mu_; reader has exited
};

namespace {

/// write() the whole buffer; EINTR-safe; false when the peer is gone.
/// MSG_NOSIGNAL keeps a dead peer from raising SIGPIPE in a worker.
bool send_all(int fd, const std::uint8_t* data, std::size_t n) {
  std::size_t off = 0;
  while (off < n) {
    const ssize_t w = ::send(fd, data + off, n - off, MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (w == 0) return false;
    off += static_cast<std::size_t>(w);
  }
  return true;
}

}  // namespace

ServiceServer::ServiceServer(ServerOptions opts) : opts_(std::move(opts)) {}

ServiceServer::~ServiceServer() { stop(); }

void ServiceServer::start() {
  require(listen_fd_ < 0, "ServiceServer::start: already started");
  service_ = std::make_unique<SweepService>(opts_.service);

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) throw Error("socket() failed");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(opts_.port));
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
             sizeof(addr)) < 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw Error("bind() failed on 127.0.0.1:" + std::to_string(opts_.port) +
                ": " + std::strerror(errno));
  }
  if (::listen(listen_fd_, opts_.backlog) < 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw Error("listen() failed");
  }
  socklen_t len = sizeof(addr);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);

  {
    std::lock_guard<std::mutex> lk(mu_);
    accepting_ = true;
  }
  acceptor_ = std::thread([this] { accept_loop(); });
}

void ServiceServer::accept_loop() {
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // listening socket closed: shutting down
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    std::lock_guard<std::mutex> lk(mu_);
    reap_finished_locked();
    if (!accepting_) {
      ::close(fd);
      continue;
    }
    auto conn = std::make_shared<Connection>();
    conn->fd = fd;
    conns_.push_back(conn);
    conn->reader = std::thread([this, conn] { connection_loop(conn); });
  }
}

void ServiceServer::reap_finished_locked() {
  for (auto it = conns_.begin(); it != conns_.end();) {
    Connection& conn = **it;
    if (!conn.done) {
      ++it;
      continue;
    }
    if (conn.reader.joinable()) conn.reader.join();
    {
      // Late job events may still hold this Connection; make sure they
      // see dead before the fd number can be reused.
      std::lock_guard<std::mutex> wl(conn.write_mu);
      conn.dead = true;
    }
    ::close(conn.fd);
    conn.fd = -1;
    it = conns_.erase(it);
  }
}

void ServiceServer::connection_loop(const std::shared_ptr<Connection>& conn) {
  std::vector<std::uint8_t> buffer;
  std::uint64_t discard = 0;  ///< oversized-frame payload bytes to drop
  std::uint8_t chunk[4096];

  for (;;) {
    const ssize_t n = ::recv(conn->fd, chunk, sizeof(chunk), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;  // EOF or error: peer is gone

    std::size_t off = 0;
    if (discard > 0) {
      const std::size_t drop =
          std::min<std::uint64_t>(discard, static_cast<std::uint64_t>(n));
      discard -= drop;
      off = drop;
    }
    buffer.insert(buffer.end(), chunk + off, chunk + n);

    for (;;) {
      const proto::FrameSplit split = proto::split_frame(buffer);
      if (split.status == proto::FrameSplit::Status::kNeedMore) break;

      if (split.status == proto::FrameSplit::Status::kMalformed) {
        proto::ErrorMsg err;
        err.code = static_cast<std::uint16_t>(proto::DecodeError::kMalformed);
        err.text = "zero-length frame";
        send_frame(*conn, err);
      } else if (split.status == proto::FrameSplit::Status::kOversized) {
        proto::ErrorMsg err;
        err.code = static_cast<std::uint16_t>(proto::DecodeError::kOversized);
        err.text = "frame payload of " + std::to_string(split.declared_size) +
                   " bytes exceeds the " +
                   std::to_string(proto::kMaxFramePayload) + "-byte limit";
        send_frame(*conn, err);
        // Stay frame-aligned: drop the declared payload — the buffered
        // part now, the rest as it arrives — then keep serving.
        std::uint64_t pending = split.declared_size;
        const std::size_t buffered = std::min<std::uint64_t>(
            pending, buffer.size() - split.consumed);
        pending -= buffered;
        buffer.erase(
            buffer.begin(),
            buffer.begin() +
                static_cast<std::ptrdiff_t>(split.consumed + buffered));
        discard = pending;
        if (discard > 0) break;
        continue;
      } else {
        const proto::Decoded decoded = proto::decode_payload(
            std::span<const std::uint8_t>(buffer).subspan(
                split.payload_offset, split.payload_size));
        if (!decoded.ok()) {
          proto::ErrorMsg err;
          err.code = static_cast<std::uint16_t>(decoded.error);
          err.text = decoded.detail;
          send_frame(*conn, err);
        } else {
          handle_message(conn, decoded.msg);
        }
      }
      buffer.erase(
          buffer.begin(),
          buffer.begin() + static_cast<std::ptrdiff_t>(split.consumed));
    }
  }

  // Peer gone (or sockets shut down): cancel exactly this connection's
  // jobs. In-flight scenarios finish, pending ones are skipped, other
  // clients never notice.
  cancel_connection_jobs(*conn);
  std::lock_guard<std::mutex> lk(mu_);
  conn->done = true;
}

void ServiceServer::handle_message(const std::shared_ptr<Connection>& conn,
                                   const proto::Message& msg) {
  obs::TraceSpan request_span("service/request");
  auto submit = [&](std::uint32_t client_tag,
                    std::vector<sim::Scenario> scenarios, int cores) {
    if (scenarios.empty()) {
      proto::ErrorMsg err;
      err.code = static_cast<std::uint16_t>(proto::ServiceError::kBadRequest);
      err.client_tag = client_tag;
      err.text = "submit with zero scenarios";
      send_frame(*conn, err);
      return;
    }
    // Hold the write lock across submit + ack so a worker finishing the
    // first scenario cannot stream its result ahead of the ack. The
    // callback captures the Connection by shared_ptr: it stays valid
    // until the job's last event, even after the connection was reaped.
    std::unique_lock<std::mutex> wl(conn->write_mu);
    const auto ticket = service_->submit(
        std::move(scenarios), cores, [this, conn](const JobEvent& ev) {
          if (ev.kind == JobEvent::Kind::kResult) {
            proto::ScenarioResultMsg m;
            m.job_id = ev.job_id;
            m.index = ev.index;
            m.ok = ev.ok ? 1 : 0;
            m.metrics = ev.metrics;
            m.error = ev.error;
            send_frame(*conn, m);
          } else {
            proto::SweepCompleteMsg m;
            m.job_id = ev.job_id;
            m.completed = ev.completed;
            m.failed = ev.failed;
            m.cancelled = ev.cancelled;
            m.was_cancelled = ev.was_cancelled ? 1 : 0;
            send_frame(*conn, m);
          }
        });
    if (!ticket) {
      wl.unlock();
      proto::ErrorMsg err;
      err.code =
          static_cast<std::uint16_t>(proto::ServiceError::kRejectedDraining);
      err.client_tag = client_tag;
      err.text = "server is draining; not accepting new work";
      send_frame(*conn, err);
      return;
    }
    {
      std::lock_guard<std::mutex> jl(conn->jobs_mu);
      conn->jobs.push_back(ticket->job_id);
    }
    proto::SubmitAckMsg ack;
    ack.client_tag = client_tag;
    ack.job_id = ticket->job_id;
    ack.admitted = ticket->admitted ? 1 : 0;
    ack.queue_position = ticket->queue_position;
    const std::vector<std::uint8_t> frame = proto::encode_frame(ack);
    if (!conn->dead && !send_all(conn->fd, frame.data(), frame.size())) {
      conn->dead = true;
      ::shutdown(conn->fd, SHUT_RD);
    }
  };

  if (const auto* m = std::get_if<proto::SubmitSweepMsg>(&msg)) {
    submit(m->client_tag, m->scenarios, m->cores_requested);
  } else if (const auto* w = std::get_if<proto::WhatIfMsg>(&msg)) {
    submit(w->client_tag, {w->scenario}, 1);
  } else if (std::get_if<proto::QueryStatusMsg>(&msg)) {
    const ServiceStatus st = service_->status();
    proto::StatusMsg out;
    out.active_jobs = st.active_jobs;
    out.queued_jobs = st.queued_jobs;
    out.scenarios_completed = st.scenarios_completed;
    out.scenarios_failed = st.scenarios_failed;
    out.scenarios_cancelled = st.scenarios_cancelled;
    out.core_budget = st.core_budget;
    out.cores_in_use = st.cores_in_use;
    out.draining = st.draining ? 1 : 0;
    out.bank_trace_hits = st.bank.trace_hits;
    out.bank_trace_misses = st.bank.trace_misses;
    out.bank_model_hits = st.bank.model_hits;
    out.bank_model_misses = st.bank.model_misses;
    out.bank_steady_hits = st.bank.steady_hits;
    out.bank_steady_misses = st.bank.steady_misses;
    send_frame(*conn, out);
  } else if (std::get_if<proto::QueryMetricsMsg>(&msg)) {
    // Stream the registry snapshot: counters and gauges one entry
    // each, histograms with their sparse bucket lists (tac3d_top and
    // tac3d_serve --status reconstruct quantiles from those).
    const obs::Snapshot snap = obs::snapshot();
    proto::MetricsMsg out;
    auto room = [&] {
      return out.entries.size() < proto::kMaxMetricEntries;
    };
    for (const auto& [name, value] : snap.counters) {
      if (!room()) break;
      proto::MetricEntryMsg e;
      e.name = name;
      e.kind = proto::MetricEntryMsg::kCounter;
      e.count = value;
      out.entries.push_back(std::move(e));
    }
    for (const auto& [name, value] : snap.gauges) {
      if (!room()) break;
      proto::MetricEntryMsg e;
      e.name = name;
      e.kind = proto::MetricEntryMsg::kGauge;
      e.value = value;
      out.entries.push_back(std::move(e));
    }
    for (const auto& [name, hist] : snap.histograms) {
      if (!room()) break;
      proto::MetricEntryMsg e;
      e.name = name;
      e.kind = proto::MetricEntryMsg::kHistogram;
      e.count = hist.count();
      e.value = hist.sum();
      e.min = hist.min();
      e.max = hist.max();
      e.buckets = hist.sparse_buckets();
      if (e.buckets.size() > proto::kMaxMetricBuckets)
        e.buckets.resize(proto::kMaxMetricBuckets);
      out.entries.push_back(std::move(e));
    }
    send_frame(*conn, out);
  } else if (const auto* c = std::get_if<proto::CancelMsg>(&msg)) {
    if (!service_->cancel(c->job_id)) {
      proto::ErrorMsg err;
      err.code = static_cast<std::uint16_t>(proto::ServiceError::kUnknownJob);
      err.text = "no live job " + std::to_string(c->job_id);
      send_frame(*conn, err);
    }
    // A successful cancel is acknowledged by the job's kSweepComplete
    // (was_cancelled) on the submitting stream.
  } else if (std::get_if<proto::ShutdownDrainMsg>(&msg)) {
    request_drain();
  } else {
    // A response-typed message sent by a confused client: decodable but
    // not a request.
    proto::ErrorMsg err;
    err.code = static_cast<std::uint16_t>(proto::ServiceError::kBadRequest);
    err.text = "message tag " +
               std::to_string(static_cast<int>(proto::msg_type(msg))) +
               " is not a request";
    send_frame(*conn, err);
  }
}

bool ServiceServer::send_frame(Connection& conn, const proto::Message& msg) {
  const std::vector<std::uint8_t> frame = proto::encode_frame(msg);
  std::lock_guard<std::mutex> wl(conn.write_mu);
  if (conn.dead) return false;
  if (!send_all(conn.fd, frame.data(), frame.size())) {
    conn.dead = true;
    // Wake the reader (its recv fails once the read side is shut); it
    // cancels the connection's jobs on its way out. Cancelling here
    // would re-enter the service under locks the event path holds.
    ::shutdown(conn.fd, SHUT_RD);
    return false;
  }
  return true;
}

void ServiceServer::cancel_connection_jobs(Connection& conn) {
  std::vector<std::uint32_t> jobs;
  {
    std::lock_guard<std::mutex> jl(conn.jobs_mu);
    jobs.swap(conn.jobs);
  }
  for (const std::uint32_t id : jobs) service_->cancel(id);
}

void ServiceServer::request_drain() {
  std::lock_guard<std::mutex> lk(mu_);
  if (drain_requested_ || stopped_) return;
  drain_requested_ = true;
  accepting_ = false;
  // Drain blocks until all accepted work finished — run it off-thread so
  // a connection handler (or a signal watcher) can request it and keep
  // serving its stream meanwhile. Assigned under mu_ so stop() sees it.
  drainer_ = std::thread([this] { drain_worker(); });
}

void ServiceServer::drain_worker() {
  service_->drain();  // blocks: accepted jobs all complete

  proto::DrainCompleteMsg done;
  done.scenarios_finished = service_->status().scenarios_completed;
  {
    std::lock_guard<std::mutex> lk(mu_);
    for (const auto& conn : conns_) {
      send_frame(*conn, done);
    }
  }
  close_all_sockets();
  {
    std::lock_guard<std::mutex> lk(mu_);
    stopped_ = true;
  }
  stopped_cv_.notify_all();
}

void ServiceServer::wait() {
  std::unique_lock<std::mutex> lk(mu_);
  stopped_cv_.wait(lk, [&] { return stopped_; });
}

bool ServiceServer::running() const {
  std::lock_guard<std::mutex> lk(mu_);
  return listen_fd_ >= 0 && !stopped_;
}

void ServiceServer::close_all_sockets() {
  // Shut the listening socket first so accept_loop exits, then unblock
  // every connection reader.
  {
    std::lock_guard<std::mutex> lk(mu_);
    accepting_ = false;
  }
  if (listen_fd_ >= 0) {
    ::shutdown(listen_fd_, SHUT_RDWR);
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  if (acceptor_.joinable()) acceptor_.join();

  std::vector<std::shared_ptr<Connection>> conns;
  {
    std::lock_guard<std::mutex> lk(mu_);
    conns.swap(conns_);
  }
  for (const auto& conn : conns) {
    ::shutdown(conn->fd, SHUT_RDWR);
  }
  for (const auto& conn : conns) {
    if (conn->reader.joinable()) conn->reader.join();
    {
      std::lock_guard<std::mutex> wl(conn->write_mu);
      conn->dead = true;
    }
    ::close(conn->fd);
    conn->fd = -1;
  }
}

void ServiceServer::stop() {
  bool was_draining = false;
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (stopped_ && !drainer_.joinable() && !acceptor_.joinable()) return;
    was_draining = drain_requested_;
    // Claim the teardown: a drain requested after this point no-ops
    // instead of racing close_all_sockets.
    drain_requested_ = true;
    accepting_ = false;
  }
  if (was_draining) {
    // A drain is already tearing the server down; just wait for it.
    wait();
    std::thread drainer;
    {
      std::lock_guard<std::mutex> lk(mu_);
      drainer.swap(drainer_);
    }
    if (drainer.joinable()) drainer.join();
    return;
  }
  // Hard stop: kill the sockets; each reader cancels its connection's
  // jobs on the way out (in-flight scenarios still finish). The
  // SweepService stays alive for post-stop inspection; its destructor
  // joins the workers.
  close_all_sockets();
  {
    std::lock_guard<std::mutex> lk(mu_);
    stopped_ = true;
  }
  stopped_cv_.notify_all();
  if (drainer_.joinable()) drainer_.join();
}

}  // namespace tac3d::service
