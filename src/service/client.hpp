#pragma once
/// \file client.hpp
/// \brief Blocking client of the sweep service: framing, request
/// helpers, and a collect loop that gathers a job's streamed results.
///
/// One ServiceClient wraps one connection and is meant to be driven from
/// one thread (tests and the bench run one client per worker thread).
/// Messages the current call is not waiting for — e.g. results of an
/// earlier job still streaming — are parked in an inbox and replayed to
/// later calls, so several jobs may be in flight on one connection.

#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <vector>

#include "service/protocol.hpp"

namespace tac3d::service {

/// A job's collected stream: per-scenario results (input order) plus the
/// terminating completion summary.
struct SweepOutcome {
  std::uint32_t job_id = 0;
  std::vector<protocol::ScenarioResultMsg> results;  ///< sorted by index
  protocol::SweepCompleteMsg complete;
};

class ServiceClient {
 public:
  ServiceClient() = default;
  ~ServiceClient();

  ServiceClient(const ServiceClient&) = delete;
  ServiceClient& operator=(const ServiceClient&) = delete;

  /// Connect to a sweep server. Throws tac3d::Error on failure.
  void connect(const std::string& host, int port);
  bool connected() const { return fd_ >= 0; }
  void close();

  // --- low level (adversarial tests drive these directly) ---------------

  /// Encode + send one message. Throws when the peer is gone.
  void send(const protocol::Message& msg);
  /// Send raw bytes verbatim (malformed-frame injection).
  void send_raw(const void* data, std::size_t n);
  /// Block until one complete, decodable message arrives. Server-side
  /// rejections travel as ErrorMsg values, not exceptions. Throws
  /// tac3d::Error on EOF or an undecodable frame.
  protocol::Message read_message();

  // --- requests ---------------------------------------------------------

  /// Submit a sweep and wait for its ack. Throws on an ErrorMsg reply.
  protocol::SubmitAckMsg submit_sweep(std::vector<sim::Scenario> scenarios,
                                      int cores_requested = 1,
                                      std::uint32_t client_tag = 0);

  /// Gather job_id's streamed results until its kSweepComplete. Results
  /// are returned sorted by scenario index. \p on_result (optional) is
  /// invoked per result in arrival order — e.g. to timestamp the first
  /// one for time-to-first-result measurements.
  SweepOutcome collect(
      std::uint32_t job_id,
      const std::function<void(const protocol::ScenarioResultMsg&)>&
          on_result = nullptr);

  /// submit_sweep + collect.
  SweepOutcome run_sweep(std::vector<sim::Scenario> scenarios,
                         int cores_requested = 1);

  /// Single-scenario submit; returns its result message.
  protocol::ScenarioResultMsg what_if(const sim::Scenario& scenario);

  protocol::StatusMsg query_status();

  /// Live registry snapshot (queue depth, bank hit rates, TTFR/
  /// admission histograms) streamed as kMetrics.
  protocol::MetricsMsg query_metrics();

  /// Request cancellation of \p job_id. The job's stream still ends with
  /// kSweepComplete (was_cancelled); an unknown id yields an ErrorMsg,
  /// returned as false.
  bool cancel(std::uint32_t job_id);

  /// Ask the server to drain (finish accepted work, then shut down).
  void request_drain();

  /// Block until the server's kDrainComplete arrives (other messages are
  /// parked in the inbox).
  protocol::DrainCompleteMsg wait_drain_complete();

 private:
  /// Next message matching \p pred; non-matching ones go to the inbox.
  template <typename Pred>
  protocol::Message read_matching(Pred pred);

  int fd_ = -1;
  std::vector<std::uint8_t> buffer_;
  std::deque<protocol::Message> inbox_;
};

}  // namespace tac3d::service
