#pragma once
/// \file trace.hpp
/// \brief Per-hardware-thread utilization traces (the paper records "the
/// utilization percentage for each hardware thread at every second for
/// several minutes for each benchmark").

#include <iosfwd>
#include <string>
#include <vector>

namespace tac3d::power {

/// Utilization in [0, 1] for n_threads hardware threads sampled at 1 s.
class UtilizationTrace {
 public:
  UtilizationTrace() = default;
  UtilizationTrace(std::string name, int n_threads, int n_seconds);

  const std::string& name() const { return name_; }
  int threads() const { return n_threads_; }
  int seconds() const { return n_seconds_; }

  /// Utilization of \p thread at integer second \p t (clamped to the
  /// trace end).
  double at(int thread, int t) const;

  /// Linearly interpolated utilization at continuous time \p t [s].
  double sample(int thread, double t) const;

  /// Mutable access used by generators.
  void set(int thread, int t, double u);

  /// Mean utilization over all threads and samples.
  double mean() const;

  /// Maximum utilization over all threads and samples.
  double peak() const;

  /// Mean utilization of one thread.
  double thread_mean(int thread) const;

  /// CSV round trip: header "t,thread0,..."; one row per second.
  void to_csv(std::ostream& os) const;
  static UtilizationTrace from_csv(std::istream& is, std::string name);

  /// Exact-periodicity probe: the smallest period L >= 1 [s] such that
  /// every sample is bitwise identical to the sample one period earlier
  /// (data[th][t] == data[th][t - L] for all threads and all
  /// t in [L, seconds)), or 0 when no such L exists. Only periods up to
  /// seconds/2 qualify — at least one full repetition must confirm the
  /// claim. Exact bit compare, no tolerance: a single one-ULP deviation
  /// makes a trace aperiodic, which is precisely the contract the
  /// limit-cycle replay machinery (sim/replay.hpp) needs.
  int period_hint() const;

  /// Bitwise compare of two sample windows: true iff
  /// at(th, s0 + j) == at(th, s1 + j) for all threads and j in
  /// [0, len] (inclusive — both boundary samples are covered, matching
  /// the [T, T+L] span one control cycle interpolates over). Clamped
  /// like at(): windows reaching past the trace end compare the held
  /// final sample, so a replayed cycle near the end only matches when
  /// the held value genuinely continues the pattern.
  bool windows_equal(int s0, int s1, int len) const;

 private:
  std::string name_;
  int n_threads_ = 0;
  int n_seconds_ = 0;
  std::vector<double> data_;  ///< [t * n_threads + thread]
};

}  // namespace tac3d::power
