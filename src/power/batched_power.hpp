#pragma once
/// \file batched_power.hpp
/// \brief Lane-fused power/leakage/sensor kernels for batched lockstep
/// stepping. The batched sessions in sim/batch.hpp advance K scenarios
/// that share one floorplan/grid; these kernels walk the shared
/// element->cell weight lists once per step and apply them to every
/// lane, instead of K independent traversals.
///
/// Parity contract: per lane, the floating-point chain is identical to
/// the scalar path (thermal::RcModel::element_avg/element_max +
/// LeakageModel::power, RcModel::commit_element_powers). The loops are
/// ordered element-outer / cell-middle / lane-inner, so each lane's
/// accumulation order is exactly the scalar order and results are
/// bitwise identical.
///
/// Layering: src/power does not see arch/ or thermal/ types, so the
/// shared geometry arrives flattened (ElementGeometry) and per-lane
/// state arrives as spans into each lane's own storage.

#include <cstdint>
#include <span>
#include <vector>

#include "power/leakage.hpp"

namespace tac3d::power {

/// Maximum lane count the fused kernels accept (bounds the stack-local
/// per-lane accumulator arrays). Comfortably above the batched solver's
/// own width cap.
inline constexpr int kMaxPowerLanes = 64;

/// Flattened element -> cell mapping shared by every lane of a batch
/// (CSR-style offsets into parallel node/weight arrays), plus the
/// per-element block areas the leakage model needs.
struct ElementGeometry {
  std::vector<std::int64_t> cell_offset;  ///< size element_count()+1
  std::vector<std::int32_t> cell_node;
  std::vector<double> cell_weight;
  std::vector<double> element_area;  ///< [m^2], size element_count()

  int element_count() const {
    return static_cast<int>(element_area.size());
  }
};

/// One lane's power state: previous-step temperature field in, element
/// power vector in/out (dynamic power already written by the caller),
/// per-node power RHS out.
struct PowerLane {
  const LeakageModel* leakage = nullptr;
  std::span<const double> temps;
  std::span<double> element_power;
  std::span<double> power_rhs;
};

/// Add temperature-dependent leakage to every lane's element_power in
/// one traversal of the geometry: for each element, the area-weighted
/// average temperature (element_avg) feeds leakage->power(area, t).
/// Every lane must have a temperature field (batched sessions always
/// do; the scalar cold-start reference-temperature branch stays in
/// Mpsoc3D::add_leakage_into).
void add_leakage_batched(const ElementGeometry& geom,
                         std::span<const PowerLane> lanes);

/// Scatter every lane's element_power into its power_rhs (zeroed
/// first), one traversal of the shared weights — the batched
/// equivalent of RcModel::commit_element_powers per lane.
void scatter_power_rhs_batched(const ElementGeometry& geom,
                               std::span<const PowerLane> lanes);

/// One lane's sensor gather: temperature field in, one max-cell
/// temperature out per requested element.
struct SensorLane {
  std::span<const double> temps;
  std::span<double> out;  ///< size elements.size()
};

/// Max-cell temperature of each listed element (the core_temp sensor)
/// for every lane in one traversal of the shared cell lists.
void gather_element_max_batched(const ElementGeometry& geom,
                                std::span<const std::int32_t> elements,
                                std::span<const SensorLane> lanes);

}  // namespace tac3d::power
