#pragma once
/// \file vf.hpp
/// \brief Voltage/frequency operating points and DVFS power scaling.

#include <cstdint>
#include <vector>

namespace tac3d::power {

/// One DVFS operating point.
struct VfPoint {
  double frequency = 0.0;  ///< [Hz]
  double voltage = 0.0;    ///< [V]
};

/// Ordered table of operating points (level 0 = slowest, last = nominal).
class VfTable {
 public:
  explicit VfTable(std::vector<VfPoint> points);

  /// The UltraSPARC T1-like ladder used in the paper's experiments:
  /// 0.6 GHz/0.9 V up to the nominal 1.2 GHz/1.2 V in 5 steps.
  static VfTable ultrasparc_t1();

  int levels() const { return static_cast<int>(points_.size()); }
  int max_level() const { return levels() - 1; }
  const VfPoint& point(int level) const;

  /// Dynamic-power scale factor (V/V0)^2 * (f/f0) relative to the
  /// nominal (highest) level. Precomputed per level at construction so
  /// the per-step control tail reads a table instead of dividing.
  double power_scale(int level) const {
    check_level(level);
    return power_scale_[level];
  }

  /// Execution-capacity scale f/f0 relative to nominal.
  double speed_scale(int level) const {
    check_level(level);
    return speed_scale_[level];
  }

  /// Smallest level whose speed_scale covers \p demand (plus margin),
  /// used by utilization-driven DVFS.
  int level_for_demand(double demand, double margin = 0.05) const;

 private:
  void check_level(int level) const;

  std::vector<VfPoint> points_;
  std::vector<double> power_scale_;
  std::vector<double> speed_scale_;
};

}  // namespace tac3d::power
