#pragma once
/// \file workloads.hpp
/// \brief Synthetic workload-trace generators.
///
/// The paper collected traces from real applications (web server,
/// database management, multimedia processing) on an UltraSPARC T1; the
/// raw traces are not available, so these generators synthesize traces
/// with the same statistical shape at the same 1 s granularity (see
/// DESIGN.md "Substitutions"). All generators are deterministic in the
/// seed.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "power/trace.hpp"

namespace tac3d::power {

/// Workload families used in the paper's evaluation.
enum class WorkloadKind {
  kWebServer,   ///< bursty, medium average utilization
  kDatabase,    ///< steady-high with slow phase changes
  kMultimedia,  ///< periodic frame-processing load
  kMixed,       ///< half web, half database threads
  kMaxUtil,     ///< all threads near 100% (worst case)
  kIdle,        ///< near-zero background
  /// Exactly periodic frame loop: one noisy per-thread pattern of
  /// kPeriodicWorkloadSeconds, tiled bitwise-identically for the whole
  /// trace (UtilizationTrace::period_hint() finds it). kMultimedia is
  /// *statistically* periodic but never repeats samples exactly; this
  /// kind models a steady-state frame pipeline whose per-frame load is
  /// literally the same every frame — the workload shape the
  /// limit-cycle replay fast-forward (sim/replay.hpp) engages on. Not
  /// part of average_case_workloads().
  kPeriodic,
};

/// Tiled pattern length [s] of WorkloadKind::kPeriodic.
inline constexpr int kPeriodicWorkloadSeconds = 12;

/// Human-readable name ("web", "db", ...).
std::string workload_name(WorkloadKind kind);

/// Generate a trace of \p kind for \p threads hardware threads over
/// \p seconds.
UtilizationTrace generate_workload(WorkloadKind kind, int threads,
                                   int seconds, std::uint64_t seed);

/// generate_workload() wrapped in a shared immutable handle, so one
/// synthesized trace can back every scenario that shares its
/// (kind, threads, seconds, seed) — the trace tier of sim/bank.hpp and
/// the ScenarioMatrix trace dedupe both hand these out.
std::shared_ptr<const UtilizationTrace> shared_workload(WorkloadKind kind,
                                                        int threads,
                                                        int seconds,
                                                        std::uint64_t seed);

/// The average-case workload set of the evaluation (web, db, multimedia,
/// mixed) — Fig. 6/7 report averages across these.
std::vector<WorkloadKind> average_case_workloads();

}  // namespace tac3d::power
