#include "power/leakage.hpp"

#include "common/error.hpp"

namespace tac3d::power {

LeakageModel::LeakageModel(double p_ref_per_area, double t_ref, double t_beta,
                           double max_factor)
    : p_ref_(p_ref_per_area),
      t_ref_(t_ref),
      t_beta_(t_beta),
      max_factor_(max_factor) {
  require(p_ref_ >= 0.0, "LeakageModel: negative reference density");
  require(t_ref_ > 0.0, "LeakageModel: reference temperature must be K");
  require(t_beta_ > 0.0, "LeakageModel: t_beta must be positive");
  require(max_factor_ >= 1.0, "LeakageModel: max_factor must be >= 1");
}

}  // namespace tac3d::power
