#pragma once
/// \file leakage.hpp
/// \brief Temperature-dependent leakage power, computed per unit area
/// (the paper: "we compute the leakage power of processing cores as a
/// function of their area and the temperature").

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace tac3d::power {

/// Exponential-in-temperature leakage model:
/// P = area * p_ref * exp((T - T_ref)/t_beta), clamped at \p max_factor
/// times the reference density for numerical robustness in runaway
/// (air-cooled 4-tier) scenarios.
class LeakageModel {
 public:
  /// \param p_ref_per_area leakage power density at T_ref [W/m^2]
  /// \param t_ref reference temperature [K]
  /// \param t_beta exponential slope [K] (leakage doubles every
  ///        t_beta * ln 2 kelvin)
  /// \param max_factor clamp on the exponential factor
  LeakageModel(double p_ref_per_area, double t_ref, double t_beta,
               double max_factor = 20.0);

  /// Leakage power of a block of \p area [m^2] at temperature \p t [K].
  /// Inline: this sits in the per-step control tail for every element,
  /// for every lane of a batched step.
  double power(double area, double t) const {
    require(area >= 0.0, "LeakageModel::power: negative area");
    return area * p_ref_ * factor(t);
  }

  /// Scale factor exp((T - T_ref)/t_beta), clamped.
  double factor(double t) const {
    return std::min(std::exp((t - t_ref_) / t_beta_), max_factor_);
  }

  double reference_density() const { return p_ref_; }
  double reference_temperature() const { return t_ref_; }

 private:
  double p_ref_;
  double t_ref_;
  double t_beta_;
  double max_factor_;
};

}  // namespace tac3d::power
