#include "power/vf.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace tac3d::power {

VfTable::VfTable(std::vector<VfPoint> points) : points_(std::move(points)) {
  require(points_.size() >= 1, "VfTable: need at least one point");
  for (std::size_t i = 1; i < points_.size(); ++i) {
    require(points_[i].frequency > points_[i - 1].frequency &&
                points_[i].voltage >= points_[i - 1].voltage,
            "VfTable: points must be sorted ascending");
  }
  for (const VfPoint& p : points_) {
    require(p.frequency > 0.0 && p.voltage > 0.0, "VfTable: invalid point");
  }
  const VfPoint& nominal = points_.back();
  power_scale_.reserve(points_.size());
  speed_scale_.reserve(points_.size());
  for (const VfPoint& p : points_) {
    const double v = p.voltage / nominal.voltage;
    power_scale_.push_back(v * v * (p.frequency / nominal.frequency));
    speed_scale_.push_back(p.frequency / nominal.frequency);
  }
}

VfTable VfTable::ultrasparc_t1() {
  return VfTable({{0.60e9, 0.90},
                  {0.75e9, 1.00},
                  {0.90e9, 1.10},
                  {1.05e9, 1.15},
                  {1.20e9, 1.20}});
}

const VfPoint& VfTable::point(int level) const {
  check_level(level);
  return points_[level];
}

void VfTable::check_level(int level) const {
  require(level >= 0 && level < levels(), "VfTable: level out of range");
}

int VfTable::level_for_demand(double demand, double margin) const {
  const double need = std::clamp(demand + margin, 0.0, 1.0);
  for (int l = 0; l < levels(); ++l) {
    if (speed_scale(l) >= need) return l;
  }
  return max_level();
}

}  // namespace tac3d::power
