#include "power/workloads.hpp"

#include <algorithm>
#include <vector>
#include <cmath>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace tac3d::power {

namespace {

double clamp01(double v) { return std::clamp(v, 0.0, 1.0); }

void fill_web(UtilizationTrace& tr, Rng& rng) {
  // Flash crowds hit every thread at once; individual requests add
  // per-thread bursts on top.
  std::vector<double> crowd(tr.seconds(), 0.0);
  {
    int left = 0;
    double amp = 0.0;
    for (int t = 0; t < tr.seconds(); ++t) {
      if (left == 0 && rng.uniform() < 0.03) {
        left = 8 + static_cast<int>(rng.uniform_index(20));
        amp = rng.uniform(0.35, 0.55);
      }
      if (left > 0) {
        crowd[t] = amp;
        --left;
      }
    }
  }
  for (int th = 0; th < tr.threads(); ++th) {
    const double base = rng.uniform(0.30, 0.45);
    int burst_left = 0;
    double burst_amp = 0.0;
    for (int t = 0; t < tr.seconds(); ++t) {
      if (burst_left == 0 && rng.uniform() < 0.04) {
        burst_left = 4 + static_cast<int>(rng.uniform_index(12));
        burst_amp = rng.uniform(0.25, 0.45);
      }
      double u = base + crowd[t] + rng.normal(0.0, 0.04);
      if (burst_left > 0) {
        u += burst_amp;
        --burst_left;
      }
      tr.set(th, t, clamp01(u));
    }
  }
}

void fill_database(UtilizationTrace& tr, Rng& rng) {
  // Query load is system-wide: a shared phase drives all threads, with
  // small per-thread offsets (different query mixes).
  std::vector<double> global(tr.seconds(), 0.0);
  double phase = rng.uniform(0.65, 0.85);
  for (int t = 0; t < tr.seconds(); ++t) {
    if (t % 30 == 0 && t > 0) {
      phase = std::clamp(phase + rng.uniform(-0.15, 0.17), 0.55, 0.99);
    }
    global[t] = phase;
  }
  for (int th = 0; th < tr.threads(); ++th) {
    const double offset = rng.uniform(-0.05, 0.05);
    for (int t = 0; t < tr.seconds(); ++t) {
      tr.set(th, t, clamp01(global[t] + offset + rng.normal(0.0, 0.04)));
    }
  }
}

void fill_multimedia(UtilizationTrace& tr, Rng& rng) {
  for (int th = 0; th < tr.threads(); ++th) {
    const double period = rng.uniform(8.0, 12.0);
    const double offset = rng.uniform(0.0, period);
    for (int t = 0; t < tr.seconds(); ++t) {
      const double s = std::sin(2.0 * M_PI * (t + offset) / period);
      const double u = 0.74 + 0.16 * (s > 0.0 ? 1.0 : -1.0) +
                       rng.normal(0.0, 0.03);
      tr.set(th, t, clamp01(u));
    }
  }
}

void fill_max(UtilizationTrace& tr, Rng& rng) {
  for (int th = 0; th < tr.threads(); ++th) {
    for (int t = 0; t < tr.seconds(); ++t) {
      tr.set(th, t, clamp01(0.99 + rng.normal(0.0, 0.005)));
    }
  }
}

void fill_periodic(UtilizationTrace& tr, Rng& rng) {
  // One noisy sinusoidal frame pattern per thread (distinct phases and
  // noise), then tile it exactly: every repetition copies the same
  // doubles, so the trace is bitwise periodic at kPeriodicWorkloadSeconds
  // even though each period looks as irregular as a kMultimedia window.
  const int period = std::min(kPeriodicWorkloadSeconds, tr.seconds());
  for (int th = 0; th < tr.threads(); ++th) {
    const double offset = rng.uniform(0.0, static_cast<double>(period));
    std::vector<double> base(static_cast<std::size_t>(period));
    for (int t = 0; t < period; ++t) {
      const double s = std::sin(2.0 * M_PI * (t + offset) / period);
      base[static_cast<std::size_t>(t)] =
          clamp01(0.55 + 0.30 * s + rng.normal(0.0, 0.05));
    }
    for (int t = 0; t < tr.seconds(); ++t) {
      tr.set(th, t, base[static_cast<std::size_t>(t % period)]);
    }
  }
}

void fill_idle(UtilizationTrace& tr, Rng& rng) {
  for (int th = 0; th < tr.threads(); ++th) {
    for (int t = 0; t < tr.seconds(); ++t) {
      tr.set(th, t, clamp01(0.02 + std::abs(rng.normal(0.0, 0.01))));
    }
  }
}

}  // namespace

std::string workload_name(WorkloadKind kind) {
  switch (kind) {
    case WorkloadKind::kWebServer:
      return "web";
    case WorkloadKind::kDatabase:
      return "db";
    case WorkloadKind::kMultimedia:
      return "mmedia";
    case WorkloadKind::kMixed:
      return "mixed";
    case WorkloadKind::kMaxUtil:
      return "maxutil";
    case WorkloadKind::kIdle:
      return "idle";
    case WorkloadKind::kPeriodic:
      return "periodic";
  }
  throw InvalidArgument("workload_name: unknown kind");
}

UtilizationTrace generate_workload(WorkloadKind kind, int threads,
                                   int seconds, std::uint64_t seed) {
  UtilizationTrace tr(workload_name(kind), threads, seconds);
  Rng rng(seed ^ (static_cast<std::uint64_t>(kind) << 32));
  switch (kind) {
    case WorkloadKind::kWebServer:
      fill_web(tr, rng);
      break;
    case WorkloadKind::kDatabase:
      fill_database(tr, rng);
      break;
    case WorkloadKind::kMultimedia:
      fill_multimedia(tr, rng);
      break;
    case WorkloadKind::kMixed: {
      UtilizationTrace web = tr, db = tr;
      fill_web(web, rng);
      fill_database(db, rng);
      for (int th = 0; th < threads; ++th) {
        const UtilizationTrace& src = th < threads / 2 ? web : db;
        for (int t = 0; t < seconds; ++t) tr.set(th, t, src.at(th, t));
      }
      break;
    }
    case WorkloadKind::kMaxUtil:
      fill_max(tr, rng);
      break;
    case WorkloadKind::kIdle:
      fill_idle(tr, rng);
      break;
    case WorkloadKind::kPeriodic:
      fill_periodic(tr, rng);
      break;
  }
  return tr;
}

std::shared_ptr<const UtilizationTrace> shared_workload(WorkloadKind kind,
                                                        int threads,
                                                        int seconds,
                                                        std::uint64_t seed) {
  return std::make_shared<const UtilizationTrace>(
      generate_workload(kind, threads, seconds, seed));
}

std::vector<WorkloadKind> average_case_workloads() {
  return {WorkloadKind::kWebServer, WorkloadKind::kDatabase,
          WorkloadKind::kMultimedia, WorkloadKind::kMixed};
}

}  // namespace tac3d::power
