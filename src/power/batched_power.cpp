#include "power/batched_power.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace tac3d::power {

namespace {

void check_lanes(const ElementGeometry& geom,
                 std::span<const PowerLane> lanes) {
  const int n = geom.element_count();
  require(static_cast<std::int64_t>(geom.cell_offset.size()) == n + 1,
          "batched_power: cell_offset size mismatch");
  require(static_cast<int>(lanes.size()) <= kMaxPowerLanes,
          "batched_power: too many lanes");
  for (const PowerLane& lane : lanes) {
    require(static_cast<int>(lane.element_power.size()) == n,
            "batched_power: element_power size mismatch");
  }
}

}  // namespace

void add_leakage_batched(const ElementGeometry& geom,
                         std::span<const PowerLane> lanes) {
  check_lanes(geom, lanes);
  for (const PowerLane& lane : lanes) {
    require(!lane.temps.empty(), "batched_power: lane has no temperatures");
  }
  const int n_lanes = static_cast<int>(lanes.size());
  const int n_elements = geom.element_count();
  double acc[kMaxPowerLanes];
  for (int e = 0; e < n_elements; ++e) {
    const std::int64_t begin = geom.cell_offset[e];
    const std::int64_t end = geom.cell_offset[e + 1];
    // element_avg per lane, cell-outer / lane-inner so every lane's
    // accumulation order matches the scalar loop bitwise.
    for (int l = 0; l < n_lanes; ++l) acc[l] = 0.0;
    for (std::int64_t c = begin; c < end; ++c) {
      const std::int32_t node = geom.cell_node[c];
      const double w = geom.cell_weight[c];
      for (int l = 0; l < n_lanes; ++l) {
        acc[l] += lanes[l].temps[node] * w;
      }
    }
    const double area = geom.element_area[e];
    for (int l = 0; l < n_lanes; ++l) {
      lanes[l].element_power[e] += lanes[l].leakage->power(area, acc[l]);
    }
  }
}

void scatter_power_rhs_batched(const ElementGeometry& geom,
                               std::span<const PowerLane> lanes) {
  check_lanes(geom, lanes);
  const int n_lanes = static_cast<int>(lanes.size());
  const int n_elements = geom.element_count();
  for (int l = 0; l < n_lanes; ++l) {
    std::fill(lanes[l].power_rhs.begin(), lanes[l].power_rhs.end(), 0.0);
  }
  for (int e = 0; e < n_elements; ++e) {
    const std::int64_t begin = geom.cell_offset[e];
    const std::int64_t end = geom.cell_offset[e + 1];
    for (std::int64_t c = begin; c < end; ++c) {
      const std::int32_t node = geom.cell_node[c];
      const double w = geom.cell_weight[c];
      for (int l = 0; l < n_lanes; ++l) {
        lanes[l].power_rhs[node] += lanes[l].element_power[e] * w;
      }
    }
  }
}

void gather_element_max_batched(const ElementGeometry& geom,
                                std::span<const std::int32_t> elements,
                                std::span<const SensorLane> lanes) {
  const int n_lanes = static_cast<int>(lanes.size());
  require(n_lanes <= kMaxPowerLanes, "batched_power: too many lanes");
  for (const SensorLane& lane : lanes) {
    require(lane.out.size() == elements.size(),
            "batched_power: sensor out size mismatch");
  }
  double best[kMaxPowerLanes];
  for (std::size_t i = 0; i < elements.size(); ++i) {
    const std::int32_t e = elements[i];
    require(e >= 0 && e < geom.element_count(),
            "batched_power: sensor element out of range");
    const std::int64_t begin = geom.cell_offset[e];
    const std::int64_t end = geom.cell_offset[e + 1];
    for (int l = 0; l < n_lanes; ++l) best[l] = -1e300;
    for (std::int64_t c = begin; c < end; ++c) {
      const std::int32_t node = geom.cell_node[c];
      for (int l = 0; l < n_lanes; ++l) {
        best[l] = std::max(best[l], lanes[l].temps[node]);
      }
    }
    for (int l = 0; l < n_lanes; ++l) lanes[l].out[i] = best[l];
  }
}

}  // namespace tac3d::power
