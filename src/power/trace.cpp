#include "power/trace.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <istream>
#include <ostream>
#include <sstream>

#include "common/error.hpp"

namespace tac3d::power {

UtilizationTrace::UtilizationTrace(std::string name, int n_threads,
                                   int n_seconds)
    : name_(std::move(name)), n_threads_(n_threads), n_seconds_(n_seconds) {
  require(n_threads > 0 && n_seconds > 0,
          "UtilizationTrace: dimensions must be positive");
  data_.assign(static_cast<std::size_t>(n_threads) * n_seconds, 0.0);
}

double UtilizationTrace::at(int thread, int t) const {
  require(thread >= 0 && thread < n_threads_,
          "UtilizationTrace::at: thread out of range");
  t = std::clamp(t, 0, n_seconds_ - 1);
  return data_[static_cast<std::size_t>(t) * n_threads_ + thread];
}

double UtilizationTrace::sample(int thread, double t) const {
  if (t <= 0.0) return at(thread, 0);
  const int t0 = static_cast<int>(t);
  const double frac = t - t0;
  if (frac == 0.0 || t0 + 1 >= n_seconds_) return at(thread, t0);
  return (1.0 - frac) * at(thread, t0) + frac * at(thread, t0 + 1);
}

void UtilizationTrace::set(int thread, int t, double u) {
  require(thread >= 0 && thread < n_threads_ && t >= 0 && t < n_seconds_,
          "UtilizationTrace::set: index out of range");
  require(u >= 0.0 && u <= 1.0,
          "UtilizationTrace::set: utilization must be in [0, 1]");
  data_[static_cast<std::size_t>(t) * n_threads_ + thread] = u;
}

double UtilizationTrace::mean() const {
  double acc = 0.0;
  for (double v : data_) acc += v;
  return data_.empty() ? 0.0 : acc / data_.size();
}

double UtilizationTrace::peak() const {
  double best = 0.0;
  for (double v : data_) best = std::max(best, v);
  return best;
}

double UtilizationTrace::thread_mean(int thread) const {
  double acc = 0.0;
  for (int t = 0; t < n_seconds_; ++t) acc += at(thread, t);
  return acc / n_seconds_;
}

void UtilizationTrace::to_csv(std::ostream& os) const {
  os << "t";
  for (int th = 0; th < n_threads_; ++th) os << ",thread" << th;
  os << '\n';
  for (int t = 0; t < n_seconds_; ++t) {
    os << t;
    for (int th = 0; th < n_threads_; ++th) os << ',' << at(th, t);
    os << '\n';
  }
}

int UtilizationTrace::period_hint() const {
  for (int period = 1; period <= n_seconds_ / 2; ++period) {
    bool ok = true;
    for (int t = period; ok && t < n_seconds_; ++t) {
      const double* cur = &data_[static_cast<std::size_t>(t) * n_threads_];
      const double* prev =
          &data_[static_cast<std::size_t>(t - period) * n_threads_];
      // Bitwise, not operator==: -0.0 vs 0.0 (or any payload difference)
      // must count as a deviation for the replay contract to hold.
      if (std::memcmp(cur, prev, sizeof(double) * n_threads_) != 0) {
        ok = false;
      }
    }
    if (ok) return period;
  }
  return 0;
}

bool UtilizationTrace::windows_equal(int s0, int s1, int len) const {
  if (s0 == s1) return true;
  for (int j = 0; j <= len; ++j) {
    const int a = std::clamp(s0 + j, 0, n_seconds_ - 1);
    const int b = std::clamp(s1 + j, 0, n_seconds_ - 1);
    const double* ra = &data_[static_cast<std::size_t>(a) * n_threads_];
    const double* rb = &data_[static_cast<std::size_t>(b) * n_threads_];
    if (std::memcmp(ra, rb, sizeof(double) * n_threads_) != 0) return false;
  }
  return true;
}

UtilizationTrace UtilizationTrace::from_csv(std::istream& is,
                                            std::string name) {
  std::string header;
  require(static_cast<bool>(std::getline(is, header)),
          "UtilizationTrace::from_csv: empty stream");
  const int n_threads =
      static_cast<int>(std::count(header.begin(), header.end(), ','));
  require(n_threads > 0, "UtilizationTrace::from_csv: no thread columns");

  std::vector<std::vector<double>> rows;
  std::string line;
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    std::istringstream ls(line);
    std::string cell;
    std::vector<double> row;
    bool first = true;
    while (std::getline(ls, cell, ',')) {
      if (first) {
        first = false;
        continue;  // time column
      }
      row.push_back(std::stod(cell));
    }
    require(static_cast<int>(row.size()) == n_threads,
            "UtilizationTrace::from_csv: ragged row");
    rows.push_back(std::move(row));
  }
  require(!rows.empty(), "UtilizationTrace::from_csv: no samples");
  UtilizationTrace tr(std::move(name), n_threads,
                      static_cast<int>(rows.size()));
  for (int t = 0; t < tr.seconds(); ++t) {
    for (int th = 0; th < n_threads; ++th) {
      tr.set(th, t, std::clamp(rows[t][th], 0.0, 1.0));
    }
  }
  return tr;
}

}  // namespace tac3d::power
