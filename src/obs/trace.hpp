#pragma once
/// \file trace.hpp
/// \brief Structured tracing: scoped spans flushed as Chrome
/// trace-event JSON (load the file in Perfetto or chrome://tracing).
///
/// Enable by environment — TAC3D_TRACE=out.json traces the whole
/// process and flushes at exit — or programmatically with
/// trace_begin(path) / trace_end(). When tracing is off a TraceSpan is
/// one relaxed load and a predictable branch: no clock read, no
/// buffer, no allocation (the counting-operator-new suites run with
/// tracing off and keep asserting the warm step loop allocates
/// nothing).
///
/// Span names must have static storage duration (string literals):
/// events store the pointer, not a copy. Spans are RAII, so each
/// thread's B/E events form a properly nested stack; flush happens at
/// trace_end() (or exit), which expects in-flight spans to have
/// closed — trace from quiescent points.

#include <atomic>
#include <string>

namespace tac3d::obs {

namespace detail {
extern std::atomic<bool> g_trace_on;
void trace_emit(const char* name, char phase);
}  // namespace detail

/// Is a trace being collected right now?
inline bool trace_enabled() {
  return detail::g_trace_on.load(std::memory_order_relaxed);
}

/// Start collecting spans; the JSON lands at \p path on trace_end().
/// Discards any events from a previous collection.
void trace_begin(const std::string& path);

/// Stop collecting and flush the JSON. No-op when not tracing.
void trace_end();

/// RAII duration span ("B"/"E" event pair on this thread's timeline).
class TraceSpan {
 public:
  explicit TraceSpan(const char* name) {
    if (!trace_enabled()) {
      name_ = nullptr;
      return;
    }
    name_ = name;
    detail::trace_emit(name, 'B');
  }
  ~TraceSpan() {
    if (name_) detail::trace_emit(name_, 'E');
  }
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  const char* name_;
};

}  // namespace tac3d::obs
