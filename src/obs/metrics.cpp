#include "obs/metrics.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <mutex>

namespace tac3d::obs {

// --- Histogram -------------------------------------------------------------

int Histogram::bucket_index(double v) {
  if (!(v > 0.0)) return 0;  // non-positive and NaN
  int exp = 0;
  const double m = std::frexp(v, &exp);  // v = m * 2^exp, m in [0.5, 1)
  // Half-octave sub-bucket: split each octave at sqrt(2)/2 ~= 0.7071.
  const int sub = m >= 0.70710678118654752 ? 1 : 0;
  const int idx = 2 * (exp + 32) + sub + 1;
  if (idx < 1) return 0;                      // underflow: < ~2^-33
  if (idx >= kBuckets) return kBuckets - 1;   // overflow: >= ~2^31
  return idx;
}

double Histogram::bucket_floor(int i) {
  if (i <= 0) return 0.0;
  return std::exp2(0.5 * static_cast<double>(i - 1) - 33.0);
}

void Histogram::record(double v) {
  if (count_ == 0) {
    min_ = max_ = v;
  } else {
    min_ = std::min(min_, v);
    max_ = std::max(max_, v);
  }
  ++count_;
  sum_ += v;
  ++buckets_[static_cast<std::size_t>(bucket_index(v))];
  if (exact_) {
    if (samples_.size() < kExactCap) {
      samples_.push_back(v);
    } else {
      exact_ = false;
      samples_.clear();
      samples_.shrink_to_fit();
    }
  }
}

void Histogram::merge(const Histogram& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  count_ += other.count_;
  sum_ += other.sum_;
  for (int i = 0; i < kBuckets; ++i)
    buckets_[static_cast<std::size_t>(i)] +=
        other.buckets_[static_cast<std::size_t>(i)];
  if (exact_ && other.exact_ &&
      samples_.size() + other.samples_.size() <= kExactCap) {
    samples_.insert(samples_.end(), other.samples_.begin(),
                    other.samples_.end());
  } else {
    exact_ = false;
    samples_.clear();
    samples_.shrink_to_fit();
  }
}

double Histogram::quantile(double p) const {
  if (count_ == 0) return 0.0;
  p = std::clamp(p, 0.0, 1.0);
  if (exact_) {
    // Interpolated order statistic (the R-7 / numpy "linear" rule):
    // unbiased on small samples where nearest-rank is not.
    std::vector<double> sorted(samples_);
    std::sort(sorted.begin(), sorted.end());
    const double pos = p * static_cast<double>(sorted.size() - 1);
    const std::size_t lo = static_cast<std::size_t>(pos);
    const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
    const double frac = pos - static_cast<double>(lo);
    return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
  }
  // Bucket resolution: walk the cumulative counts, then interpolate
  // geometrically inside the half-octave bucket that crosses the rank.
  const double target = p * static_cast<double>(count_);
  std::uint64_t cum = 0;
  for (int i = 0; i < kBuckets; ++i) {
    const std::uint64_t c = buckets_[static_cast<std::size_t>(i)];
    if (c == 0) continue;
    if (static_cast<double>(cum + c) >= target) {
      if (i == 0) return min_;
      const double frac =
          std::clamp((target - static_cast<double>(cum)) /
                         static_cast<double>(c),
                     0.0, 1.0);
      const double v = bucket_floor(i) * std::exp2(0.5 * frac);
      return std::clamp(v, min_, max_);
    }
    cum += c;
  }
  return max_;
}

std::vector<std::pair<std::uint8_t, std::uint64_t>>
Histogram::sparse_buckets() const {
  std::vector<std::pair<std::uint8_t, std::uint64_t>> out;
  for (int i = 0; i < kBuckets; ++i) {
    const std::uint64_t c = buckets_[static_cast<std::size_t>(i)];
    if (c) out.emplace_back(static_cast<std::uint8_t>(i), c);
  }
  return out;
}

Histogram Histogram::from_parts(
    std::uint64_t count, double sum, double min, double max,
    const std::vector<std::pair<std::uint8_t, std::uint64_t>>& buckets) {
  Histogram h;
  h.count_ = count;
  h.sum_ = sum;
  h.min_ = min;
  h.max_ = max;
  h.exact_ = false;
  for (const auto& [idx, c] : buckets)
    if (idx < kBuckets) h.buckets_[idx] += c;
  return h;
}

// --- Registry --------------------------------------------------------------

namespace {

constexpr std::uint32_t kInvalidId = 0xffffffffu;
constexpr std::size_t kMaxCounters = 128;
constexpr std::size_t kMaxGauges = 64;
constexpr std::size_t kMaxHists = 64;

/// Per-thread counter slab: one relaxed slot per registered counter.
/// Owned by the registry (so retired threads' totals survive until the
/// next snapshot folds them) and linked to at most one live thread.
struct Slab {
  std::atomic<std::uint64_t> v[kMaxCounters] = {};
  bool live = false;
};

struct Registry {
  std::mutex mu;
  std::vector<std::string> counter_names;
  std::vector<std::string> gauge_names;
  std::vector<std::string> hist_names;
  std::vector<std::unique_ptr<Slab>> slabs;
  std::uint64_t retired[kMaxCounters] = {};
  std::atomic<double> gauges[kMaxGauges] = {};
  Histogram hists[kMaxHists];
  std::atomic<bool> enabled{true};
};

/// Leaked singleton: immortal, so thread-exit hooks and atexit-ordered
/// destructors can never observe a destroyed registry.
Registry& reg() {
  static Registry* r = new Registry;
  return *r;
}

bool env_enabled() {
  const char* v = std::getenv("TAC3D_METRICS");
  return !(v && (std::strcmp(v, "0") == 0 || std::strcmp(v, "off") == 0));
}

const bool g_env_init = [] {
  reg().enabled.store(env_enabled(), std::memory_order_relaxed);
  return true;
}();

std::uint32_t register_name(std::vector<std::string>& names,
                            std::size_t cap, const char* name) {
  Registry& r = reg();
  std::lock_guard<std::mutex> lock(r.mu);
  for (std::size_t i = 0; i < names.size(); ++i)
    if (names[i] == name) return static_cast<std::uint32_t>(i);
  if (names.size() >= cap) return kInvalidId;  // over cap: silent no-op id
  names.emplace_back(name);
  return static_cast<std::uint32_t>(names.size() - 1);
}

/// Thread-local handle: registers a registry-owned slab on first use,
/// folds it into the retired accumulator when the thread exits.
struct ThreadSlab {
  Slab* slab = nullptr;
  ThreadSlab() {
    Registry& r = reg();
    std::lock_guard<std::mutex> lock(r.mu);
    auto owned = std::make_unique<Slab>();
    owned->live = true;
    slab = owned.get();
    r.slabs.push_back(std::move(owned));
  }
  ~ThreadSlab() {
    Registry& r = reg();
    std::lock_guard<std::mutex> lock(r.mu);
    for (std::size_t i = 0; i < kMaxCounters; ++i)
      r.retired[i] += slab->v[i].load(std::memory_order_relaxed);
    auto it = std::find_if(r.slabs.begin(), r.slabs.end(),
                           [&](const auto& s) { return s.get() == slab; });
    if (it != r.slabs.end()) r.slabs.erase(it);
  }
};

Slab* thread_slab() {
  thread_local ThreadSlab tls;
  return tls.slab;
}

}  // namespace

bool metrics_enabled() {
  (void)g_env_init;
  return reg().enabled.load(std::memory_order_relaxed);
}

void set_metrics_enabled(bool on) {
  reg().enabled.store(on, std::memory_order_relaxed);
}

Counter::Counter(const char* name)
    : id_(register_name(reg().counter_names, kMaxCounters, name)) {}

void Counter::add(std::uint64_t n) {
  if (id_ == kInvalidId || !metrics_enabled()) return;
  std::atomic<std::uint64_t>& slot = thread_slab()->v[id_];
  slot.store(slot.load(std::memory_order_relaxed) + n,
             std::memory_order_relaxed);
}

Gauge::Gauge(const char* name)
    : id_(register_name(reg().gauge_names, kMaxGauges, name)) {}

void Gauge::set(double v) {
  if (id_ == kInvalidId || !metrics_enabled()) return;
  reg().gauges[id_].store(v, std::memory_order_relaxed);
}

HistogramMetric::HistogramMetric(const char* name)
    : id_(register_name(reg().hist_names, kMaxHists, name)) {}

void HistogramMetric::record(double v) {
  if (id_ == kInvalidId || !metrics_enabled()) return;
  Registry& r = reg();
  std::lock_guard<std::mutex> lock(r.mu);
  r.hists[id_].record(v);
}

Snapshot snapshot() {
  Registry& r = reg();
  std::lock_guard<std::mutex> lock(r.mu);
  Snapshot snap;
  for (std::size_t i = 0; i < r.counter_names.size(); ++i) {
    std::uint64_t total = r.retired[i];
    for (const auto& slab : r.slabs)
      total += slab->v[i].load(std::memory_order_relaxed);
    snap.counters[r.counter_names[i]] = total;
  }
  for (std::size_t i = 0; i < r.gauge_names.size(); ++i)
    snap.gauges[r.gauge_names[i]] =
        r.gauges[i].load(std::memory_order_relaxed);
  for (std::size_t i = 0; i < r.hist_names.size(); ++i)
    snap.histograms[r.hist_names[i]] = r.hists[i];
  return snap;
}

Snapshot Snapshot::since(const Snapshot& base) const {
  Snapshot delta;
  for (const auto& [name, value] : counters) {
    const auto it = base.counters.find(name);
    const std::uint64_t old = it == base.counters.end() ? 0 : it->second;
    delta.counters[name] = value >= old ? value - old : 0;
  }
  delta.gauges = gauges;
  for (const auto& [name, hist] : histograms) {
    const auto it = base.histograms.find(name);
    if (it == base.histograms.end()) {
      delta.histograms[name] = hist;
      continue;
    }
    const Histogram& old = it->second;
    std::vector<std::pair<std::uint8_t, std::uint64_t>> buckets;
    for (int i = 0; i < Histogram::kBuckets; ++i) {
      const std::uint64_t now = hist.bucket_count(i);
      const std::uint64_t was = old.bucket_count(i);
      if (now > was)
        buckets.emplace_back(static_cast<std::uint8_t>(i), now - was);
    }
    delta.histograms[name] = Histogram::from_parts(
        hist.count() >= old.count() ? hist.count() - old.count() : 0,
        hist.sum() - old.sum(), hist.min(), hist.max(), buckets);
  }
  return delta;
}

}  // namespace tac3d::obs
