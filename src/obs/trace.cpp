#include "obs/trace.hpp"

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <vector>

namespace tac3d::obs {

namespace detail {
std::atomic<bool> g_trace_on{false};
}  // namespace detail

namespace {

struct Event {
  const char* name;  // static storage (see trace.hpp)
  std::int64_t ts_ns;
  char phase;  // 'B' or 'E'
};

/// Per-thread event buffer. Owned by the global collector so a
/// thread's events survive its exit until the next flush; the tiny
/// per-append mutex is uncontended (one owner thread) except during
/// flush, which visits quiescent buffers.
struct ThreadBuf {
  std::mutex mu;
  std::vector<Event> events;
  int tid = 0;
};

struct Collector {
  std::mutex mu;
  std::vector<std::unique_ptr<ThreadBuf>> bufs;
  std::string path;
  int next_tid = 1;
};

Collector& collector() {
  static Collector* c = new Collector;  // immortal (thread-exit safe)
  return *c;
}

std::int64_t now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

ThreadBuf* thread_buf() {
  thread_local ThreadBuf* tb = [] {
    Collector& c = collector();
    std::lock_guard<std::mutex> lock(c.mu);
    auto owned = std::make_unique<ThreadBuf>();
    owned->tid = c.next_tid++;
    ThreadBuf* raw = owned.get();
    c.bufs.push_back(std::move(owned));
    return raw;
  }();
  return tb;
}

const bool g_env_init = [] {
  if (const char* path = std::getenv("TAC3D_TRACE"); path && *path) {
    trace_begin(path);
    std::atexit(trace_end);
  }
  return true;
}();

}  // namespace

namespace detail {

void trace_emit(const char* name, char phase) {
  ThreadBuf* tb = thread_buf();
  const std::int64_t ts = now_ns();
  std::lock_guard<std::mutex> lock(tb->mu);
  tb->events.push_back(Event{name, ts, phase});
}

}  // namespace detail

void trace_begin(const std::string& path) {
  (void)g_env_init;
  Collector& c = collector();
  std::lock_guard<std::mutex> lock(c.mu);
  c.path = path;
  for (auto& tb : c.bufs) {
    std::lock_guard<std::mutex> tlock(tb->mu);
    tb->events.clear();
  }
  detail::g_trace_on.store(true, std::memory_order_relaxed);
}

void trace_end() {
  if (!trace_enabled()) return;
  detail::g_trace_on.store(false, std::memory_order_relaxed);
  Collector& c = collector();
  std::lock_guard<std::mutex> lock(c.mu);
  std::FILE* f = std::fopen(c.path.c_str(), "w");
  if (!f) {
    std::fprintf(stderr, "tac3d: cannot write trace to %s\n",
                 c.path.c_str());
    return;
  }
  std::fputs("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[", f);
  bool first = true;
  for (auto& tb : c.bufs) {
    std::lock_guard<std::mutex> tlock(tb->mu);
    for (const Event& e : tb->events) {
      // Chrome trace ts is microseconds; keep ns resolution as a
      // fractional part.
      std::fprintf(f,
                   "%s\n{\"name\":\"%s\",\"cat\":\"tac3d\",\"ph\":\"%c\","
                   "\"ts\":%lld.%03lld,\"pid\":1,\"tid\":%d}",
                   first ? "" : ",", e.name, e.phase,
                   static_cast<long long>(e.ts_ns / 1000),
                   static_cast<long long>(e.ts_ns % 1000), tb->tid);
      first = false;
    }
    tb->events.clear();
  }
  std::fputs("\n]}\n", f);
  std::fclose(f);
}

}  // namespace tac3d::obs
