#pragma once
/// \file metrics.hpp
/// \brief Process-wide metrics registry: named counters, gauges and
/// log-bucketed histograms with cheap deterministic merge.
///
/// Handles (Counter/Gauge/HistogramMetric) are registered by name —
/// usually as function-local statics at the instrumentation site — and
/// resolve to dense ids. Counter increments land in a per-thread slab
/// (one relaxed atomic slot per counter, no shared cache line, no
/// lock), so hot paths pay a load+store; gauges are last-write-wins
/// process globals; histogram records take the registry mutex and are
/// meant for per-job/per-request paths, not per-step loops.
///
/// snapshot() folds live thread slabs plus the retired-thread
/// accumulator into a name-keyed Snapshot; Snapshot::since() gives the
/// delta between two snapshots so benches can attribute counts to one
/// measured leg.
///
/// Publication is process-gated: TAC3D_METRICS=0 (or
/// set_metrics_enabled(false)) turns every record into an early
/// return. Telemetry never feeds back into simulation arithmetic, so
/// enabled/disabled runs stay bitwise identical by construction.
///
/// Naming convention: "<layer>/<what>", lower_snake within segments —
/// e.g. "bank/trace_hits", "solver/iterations", "service/ttfr_ms".

#include <cassert>
#include <chrono>
#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

namespace tac3d::obs {

/// Log-bucketed histogram over positive doubles (a value type — safe
/// to copy, merge and ship over the wire).
///
/// Buckets are half-octave (boundaries at sqrt(2) steps): index 0
/// catches v <= 0 and underflow, 1..126 span ~2^-32..2^31, 127 is
/// overflow. While the sample count stays within kExactCap the raw
/// samples are retained and quantiles are exact interpolated order
/// statistics — this is the one shared fix for the nearest-rank
/// small-sample bias the benches used to hand-roll; past the cap,
/// quantiles interpolate geometrically within the bucket.
///
/// merge() is deterministic regardless of merge order: bucket counts
/// and moments are commutative sums, and the exact-sample sets either
/// concatenate (then get sorted by quantile()) or collectively spill
/// to bucket-only resolution.
class Histogram {
 public:
  static constexpr int kBuckets = 128;
  static constexpr std::size_t kExactCap = 512;

  void record(double v);
  void merge(const Histogram& other);

  std::uint64_t count() const { return count_; }
  double sum() const { return sum_; }
  double min() const { return count_ ? min_ : 0.0; }
  double max() const { return count_ ? max_ : 0.0; }
  double mean() const { return count_ ? sum_ / static_cast<double>(count_) : 0.0; }

  /// p in [0,1]; exact (interpolated order statistic) while the sample
  /// set is retained, bucket-interpolated afterwards. 0 when empty.
  double quantile(double p) const;

  /// True while quantiles come from the retained sample set.
  bool exact() const { return exact_; }

  std::uint64_t bucket_count(int i) const {
    return buckets_[static_cast<std::size_t>(i)];
  }

  /// (index, count) pairs of the non-empty buckets — the wire form.
  std::vector<std::pair<std::uint8_t, std::uint64_t>> sparse_buckets() const;

  /// Rebuild from wire parts (bucket resolution only; the exact-sample
  /// set does not travel).
  static Histogram from_parts(
      std::uint64_t count, double sum, double min, double max,
      const std::vector<std::pair<std::uint8_t, std::uint64_t>>& buckets);

  /// Lower bound of bucket i's value range (0 for bucket 0).
  static double bucket_floor(int i);
  static int bucket_index(double v);

 private:
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  bool exact_ = true;
  std::uint64_t buckets_[kBuckets] = {};
  std::vector<double> samples_;  ///< retained while exact_
};

/// Is metric publication on (TAC3D_METRICS != 0 and not overridden)?
bool metrics_enabled();
/// Programmatic override, e.g. for same-binary overhead A/B legs.
void set_metrics_enabled(bool on);

/// Monotone counter. Register once (function-local static), add from
/// any thread without contention.
class Counter {
 public:
  explicit Counter(const char* name);
  void add(std::uint64_t n = 1);

 private:
  std::uint32_t id_;
};

/// Last-write-wins instantaneous value (queue depths, pool sizes).
class Gauge {
 public:
  explicit Gauge(const char* name);
  void set(double v);

 private:
  std::uint32_t id_;
};

/// Registry-owned histogram; record() locks, so keep it off per-step
/// hot loops (per-job / per-request cadence is the intended use).
class HistogramMetric {
 public:
  explicit HistogramMetric(const char* name);
  void record(double v);

 private:
  std::uint32_t id_;
};

/// Point-in-time fold of every registered metric, keyed by name.
struct Snapshot {
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, Histogram> histograms;

  /// Delta view: counters and histogram buckets subtract \p base
  /// (histogram deltas lose the exact-sample set); gauges keep their
  /// current value.
  Snapshot since(const Snapshot& base) const;
};

/// Merge the retired-thread accumulator and all live thread slabs.
Snapshot snapshot();

/// Steady-clock stopwatch — the one clock source shared by the obs
/// layer and every bench binary (see bench/bench_util.hpp).
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}
  void reset() { start_ = Clock::now(); }
  double seconds() const {
    const auto now = Clock::now();
    assert(now >= start_ && "steady_clock went backwards");
    return std::chrono::duration<double>(now - start_).count();
  }
  double millis() const { return seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Adds the scope's elapsed seconds to *out on destruction.
class ScopedSeconds {
 public:
  explicit ScopedSeconds(double* out) : out_(out) {}
  ~ScopedSeconds() { *out_ += sw_.seconds(); }
  ScopedSeconds(const ScopedSeconds&) = delete;
  ScopedSeconds& operator=(const ScopedSeconds&) = delete;

 private:
  double* out_;
  Stopwatch sw_;
};

}  // namespace tac3d::obs
