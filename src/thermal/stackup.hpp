#pragma once
/// \file stackup.hpp
/// \brief Vertical composition of a 3D stack: solid layers, liquid
/// cavities, optional air-cooled heat-sink path, boundary temperatures.

#include <string>
#include <vector>

#include "common/units.hpp"
#include "microchannel/coolant.hpp"
#include "thermal/floorplan.hpp"
#include "thermal/material.hpp"

namespace tac3d::thermal {

/// What a layer is made of.
enum class LayerKind {
  kSolid,   ///< homogeneous solid
  kCavity,  ///< inter-tier liquid-cooling cavity (micro-channels)
};

/// One layer of the vertical stack (bottom to top ordering in StackSpec).
struct Layer {
  LayerKind kind = LayerKind::kSolid;
  std::string name;
  double thickness = 0.0;  ///< [m]; for cavities this is the channel height

  /// Solid material, or the channel wall material for cavities.
  Material material;

  /// Index into StackSpec::floorplans if this solid layer dissipates
  /// power (the die's active surface), else -1.
  int floorplan_index = -1;

  // Cavity-only parameters:
  double channel_width = 0.0;  ///< [m]
  double channel_pitch = 0.0;  ///< [m] channel + wall repeat distance
  microchannel::Coolant coolant;  ///< properties at inlet conditions

  /// Sequential cavity number, assigned by StackSpec::validate().
  int cavity_id = -1;

  /// Make a solid layer.
  static Layer solid(std::string name, double thickness, Material material,
                     int floorplan_index = -1);

  /// Make a liquid-cooling cavity layer.
  static Layer cavity(std::string name, double height, double channel_width,
                      double channel_pitch, Material wall,
                      microchannel::Coolant coolant);
};

/// Lumped air-cooled path on top of the stack (Table I: 10 W/K, 140 J/K).
struct HeatSinkSpec {
  bool present = false;
  double conductance_to_ambient = 10.0;  ///< [W/K]
  double capacitance = 140.0;            ///< [J/K]
  /// Conductance spreading the top-layer cells into the lumped sink node
  /// (sink-base/attach conductance) [W/K].
  double coupling_conductance = 250.0;
};

/// Complete stack description consumed by the thermal grid.
struct StackSpec {
  std::string name;
  double width = 0.0;   ///< x extent [m], perpendicular to the flow
  double length = 0.0;  ///< y extent [m], along the flow (row 0 = inlet)
  std::vector<Layer> layers;           ///< bottom -> top
  std::vector<Floorplan> floorplans;   ///< indexed by Layer::floorplan_index
  HeatSinkSpec sink;
  double ambient = celsius_to_kelvin(45.0);        ///< [K]
  double coolant_inlet = celsius_to_kelvin(27.0);  ///< [K]

  /// Number of cavity layers.
  int n_cavities() const;

  /// Check invariants (cavities not on the boundary, floorplan indices
  /// valid, floorplans fit the tier) and assign cavity ids. Must be
  /// called before building a grid; returns *this for chaining.
  StackSpec& validate();
};

}  // namespace tac3d::thermal
