#pragma once
/// \file stackup_io.hpp
/// \brief Text serialization of stack descriptions (a 3D-ICE-style
/// .stk format) and CSV export of temperature fields.
///
/// The stack format is line-oriented:
///
/// ```
/// stack <name>
/// dimensions <width_mm> <length_mm>
/// ambient <celsius>
/// coolant_inlet <celsius>
/// material <name> <conductivity_W_mK> <volumetric_heat_capacity_J_m3K>
/// layer <name> <thickness_mm> <material> [floorplan <index>]
/// cavity <name> <height_mm> <channel_width_mm> <pitch_mm> <wall_material>
/// sink <g_amb_W_K> <c_J_K> <coupling_W_K>
/// floorplan begin
///   <element> <x_mm> <y_mm> <w_mm> <h_mm>
/// floorplan end
/// ```
///
/// Floorplans are indexed in file order; cavities use water at the
/// coolant inlet temperature. '#' starts a comment.

#include <iosfwd>
#include <string>

#include "thermal/rc_model.hpp"
#include "thermal/stackup.hpp"

namespace tac3d::thermal {

/// Parse a stack description; throws InvalidArgument on malformed input.
StackSpec parse_stack(std::istream& in);

/// Serialize \p spec to the text format (round-trips through
/// parse_stack; coolant properties are regenerated from the inlet
/// temperature).
std::string stack_to_text(const StackSpec& spec);

/// Write one grid layer's temperature field as CSV (header row/col
/// coordinates in mm, values in Celsius) — for plotting thermal maps.
void write_layer_csv(const RcModel& model, std::span<const double> temps,
                     int grid_layer, std::ostream& os);

/// Write per-element temperatures (max and average) as CSV.
void write_element_csv(const RcModel& model, std::span<const double> temps,
                       std::ostream& os);

}  // namespace tac3d::thermal
