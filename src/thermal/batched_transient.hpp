#pragma once
/// \file batched_transient.hpp
/// \brief Lockstep backward-Euler stepping of K TransientSolver lanes
/// that share one sparsity pattern.
///
/// A design-space sweep advances many closed-loop scenarios whose
/// thermal systems differ only in matrix values (same stack/grid; flows
/// and powers diverge per lane). BatchedTransientSolver gathers the K
/// lanes' operators into a lane-interleaved sparse::BatchedCsr and
/// advances all of them per matrix traversal with
/// sparse::BatchedBicgstabSolver, while every per-lane decision — flow
/// sync, RHS build, warm-start/predictor selection, refresh policy,
/// stale retry — runs through the very same TransientSolver::begin_step
/// / end_step code (and a per-lane mirror of the serial refresh state),
/// so each lane's trajectory is bitwise identical to stepping it alone.
///
/// Direct solvers don't batch (no initial guess, factorization per
/// lane): construction requires an iterative kind; callers fall back to
/// scalar stepping for kBandedLu (see sim::BatchSession).

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "sparse/batched.hpp"
#include "thermal/transient.hpp"

namespace tac3d::thermal {

/// Lockstep driver over K pattern-sharing TransientSolvers.
class BatchedTransientSolver {
 public:
  /// One lane: the solver to advance plus the refresh policy its scalar
  /// twin would run under (TransientSolver doesn't retain it).
  struct LaneSpec {
    TransientSolver* solver = nullptr;
    sparse::RefreshPolicy refresh{};
  };

  /// \p kind must be an iterative BiCGSTAB strategy; every lane's
  /// operator must share lane 0's sparsity pattern (verified). Lane
  /// tolerances are taken from each solver's rel_tolerance(). The lanes
  /// must outlive this driver.
  BatchedTransientSolver(sparse::SolverKind kind,
                         const std::vector<LaneSpec>& lanes);

  int lanes() const { return static_cast<int>(lanes_.size()); }

  /// Do these two solvers step matrices with the same sparsity pattern
  /// (the batching precondition)?
  static bool compatible(const TransientSolver& a, const TransientSolver& b);

  /// Advance every lane with active[l] != 0 by its own dt, in lockstep:
  /// per-lane begin_step, one batched value-refresh + Krylov solve, per-
  /// lane end_step. failed[l] is set (and end_step skipped — the lane's
  /// state is unspecified, like a scalar step that threw) for lanes
  /// whose linear solve did not converge or whose per-lane phase threw
  /// (the exception text is kept in lane_error; lanes are isolated, the
  /// rest of the batch finishes the step).
  void step_all(std::span<const std::uint8_t> active,
                std::span<std::uint8_t> failed);

  /// Exception text of the last step_all failure of \p lane (empty when
  /// the failure was plain non-convergence, or the lane is fine).
  const std::string& lane_error(int lane) const {
    return lane_errors_[static_cast<std::size_t>(lane)];
  }

  /// Refresh/solve counters of lane \p lane's batched solver (the
  /// counterpart of TransientSolver::solver_stats(), which in a batched
  /// lane tracks its unused private solver).
  const sparse::SolverStats& lane_stats(int lane) const {
    return solver_.lane_stats(lane);
  }

  /// Mid-solve lane-compaction events of the underlying batched Krylov
  /// solver (sparse::BatchedBicgstabSolver::compaction_events): how many
  /// times a solve re-dispatched its fused kernels at a narrower width
  /// after lanes converged. Sweep-footer telemetry.
  std::uint64_t compaction_events() const {
    return solver_.compaction_events();
  }

 private:
  std::vector<TransientSolver*> lanes_;
  sparse::BatchedCsr a_;
  sparse::BatchedBicgstabSolver solver_;
  std::vector<double> b_;  ///< interleaved RHS
  std::vector<double> x_;  ///< interleaved guess/solution
  // Warm-start guard batching: candidate buffers, residual scratch and
  // per-lane squared norms, so the guard SpMVs every lane would spend
  // serially run as 1-3 shared traversals (see step_all).
  std::vector<double> pred_x_, traj_x_, guard_r_;
  std::vector<double> rr_plain_, rr_pred_, rr_traj_, bb_, bb_scratch_;
  std::vector<std::uint8_t> stepped_, want_pred_, want_traj_, solve_failed_;
  std::vector<std::string> lane_errors_;
};

}  // namespace tac3d::thermal
