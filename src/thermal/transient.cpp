#include "thermal/transient.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "sparse/kernels.hpp"

namespace tac3d::thermal {

TransientSolver::TransientSolver(RcModel& model, double dt,
                                 const Options& opts)
    : model_(model),
      dt_(dt),
      op_(opts.operator_prototype != nullptr
              ? ThermalOperator(*opts.operator_prototype, model, dt)
              : ThermalOperator(model, dt)),
      cache_(opts.cache) {
  require(dt > 0.0, "TransientSolver: dt must be positive");
  const std::int32_t n = model_.node_count();
  state_.assign(n, std::max(model_.grid().spec().ambient,
                            model_.grid().spec().coolant_inlet));
  rhs_.assign(n, 0.0);
  c_over_dt_.assign(n, 0.0);
  const std::span<const double> c = model_.capacitance();
  for (std::int32_t i = 0; i < n; ++i) c_over_dt_[i] = c[i] / dt_;

  solver_ = sparse::make_solver(
      opts.kind, op_.matrix(),
      opts.cache != nullptr ? opts.cache->get(op_.matrix()) : nullptr);
  solver_->set_refresh_policy(opts.refresh);
  rel_tolerance_ = opts.rel_tolerance;
  solver_->set_tolerance(rel_tolerance_);

  if (opts.warm_start_slots > 0 && solver_->uses_initial_guess() &&
      model_.n_cavities() > 0) {
    slots_.resize(static_cast<std::size_t>(opts.warm_start_slots));
    for (WarmStartSlot& s : slots_) {
      s.flows.assign(static_cast<std::size_t>(model_.n_cavities()), 0.0);
      s.profiles.assign(static_cast<std::size_t>(model_.n_cavities()), 0);
      s.state_before.assign(static_cast<std::size_t>(n), 0.0);
      s.solution.assign(static_cast<std::size_t>(n), 0.0);
    }
    predicted_.assign(n, 0.0);
    prev_state_.assign(n, 0.0);
  }
  if (opts.trajectory_warm_start && solver_->uses_initial_guess()) {
    traj_prev_.assign(n, 0.0);
    traj_guess_.assign(n, 0.0);
  }
  if (!slots_.empty() || !traj_prev_.empty()) {
    residual_.assign(n, 0.0);  // shared guard scratch
  }
}

TransientSolver::TransientSolver(RcModel& model, double dt,
                                 sparse::SolverKind kind,
                                 sparse::StructureCache* cache)
    : TransientSolver(model, dt, Options{kind, cache, {}, 16}) {}

void TransientSolver::set_state(std::vector<double> temps) {
  require(static_cast<std::int32_t>(temps.size()) == model_.node_count(),
          "TransientSolver::set_state: size mismatch");
  state_ = std::move(temps);
  traj_valid_ = false;  // externally replaced state breaks the history
}

void TransientSolver::initialize_steady() {
  set_state(model_.steady_state(sparse::SolverKind::kBicgstabIlu0, cache_));
}

TransientSolver::WarmStartSlot* TransientSolver::find_slot() {
  if (slots_.empty()) return nullptr;
  for (WarmStartSlot& s : slots_) {
    if (!s.used) continue;
    bool match = true;
    for (int cav = 0; cav < model_.n_cavities(); ++cav) {
      const std::size_t c = static_cast<std::size_t>(cav);
      if (s.flows[c] != model_.cavity_flow(cav) ||
          s.profiles[c] != model_.cavity_profile_version(cav)) {
        match = false;
        break;
      }
    }
    if (match) return &s;
  }
  WarmStartSlot& victim = slots_[static_cast<std::size_t>(next_slot_)];
  next_slot_ = (next_slot_ + 1) % static_cast<int>(slots_.size());
  victim.used = false;
  return &victim;
}

void TransientSolver::step() {
  const bool flow_changed = !op_.in_sync();
  if (flow_changed) {
    const sparse::ValueUpdate update = op_.update_flow();
    solver_->update_values(op_.matrix(), update);
  }
  // rhs = P + (C/dt) T_n, built in one fused pass.
  model_.rhs_plus_scaled_into(rhs_, c_over_dt_, state_);

  // Trajectory extrapolation x0 = T_n + (T_n - T_{n-1}): build the guess
  // while T_{n-1} is still around, then roll the history forward. The
  // closed loop drives power (and modulated flow) piecewise-linearly, so
  // consecutive deltas nearly repeat and the guess starts the Krylov
  // solve decades closer than the plain warm start.
  const double tol2 = rel_tolerance_ * rel_tolerance_;
  bool extrapolate = !traj_prev_.empty() && traj_valid_;
  if (extrapolate) {
    double dd = 0.0;
    for (std::size_t i = 0; i < state_.size(); ++i) {
      const double d = state_[i] - traj_prev_[i];
      traj_guess_[i] = state_[i] + d;
      dd += d * d;
    }
    // Settled trajectory (exact fixed point, e.g. constant power and
    // flow): the guess IS the plain warm start — skip the guard SpMVs.
    if (dd == 0.0) extrapolate = false;
  }
  if (!traj_prev_.empty()) {
    std::copy(state_.begin(), state_.end(), traj_prev_.begin());
    traj_valid_ = true;
  }

  WarmStartSlot* slot = nullptr;
  bool predictor_used = false;
  double rr_plain = -1.0;  // plain warm start ||b - A T_n||², lazily computed
  if (flow_changed && !slots_.empty()) {
    slot = find_slot();
    std::copy(state_.begin(), state_.end(), prev_state_.begin());
    if (slot->used) {
      // Predict the post-flow-change solution as the current state plus
      // the jump the cached step at these exact flows produced:
      //   x0 = T_n + (solution - state_before).
      // On a sustained modulation orbit this is the solution itself.
      // Guard: keep the prediction only if its residual actually beats
      // the plain warm start's (one fused SpMV each).
      for (std::size_t i = 0; i < state_.size(); ++i) {
        predicted_[i] =
            state_[i] + (slot->solution[i] - slot->state_before[i]);
      }
      double bb = 0.0;
      const double rr_pred = sparse::residual_norms(
          op_.matrix(), predicted_, rhs_, residual_, &bb);
      // Already at the solver tolerance (squared norms here) — the
      // sustained-orbit case: accept without spending a second SpMV on
      // the plain warm start's residual.
      const bool use_pred =
          rr_pred <= bb * tol2 ||
          rr_pred < (rr_plain = sparse::residual(op_.matrix(), state_, rhs_,
                                                 residual_));
      if (use_pred) {
        std::copy(predicted_.begin(), predicted_.end(), state_.begin());
        ++predictor_hits_;
        predictor_used = true;
      }
    }
  }

  if (extrapolate && !predictor_used) {
    // Residual-guarded: adopt the extrapolation only when it beats the
    // plain warm start, so a kink in the trajectory (flow jump, demand
    // discontinuity) costs two fused SpMVs, never extra iterations (and
    // a rejected flow prediction above already paid for rr_plain).
    double bb = 0.0;
    const double rr_traj = sparse::residual_norms(
        op_.matrix(), traj_guess_, rhs_, residual_, &bb);
    if (rr_traj > bb * tol2 && rr_plain < 0.0) {
      rr_plain = sparse::residual(op_.matrix(), state_, rhs_, residual_);
    }
    const bool use_traj = rr_traj <= bb * tol2 || rr_traj < rr_plain;
    if (use_traj) {
      std::copy(traj_guess_.begin(), traj_guess_.end(), state_.begin());
      ++trajectory_hits_;
    }
  }

  solver_->solve(rhs_, state_);

  if (slot != nullptr) {
    for (int cav = 0; cav < model_.n_cavities(); ++cav) {
      const std::size_t c = static_cast<std::size_t>(cav);
      slot->flows[c] = model_.cavity_flow(cav);
      slot->profiles[c] = model_.cavity_profile_version(cav);
    }
    std::copy(prev_state_.begin(), prev_state_.end(),
              slot->state_before.begin());
    std::copy(state_.begin(), state_.end(), slot->solution.begin());
    slot->used = true;
  }
  time_ += dt_;
}

void TransientSolver::advance(double duration) {
  require(duration >= 0.0, "TransientSolver::advance: negative duration");
  const int steps = static_cast<int>(std::ceil(duration / dt_ - 1e-12));
  for (int s = 0; s < steps; ++s) step();
}

}  // namespace tac3d::thermal
