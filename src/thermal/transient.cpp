#include "thermal/transient.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/fnv.hpp"
#include "obs/trace.hpp"
#include "sparse/kernels.hpp"

namespace tac3d::thermal {

TransientSolver::TransientSolver(RcModel& model, double dt,
                                 const Options& opts)
    : model_(model),
      dt_(dt),
      op_(opts.operator_prototype != nullptr
              ? ThermalOperator(*opts.operator_prototype, model, dt)
              : ThermalOperator(model, dt)),
      cache_(opts.cache) {
  require(dt > 0.0, "TransientSolver: dt must be positive");
  const std::int32_t n = model_.node_count();
  state_.assign(n, std::max(model_.grid().spec().ambient,
                            model_.grid().spec().coolant_inlet));
  rhs_.assign(n, 0.0);
  c_over_dt_.assign(n, 0.0);
  const std::span<const double> c = model_.capacitance();
  for (std::int32_t i = 0; i < n; ++i) c_over_dt_[i] = c[i] / dt_;

  std::vector<std::int32_t> flow_tail;
  if (opts.flow_aware_banded && opts.kind == sparse::SolverKind::kBandedLu &&
      model_.n_cavities() > 0) {
    // Fluid rows = union of advection-entry nodes, pinned to the tail of
    // the banded permutation so flow updates re-eliminate only the tail.
    std::vector<char> seen(static_cast<std::size_t>(n), 0);
    for (int cav = 0; cav < model_.n_cavities(); ++cav) {
      for (const AdvectionEntry& e : model_.advection_entries(cav)) {
        if (!seen[static_cast<std::size_t>(e.node)]) {
          seen[static_cast<std::size_t>(e.node)] = 1;
          flow_tail.push_back(e.node);
        }
      }
    }
    std::sort(flow_tail.begin(), flow_tail.end());
  }
  solver_ = sparse::make_solver(
      opts.kind, op_.matrix(),
      opts.cache != nullptr ? opts.cache->get(op_.matrix()) : nullptr,
      flow_tail);
  solver_->set_refresh_policy(opts.refresh);
  rel_tolerance_ = opts.rel_tolerance;
  solver_->set_tolerance(rel_tolerance_);

  if (opts.warm_start_slots > 0 && solver_->uses_initial_guess() &&
      model_.n_cavities() > 0) {
    slots_.resize(static_cast<std::size_t>(opts.warm_start_slots));
    for (WarmStartSlot& s : slots_) {
      s.flows.assign(static_cast<std::size_t>(model_.n_cavities()), 0.0);
      s.profiles.assign(static_cast<std::size_t>(model_.n_cavities()), 0);
      s.state_before.assign(static_cast<std::size_t>(n), 0.0);
      s.solution.assign(static_cast<std::size_t>(n), 0.0);
    }
    predicted_.assign(n, 0.0);
    prev_state_.assign(n, 0.0);
    if (opts.fluid_jump_predictor) {
      // Upstream-first sweep order: advection entries are stored along
      // the flow direction per cavity, so a Gauss-Seidel pass reads each
      // node's upstream neighbor after it has already been updated.
      for (int cav = 0; cav < model_.n_cavities(); ++cav) {
        for (const AdvectionEntry& e : model_.advection_entries(cav)) {
          fluid_rows_.push_back(e.node);
        }
      }
    }
  }
  if (opts.trajectory_warm_start && solver_->uses_initial_guess()) {
    traj_prev_.assign(n, 0.0);
    traj_guess_.assign(n, 0.0);
  }
  if (!slots_.empty() || !traj_prev_.empty()) {
    residual_.assign(n, 0.0);  // shared guard scratch
  }
}

TransientSolver::TransientSolver(RcModel& model, double dt,
                                 sparse::SolverKind kind,
                                 sparse::StructureCache* cache)
    : TransientSolver(model, dt, Options{kind, cache, {}, 16}) {}

void TransientSolver::set_state(std::vector<double> temps) {
  require(static_cast<std::int32_t>(temps.size()) == model_.node_count(),
          "TransientSolver::set_state: size mismatch");
  state_ = std::move(temps);
  traj_valid_ = false;  // externally replaced state breaks the history
}

void TransientSolver::initialize_steady() {
  set_state(model_.steady_state(sparse::SolverKind::kBicgstabIlu0, cache_));
}

TransientSolver::WarmStartSlot* TransientSolver::find_slot() {
  if (slots_.empty()) return nullptr;
  for (WarmStartSlot& s : slots_) {
    if (!s.used) continue;
    bool match = true;
    for (int cav = 0; cav < model_.n_cavities(); ++cav) {
      const std::size_t c = static_cast<std::size_t>(cav);
      if (s.flows[c] != model_.cavity_flow(cav) ||
          s.profiles[c] != model_.cavity_profile_version(cav)) {
        match = false;
        break;
      }
    }
    if (match) return &s;
  }
  WarmStartSlot& victim = slots_[static_cast<std::size_t>(next_slot_)];
  next_slot_ = (next_slot_ + 1) % static_cast<int>(slots_.size());
  victim.used = false;
  return &victim;
}

bool TransientSolver::interpolate_prediction() {
  const int n_cav = model_.n_cavities();
  for (std::size_t ia = 0; ia + 1 < slots_.size(); ++ia) {
    const WarmStartSlot& a = slots_[ia];
    if (!a.used) continue;
    for (std::size_t ib = ia + 1; ib < slots_.size(); ++ib) {
      const WarmStartSlot& b = slots_[ib];
      if (!b.used) continue;
      // Shared interpolation parameter: cur = a + theta * (b - a) for
      // every cavity, theta strictly inside (0, 1), profiles matching.
      double theta = -1.0;
      bool ok = true;
      for (int cav = 0; cav < n_cav && ok; ++cav) {
        const std::size_t c = static_cast<std::size_t>(cav);
        const std::uint64_t prof = model_.cavity_profile_version(cav);
        if (a.profiles[c] != prof || b.profiles[c] != prof) {
          ok = false;
          break;
        }
        const double cur = model_.cavity_flow(cav);
        const double span = b.flows[c] - a.flows[c];
        if (span == 0.0) {
          ok = cur == a.flows[c];
          continue;
        }
        const double t = (cur - a.flows[c]) / span;
        if (theta < 0.0) {
          if (t <= 0.0 || t >= 1.0) {
            ok = false;
          } else {
            theta = t;
          }
        } else {
          // All cavities must agree on the parameter (the one-knob
          // modulation family the policies actually drive).
          ok = std::abs(t - theta) <=
               1e-9 * std::max(1.0, std::abs(theta));
        }
      }
      if (!ok || theta < 0.0) continue;
      // x0 = T_n + jump_a + theta * (jump_b - jump_a), where jump_s is
      // the temperature jump the cached step at slot s produced.
      for (std::size_t i = 0; i < state_.size(); ++i) {
        const double jump_a = a.solution[i] - a.state_before[i];
        const double jump_b = b.solution[i] - b.state_before[i];
        predicted_[i] = state_[i] + (jump_a + theta * (jump_b - jump_a));
      }
      return true;
    }
  }
  return false;
}

void TransientSolver::fluid_jump_prediction() {
  // A flow change rewrites only the advection entries, so the solution
  // jump is concentrated in the coolant field: relax the fluid-row
  // subsystem of A x = rhs with the solid temperatures frozen at T_n.
  // Two Gauss-Seidel sweeps in upstream-first order propagate the new
  // flow rate down each channel (the advection stencil is strongly
  // one-directional), which lands the fluid block within a few percent
  // of its solve at O(fluid nnz) cost. The residual guard in
  // begin_step_commit keeps the prediction honest.
  std::copy(state_.begin(), state_.end(), predicted_.begin());
  const sparse::CsrMatrix& a = op_.matrix();
  const auto rp = a.row_ptr();
  const auto ci = a.col_idx();
  const auto v = a.values();
  const auto relax_row = [&](const std::int32_t i) {
    double num = rhs_[i];
    double diag = 0.0;
    for (std::int32_t k = rp[i]; k < rp[i + 1]; ++k) {
      const std::int32_t j = ci[k];
      if (j == i) {
        diag = v[k];
      } else {
        num -= v[k] * predicted_[j];
      }
    }
    predicted_[i] = num / diag;
  };
  for (int sweep = 0; sweep < 2; ++sweep) {
    for (const std::int32_t i : fluid_rows_) relax_row(i);
  }
  // Deliberately stop here: the sweeps solve the fluid block exactly
  // with the solid field frozen, which transfers the remaining residual
  // onto the wall rows. Extending the relaxation there (measured) cuts
  // the residual norm another ~1.4x but costs Krylov iterations — the
  // ILU(0)-preconditioned solve recovers faster from an exactly
  // satisfied fluid block than from a smaller but wall-smeared
  // residual, and anything past one wall pass stalls anyway (the solid
  // block is not diagonally dominant).
}

TransientSolver::StepPrep TransientSolver::begin_step_prepare() {
  StepPrep prep;
  prep.flow_changed = !op_.in_sync();
  if (prep.flow_changed) {
    prep.update = op_.update_flow();
  }
  // rhs = P + (C/dt) T_n, built in one fused pass.
  model_.rhs_plus_scaled_into(rhs_, c_over_dt_, state_);

  // Trajectory extrapolation x0 = T_n + (T_n - T_{n-1}): build the guess
  // while T_{n-1} is still around, then roll the history forward. The
  // closed loop drives power (and modulated flow) piecewise-linearly, so
  // consecutive deltas nearly repeat and the guess starts the Krylov
  // solve decades closer than the plain warm start.
  bool extrapolate = !traj_prev_.empty() && traj_valid_;
  if (extrapolate) {
    double dd = 0.0;
    for (std::size_t i = 0; i < state_.size(); ++i) {
      const double d = state_[i] - traj_prev_[i];
      traj_guess_[i] = state_[i] + d;
      dd += d * d;
    }
    // Settled trajectory (exact fixed point, e.g. constant power and
    // flow): the guess IS the plain warm start — skip the guard SpMVs.
    if (dd == 0.0) extrapolate = false;
  }
  if (!traj_prev_.empty()) {
    std::copy(state_.begin(), state_.end(), traj_prev_.begin());
    traj_valid_ = true;
  }
  prep.want_trajectory = extrapolate;

  pending_slot_ = nullptr;
  if (prep.flow_changed && !slots_.empty()) {
    WarmStartSlot* slot = find_slot();
    pending_slot_ = slot;
    std::copy(state_.begin(), state_.end(), prev_state_.begin());
    // Predict the post-flow-change solution as the current state plus a
    // jump derived from the transition cache: on an exact flow-state
    // match, the jump the cached step at these exact flows produced
    // (x0 = T_n + solution - state_before; on a sustained modulation
    // orbit this is the solution itself); on a miss, the linear
    // interpolation between two cached jumps whose flow states bracket
    // the new one (continuous fuzzy modulation rarely revisits exact
    // states, but walks between cached ones all the time).
    if (slot->used) {
      for (std::size_t i = 0; i < state_.size(); ++i) {
        predicted_[i] =
            state_[i] + (slot->solution[i] - slot->state_before[i]);
      }
      prep.want_predicted = true;
    } else if (interpolate_prediction()) {
      prep.want_predicted = true;
      prep.predicted_is_interpolation = true;
    } else if (!fluid_rows_.empty()) {
      // Genuinely new flow regime: neither cached prediction applies.
      fluid_jump_prediction();
      prep.want_predicted = true;
      prep.predicted_is_fluid_jump = true;
    }
  }
  pending_ = prep;
  return prep;
}

void TransientSolver::begin_step_commit(double rr_predicted,
                                        double rr_trajectory, double rr_plain,
                                        double bb) {
  // The guards compare squared residual norms; a candidate wins when it
  // is already at the solve tolerance or beats the plain warm start.
  // Callers that evaluate eagerly (the batched driver) pass every value;
  // the serial wrapper passes exactly what it computed — a value is only
  // read on paths where the serial evaluation computed it too, so the
  // decisions (and the chosen state) are identical either way.
  const double tol2 = rel_tolerance_ * rel_tolerance_;
  bool predictor_used = false;
  if (pending_.want_predicted) {
    const bool use_pred =
        rr_predicted <= bb * tol2 || rr_predicted < rr_plain;
    if (use_pred) {
      std::copy(predicted_.begin(), predicted_.end(), state_.begin());
      ++(pending_.predicted_is_interpolation
             ? predictor_interp_hits_
             : pending_.predicted_is_fluid_jump ? predictor_fluid_hits_
                                                : predictor_hits_);
      predictor_used = true;
    }
  }
  if (pending_.want_trajectory && !predictor_used) {
    const bool use_traj =
        rr_trajectory <= bb * tol2 || rr_trajectory < rr_plain;
    if (use_traj) {
      std::copy(traj_guess_.begin(), traj_guess_.end(), state_.begin());
      ++trajectory_hits_;
    }
  }
  pending_ = StepPrep{};
}

TransientSolver::StepPrep TransientSolver::begin_step() {
  const StepPrep prep = begin_step_prepare();
  // Serial guard evaluation, lazy like it always was: the plain warm
  // start's residual is only spent when a candidate is not already at
  // the solve tolerance, and the trajectory guard is skipped once the
  // flow prediction wins. begin_step_commit re-derives the same
  // decisions from these values.
  const double tol2 = rel_tolerance_ * rel_tolerance_;
  double rr_pred = 0.0, rr_traj = 0.0, bb = 0.0;
  double rr_plain = -1.0;  // plain warm start ||b - A T_n||², lazily computed
  bool traj_pending = prep.want_trajectory;
  if (prep.want_predicted) {
    rr_pred = sparse::residual_norms(op_.matrix(), predicted_, rhs_,
                                     residual_, &bb);
    if (rr_pred <= bb * tol2) {
      traj_pending = false;  // prediction accepted at tolerance
    } else {
      rr_plain = sparse::residual(op_.matrix(), state_, rhs_, residual_);
      if (rr_pred < rr_plain) traj_pending = false;  // prediction wins
    }
  }
  if (traj_pending) {
    rr_traj = sparse::residual_norms(op_.matrix(), traj_guess_, rhs_,
                                     residual_, &bb);
    if (rr_traj > bb * tol2 && rr_plain < 0.0) {
      rr_plain = sparse::residual(op_.matrix(), state_, rhs_, residual_);
    }
  }
  begin_step_commit(rr_pred, rr_traj, rr_plain, bb);
  return prep;
}

void TransientSolver::end_step() {
  if (pending_slot_ != nullptr) {
    WarmStartSlot* slot = pending_slot_;
    for (int cav = 0; cav < model_.n_cavities(); ++cav) {
      const std::size_t c = static_cast<std::size_t>(cav);
      slot->flows[c] = model_.cavity_flow(cav);
      slot->profiles[c] = model_.cavity_profile_version(cav);
    }
    std::copy(prev_state_.begin(), prev_state_.end(),
              slot->state_before.begin());
    std::copy(state_.begin(), state_.end(), slot->solution.begin());
    slot->used = true;
    pending_slot_ = nullptr;
  }
  time_ += dt_;
}

void TransientSolver::step() {
  const StepPrep prep = begin_step();
  // The refresh notification may run after the warm-start guards (which
  // read only the matrix, already synced by begin_step), as long as it
  // precedes the solve.
  if (prep.flow_changed) {
    obs::TraceSpan span("solver/refresh");
    solver_->update_values(op_.matrix(), prep.update);
  }
  {
    obs::TraceSpan span("solver/krylov");
    solver_->solve(rhs_, state_);
  }
  end_step();
}

void TransientSolver::advance(double duration) {
  require(duration >= 0.0, "TransientSolver::advance: negative duration");
  const int steps = static_cast<int>(std::ceil(duration / dt_ - 1e-12));
  for (int s = 0; s < steps; ++s) step();
}

bool TransientSolver::fold_replay_state(std::uint64_t& h) const {
  if (!solver_->fold_replay_state(h)) return false;
  // Trajectory-extrapolation memory: T_{n-1} is read on the next
  // ordinary step, so it must recur for the loop to recur.
  h = fnv1a(h, traj_valid_);
  if (traj_valid_) h = fnv1a(h, std::span<const double>(traj_prev_));
  // Warm-start transition cache: occupancy, round-robin cursor, and —
  // for occupied slots — keys and cached fields. All of it steers which
  // initial guess a future flow-change step starts from, and for
  // iterative solvers the guess shapes the computed iterate bitwise.
  // Unoccupied slots hold dead bytes (every field is rewritten before
  // used flips back on), so their content stays out of the print.
  h = fnv1a(h, next_slot_);
  for (const WarmStartSlot& s : slots_) {
    h = fnv1a(h, s.used);
    if (!s.used) continue;
    h = fnv1a(h, std::span<const double>(s.flows));
    h = fnv1a_bytes(h, s.profiles.data(),
                    s.profiles.size() * sizeof(std::uint64_t));
    h = fnv1a(h, std::span<const double>(s.state_before));
    h = fnv1a(h, std::span<const double>(s.solution));
  }
  return true;
}

}  // namespace tac3d::thermal
