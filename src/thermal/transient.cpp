#include "thermal/transient.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace tac3d::thermal {

TransientSolver::TransientSolver(RcModel& model, double dt,
                                 sparse::SolverKind kind)
    : model_(model), dt_(dt), kind_(kind) {
  require(dt > 0.0, "TransientSolver: dt must be positive");
  state_.assign(model_.node_count(),
                std::max(model_.grid().spec().ambient,
                         model_.grid().spec().coolant_inlet));
  rhs_.assign(model_.node_count(), 0.0);
  rebuild_matrix();
  solver_ = sparse::make_solver(kind_, a_);
  model_version_ = model_.version();
}

void TransientSolver::rebuild_matrix() {
  const sparse::CsrMatrix& g = model_.conductance();
  const std::span<const double> c = model_.capacitance();
  if (a_.nnz() == 0) {
    a_ = g;  // copy pattern and values once
  } else {
    std::copy(g.values().begin(), g.values().end(), a_.values_mut().begin());
  }
  for (std::int32_t i = 0; i < a_.rows(); ++i) {
    a_.coeff_ref(i, i) += c[i] / dt_;
  }
}

void TransientSolver::set_state(std::vector<double> temps) {
  require(static_cast<std::int32_t>(temps.size()) == model_.node_count(),
          "TransientSolver::set_state: size mismatch");
  state_ = std::move(temps);
}

void TransientSolver::initialize_steady() {
  set_state(model_.steady_state());
}

void TransientSolver::step() {
  if (model_.version() != model_version_) {
    rebuild_matrix();
    solver_->update_values(a_);
    model_version_ = model_.version();
  }
  const std::vector<double> p = model_.rhs();
  const std::span<const double> c = model_.capacitance();
  for (std::size_t i = 0; i < rhs_.size(); ++i) {
    rhs_[i] = p[i] + c[i] / dt_ * state_[i];
  }
  solver_->solve(rhs_, state_);
  time_ += dt_;
}

void TransientSolver::advance(double duration) {
  require(duration >= 0.0, "TransientSolver::advance: negative duration");
  const int steps = static_cast<int>(std::ceil(duration / dt_ - 1e-12));
  for (int s = 0; s < steps; ++s) step();
}

}  // namespace tac3d::thermal
