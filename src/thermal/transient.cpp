#include "thermal/transient.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "sparse/kernels.hpp"

namespace tac3d::thermal {

TransientSolver::TransientSolver(RcModel& model, double dt,
                                 sparse::SolverKind kind,
                                 sparse::StructureCache* cache)
    : model_(model), dt_(dt), kind_(kind), cache_(cache) {
  require(dt > 0.0, "TransientSolver: dt must be positive");
  const std::int32_t n = model_.node_count();
  state_.assign(n, std::max(model_.grid().spec().ambient,
                            model_.grid().spec().coolant_inlet));
  rhs_.assign(n, 0.0);
  c_over_dt_.assign(n, 0.0);
  const std::span<const double> c = model_.capacitance();
  for (std::int32_t i = 0; i < n; ++i) c_over_dt_[i] = c[i] / dt_;

  a_ = model_.conductance();  // copy pattern and values once
  diag_vidx_.assign(n, -1);
  for (std::int32_t i = 0; i < n; ++i) {
    diag_vidx_[i] = a_.entry_index(i, i);
    require(diag_vidx_[i] >= 0, "TransientSolver: missing diagonal entry");
  }
  rebuild_matrix();
  solver_ = sparse::make_solver(
      kind_, a_, cache_ != nullptr ? cache_->get(a_) : nullptr);
  model_version_ = model_.version();
}

void TransientSolver::rebuild_matrix() {
  const sparse::CsrMatrix& g = model_.conductance();
  std::copy(g.values().begin(), g.values().end(), a_.values_mut().begin());
  const std::span<double> v = a_.values_mut();
  for (std::size_t i = 0; i < diag_vidx_.size(); ++i) {
    v[diag_vidx_[i]] += c_over_dt_[i];
  }
}

void TransientSolver::set_state(std::vector<double> temps) {
  require(static_cast<std::int32_t>(temps.size()) == model_.node_count(),
          "TransientSolver::set_state: size mismatch");
  state_ = std::move(temps);
}

void TransientSolver::initialize_steady() {
  set_state(model_.steady_state(sparse::SolverKind::kBicgstabIlu0, cache_));
}

void TransientSolver::step() {
  if (model_.version() != model_version_) {
    rebuild_matrix();
    solver_->update_values(a_);
    model_version_ = model_.version();
  }
  // rhs = P + (C/dt) T_n, built in one fused pass.
  model_.rhs_plus_scaled_into(rhs_, c_over_dt_, state_);
  solver_->solve(rhs_, state_);
  time_ += dt_;
}

void TransientSolver::advance(double duration) {
  require(duration >= 0.0, "TransientSolver::advance: negative duration");
  const int steps = static_cast<int>(std::ceil(duration / dt_ - 1e-12));
  for (int s = 0; s < steps; ++s) step();
}

}  // namespace tac3d::thermal
