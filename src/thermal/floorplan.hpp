#pragma once
/// \file floorplan.hpp
/// \brief Named rectangular power elements on one tier of the stack.

#include <iosfwd>
#include <string>
#include <vector>

#include "common/geometry.hpp"

namespace tac3d::thermal {

/// One named block of a floorplan.
struct FloorplanElement {
  std::string name;
  Rect rect;  ///< position within the tier [m]
};

/// Collection of non-overlapping named blocks.
class Floorplan {
 public:
  Floorplan() = default;

  /// Append an element; names must be unique within the floorplan.
  void add(std::string name, Rect rect);

  std::size_t size() const { return elements_.size(); }
  bool empty() const { return elements_.empty(); }
  const FloorplanElement& operator[](std::size_t i) const {
    return elements_[i];
  }
  const std::vector<FloorplanElement>& elements() const { return elements_; }

  /// Index of the element named \p name; throws if absent.
  std::size_t index_of(const std::string& name) const;

  /// True if an element named \p name exists.
  bool has(const std::string& name) const;

  /// Verify elements do not overlap and fit in a width x length tier.
  void validate(double width, double length) const;

  /// Sum of element areas [m^2].
  double total_area() const;

  /// Parse the text format: one element per line,
  /// `name x_mm y_mm w_mm h_mm`, '#' comments, blank lines ignored.
  static Floorplan parse(std::istream& in);

  /// Serialize to the same text format.
  std::string to_text() const;

  /// Coarse ASCII rendering (for the Fig. 1 layout bench); each element
  /// is drawn with the first letters of its name.
  std::string ascii_art(double width, double length, int text_cols = 48) const;

 private:
  std::vector<FloorplanElement> elements_;
};

}  // namespace tac3d::thermal
