#include "thermal/operator.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace tac3d::thermal {

ThermalOperator::ThermalOperator(const RcModel& model, double dt)
    : model_(&model), dt_(dt) {
  require(dt > 0.0, "ThermalOperator: dt must be positive");
  const std::int32_t n = model.node_count();

  // Constant part: static conduction plus C/dt on the diagonal. The
  // pattern is copied from the assembled conductance, so the advection
  // value indices of the model's AdvectionEntry lists address a_'s
  // values array directly.
  a_ = model.conductance();
  const std::span<const double> s = model.static_conductance().values();
  base_values_.assign(s.begin(), s.end());
  const std::span<const double> c = model.capacitance();
  for (std::int32_t i = 0; i < n; ++i) {
    const std::int64_t d = a_.entry_index(i, i);
    require(d >= 0, "ThermalOperator: missing diagonal entry");
    base_values_[d] += c[i] / dt_;
  }

  seed_from_base();
}

ThermalOperator::ThermalOperator(const ThermalOperator& prototype,
                                 const RcModel& model, double dt)
    : model_(&model),
      dt_(prototype.dt_),
      a_(prototype.a_),
      base_values_(prototype.base_values_) {
  require(dt == prototype.dt_,
          "ThermalOperator: prototype time step differs from the session's");
  // Exact sparsity-pattern identity (O(nnz) integer compare — cheap next
  // to the value copies above). Equality of the frozen base VALUES is
  // the caller's contract: checking it would mean recomputing them,
  // which is exactly the work the rebind exists to skip — pass a
  // prototype built from an equivalently-constructed model (same stack,
  // grid and calibration), e.g. the geometry-keyed prototypes of
  // sim::ScenarioBank.
  const sparse::CsrMatrix& g = model.conductance();
  require(g.rows() == a_.rows() && g.nnz() == a_.nnz() &&
              std::equal(g.row_ptr().begin(), g.row_ptr().end(),
                         a_.row_ptr().begin()) &&
              std::equal(g.col_idx().begin(), g.col_idx().end(),
                         a_.col_idx().begin()),
          "ThermalOperator: prototype pattern does not match the model");
  seed_from_base();
}

void ThermalOperator::seed_from_base() {
  // Apply the current flows on top of the constant part through the
  // regular update path (one advection-composition loop to maintain):
  // every cavity is seeded stale so update_flow() rewrites it.
  std::copy(base_values_.begin(), base_values_.end(),
            a_.values_mut().begin());
  std::size_t max_dirty_rows = 0;
  for (int cav = 0; cav < model_->n_cavities(); ++cav) {
    max_dirty_rows += model_->advection_entries(cav).size();
  }
  dirty_rows_.reserve(max_dirty_rows);
  applied_state_.assign(model_->n_cavities(),
                        ~std::uint64_t{0});  // != any real state counter
  update_flow();
  flow_updates_ = 0;  // construction is not a flow update
  last_dirty_fraction_ = 0.0;
}

bool ThermalOperator::in_sync() const {
  for (int cav = 0; cav < model_->n_cavities(); ++cav) {
    if (applied_state_[cav] != model_->cavity_flow_state(cav)) return false;
  }
  return true;
}

sparse::ValueUpdate ThermalOperator::update_flow() {
  dirty_rows_.clear();  // capacity reserved at construction; no alloc
  std::int64_t dirty_entries = 0;
  const std::span<double> v = a_.values_mut();
  for (int cav = 0; cav < model_->n_cavities(); ++cav) {
    const std::uint64_t state = model_->cavity_flow_state(cav);
    if (applied_state_[cav] == state) continue;
    const double q = model_->cavity_flow(cav);
    for (const AdvectionEntry& e : model_->advection_entries(cav)) {
      const double a = e.unit * q;
      v[e.diag_vidx] = base_values_[e.diag_vidx] + a;
      ++dirty_entries;
      if (e.upstream_vidx >= 0) {
        v[e.upstream_vidx] = base_values_[e.upstream_vidx] - a;
        ++dirty_entries;
      }
      dirty_rows_.push_back(e.node);  // one entry per node: no duplicates
    }
    applied_state_[cav] = state;
  }
  sparse::ValueUpdate update;
  update.rows = dirty_rows_;
  update.dirty_fraction =
      a_.nnz() > 0 ? static_cast<double>(dirty_entries) /
                         static_cast<double>(a_.nnz())
                   : 0.0;
  last_dirty_fraction_ = update.dirty_fraction;
  if (dirty_entries > 0) ++flow_updates_;
  return update;
}

}  // namespace tac3d::thermal
