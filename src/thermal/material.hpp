#pragma once
/// \file material.hpp
/// \brief Solid material properties for the RC thermal model.

#include <string>

namespace tac3d::thermal {

/// Homogeneous isotropic solid.
struct Material {
  std::string name;
  double conductivity = 0.0;              ///< k [W/(m K)]
  double volumetric_heat_capacity = 0.0;  ///< rho*c [J/(m^3 K)]
};

/// Standard materials; silicon and wiring match Table I of the paper.
namespace materials {

/// Bulk silicon: k = 130 W/(m K), cv = 1.63566e6 J/(m^3 K) (Table I).
Material silicon();

/// BEOL/wiring and inter-tier bond material: k = 2.25 W/(m K),
/// cv = 2.174502e6 J/(m^3 K) (Table I).
Material wiring();

/// Copper (heat spreader).
Material copper();

/// Thermal interface material between die stack and spreader.
Material tim();

/// Pyrex lid used on the two-phase test vehicles.
Material pyrex();

}  // namespace materials

}  // namespace tac3d::thermal
