#pragma once
/// \file operator.hpp
/// \brief The backward-Euler thermal operator A = C/dt + G, split into
/// its constant and flow-dependent parts.
///
/// The conduction/capacitance part (solid couplings, convective wall
/// coupling, heat-sink path, C/dt on the diagonal) never changes at run
/// time; only the advection values — resolved to value-array indices at
/// assembly (thermal::AdvectionEntry, the PR 2 contract) — depend on the
/// cavity flow rates. ThermalOperator therefore materializes A once and
/// keeps a frozen copy of its constant values; update_flow() rewrites
/// exactly the advection entries of the cavities whose flow state
/// changed (an indexed value pass: no re-assembly, no allocation) and
/// reports which rows were touched and what fraction of the matrix that
/// was, so the bound solver can refresh its factorization lazily or
/// partially (see sparse/refresh.hpp).

#include <cstdint>
#include <span>
#include <vector>

#include "sparse/csr.hpp"
#include "sparse/refresh.hpp"
#include "thermal/rc_model.hpp"

namespace tac3d::thermal {

/// A = C/dt + G(flow) with indexed in-place flow updates.
class ThermalOperator {
 public:
  /// Materialize the operator for \p model at time step \p dt [s]; the
  /// model must outlive the operator. All storage (matrix copy, frozen
  /// constant values, dirty-row scratch) is allocated here.
  ThermalOperator(const RcModel& model, double dt);

  /// Copy-and-rebind: adopt \p prototype's materialized matrix and
  /// frozen constant values, bound to \p model — which must come from an
  /// equivalently-constructed stack (the exact sparsity pattern and time
  /// step are verified; equal conductance/capacitance VALUES are the
  /// caller's contract, e.g. the geometry-keyed clones a ScenarioBank
  /// hands out). Skips the per-row diagonal index resolution of a fresh
  /// materialization; the seeded update_flow syncs the advection values
  /// to \p model's current flows, so the result is bitwise identical to
  /// ThermalOperator(model, dt).
  ThermalOperator(const ThermalOperator& prototype, const RcModel& model,
                  double dt);

  const RcModel& model() const { return *model_; }
  double dt() const { return dt_; }

  /// The current backward-Euler matrix (same sparsity pattern as
  /// model().conductance(), constant across flow updates).
  const sparse::CsrMatrix& matrix() const { return a_; }

  /// True when the matrix values reflect the model's current flow state.
  bool in_sync() const;

  /// Rewrite the advection values of every cavity whose flow rate or
  /// column profile changed since the last call. Pure indexed value
  /// rewrite; performs no heap allocation. The returned ValueUpdate
  /// (dirty rows + dirty fraction) stays valid until the next call.
  sparse::ValueUpdate update_flow();

  /// Dirty fraction of the last update_flow() (0 when it was a no-op).
  double last_dirty_fraction() const { return last_dirty_fraction_; }

  /// Number of update_flow() calls that actually rewrote values.
  std::uint64_t flow_updates() const { return flow_updates_; }

 private:
  /// Shared ctor tail: reset the matrix values to the frozen constant
  /// part, size the dirty-row scratch, seed every cavity stale and sync
  /// the advection values through the regular update path — the one
  /// seeding protocol both the fresh and the copy-and-rebind ctor run,
  /// which is what keeps a rebound operator bitwise identical to fresh
  /// materialization.
  void seed_from_base();

  const RcModel* model_;
  double dt_;
  sparse::CsrMatrix a_;
  /// Frozen constant part: conduction + capacitance/dt values on a_'s
  /// pattern; advection rewrites compose on top of it.
  std::vector<double> base_values_;
  /// Per-cavity RcModel::cavity_flow_state() mirrored at the last sync.
  std::vector<std::uint64_t> applied_state_;
  std::vector<std::int32_t> dirty_rows_;  ///< scratch for update_flow()
  double last_dirty_fraction_ = 0.0;
  std::uint64_t flow_updates_ = 0;
};

}  // namespace tac3d::thermal
