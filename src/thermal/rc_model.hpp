#pragma once
/// \file rc_model.hpp
/// \brief RC thermal network assembled from a ThermalGrid: conduction,
/// convective wall-fluid coupling, fluid advection, heat-sink path.
///
/// The network follows the compact-transient-model lineage of the
/// paper's Section II-D (3D-ICE): every grid cell is one node with a
/// capacitance; conductances connect vertical and lateral neighbors;
/// cavity fluid nodes couple to the adjacent solid layers through an
/// effective convective conductance (with wall-fin augmentation in the
/// homogenized mode) plus a wall-bypass conduction path, and to their
/// upstream neighbors through first-order upwind advection terms that
/// scale linearly with the cavity flow rate. Only the advection entries
/// depend on the flow rate (fully developed laminar Nusselt number is
/// flow-independent), so a flow change is an in-place value update.

#include <cstdint>
#include <span>
#include <vector>

#include "sparse/csr.hpp"
#include "sparse/solver.hpp"
#include "thermal/grid.hpp"

namespace tac3d::thermal {

/// One first-order-upwind advection contribution of a fluid cell: the
/// coefficient `unit * Q` is added to the diagonal of \p node and
/// subtracted from the (\p node, \p upstream) entry (or credited to the
/// inlet RHS when \p upstream is -1). The value-array indices are
/// resolved once at assembly and are the *contract* of the flow-update
/// path: any matrix that copies the conductance pattern (e.g. the
/// backward-Euler operator, see thermal/operator.hpp) can apply a flow
/// change as a straight indexed value rewrite through them.
struct AdvectionEntry {
  std::int32_t node;
  std::int32_t upstream;  ///< -1 = inlet boundary
  std::int32_t col;       ///< grid column (flow-share profile index)
  double unit;            ///< coefficient per unit cavity flow [W s/(K m^3)]
  /// Positions in the conductance values() array (same pattern => same
  /// positions), so flow updates need no per-entry pattern search.
  std::int64_t diag_vidx = -1;
  std::int64_t upstream_vidx = -1;  ///< -1 = inlet boundary
};

/// Assembled RC network with runtime-adjustable power and flow.
class RcModel {
 public:
  RcModel(StackSpec spec, GridOptions opts);

  const ThermalGrid& grid() const { return grid_; }
  std::int32_t node_count() const { return grid_.node_count(); }
  int n_cavities() const { return grid_.spec().n_cavities(); }

  // --- power ---------------------------------------------------------
  /// Set the power [W] of every floorplan element (order of
  /// grid().element(e)).
  void set_element_powers(std::span<const double> watts);

  /// Set one element's power [W].
  void set_element_power(int element, double watts);

  /// Sum of all element powers [W].
  double total_power() const;

  /// Current per-element powers [W] (order of grid().element(e)) — the
  /// vector the last set_element_powers() applied. Lets callers capture
  /// and later replay the model's power state exactly (e.g. the cached
  /// initial state of sim/bank.hpp).
  std::span<const double> element_powers() const { return element_power_; }

  /// In-place power update without a staging copy: write watts directly
  /// into this span (size element_count()), then call
  /// commit_element_powers() to scatter them into the solver RHS. Used
  /// by the allocation-free control tail; the two-phase contract lets a
  /// lane-fused kernel fill many models' vectors before committing.
  std::span<double> element_powers_writable() { return element_power_; }

  /// Rebuild the per-node power RHS from element_powers_writable().
  void commit_element_powers();

  /// The per-node power RHS itself (size node_count()). Exposed so a
  /// batched commit can scatter all lanes in one traversal of the shared
  /// element->cell weights; contents must match what
  /// commit_element_powers() would produce from element_powers().
  std::span<double> power_rhs_writable() { return power_rhs_; }

  // --- coolant flow ----------------------------------------------------
  /// Set the volumetric flow of one cavity [m^3/s]. Flow starts at 0.
  void set_cavity_flow(int cavity, double q_m3s);

  /// Set the same flow on all cavities [m^3/s].
  void set_all_flows(double q_m3s);

  double cavity_flow(int cavity) const { return cavity_flow_[cavity]; }

  /// Redistribute one cavity's flow across the grid columns (e.g. from a
  /// fluid-focusing microchannel::HydraulicNetwork solve): \p shares has
  /// one non-negative weight per grid column. Weights on columns that
  /// carry no fluid are dropped (the advection pattern is fixed at
  /// assembly) and the rest normalized to sum to 1, so a profile
  /// resampled with microchannel::coarsen_fractions can be passed in
  /// as-is. Applied as the same indexed value rewrite as a flow-rate
  /// change.
  void set_cavity_flow_profile(int cavity, std::span<const double> shares);

  /// Current per-column flow share of a cavity (sums to 1).
  std::span<const double> cavity_flow_shares(int cavity) const {
    return cavity_share_[cavity];
  }

  /// Monotone counter bumped whenever the system matrix changes (any
  /// cavity's flow rate or column profile). A coarse change counter for
  /// external observers; the staleness contract of the solver path is
  /// the per-cavity cavity_flow_state() below (which identifies *which*
  /// cavities changed, see thermal::ThermalOperator::update_flow).
  std::uint64_t version() const { return version_; }

  /// Monotone per-cavity counter bumped when that cavity's flow rate or
  /// column profile changes; mirrors of the advection values (see
  /// thermal::ThermalOperator) use it to sync only the changed cavities.
  std::uint64_t cavity_flow_state(int cavity) const {
    return cavity_state_[cavity];
  }

  /// Monotone per-cavity counter bumped only when the column profile
  /// changes (set_cavity_flow_profile). Together with cavity_flow(),
  /// (profile version, flow rate) identifies a cavity's advection
  /// values exactly — the key of the flow-transition warm-start cache.
  std::uint64_t cavity_profile_version(int cavity) const {
    return cavity_profile_[cavity];
  }

  /// The advection entries of one cavity (value indices resolved against
  /// conductance()'s pattern).
  std::span<const AdvectionEntry> advection_entries(int cavity) const {
    return cavity_adv_[cavity];
  }

  // --- system access ---------------------------------------------------
  /// Current conductance matrix G (advection included).
  const sparse::CsrMatrix& conductance() const { return g_; }

  /// Flow-independent part of G (conduction, convection, sink path) on
  /// the same sparsity pattern; G = static + advection(flows).
  const sparse::CsrMatrix& static_conductance() const { return g_static_; }

  /// Nodal heat capacities [J/K].
  std::span<const double> capacitance() const { return c_; }

  /// Fill \p out with the current right-hand side: injected power plus
  /// boundary terms. \p out must have node_count() entries; performs no
  /// heap allocation (the transient stepping loop calls it every step).
  void rhs_into(std::span<double> out) const;

  /// Backward-Euler RHS in one fused pass:
  ///   out[i] = rhs[i] + scale[i] * x[i]
  /// with scale = C/dt and x = T_n. No heap allocation.
  void rhs_plus_scaled_into(std::span<double> out,
                            std::span<const double> scale,
                            std::span<const double> x) const;

  // --- solves ----------------------------------------------------------
  /// Steady-state temperatures [K] for the current power and flows.
  /// A non-null \p cache shares the symbolic solver analysis across
  /// models with the same grid pattern (see sparse::StructureCache).
  std::vector<double> steady_state(
      sparse::SolverKind kind = sparse::SolverKind::kBicgstabIlu0,
      sparse::StructureCache* cache = nullptr) const;

  // --- sensors / diagnostics -------------------------------------------
  /// Power-weighted maximum cell temperature of an element [K].
  double element_max(std::span<const double> temps, int element) const;

  /// Area-weighted mean temperature of an element [K].
  double element_avg(std::span<const double> temps, int element) const;

  /// Maximum temperature over all grid cells (sink node excluded) [K].
  double max_temperature(std::span<const double> temps) const;

  /// Maximum cell temperature within one grid layer [K].
  double layer_max(std::span<const double> temps, int grid_layer) const;

  /// Flow-weighted outlet fluid temperature of a cavity [K].
  double cavity_outlet_temp(std::span<const double> temps, int cavity) const;

  /// Heat carried away by a cavity's coolant [W] (upwind telescoped:
  /// m_dot c_p (T_outlet - T_inlet) summed over fluid columns).
  double advective_heat_removal(std::span<const double> temps,
                                int cavity) const;

  /// Heat leaving through the air-cooled sink [W] (0 if no sink).
  double sink_heat_removal(std::span<const double> temps) const;

 private:
  void assemble();
  /// Rewrite one cavity's advection values (and inlet RHS terms) for its
  /// current flow and column profile — a straight indexed pass over
  /// advection_entries(cavity), no re-assembly, no allocation.
  void apply_cavity_flow(int cavity);
  /// Grid layer index of a cavity with the given id.
  int cavity_grid_layer(int cavity) const;

  ThermalGrid grid_;
  sparse::CsrMatrix g_static_;  ///< flow-independent part
  sparse::CsrMatrix g_;         ///< current matrix (static + advection)
  std::vector<double> c_;
  std::vector<double> rhs_static_;  ///< ambient/sink boundary terms
  std::vector<double> rhs_flow_;    ///< inlet advection terms
  std::vector<double> power_rhs_;   ///< injected element power per node
  std::vector<double> element_power_;
  std::vector<std::vector<AdvectionEntry>> cavity_adv_;
  std::vector<double> cavity_flow_;
  std::vector<double> cavity_rho_cp_;  ///< advection coefficient per Q
  std::vector<std::vector<double>> cavity_share_;  ///< per-column flow share
  std::vector<std::uint64_t> cavity_state_;
  std::vector<std::uint64_t> cavity_profile_;
  std::uint64_t version_ = 0;
};

}  // namespace tac3d::thermal
