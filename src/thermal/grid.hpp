#pragma once
/// \file grid.hpp
/// \brief Spatial discretization of a StackSpec into a 3D cell grid.
///
/// Each layer is divided into rows x cols cells. Rows run along the
/// coolant flow direction (row 0 = inlet edge); columns run across it.
/// Cavity layers can be modeled two ways:
///  * homogenized ("porous-media", the paper's system-level model):
///    every cavity cell lumps several channels plus their walls, with an
///    effective wetted area and a wall-bypass conduction path;
///  * discrete: columns alternate physical channel and wall columns at
///    the channel pitch (the detailed validation model).

#include <cstdint>
#include <string>
#include <vector>

#include "thermal/stackup.hpp"

namespace tac3d::thermal {

/// Discretization controls.
struct GridOptions {
  int rows = 16;  ///< cells along the flow direction
  int cols = 16;  ///< cells across the flow (homogenized mode)
  bool discrete_channels = false;  ///< resolve each channel/wall column
  int x_refine = 1;  ///< subcolumns per channel/wall (discrete mode only)
  int z_refine = 1;  ///< sublayers per solid layer
};

/// One discretized layer (solid layers may be split into sublayers).
struct GridLayer {
  int spec_layer = -1;  ///< index into StackSpec::layers
  LayerKind kind = LayerKind::kSolid;
  double thickness = 0.0;  ///< sublayer thickness [m]
  Material material;
  int cavity_id = -1;
  /// Floorplan carried by this sublayer (top sublayer of a source layer).
  int floorplan_index = -1;
  // Cavity data (kind == kCavity):
  double channel_width = 0.0;
  double channel_pitch = 0.0;
  microchannel::Coolant coolant;
  std::string name;
};

/// A power element mapped onto grid cells.
struct ElementInfo {
  std::string name;
  int grid_layer = -1;
  int floorplan = -1;
  int index_in_floorplan = -1;
  Rect rect;
};

/// Discretized stack: geometry, node numbering, and floorplan mapping.
class ThermalGrid {
 public:
  ThermalGrid(StackSpec spec, GridOptions opts);

  const StackSpec& spec() const { return spec_; }
  const GridOptions& options() const { return opts_; }

  int rows() const { return opts_.rows; }
  int cols() const { return n_cols_; }
  int n_layers() const { return static_cast<int>(layers_.size()); }
  const GridLayer& layer(int l) const { return layers_[l]; }

  /// Node index of cell (layer, row, col).
  std::int32_t cell_node(int l, int r, int c) const {
    return static_cast<std::int32_t>((static_cast<std::int64_t>(l) *
                                          opts_.rows +
                                      r) *
                                         n_cols_ +
                                     c);
  }
  bool has_sink() const { return spec_.sink.present; }
  /// Node index of the lumped heat-sink node (-1 when absent).
  std::int32_t sink_node() const;
  std::int32_t node_count() const;

  double dx(int c) const { return dx_[c]; }
  double dy(int r) const { return dy_[r]; }
  double cell_area(int r, int c) const { return dx_[c] * dy_[r]; }
  double chip_area() const { return spec_.width * spec_.length; }

  /// Fraction of column \p c occupied by channels in cavity layers
  /// (identical for every cavity; 1 = pure fluid column, 0 = wall).
  double channel_fraction(int c) const { return channel_fraction_[c]; }

  /// Fraction of the total cavity flow carried by fluid column \p c.
  double column_flow_share(int c) const { return flow_share_[c]; }

  // --- power elements -----------------------------------------------
  struct CellWeight {
    std::int32_t node;
    double weight;  ///< fraction of the element's power into this cell
  };

  int element_count() const { return static_cast<int>(elements_.size()); }
  const ElementInfo& element(int e) const { return elements_[e]; }
  /// Element id by (globally unique) name; throws if absent/ambiguous.
  int element_id(const std::string& name) const;
  const std::vector<CellWeight>& element_cells(int e) const {
    return element_cells_[e];
  }

 private:
  void build_columns();
  void build_layers();
  void map_elements();

  StackSpec spec_;
  GridOptions opts_;
  int n_cols_ = 0;
  std::vector<double> dx_;
  std::vector<double> dy_;
  std::vector<double> x_left_;  ///< left edge of each column
  std::vector<double> channel_fraction_;
  std::vector<double> flow_share_;
  std::vector<GridLayer> layers_;
  std::vector<ElementInfo> elements_;
  std::vector<std::vector<CellWeight>> element_cells_;
};

}  // namespace tac3d::thermal
