#include "thermal/rc_model.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "microchannel/duct.hpp"

namespace tac3d::thermal {

namespace {

/// Accumulate a two-node conductance into the triplet list.
void add_coupling(std::vector<sparse::Triplet>& t, std::int32_t i,
                  std::int32_t j, double g) {
  if (g <= 0.0) return;
  t.push_back({i, i, g});
  t.push_back({j, j, g});
  t.push_back({i, j, -g});
  t.push_back({j, i, -g});
}

}  // namespace

RcModel::RcModel(StackSpec spec, GridOptions opts)
    : grid_(std::move(spec), opts) {
  cavity_flow_.assign(n_cavities(), 0.0);
  cavity_adv_.resize(n_cavities());
  cavity_rho_cp_.assign(n_cavities(), 0.0);
  cavity_share_.resize(n_cavities());
  cavity_state_.assign(n_cavities(), 0);
  cavity_profile_.assign(n_cavities(), 0);
  element_power_.assign(grid_.element_count(), 0.0);
  assemble();
  for (int cav = 0; cav < n_cavities(); ++cav) apply_cavity_flow(cav);
}

int RcModel::cavity_grid_layer(int cavity) const {
  for (int l = 0; l < grid_.n_layers(); ++l) {
    if (grid_.layer(l).cavity_id == cavity) return l;
  }
  throw InvalidArgument("RcModel: no cavity with id " +
                        std::to_string(cavity));
}

void RcModel::assemble() {
  const int L = grid_.n_layers();
  const int R = grid_.rows();
  const int C = grid_.cols();
  const std::int32_t n = grid_.node_count();

  std::vector<sparse::Triplet> trips;
  trips.reserve(static_cast<std::size_t>(n) * 8);
  c_.assign(n, 0.0);
  rhs_static_.assign(n, 0.0);
  rhs_flow_.assign(n, 0.0);
  power_rhs_.assign(n, 0.0);

  // Per-cavity film coefficient and fin data (flow-independent for
  // fully developed laminar flow).
  struct CavityCoef {
    double h = 0.0;
    double eta = 0.0;
    double mcp_per_flow = 0.0;  ///< rho*cp: advection coefficient per Q
  };
  std::vector<CavityCoef> coef(n_cavities());
  for (int l = 0; l < L; ++l) {
    const GridLayer& gl = grid_.layer(l);
    if (gl.kind != LayerKind::kCavity) continue;
    CavityCoef cc;
    const microchannel::RectDuct duct{gl.channel_width, gl.thickness};
    cc.h = microchannel::heat_transfer_coefficient(duct, gl.coolant);
    const double wall_w = gl.channel_pitch - gl.channel_width;
    cc.eta = microchannel::fin_efficiency(cc.h, gl.material.conductivity,
                                          wall_w, gl.thickness / 2.0);
    cc.mcp_per_flow = gl.coolant.density * gl.coolant.specific_heat;
    coef[gl.cavity_id] = cc;
  }

  // --- vertical couplings --------------------------------------------
  for (int l = 0; l + 1 < L; ++l) {
    const GridLayer& a = grid_.layer(l);
    const GridLayer& b = grid_.layer(l + 1);
    for (int r = 0; r < R; ++r) {
      for (int c = 0; c < C; ++c) {
        const double area = grid_.cell_area(r, c);
        const std::int32_t na = grid_.cell_node(l, r, c);
        const std::int32_t nb = grid_.cell_node(l + 1, r, c);
        if (a.kind == LayerKind::kSolid && b.kind == LayerKind::kSolid) {
          const double res = a.thickness / (2.0 * a.material.conductivity) +
                             b.thickness / (2.0 * b.material.conductivity);
          add_coupling(trips, na, nb, area / res);
          continue;
        }
        // Exactly one of the pair is a cavity (validated by StackSpec).
        const bool a_is_cavity = a.kind == LayerKind::kCavity;
        const GridLayer& cav = a_is_cavity ? a : b;
        const GridLayer& sol = a_is_cavity ? b : a;
        const std::int32_t ncav = a_is_cavity ? na : nb;
        const std::int32_t nsol = a_is_cavity ? nb : na;
        const double phi = grid_.channel_fraction(c);
        if (phi <= 0.0) {
          // Wall column: plain solid conduction through the cavity wall.
          const double res =
              cav.thickness / (2.0 * cav.material.conductivity) +
              sol.thickness / (2.0 * sol.material.conductivity);
          add_coupling(trips, na, nb, area / res);
          continue;
        }
        const CavityCoef& cc = coef[cav.cavity_id];
        // Effective wetted area per face: channel floor/ceiling plus the
        // side walls acting as fins (homogenized); a pure fluid column
        // (discrete mode) couples over its full face only.
        double area_eff = area * phi;
        if (phi < 1.0) {
          area_eff +=
              area * cc.eta * cav.thickness / cav.channel_pitch;
        }
        const double res = sol.thickness /
                               (2.0 * sol.material.conductivity * area) +
                           1.0 / (cc.h * area_eff);
        add_coupling(trips, ncav, nsol, 1.0 / res);
      }
    }
  }

  // --- cavity wall bypass (homogenized) and capacitance splitting ----
  for (int l = 0; l < L; ++l) {
    const GridLayer& gl = grid_.layer(l);
    if (gl.kind != LayerKind::kCavity) continue;
    require(l > 0 && l + 1 < L, "RcModel: cavity on stack boundary");
    const GridLayer& below = grid_.layer(l - 1);
    const GridLayer& above = grid_.layer(l + 1);
    for (int r = 0; r < R; ++r) {
      for (int c = 0; c < C; ++c) {
        const double area = grid_.cell_area(r, c);
        const double phi = grid_.channel_fraction(c);
        const std::int32_t nc = grid_.cell_node(l, r, c);
        const std::int32_t nb = grid_.cell_node(l - 1, r, c);
        const std::int32_t na = grid_.cell_node(l + 1, r, c);
        const double vol = area * gl.thickness;
        if (phi <= 0.0) {
          c_[nc] += gl.material.volumetric_heat_capacity * vol;
          continue;
        }
        // Fluid heat capacity on the fluid node; the walls' capacity is
        // attributed to the neighboring solid cells.
        c_[nc] += gl.coolant.volumetric_heat_capacity() * phi * vol;
        const double wall_c =
            gl.material.volumetric_heat_capacity * (1.0 - phi) * vol;
        c_[nb] += 0.5 * wall_c;
        c_[na] += 0.5 * wall_c;
        if (phi < 1.0) {
          // Direct conduction through the walls, solid-to-solid.
          const double a_wall = area * (1.0 - phi);
          const double res =
              below.thickness / (2.0 * below.material.conductivity) +
              gl.thickness / gl.material.conductivity +
              above.thickness / (2.0 * above.material.conductivity);
          add_coupling(trips, nb, na, a_wall / res);
        }
      }
    }
  }

  // --- lateral couplings ----------------------------------------------
  for (int l = 0; l < L; ++l) {
    const GridLayer& gl = grid_.layer(l);
    const double t = gl.thickness;
    for (int r = 0; r < R; ++r) {
      for (int c = 0; c < C; ++c) {
        const std::int32_t nc = grid_.cell_node(l, r, c);
        // x-direction (across flow)
        if (c + 1 < C) {
          const std::int32_t nr = grid_.cell_node(l, r, c + 1);
          const double a_side = t * grid_.dy(r);
          if (gl.kind == LayerKind::kSolid) {
            const double res = (grid_.dx(c) + grid_.dx(c + 1)) /
                               (2.0 * gl.material.conductivity);
            add_coupling(trips, nc, nr, a_side / res);
          } else {
            const double p0 = grid_.channel_fraction(c);
            const double p1 = grid_.channel_fraction(c + 1);
            const CavityCoef& cc = coef[gl.cavity_id];
            if (p0 <= 0.0 && p1 <= 0.0) {
              const double res = (grid_.dx(c) + grid_.dx(c + 1)) /
                                 (2.0 * gl.material.conductivity);
              add_coupling(trips, nc, nr, a_side / res);
            } else if (p0 >= 1.0 && p1 >= 1.0) {
              const double res = (grid_.dx(c) + grid_.dx(c + 1)) /
                                 (2.0 * gl.coolant.conductivity);
              add_coupling(trips, nc, nr, a_side / res);
            } else if ((p0 >= 1.0 && p1 <= 0.0) ||
                       (p0 <= 0.0 && p1 >= 1.0)) {
              const double dx_wall = p0 <= 0.0 ? grid_.dx(c) : grid_.dx(c + 1);
              const double res =
                  1.0 / (cc.h * a_side) +
                  dx_wall / (2.0 * gl.material.conductivity * a_side);
              add_coupling(trips, nc, nr, 1.0 / res);
            }
            // Homogenized cells (0 < phi < 1): lateral transport is
            // blocked by the walls; neglected.
          }
        }
        // y-direction (along flow)
        if (r + 1 < R) {
          const std::int32_t nr = grid_.cell_node(l, r + 1, c);
          const double a_side = t * grid_.dx(c);
          const double phi = grid_.channel_fraction(c);
          if (gl.kind == LayerKind::kSolid ||
              (gl.kind == LayerKind::kCavity && phi <= 0.0)) {
            const double res = (grid_.dy(r) + grid_.dy(r + 1)) /
                               (2.0 * gl.material.conductivity);
            add_coupling(trips, nc, nr, a_side / res);
          }
          // Fluid columns: transport along the flow is advection
          // (assembled below); axial conduction is negligible.
        }
      }
    }
  }

  // --- solid capacitances ----------------------------------------------
  for (int l = 0; l < L; ++l) {
    const GridLayer& gl = grid_.layer(l);
    if (gl.kind != LayerKind::kSolid) continue;
    for (int r = 0; r < R; ++r) {
      for (int c = 0; c < C; ++c) {
        c_[grid_.cell_node(l, r, c)] +=
            gl.material.volumetric_heat_capacity * grid_.cell_area(r, c) *
            gl.thickness;
      }
    }
  }

  // --- heat sink ---------------------------------------------------------
  if (grid_.has_sink()) {
    const HeatSinkSpec& sink = grid_.spec().sink;
    const std::int32_t ns = grid_.sink_node();
    const GridLayer& top = grid_.layer(L - 1);
    require(top.kind == LayerKind::kSolid,
            "RcModel: heat sink requires a solid top layer");
    for (int r = 0; r < R; ++r) {
      for (int c = 0; c < C; ++c) {
        const double area = grid_.cell_area(r, c);
        const double g_couple =
            sink.coupling_conductance * area / grid_.chip_area();
        const double res =
            top.thickness / (2.0 * top.material.conductivity * area) +
            1.0 / g_couple;
        add_coupling(trips, grid_.cell_node(L - 1, r, c), ns, 1.0 / res);
      }
    }
    trips.push_back({ns, ns, sink.conductance_to_ambient});
    rhs_static_[ns] +=
        sink.conductance_to_ambient * grid_.spec().ambient;
    c_[ns] += sink.capacitance;
  }

  // --- advection entries (placeholders; values applied per flow) -------
  for (int l = 0; l < L; ++l) {
    const GridLayer& gl = grid_.layer(l);
    if (gl.kind != LayerKind::kCavity) continue;
    auto& entries = cavity_adv_[gl.cavity_id];
    const double rho_cp = coef[gl.cavity_id].mcp_per_flow;
    cavity_rho_cp_[gl.cavity_id] = rho_cp;
    cavity_share_[gl.cavity_id].assign(C, 0.0);
    for (int c = 0; c < C; ++c) {
      const double share = grid_.column_flow_share(c);
      if (share <= 0.0) continue;
      cavity_share_[gl.cavity_id][c] = share;
      for (int r = 0; r < R; ++r) {
        AdvectionEntry e;
        e.node = grid_.cell_node(l, r, c);
        e.upstream = r > 0 ? grid_.cell_node(l, r - 1, c) : -1;
        e.col = c;
        e.unit = rho_cp * share;
        // Reserve the matrix pattern: diagonal exists via couplings;
        // the upstream entry may not, so add an explicit zero.
        trips.push_back({e.node, e.node, 0.0});
        if (e.upstream >= 0) trips.push_back({e.node, e.upstream, 0.0});
        entries.push_back(e);
      }
    }
  }

  g_static_ = sparse::CsrMatrix::from_triplets(n, n, std::move(trips));
  g_ = g_static_;

  // Resolve the advection entries to value-array indices once; the
  // per-flow-change update is then a straight indexed pass.
  for (auto& entries : cavity_adv_) {
    for (AdvectionEntry& e : entries) {
      e.diag_vidx = g_.entry_index(e.node, e.node);
      e.upstream_vidx =
          e.upstream >= 0 ? g_.entry_index(e.node, e.upstream) : -1;
      require(e.diag_vidx >= 0 && (e.upstream < 0 || e.upstream_vidx >= 0),
              "RcModel: advection entry missing from the sparsity pattern");
    }
  }
}

void RcModel::apply_cavity_flow(int cavity) {
  // Absolute indexed rewrite of one cavity's advection values on top of
  // the static part: touches exactly that cavity's entries (each fluid
  // node owns one entry, so "static + unit*q" needs no accumulation) —
  // no re-assembly, no full-matrix reset, no allocation.
  const double t_in = grid_.spec().coolant_inlet;
  const double q = cavity_flow_[cavity];
  const std::span<double> v = g_.values_mut();
  const std::span<const double> s = g_static_.values();
  for (const AdvectionEntry& e : cavity_adv_[cavity]) {
    const double a = e.unit * q;
    v[e.diag_vidx] = s[e.diag_vidx] + a;
    if (e.upstream_vidx >= 0) {
      v[e.upstream_vidx] = s[e.upstream_vidx] - a;
    } else {
      rhs_flow_[e.node] = a * t_in;
    }
  }
  ++version_;
  ++cavity_state_[cavity];
}

void RcModel::set_element_powers(std::span<const double> watts) {
  require(static_cast<int>(watts.size()) == grid_.element_count(),
          "RcModel::set_element_powers: size mismatch");
  std::copy(watts.begin(), watts.end(), element_power_.begin());
  commit_element_powers();
}

void RcModel::commit_element_powers() {
  std::fill(power_rhs_.begin(), power_rhs_.end(), 0.0);
  for (int e = 0; e < grid_.element_count(); ++e) {
    for (const auto& cw : grid_.element_cells(e)) {
      power_rhs_[cw.node] += element_power_[e] * cw.weight;
    }
  }
}

void RcModel::set_element_power(int element, double watts) {
  require(element >= 0 && element < grid_.element_count(),
          "RcModel::set_element_power: element out of range");
  std::vector<double> p = element_power_;
  p[element] = watts;
  set_element_powers(p);
}

double RcModel::total_power() const {
  double sum = 0.0;
  for (double p : element_power_) sum += p;
  return sum;
}

void RcModel::set_cavity_flow(int cavity, double q_m3s) {
  require(cavity >= 0 && cavity < n_cavities(),
          "RcModel::set_cavity_flow: cavity out of range");
  require(q_m3s >= 0.0, "RcModel::set_cavity_flow: negative flow");
  if (cavity_flow_[cavity] == q_m3s) return;
  cavity_flow_[cavity] = q_m3s;
  apply_cavity_flow(cavity);
}

void RcModel::set_all_flows(double q_m3s) {
  require(q_m3s >= 0.0, "RcModel::set_all_flows: negative flow");
  for (int cav = 0; cav < n_cavities(); ++cav) {
    if (cavity_flow_[cav] == q_m3s) continue;
    cavity_flow_[cav] = q_m3s;
    apply_cavity_flow(cav);
  }
}

void RcModel::set_cavity_flow_profile(int cavity,
                                      std::span<const double> shares) {
  require(cavity >= 0 && cavity < n_cavities(),
          "RcModel::set_cavity_flow_profile: cavity out of range");
  require(static_cast<int>(shares.size()) == grid_.cols(),
          "RcModel::set_cavity_flow_profile: one share per grid column");
  // Columns without fluid cells cannot take flow (the advection pattern
  // is fixed at assembly): their share is dropped and the remainder
  // renormalized, so a profile resampled from a finer channel bank
  // (coarsen_fractions) can be passed in directly.
  double sum = 0.0;
  for (int c = 0; c < grid_.cols(); ++c) {
    require(shares[c] >= 0.0,
            "RcModel::set_cavity_flow_profile: negative share");
    if (grid_.column_flow_share(c) > 0.0) sum += shares[c];
  }
  require(sum > 0.0,
          "RcModel::set_cavity_flow_profile: no flow left on columns "
          "with fluid cells");
  std::vector<double>& cur = cavity_share_[cavity];
  bool changed = false;
  for (int c = 0; c < grid_.cols(); ++c) {
    const double normalized =
        grid_.column_flow_share(c) > 0.0 ? shares[c] / sum : 0.0;
    changed = changed || cur[c] != normalized;
    cur[c] = normalized;
  }
  if (!changed) return;
  const double rho_cp = cavity_rho_cp_[cavity];
  for (AdvectionEntry& e : cavity_adv_[cavity]) {
    e.unit = rho_cp * cur[e.col];
  }
  ++cavity_profile_[cavity];
  apply_cavity_flow(cavity);
}

void RcModel::rhs_into(std::span<double> out) const {
  require(out.size() == power_rhs_.size(), "RcModel::rhs_into: size mismatch");
  const double* __restrict p = power_rhs_.data();
  const double* __restrict s = rhs_static_.data();
  const double* __restrict f = rhs_flow_.data();
  double* __restrict o = out.data();
  const std::size_t n = power_rhs_.size();
  for (std::size_t i = 0; i < n; ++i) o[i] = p[i] + s[i] + f[i];
}

void RcModel::rhs_plus_scaled_into(std::span<double> out,
                                   std::span<const double> scale,
                                   std::span<const double> x) const {
  require(out.size() == power_rhs_.size() && scale.size() == out.size() &&
              x.size() == out.size(),
          "RcModel::rhs_plus_scaled_into: size mismatch");
  const double* __restrict p = power_rhs_.data();
  const double* __restrict s = rhs_static_.data();
  const double* __restrict f = rhs_flow_.data();
  const double* __restrict c = scale.data();
  const double* __restrict xs = x.data();
  double* __restrict o = out.data();
  const std::size_t n = power_rhs_.size();
  for (std::size_t i = 0; i < n; ++i) {
    o[i] = p[i] + s[i] + f[i] + c[i] * xs[i];
  }
}

std::vector<double> RcModel::steady_state(sparse::SolverKind kind,
                                          sparse::StructureCache* cache) const {
  std::vector<double> b(power_rhs_.size());
  rhs_into(b);
  std::vector<double> x(b.size(),
                        std::max(grid_.spec().ambient,
                                 grid_.spec().coolant_inlet));
  auto solver = sparse::make_solver(
      kind, g_, cache != nullptr ? cache->get(g_) : nullptr);
  solver->solve(b, x);
  return x;
}

double RcModel::element_max(std::span<const double> temps,
                            int element) const {
  double best = -1e300;
  for (const auto& cw : grid_.element_cells(element)) {
    best = std::max(best, temps[cw.node]);
  }
  return best;
}

double RcModel::element_avg(std::span<const double> temps,
                            int element) const {
  double acc = 0.0;
  for (const auto& cw : grid_.element_cells(element)) {
    acc += temps[cw.node] * cw.weight;
  }
  return acc;
}

double RcModel::max_temperature(std::span<const double> temps) const {
  const std::int64_t cells = static_cast<std::int64_t>(grid_.n_layers()) *
                             grid_.rows() * grid_.cols();
  double best = -1e300;
  for (std::int64_t i = 0; i < cells; ++i) best = std::max(best, temps[i]);
  return best;
}

double RcModel::layer_max(std::span<const double> temps,
                          int grid_layer) const {
  double best = -1e300;
  for (int r = 0; r < grid_.rows(); ++r) {
    for (int c = 0; c < grid_.cols(); ++c) {
      best = std::max(best, temps[grid_.cell_node(grid_layer, r, c)]);
    }
  }
  return best;
}

double RcModel::cavity_outlet_temp(std::span<const double> temps,
                                   int cavity) const {
  const int l = cavity_grid_layer(cavity);
  const int r = grid_.rows() - 1;
  const std::vector<double>& share = cavity_share_[cavity];
  double acc = 0.0;
  for (int c = 0; c < grid_.cols(); ++c) {
    acc += share[c] * temps[grid_.cell_node(l, r, c)];
  }
  return acc;
}

double RcModel::advective_heat_removal(std::span<const double> temps,
                                       int cavity) const {
  const GridLayer& gl = grid_.layer(cavity_grid_layer(cavity));
  const double mcp =
      gl.coolant.density * gl.coolant.specific_heat * cavity_flow_[cavity];
  return mcp *
         (cavity_outlet_temp(temps, cavity) - grid_.spec().coolant_inlet);
}

double RcModel::sink_heat_removal(std::span<const double> temps) const {
  if (!grid_.has_sink()) return 0.0;
  return grid_.spec().sink.conductance_to_ambient *
         (temps[grid_.sink_node()] - grid_.spec().ambient);
}

}  // namespace tac3d::thermal
