#pragma once
/// \file transient.hpp
/// \brief Backward-Euler transient integration of an RcModel.
///
/// Each step solves (C/dt + G) T_{n+1} = (C/dt) T_n + P. The system
/// matrix only changes when a cavity flow rate changes (tracked via
/// RcModel::version()), in which case the solver's factorization or
/// preconditioner is refreshed in place. The previous temperature field
/// warm-starts the iterative solvers.
///
/// All storage — the system matrix, the RHS, the diagonal index map and
/// the solver's own workspace — is allocated at construction; step()
/// performs zero heap allocations (asserted by test_transient_alloc).

#include <memory>
#include <span>
#include <vector>

#include "sparse/solver.hpp"
#include "thermal/rc_model.hpp"

namespace tac3d::thermal {

/// Fixed-step backward-Euler integrator bound to one RcModel.
class TransientSolver {
 public:
  /// \param model the RC network (power/flows mutated externally)
  /// \param dt time step [s]
  /// \param kind linear solver strategy
  /// \param cache optional shared symbolic-structure cache (must outlive
  ///        this solver); models with the same grid pattern then skip
  ///        the RCM/ILU symbolic analysis
  TransientSolver(RcModel& model, double dt,
                  sparse::SolverKind kind =
                      sparse::SolverKind::kBicgstabIlu0,
                  sparse::StructureCache* cache = nullptr);

  double dt() const { return dt_; }

  /// Replace the temperature state (e.g. with a steady-state solution).
  void set_state(std::vector<double> temps);

  /// Initialize the state to the steady-state field for the current
  /// power and flows.
  void initialize_steady();

  /// Current temperature field [K].
  std::span<const double> temperatures() const { return state_; }

  /// Advance one time step with the model's current power and flows.
  /// Performs no heap allocations.
  void step();

  /// Advance ceil(duration/dt) steps.
  void advance(double duration);

  /// Elapsed simulated time [s].
  double time() const { return time_; }

 private:
  void rebuild_matrix();

  RcModel& model_;
  double dt_;
  sparse::SolverKind kind_;
  sparse::StructureCache* cache_;
  sparse::CsrMatrix a_;  ///< G + C/dt (same pattern as G)
  std::vector<std::int64_t> diag_vidx_;  ///< a_.values() index of (i, i)
  std::vector<double> c_over_dt_;        ///< C_i / dt, precomputed
  std::unique_ptr<sparse::LinearSolver> solver_;
  std::vector<double> state_;
  std::vector<double> rhs_;
  std::uint64_t model_version_ = 0;
  double time_ = 0.0;
};

}  // namespace tac3d::thermal
