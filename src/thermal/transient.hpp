#pragma once
/// \file transient.hpp
/// \brief Backward-Euler transient integration of an RcModel.
///
/// Each step solves (C/dt + G) T_{n+1} = (C/dt) T_n + P against a
/// ThermalOperator (see operator.hpp) that keeps the constant
/// conduction/capacitance part frozen and applies flow changes as
/// indexed value rewrites. The bound solver refreshes its factorization
/// under a staleness-aware sparse::RefreshPolicy instead of rebuilding
/// on every flow change, and a flow-transition warm-start cache predicts
/// the post-change temperature jump (keyed by the exact cavity flow
/// state), which collapses the Krylov iteration count of sustained
/// flow-modulated stepping.
///
/// All storage — the operator, the RHS, the warm-start slots and the
/// solver's own workspace — is allocated at construction; step()
/// performs zero heap allocations (asserted by test_transient_alloc).

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "sparse/refresh.hpp"
#include "sparse/solver.hpp"
#include "thermal/operator.hpp"
#include "thermal/rc_model.hpp"

namespace tac3d::thermal {

/// Fixed-step backward-Euler integrator bound to one RcModel.
class TransientSolver {
 public:
  /// Construction-time knobs beyond the time step.
  struct Options {
    /// Linear solver strategy.
    sparse::SolverKind kind = sparse::SolverKind::kBicgstabIlu0;
    /// Optional shared symbolic-structure cache (must outlive this
    /// solver); models with the same grid pattern then skip the RCM/ILU
    /// symbolic analysis.
    sparse::StructureCache* cache = nullptr;
    /// When to refresh the factorization/preconditioner after flow
    /// changes (see sparse/refresh.hpp).
    sparse::RefreshPolicy refresh{};
    /// Flow-transition warm-start cache: number of distinct flow states
    /// remembered (0 disables the predictor; ignored by direct solvers,
    /// which don't use initial guesses).
    int warm_start_slots = 16;
    /// Optional prototype operator to copy-and-rebind instead of
    /// materializing A = C/dt + G from scratch (must match the model's
    /// pattern and this solver's dt; see ThermalOperator). Only read
    /// during construction; null = build fresh. Bitwise neutral.
    const ThermalOperator* operator_prototype = nullptr;
    /// Relative residual tolerance of the per-step linear solves
    /// (iterative kinds only; the direct solver is exact). The default
    /// keeps the historical near-machine-precision contract; integrators
    /// whose accuracy budget is the backward-Euler truncation error can
    /// relax it — SimulationSession does (see
    /// SimulationConfig::solver_tolerance).
    double rel_tolerance = 1e-12;
    /// Warm-start ordinary (flow-unchanged) steps from the linear
    /// trajectory extrapolation x0 = T_n + (T_n - T_{n-1}) when its
    /// residual beats the plain warm start's. The closed loop drives the
    /// model with piecewise-linear utilization, so consecutive step
    /// deltas are nearly equal and the extrapolation starts the Krylov
    /// solve several decades closer to the solution. Residual-guarded:
    /// never worse than the plain warm start; the solve tolerance
    /// guarantees the answer either way.
    bool trajectory_warm_start = true;
    /// Physics-based fluid-jump predictor: when a flow change misses
    /// both the exact transition cache and the bracketing interpolation
    /// (a genuinely new flow regime — aperiodic modulation, first
    /// visits), seed x0 by relaxing the small fluid-row subsystem alone
    /// (a few Gauss-Seidel sweeps in upstream-first advection order,
    /// solid temperatures held at T_n). A flow step mostly moves the
    /// coolant field; solving just that block captures the jump at
    /// O(fluid nnz) cost. Residual-guarded like every other candidate.
    /// Iterative kinds only.
    bool fluid_jump_predictor = true;
    /// Order the banded direct solver with the fluid/advection rows
    /// constrained to the tail of the permutation
    /// (sparse::rcm_ordering_constrained) so flow updates re-eliminate
    /// only the tail block. Costs band width on tall stacks; the
    /// factor-slot cache (RefreshPolicy::factor_slots) is usually the
    /// better lever, so this is opt-in. kBandedLu only.
    bool flow_aware_banded = false;
  };

  /// \param model the RC network (power/flows mutated externally)
  /// \param dt time step [s]
  TransientSolver(RcModel& model, double dt, const Options& opts);

  /// Convenience overload with default refresh policy and predictor.
  TransientSolver(RcModel& model, double dt,
                  sparse::SolverKind kind =
                      sparse::SolverKind::kBicgstabIlu0,
                  sparse::StructureCache* cache = nullptr);

  double dt() const { return dt_; }

  /// Replace the temperature state (e.g. with a steady-state solution).
  void set_state(std::vector<double> temps);

  /// Initialize the state to the steady-state field for the current
  /// power and flows.
  void initialize_steady();

  /// Current temperature field [K].
  std::span<const double> temperatures() const { return state_; }

  /// Advance one time step with the model's current power and flows.
  /// Performs no heap allocations.
  void step();

  /// What begin_step_prepare() found: did the flow state change, which
  /// matrix rows were rewritten (spans into operator scratch, valid
  /// until the next flow update), and which warm-start candidates exist
  /// whose guard residuals begin_step_commit() expects.
  struct StepPrep {
    bool flow_changed = false;
    sparse::ValueUpdate update;
    /// predicted_candidate() is primed (flow-transition prediction:
    /// exact-match, interpolated or fluid-jump) — its squared residual
    /// gates it.
    bool want_predicted = false;
    bool predicted_is_interpolation = false;
    bool predicted_is_fluid_jump = false;
    /// trajectory_candidate() is primed (x0 = 2 T_n - T_{n-1}).
    bool want_trajectory = false;
  };

  /// Lockstep phase API (used by BatchedTransientSolver; step() is
  /// exactly begin_step() + solver update/solve + end_step()).
  /// begin_step() runs everything up to the linear solve — flow sync,
  /// RHS build, warm-start/predictor selection — leaving step_rhs() as b
  /// and step_solution() primed with the initial guess. The caller then
  /// solves A x = b its own way (writing the solution into
  /// step_solution()) and must call end_step() exactly once to commit
  /// (transition-slot bookkeeping, time advance). Performs no heap
  /// allocations.
  StepPrep begin_step();

  /// Finer split of begin_step() for drivers that evaluate the warm-
  /// start guard residuals themselves (the batched driver runs them as
  /// shared multi-lane matrix traversals):
  ///   prepare -> caller computes ||rhs - A c||² for the candidates the
  ///   returned StepPrep requests (and the plain warm start) -> commit.
  /// The commit decisions are pure comparisons of those values, so
  /// eager external evaluation selects exactly the state the lazy
  /// serial evaluation in begin_step() would.
  StepPrep begin_step_prepare();
  std::span<const double> predicted_candidate() const { return predicted_; }
  std::span<const double> trajectory_candidate() const { return traj_guess_; }
  /// \p rr_* are squared guard residuals ||rhs - A candidate||²;
  /// \p rr_plain the plain warm start's (current temperatures);
  /// \p bb = ||rhs||². Values whose candidate was not requested are
  /// ignored; rr_plain is only read when a requested candidate is not
  /// already at the solve tolerance.
  void begin_step_commit(double rr_predicted, double rr_trajectory,
                         double rr_plain, double bb);

  /// The backward-Euler RHS built by the last begin_step().
  std::span<const double> step_rhs() const { return rhs_; }

  /// Between begin_step() and end_step(): the initial guess on entry,
  /// the solution on exit (aliases temperatures()).
  std::span<double> step_solution() { return state_; }

  /// Commit the solve the caller wrote into step_solution().
  void end_step();

  /// Advance ceil(duration/dt) steps.
  void advance(double duration);

  /// Elapsed simulated time [s].
  double time() const { return time_; }

  /// Advance time() by \p n steps without stepping: the same repeated
  /// `time_ += dt` a real step performs, so the clock stays bitwise
  /// identical when limit-cycle replay (sim/replay.hpp) fast-forwards
  /// whole cycles without solving. time() is informational — it never
  /// feeds the stepping arithmetic — but keeping it exact keeps every
  /// observable of a replayed run equal to the step-everything run.
  void advance_time_steps(int n) {
    for (int i = 0; i < n; ++i) time_ += dt_;
  }

  /// Fold the integrator's history-carrying state — everything beyond
  /// the temperature field that can influence future step() results —
  /// into the FNV-1a accumulator \p h: trajectory-extrapolation memory,
  /// the warm-start transition cache (slot keys and cached fields) and
  /// the bound linear solver's own state
  /// (sparse::LinearSolver::fold_replay_state). Returns false when the
  /// solver cannot enumerate its state; limit-cycle replay then stands
  /// down. Monotonic telemetry (predictor/trajectory hit counters,
  /// solver stats) is excluded: it never feeds back into arithmetic.
  bool fold_replay_state(std::uint64_t& h) const;

  /// The backward-Euler operator this solver steps (flow-update
  /// telemetry: dirty fractions, update counts).
  const ThermalOperator& system_operator() const { return op_; }

  /// Refresh/solve counters of the bound linear solver.
  const sparse::SolverStats& solver_stats() const {
    return solver_->stats();
  }

  /// Relative residual tolerance of the per-step linear solves.
  double rel_tolerance() const { return rel_tolerance_; }

  /// Flow-change steps whose warm start came from an exact transition-
  /// cache match.
  std::uint64_t predictor_hits() const { return predictor_hits_; }

  /// Flow-change steps whose warm start was interpolated between two
  /// cached flow states bracketing the new one (exact match missed).
  std::uint64_t predictor_interpolations() const {
    return predictor_interp_hits_;
  }

  /// Flow-change steps whose warm start came from the fluid-jump
  /// predictor (both cache-based predictions missed; the fluid-row
  /// subsystem relaxation won the residual guard).
  std::uint64_t predictor_fluid_jumps() const {
    return predictor_fluid_hits_;
  }

  /// Ordinary steps whose warm start came from the trajectory
  /// extrapolation (guard accepted it over the plain warm start).
  std::uint64_t trajectory_hits() const { return trajectory_hits_; }

 private:
  struct WarmStartSlot {
    bool used = false;
    std::vector<double> flows;  ///< exact cavity-flow key ...
    std::vector<std::uint64_t> profiles;  ///< ... plus profile versions
    std::vector<double> state_before;  ///< T_n the cached step started from
    std::vector<double> solution;      ///< T_{n+1} it produced
  };

  /// Slot whose key matches the model's current flows, else the next
  /// round-robin victim (marked unused). Null when the predictor is off.
  WarmStartSlot* find_slot();

  /// Exact-match miss fallback: when two cached flow states bracket the
  /// model's current one (per-cavity collinear, shared parameter in
  /// (0, 1), equal profile versions), write the linearly interpolated
  /// jump prediction into predicted_ and return true. Targets
  /// continuously modulated (fuzzy-policy) stepping, where the exact
  /// cache almost never hits.
  bool interpolate_prediction();

  /// Last-resort flow-change prediction (see Options::
  /// fluid_jump_predictor): Gauss-Seidel sweeps over the fluid rows of
  /// A x = rhs with solid temperatures frozen at T_n, written into
  /// predicted_.
  void fluid_jump_prediction();

  RcModel& model_;
  double dt_;
  ThermalOperator op_;
  sparse::StructureCache* cache_ = nullptr;
  std::vector<double> c_over_dt_;  ///< C_i / dt, precomputed
  std::unique_ptr<sparse::LinearSolver> solver_;
  std::vector<double> state_;
  std::vector<double> rhs_;
  std::vector<WarmStartSlot> slots_;
  int next_slot_ = 0;
  std::vector<double> predicted_;   ///< scratch: predicted T_{n+1}
  std::vector<double> prev_state_;  ///< scratch: T_n for the slot update
  std::vector<double> residual_;    ///< scratch for the predictor guard
  WarmStartSlot* pending_slot_ = nullptr;  ///< begin_step -> end_step
  StepPrep pending_;  ///< candidates awaiting begin_step_commit
  std::uint64_t predictor_hits_ = 0;
  std::uint64_t predictor_interp_hits_ = 0;
  /// Fluid rows in upstream-first advection order (empty = predictor
  /// off); see fluid_jump_prediction().
  std::vector<std::int32_t> fluid_rows_;
  std::uint64_t predictor_fluid_hits_ = 0;
  // Trajectory warm start (allocated when enabled): T_{n-1} of the last
  // ordinary step and the extrapolated guess scratch.
  std::vector<double> traj_prev_;
  std::vector<double> traj_guess_;
  bool traj_valid_ = false;
  std::uint64_t trajectory_hits_ = 0;
  double rel_tolerance_ = 1e-12;
  double time_ = 0.0;
};

}  // namespace tac3d::thermal
