#include "thermal/floorplan.hpp"

#include <algorithm>
#include <cmath>
#include <istream>
#include <sstream>

#include "common/error.hpp"
#include "common/units.hpp"

namespace tac3d::thermal {

void Floorplan::add(std::string name, Rect rect) {
  require(!name.empty(), "Floorplan::add: empty element name");
  require(rect.valid(), "Floorplan::add: degenerate rectangle for " + name);
  require(!has(name), "Floorplan::add: duplicate element name " + name);
  elements_.push_back(FloorplanElement{std::move(name), rect});
}

std::size_t Floorplan::index_of(const std::string& name) const {
  for (std::size_t i = 0; i < elements_.size(); ++i) {
    if (elements_[i].name == name) return i;
  }
  throw InvalidArgument("Floorplan: no element named " + name);
}

bool Floorplan::has(const std::string& name) const {
  return std::any_of(elements_.begin(), elements_.end(),
                     [&name](const FloorplanElement& e) {
                       return e.name == name;
                     });
}

void Floorplan::validate(double width, double length) const {
  const Rect chip{0.0, 0.0, width, length};
  for (std::size_t i = 0; i < elements_.size(); ++i) {
    require(chip.contains(elements_[i].rect, 1e-9),
            "Floorplan: element " + elements_[i].name +
                " extends outside the tier");
    for (std::size_t j = i + 1; j < elements_.size(); ++j) {
      // Tolerate sliver overlaps from rounded coordinates.
      const double ov = elements_[i].rect.overlap_area(elements_[j].rect);
      const double min_area =
          std::min(elements_[i].rect.area(), elements_[j].rect.area());
      require(ov <= 1e-6 * min_area,
              "Floorplan: elements " + elements_[i].name + " and " +
                  elements_[j].name + " overlap");
    }
  }
}

double Floorplan::total_area() const {
  double a = 0.0;
  for (const auto& e : elements_) a += e.rect.area();
  return a;
}

Floorplan Floorplan::parse(std::istream& in) {
  Floorplan fp;
  std::string line;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    std::istringstream ls(line);
    std::string name;
    if (!(ls >> name)) continue;  // blank/comment line
    double x, y, w, h;
    if (!(ls >> x >> y >> w >> h)) {
      throw InvalidArgument("Floorplan::parse: malformed line " +
                            std::to_string(line_no));
    }
    fp.add(name, Rect{mm(x), mm(y), mm(w), mm(h)});
  }
  return fp;
}

std::string Floorplan::to_text() const {
  std::ostringstream os;
  os << "# name x_mm y_mm w_mm h_mm\n";
  for (const auto& e : elements_) {
    os << e.name << ' ' << e.rect.x * 1e3 << ' ' << e.rect.y * 1e3 << ' '
       << e.rect.w * 1e3 << ' ' << e.rect.h * 1e3 << '\n';
  }
  return os.str();
}

std::string Floorplan::ascii_art(double width, double length,
                                 int text_cols) const {
  require(width > 0.0 && length > 0.0, "Floorplan::ascii_art: bad tier size");
  const int cols = std::max(8, text_cols);
  const int rows = std::max(
      4, static_cast<int>(std::lround(cols * (length / width) * 0.5)));
  std::vector<std::string> canvas(static_cast<std::size_t>(rows),
                                  std::string(static_cast<std::size_t>(cols),
                                              '.'));
  for (const auto& e : elements_) {
    const int c0 = static_cast<int>(e.rect.x / width * cols);
    const int c1 = static_cast<int>(std::ceil(e.rect.right() / width * cols));
    const int r0 = static_cast<int>(e.rect.y / length * rows);
    const int r1 = static_cast<int>(std::ceil(e.rect.top() / length * rows));
    for (int r = std::max(0, r0); r < std::min(rows, r1); ++r) {
      for (int c = std::max(0, c0); c < std::min(cols, c1); ++c) {
        const std::size_t k =
            static_cast<std::size_t>(c - c0) % e.name.size();
        canvas[r][c] = e.name[k];
      }
    }
  }
  std::string out;
  // Draw with row 0 (y = 0) at the bottom, like a floorplan figure.
  for (int r = rows - 1; r >= 0; --r) {
    out += canvas[r];
    out += '\n';
  }
  return out;
}

}  // namespace tac3d::thermal
