#include "thermal/stackup_io.hpp"

#include <istream>
#include <map>
#include <ostream>
#include <sstream>

#include "common/error.hpp"
#include "common/units.hpp"
#include "microchannel/coolant.hpp"

namespace tac3d::thermal {

namespace {

std::string strip_comment(std::string line) {
  const auto hash = line.find('#');
  if (hash != std::string::npos) line.erase(hash);
  return line;
}

}  // namespace

StackSpec parse_stack(std::istream& in) {
  StackSpec spec;
  std::map<std::string, Material> mats;
  mats["silicon"] = materials::silicon();
  mats["wiring"] = materials::wiring();
  mats["copper"] = materials::copper();
  mats["tim"] = materials::tim();
  mats["pyrex"] = materials::pyrex();

  auto material_of = [&mats](const std::string& name) {
    const auto it = mats.find(name);
    require(it != mats.end(), "parse_stack: unknown material " + name);
    return it->second;
  };

  std::string line;
  int line_no = 0;
  bool in_floorplan = false;
  Floorplan current_fp;
  auto fail = [&line_no](const std::string& what) -> void {
    throw InvalidArgument("parse_stack: " + what + " at line " +
                          std::to_string(line_no));
  };

  while (std::getline(in, line)) {
    ++line_no;
    std::istringstream ls(strip_comment(line));
    std::string kw;
    if (!(ls >> kw)) continue;

    if (in_floorplan) {
      if (kw == "floorplan") {
        std::string sub;
        ls >> sub;
        if (sub != "end") fail("expected 'floorplan end'");
        spec.floorplans.push_back(std::move(current_fp));
        current_fp = Floorplan{};
        in_floorplan = false;
      } else {
        double x, y, w, h;
        if (!(ls >> x >> y >> w >> h)) fail("malformed floorplan element");
        current_fp.add(kw, Rect{mm(x), mm(y), mm(w), mm(h)});
      }
      continue;
    }

    if (kw == "stack") {
      std::getline(ls >> std::ws, spec.name);
    } else if (kw == "dimensions") {
      double w, l;
      if (!(ls >> w >> l)) fail("malformed dimensions");
      spec.width = mm(w);
      spec.length = mm(l);
    } else if (kw == "ambient") {
      double c;
      if (!(ls >> c)) fail("malformed ambient");
      spec.ambient = celsius_to_kelvin(c);
    } else if (kw == "coolant_inlet") {
      double c;
      if (!(ls >> c)) fail("malformed coolant_inlet");
      spec.coolant_inlet = celsius_to_kelvin(c);
    } else if (kw == "material") {
      std::string name;
      double k, cv;
      if (!(ls >> name >> k >> cv)) fail("malformed material");
      mats[name] = Material{name, k, cv};
    } else if (kw == "layer") {
      std::string name, mat, opt;
      double t;
      if (!(ls >> name >> t >> mat)) fail("malformed layer");
      int fp_index = -1;
      if (ls >> opt) {
        if (opt != "floorplan" || !(ls >> fp_index)) {
          fail("malformed layer floorplan reference");
        }
      }
      spec.layers.push_back(
          Layer::solid(name, mm(t), material_of(mat), fp_index));
    } else if (kw == "cavity") {
      std::string name, wall;
      double h, wc, pitch;
      if (!(ls >> name >> h >> wc >> pitch >> wall)) {
        fail("malformed cavity");
      }
      spec.layers.push_back(
          Layer::cavity(name, mm(h), mm(wc), mm(pitch), material_of(wall),
                        microchannel::water(spec.coolant_inlet)));
    } else if (kw == "sink") {
      double g, c, couple;
      if (!(ls >> g >> c >> couple)) fail("malformed sink");
      spec.sink.present = true;
      spec.sink.conductance_to_ambient = g;
      spec.sink.capacitance = c;
      spec.sink.coupling_conductance = couple;
    } else if (kw == "floorplan") {
      std::string sub;
      ls >> sub;
      if (sub != "begin") fail("expected 'floorplan begin'");
      in_floorplan = true;
    } else {
      fail("unknown keyword '" + kw + "'");
    }
  }
  require(!in_floorplan, "parse_stack: unterminated floorplan block");
  spec.validate();
  return spec;
}

std::string stack_to_text(const StackSpec& spec) {
  std::ostringstream os;
  os.precision(12);  // geometry must survive the text round trip
  os << "stack " << spec.name << '\n';
  os << "dimensions " << spec.width * 1e3 << ' ' << spec.length * 1e3
     << '\n';
  os << "ambient " << kelvin_to_celsius(spec.ambient) << '\n';
  os << "coolant_inlet " << kelvin_to_celsius(spec.coolant_inlet) << '\n';

  // Emit material definitions for everything the layers reference.
  std::map<std::string, Material> emitted;
  for (const Layer& l : spec.layers) {
    if (!emitted.count(l.material.name)) {
      emitted[l.material.name] = l.material;
      os << "material " << l.material.name << ' '
         << l.material.conductivity << ' '
         << l.material.volumetric_heat_capacity << '\n';
    }
  }
  if (spec.sink.present) {
    os << "sink " << spec.sink.conductance_to_ambient << ' '
       << spec.sink.capacitance << ' ' << spec.sink.coupling_conductance
       << '\n';
  }
  for (const Floorplan& fp : spec.floorplans) {
    os << "floorplan begin\n";
    for (const auto& e : fp.elements()) {
      os << "  " << e.name << ' ' << e.rect.x * 1e3 << ' '
         << e.rect.y * 1e3 << ' ' << e.rect.w * 1e3 << ' '
         << e.rect.h * 1e3 << '\n';
    }
    os << "floorplan end\n";
  }
  for (const Layer& l : spec.layers) {
    if (l.kind == LayerKind::kCavity) {
      os << "cavity " << l.name << ' ' << l.thickness * 1e3 << ' '
         << l.channel_width * 1e3 << ' ' << l.channel_pitch * 1e3 << ' '
         << l.material.name << '\n';
    } else {
      os << "layer " << l.name << ' ' << l.thickness * 1e3 << ' '
         << l.material.name;
      if (l.floorplan_index >= 0) os << " floorplan " << l.floorplan_index;
      os << '\n';
    }
  }
  return os.str();
}

void write_layer_csv(const RcModel& model, std::span<const double> temps,
                     int grid_layer, std::ostream& os) {
  const ThermalGrid& grid = model.grid();
  require(grid_layer >= 0 && grid_layer < grid.n_layers(),
          "write_layer_csv: layer out of range");
  os << "y_mm\\x_mm";
  double x = 0.0;
  for (int c = 0; c < grid.cols(); ++c) {
    os << ',' << (x + 0.5 * grid.dx(c)) * 1e3;
    x += grid.dx(c);
  }
  os << '\n';
  double y = 0.0;
  for (int r = 0; r < grid.rows(); ++r) {
    os << (y + 0.5 * grid.dy(r)) * 1e3;
    y += grid.dy(r);
    for (int c = 0; c < grid.cols(); ++c) {
      os << ','
         << kelvin_to_celsius(temps[grid.cell_node(grid_layer, r, c)]);
    }
    os << '\n';
  }
}

void write_element_csv(const RcModel& model, std::span<const double> temps,
                       std::ostream& os) {
  os << "element,layer,t_max_c,t_avg_c\n";
  for (int e = 0; e < model.grid().element_count(); ++e) {
    const auto& info = model.grid().element(e);
    os << info.name << ',' << model.grid().layer(info.grid_layer).name
       << ',' << kelvin_to_celsius(model.element_max(temps, e)) << ','
       << kelvin_to_celsius(model.element_avg(temps, e)) << '\n';
  }
}

}  // namespace tac3d::thermal
