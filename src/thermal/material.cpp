#include "thermal/material.hpp"

namespace tac3d::thermal::materials {

Material silicon() { return {"silicon", 130.0, 1.635660e6}; }
Material wiring() { return {"wiring", 2.25, 2.174502e6}; }
Material copper() { return {"copper", 400.0, 3.45e6}; }
Material tim() { return {"tim", 2.5, 2.0e6}; }
Material pyrex() { return {"pyrex", 1.1, 1.672e6}; }

}  // namespace tac3d::thermal::materials
