#include "thermal/batched_transient.hpp"

#include <algorithm>
#include <exception>

#include "common/error.hpp"

namespace tac3d::thermal {

namespace {

/// Lane 0's operator matrix is the shared pattern everyone must match.
const sparse::CsrMatrix& pattern_of(
    const std::vector<BatchedTransientSolver::LaneSpec>& lanes) {
  require(!lanes.empty() && lanes.front().solver != nullptr,
          "BatchedTransientSolver: no lanes");
  return lanes.front().solver->system_operator().matrix();
}

/// Verify pattern compatibility and load every lane's current values —
/// run before the batched preconditioner binds, so each lane's initial
/// factors equal the ones its scalar twin built at construction.
const sparse::BatchedCsr& load_all_lanes(
    sparse::BatchedCsr& a,
    const std::vector<BatchedTransientSolver::LaneSpec>& lanes) {
  for (std::size_t l = 0; l < lanes.size(); ++l) {
    require(lanes[l].solver != nullptr, "BatchedTransientSolver: null lane");
    require(BatchedTransientSolver::compatible(*lanes.front().solver,
                                               *lanes[l].solver),
            "BatchedTransientSolver: lanes must share the sparsity pattern");
    a.load_lane(static_cast<int>(l),
                lanes[l].solver->system_operator().matrix());
  }
  return a;
}

}  // namespace

bool BatchedTransientSolver::compatible(const TransientSolver& a,
                                        const TransientSolver& b) {
  const sparse::CsrMatrix& ma = a.system_operator().matrix();
  const sparse::CsrMatrix& mb = b.system_operator().matrix();
  return ma.rows() == mb.rows() && ma.nnz() == mb.nnz() &&
         std::equal(ma.row_ptr().begin(), ma.row_ptr().end(),
                    mb.row_ptr().begin()) &&
         std::equal(ma.col_idx().begin(), ma.col_idx().end(),
                    mb.col_idx().begin());
}

BatchedTransientSolver::BatchedTransientSolver(
    sparse::SolverKind kind, const std::vector<LaneSpec>& lanes)
    : a_(pattern_of(lanes), static_cast<int>(lanes.size())),
      solver_(kind, load_all_lanes(a_, lanes)) {
  const int L = static_cast<int>(lanes.size());
  lanes_.reserve(lanes.size());
  for (int l = 0; l < L; ++l) {
    lanes_.push_back(lanes[static_cast<std::size_t>(l)].solver);
    solver_.set_refresh_policy(l, lanes[static_cast<std::size_t>(l)].refresh);
    solver_.set_tolerance(l, lanes_[static_cast<std::size_t>(l)]
                                 ->rel_tolerance());
  }
  const std::size_t total =
      static_cast<std::size_t>(a_.rows()) * static_cast<std::size_t>(L);
  b_.assign(total, 0.0);
  x_.assign(total, 0.0);
  pred_x_.assign(total, 0.0);
  traj_x_.assign(total, 0.0);
  guard_r_.assign(total, 0.0);
  const std::size_t ls = static_cast<std::size_t>(L);
  rr_plain_.assign(ls, 0.0);
  rr_pred_.assign(ls, 0.0);
  rr_traj_.assign(ls, 0.0);
  bb_.assign(ls, 0.0);
  bb_scratch_.assign(ls, 0.0);
  stepped_.assign(ls, 0);
  want_pred_.assign(ls, 0);
  want_traj_.assign(ls, 0);
  solve_failed_.assign(ls, 0);
  lane_errors_.resize(ls);
}

void BatchedTransientSolver::step_all(std::span<const std::uint8_t> active,
                                      std::span<std::uint8_t> failed) {
  const int L = lanes();
  require(active.size() == static_cast<std::size_t>(L) &&
              failed.size() == static_cast<std::size_t>(L),
          "BatchedTransientSolver::step_all: mask size mismatch");
  std::fill(failed.begin(), failed.end(), std::uint8_t{0});
  std::fill(stepped_.begin(), stepped_.end(), std::uint8_t{0});
  std::fill(want_pred_.begin(), want_pred_.end(), std::uint8_t{0});
  std::fill(want_traj_.begin(), want_traj_.end(), std::uint8_t{0});

  // Phase 1 per lane: flow sync, RHS build, warm-start candidate
  // construction (the shared TransientSolver code), plus the value sync
  // into the interleaved matrix.
  bool any_pred = false, any_traj = false;
  const double* b_src[sparse::kMaxBatchLanes] = {};
  const double* x_src[sparse::kMaxBatchLanes] = {};
  const double* pred_src[sparse::kMaxBatchLanes] = {};
  const double* traj_src[sparse::kMaxBatchLanes] = {};
  for (int l = 0; l < L; ++l) {
    if (!active[l]) continue;
    lane_errors_[static_cast<std::size_t>(l)].clear();
    TransientSolver* lane = lanes_[static_cast<std::size_t>(l)];
    TransientSolver::StepPrep prep;
    try {
      prep = lane->begin_step_prepare();
      if (prep.flow_changed) {
        // Sync only the rows the flow update rewrote (an empty row list
        // with nonzero dirt means "unknown rows" — reload the lane).
        if (!prep.update.rows.empty()) {
          a_.load_lane_rows(l, lane->system_operator().matrix(),
                            prep.update.rows);
        } else {
          a_.load_lane(l, lane->system_operator().matrix());
        }
        solver_.update_lane_values(l, a_, prep.update);
      }
    } catch (const std::exception& e) {
      // Lane-local failure (e.g. a flow update drove a preconditioner
      // pivot to zero): fail this lane, keep its batchmates stepping —
      // the scalar path would have thrown out of this scenario's step.
      lane_errors_[static_cast<std::size_t>(l)] = e.what();
      failed[l] = 1;
      continue;
    }
    if (prep.want_predicted) {
      pred_src[l] = lane->predicted_candidate().data();
      want_pred_[static_cast<std::size_t>(l)] = 1;
      any_pred = true;
    }
    if (prep.want_trajectory) {
      traj_src[l] = lane->trajectory_candidate().data();
      want_traj_[static_cast<std::size_t>(l)] = 1;
      any_traj = true;
    }
    b_src[l] = lane->step_rhs().data();
    x_src[l] = lane->step_solution().data();
    stepped_[static_cast<std::size_t>(l)] = 1;
  }
  const std::size_t n = static_cast<std::size_t>(a_.rows());
  sparse::pack_lanes(b_, L, b_src, n);
  sparse::pack_lanes(x_, L, x_src, n);
  if (any_pred) sparse::pack_lanes(pred_x_, L, pred_src, n);
  if (any_traj) sparse::pack_lanes(traj_x_, L, traj_src, n);

  // Phase 2: warm-start guard residuals as shared traversals — the
  // serial path spends up to three per lane; here each candidate class
  // costs one for the whole batch. Lanes without a candidate stream
  // stale buffer contents through the kernels; their norms are ignored.
  // The plain warm start's residual is only read by the commit when a
  // candidate is not already at the solve tolerance, so its traversal is
  // skipped entirely when every candidate is — the settled regime, where
  // a step's whole guard cost collapses to one shared traversal.
  if (any_pred) {
    sparse::batched_residual_norms(a_, pred_x_, b_, guard_r_, rr_pred_, bb_);
  }
  if (any_traj) {
    sparse::batched_residual_norms(a_, traj_x_, b_, guard_r_, rr_traj_,
                                   any_pred ? bb_scratch_ : bb_);
  }
  if (any_pred || any_traj) {
    bool need_plain = false;
    for (int l = 0; l < L && !need_plain; ++l) {
      const std::size_t s = static_cast<std::size_t>(l);
      if (!stepped_[s]) continue;
      const double tol = lanes_[s]->rel_tolerance();
      const double gate = bb_[s] * tol * tol;
      // A prediction at tolerance wins outright — the commit never
      // consults rr_plain or the trajectory for that lane (mirror of
      // the serial lazy evaluation).
      const bool pred_at_tol = want_pred_[s] && rr_pred_[s] <= gate;
      if (pred_at_tol) continue;
      if (want_pred_[s]) need_plain = true;
      if (want_traj_[s] && rr_traj_[s] > gate) need_plain = true;
    }
    if (need_plain) {
      sparse::batched_residual_norms(a_, x_, b_, guard_r_, rr_plain_,
                                     bb_scratch_);
    }
  }

  // Phase 3 per lane: commit the guard decisions (pure comparisons —
  // identical to the serial evaluation) and re-pack lanes whose warm
  // start changed.
  bool any_repack = false;
  const double* repack_src[sparse::kMaxBatchLanes] = {};
  for (int l = 0; l < L; ++l) {
    const std::size_t s = static_cast<std::size_t>(l);
    if (!stepped_[s]) continue;
    TransientSolver* lane = lanes_[s];
    try {
      lane->begin_step_commit(rr_pred_[s], rr_traj_[s], rr_plain_[s],
                              bb_[s]);
    } catch (const std::exception& e) {
      lane_errors_[s] = e.what();
      failed[l] = 1;
      stepped_[s] = 0;  // exclude from the solve
      continue;
    }
    if (want_pred_[s] || want_traj_[s]) {
      repack_src[l] = lane->step_solution().data();
      any_repack = true;
    }
  }
  if (any_repack) sparse::pack_lanes(x_, L, repack_src, n);

  // The solver owns its own failure mask (it clears it on entry, which
  // would wipe the phase-1/phase-3 lane failures recorded above) —
  // merge instead of aliasing.
  solver_.solve(a_, b_, x_, stepped_,
                std::span<std::uint8_t>(solve_failed_.data(),
                                        static_cast<std::size_t>(L)));
  for (int l = 0; l < L; ++l) {
    if (solve_failed_[static_cast<std::size_t>(l)]) failed[l] = 1;
  }

  double* out_dst[sparse::kMaxBatchLanes] = {};
  bool any_out = false;
  for (int l = 0; l < L; ++l) {
    if (!stepped_[static_cast<std::size_t>(l)] || failed[l]) continue;
    out_dst[l] = lanes_[static_cast<std::size_t>(l)]->step_solution().data();
    any_out = true;
  }
  if (any_out) sparse::unpack_lanes(x_, L, out_dst, n);
  for (int l = 0; l < L; ++l) {
    if (out_dst[l] == nullptr) continue;
    try {
      lanes_[static_cast<std::size_t>(l)]->end_step();
    } catch (const std::exception& e) {
      lane_errors_[static_cast<std::size_t>(l)] = e.what();
      failed[l] = 1;
    }
  }
}

}  // namespace tac3d::thermal
