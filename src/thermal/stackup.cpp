#include "thermal/stackup.hpp"

#include "common/error.hpp"

namespace tac3d::thermal {

Layer Layer::solid(std::string name, double thickness, Material material,
                   int floorplan_index) {
  require(thickness > 0.0, "Layer::solid: thickness must be positive");
  Layer l;
  l.kind = LayerKind::kSolid;
  l.name = std::move(name);
  l.thickness = thickness;
  l.material = std::move(material);
  l.floorplan_index = floorplan_index;
  return l;
}

Layer Layer::cavity(std::string name, double height, double channel_width,
                    double channel_pitch, Material wall,
                    microchannel::Coolant coolant) {
  require(height > 0.0, "Layer::cavity: height must be positive");
  require(channel_width > 0.0 && channel_pitch > channel_width,
          "Layer::cavity: need 0 < channel_width < channel_pitch");
  Layer l;
  l.kind = LayerKind::kCavity;
  l.name = std::move(name);
  l.thickness = height;
  l.material = std::move(wall);
  l.channel_width = channel_width;
  l.channel_pitch = channel_pitch;
  l.coolant = std::move(coolant);
  return l;
}

int StackSpec::n_cavities() const {
  int n = 0;
  for (const Layer& l : layers) {
    if (l.kind == LayerKind::kCavity) ++n;
  }
  return n;
}

StackSpec& StackSpec::validate() {
  require(width > 0.0 && length > 0.0, "StackSpec: chip extent must be > 0");
  require(layers.size() >= 1, "StackSpec: empty stack");
  int cavity_id = 0;
  for (std::size_t i = 0; i < layers.size(); ++i) {
    Layer& l = layers[i];
    require(l.thickness > 0.0, "StackSpec: layer " + l.name +
                                   " has non-positive thickness");
    if (l.kind == LayerKind::kCavity) {
      require(i != 0 && i + 1 != layers.size(),
              "StackSpec: cavity " + l.name +
                  " must be enclosed by solid layers");
      require(layers[i - 1].kind == LayerKind::kSolid &&
                  layers[i + 1].kind == LayerKind::kSolid,
              "StackSpec: cavity " + l.name +
                  " must be adjacent to solid layers");
      l.cavity_id = cavity_id++;
      require(l.floorplan_index < 0,
              "StackSpec: cavities cannot dissipate power");
    }
    if (l.floorplan_index >= 0) {
      require(l.kind == LayerKind::kSolid,
              "StackSpec: only solid layers can carry floorplans");
      require(static_cast<std::size_t>(l.floorplan_index) <
                  floorplans.size(),
              "StackSpec: floorplan index of layer " + l.name +
                  " out of range");
    }
  }
  for (const Floorplan& fp : floorplans) {
    fp.validate(width, length);
  }
  require(ambient > 0.0 && coolant_inlet > 0.0,
          "StackSpec: boundary temperatures must be absolute (K)");
  return *this;
}

}  // namespace tac3d::thermal
