#include "thermal/grid.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace tac3d::thermal {

ThermalGrid::ThermalGrid(StackSpec spec, GridOptions opts)
    : spec_(std::move(spec)), opts_(opts) {
  spec_.validate();
  require(opts_.rows >= 2, "ThermalGrid: need at least 2 rows");
  require(opts_.cols >= 2, "ThermalGrid: need at least 2 cols");
  require(opts_.x_refine >= 1 && opts_.z_refine >= 1,
          "ThermalGrid: refinement factors must be >= 1");
  build_columns();
  build_layers();
  map_elements();
}

void ThermalGrid::build_columns() {
  dy_.assign(opts_.rows, spec_.length / opts_.rows);

  // Common channel geometry across cavities (required in discrete mode).
  double wc = 0.0, pitch = 0.0;
  for (const Layer& l : spec_.layers) {
    if (l.kind != LayerKind::kCavity) continue;
    if (pitch == 0.0) {
      wc = l.channel_width;
      pitch = l.channel_pitch;
    } else {
      require(std::abs(l.channel_width - wc) < 1e-12 &&
                  std::abs(l.channel_pitch - pitch) < 1e-12,
              "ThermalGrid: all cavities must share channel geometry");
    }
  }

  if (opts_.discrete_channels) {
    require(pitch > 0.0,
            "ThermalGrid: discrete_channels requires at least one cavity");
    const int nch = static_cast<int>(spec_.width / pitch + 1e-9);
    require(nch >= 2, "ThermalGrid: chip too narrow for discrete channels");
    const double ww = pitch - wc;
    const double slack = spec_.width - nch * pitch;
    const double edge = ww / 2.0 + slack / 2.0;
    require(edge > 0.0, "ThermalGrid: negative edge wall width");

    // Base columns: edge wall, then (channel, wall)*(nch-1), channel,
    // edge wall.
    std::vector<std::pair<double, double>> base;  // {width, fraction}
    base.push_back({edge, 0.0});
    for (int i = 0; i < nch; ++i) {
      base.push_back({wc, 1.0});
      base.push_back({i + 1 < nch ? ww : edge, 0.0});
    }
    for (const auto& [w, frac] : base) {
      for (int k = 0; k < opts_.x_refine; ++k) {
        dx_.push_back(w / opts_.x_refine);
        channel_fraction_.push_back(frac);
      }
    }
    n_cols_ = static_cast<int>(dx_.size());
  } else {
    n_cols_ = opts_.cols;
    dx_.assign(n_cols_, spec_.width / n_cols_);
    const double frac = pitch > 0.0 ? wc / pitch : 0.0;
    channel_fraction_.assign(n_cols_, frac);
  }

  x_left_.assign(n_cols_, 0.0);
  for (int c = 1; c < n_cols_; ++c) x_left_[c] = x_left_[c - 1] + dx_[c - 1];

  // Flow shares: proportional to fluid cross-section per column.
  flow_share_.assign(n_cols_, 0.0);
  double total = 0.0;
  for (int c = 0; c < n_cols_; ++c) {
    flow_share_[c] = dx_[c] * channel_fraction_[c];
    total += flow_share_[c];
  }
  if (total > 0.0) {
    for (double& s : flow_share_) s /= total;
  }
}

void ThermalGrid::build_layers() {
  for (std::size_t i = 0; i < spec_.layers.size(); ++i) {
    const Layer& l = spec_.layers[i];
    if (l.kind == LayerKind::kCavity) {
      GridLayer gl;
      gl.spec_layer = static_cast<int>(i);
      gl.kind = LayerKind::kCavity;
      gl.thickness = l.thickness;
      gl.material = l.material;
      gl.cavity_id = l.cavity_id;
      gl.channel_width = l.channel_width;
      gl.channel_pitch = l.channel_pitch;
      gl.coolant = l.coolant;
      gl.name = l.name;
      layers_.push_back(std::move(gl));
    } else {
      for (int s = 0; s < opts_.z_refine; ++s) {
        GridLayer gl;
        gl.spec_layer = static_cast<int>(i);
        gl.kind = LayerKind::kSolid;
        gl.thickness = l.thickness / opts_.z_refine;
        gl.material = l.material;
        gl.name = l.name;
        // Power dissipates at the die's active surface: attach the
        // floorplan to the top sublayer.
        if (s == opts_.z_refine - 1) gl.floorplan_index = l.floorplan_index;
        layers_.push_back(std::move(gl));
      }
    }
  }
}

void ThermalGrid::map_elements() {
  for (int gl = 0; gl < n_layers(); ++gl) {
    const int fp_idx = layers_[gl].floorplan_index;
    if (fp_idx < 0) continue;
    const Floorplan& fp = spec_.floorplans[fp_idx];
    for (std::size_t e = 0; e < fp.size(); ++e) {
      ElementInfo info;
      info.name = fp[e].name;
      info.grid_layer = gl;
      info.floorplan = fp_idx;
      info.index_in_floorplan = static_cast<int>(e);
      info.rect = fp[e].rect;

      std::vector<CellWeight> cells;
      const double inv_area = 1.0 / info.rect.area();
      for (int r = 0; r < opts_.rows; ++r) {
        for (int c = 0; c < n_cols_; ++c) {
          const Rect cell{x_left_[c], r * dy_[r], dx_[c], dy_[r]};
          const double ov = info.rect.overlap_area(cell);
          if (ov > 0.0) {
            cells.push_back(CellWeight{cell_node(gl, r, c), ov * inv_area});
          }
        }
      }
      double sum = 0.0;
      for (const auto& cw : cells) sum += cw.weight;
      require(sum > 0.99,
              "ThermalGrid: element " + info.name +
                  " does not map onto the grid");
      // Renormalize away floating-point slack so power is conserved.
      for (auto& cw : cells) cw.weight /= sum;

      elements_.push_back(std::move(info));
      element_cells_.push_back(std::move(cells));
    }
  }
}

std::int32_t ThermalGrid::sink_node() const {
  if (!spec_.sink.present) return -1;
  return static_cast<std::int32_t>(static_cast<std::int64_t>(n_layers()) *
                                   opts_.rows * n_cols_);
}

std::int32_t ThermalGrid::node_count() const {
  const std::int64_t cells =
      static_cast<std::int64_t>(n_layers()) * opts_.rows * n_cols_;
  return static_cast<std::int32_t>(cells + (spec_.sink.present ? 1 : 0));
}

int ThermalGrid::element_id(const std::string& name) const {
  int found = -1;
  for (int e = 0; e < element_count(); ++e) {
    if (elements_[e].name == name) {
      require(found < 0, "ThermalGrid: ambiguous element name " + name);
      found = e;
    }
  }
  require(found >= 0, "ThermalGrid: no element named " + name);
  return found;
}

}  // namespace tac3d::thermal
