#pragma once
/// \file replay.hpp
/// \brief Limit-cycle detection and fast-forward ("temporal memoization")
/// for the closed control loop.
///
/// Long transients under exactly periodic workloads settle into a
/// repeating cycle: after a warm-up, the temperature field, the policy
/// state and every knob recur bitwise at the workload period. Once that
/// recurrence is *proven* — identical temperature vector and an
/// identical fingerprint of all auxiliary closed-loop state at two
/// consecutive control-interval boundaries one period apart — stepping
/// the cycle again can only reproduce it, so the session records one
/// cycle's per-step metric addends in a journal and thereafter replays
/// whole cycles by re-adding the journaled values in the original order
/// with zero linear solves.
///
/// The guarantee discipline matches the warm-start and batching PRs:
/// replay only engages on exact bitwise recurrence (detection), re-adds
/// identical values in identical order (reconstruction), freezes all
/// live state while fast-forwarding and re-verifies the trace window
/// before every replayed cycle (exit) — so every metric and the final
/// state are bitwise identical to the step-everything run. A mid-cycle
/// run_until simply stops fast-forwarding and real-steps the remainder
/// from the frozen boundary state, which *is* the uninterrupted run's
/// state (bitwise continuation).
///
/// The state machine is driven by SimulationSession (sim/engine.cpp):
///   kWatching    compare each boundary with the previous one
///   kJournaling  a recurrence was seen; record the next cycle
///   kLocked      the journaled cycle re-verified; fast-forward eligible
/// plus kDisarmed for sessions where replay cannot be sound (aperiodic
/// trace, non-integral period, a policy or solver that cannot enumerate
/// its state) or where repeated journal attempts failed (iterative
/// solvers hovering at the ulp-level noise floor never bitwise-lock;
/// the cap keeps the detection overhead bounded).
///
/// Everything is preallocated when the session arms the detector; the
/// warm replay path (journal recording and cycle application) performs
/// no heap allocations.

#include <cstdint>
#include <span>
#include <vector>

#include "sim/metrics.hpp"

namespace tac3d::sim {

/// Journal of one closed-loop cycle: every value the metric
/// accumulators receive per step, re-addable value-for-value in order,
/// plus the cycle's scheduler-migration delta.
struct CycleJournal {
  int n_cores = 0;
  int steps = 0;  ///< recorded so far (== period once complete)
  std::vector<double> offered;  ///< [step * n_cores + c] offered_work addend
  std::vector<double> lost;     ///< [step * n_cores + c] lost_work addend
  std::vector<double> tcore;    ///< [step * n_cores + c] sensed core temp [K]
  std::vector<double> chip;     ///< [step] chip_energy addend
  std::vector<double> pump;     ///< [step] pump_energy addend
  std::vector<double> flow;     ///< [step] flow-fraction addend
  std::vector<std::uint8_t> pump_on;  ///< [step] pump/flow addends live?
  std::int64_t migrations_delta = 0;  ///< migrations over the cycle
};

/// One step's journal slots (pointers into the CycleJournal arrays,
/// valid until the next append).
struct CycleStepRecord {
  std::span<double> offered;  ///< n_cores entries
  std::span<double> lost;
  std::span<double> tcore;
  double* chip = nullptr;
  double* pump = nullptr;
  double* flow = nullptr;
  std::uint8_t* pump_on = nullptr;
};

/// The limit-cycle detector + journal owned by one SimulationSession.
/// The session calls on_boundary() at every aligned control-interval
/// boundary (steps_done % period_steps == 0) with the temperature field
/// and the auxiliary-state fingerprint, appends journal records while
/// journaling(), and fast-forwards cycles while can_fast_forward().
class LimitCycleReplay {
 public:
  /// Arm detection for a trace-periodic session. Preallocates the
  /// boundary snapshots and the journal (so the armed stepping path
  /// never allocates). \p state_size is the temperature-field length.
  void arm(int period_steps, int period_seconds, int n_cores,
           std::size_t state_size);

  void disarm() { phase_ = Phase::kDisarmed; }
  bool armed() const { return phase_ != Phase::kDisarmed; }
  bool journaling() const { return phase_ == Phase::kJournaling; }
  bool locked() const { return phase_ == Phase::kLocked; }

  /// Conservative mode for lanes whose thermal solves run in an external
  /// batched solver (sim/batch.hpp): that solver's per-lane state is
  /// invisible to the fingerprint, so a journal attempt is only accepted
  /// when the cycle performed zero pump-level changes — no operator
  /// updates means the external factors/staleness stayed frozen across
  /// the cycle, and frozen state recurs trivially.
  void set_conservative(bool on) { conservative_ = on; }

  int period_steps() const { return period_steps_; }
  int period_seconds() const { return period_seconds_; }

  /// Second the journaled cycle's window starts at (trace re-verify key).
  int journal_base_second() const { return journal_base_second_; }

  /// Append one step to the journal (journaling() only) and return its
  /// slots for the session to fill.
  CycleStepRecord journal_step_record();

  /// A real (non-replayed) step executed: the session is no longer at a
  /// verified cycle boundary until the next on_boundary match.
  void note_real_step() { verified_ = false; }

  /// Boundary protocol: compare/record the closed-loop state at an
  /// aligned control-interval boundary. \p aux is the session's
  /// auxiliary-state fingerprint, \p boundary_second the simulated
  /// second, \p migrations and \p pump_changes the session's cumulative
  /// counters (journal delta bookkeeping / quiescence check).
  void on_boundary(std::span<const double> temps, std::uint64_t aux,
                   int boundary_second, std::int64_t migrations,
                   std::uint64_t pump_changes);

  /// Locked on a verified cycle AND currently at a verified boundary?
  bool can_fast_forward() const {
    return phase_ == Phase::kLocked && verified_;
  }

  /// Re-accumulate one journaled cycle into the metrics: the identical
  /// addends in the identical order the real steps applied them, so the
  /// accumulators advance bitwise exactly as if the cycle were stepped.
  void apply_cycle(SimMetrics& m, double dt, double hot_threshold_k,
                   double& flow_fraction_acc) const;

  /// The applied cycle's migration delta (the session credits it to its
  /// scheduler).
  std::int64_t journal_migrations() const {
    return journal_.migrations_delta;
  }

  /// Count one fast-forwarded cycle (period_steps replayed steps, each
  /// skipping its linear solve).
  void note_fast_forward() {
    steps_replayed_ += static_cast<std::uint64_t>(period_steps_);
    solves_skipped_ += static_cast<std::uint64_t>(period_steps_);
  }

  std::uint64_t cycles_detected() const { return cycles_detected_; }
  std::uint64_t steps_replayed() const { return steps_replayed_; }
  std::uint64_t solves_skipped() const { return solves_skipped_; }

 private:
  enum class Phase : std::uint8_t {
    kDisarmed,
    kWatching,
    kJournaling,
    kLocked,
  };

  /// Journal-verification failures before detection gives up for good.
  /// Iterative solvers under time-varying periodic input hover at an
  /// ulp-level noise floor and never bitwise-recur; the cap bounds the
  /// (already tiny) detection overhead for them.
  static constexpr int kMaxFailedAttempts = 8;

  void save_prev(std::span<const double> temps, std::uint64_t aux);
  static bool bitwise_equal(std::span<const double> a,
                            std::span<const double> b);

  Phase phase_ = Phase::kDisarmed;
  bool conservative_ = false;
  bool verified_ = false;  ///< at a boundary whose state matches the lock
  bool prev_valid_ = false;
  int period_steps_ = 0;
  int period_seconds_ = 0;
  int failed_attempts_ = 0;
  int journal_base_second_ = 0;
  std::int64_t journal_start_migrations_ = 0;
  std::uint64_t journal_start_pump_changes_ = 0;
  std::vector<double> prev_temps_;    ///< previous boundary field
  std::uint64_t prev_aux_ = 0;
  std::vector<double> locked_temps_;  ///< cycle-boundary field of the lock
  std::uint64_t locked_aux_ = 0;
  CycleJournal journal_;
  std::uint64_t cycles_detected_ = 0;
  std::uint64_t steps_replayed_ = 0;
  std::uint64_t solves_skipped_ = 0;
};

}  // namespace tac3d::sim
