#include "sim/sweep.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <mutex>
#include <stdexcept>
#include <thread>

#include "common/units.hpp"

namespace tac3d::sim {

namespace {

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

int resolve_jobs(int requested) {
  if (requested > 0) return requested;
  if (const char* env = std::getenv("TAC3D_JOBS")) {
    char* end = nullptr;
    const long parsed = std::strtol(env, &end, 10);
    if (end != env && *end == '\0' && parsed > 0) {
      return static_cast<int>(parsed);
    }
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

SweepReport::SweepReport(std::vector<SweepResult> results, int jobs_used,
                         double wall_seconds)
    : results_(std::move(results)),
      jobs_used_(jobs_used),
      wall_seconds_(wall_seconds) {}

const SweepResult* SweepReport::find(const std::string& label) const {
  for (const SweepResult& r : results_) {
    if (r.scenario.label == label) return &r;
  }
  return nullptr;
}

bool SweepReport::all_ok() const {
  return std::all_of(results_.begin(), results_.end(),
                     [](const SweepResult& r) { return r.ok(); });
}

std::vector<std::string> SweepReport::errors() const {
  std::vector<std::string> out;
  for (const SweepResult& r : results_) {
    if (!r.ok()) out.push_back(r.scenario.label + ": " + r.error);
  }
  return out;
}

SweepReport& SweepReport::sort_by(
    const std::function<double(const SweepResult&)>& key, bool ascending) {
  std::stable_sort(results_.begin(), results_.end(),
                   [&](const SweepResult& a, const SweepResult& b) {
                     return ascending ? key(a) < key(b) : key(a) > key(b);
                   });
  return *this;
}

SweepReport& SweepReport::sort_by_index() {
  std::stable_sort(results_.begin(), results_.end(),
                   [](const SweepResult& a, const SweepResult& b) {
                     return a.index < b.index;
                   });
  return *this;
}

TextTable SweepReport::table() const {
  TextTable t;
  t.set_header({"Scenario", "peak T [C]", "hot any", "hot avg/core",
                "chip E [J]", "pump E [J]", "system E [J]", "perf loss",
                "wall [s]"});
  for (const SweepResult& r : results_) {
    if (!r.ok()) {
      t.add_row({r.scenario.label, "ERROR: " + r.error});
      continue;
    }
    const SimMetrics& m = r.metrics;
    t.add_row({r.scenario.label, fmt(kelvin_to_celsius(m.peak_temp), 1),
               fmt_pct(m.hotspot_frac_any()),
               fmt_pct(m.hotspot_frac_avg_core()), fmt(m.chip_energy, 0),
               fmt(m.pump_energy, 0), fmt(m.system_energy(), 0),
               fmt_pct(m.perf_degradation(), 3), fmt(r.wall_seconds, 2)});
  }
  return t;
}

SweepReport run_sweep(const std::vector<Scenario>& scenarios,
                      const SweepOptions& opts) {
  const auto sweep_start = std::chrono::steady_clock::now();
  std::shared_ptr<sparse::StructureCache> cache;
  if (opts.share_structures) {
    cache = opts.structure_cache
                ? opts.structure_cache
                : std::make_shared<sparse::StructureCache>();
  }
  std::vector<SweepResult> results(scenarios.size());
  for (std::size_t i = 0; i < scenarios.size(); ++i) {
    results[i].index = i;
    results[i].scenario = scenarios[i];
    if (results[i].scenario.label.empty()) {
      results[i].scenario.label = scenario_label(scenarios[i]);
    }
    if (cache && !results[i].scenario.sim.structure_cache) {
      results[i].scenario.sim.structure_cache = cache;
    }
  }

  const int jobs = std::max(
      1, std::min<int>(resolve_jobs(opts.jobs),
                       static_cast<int>(scenarios.size())));

  std::atomic<std::size_t> next{0};
  std::mutex report_mutex;

  auto worker = [&] {
    for (;;) {
      const std::size_t i = next.fetch_add(1);
      if (i >= results.size()) return;
      SweepResult& r = results[i];
      const auto t0 = std::chrono::steady_clock::now();
      try {
        r.metrics = run_scenario(r.scenario);
      } catch (const std::exception& e) {
        r.error = e.what();
      } catch (...) {
        r.error = "unknown error";
      }
      r.wall_seconds = seconds_since(t0);
      if (opts.on_result) {
        const std::lock_guard<std::mutex> lock(report_mutex);
        opts.on_result(r);
      }
    }
  };

  if (jobs == 1) {
    worker();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(jobs);
    for (int j = 0; j < jobs; ++j) pool.emplace_back(worker);
    for (std::thread& t : pool) t.join();
  }

  SweepReport report(std::move(results), jobs, seconds_since(sweep_start));
  report.set_structure_cache(std::move(cache));
  return report;
}

}  // namespace tac3d::sim
