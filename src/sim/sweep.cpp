#include "sim/sweep.hpp"

#include <algorithm>
#include <atomic>
#include <bit>
#include <chrono>
#include <cstdlib>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

#include "common/units.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sim/bank.hpp"
#include "sim/batch.hpp"
#include "sparse/batched.hpp"
#include "thermal/transient.hpp"

namespace tac3d::sim {

namespace {

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

/// Fallback lane count of batched lockstep jobs when the cache topology
/// is unknown (SweepOptions::batch_width == 0 and no L2 size reported):
/// wide enough to amortize the pattern traversal and fill SIMD lanes,
/// small enough that the interleaved working set stays cache-resident on
/// common parts. Measured on the paper matrix with a 2 MiB L2,
/// throughput plateaus at 4-6 lanes and dips at 8.
constexpr int kFallbackBatchWidth = 6;

/// Auto lane count of a batch group (SweepOptions::batch_width == 0):
/// the widest fused-kernel dispatch width whose per-lane slice of the
/// interleaved working set fits in ~2/3 of the L2 cache. One batched
/// step streams, per lane, a column of the interleaved matrix values and
/// ILU factors (~6.3 nonzeros/row each on the paper's structured grids —
/// 7-point conduction stencil thinned by boundaries, plus the advection
/// band) and of ~9 Krylov/step n-vectors; once the sum across lanes
/// spills L2 every traversal re-fetches from L3/DRAM and wider stops
/// paying (the measured 8-lane dip). The width is rounded down to a
/// dispatch width the batched kernels instantiate ({1..8} direct, 16
/// cache-blocked), so the auto choice can exceed 8 only on parts whose
/// L2 genuinely holds 16 lanes.
int auto_batch_width(const Scenario& s) {
  const double layers_per_tier = 3.5;  // bulk + interface (+ cavity)
  const double n = static_cast<double>(s.grid.rows) * s.grid.cols *
                   (layers_per_tier * s.tiers + 1.0);
  const double lane_bytes = (6.3 * n + 9.0 * n) * 8.0;
  long l2 = -1;
#if defined(_SC_LEVEL2_CACHE_SIZE)
  l2 = sysconf(_SC_LEVEL2_CACHE_SIZE);
#endif
  if (l2 <= 0) return kFallbackBatchWidth;
  const double budget = 2.0 / 3.0 * static_cast<double>(l2);
  const int fit = static_cast<int>(budget / lane_bytes);
  if (fit >= sparse::kMaxBatchLanes) return sparse::kMaxBatchLanes;
  if (fit > 8) return 8;
  return std::max(fit, 1);
}

/// One unit of worker-pool work: a single scenario (scalar path) or the
/// lanes of one batched lockstep group chunk.
struct SweepJob {
  std::vector<std::size_t> slots;  ///< indices into the results array
  double cost = 0.0;  ///< summed estimated_scenario_cost (LPT key)
};

/// Can this scenario join a batched lockstep group? (Direct solvers
/// don't batch — no initial guess, per-lane factorization.)
bool batchable(const Scenario& s) {
  return s.sim.solver == sparse::SolverKind::kBicgstabIlu0 ||
         s.sim.solver == sparse::SolverKind::kBicgstabJacobi;
}

/// Grouping key of batched lockstep jobs: the bank's model key (stack/
/// grid -> sparsity pattern) plus the control interval (operator values
/// prototype) and the solver kind. Policies, workloads, seeds and
/// tolerances may differ per lane — but continuously flow-modulating
/// (fuzzy) scenarios group separately from the rest: a batch iterates
/// until its slowest lane converges, so coupling ~0-iteration warm-
/// started lanes to 6-8-iteration fuzzy lanes would make the cheap
/// lanes pay the expensive lanes' Krylov work. Splitting by iteration
/// class keeps batches homogeneous (mixed batches remain fully
/// supported — BatchSession doesn't care — this is purely a scheduling
/// heuristic).
std::string batch_group_key(const Scenario& s) {
  return scenario_model_key(s) + "|dt=" +
         std::to_string(std::bit_cast<std::uint64_t>(s.sim.control_dt)) +
         "|k=" + std::to_string(static_cast<int>(s.sim.solver)) +
         "|fz=" + (s.policy == PolicyKind::kLcFuzzy ? "1" : "0");
}

}  // namespace

int resolve_jobs(int requested) {
  if (requested > 0) return requested;
  if (const char* env = std::getenv("TAC3D_JOBS")) {
    char* end = nullptr;
    const long parsed = std::strtol(env, &end, 10);
    if (end != env && *end == '\0' && parsed > 0) {
      return static_cast<int>(parsed);
    }
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

double estimated_scenario_cost(const Scenario& s,
                               double prepared_setup_factor) {
  const double layers_per_tier = 3.5;  // bulk + interface (+ cavity)
  const double cells = static_cast<double>(s.grid.rows) * s.grid.cols *
                       (layers_per_tier * s.tiers + 1.0);
  const double dt = s.sim.control_dt > 0.0 ? s.sim.control_dt : 0.25;
  const double duration =
      s.sim.duration > 0.0 ? s.sim.duration
                           : static_cast<double>(s.trace_seconds);
  const double flow_weight =
      s.policy == PolicyKind::kLcFuzzy ? 2.0 : 1.0;
  // The leakage-consistent steady init costs on the order of hundreds of
  // transient steps per fixed-point iteration.
  const double steps_equivalent_per_init = 300.0;
  const double setup = prepared_setup_factor * cells *
                       steps_equivalent_per_init *
                       std::max(1, s.sim.init_iterations);
  return cells * (duration / dt) * flow_weight + setup;
}

SweepReport::SweepReport(std::vector<SweepResult> results, int jobs_used,
                         double wall_seconds)
    : results_(std::move(results)),
      jobs_used_(jobs_used),
      wall_seconds_(wall_seconds) {}

const SweepResult* SweepReport::find(const std::string& label) const {
  for (const SweepResult& r : results_) {
    if (r.scenario.label == label) return &r;
  }
  return nullptr;
}

bool SweepReport::all_ok() const {
  return std::all_of(results_.begin(), results_.end(),
                     [](const SweepResult& r) { return r.ok(); });
}

std::vector<std::string> SweepReport::errors() const {
  std::vector<std::string> out;
  for (const SweepResult& r : results_) {
    if (!r.ok()) out.push_back(r.scenario.label + ": " + r.error);
  }
  return out;
}

SweepReport& SweepReport::sort_by(
    const std::function<double(const SweepResult&)>& key, bool ascending) {
  std::stable_sort(results_.begin(), results_.end(),
                   [&](const SweepResult& a, const SweepResult& b) {
                     return ascending ? key(a) < key(b) : key(a) > key(b);
                   });
  return *this;
}

double SweepReport::setup_seconds_total() const {
  double sum = 0.0;
  for (const SweepResult& r : results_) sum += r.setup_seconds;
  return sum;
}

double SweepReport::stepping_seconds_total() const {
  double sum = 0.0;
  for (const SweepResult& r : results_) sum += r.stepping_seconds;
  return sum;
}

double SweepReport::setup_fraction() const {
  const double setup = setup_seconds_total();
  const double busy = setup + stepping_seconds_total();
  return busy > 0.0 ? setup / busy : 0.0;
}

double SweepReport::solve_seconds_total() const {
  double sum = 0.0;
  for (const SweepResult& r : results_) sum += r.solve_seconds;
  return sum;
}

double SweepReport::tail_seconds_total() const {
  double sum = 0.0;
  for (const SweepResult& r : results_) sum += r.tail_seconds;
  return sum;
}

std::uint64_t SweepReport::replay_cycles_total() const {
  std::uint64_t sum = 0;
  for (const SweepResult& r : results_) sum += r.replay_cycles;
  return sum;
}

std::uint64_t SweepReport::replay_steps_total() const {
  std::uint64_t sum = 0;
  for (const SweepResult& r : results_) sum += r.replay_steps;
  return sum;
}

std::uint64_t SweepReport::replay_solves_skipped_total() const {
  std::uint64_t sum = 0;
  for (const SweepResult& r : results_) sum += r.replay_solves_skipped;
  return sum;
}

double SweepReport::tail_fraction() const {
  const double tail = tail_seconds_total();
  const double instrumented = tail + solve_seconds_total();
  return instrumented > 0.0 ? tail / instrumented : 0.0;
}

std::vector<double> SweepReport::job_busy_seconds() const {
  std::vector<double> busy(static_cast<std::size_t>(std::max(1, jobs_used_)),
                           0.0);
  for (const SweepResult& r : results_) {
    if (r.worker >= 0 && r.worker < static_cast<int>(busy.size())) {
      busy[static_cast<std::size_t>(r.worker)] += r.wall_seconds;
    }
  }
  return busy;
}

std::vector<double> SweepReport::job_utilization() const {
  std::vector<double> util = job_busy_seconds();
  if (wall_seconds_ > 0.0) {
    for (double& u : util) u /= wall_seconds_;
  }
  return util;
}

SweepReport& SweepReport::sort_by_index() {
  std::stable_sort(results_.begin(), results_.end(),
                   [](const SweepResult& a, const SweepResult& b) {
                     return a.index < b.index;
                   });
  return *this;
}

TextTable SweepReport::table() const {
  TextTable t;
  t.set_header({"Scenario", "peak T [C]", "hot any", "hot avg/core",
                "chip E [J]", "pump E [J]", "system E [J]", "perf loss",
                "wall [s]"});
  for (const SweepResult& r : results_) {
    if (!r.ok()) {
      t.add_row({r.scenario.label, "ERROR: " + r.error});
      continue;
    }
    const SimMetrics& m = r.metrics;
    t.add_row({r.scenario.label, fmt(kelvin_to_celsius(m.peak_temp), 1),
               fmt_pct(m.hotspot_frac_any()),
               fmt_pct(m.hotspot_frac_avg_core()), fmt(m.chip_energy, 0),
               fmt(m.pump_energy, 0), fmt(m.system_energy(), 0),
               fmt_pct(m.perf_degradation(), 3), fmt(r.wall_seconds, 2)});
  }
  return t;
}

SweepReport run_sweep(const std::vector<Scenario>& scenarios,
                      const SweepOptions& opts) {
  const auto sweep_start = std::chrono::steady_clock::now();
  std::shared_ptr<sparse::StructureCache> cache;
  if (opts.share_structures) {
    cache = opts.structure_cache
                ? opts.structure_cache
                : std::make_shared<sparse::StructureCache>();
  }
  std::shared_ptr<ScenarioBank> bank;
  if (opts.use_bank) {
    bank = opts.bank ? opts.bank : std::make_shared<ScenarioBank>(cache);
    // One symbolic cache per sweep: the bank always carries one (a
    // caller-supplied bank brings its own), and every scenario shares it
    // — share_structures only governs the bank-off path (see its doc).
    cache = bank->structures();
  }
  std::vector<SweepResult> results(scenarios.size());
  for (std::size_t i = 0; i < scenarios.size(); ++i) {
    results[i].index = i;
    results[i].scenario = scenarios[i];
    if (results[i].scenario.label.empty()) {
      results[i].scenario.label = scenario_label(scenarios[i]);
    }
    if (cache && !results[i].scenario.sim.structure_cache) {
      results[i].scenario.sim.structure_cache = cache;
    }
    if (opts.refresh) {
      results[i].scenario.sim.refresh = *opts.refresh;
    }
  }

  // Per-scenario cost estimates (LPT scheduling key). With a bank, only
  // the first scenario of each steady-tier key pays construction — later
  // equal-keyed ones are costed as clone-and-reset so the scheduler
  // doesn't overrate them.
  std::vector<double> cost(results.size(), 0.0);
  {
    std::unordered_set<std::string> seen_steady;
    for (std::size_t i = 0; i < results.size(); ++i) {
      const Scenario& s = results[i].scenario;
      double setup_factor = 1.0;
      if (bank != nullptr) {
        const std::string key = scenario_steady_key(s);
        if (!seen_steady.insert(key).second || bank->has_steady(key)) {
          setup_factor = kPreparedScenarioSetupFactor;
        }
      }
      cost[i] = estimated_scenario_cost(s, setup_factor);
    }
  }

  // Partition the sweep into jobs: with the bank on and batching
  // enabled, scenarios sharing a batch group key (pattern, dt, solver
  // kind) are chunked into lockstep BatchSession jobs of up to the
  // group's lane cap — the explicit SweepOptions::batch_width, or the
  // cache-fit auto width of the group's model (auto_batch_width);
  // everything else runs scalar, one job per scenario. Chunks honor
  // input order within a group.
  const bool batching = bank != nullptr && opts.batch_width != 1;
  const int explicit_width =
      std::min(opts.batch_width, sparse::kMaxBatchLanes);
  int batch_width_used = 0;
  std::vector<SweepJob> sweep_jobs;
  {
    std::vector<std::string> group_order;
    std::unordered_map<std::string, std::vector<std::size_t>> groups;
    for (std::size_t i = 0; i < results.size(); ++i) {
      const Scenario& s = results[i].scenario;
      if (batching && batchable(s)) {
        const std::string key = batch_group_key(s);
        auto [it, fresh] = groups.try_emplace(key);
        if (fresh) group_order.push_back(key);
        it->second.push_back(i);
      } else {
        sweep_jobs.push_back({{i}, cost[i]});
      }
    }
    for (const std::string& key : group_order) {
      const std::vector<std::size_t>& members = groups[key];
      const int batch_width =
          explicit_width > 0
              ? explicit_width
              : auto_batch_width(results[members.front()].scenario);
      if (members.size() > 1 && batch_width > 1) {
        batch_width_used = std::max(batch_width_used, batch_width);
      }
      // Balanced chunking: a group of 8 at width 6 becomes 4+4, not 6+2
      // — equal-width batches amortize the shared traversals evenly
      // instead of leaving a runt batch.
      const std::size_t chunks =
          (members.size() + static_cast<std::size_t>(batch_width) - 1) /
          static_cast<std::size_t>(batch_width);
      std::size_t at = 0;
      for (std::size_t c = 0; c < chunks; ++c) {
        const std::size_t take =
            (members.size() - at + (chunks - c) - 1) / (chunks - c);
        SweepJob job;
        for (std::size_t m = at; m < at + take; ++m) {
          job.slots.push_back(members[m]);
          job.cost += cost[members[m]];
        }
        at += take;
        sweep_jobs.push_back(std::move(job));
      }
    }
  }

  const int jobs = std::max(
      1, std::min<int>(resolve_jobs(opts.jobs),
                       static_cast<int>(sweep_jobs.size())));

  // Work order: first-slot order when serial (progressive on_result
  // output close to the order the caller wrote); longest-estimated-first
  // when parallel, so one expensive job picked up last cannot serialize
  // the tail of the sweep. Results stay in input order either way.
  std::vector<std::size_t> order(sweep_jobs.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     if (jobs > 1) {
                       return sweep_jobs[a].cost > sweep_jobs[b].cost;
                     }
                     return sweep_jobs[a].slots.front() <
                            sweep_jobs[b].slots.front();
                   });

  std::atomic<std::size_t> next{0};
  std::atomic<std::uint64_t> compaction_total{0};
  std::mutex report_mutex;

  // The registry publication point: fold one finished session's
  // bespoke counters (SolverStats, warm-start predictor outcomes, step
  // counts) into the uniform obs namespace. Scenario completion, not
  // the per-step loop, so the warm hot path stays untouched.
  auto publish_session = [](const SimulationSession& s) {
    if (!obs::metrics_enabled()) return;
    static obs::Counter steps("sweep/steps");
    static obs::Counter solves("solver/solves");
    static obs::Counter iterations("solver/iterations");
    static obs::Counter refactors("solver/refactors");
    static obs::Counter partials("solver/partial_refactors");
    static obs::Counter deferred("solver/deferred_updates");
    static obs::Counter fcache("solver/factor_cache_hits");
    static obs::Counter retries("solver/retries");
    static obs::Counter pred("predictor/hits");
    static obs::Counter pred_interp("predictor/interp_hits");
    static obs::Counter pred_fluid("predictor/fluid_hits");
    static obs::Counter traj("predictor/trajectory_hits");
    static obs::Counter replay_cycles("replay/cycles");
    static obs::Counter replay_steps("replay/steps_replayed");
    static obs::Counter replay_skipped("replay/solves_skipped");
    steps.add(static_cast<std::uint64_t>(s.steps_done()));
    replay_cycles.add(s.replay_cycles());
    replay_steps.add(s.replay_steps());
    replay_skipped.add(s.replay_solves_skipped());
    const sparse::SolverStats& st = s.solver_stats();
    solves.add(st.solves);
    iterations.add(st.iterations);
    refactors.add(st.refactors);
    partials.add(st.partial_refactors);
    deferred.add(st.deferred_updates);
    fcache.add(st.factor_cache_hits);
    retries.add(st.retries);
    const thermal::TransientSolver& t = s.thermal_solver();
    pred.add(t.predictor_hits());
    pred_interp.add(t.predictor_interpolations());
    pred_fluid.add(t.predictor_fluid_jumps());
    traj.add(t.trajectory_hits());
  };

  auto publish_result = [](const SweepResult& r) {
    if (!obs::metrics_enabled()) return;
    static obs::Counter scenarios("sweep/scenarios");
    static obs::Counter failures("sweep/scenarios_failed");
    static obs::HistogramMetric setup_s("sweep/setup_seconds");
    static obs::HistogramMetric stepping_s("sweep/stepping_seconds");
    static obs::HistogramMetric solve_s("sweep/solve_seconds");
    static obs::HistogramMetric tail_s("sweep/tail_seconds");
    scenarios.add();
    if (!r.ok()) failures.add();
    setup_s.record(r.setup_seconds);
    stepping_s.record(r.stepping_seconds);
    solve_s.record(r.solve_seconds);
    tail_s.record(r.tail_seconds);
  };

  // Materialize (bank: compile), time the construction and the stepping
  // separately, and run to the end. The owner keeps the session's
  // referenced objects alive for its whole scope.
  auto run_one = [&](SweepResult& r, auto owner,
                     std::chrono::steady_clock::time_point t0) {
    SimulationSession session = owner.session();
    r.setup_seconds = seconds_since(t0);
    const auto t1 = std::chrono::steady_clock::now();
    session.run_to_end();
    r.metrics = session.metrics();
    r.stepping_seconds = seconds_since(t1);
    r.solve_seconds = session.solve_seconds();
    r.tail_seconds = session.tail_seconds();
    r.replay_cycles = session.replay_cycles();
    r.replay_steps = session.replay_steps();
    r.replay_solves_skipped = session.replay_solves_skipped();
    publish_session(session);
  };

  auto deliver = [&](const SweepResult& r) {
    publish_result(r);
    if (opts.on_result) {
      const std::lock_guard<std::mutex> lock(report_mutex);
      opts.on_result(r);
    }
  };

  // One scenario on the scalar path (bank or from-scratch).
  auto run_scalar = [&](SweepResult& r, int worker_id) {
    obs::TraceSpan job_span("sweep/job");
    r.worker = worker_id;
    const auto t0 = std::chrono::steady_clock::now();
    try {
      if (bank != nullptr) {
        run_one(r, bank->prepare(r.scenario), t0);
      } else {
        run_one(r, instantiate(r.scenario), t0);
      }
    } catch (const std::exception& e) {
      r.error = e.what();
    } catch (...) {
      r.error = "unknown error";
    }
    r.wall_seconds = r.ok() ? r.setup_seconds + r.stepping_seconds
                            : seconds_since(t0);
    deliver(r);
  };

  // One batched lockstep job: prepare every lane through the bank
  // (per-lane setup timing, per-lane error isolation), run the
  // BatchSession to completion, split the shared stepping wall across
  // lanes by their step counts.
  auto run_batch = [&](const SweepJob& job, int worker_id) {
    obs::TraceSpan job_span("sweep/job");
    std::vector<PreparedScenario> prep;
    std::vector<std::size_t> lane_slots;
    prep.reserve(job.slots.size());
    for (const std::size_t slot : job.slots) {
      SweepResult& r = results[slot];
      r.worker = worker_id;
      const auto t0 = std::chrono::steady_clock::now();
      try {
        prep.push_back(bank->prepare(r.scenario));
        lane_slots.push_back(slot);
        r.setup_seconds = seconds_since(t0);
      } catch (const std::exception& e) {
        r.error = e.what();
      } catch (...) {
        r.error = "unknown error";
      }
      if (!r.ok()) {
        r.wall_seconds = seconds_since(t0);
        deliver(r);
      }
    }
    if (lane_slots.empty()) return;

    const int lanes = static_cast<int>(lane_slots.size());
    const auto t1 = std::chrono::steady_clock::now();
    try {
      BatchSession batch(std::move(prep));
      batch.run_to_end();
      compaction_total.fetch_add(batch.compaction_events(),
                                 std::memory_order_relaxed);
      if (obs::metrics_enabled()) {
        static obs::Counter compactions("batch/compaction_events");
        compactions.add(batch.compaction_events());
        for (int l = 0; l < lanes; ++l) {
          if (batch.has_session(l)) publish_session(batch.session(l));
        }
      }
      const double stepping = seconds_since(t1);
      const double solve = batch.solve_seconds();
      const double tail = batch.tail_seconds();
      double total_steps = 0.0;
      for (int l = 0; l < lanes; ++l) total_steps += batch.lane_steps(l);
      for (int l = 0; l < lanes; ++l) {
        SweepResult& r = results[lane_slots[static_cast<std::size_t>(l)]];
        r.batch_lanes = lanes;
        const double share = total_steps > 0.0
                                 ? batch.lane_steps(l) / total_steps
                                 : 1.0 / lanes;
        r.stepping_seconds = stepping * share;
        r.solve_seconds = solve * share;
        r.tail_seconds = tail * share;
        r.wall_seconds = r.setup_seconds + r.stepping_seconds;
        if (batch.has_session(l)) {
          const SimulationSession& s = batch.session(l);
          r.replay_cycles = s.replay_cycles();
          r.replay_steps = s.replay_steps();
          r.replay_solves_skipped = s.replay_solves_skipped();
        }
        if (batch.lane_ok(l)) {
          r.metrics = batch.metrics(l);
        } else {
          r.error = batch.lane_error(l);
        }
        deliver(r);
      }
    } catch (const std::exception& e) {
      // Lane-level failures are isolated inside BatchSession; reaching
      // here means the batch itself could not run (e.g. a driver
      // invariant) — fail every lane rather than the whole sweep.
      for (const std::size_t slot : lane_slots) {
        SweepResult& r = results[slot];
        r.error = e.what();
        r.wall_seconds = r.setup_seconds + seconds_since(t1);
        deliver(r);
      }
    }
  };

  auto worker = [&](int worker_id) {
    for (;;) {
      const std::size_t slot = next.fetch_add(1);
      if (slot >= order.size()) return;
      SweepJob& job = sweep_jobs[order[slot]];
      if (job.slots.size() == 1) {
        run_scalar(results[job.slots.front()], worker_id);
      } else {
        run_batch(job, worker_id);
      }
    }
  };

  if (jobs == 1) {
    worker(0);
  } else {
    std::vector<std::thread> pool;
    pool.reserve(jobs);
    for (int j = 0; j < jobs; ++j) pool.emplace_back(worker, j);
    for (std::thread& t : pool) t.join();
  }

  SweepReport report(std::move(results), jobs, seconds_since(sweep_start));
  report.set_structure_cache(std::move(cache));
  report.set_bank(std::move(bank));
  report.set_batch_telemetry(batch_width_used,
                             compaction_total.load(std::memory_order_relaxed));
  return report;
}

}  // namespace tac3d::sim
