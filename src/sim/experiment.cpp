#include "sim/experiment.hpp"

#include <map>
#include <tuple>
#include <utility>

#include "arch/calibration.hpp"
#include "common/error.hpp"
#include "common/units.hpp"
#include "sim/prepared.hpp"

namespace tac3d::sim {

std::string policy_label(PolicyKind kind) {
  switch (kind) {
    case PolicyKind::kAcLb:
      return "AC_LB";
    case PolicyKind::kAcTdvfsLb:
      return "AC_TDVFS_LB";
    case PolicyKind::kLcLb:
      return "LC_LB";
    case PolicyKind::kLcTdvfsLb:
      return "LC_TDVFS_LB";
    case PolicyKind::kLcFuzzy:
      return "LC_FUZZY";
  }
  throw InvalidArgument("policy_label: unknown policy");
}

arch::CoolingKind cooling_for(PolicyKind kind) {
  switch (kind) {
    case PolicyKind::kAcLb:
    case PolicyKind::kAcTdvfsLb:
      return arch::CoolingKind::kAirCooled;
    case PolicyKind::kLcLb:
    case PolicyKind::kLcTdvfsLb:
    case PolicyKind::kLcFuzzy:
      return arch::CoolingKind::kLiquidCooled;
  }
  throw InvalidArgument("cooling_for: unknown policy");
}

std::unique_ptr<control::ThermalPolicy> make_policy(
    PolicyKind kind, const arch::Mpsoc3D& soc,
    const microchannel::PumpModel& pump) {
  const int n = soc.n_cores();
  const power::VfTable& vf = soc.chip().vf;
  switch (kind) {
    case PolicyKind::kAcLb:
      return std::make_unique<control::MaxPerformancePolicy>(n, vf, -1);
    case PolicyKind::kAcTdvfsLb:
      return std::make_unique<control::TemperatureTriggeredDvfsPolicy>(
          n, vf, celsius_to_kelvin(arch::calib::kDvfsTripC),
          celsius_to_kelvin(arch::calib::kDvfsReleaseC), -1);
    case PolicyKind::kLcLb:
      return std::make_unique<control::MaxPerformancePolicy>(
          n, vf, pump.levels() - 1);
    case PolicyKind::kLcTdvfsLb:
      return std::make_unique<control::TemperatureTriggeredDvfsPolicy>(
          n, vf, celsius_to_kelvin(arch::calib::kDvfsTripC),
          celsius_to_kelvin(arch::calib::kDvfsReleaseC), pump.levels() - 1);
    case PolicyKind::kLcFuzzy:
      return std::make_unique<control::FuzzyFlowDvfsPolicy>(
          n, vf, pump.levels(),
          celsius_to_kelvin(arch::calib::kHotSpotThresholdC));
  }
  throw InvalidArgument("make_policy: unknown policy");
}

std::string scenario_label(const Scenario& s) {
  if (!s.label.empty()) return s.label;
  std::string label = std::to_string(s.tiers) + "-tier " +
                      policy_label(s.policy) + " " +
                      power::workload_name(s.workload);
  if (s.seed != 1) label += " s" + std::to_string(s.seed);
  return label;
}

ScenarioInstance instantiate(const Scenario& spec) {
  ScenarioInstance inst;
  inst.soc = std::make_unique<arch::Mpsoc3D>(arch::Mpsoc3D::Options{
      spec.tiers, spec.effective_cooling(), spec.grid,
      arch::NiagaraConfig::paper()});
  if (scenario_trace_usable(spec)) {
    inst.trace = spec.trace;  // shared immutable trace (matrix dedupe)
  } else {
    inst.trace = power::shared_workload(spec.workload,
                                        inst.soc->chip().hardware_threads(),
                                        spec.trace_seconds, spec.seed);
  }
  inst.policy = make_policy(spec.policy, *inst.soc, spec.sim.pump);
  inst.sim = spec.sim;
  return inst;
}

SimMetrics run_scenario(const Scenario& spec) {
  ScenarioInstance inst = instantiate(spec);
  SimulationSession session = inst.session();
  session.run_to_end();
  return session.metrics();
}

// --- ScenarioMatrix ------------------------------------------------------

ScenarioMatrix& ScenarioMatrix::base(Scenario s) {
  base_ = std::move(s);
  return *this;
}

ScenarioMatrix& ScenarioMatrix::tiers(std::vector<int> v) {
  tiers_ = std::move(v);
  return *this;
}

ScenarioMatrix& ScenarioMatrix::policies(std::vector<PolicyKind> v) {
  policies_ = std::move(v);
  return *this;
}

ScenarioMatrix& ScenarioMatrix::workloads(
    std::vector<power::WorkloadKind> v) {
  workloads_ = std::move(v);
  return *this;
}

ScenarioMatrix& ScenarioMatrix::solvers(std::vector<sparse::SolverKind> v) {
  solvers_ = std::move(v);
  return *this;
}

ScenarioMatrix& ScenarioMatrix::seeds(std::vector<std::uint64_t> v) {
  seeds_ = std::move(v);
  return *this;
}

ScenarioMatrix& ScenarioMatrix::trace_seconds(int seconds) {
  base_.trace_seconds = seconds;
  return *this;
}

ScenarioMatrix& ScenarioMatrix::grid(thermal::GridOptions g) {
  base_.grid = g;
  return *this;
}

ScenarioMatrix& ScenarioMatrix::sim(SimulationConfig cfg) {
  base_.sim = std::move(cfg);
  return *this;
}

ScenarioMatrix& ScenarioMatrix::filter(
    std::function<bool(const Scenario&)> pred) {
  filters_.push_back(std::move(pred));
  return *this;
}

std::vector<Scenario> ScenarioMatrix::build() const {
  std::vector<Scenario> out = expand();
  // One synthesized trace per distinct (workload, seed, trace_seconds):
  // scenarios that share the axes share the immutable trace object. A
  // trace carried in from the base scenario is kept as-is.
  const int threads = arch::NiagaraConfig::paper().hardware_threads();
  std::map<std::tuple<power::WorkloadKind, std::uint64_t, int>,
           std::shared_ptr<const power::UtilizationTrace>>
      traces;
  for (Scenario& s : out) {
    if (s.trace != nullptr) continue;
    auto& shared =
        traces[std::make_tuple(s.workload, s.seed, s.trace_seconds)];
    if (shared == nullptr) {
      shared = power::shared_workload(s.workload, threads, s.trace_seconds,
                                      s.seed);
    }
    s.trace = shared;
  }
  return out;
}

std::vector<Scenario> ScenarioMatrix::expand() const {
  require(!tiers_.empty() && !policies_.empty() && !workloads_.empty() &&
              !solvers_.empty() && !seeds_.empty(),
          "ScenarioMatrix: every sweep axis needs at least one value");
  std::vector<Scenario> out;
  out.reserve(tiers_.size() * policies_.size() * workloads_.size() *
              solvers_.size() * seeds_.size());
  for (const int tiers : tiers_) {
    for (const PolicyKind policy : policies_) {
      for (const power::WorkloadKind workload : workloads_) {
        for (const sparse::SolverKind solver : solvers_) {
          for (const std::uint64_t seed : seeds_) {
            Scenario s = base_;
            s.tiers = tiers;
            s.policy = policy;
            s.workload = workload;
            s.sim.solver = solver;
            s.seed = seed;
            bool keep = true;
            for (const auto& pred : filters_) {
              if (!pred(s)) {
                keep = false;
                break;
              }
            }
            if (!keep) continue;
            s.label = scenario_label(s);
            out.push_back(std::move(s));
          }
        }
      }
    }
  }
  return out;
}

ScenarioMatrix ScenarioMatrix::paper_fig67() {
  ScenarioMatrix m;
  m.tiers({2, 4})
      .policies({PolicyKind::kAcLb, PolicyKind::kAcTdvfsLb,
                 PolicyKind::kLcLb, PolicyKind::kLcFuzzy})
      .filter([](const Scenario& s) {
        return !(s.tiers == 4 && s.policy == PolicyKind::kAcTdvfsLb);
      });
  return m;
}

}  // namespace tac3d::sim
