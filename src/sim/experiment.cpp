#include "sim/experiment.hpp"

#include "arch/calibration.hpp"
#include "common/error.hpp"
#include "common/units.hpp"

namespace tac3d::sim {

std::string policy_label(PolicyKind kind) {
  switch (kind) {
    case PolicyKind::kAcLb:
      return "AC_LB";
    case PolicyKind::kAcTdvfsLb:
      return "AC_TDVFS_LB";
    case PolicyKind::kLcLb:
      return "LC_LB";
    case PolicyKind::kLcFuzzy:
      return "LC_FUZZY";
  }
  throw InvalidArgument("policy_label: unknown policy");
}

arch::CoolingKind cooling_for(PolicyKind kind) {
  switch (kind) {
    case PolicyKind::kAcLb:
    case PolicyKind::kAcTdvfsLb:
      return arch::CoolingKind::kAirCooled;
    case PolicyKind::kLcLb:
    case PolicyKind::kLcFuzzy:
      return arch::CoolingKind::kLiquidCooled;
  }
  throw InvalidArgument("cooling_for: unknown policy");
}

std::unique_ptr<control::ThermalPolicy> make_policy(
    PolicyKind kind, const arch::Mpsoc3D& soc,
    const microchannel::PumpModel& pump) {
  const int n = soc.n_cores();
  const power::VfTable& vf = soc.chip().vf;
  switch (kind) {
    case PolicyKind::kAcLb:
      return std::make_unique<control::MaxPerformancePolicy>(n, vf, -1);
    case PolicyKind::kAcTdvfsLb:
      return std::make_unique<control::TemperatureTriggeredDvfsPolicy>(
          n, vf, celsius_to_kelvin(arch::calib::kDvfsTripC),
          celsius_to_kelvin(arch::calib::kDvfsReleaseC), -1);
    case PolicyKind::kLcLb:
      return std::make_unique<control::MaxPerformancePolicy>(
          n, vf, pump.levels() - 1);
    case PolicyKind::kLcFuzzy:
      return std::make_unique<control::FuzzyFlowDvfsPolicy>(
          n, vf, pump.levels(),
          celsius_to_kelvin(arch::calib::kHotSpotThresholdC));
  }
  throw InvalidArgument("make_policy: unknown policy");
}

SimMetrics run_experiment(const ExperimentSpec& spec) {
  arch::Mpsoc3D soc(arch::Mpsoc3D::Options{
      spec.tiers, cooling_for(spec.policy), spec.grid,
      arch::NiagaraConfig::paper()});
  const power::UtilizationTrace trace = power::generate_workload(
      spec.workload, soc.chip().hardware_threads(), spec.trace_seconds,
      spec.seed);
  const auto policy = make_policy(spec.policy, soc, spec.sim.pump);
  return simulate(soc, trace, *policy, spec.sim);
}

}  // namespace tac3d::sim
