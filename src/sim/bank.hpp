#pragma once
/// \file bank.hpp
/// \brief ScenarioBank: keyed compilation cache that makes design-space
/// sweeps construction-free.
///
/// Every scenario of a sweep used to re-synthesize its trace,
/// re-assemble its Mpsoc3D/RcModel and re-solve the leakage-consistent
/// initial steady state — and after PR 3 made stepping ~25x faster, that
/// construction work dominated sweep wall time. A ScenarioBank compiles
/// each scenario once into three tiers of shareable artifacts (see
/// sim/prepared.hpp for the exact keys):
///
///   trace tier   one immutable power::UtilizationTrace per synthesis key
///   model tier   a pristine Mpsoc3D prototype (deep-cloned per
///                scenario) plus one ThermalOperator prototype per
///                control_dt, copy-and-rebound into each session
///   steady tier  the InitialThermalState of the leakage-consistent
///                fixed point, applied as a vector copy
///
/// prepare() is thread-safe (sweep workers share one bank); equal keys
/// build once and everyone else waits, distinct keys build concurrently.
/// Sharing is bitwise-neutral by construction: a prepared session steps
/// arithmetic identical to from-scratch materialization
/// (test_scenario_bank asserts this across solver kinds, serial and
/// parallel). A bank handed to several sweeps keeps its artifacts warm
/// across them — the steady-state regime of repeated design-space
/// exploration, where per-scenario setup collapses to a clone and two
/// vector copies.

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "sim/prepared.hpp"
#include "sparse/structure_cache.hpp"

namespace tac3d::sim {

/// Per-tier hit/miss counters (a "miss" built the artifact; approximate
/// under concurrent races, like sparse::StructureCache's). Scenarios
/// carrying their own usable trace bypass the trace tier entirely and
/// are not counted — the counters report cache behavior, not
/// pass-throughs.
struct BankCounters {
  std::uint64_t trace_hits = 0;
  std::uint64_t trace_misses = 0;
  std::uint64_t model_hits = 0;
  std::uint64_t model_misses = 0;
  std::uint64_t steady_hits = 0;
  std::uint64_t steady_misses = 0;

  std::uint64_t hits() const { return trace_hits + model_hits + steady_hits; }
  std::uint64_t misses() const {
    return trace_misses + model_misses + steady_misses;
  }
};

/// Thread-safe prepared-scenario compilation cache.
class ScenarioBank {
 public:
  /// \param structures symbolic-structure cache injected into every
  /// prepared scenario (and used by the cached steady solves); null =
  /// create a private one, so prepared sessions always share symbolic
  /// analysis through the bank.
  explicit ScenarioBank(
      std::shared_ptr<sparse::StructureCache> structures = nullptr);

  /// Compile \p spec: resolve the label, attach the shared trace, clone
  /// the model prototype, inject the cached initial state and operator
  /// prototype. Everything the returned PreparedScenario references is
  /// either owned by it or kept alive by shared ownership, but the
  /// operator prototypes reference model prototypes owned by the bank —
  /// the bank must outlive the sessions it prepares.
  PreparedScenario prepare(const Scenario& spec);

  BankCounters counters() const;

  const std::shared_ptr<sparse::StructureCache>& structures() const {
    return structures_;
  }

  /// Distinct artifacts currently cached per tier.
  std::size_t trace_entries() const;
  std::size_t model_entries() const;
  std::size_t steady_entries() const;

  /// Has some prepare() already requested this steady-tier key (see
  /// scenario_steady_key)? Lets schedulers cost equal-keyed scenarios
  /// as clone-and-reset even on the first sweep against a warm bank.
  bool has_steady(const std::string& key) const;

 private:
  struct TraceSlot {
    std::once_flag once;
    std::shared_ptr<const power::UtilizationTrace> value;
  };
  struct ModelSlot {
    std::once_flag once;
    std::unique_ptr<const arch::Mpsoc3D> prototype;
    /// One operator prototype per control_dt (keyed by the dt bits).
    std::mutex ops_mu;
    std::map<std::uint64_t, std::shared_ptr<const thermal::ThermalOperator>>
        ops;
  };
  struct SteadySlot {
    std::once_flag once;
    std::shared_ptr<const InitialThermalState> value;
  };

  template <typename Slot>
  std::shared_ptr<Slot> slot(
      std::unordered_map<std::string, std::shared_ptr<Slot>>& map,
      const std::string& key);

  mutable std::mutex mu_;
  std::unordered_map<std::string, std::shared_ptr<TraceSlot>> traces_;
  std::unordered_map<std::string, std::shared_ptr<ModelSlot>> models_;
  std::unordered_map<std::string, std::shared_ptr<SteadySlot>> steadies_;
  std::shared_ptr<sparse::StructureCache> structures_;

  std::atomic<std::uint64_t> trace_hits_{0}, trace_misses_{0};
  std::atomic<std::uint64_t> model_hits_{0}, model_misses_{0};
  std::atomic<std::uint64_t> steady_hits_{0}, steady_misses_{0};
};

}  // namespace tac3d::sim
