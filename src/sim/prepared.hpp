#pragma once
/// \file prepared.hpp
/// \brief A Scenario compiled into ready-to-run artifacts, plus the
/// equivalence keys that decide which artifacts two scenarios may share.
///
/// A PreparedScenario is the clone-and-reset counterpart of
/// ScenarioInstance: the trace is a shared immutable object, the MPSoC
/// is a cheap deep copy of a cached prototype, and the simulation config
/// carries the cached initial steady state and the prototype thermal
/// operator, so SimulationSession construction degenerates to vector
/// copies. The keys are explicit strings (cheap to hash, trivial to log)
/// derived only from the Scenario fields that the corresponding artifact
/// actually depends on:
///
///   trace tier   (workload, seed, trace_seconds)  [or trace identity]
///   model tier   (tiers, cooling, grid)
///   steady tier  (model key, t=0 demand fingerprint [attached traces]
///                 or trace key [synthesis axes], initial flow,
///                 init iterations, LB imbalance)
///
/// Anything outside a key (policy, solver kind, refresh policy, pump
/// power table, trace duration actually simulated, ...) must not affect
/// that artifact — test_scenario_bank asserts the resulting sessions are
/// bitwise identical to from-scratch materialization.

#include <memory>
#include <string>

#include "sim/experiment.hpp"

namespace tac3d::thermal {
class ThermalOperator;
}

namespace tac3d::sim {

/// Does this scenario's attached trace match the chip (instantiate()
/// and the bank both fall back to synthesis when it does not)?
bool scenario_trace_usable(const Scenario& s);

/// Trace-tier key: identifies the UtilizationTrace the scenario will
/// actually run. A usable explicit trace is keyed by its content
/// fingerprint (equal traces collapse even across separately built
/// scenario lists); otherwise by the synthesis axes
/// (workload, seed, trace_seconds).
std::string scenario_trace_key(const Scenario& s);

/// Model-tier key: identifies the assembled Mpsoc3D / RcModel and the
/// ThermalOperator pattern — (tiers, effective cooling, grid options).
std::string scenario_model_key(const Scenario& s);

/// Steady-tier key: identifies the leakage-consistent initial state —
/// the model key, the trace's t=0 demand (only the t=0 sample column
/// enters compute_initial_state, so usable attached traces are keyed by
/// its fingerprint and scenarios differing only in later trace content
/// share the solve; synthesis-bound scenarios keep the full trace key)
/// plus the policy-independent initial conditions (maximum pump flow per
/// cavity on liquid stacks, fixed-point iteration count, LB imbalance
/// threshold). Deliberately excludes the solver kind: the steady solve
/// always runs BiCGSTAB+ILU0, so scenarios differing only in the
/// stepping solver share their start.
std::string scenario_steady_key(const Scenario& s);

/// A Scenario compiled by a ScenarioBank (sim/bank.hpp): shared trace,
/// cloned MPSoC, fresh policy, and a SimulationConfig with the cached
/// initial state and operator prototype injected. Drop-in replacement
/// for ScenarioInstance — the session it starts is bitwise identical to
/// one materialized from scratch.
struct PreparedScenario {
  Scenario spec;  ///< resolved copy (label filled, caches injected)
  std::shared_ptr<const power::UtilizationTrace> trace;
  std::unique_ptr<arch::Mpsoc3D> soc;  ///< private clone of the prototype
  std::unique_ptr<control::ThermalPolicy> policy;
  SimulationConfig sim;  ///< initial_state / operator_prototype set

  /// Start a session over the prepared objects (this PreparedScenario
  /// must outlive it).
  SimulationSession session() { return {*soc, *trace, *policy, sim}; }
};

}  // namespace tac3d::sim
