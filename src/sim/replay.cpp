#include "sim/replay.hpp"

#include <algorithm>
#include <cstring>

#include "common/error.hpp"

namespace tac3d::sim {

void LimitCycleReplay::arm(int period_steps, int period_seconds,
                           int n_cores, std::size_t state_size) {
  require(period_steps >= 1 && period_seconds >= 1 && n_cores >= 1,
          "LimitCycleReplay::arm: bad period");
  phase_ = Phase::kWatching;
  verified_ = false;
  prev_valid_ = false;
  failed_attempts_ = 0;
  period_steps_ = period_steps;
  period_seconds_ = period_seconds;
  prev_temps_.assign(state_size, 0.0);
  locked_temps_.assign(state_size, 0.0);
  journal_.n_cores = n_cores;
  journal_.steps = 0;
  const std::size_t per_core =
      static_cast<std::size_t>(period_steps) * n_cores;
  journal_.offered.assign(per_core, 0.0);
  journal_.lost.assign(per_core, 0.0);
  journal_.tcore.assign(per_core, 0.0);
  journal_.chip.assign(static_cast<std::size_t>(period_steps), 0.0);
  journal_.pump.assign(static_cast<std::size_t>(period_steps), 0.0);
  journal_.flow.assign(static_cast<std::size_t>(period_steps), 0.0);
  journal_.pump_on.assign(static_cast<std::size_t>(period_steps), 0);
  cycles_detected_ = 0;
  steps_replayed_ = 0;
  solves_skipped_ = 0;
}

bool LimitCycleReplay::bitwise_equal(std::span<const double> a,
                                     std::span<const double> b) {
  return a.size() == b.size() &&
         std::memcmp(a.data(), b.data(), a.size_bytes()) == 0;
}

void LimitCycleReplay::save_prev(std::span<const double> temps,
                                 std::uint64_t aux) {
  std::copy(temps.begin(), temps.end(), prev_temps_.begin());
  prev_aux_ = aux;
  prev_valid_ = true;
}

CycleStepRecord LimitCycleReplay::journal_step_record() {
  require(phase_ == Phase::kJournaling && journal_.steps < period_steps_,
          "LimitCycleReplay: journal_step_record outside journaling");
  const std::size_t s = static_cast<std::size_t>(journal_.steps);
  const std::size_t nc = static_cast<std::size_t>(journal_.n_cores);
  ++journal_.steps;
  CycleStepRecord rec;
  rec.offered = std::span<double>(journal_.offered).subspan(s * nc, nc);
  rec.lost = std::span<double>(journal_.lost).subspan(s * nc, nc);
  rec.tcore = std::span<double>(journal_.tcore).subspan(s * nc, nc);
  rec.chip = &journal_.chip[s];
  rec.pump = &journal_.pump[s];
  rec.flow = &journal_.flow[s];
  rec.pump_on = &journal_.pump_on[s];
  return rec;
}

void LimitCycleReplay::on_boundary(std::span<const double> temps,
                                   std::uint64_t aux, int boundary_second,
                                   std::int64_t migrations,
                                   std::uint64_t pump_changes) {
  switch (phase_) {
    case Phase::kDisarmed:
      return;

    case Phase::kWatching:
      if (prev_valid_ && aux == prev_aux_ &&
          bitwise_equal(temps, prev_temps_)) {
        // The full closed-loop state recurred at a distance of exactly
        // one period: journal the next cycle and re-verify at its end.
        phase_ = Phase::kJournaling;
        journal_.steps = 0;
        journal_base_second_ = boundary_second;
        journal_start_migrations_ = migrations;
        journal_start_pump_changes_ = pump_changes;
        std::copy(temps.begin(), temps.end(), locked_temps_.begin());
        locked_aux_ = aux;
      }
      save_prev(temps, aux);
      return;

    case Phase::kJournaling: {
      // One full cycle recorded; accept only if the loop returned to the
      // journal's start state exactly (and, in conservative mode, the
      // cycle touched no operator values an external solver would have
      // reacted to).
      journal_.migrations_delta = migrations - journal_start_migrations_;
      const bool quiescent = pump_changes == journal_start_pump_changes_;
      if (aux == locked_aux_ && bitwise_equal(temps, locked_temps_) &&
          (!conservative_ || quiescent)) {
        phase_ = Phase::kLocked;
        verified_ = true;
        ++cycles_detected_;
      } else {
        ++failed_attempts_;
        phase_ = failed_attempts_ >= kMaxFailedAttempts ? Phase::kDisarmed
                                                        : Phase::kWatching;
      }
      save_prev(temps, aux);
      return;
    }

    case Phase::kLocked:
      if (aux == locked_aux_ && bitwise_equal(temps, locked_temps_)) {
        verified_ = true;  // back on the cycle boundary after real steps
      } else {
        // The loop left the cycle (trace deviation past the verified
        // window): drop the lock and watch for a new recurrence.
        phase_ = Phase::kWatching;
        verified_ = false;
      }
      save_prev(temps, aux);
      return;
  }
}

void LimitCycleReplay::apply_cycle(SimMetrics& m, double dt,
                                   double hot_threshold_k,
                                   double& flow_fraction_acc) const {
  // Mirror of tail_apply + finish_metrics accumulation, fed from the
  // journal: per step, per core in core order, the identical addends the
  // real steps applied — so every accumulator advances bitwise equally.
  const int nc = journal_.n_cores;
  for (int s = 0; s < journal_.steps; ++s) {
    const std::size_t base = static_cast<std::size_t>(s) * nc;
    for (int c = 0; c < nc; ++c) {
      m.offered_work += journal_.offered[base + c];
      m.lost_work += journal_.lost[base + c];
    }
    bool any_hot = false;
    for (int c = 0; c < nc; ++c) {
      const double t_core = journal_.tcore[base + c];
      m.peak_temp = std::max(m.peak_temp, t_core);
      if (t_core > hot_threshold_k) {
        m.core_hot_time[c] += dt;
        any_hot = true;
      }
    }
    if (any_hot) m.any_hot_time += dt;
    m.chip_energy += journal_.chip[static_cast<std::size_t>(s)];
    if (journal_.pump_on[static_cast<std::size_t>(s)]) {
      m.pump_energy += journal_.pump[static_cast<std::size_t>(s)];
      flow_fraction_acc += journal_.flow[static_cast<std::size_t>(s)];
    }
    m.duration += dt;
  }
}

}  // namespace tac3d::sim
