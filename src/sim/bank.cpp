#include "sim/bank.hpp"

#include <bit>
#include <utility>

#include "arch/niagara.hpp"
#include "common/error.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "power/workloads.hpp"
#include "thermal/operator.hpp"

namespace tac3d::sim {

namespace {
/// Registry mirrors of the bank's tier counters: same increment
/// sites, uniform "bank/<tier>_{hits,misses}" names for snapshots
/// and the service metrics stream.
obs::Counter& tier_counter(int tier, bool hit) {
  static obs::Counter trace_hits("bank/trace_hits");
  static obs::Counter trace_misses("bank/trace_misses");
  static obs::Counter model_hits("bank/model_hits");
  static obs::Counter model_misses("bank/model_misses");
  static obs::Counter steady_hits("bank/steady_hits");
  static obs::Counter steady_misses("bank/steady_misses");
  obs::Counter* all[3][2] = {{&trace_misses, &trace_hits},
                             {&model_misses, &model_hits},
                             {&steady_misses, &steady_hits}};
  return *all[tier][hit ? 1 : 0];
}
}  // namespace

ScenarioBank::ScenarioBank(std::shared_ptr<sparse::StructureCache> structures)
    : structures_(structures != nullptr
                      ? std::move(structures)
                      : std::make_shared<sparse::StructureCache>()) {}

template <typename Slot>
std::shared_ptr<Slot> ScenarioBank::slot(
    std::unordered_map<std::string, std::shared_ptr<Slot>>& map,
    const std::string& key) {
  const std::lock_guard<std::mutex> lock(mu_);
  std::shared_ptr<Slot>& s = map[key];
  if (s == nullptr) s = std::make_shared<Slot>();
  return s;
}

PreparedScenario ScenarioBank::prepare(const Scenario& spec) {
  obs::TraceSpan prepare_span("bank/prepare");
  PreparedScenario p;
  p.spec = spec;
  if (p.spec.label.empty()) p.spec.label = scenario_label(p.spec);
  if (p.spec.sim.structure_cache == nullptr) {
    p.spec.sim.structure_cache = structures_;
  }
  // Keys of the scenario as handed in — before the synthesized trace is
  // attached below — so external key computations over the same list
  // (the sweep scheduler's has_steady probe, tests) agree with the
  // tiers that get populated.
  const std::string steady_key = scenario_steady_key(p.spec);

  // --- trace tier --------------------------------------------------------
  if (scenario_trace_usable(p.spec)) {
    // Explicit chip-compatible trace: already materialized, passed
    // through without consulting the tier (and without counting — the
    // hit/miss counters report cache behavior, not pass-throughs).
    p.trace = p.spec.trace;
  } else {
    // No attached trace, or one instantiate() would ignore (thread-count
    // mismatch): synthesize from the axes, exactly like the bank-off
    // path, so bank on/off stay result-identical.
    obs::TraceSpan tier_span("bank/trace_tier");
    const auto ts = slot(traces_, scenario_trace_key(p.spec));
    bool built = false;
    std::call_once(ts->once, [&] {
      ts->value = power::shared_workload(
          p.spec.workload, arch::NiagaraConfig::paper().hardware_threads(),
          p.spec.trace_seconds, p.spec.seed);
      built = true;
    });
    (built ? trace_misses_ : trace_hits_)
        .fetch_add(1, std::memory_order_relaxed);
    tier_counter(0, !built).add();
    p.trace = ts->value;
    p.spec.trace = ts->value;  // downstream consumers share it too
  }

  // --- model tier --------------------------------------------------------
  const auto ms = slot(models_, scenario_model_key(p.spec));
  {
    obs::TraceSpan model_span("bank/model_tier");
    bool built = false;
    std::call_once(ms->once, [&] {
      ms->prototype = std::make_unique<const arch::Mpsoc3D>(
          arch::Mpsoc3D::Options{p.spec.tiers, p.spec.effective_cooling(),
                                 p.spec.grid, arch::NiagaraConfig::paper()});
      built = true;
    });
    (built ? model_misses_ : model_hits_)
        .fetch_add(1, std::memory_order_relaxed);
    tier_counter(1, !built).add();
  }
  p.soc = std::make_unique<arch::Mpsoc3D>(*ms->prototype);

  // Operator prototype for this control_dt (the backward-Euler matrix
  // depends on dt; ThermalOperator validates dt > 0 for us).
  std::shared_ptr<const thermal::ThermalOperator> op;
  {
    const std::lock_guard<std::mutex> lock(ms->ops_mu);
    auto& entry = ms->ops[std::bit_cast<std::uint64_t>(p.spec.sim.control_dt)];
    if (entry == nullptr) {
      entry = std::make_shared<const thermal::ThermalOperator>(
          ms->prototype->model(), p.spec.sim.control_dt);
    }
    op = entry;
  }

  // --- steady tier -------------------------------------------------------
  // A caller-supplied initial state wins (like structure_cache above):
  // the scenario starts exactly where the caller said, bank on or off.
  std::shared_ptr<const InitialThermalState> init = p.spec.sim.initial_state;
  if (init == nullptr) {
    obs::TraceSpan steady_span("bank/steady_tier");
    const auto ss = slot(steadies_, steady_key);
    bool built = false;
    std::call_once(ss->once, [&] {
      // Computed on this scenario's own clone — the identical arithmetic
      // a from-scratch session would run, so the cached vectors are
      // bitwise equal to what any equal-keyed session would solve.
      ss->value = std::make_shared<const InitialThermalState>(
          compute_initial_state(*p.soc, *p.trace, p.spec.sim));
      built = true;
    });
    (built ? steady_misses_ : steady_hits_)
        .fetch_add(1, std::memory_order_relaxed);
    tier_counter(2, !built).add();
    init = ss->value;
  }

  p.policy = make_policy(p.spec.policy, *p.soc, p.spec.sim.pump);
  p.sim = p.spec.sim;
  p.sim.initial_state = std::move(init);
  p.sim.operator_prototype = std::move(op);
  return p;
}

BankCounters ScenarioBank::counters() const {
  BankCounters c;
  c.trace_hits = trace_hits_.load(std::memory_order_relaxed);
  c.trace_misses = trace_misses_.load(std::memory_order_relaxed);
  c.model_hits = model_hits_.load(std::memory_order_relaxed);
  c.model_misses = model_misses_.load(std::memory_order_relaxed);
  c.steady_hits = steady_hits_.load(std::memory_order_relaxed);
  c.steady_misses = steady_misses_.load(std::memory_order_relaxed);
  return c;
}

std::size_t ScenarioBank::trace_entries() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return traces_.size();
}

std::size_t ScenarioBank::model_entries() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return models_.size();
}

std::size_t ScenarioBank::steady_entries() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return steadies_.size();
}

bool ScenarioBank::has_steady(const std::string& key) const {
  const std::lock_guard<std::mutex> lock(mu_);
  return steadies_.find(key) != steadies_.end();
}

}  // namespace tac3d::sim
