#pragma once
/// \file metrics.hpp
/// \brief Metrics accumulated over a closed-loop policy simulation:
/// hot-spot residency (Fig. 6), energy split and performance
/// degradation (Fig. 7), peak temperatures (Section IV-A text).

#include <cstdint>
#include <vector>

namespace tac3d::sim {

/// Results of one simulation run.
struct SimMetrics {
  double duration = 0.0;  ///< simulated time [s]

  // Hot-spot accounting against the 85 C threshold.
  std::vector<double> core_hot_time;  ///< per-core time above threshold [s]
  double any_hot_time = 0.0;          ///< time any core was hot [s]
  double peak_temp = 0.0;             ///< hottest observed core temp [K]

  // Energy split.
  double chip_energy = 0.0;  ///< cores + caches + uncore + leakage [J]
  double pump_energy = 0.0;  ///< pumping network [J]

  // Performance accounting.
  double offered_work = 0.0;  ///< integral of demand [work-s]
  double lost_work = 0.0;     ///< demand beyond DVFS-limited capacity
  std::int64_t migrations = 0;

  /// Time-average of the commanded flow as a fraction of maximum
  /// (1.0 for LC_LB; n/a -> 0 for air-cooled runs).
  double avg_flow_fraction = 0.0;

  // --- derived -----------------------------------------------------------
  /// Mean over cores of the fraction of time each spent hot
  /// (Fig. 6 "% averaged per core").
  double hotspot_frac_avg_core() const;

  /// Fraction of time at least one core was hot (Fig. 6 "% of time hot
  /// spots are observed").
  double hotspot_frac_any() const;

  double system_energy() const { return chip_energy + pump_energy; }

  /// Fraction of offered work that missed its interval (Fig. 7 "% delay").
  double perf_degradation() const;
};

}  // namespace tac3d::sim
