#include "sim/metrics.hpp"

namespace tac3d::sim {

double SimMetrics::hotspot_frac_avg_core() const {
  if (duration <= 0.0 || core_hot_time.empty()) return 0.0;
  double acc = 0.0;
  for (double t : core_hot_time) acc += t / duration;
  return acc / core_hot_time.size();
}

double SimMetrics::hotspot_frac_any() const {
  return duration > 0.0 ? any_hot_time / duration : 0.0;
}

double SimMetrics::perf_degradation() const {
  return offered_work > 0.0 ? lost_work / offered_work : 0.0;
}

}  // namespace tac3d::sim
