#include "sim/scheduler.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace tac3d::sim {

Scheduler::Scheduler(int n_threads, int n_cores, int threads_per_core,
                     double imbalance_threshold)
    : n_threads_(n_threads),
      n_cores_(n_cores),
      threads_per_core_(threads_per_core),
      threshold_(imbalance_threshold) {
  require(n_threads > 0 && n_cores > 0 && threads_per_core > 0,
          "Scheduler: invalid configuration");
  require(imbalance_threshold > 0.0, "Scheduler: threshold must be > 0");
  placement_.resize(n_threads);
  for (int t = 0; t < n_threads; ++t) placement_[t] = t % n_cores;
  queue_.resize(n_cores);
}

std::vector<double> Scheduler::balance(std::span<const double> thread_demand) {
  std::vector<double> core_demand(n_cores_, 0.0);
  balance_into(thread_demand, core_demand);
  return core_demand;
}

void Scheduler::balance_into(std::span<const double> thread_demand,
                             std::span<double> core_demand) {
  require(static_cast<int>(thread_demand.size()) == n_threads_,
          "Scheduler::balance: demand size mismatch");
  require(static_cast<int>(core_demand.size()) == n_cores_,
          "Scheduler::balance: core_demand size mismatch");

  std::vector<double>& queue = queue_;
  std::fill(queue.begin(), queue.end(), 0.0);
  for (int t = 0; t < n_threads_; ++t) {
    queue[placement_[t]] += thread_demand[t];
  }

  // Greedy LB: repeatedly move the smallest suitable thread from the
  // most-loaded to the least-loaded core while the imbalance exceeds
  // the threshold.
  for (int iter = 0; iter < n_threads_; ++iter) {
    const auto hi =
        std::max_element(queue.begin(), queue.end()) - queue.begin();
    const auto lo =
        std::min_element(queue.begin(), queue.end()) - queue.begin();
    const double gap = queue[hi] - queue[lo];
    if (gap <= threshold_ * threads_per_core_) break;

    // Pick the thread on `hi` whose move best narrows the gap without
    // overshooting: the largest demand not exceeding gap/2 (fall back
    // to the smallest).
    int best = -1;
    double best_demand = -1.0;
    int smallest = -1;
    double smallest_demand = 1e300;
    for (int t = 0; t < n_threads_; ++t) {
      if (placement_[t] != hi) continue;
      const double d = thread_demand[t];
      if (d <= gap / 2.0 && d > best_demand) {
        best = t;
        best_demand = d;
      }
      if (d < smallest_demand) {
        smallest = t;
        smallest_demand = d;
      }
    }
    const int move = best >= 0 ? best : smallest;
    if (move < 0 || thread_demand[move] <= 0.0) break;
    placement_[move] = static_cast<int>(lo);
    queue[hi] -= thread_demand[move];
    queue[lo] += thread_demand[move];
    ++migrations_;
  }

  for (int c = 0; c < n_cores_; ++c) {
    core_demand[c] = std::min(1.0, queue[c] / threads_per_core_);
  }
}

}  // namespace tac3d::sim
