#include "sim/prepared.hpp"

#include <bit>
#include <cstdint>
#include <sstream>

#include "arch/niagara.hpp"
#include "power/workloads.hpp"

namespace tac3d::sim {

namespace {

/// Exact textual encoding of a double (hex of its bit pattern): two
/// fields compare equal iff the doubles are bitwise identical, which is
/// the sharing contract of the bank tiers.
std::string bits(double v) {
  std::ostringstream os;
  os << std::hex << std::bit_cast<std::uint64_t>(v);
  return os.str();
}

/// Incremental FNV-1a over 64-bit words, rendered as hex (the key
/// fingerprints below share it).
struct Fnv1a {
  std::uint64_t h = 1469598103934665603ull;

  void mix(std::uint64_t v) {
    for (int b = 0; b < 8; ++b) {
      h ^= (v >> (8 * b)) & 0xffu;
      h *= 1099511628211ull;
    }
  }

  std::string hex() const {
    std::ostringstream os;
    os << std::hex << h;
    return os.str();
  }
};

/// FNV-1a over the raw sample bits of an explicit trace. Keys by
/// content, so the fingerprint is stable across separately built
/// scenario lists that attached equal traces (synthesis is deterministic
/// in its axes) and distinct for any custom trace that differs in a
/// single bit.
std::string trace_fingerprint(const power::UtilizationTrace& t) {
  Fnv1a f;
  f.mix(static_cast<std::uint64_t>(t.threads()));
  f.mix(static_cast<std::uint64_t>(t.seconds()));
  for (int th = 0; th < t.threads(); ++th) {
    for (int s = 0; s < t.seconds(); ++s) {
      f.mix(std::bit_cast<std::uint64_t>(t.at(th, s)));
    }
  }
  return f.hex();
}

/// FNV-1a over only the t=0 sample column. The initial steady state
/// consumes nothing else of the trace (compute_initial_state balances
/// the t=0 demand), so the steady tier keys attached traces by this
/// coarser fingerprint: scenarios differing only in later trace content
/// share the cached steady solve.
std::string trace_t0_fingerprint(const power::UtilizationTrace& t) {
  Fnv1a f;
  f.mix(static_cast<std::uint64_t>(t.threads()));
  for (int th = 0; th < t.threads(); ++th) {
    f.mix(std::bit_cast<std::uint64_t>(t.sample(th, 0.0)));
  }
  return f.hex();
}

}  // namespace

bool scenario_trace_usable(const Scenario& s) {
  return s.trace != nullptr &&
         s.trace->threads() ==
             arch::NiagaraConfig::paper().hardware_threads();
}

std::string scenario_trace_key(const Scenario& s) {
  if (scenario_trace_usable(s)) {
    // Explicit trace: content-keyed, so equal attached traces collapse
    // even across separately built scenario lists.
    return "trace#" + s.trace->name() + "|thr=" +
           std::to_string(s.trace->threads()) + "|len=" +
           std::to_string(s.trace->seconds()) + "|h=" +
           trace_fingerprint(*s.trace);
  }
  // No trace attached — or one the chip cannot use (thread-count
  // mismatch), which instantiate() ignores in favor of synthesis; key by
  // the synthesis axes so the bank does exactly the same.
  return "trace:" + power::workload_name(s.workload) +
         "|seed=" + std::to_string(s.seed) +
         "|len=" + std::to_string(s.trace_seconds);
}

std::string scenario_model_key(const Scenario& s) {
  const thermal::GridOptions& g = s.grid;
  return "model:tiers=" + std::to_string(s.tiers) + "|cool=" +
         std::to_string(static_cast<int>(s.effective_cooling())) +
         "|grid=" + std::to_string(g.rows) + "x" + std::to_string(g.cols) +
         "|disc=" + std::to_string(g.discrete_channels ? 1 : 0) +
         "|xr=" + std::to_string(g.x_refine) +
         "|zr=" + std::to_string(g.z_refine);
}

std::string scenario_steady_key(const Scenario& s) {
  // Initial flow: liquid stacks start at the pump's maximum level; air
  // stacks carry no flow (marker distinct from any real rate).
  const bool liquid =
      s.effective_cooling() == arch::CoolingKind::kLiquidCooled;
  const std::string flow =
      liquid ? bits(s.sim.pump.flow_per_cavity(s.sim.pump.levels() - 1))
             : "air";
  // Only the t=0 demand enters the initial steady solve, so a usable
  // attached trace is keyed by its t=0 sample column alone — scenarios
  // whose traces diverge later still share the cached solve. Synthesized
  // traces keep the full synthesis-axes key: their t=0 content is a
  // function of (workload, seed, length) that is unknown until the trace
  // tier builds them.
  const std::string trace_part =
      scenario_trace_usable(s)
          ? "t0#thr=" + std::to_string(s.trace->threads()) + "|h=" +
                trace_t0_fingerprint(*s.trace)
          : scenario_trace_key(s);
  return "steady:" + scenario_model_key(s) + "|" + trace_part +
         "|q=" + flow + "|init=" + std::to_string(s.sim.init_iterations) +
         "|imb=" + bits(s.sim.lb_imbalance);
}

}  // namespace tac3d::sim
