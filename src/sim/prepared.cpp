#include "sim/prepared.hpp"

#include <bit>
#include <cstdint>
#include <sstream>

#include "arch/niagara.hpp"
#include "power/workloads.hpp"

namespace tac3d::sim {

namespace {

/// Exact textual encoding of a double (hex of its bit pattern): two
/// fields compare equal iff the doubles are bitwise identical, which is
/// the sharing contract of the bank tiers.
std::string bits(double v) {
  std::ostringstream os;
  os << std::hex << std::bit_cast<std::uint64_t>(v);
  return os.str();
}

/// FNV-1a over the raw sample bits of an explicit trace. Keys by
/// content, so the fingerprint is stable across separately built
/// scenario lists that attached equal traces (synthesis is deterministic
/// in its axes) and distinct for any custom trace that differs in a
/// single bit.
std::string trace_fingerprint(const power::UtilizationTrace& t) {
  std::uint64_t h = 1469598103934665603ull;
  const auto mix = [&h](std::uint64_t v) {
    for (int b = 0; b < 8; ++b) {
      h ^= (v >> (8 * b)) & 0xffu;
      h *= 1099511628211ull;
    }
  };
  mix(static_cast<std::uint64_t>(t.threads()));
  mix(static_cast<std::uint64_t>(t.seconds()));
  for (int th = 0; th < t.threads(); ++th) {
    for (int s = 0; s < t.seconds(); ++s) {
      mix(std::bit_cast<std::uint64_t>(t.at(th, s)));
    }
  }
  std::ostringstream os;
  os << std::hex << h;
  return os.str();
}

}  // namespace

bool scenario_trace_usable(const Scenario& s) {
  return s.trace != nullptr &&
         s.trace->threads() ==
             arch::NiagaraConfig::paper().hardware_threads();
}

std::string scenario_trace_key(const Scenario& s) {
  if (scenario_trace_usable(s)) {
    // Explicit trace: content-keyed, so equal attached traces collapse
    // even across separately built scenario lists.
    return "trace#" + s.trace->name() + "|thr=" +
           std::to_string(s.trace->threads()) + "|len=" +
           std::to_string(s.trace->seconds()) + "|h=" +
           trace_fingerprint(*s.trace);
  }
  // No trace attached — or one the chip cannot use (thread-count
  // mismatch), which instantiate() ignores in favor of synthesis; key by
  // the synthesis axes so the bank does exactly the same.
  return "trace:" + power::workload_name(s.workload) +
         "|seed=" + std::to_string(s.seed) +
         "|len=" + std::to_string(s.trace_seconds);
}

std::string scenario_model_key(const Scenario& s) {
  const thermal::GridOptions& g = s.grid;
  return "model:tiers=" + std::to_string(s.tiers) + "|cool=" +
         std::to_string(static_cast<int>(s.effective_cooling())) +
         "|grid=" + std::to_string(g.rows) + "x" + std::to_string(g.cols) +
         "|disc=" + std::to_string(g.discrete_channels ? 1 : 0) +
         "|xr=" + std::to_string(g.x_refine) +
         "|zr=" + std::to_string(g.z_refine);
}

std::string scenario_steady_key(const Scenario& s) {
  // Initial flow: liquid stacks start at the pump's maximum level; air
  // stacks carry no flow (marker distinct from any real rate).
  const bool liquid =
      s.effective_cooling() == arch::CoolingKind::kLiquidCooled;
  const std::string flow =
      liquid ? bits(s.sim.pump.flow_per_cavity(s.sim.pump.levels() - 1))
             : "air";
  return "steady:" + scenario_model_key(s) + "|" + scenario_trace_key(s) +
         "|q=" + flow + "|init=" + std::to_string(s.sim.init_iterations) +
         "|imb=" + bits(s.sim.lb_imbalance);
}

}  // namespace tac3d::sim
