#pragma once
/// \file sweep.hpp
/// \brief Parallel scenario sweep runner: execute a batch of Scenario
/// descriptions on a worker pool and aggregate the metrics into a
/// sortable result table.
///
/// By default scenarios are compiled through a shared ScenarioBank
/// (sim/bank.hpp): traces, assembled models and initial steady states
/// are cached under explicit equivalence keys and handed out as
/// clone-and-reset sessions, so scenarios that share a stack/trace skip
/// re-construction. The sharing is bitwise-neutral — every session steps
/// arithmetic identical to independent materialization — so a sweep
/// stays bitwise-deterministic: for identical seeds the results are
/// identical whether it runs on one worker or many, bank on or off.
/// Results are returned in input order regardless of completion order.

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/table.hpp"
#include "sim/experiment.hpp"

namespace tac3d::sim {

class ScenarioBank;

/// Number of sweep workers to use for \p requested:
///   requested > 0            -> requested;
///   requested <= 0           -> the TAC3D_JOBS environment variable if it
///                               parses to a positive integer;
///   otherwise                -> std::thread::hardware_concurrency()
///                               (at least 1).
/// Both explicit requests and TAC3D_JOBS are honored verbatim (CI pins
/// the count for cross-machine comparability). Scenarios are CPU-bound,
/// so asking for more workers than cores only timeshares them —
/// SweepReport::job_utilization() makes that visible (every worker ~1.0
/// busy yet no speedup).
int resolve_jobs(int requested);

/// Rough relative cost of a scenario for longest-processing-time-first
/// scheduling: thermal cells x control steps, weighted up for policies
/// that modulate the coolant flow, plus a construction term for the
/// leakage-consistent steady init. \p prepared_setup_factor discounts
/// that term (see kPreparedScenarioSetupFactor) for scenarios whose
/// steady-tier key a ScenarioBank already holds. Only the ordering
/// matters, not the absolute scale. Shared by run_sweep's LPT dispatch
/// and the sweep service's per-job task ordering (service/service.hpp).
double estimated_scenario_cost(const Scenario& s,
                               double prepared_setup_factor = 1.0);

/// Setup-term discount of estimated_scenario_cost for scenarios that
/// will hit a bank's steady tier (clone-and-reset instead of a
/// fixed-point solve).
inline constexpr double kPreparedScenarioSetupFactor = 0.05;

/// Outcome of one scenario of a sweep.
struct SweepResult {
  std::size_t index = 0;  ///< position in the input scenario list
  Scenario scenario;
  SimMetrics metrics;  ///< valid when ok()
  /// Construction time [s]: bank prepare (or instantiate()) plus
  /// SimulationSession setup — trace, model, policy, initial steady.
  double setup_seconds = 0.0;
  /// Stepping time [s]: run_to_end plus metrics extraction.
  double stepping_seconds = 0.0;
  double wall_seconds = 0.0;  ///< setup_seconds + stepping_seconds
  /// Split of the stepping time between the thermal solves and the
  /// per-step control tail (sensors, policy, power/leakage, metrics) as
  /// instrumented by the session / batch session. Batched lanes split
  /// the batch totals by step counts, like stepping_seconds. Their sum
  /// is slightly below stepping_seconds (loop overhead in between).
  double solve_seconds = 0.0;
  double tail_seconds = 0.0;
  int worker = -1;            ///< pool worker that ran it (0-based)
  /// Lanes of the batched lockstep job this scenario rode in (see
  /// SweepOptions::batch_width); 0 = ran on the scalar path. Batched
  /// stepping wall time is attributed to lanes by their step counts.
  int batch_lanes = 0;
  /// Limit-cycle replay telemetry of the session (sim/replay.hpp):
  /// verified cycles locked, control steps fast-forwarded from the
  /// journal, and linear solves those steps skipped. All 0 when replay
  /// never engaged (aperiodic trace, solver never bitwise-locked, or
  /// SimulationConfig::limit_cycle_replay off).
  std::uint64_t replay_cycles = 0;
  std::uint64_t replay_steps = 0;
  std::uint64_t replay_solves_skipped = 0;
  std::string error;          ///< exception text; empty on success

  bool ok() const { return error.empty(); }
  const std::string& label() const { return scenario.label; }
};

/// Options of run_sweep().
struct SweepOptions {
  /// Worker threads; <= 0 defers to TAC3D_JOBS / hardware concurrency
  /// (see resolve_jobs). Never more workers than scenarios.
  int jobs = 0;
  /// Invoked after each scenario completes (from worker threads, but
  /// serialized — no locking needed inside). Useful for progress output.
  std::function<void(const SweepResult&)> on_result;
  /// Share one sparse::StructureCache across the sweep so scenarios with
  /// the same stack geometry reuse the CSR symbolic analysis (RCM
  /// ordering, ILU/banded structure). Purely symbolic — results are
  /// bitwise identical with sharing on or off, serial or parallel.
  /// Only meaningful with use_bank off: a ScenarioBank always carries a
  /// structure cache of its own (scenarios it prepares share symbolic
  /// analysis through it regardless of this flag) — to A/B structure
  /// sharing, disable the bank too.
  bool share_structures = true;
  /// Cache to share when share_structures is set; null = run_sweep
  /// creates a fresh one for this sweep. Scenarios that already carry
  /// their own cache keep it.
  std::shared_ptr<sparse::StructureCache> structure_cache;
  /// When set, every scenario's SimulationConfig::refresh is overridden
  /// with this staleness policy (e.g. RefreshPolicy::eager() for an
  /// always-refactor reference run).
  std::optional<sparse::RefreshPolicy> refresh;
  /// Compile scenarios through a ScenarioBank (sim/bank.hpp): cache
  /// synthesized traces, assembled models and initial steady states
  /// under equivalence keys and start clone-and-reset sessions instead
  /// of materializing every scenario from scratch. Bitwise-neutral like
  /// structure sharing — results are identical with the bank on or off.
  bool use_bank = true;
  /// Bank to compile through when use_bank is set; null = run_sweep
  /// creates a fresh one (wrapping the sweep's structure cache). Handing
  /// the same bank to several sweeps keeps its artifacts warm across
  /// them — repeated sweeps over a shared design space then pay setup
  /// only on first touch.
  std::shared_ptr<ScenarioBank> bank;
  /// Batched lockstep stepping (requires the bank): scenarios that share
  /// a model/pattern key, control interval and iterative solver kind are
  /// grouped into BatchSession jobs of up to this many lanes, so one
  /// worker advances all of them per matrix traversal
  /// (sim/batch.hpp; per-lane results are bitwise identical to the
  /// scalar path). 0 = auto width: per batch group, the widest fused-
  /// kernel dispatch width whose interleaved per-lane working set
  /// (matrix values, factors, Krylov vectors) fits in ~2/3 of the L2
  /// cache — 6 on the paper stack with a 2 MiB L2 (see
  /// SweepReport::batch_width_used). 1 = batching off; values above
  /// sparse::kMaxBatchLanes are clamped. Singleton groups, direct-solver
  /// scenarios and bank-off sweeps take the scalar path unchanged.
  int batch_width = 0;
};

/// Results of a sweep, in input order, with sort/report helpers.
class SweepReport {
 public:
  SweepReport() = default;
  SweepReport(std::vector<SweepResult> results, int jobs_used,
              double wall_seconds);

  const std::vector<SweepResult>& results() const { return results_; }
  std::size_t size() const { return results_.size(); }
  bool empty() const { return results_.empty(); }
  const SweepResult& at(std::size_t i) const { return results_.at(i); }

  /// First result whose scenario label matches, or nullptr.
  const SweepResult* find(const std::string& label) const;

  /// All scenarios completed without throwing?
  bool all_ok() const;

  /// Error summaries of the failed scenarios ("label: what").
  std::vector<std::string> errors() const;

  /// Stable-sort the results by \p key (ascending by default).
  SweepReport& sort_by(const std::function<double(const SweepResult&)>& key,
                       bool ascending = true);

  /// Restore input order.
  SweepReport& sort_by_index();

  /// Standard result table: label, peak temperature, hot-spot fractions,
  /// energy split, performance loss, wall time.
  TextTable table() const;

  int jobs_used() const { return jobs_used_; }
  double wall_seconds() const { return wall_seconds_; }

  /// Sum of per-scenario construction time [s] (see
  /// SweepResult::setup_seconds).
  double setup_seconds_total() const;

  /// Sum of per-scenario stepping time [s].
  double stepping_seconds_total() const;

  /// Sum of per-scenario thermal-solve / control-tail time [s] (see
  /// SweepResult::solve_seconds / tail_seconds).
  double solve_seconds_total() const;
  double tail_seconds_total() const;

  /// Sums of the per-scenario limit-cycle replay counters (see
  /// SweepResult::replay_steps and friends).
  std::uint64_t replay_cycles_total() const;
  std::uint64_t replay_steps_total() const;
  std::uint64_t replay_solves_skipped_total() const;

  /// Fraction of per-scenario busy time spent on construction:
  /// setup / (setup + stepping), 0 for an empty report. The headline
  /// amortization metric — a warm bank drives it toward 0.
  double setup_fraction() const;

  /// Fraction of instrumented stepping time spent in the control tail:
  /// tail / (tail + solve), 0 for an empty report. Machine-independent
  /// like setup_fraction; the lane-fused batched tail drives it down.
  double tail_fraction() const;

  /// Per-worker busy time [s] (sum of scenario walls, jobs_used entries);
  /// busy/wall close to 1 for every worker means the pool was neither
  /// starved nor imbalanced.
  std::vector<double> job_busy_seconds() const;

  /// Per-worker utilization busy/wall in [0, 1].
  std::vector<double> job_utilization() const;

  /// The structure cache the sweep ran with (null when sharing was off);
  /// exposes hit/miss counters for benches and telemetry.
  const std::shared_ptr<sparse::StructureCache>& structure_cache() const {
    return structure_cache_;
  }
  void set_structure_cache(std::shared_ptr<sparse::StructureCache> cache) {
    structure_cache_ = std::move(cache);
  }

  /// The ScenarioBank the sweep compiled through (null when the bank was
  /// off); exposes per-tier hit/miss counters for benches and telemetry,
  /// and can be handed to the next sweep to keep its artifacts warm.
  const std::shared_ptr<ScenarioBank>& bank() const { return bank_; }
  void set_bank(std::shared_ptr<ScenarioBank> bank) {
    bank_ = std::move(bank);
  }

  /// Widest lane count the sweep's batched lockstep jobs were chunked to
  /// (the auto-selected width when SweepOptions::batch_width == 0);
  /// 0 when no batched job ran.
  int batch_width_used() const { return batch_width_used_; }
  /// Total mid-solve lane-compaction events across the sweep's batched
  /// jobs (see sparse::BatchedBicgstabSolver::compaction_events).
  std::uint64_t batch_compaction_events() const {
    return batch_compaction_events_;
  }
  void set_batch_telemetry(int width_used, std::uint64_t compaction_events) {
    batch_width_used_ = width_used;
    batch_compaction_events_ = compaction_events;
  }

 private:
  std::vector<SweepResult> results_;
  int jobs_used_ = 1;
  double wall_seconds_ = 0.0;
  std::shared_ptr<sparse::StructureCache> structure_cache_;
  std::shared_ptr<ScenarioBank> bank_;
  int batch_width_used_ = 0;
  std::uint64_t batch_compaction_events_ = 0;
};

/// Run every scenario (worker pool of resolve_jobs(opts.jobs) threads)
/// and collect the results in input order. A scenario that throws is
/// reported via SweepResult::error; the sweep itself always completes.
SweepReport run_sweep(const std::vector<Scenario>& scenarios,
                      const SweepOptions& opts = {});

}  // namespace tac3d::sim
