#pragma once
/// \file experiment.hpp
/// \brief Scenario descriptions for the paper's policy/stack matrix and
/// beyond: a Scenario is one self-contained cell of a design-space
/// sweep (stack, cooling, policy, workload, trace, seed, grid, solver),
/// ScenarioMatrix expands cartesian sweeps over those axes, and
/// instantiate()/run_scenario() turn a description into a live
/// simulation. Shared by benches, examples, tests and the parallel
/// sweep runner (sim/sweep.hpp).

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "arch/mpsoc.hpp"
#include "control/policy.hpp"
#include "power/workloads.hpp"
#include "sim/engine.hpp"

namespace tac3d::sim {

/// The evaluated policies: the paper's four (AC_LB, AC_TDVFS_LB, LC_LB,
/// LC_FUZZY) plus the LC_TDVFS_LB ablation variant (temperature-
/// triggered DVFS at maximum flow, not in the paper's final set).
enum class PolicyKind { kAcLb, kAcTdvfsLb, kLcLb, kLcTdvfsLb, kLcFuzzy };

/// Display name matching the paper's labels.
std::string policy_label(PolicyKind kind);

/// Cooling configuration each policy runs on.
arch::CoolingKind cooling_for(PolicyKind kind);

/// Instantiate a policy for a given MPSoC and pump.
std::unique_ptr<control::ThermalPolicy> make_policy(
    PolicyKind kind, const arch::Mpsoc3D& soc,
    const microchannel::PumpModel& pump);

/// One cell of an evaluation matrix: everything needed to reproduce a
/// closed-loop run.
struct Scenario {
  std::string label;  ///< optional; scenario_label() derives a default
  int tiers = 2;
  PolicyKind policy = PolicyKind::kLcFuzzy;
  /// Cooling override; unset = derived from the policy (cooling_for).
  std::optional<arch::CoolingKind> cooling;
  power::WorkloadKind workload = power::WorkloadKind::kWebServer;
  int trace_seconds = 180;
  std::uint64_t seed = 1;
  thermal::GridOptions grid{16, 16};
  SimulationConfig sim;  ///< control interval, pump, solver kind, ...
  /// Optional pre-synthesized trace. When set (and its thread count
  /// matches the chip), instantiate() references it instead of
  /// synthesizing from (workload, seed, trace_seconds) — this is how
  /// ScenarioMatrix::build() shares one immutable trace across every
  /// scenario with the same trace axes, and how callers inject measured
  /// traces. Scenarios sharing the pointer share the trace.
  std::shared_ptr<const power::UtilizationTrace> trace;

  arch::CoolingKind effective_cooling() const {
    return cooling ? *cooling : cooling_for(policy);
  }
};

/// The pre-generalization name; a Scenario is a drop-in superset.
using ExperimentSpec = Scenario;

/// "2-tier LC_FUZZY web s1" (or the explicit label when set).
std::string scenario_label(const Scenario& s);

/// A Scenario materialized into live objects, ready to drive a
/// SimulationSession. Owns (or shares, for the immutable trace)
/// everything the session references.
struct ScenarioInstance {
  std::unique_ptr<arch::Mpsoc3D> soc;
  std::shared_ptr<const power::UtilizationTrace> trace;
  std::unique_ptr<control::ThermalPolicy> policy;
  SimulationConfig sim;

  /// Start a session over the owned objects (instance must outlive it).
  SimulationSession session() { return {*soc, *trace, *policy, sim}; }
};

/// Build the MPSoC, generate the trace and instantiate the policy.
ScenarioInstance instantiate(const Scenario& spec);

/// Instantiate the scenario, run it to completion, return metrics.
SimMetrics run_scenario(const Scenario& spec);

/// Back-compat alias for run_scenario().
inline SimMetrics run_experiment(const Scenario& spec) {
  return run_scenario(spec);
}

/// Cartesian sweep builder over scenario axes. Expansion order is
/// deterministic: tiers (outer) -> policies -> workloads -> solvers ->
/// seeds (inner), filters applied last.
class ScenarioMatrix {
 public:
  /// Template for the non-swept fields (trace length, grid, sim config).
  ScenarioMatrix& base(Scenario s);

  ScenarioMatrix& tiers(std::vector<int> v);
  ScenarioMatrix& policies(std::vector<PolicyKind> v);
  ScenarioMatrix& workloads(std::vector<power::WorkloadKind> v);
  ScenarioMatrix& solvers(std::vector<sparse::SolverKind> v);
  ScenarioMatrix& seeds(std::vector<std::uint64_t> v);
  ScenarioMatrix& trace_seconds(int seconds);
  ScenarioMatrix& grid(thermal::GridOptions g);
  ScenarioMatrix& sim(SimulationConfig cfg);

  /// Keep only scenarios for which \p pred returns true (cumulative).
  ScenarioMatrix& filter(std::function<bool(const Scenario&)> pred);

  /// Expand the cartesian product (labels auto-filled). Every distinct
  /// (workload, seed, trace_seconds) combination is synthesized once and
  /// shared immutably across the scenarios that use it (Scenario::trace)
  /// — instantiate() then references instead of re-synthesizing, with or
  /// without a ScenarioBank. A trace already set on the base scenario is
  /// left untouched.
  std::vector<Scenario> build() const;

  /// Number of scenarios build() would return (no trace synthesis).
  std::size_t size() const { return expand().size(); }

  /// The paper's seven Fig. 6/7 stack x policy configurations:
  /// {2,4} tiers x {AC_LB, AC_TDVFS_LB, LC_LB, LC_FUZZY} minus the
  /// 4-tier AC_TDVFS_LB cell the paper does not evaluate. Sweep axes
  /// for workloads/seeds/solvers can still be layered on top.
  static ScenarioMatrix paper_fig67();

 private:
  /// Cartesian expansion without the shared-trace attachment.
  std::vector<Scenario> expand() const;

  Scenario base_;
  std::vector<int> tiers_{2};
  std::vector<PolicyKind> policies_{PolicyKind::kLcFuzzy};
  std::vector<power::WorkloadKind> workloads_{power::WorkloadKind::kWebServer};
  std::vector<sparse::SolverKind> solvers_{
      sparse::SolverKind::kBicgstabIlu0};
  std::vector<std::uint64_t> seeds_{1};
  std::vector<std::function<bool(const Scenario&)>> filters_;
};

}  // namespace tac3d::sim
