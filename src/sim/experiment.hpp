#pragma once
/// \file experiment.hpp
/// \brief Canned experiment runner for the paper's policy/stack matrix
/// (the seven Fig. 6/7 configurations), shared by benches, examples and
/// the integration tests.

#include <cstdint>
#include <memory>
#include <string>

#include "arch/mpsoc.hpp"
#include "control/policy.hpp"
#include "power/workloads.hpp"
#include "sim/engine.hpp"

namespace tac3d::sim {

/// The four evaluated policies.
enum class PolicyKind { kAcLb, kAcTdvfsLb, kLcLb, kLcFuzzy };

/// Display name matching the paper's labels.
std::string policy_label(PolicyKind kind);

/// Cooling configuration each policy runs on.
arch::CoolingKind cooling_for(PolicyKind kind);

/// Instantiate a policy for a given MPSoC and pump.
std::unique_ptr<control::ThermalPolicy> make_policy(
    PolicyKind kind, const arch::Mpsoc3D& soc,
    const microchannel::PumpModel& pump);

/// One cell of the evaluation matrix.
struct ExperimentSpec {
  int tiers = 2;
  PolicyKind policy = PolicyKind::kLcFuzzy;
  power::WorkloadKind workload = power::WorkloadKind::kWebServer;
  int trace_seconds = 180;
  std::uint64_t seed = 1;
  thermal::GridOptions grid{16, 16};
  SimulationConfig sim;
};

/// Build the MPSoC, generate the trace, run the policy, return metrics.
SimMetrics run_experiment(const ExperimentSpec& spec);

}  // namespace tac3d::sim
