#pragma once
/// \file engine.hpp
/// \brief Closed-loop co-simulation: workload trace -> scheduler (LB) ->
/// policy (DVFS + flow rate) -> power model -> transient thermal model,
/// stepped at the control interval.
///
/// The loop is exposed at two altitudes: SimulationSession drives it one
/// control interval at a time (callers can inspect mid-run state, pause,
/// and resume), while simulate() remains the one-shot convenience wrapper
/// that runs a session to completion.

#include <limits>
#include <memory>
#include <span>
#include <vector>

#include "arch/mpsoc.hpp"
#include "control/policy.hpp"
#include "microchannel/pump.hpp"
#include "power/trace.hpp"
#include "sim/metrics.hpp"
#include "sim/replay.hpp"
#include "sim/scheduler.hpp"
#include "sparse/solver.hpp"

namespace tac3d::thermal {
class ThermalOperator;
class TransientSolver;
}

namespace tac3d::sim {

/// The model state a session starts from: the leakage-consistent steady
/// temperature field plus the element powers that produced it. Computed
/// by compute_initial_state() (the fixed-point solve every session runs
/// at construction) and cacheable across sessions: two scenarios whose
/// stack, grid, cooling, initial flow and t=0 workload demand agree
/// start from bitwise-identical state, so a ScenarioBank (sim/bank.hpp)
/// can hand the vectors out instead of re-solving.
struct InitialThermalState {
  std::vector<double> temperatures;    ///< one value per thermal cell [K]
  std::vector<double> element_powers;  ///< one value per floorplan element [W]
};

/// Knobs of a simulation run.
struct SimulationConfig {
  double control_dt = 0.25;   ///< control & thermal step [s]
  double duration = 0.0;      ///< 0 = full trace length
  microchannel::PumpModel pump = microchannel::PumpModel::table1(16);
  double hot_threshold_k = 273.15 + 85.0;  ///< hot-spot threshold [K]
  double lb_imbalance = 0.25;
  /// Fixed-point iterations when computing the leakage-consistent
  /// initial steady state.
  int init_iterations = 4;
  /// Linear solver strategy for the transient thermal steps.
  sparse::SolverKind solver = sparse::SolverKind::kBicgstabIlu0;
  /// Relative residual tolerance of the per-step linear solves
  /// (iterative kinds; the direct solver is exact). Backward-Euler at
  /// the control interval carries O(dt) truncation error of order
  /// 1e-2..1e-3 K per step, so solving the linear system ~3 orders
  /// tighter than that is already conservative; the default trades the
  /// historical 1e-12 near-machine precision (~6 wasted orders, and with
  /// them most of the Krylov iterations of every step) for that
  /// physically grounded budget. Tighten for solver studies; the
  /// simulation stays bitwise deterministic for a fixed value.
  double solver_tolerance = 1e-8;
  /// Staleness policy for factorization/preconditioner refreshes after
  /// the policy loop changes the coolant flow (see sparse/refresh.hpp).
  sparse::RefreshPolicy refresh;
  /// Flow-transition warm-start slots of the transient solver (0
  /// disables the predictor).
  int warm_start_slots = 16;
  /// Optional symbolic-structure cache shared between sessions (the
  /// sweep runner injects one so same-geometry scenarios reuse the RCM
  /// ordering and ILU/banded symbolic analysis). Null = private
  /// analysis, identical numerics either way.
  std::shared_ptr<sparse::StructureCache> structure_cache;
  /// Precomputed initial state (see InitialThermalState). When set,
  /// session construction applies the vectors instead of running the
  /// leakage-consistent fixed-point solve; the caller guarantees they
  /// came from compute_initial_state() on an equivalent configuration
  /// (sizes are validated, equivalence is not). Null = solve from
  /// scratch, identical numerics either way.
  std::shared_ptr<const InitialThermalState> initial_state;
  /// Prototype backward-Euler operator to copy-and-rebind instead of
  /// materializing A = C/dt + G from scratch (see
  /// thermal::ThermalOperator). Must come from a model with the same
  /// stack/grid and the same control_dt; null = build fresh. Bitwise
  /// neutral.
  std::shared_ptr<const thermal::ThermalOperator> operator_prototype;
  /// Limit-cycle fast-forward (sim/replay.hpp): when the attached trace
  /// is exactly periodic and the closed-loop state bitwise-recurs at the
  /// workload period, run_until/run_to_end replay journaled cycles with
  /// zero linear solves instead of re-stepping them. Bitwise neutral by
  /// construction — replay engages only on exact state recurrence and
  /// re-adds the identical journaled values in the identical order; set
  /// false to force step-everything (the parity baseline).
  bool limit_cycle_replay = true;
};

/// The initial state SimulationSession computes at construction: apply
/// the maximum pump level (liquid stacks), balance the trace's t=0
/// demand onto the cores at the maximum V/f level, and run the
/// leakage-consistent steady fixed point. Leaves \p soc with the
/// returned powers/flows applied — exactly the state a freshly
/// constructed session would leave it in. Deterministic in its inputs,
/// so the result can be cached and shared across sessions (the steady
/// tier of sim/bank.hpp).
InitialThermalState compute_initial_state(arch::Mpsoc3D& soc,
                                          const power::UtilizationTrace& trace,
                                          const SimulationConfig& cfg);

/// A resumable closed-loop simulation.
///
/// Construction computes the leakage-consistent initial steady state
/// (the paper: "we initialize the simulations with steady state
/// temperature values"); each step() advances one control interval:
/// load balancing, policy decision, execution/power model, thermal
/// step, metrics accumulation. The referenced MPSoC, trace and policy
/// must outlive the session.
class SimulationSession {
 public:
  SimulationSession(arch::Mpsoc3D& soc, const power::UtilizationTrace& trace,
                    control::ThermalPolicy& policy,
                    const SimulationConfig& cfg = {});
  ~SimulationSession();
  SimulationSession(SimulationSession&&) noexcept;

  /// Advance one control interval. No-op once done().
  void step();

  /// Lockstep phase API (used by BatchSession to batch the thermal
  /// solve across sessions): step() is exactly
  ///   step_prepare() + thermal_solver().step() + step_finish().
  /// step_prepare() runs load balancing, the policy decision, the
  /// execution/power model and leaves the thermal solver ready to
  /// advance (false = already done(), nothing to step); after the
  /// thermal step — scalar or one lane of a thermal::
  /// BatchedTransientSolver — step_finish() accumulates the metrics and
  /// commits the interval. Callers must pair them exactly.
  bool step_prepare();
  void step_finish();

  /// Control-tail stages: step_prepare() is exactly
  ///   tail_begin() + (sense_current() unless sensed_fresh())
  ///   + tail_decide() + tail_apply() + tail_power()
  /// and step_finish() is sense_current() + finish_metrics().
  /// BatchSession drives the stages individually so the sensor gather,
  /// the fuzzy-policy inference and the power/leakage update can each
  /// run lane-fused across a whole batch (see power/batched_power.hpp);
  /// a stage that substitutes a fused kernel must leave exactly the
  /// state its scalar counterpart would (bitwise).
  /// tail_begin(): workload demand sampling + load balancing into
  /// policy_inputs() (false = already done()).
  bool tail_begin();
  /// Gather the per-core temperature sensors from the current field
  /// into policy_inputs() and mark them fresh. step_finish() senses the
  /// post-solve field for the metrics; the field does not change again
  /// before the next step_prepare(), so that gather doubles as the next
  /// interval's policy input (sensed_fresh() says it is still valid).
  void sense_current();
  bool sensed_fresh() const { return sensed_fresh_; }
  /// A batched sensor gather that wrote policy_inputs().core_temps
  /// itself calls this instead of sense_current().
  void mark_sensed() { sensed_fresh_ = true; }
  /// Policy decision into policy_actions().
  void tail_decide();
  /// Apply the decision: pump level, execution model, work accounting.
  void tail_apply();
  /// Power update: dynamic + leakage + RHS commit (the scalar tail).
  void tail_power();
  /// Just the per-lane dynamic half of tail_power(), written into the
  /// model's element_powers_writable(); the batched path follows with
  /// the lane-fused leakage + scatter kernels.
  void tail_power_dynamic();
  /// Metrics accumulation from the sensed temperatures; commits the
  /// interval (advances steps_done()).
  void finish_metrics();

  /// Persistent policy I/O of the tail stages (one control interval).
  control::PolicyInputs& policy_inputs() { return in_; }
  control::PolicyActions& policy_actions() { return act_; }
  control::ThermalPolicy& policy() { return policy_; }

  /// Wall-clock seconds step() spent in the control tail (prepare +
  /// finish) and in the thermal solve, accumulated over the run. Only
  /// step() itself is instrumented; callers driving the lockstep
  /// phase API (BatchSession) time their own stages.
  double tail_seconds() const { return tail_seconds_; }
  double solve_seconds() const { return solve_seconds_; }

  /// The transient thermal solver this session steps (the lane handle a
  /// BatchedTransientSolver drives between step_prepare and
  /// step_finish).
  thermal::TransientSolver& thermal_solver() { return *thermal_; }
  const thermal::TransientSolver& thermal_solver() const { return *thermal_; }

  /// Step until simulated time reaches \p t_sim (or the run ends).
  /// \return number of steps taken (replayed cycles count per step).
  int run_until(double t_sim);

  /// Step to the end of the run. \return number of steps taken.
  int run_to_end();

  /// Limit-cycle fast-forward (sim/replay.hpp): when the session is
  /// locked on a verified cycle and sits at a verified boundary, replay
  /// as many whole cycles as fit before \p t_limit (and the run end),
  /// each with zero linear solves, re-verifying the trace window per
  /// cycle. Returns the number of steps fast-forwarded (0 when replay
  /// is not engaged — callers then step normally). run_until/run_to_end
  /// call this internally; BatchSession calls it per lane so replaying
  /// lanes drop out of the batched solve.
  int replay_fast_forward(
      double t_limit = std::numeric_limits<double>::infinity());

  /// Replay telemetry: verified limit-cycle locks, steps reconstructed
  /// from the journal, and linear solves those steps skipped.
  std::uint64_t replay_cycles() const { return replay_.cycles_detected(); }
  std::uint64_t replay_steps() const { return replay_.steps_replayed(); }
  std::uint64_t replay_solves_skipped() const {
    return replay_.solves_skipped();
  }

  /// Mark this session as a lane whose thermal solves run in an external
  /// batched solver (BatchSession): replay then locks only on quiescent
  /// cycles (see LimitCycleReplay::set_conservative).
  void set_replay_external_solver(bool on) {
    replay_.set_conservative(on);
  }

  /// All control intervals executed?
  bool done() const { return steps_done_ >= total_steps_; }

  /// Simulated time [s].
  double time() const { return steps_done_ * cfg_.control_dt; }

  int steps_done() const { return steps_done_; }
  int total_steps() const { return total_steps_; }

  /// Metrics accumulated so far (complete once done()). Mid-run the
  /// averages reflect the elapsed portion of the run.
  SimMetrics metrics() const;

  /// Current temperature field [K] (one value per thermal cell).
  std::span<const double> temperatures() const;

  /// Current maximum temperature of core \p core [K].
  double core_temp(int core) const;

  /// Hottest core temperature right now [K].
  double max_core_temp() const;

  /// Active pump level (-1 for air-cooled stacks).
  int pump_level() const { return pump_level_; }

  /// Refresh/solve counters of the transient thermal solver (how often
  /// the policy loop's flow changes forced a refactor, Krylov iteration
  /// totals, ...).
  const sparse::SolverStats& solver_stats() const;

  /// Flow updates the thermal operator absorbed as indexed rewrites.
  std::uint64_t flow_updates() const;

  const SimulationConfig& config() const { return cfg_; }
  const arch::Mpsoc3D& soc() const { return soc_; }

 private:
  arch::Mpsoc3D& soc_;
  const power::UtilizationTrace& trace_;
  control::ThermalPolicy& policy_;
  SimulationConfig cfg_;
  bool liquid_;
  int n_cores_;
  int total_steps_;
  int steps_done_ = 0;
  Scheduler scheduler_;
  std::vector<double> thread_demand_;
  std::vector<double> core_demand_;
  std::vector<arch::CoreState> cores_;
  std::unique_ptr<thermal::TransientSolver> thermal_;
  SimMetrics m_;
  int pump_level_ = -1;
  double flow_fraction_acc_ = 0.0;
  // Persistent control-tail state (the per-step loop is allocation-free).
  control::PolicyInputs in_;
  control::PolicyActions act_;
  bool sensed_fresh_ = false;
  double tail_seconds_ = 0.0;
  double solve_seconds_ = 0.0;
  // Limit-cycle replay (sim/replay.hpp): detection state machine plus
  // the pump-change counter its conservative mode keys on.
  LimitCycleReplay replay_;
  std::uint64_t pump_changes_ = 0;
  /// FNV-1a fingerprint of all auxiliary closed-loop state (everything
  /// beyond the temperature field that feeds future arithmetic).
  std::uint64_t replay_fingerprint() const;
  /// Journal recording + boundary detection, called by finish_metrics()
  /// after each committed interval while replay is armed.
  void replay_post_step();
};

/// Run \p trace through \p policy on \p soc and collect metrics.
/// Thin wrapper over SimulationSession: construct, run to the end,
/// return the metrics.
SimMetrics simulate(arch::Mpsoc3D& soc, const power::UtilizationTrace& trace,
                    control::ThermalPolicy& policy,
                    const SimulationConfig& cfg = {});

}  // namespace tac3d::sim
