#pragma once
/// \file engine.hpp
/// \brief Closed-loop co-simulation: workload trace -> scheduler (LB) ->
/// policy (DVFS + flow rate) -> power model -> transient thermal model,
/// stepped at the control interval.

#include "arch/mpsoc.hpp"
#include "control/policy.hpp"
#include "microchannel/pump.hpp"
#include "power/trace.hpp"
#include "sim/metrics.hpp"

namespace tac3d::sim {

/// Knobs of a simulation run.
struct SimulationConfig {
  double control_dt = 0.25;   ///< control & thermal step [s]
  double duration = 0.0;      ///< 0 = full trace length
  microchannel::PumpModel pump = microchannel::PumpModel::table1(16);
  double hot_threshold_k = 273.15 + 85.0;  ///< hot-spot threshold [K]
  double lb_imbalance = 0.25;
  /// Fixed-point iterations when computing the leakage-consistent
  /// initial steady state.
  int init_iterations = 4;
};

/// Run \p trace through \p policy on \p soc and collect metrics.
///
/// The simulation starts from the leakage-consistent steady state of
/// the first trace sample (the paper: "we initialize the simulations
/// with steady state temperature values").
SimMetrics simulate(arch::Mpsoc3D& soc, const power::UtilizationTrace& trace,
                    control::ThermalPolicy& policy,
                    const SimulationConfig& cfg = {});

}  // namespace tac3d::sim
