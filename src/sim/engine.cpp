#include "sim/engine.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "sim/scheduler.hpp"
#include "thermal/transient.hpp"

namespace tac3d::sim {

namespace {

/// Apply a pump level to all cavities (no-op for air-cooled stacks).
void apply_pump(arch::Mpsoc3D& soc, const microchannel::PumpModel& pump,
                int level) {
  if (soc.cooling() != arch::CoolingKind::kLiquidCooled || level < 0) return;
  soc.model().set_all_flows(pump.flow_per_cavity(level));
}

}  // namespace

SimMetrics simulate(arch::Mpsoc3D& soc, const power::UtilizationTrace& trace,
                    control::ThermalPolicy& policy,
                    const SimulationConfig& cfg) {
  require(cfg.control_dt > 0.0, "simulate: control_dt must be positive");
  const bool liquid = soc.cooling() == arch::CoolingKind::kLiquidCooled;
  const int n_cores = soc.n_cores();
  require(trace.threads() == soc.chip().hardware_threads(),
          "simulate: trace thread count must match the chip");

  const double duration =
      cfg.duration > 0.0
          ? cfg.duration
          : static_cast<double>(trace.seconds() - 1);
  const int steps =
      std::max(1, static_cast<int>(std::llround(duration / cfg.control_dt)));

  Scheduler scheduler(trace.threads(), n_cores,
                      soc.chip().threads_per_core, cfg.lb_imbalance);

  // --- initial state -----------------------------------------------------
  std::vector<double> thread_demand(trace.threads());
  for (int t = 0; t < trace.threads(); ++t) {
    thread_demand[t] = trace.sample(t, 0.0);
  }
  std::vector<double> core_demand = scheduler.balance(thread_demand);

  std::vector<arch::CoreState> cores(n_cores);
  for (int c = 0; c < n_cores; ++c) {
    cores[c] = {core_demand[c], soc.chip().vf.max_level()};
  }
  if (liquid) {
    apply_pump(soc, cfg.pump, cfg.pump.levels() - 1);
  }
  // Leakage-consistent initial steady state (fixed point).
  std::vector<double> temps =
      soc.leakage_consistent_steady(cores, cfg.init_iterations);

  thermal::TransientSolver thermal(soc.model(), cfg.control_dt);
  thermal.set_state(temps);

  SimMetrics m;
  m.core_hot_time.assign(n_cores, 0.0);

  int pump_level = liquid ? cfg.pump.levels() - 1 : -1;
  double flow_fraction_acc = 0.0;

  for (int s = 0; s < steps; ++s) {
    const double now = s * cfg.control_dt;

    // 1. Workload demands and load balancing.
    for (int t = 0; t < trace.threads(); ++t) {
      thread_demand[t] = trace.sample(t, now);
    }
    core_demand = scheduler.balance(thread_demand);

    // 2. Policy decision from the current sensors.
    control::PolicyInputs in;
    in.core_temps.resize(n_cores);
    for (int c = 0; c < n_cores; ++c) {
      in.core_temps[c] = soc.core_temp(thermal.temperatures(), c);
    }
    in.core_demands = core_demand;
    in.dt = cfg.control_dt;
    const control::PolicyActions act = policy.decide(in);
    require(static_cast<int>(act.vf_levels.size()) == n_cores,
            "simulate: policy returned wrong vf_levels size");

    if (liquid && act.pump_level >= 0 && act.pump_level != pump_level) {
      pump_level = act.pump_level;
      apply_pump(soc, cfg.pump, pump_level);
    }

    // 3. Execution model: capacity clipping and busy fractions.
    for (int c = 0; c < n_cores; ++c) {
      const double capacity = soc.chip().vf.speed_scale(act.vf_levels[c]);
      const double demand = core_demand[c];
      const double executed = std::min(demand, capacity);
      cores[c].vf_level = act.vf_levels[c];
      cores[c].busy = capacity > 0.0 ? executed / capacity : 0.0;
      m.offered_work += demand * cfg.control_dt;
      m.lost_work += (demand - executed) * cfg.control_dt;
    }

    // 4. Power (leakage from the current temperature field) and thermal
    //    step.
    soc.model().set_element_powers(
        soc.element_powers(cores, thermal.temperatures()));
    thermal.step();

    // 5. Metrics.
    bool any_hot = false;
    for (int c = 0; c < n_cores; ++c) {
      const double t_core = soc.core_temp(thermal.temperatures(), c);
      m.peak_temp = std::max(m.peak_temp, t_core);
      if (t_core > cfg.hot_threshold_k) {
        m.core_hot_time[c] += cfg.control_dt;
        any_hot = true;
      }
    }
    if (any_hot) m.any_hot_time += cfg.control_dt;

    m.chip_energy += soc.model().total_power() * cfg.control_dt;
    if (liquid && pump_level >= 0) {
      m.pump_energy +=
          cfg.pump.power(pump_level, soc.model().n_cavities()) *
          cfg.control_dt;
      flow_fraction_acc += cfg.pump.flow_per_cavity(pump_level) /
                           cfg.pump.q_max();
    }
    m.duration += cfg.control_dt;
  }

  m.migrations = scheduler.migrations();
  m.avg_flow_fraction = liquid ? flow_fraction_acc / steps : 0.0;
  return m;
}

}  // namespace tac3d::sim
