#include "sim/engine.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>

#include "common/error.hpp"
#include "common/fnv.hpp"
#include "obs/trace.hpp"
#include "thermal/transient.hpp"

namespace tac3d::sim {

namespace {

double seconds_between(std::chrono::steady_clock::time_point a,
                       std::chrono::steady_clock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}

/// Apply a pump level to all cavities (no-op for air-cooled stacks).
void apply_pump(arch::Mpsoc3D& soc, const microchannel::PumpModel& pump,
                int level) {
  if (soc.cooling() != arch::CoolingKind::kLiquidCooled || level < 0) return;
  soc.model().set_all_flows(pump.flow_per_cavity(level));
}

int count_steps(const SimulationConfig& cfg,
                const power::UtilizationTrace& trace) {
  require(cfg.control_dt > 0.0, "simulate: control_dt must be positive");
  const double duration =
      cfg.duration > 0.0 ? cfg.duration
                         : static_cast<double>(trace.seconds() - 1);
  return std::max(1,
                  static_cast<int>(std::llround(duration / cfg.control_dt)));
}

/// The loop state every session starts from: t=0 demand balanced onto
/// the cores at the maximum V/f level. Writes the sampled demand and
/// the balance result into the caller's buffers (the session keeps them
/// as members). A fresh Scheduler's first balance() is a pure function
/// of the demand vector, so a throwaway scheduler reproduces a
/// session's bit for bit.
std::vector<arch::CoreState> initial_cores(
    const arch::Mpsoc3D& soc, const power::UtilizationTrace& trace,
    Scheduler& scheduler, std::vector<double>& thread_demand,
    std::vector<double>& core_demand) {
  for (int t = 0; t < trace.threads(); ++t) {
    thread_demand[t] = trace.sample(t, 0.0);
  }
  core_demand = scheduler.balance(thread_demand);
  std::vector<arch::CoreState> cores(soc.n_cores());
  for (int c = 0; c < soc.n_cores(); ++c) {
    cores[c] = {core_demand[c], soc.chip().vf.max_level()};
  }
  return cores;
}

/// Pump at full flow (liquid stacks) + the leakage-consistent steady
/// fixed point for the given core states; captures the temperatures and
/// the element powers the solve left applied.
InitialThermalState steady_for_cores(arch::Mpsoc3D& soc,
                                     const SimulationConfig& cfg,
                                     std::span<const arch::CoreState> cores) {
  if (soc.cooling() == arch::CoolingKind::kLiquidCooled) {
    apply_pump(soc, cfg.pump, cfg.pump.levels() - 1);
  }
  InitialThermalState state;
  state.temperatures = soc.leakage_consistent_steady(
      cores, cfg.init_iterations, cfg.structure_cache.get());
  const std::span<const double> powers = soc.model().element_powers();
  state.element_powers.assign(powers.begin(), powers.end());
  return state;
}

}  // namespace

InitialThermalState compute_initial_state(arch::Mpsoc3D& soc,
                                          const power::UtilizationTrace& trace,
                                          const SimulationConfig& cfg) {
  require(trace.threads() == soc.chip().hardware_threads(),
          "compute_initial_state: trace thread count must match the chip");
  Scheduler scheduler(trace.threads(), soc.n_cores(),
                      soc.chip().threads_per_core, cfg.lb_imbalance);
  std::vector<double> thread_demand(trace.threads());
  std::vector<double> core_demand;
  const std::vector<arch::CoreState> cores =
      initial_cores(soc, trace, scheduler, thread_demand, core_demand);
  return steady_for_cores(soc, cfg, cores);
}

SimulationSession::SimulationSession(arch::Mpsoc3D& soc,
                                     const power::UtilizationTrace& trace,
                                     control::ThermalPolicy& policy,
                                     const SimulationConfig& cfg)
    : soc_(soc),
      trace_(trace),
      policy_(policy),
      cfg_(cfg),
      liquid_(soc.cooling() == arch::CoolingKind::kLiquidCooled),
      n_cores_(soc.n_cores()),
      total_steps_(count_steps(cfg, trace)),
      scheduler_(trace.threads(), n_cores_, soc.chip().threads_per_core,
                 cfg.lb_imbalance),
      thread_demand_(trace.threads()),
      core_demand_() {
  require(trace_.threads() == soc_.chip().hardware_threads(),
          "simulate: trace thread count must match the chip");

  // --- initial state -----------------------------------------------------
  cores_ = initial_cores(soc_, trace_, scheduler_, thread_demand_,
                         core_demand_);
  pump_level_ = liquid_ ? cfg_.pump.levels() - 1 : -1;
  if (liquid_) {
    apply_pump(soc_, cfg_.pump, pump_level_);
  }
  // Leakage-consistent initial steady state (fixed point) — or, when a
  // ScenarioBank prepared this scenario, the cached result of the very
  // same computation: applying the vectors reproduces the post-solve
  // model state exactly, so both paths step identical arithmetic.
  std::shared_ptr<const InitialThermalState> init = cfg_.initial_state;
  if (init != nullptr) {
    require(static_cast<std::int32_t>(init->temperatures.size()) ==
                soc_.model().node_count(),
            "simulate: initial_state temperature size mismatch");
    require(static_cast<int>(init->element_powers.size()) ==
                soc_.model().grid().element_count(),
            "simulate: initial_state element power size mismatch");
  } else {
    init = std::make_shared<InitialThermalState>(
        steady_for_cores(soc_, cfg_, cores_));
  }
  soc_.model().set_element_powers(init->element_powers);

  thermal_ = std::make_unique<thermal::TransientSolver>(
      soc_.model(), cfg_.control_dt,
      thermal::TransientSolver::Options{cfg_.solver,
                                        cfg_.structure_cache.get(),
                                        cfg_.refresh, cfg_.warm_start_slots,
                                        cfg_.operator_prototype.get(),
                                        cfg_.solver_tolerance});
  thermal_->set_state(init->temperatures);

  m_.core_hot_time.assign(n_cores_, 0.0);

  // Persistent control-tail buffers: the per-step loop reuses these, so
  // steady-state stepping performs no heap allocation.
  in_.core_temps.resize(n_cores_);
  in_.core_demands.resize(n_cores_);
  in_.dt = cfg_.control_dt;
  act_.vf_levels.reserve(n_cores_);

  // --- limit-cycle replay ------------------------------------------------
  // Arm detection only when it can be sound: the trace must be exactly
  // periodic, the period an exact whole number of control intervals, and
  // both the policy and the thermal/linear-solver stack able to
  // enumerate their history-carrying state for the boundary fingerprint.
  if (cfg_.limit_cycle_replay) {
    const int period_s = trace_.period_hint();
    if (period_s > 0) {
      const int period_steps = static_cast<int>(
          std::llround(static_cast<double>(period_s) / cfg_.control_dt));
      std::uint64_t trial = kFnvOffsetBasis;
      if (period_steps >= 1 &&
          static_cast<double>(period_steps) * cfg_.control_dt ==
              static_cast<double>(period_s) &&
          policy_.fold_replay_state(trial) &&
          thermal_->fold_replay_state(trial)) {
        replay_.arm(period_steps, period_s, n_cores_,
                    thermal_->temperatures().size());
      }
    }
  }
}

SimulationSession::~SimulationSession() = default;
SimulationSession::SimulationSession(SimulationSession&&) noexcept = default;

void SimulationSession::step() {
  const auto t0 = std::chrono::steady_clock::now();
  if (!step_prepare()) return;
  const auto t1 = std::chrono::steady_clock::now();
  thermal_->step();
  const auto t2 = std::chrono::steady_clock::now();
  step_finish();
  const auto t3 = std::chrono::steady_clock::now();
  tail_seconds_ += seconds_between(t0, t1) + seconds_between(t2, t3);
  solve_seconds_ += seconds_between(t1, t2);
}

bool SimulationSession::step_prepare() {
  if (!tail_begin()) return false;
  // The step_finish() of the previous interval already sensed the
  // current field (it does not change between steps), so the gather is
  // only needed on the very first interval.
  if (!sensed_fresh_) sense_current();
  tail_decide();
  tail_apply();
  tail_power();
  return true;
}

void SimulationSession::step_finish() {
  sense_current();
  finish_metrics();
}

bool SimulationSession::tail_begin() {
  if (done()) return false;
  const double now = steps_done_ * cfg_.control_dt;

  // 1. Workload demands and load balancing.
  for (int t = 0; t < trace_.threads(); ++t) {
    thread_demand_[t] = trace_.sample(t, now);
  }
  scheduler_.balance_into(thread_demand_, core_demand_);
  std::copy(core_demand_.begin(), core_demand_.end(),
            in_.core_demands.begin());
  return true;
}

void SimulationSession::sense_current() {
  const std::span<const double> temps = thermal_->temperatures();
  for (int c = 0; c < n_cores_; ++c) {
    in_.core_temps[c] = soc_.core_temp(temps, c);
  }
  sensed_fresh_ = true;
}

void SimulationSession::tail_decide() {
  // 2. Policy decision from the current sensors.
  policy_.decide_into(in_, act_);
  require(static_cast<int>(act_.vf_levels.size()) == n_cores_,
          "simulate: policy returned wrong vf_levels size");
}

void SimulationSession::tail_apply() {
  if (liquid_ && act_.pump_level >= 0 && act_.pump_level != pump_level_) {
    pump_level_ = act_.pump_level;
    apply_pump(soc_, cfg_.pump, pump_level_);
    ++pump_changes_;
  }

  // 3. Execution model: capacity clipping and busy fractions.
  for (int c = 0; c < n_cores_; ++c) {
    const double capacity = soc_.chip().vf.speed_scale(act_.vf_levels[c]);
    const double demand = core_demand_[c];
    const double executed = std::min(demand, capacity);
    cores_[c].vf_level = act_.vf_levels[c];
    cores_[c].busy = capacity > 0.0 ? executed / capacity : 0.0;
    m_.offered_work += demand * cfg_.control_dt;
    m_.lost_work += (demand - executed) * cfg_.control_dt;
  }
}

void SimulationSession::tail_power() {
  // 4. Power (leakage from the current temperature field); the thermal
  //    step itself runs between step_prepare and step_finish.
  tail_power_dynamic();
  soc_.add_leakage_into(thermal_->temperatures(),
                        soc_.model().element_powers_writable());
  soc_.model().commit_element_powers();
}

void SimulationSession::tail_power_dynamic() {
  soc_.element_powers_dynamic_into(cores_,
                                   soc_.model().element_powers_writable());
}

void SimulationSession::finish_metrics() {
  // 5. Metrics, from the post-solve sensor gather.
  bool any_hot = false;
  for (int c = 0; c < n_cores_; ++c) {
    const double t_core = in_.core_temps[c];
    m_.peak_temp = std::max(m_.peak_temp, t_core);
    if (t_core > cfg_.hot_threshold_k) {
      m_.core_hot_time[c] += cfg_.control_dt;
      any_hot = true;
    }
  }
  if (any_hot) m_.any_hot_time += cfg_.control_dt;

  m_.chip_energy += soc_.model().total_power() * cfg_.control_dt;
  if (liquid_ && pump_level_ >= 0) {
    m_.pump_energy += cfg_.pump.power(pump_level_, soc_.model().n_cavities()) *
                      cfg_.control_dt;
    flow_fraction_acc_ +=
        cfg_.pump.flow_per_cavity(pump_level_) / cfg_.pump.q_max();
  }
  m_.duration += cfg_.control_dt;
  ++steps_done_;
  if (replay_.armed()) replay_post_step();
}

void SimulationSession::replay_post_step() {
  replay_.note_real_step();
  if (replay_.journaling()) {
    // Record this interval's metric addends. Every value is recomputed
    // from buffers the step left untouched (core_demand_, act_, the
    // sensed temps, the committed element powers), by the same
    // expressions tail_apply/finish_metrics evaluated — so the journal
    // holds bitwise the addends the accumulators just received.
    CycleStepRecord rec = replay_.journal_step_record();
    for (int c = 0; c < n_cores_; ++c) {
      const double capacity = soc_.chip().vf.speed_scale(act_.vf_levels[c]);
      const double demand = core_demand_[c];
      const double executed = std::min(demand, capacity);
      rec.offered[c] = demand * cfg_.control_dt;
      rec.lost[c] = (demand - executed) * cfg_.control_dt;
      rec.tcore[c] = in_.core_temps[c];
    }
    *rec.chip = soc_.model().total_power() * cfg_.control_dt;
    const bool pump_on = liquid_ && pump_level_ >= 0;
    *rec.pump_on = pump_on ? 1 : 0;
    *rec.pump = pump_on ? cfg_.pump.power(pump_level_,
                                          soc_.model().n_cavities()) *
                              cfg_.control_dt
                        : 0.0;
    *rec.flow = pump_on ? cfg_.pump.flow_per_cavity(pump_level_) /
                              cfg_.pump.q_max()
                        : 0.0;
  }
  if (steps_done_ % replay_.period_steps() != 0) return;
  const int second =
      static_cast<int>(std::llround(steps_done_ * cfg_.control_dt));
  replay_.on_boundary(thermal_->temperatures(), replay_fingerprint(),
                      second, scheduler_.migrations(), pump_changes_);
}

std::uint64_t SimulationSession::replay_fingerprint() const {
  // Everything beyond the temperature field (compared bitwise in full)
  // whose values feed future closed-loop arithmetic. Monotonic counters
  // (migrations, solver stats, predictor hits) are excluded by design:
  // they are journaled/credited, never read back into the loop.
  std::uint64_t h = kFnvOffsetBasis;
  h = fnv1a(h, std::span<const int>(scheduler_.placement()));
  h = fnv1a(h, pump_level_);
  for (const arch::CoreState& c : cores_) {
    h = fnv1a(h, c.busy);
    h = fnv1a(h, c.vf_level);
  }
  h = fnv1a(h, std::span<const double>(in_.core_temps));
  h = fnv1a(h, std::span<const double>(in_.core_demands));
  h = fnv1a(h, std::span<const int>(act_.vf_levels));
  h = fnv1a(h, act_.pump_level);
  h = fnv1a(h, std::span<const double>(thread_demand_));
  h = fnv1a(h, std::span<const double>(core_demand_));
  h = fnv1a(h, soc_.model().element_powers());
  for (int cav = 0; cav < soc_.model().n_cavities(); ++cav) {
    h = fnv1a(h, soc_.model().cavity_flow(cav));
  }
  // Both folds returned true at arm time; the objects are the same, so
  // they keep returning true — the calls only mix in their state.
  policy_.fold_replay_state(h);
  thermal_->fold_replay_state(h);
  return h;
}

int SimulationSession::replay_fast_forward(double t_limit) {
  if (!replay_.can_fast_forward() || done()) return 0;
  const int period_steps = replay_.period_steps();
  const int period_s = replay_.period_seconds();
  int second =
      static_cast<int>(std::llround(steps_done_ * cfg_.control_dt));
  // One whole cycle is allowed when (a) it fits the run, (b) every step
  // of it would still pass run_until's loop condition — the binding one
  // is the last, at time (steps_done + P - 1) * dt — and (c) the trace
  // window ahead is bitwise the journaled window (the [T, T+L] span the
  // cycle's steps interpolate over; clamped compare near the trace end).
  const auto cycle_allowed = [&] {
    if (steps_done_ + period_steps > total_steps_) return false;
    const double last_time = (steps_done_ + period_steps - 1) *
                             cfg_.control_dt;
    if (!(last_time + 1e-12 < t_limit)) return false;
    return trace_.windows_equal(second, replay_.journal_base_second(),
                                period_s);
  };
  if (!cycle_allowed()) return 0;
  obs::TraceSpan span("session/replay");
  int taken = 0;
  do {
    replay_.apply_cycle(m_, cfg_.control_dt, cfg_.hot_threshold_k,
                        flow_fraction_acc_);
    scheduler_.credit_migrations(replay_.journal_migrations());
    thermal_->advance_time_steps(period_steps);
    steps_done_ += period_steps;
    second += period_s;
    taken += period_steps;
    replay_.note_fast_forward();
  } while (cycle_allowed());
  return taken;
}

int SimulationSession::run_until(double t_sim) {
  int taken = 0;
  while (!done() && time() + 1e-12 < t_sim) {
    taken += replay_fast_forward(t_sim);
    if (done() || !(time() + 1e-12 < t_sim)) break;
    step();
    ++taken;
  }
  return taken;
}

int SimulationSession::run_to_end() {
  int taken = 0;
  while (!done()) {
    taken += replay_fast_forward();
    if (done()) break;
    step();
    ++taken;
  }
  return taken;
}

SimMetrics SimulationSession::metrics() const {
  SimMetrics m = m_;
  m.migrations = scheduler_.migrations();
  m.avg_flow_fraction =
      liquid_ && steps_done_ > 0 ? flow_fraction_acc_ / steps_done_ : 0.0;
  return m;
}

const sparse::SolverStats& SimulationSession::solver_stats() const {
  return thermal_->solver_stats();
}

std::uint64_t SimulationSession::flow_updates() const {
  return thermal_->system_operator().flow_updates();
}

std::span<const double> SimulationSession::temperatures() const {
  return thermal_->temperatures();
}

double SimulationSession::core_temp(int core) const {
  return soc_.core_temp(thermal_->temperatures(), core);
}

double SimulationSession::max_core_temp() const {
  return soc_.max_core_temp(thermal_->temperatures());
}

SimMetrics simulate(arch::Mpsoc3D& soc, const power::UtilizationTrace& trace,
                    control::ThermalPolicy& policy,
                    const SimulationConfig& cfg) {
  SimulationSession session(soc, trace, policy, cfg);
  session.run_to_end();
  return session.metrics();
}

}  // namespace tac3d::sim
