#include "sim/batch.hpp"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <exception>
#include <span>

#include "common/error.hpp"
#include "control/policy.hpp"
#include "obs/trace.hpp"
#include "power/batched_power.hpp"
#include "thermal/batched_transient.hpp"

namespace tac3d::sim {

namespace {

double seconds_between(std::chrono::steady_clock::time_point a,
                       std::chrono::steady_clock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}

/// Same floorplan partitioning (element areas and element->cell weight
/// lists, bitwise)? The ScenarioBank's deep clones guarantee this for
/// sweep batches; direct BatchSession users get a runtime check.
bool same_floorplan(const thermal::ThermalGrid& a,
                    const thermal::ThermalGrid& b) {
  if (a.element_count() != b.element_count()) return false;
  for (int e = 0; e < a.element_count(); ++e) {
    if (a.element(e).rect.area() != b.element(e).rect.area()) return false;
    const auto& ca = a.element_cells(e);
    const auto& cb = b.element_cells(e);
    if (ca.size() != cb.size()) return false;
    for (std::size_t i = 0; i < ca.size(); ++i) {
      if (ca[i].node != cb[i].node || ca[i].weight != cb[i].weight) {
        return false;
      }
    }
  }
  return true;
}

}  // namespace

/// Fused control-tail plan: the shared flattened geometry, per-lane
/// handles resolved once at construction, and persistent per-step
/// scratch (cleared and refilled within capacity — the fused tail
/// performs no heap allocation in steady state).
struct BatchSession::TailPlan {
  power::ElementGeometry geom;
  std::vector<std::int32_t> core_elements;  ///< shared core sensor ids
  int n_cores = 0;

  // Per batched lane b (parallel to the batched solver's lane order).
  std::vector<SimulationSession*> session;
  std::vector<control::FuzzyFlowDvfsPolicy*> fuzzy;  ///< null = not fuzzy
  std::vector<const power::LeakageModel*> leakage;

  // Per-step scratch.
  std::vector<power::PowerLane> power_lanes;
  std::vector<power::SensorLane> sensor_lanes;
  std::vector<control::FuzzyFlowDvfsPolicy*> fz_policies;
  std::vector<const control::PolicyInputs*> fz_in;
  std::vector<control::PolicyActions*> fz_out;
  std::vector<double> fz_eval;  ///< 2 * lanes
  std::vector<double> fz_flow;  ///< lanes
};

BatchSession::BatchSession(std::vector<PreparedScenario> prepared)
    : prepared_(std::move(prepared)) {
  require(!prepared_.empty(), "BatchSession: no lanes");
  const std::size_t n = prepared_.size();
  sessions_.resize(n);
  errors_.resize(n);
  stepping_.assign(n, 0);
  failed_.assign(n, 0);

  for (std::size_t l = 0; l < n; ++l) {
    PreparedScenario& p = prepared_[l];
    try {
      sessions_[l].emplace(*p.soc, *p.trace, *p.policy, p.sim);
    } catch (const std::exception& e) {
      errors_[l] = e.what();
    } catch (...) {
      errors_[l] = "unknown error";
    }
  }

  // Batch the thermal solves when every live lane runs the same
  // iterative solver kind on the same sparsity pattern; otherwise fall
  // back to scalar lockstep (bitwise the same results, one solve at a
  // time). The sweep runner groups scenarios so this normally holds.
  std::vector<int> live;
  for (std::size_t l = 0; l < n; ++l) {
    if (sessions_[l].has_value()) live.push_back(static_cast<int>(l));
  }
  // Wider than the interleaved kernels support: scalar lockstep rather
  // than a constructor throw (the sweep runner chunks below the cap;
  // this guards direct BatchSession users).
  if (live.size() < 2 ||
      live.size() > static_cast<std::size_t>(sparse::kMaxBatchLanes)) {
    return;
  }
  const sparse::SolverKind kind =
      prepared_[static_cast<std::size_t>(live.front())].sim.solver;
  if (kind != sparse::SolverKind::kBicgstabIlu0 &&
      kind != sparse::SolverKind::kBicgstabJacobi) {
    return;
  }
  thermal::TransientSolver& first =
      sessions_[static_cast<std::size_t>(live.front())]->thermal_solver();
  std::vector<thermal::BatchedTransientSolver::LaneSpec> specs;
  specs.reserve(n);
  for (const int l : live) {
    PreparedScenario& p = prepared_[static_cast<std::size_t>(l)];
    thermal::TransientSolver& ts =
        sessions_[static_cast<std::size_t>(l)]->thermal_solver();
    if (p.sim.solver != kind ||
        !thermal::BatchedTransientSolver::compatible(first, ts)) {
      return;  // heterogeneous batch — scalar fallback
    }
    specs.push_back({&ts, p.sim.refresh});
  }
  // Lane indices in the batched solver == indices into `live`.
  lane_of_ = std::move(live);
  batched_ = std::make_unique<thermal::BatchedTransientSolver>(kind, specs);
  // Batched lanes' per-step solver state lives in the shared batched
  // solver, outside the session's replay fingerprint: restrict their
  // limit-cycle replay to quiescent cycles (sim/replay.hpp).
  for (const int l : lane_of_) {
    sessions_[static_cast<std::size_t>(l)]->set_replay_external_solver(true);
  }
  build_tail_plan();
}

BatchSession::~BatchSession() = default;
BatchSession::BatchSession(BatchSession&&) noexcept = default;

void BatchSession::build_tail_plan() {
  // A/B escape hatch: with TAC3D_SCALAR_TAIL set, batches keep the
  // batched thermal solves but run the per-lane scalar control tail —
  // for benchmarking the fused tail against its baseline on one host.
  if (std::getenv("TAC3D_SCALAR_TAIL") != nullptr) return;
  const int L = batched_->lanes();
  if (L > power::kMaxPowerLanes) return;
  SimulationSession& s0 =
      *sessions_[static_cast<std::size_t>(lane_of_.front())];
  const arch::Mpsoc3D& soc0 = s0.soc();
  const thermal::ThermalGrid& g0 = soc0.model().grid();
  const std::span<const int> cores0 = soc0.core_element_ids();
  for (int b = 1; b < L; ++b) {
    const arch::Mpsoc3D& soc =
        sessions_[static_cast<std::size_t>(lane_of_[b])]->soc();
    const std::span<const int> cores = soc.core_element_ids();
    if (soc.n_cores() != soc0.n_cores() ||
        !std::equal(cores.begin(), cores.end(), cores0.begin(),
                    cores0.end()) ||
        !same_floorplan(g0, soc.model().grid())) {
      return;  // mismatched floorplans — per-lane tail, batched solves
    }
  }

  auto plan = std::make_unique<TailPlan>();
  plan->geom.cell_offset.push_back(0);
  for (int e = 0; e < g0.element_count(); ++e) {
    for (const auto& cw : g0.element_cells(e)) {
      plan->geom.cell_node.push_back(cw.node);
      plan->geom.cell_weight.push_back(cw.weight);
    }
    plan->geom.cell_offset.push_back(
        static_cast<std::int64_t>(plan->geom.cell_node.size()));
    plan->geom.element_area.push_back(g0.element(e).rect.area());
  }
  plan->core_elements.assign(cores0.begin(), cores0.end());
  plan->n_cores = soc0.n_cores();

  plan->session.resize(static_cast<std::size_t>(L));
  plan->fuzzy.resize(static_cast<std::size_t>(L));
  plan->leakage.resize(static_cast<std::size_t>(L));
  for (int b = 0; b < L; ++b) {
    const std::size_t l = static_cast<std::size_t>(lane_of_[b]);
    SimulationSession& s = *sessions_[l];
    plan->session[static_cast<std::size_t>(b)] = &s;
    plan->fuzzy[static_cast<std::size_t>(b)] =
        dynamic_cast<control::FuzzyFlowDvfsPolicy*>(&s.policy());
    plan->leakage[static_cast<std::size_t>(b)] = &prepared_[l].soc->chip().leakage;
  }
  plan->power_lanes.reserve(static_cast<std::size_t>(L));
  plan->sensor_lanes.reserve(static_cast<std::size_t>(L));
  plan->fz_policies.reserve(static_cast<std::size_t>(L));
  plan->fz_in.reserve(static_cast<std::size_t>(L));
  plan->fz_out.reserve(static_cast<std::size_t>(L));
  plan->fz_eval.resize(static_cast<std::size_t>(2 * L));
  plan->fz_flow.resize(static_cast<std::size_t>(L));
  tail_ = std::move(plan);
}

bool BatchSession::done() const {
  for (std::size_t l = 0; l < prepared_.size(); ++l) {
    if (!errors_[l].empty()) continue;
    if (sessions_[l].has_value() && !sessions_[l]->done()) return false;
  }
  return true;
}

int BatchSession::lane_steps(int lane) const {
  const std::size_t l = static_cast<std::size_t>(lane);
  return sessions_[l].has_value() ? sessions_[l]->steps_done() : 0;
}

std::uint64_t BatchSession::compaction_events() const {
  return batched_ != nullptr ? batched_->compaction_events() : 0;
}

double BatchSession::tail_seconds() const {
  double s = tail_seconds_;
  for (const auto& os : sessions_) {
    if (os.has_value()) s += os->tail_seconds();
  }
  return s;
}

double BatchSession::solve_seconds() const {
  double s = solve_seconds_;
  for (const auto& os : sessions_) {
    if (os.has_value()) s += os->solve_seconds();
  }
  return s;
}

SimMetrics BatchSession::metrics(int lane) const {
  const std::size_t l = static_cast<std::size_t>(lane);
  require(errors_[l].empty() && sessions_[l].has_value(),
          "BatchSession::metrics: lane errored");
  return sessions_[l]->metrics();
}

void BatchSession::step() {
  if (batched_ == nullptr) {
    // Scalar-fallback lockstep: each live lane advances one interval on
    // its own solver — the unmodified scalar path (step() instruments
    // its own tail/solve split).
    for (std::size_t l = 0; l < prepared_.size(); ++l) {
      if (!errors_[l].empty() || !sessions_[l].has_value() ||
          sessions_[l]->done()) {
        continue;
      }
      try {
        // A lane locked on a verified limit cycle fast-forwards instead
        // of stepping; it rejoins real stepping when replay stands down.
        if (sessions_[l]->replay_fast_forward() > 0) continue;
        sessions_[l]->step();
      } catch (const std::exception& e) {
        errors_[l] = e.what();
      } catch (...) {
        errors_[l] = "unknown error";
      }
    }
    return;
  }
  if (tail_ != nullptr) {
    step_batched_fused();
  } else {
    step_batched_scalar_tail();
  }
}

/// Batched thermal solves, per-lane (scalar) control tail — the path
/// for batches whose lanes share a matrix pattern but not a floorplan.
void BatchSession::step_batched_scalar_tail() {
  const auto t0 = std::chrono::steady_clock::now();
  const int L = batched_->lanes();
  std::fill(stepping_.begin(), stepping_.end(), std::uint8_t{0});
  for (int b = 0; b < L; ++b) {
    const std::size_t l = static_cast<std::size_t>(lane_of_[b]);
    if (!errors_[l].empty() || sessions_[l]->done()) continue;
    try {
      // Replaying lanes drop out of the batched solve: a fast-forwarded
      // lane leaves its stepping mask 0 for this lockstep interval.
      if (sessions_[l]->replay_fast_forward() > 0) continue;
      if (sessions_[l]->step_prepare()) {
        stepping_[static_cast<std::size_t>(b)] = 1;
      }
    } catch (const std::exception& e) {
      errors_[l] = e.what();
    } catch (...) {
      errors_[l] = "unknown error";
    }
  }

  const auto t1 = std::chrono::steady_clock::now();
  {
    obs::TraceSpan solve_span("batch/solve");
    batched_->step_all(
        std::span<const std::uint8_t>(stepping_.data(),
                                      static_cast<std::size_t>(L)),
        std::span<std::uint8_t>(failed_.data(), static_cast<std::size_t>(L)));
  }
  const auto t2 = std::chrono::steady_clock::now();

  for (int b = 0; b < L; ++b) {
    if (!stepping_[static_cast<std::size_t>(b)]) continue;
    const std::size_t l = static_cast<std::size_t>(lane_of_[b]);
    if (failed_[static_cast<std::size_t>(b)]) {
      // A thrown lane keeps its exception text; plain non-convergence
      // mirrors the scalar path's NumericalError message.
      const std::string& what = batched_->lane_error(b);
      errors_[l] = what.empty() ? "BicgstabSolver: failed to converge" : what;
      continue;
    }
    try {
      sessions_[l]->step_finish();
    } catch (const std::exception& e) {
      errors_[l] = e.what();
    } catch (...) {
      errors_[l] = "unknown error";
    }
  }
  const auto t3 = std::chrono::steady_clock::now();
  tail_seconds_ += seconds_between(t0, t1) + seconds_between(t2, t3);
  solve_seconds_ += seconds_between(t1, t2);
}

/// The lane-fused control tail: stage-by-stage over the batch instead
/// of lane-by-lane, so the element/cell traversals (leakage, RHS
/// scatter, sensor gathers) and the fuzzy inference each run once per
/// step for all lanes. Stages never move arithmetic across lanes —
/// only across time — so every lane remains bitwise the scalar path.
void BatchSession::step_batched_fused() {
  TailPlan& plan = *tail_;
  const int L = batched_->lanes();
  const auto t0 = std::chrono::steady_clock::now();

  // Stage 1: demand sampling + load balancing.
  {
  obs::TraceSpan control_span("tail/control");
  std::fill(stepping_.begin(), stepping_.end(), std::uint8_t{0});
  for (int b = 0; b < L; ++b) {
    const std::size_t l = static_cast<std::size_t>(lane_of_[b]);
    if (!errors_[l].empty() || sessions_[l]->done()) continue;
    try {
      // Replaying lanes drop out of the fused tail and the batched
      // solve for this interval (mask stays 0).
      if (sessions_[l]->replay_fast_forward() > 0) continue;
      if (sessions_[l]->tail_begin()) {
        stepping_[static_cast<std::size_t>(b)] = 1;
      }
    } catch (const std::exception& e) {
      errors_[l] = e.what();
    } catch (...) {
      errors_[l] = "unknown error";
    }
  }

  // Stage 2: sensors. Only the very first interval gathers here — every
  // later interval reuses the post-solve gather of stage 6.
  for (int b = 0; b < L; ++b) {
    if (!stepping_[static_cast<std::size_t>(b)]) continue;
    SimulationSession& s = *plan.session[static_cast<std::size_t>(b)];
    if (!s.sensed_fresh()) s.sense_current();
  }

  // Stage 3: policy decisions. Same-class fuzzy lanes share one batched
  // Mamdani inference; everything else decides scalar.
  plan.fz_policies.clear();
  plan.fz_in.clear();
  plan.fz_out.clear();
  for (int b = 0; b < L; ++b) {
    const std::size_t bb = static_cast<std::size_t>(b);
    if (!stepping_[bb] || plan.fuzzy[bb] == nullptr) continue;
    plan.fz_policies.push_back(plan.fuzzy[bb]);
    plan.fz_in.push_back(&plan.session[bb]->policy_inputs());
    plan.fz_out.push_back(&plan.session[bb]->policy_actions());
  }
  bool fz_batched = plan.fz_policies.size() >= 2;
  if (fz_batched) {
    const std::size_t k = plan.fz_policies.size();
    try {
      control::FuzzyFlowDvfsPolicy::decide_batch(
          std::span<control::FuzzyFlowDvfsPolicy* const>(
              plan.fz_policies.data(), k),
          std::span<const control::PolicyInputs* const>(plan.fz_in.data(), k),
          std::span<control::PolicyActions* const>(plan.fz_out.data(), k),
          std::span<double>(plan.fz_eval.data(), 2 * k),
          std::span<double>(plan.fz_flow.data(), k));
    } catch (...) {
      // decide_batch validates every lane before touching controller
      // state, so the per-lane decisions below start clean and the
      // failing lane alone gets its error recorded.
      fz_batched = false;
    }
  }
  for (int b = 0; b < L; ++b) {
    const std::size_t bb = static_cast<std::size_t>(b);
    if (!stepping_[bb]) continue;
    const std::size_t l = static_cast<std::size_t>(lane_of_[b]);
    SimulationSession& s = *plan.session[bb];
    try {
      if (fz_batched && plan.fuzzy[bb] != nullptr) {
        require(static_cast<int>(s.policy_actions().vf_levels.size()) ==
                    plan.n_cores,
                "simulate: policy returned wrong vf_levels size");
      } else {
        s.tail_decide();
      }
      // Stage 4: apply — pump level, execution model, work accounting.
      s.tail_apply();
    } catch (const std::exception& e) {
      errors_[l] = e.what();
      stepping_[bb] = 0;
    } catch (...) {
      errors_[l] = "unknown error";
      stepping_[bb] = 0;
    }
  }
  }

  // Stage 5: power — per-lane dynamic watts, then one lane-fused
  // leakage traversal and one lane-fused RHS scatter.
  {
  obs::TraceSpan power_span("tail/power");
  plan.power_lanes.clear();
  for (int b = 0; b < L; ++b) {
    const std::size_t bb = static_cast<std::size_t>(b);
    if (!stepping_[bb]) continue;
    const std::size_t l = static_cast<std::size_t>(lane_of_[b]);
    SimulationSession& s = *plan.session[bb];
    try {
      s.tail_power_dynamic();
      thermal::RcModel& model = prepared_[l].soc->model();
      plan.power_lanes.push_back(power::PowerLane{
          plan.leakage[bb], s.temperatures(),
          model.element_powers_writable(), model.power_rhs_writable()});
    } catch (const std::exception& e) {
      errors_[l] = e.what();
      stepping_[bb] = 0;
    } catch (...) {
      errors_[l] = "unknown error";
      stepping_[bb] = 0;
    }
  }
  if (!plan.power_lanes.empty()) {
    power::add_leakage_batched(plan.geom, plan.power_lanes);
    power::scatter_power_rhs_batched(plan.geom, plan.power_lanes);
  }
  }

  const auto t1 = std::chrono::steady_clock::now();
  {
    obs::TraceSpan solve_span("batch/solve");
    batched_->step_all(
        std::span<const std::uint8_t>(stepping_.data(),
                                      static_cast<std::size_t>(L)),
        std::span<std::uint8_t>(failed_.data(), static_cast<std::size_t>(L)));
  }
  const auto t2 = std::chrono::steady_clock::now();

  // Stage 6: solve failures, then one fused post-solve sensor gather
  // feeding both this interval's metrics and the next decision.
  {
  obs::TraceSpan sensor_span("tail/sensors");
  plan.sensor_lanes.clear();
  for (int b = 0; b < L; ++b) {
    const std::size_t bb = static_cast<std::size_t>(b);
    if (!stepping_[bb]) continue;
    const std::size_t l = static_cast<std::size_t>(lane_of_[b]);
    if (failed_[bb]) {
      const std::string& what = batched_->lane_error(b);
      errors_[l] = what.empty() ? "BicgstabSolver: failed to converge" : what;
      stepping_[bb] = 0;
      continue;
    }
    control::PolicyInputs& in = plan.session[bb]->policy_inputs();
    plan.sensor_lanes.push_back(power::SensorLane{
        plan.session[bb]->temperatures(),
        std::span<double>(in.core_temps.data(), in.core_temps.size())});
  }
  if (!plan.sensor_lanes.empty()) {
    power::gather_element_max_batched(plan.geom, plan.core_elements,
                                      plan.sensor_lanes);
  }
  }

  // Stage 7: metrics accumulation.
  {
  obs::TraceSpan metrics_span("tail/metrics");
  for (int b = 0; b < L; ++b) {
    const std::size_t bb = static_cast<std::size_t>(b);
    if (!stepping_[bb]) continue;
    const std::size_t l = static_cast<std::size_t>(lane_of_[b]);
    SimulationSession& s = *plan.session[bb];
    try {
      s.mark_sensed();
      s.finish_metrics();
    } catch (const std::exception& e) {
      errors_[l] = e.what();
    } catch (...) {
      errors_[l] = "unknown error";
    }
  }
  }
  const auto t3 = std::chrono::steady_clock::now();
  tail_seconds_ += seconds_between(t0, t1) + seconds_between(t2, t3);
  solve_seconds_ += seconds_between(t1, t2);
}

int BatchSession::run_to_end() {
  int intervals = 0;
  while (!done()) {
    step();
    ++intervals;
  }
  return intervals;
}

}  // namespace tac3d::sim
