#include "sim/batch.hpp"

#include <algorithm>
#include <exception>
#include <span>

#include "common/error.hpp"
#include "thermal/batched_transient.hpp"

namespace tac3d::sim {

BatchSession::BatchSession(std::vector<PreparedScenario> prepared)
    : prepared_(std::move(prepared)) {
  require(!prepared_.empty(), "BatchSession: no lanes");
  const std::size_t n = prepared_.size();
  sessions_.resize(n);
  errors_.resize(n);
  stepping_.assign(n, 0);
  failed_.assign(n, 0);

  for (std::size_t l = 0; l < n; ++l) {
    PreparedScenario& p = prepared_[l];
    try {
      sessions_[l].emplace(*p.soc, *p.trace, *p.policy, p.sim);
    } catch (const std::exception& e) {
      errors_[l] = e.what();
    } catch (...) {
      errors_[l] = "unknown error";
    }
  }

  // Batch the thermal solves when every live lane runs the same
  // iterative solver kind on the same sparsity pattern; otherwise fall
  // back to scalar lockstep (bitwise the same results, one solve at a
  // time). The sweep runner groups scenarios so this normally holds.
  std::vector<int> live;
  for (std::size_t l = 0; l < n; ++l) {
    if (sessions_[l].has_value()) live.push_back(static_cast<int>(l));
  }
  // Wider than the interleaved kernels support: scalar lockstep rather
  // than a constructor throw (the sweep runner chunks below the cap;
  // this guards direct BatchSession users).
  if (live.size() < 2 ||
      live.size() > static_cast<std::size_t>(sparse::kMaxBatchLanes)) {
    return;
  }
  const sparse::SolverKind kind =
      prepared_[static_cast<std::size_t>(live.front())].sim.solver;
  if (kind != sparse::SolverKind::kBicgstabIlu0 &&
      kind != sparse::SolverKind::kBicgstabJacobi) {
    return;
  }
  thermal::TransientSolver& first =
      sessions_[static_cast<std::size_t>(live.front())]->thermal_solver();
  std::vector<thermal::BatchedTransientSolver::LaneSpec> specs;
  specs.reserve(n);
  for (const int l : live) {
    PreparedScenario& p = prepared_[static_cast<std::size_t>(l)];
    thermal::TransientSolver& ts =
        sessions_[static_cast<std::size_t>(l)]->thermal_solver();
    if (p.sim.solver != kind ||
        !thermal::BatchedTransientSolver::compatible(first, ts)) {
      return;  // heterogeneous batch — scalar fallback
    }
    specs.push_back({&ts, p.sim.refresh});
  }
  // Lane indices in the batched solver == indices into `live`.
  lane_of_ = std::move(live);
  batched_ = std::make_unique<thermal::BatchedTransientSolver>(kind, specs);
}

BatchSession::~BatchSession() = default;
BatchSession::BatchSession(BatchSession&&) noexcept = default;

bool BatchSession::done() const {
  for (std::size_t l = 0; l < prepared_.size(); ++l) {
    if (!errors_[l].empty()) continue;
    if (sessions_[l].has_value() && !sessions_[l]->done()) return false;
  }
  return true;
}

int BatchSession::lane_steps(int lane) const {
  const std::size_t l = static_cast<std::size_t>(lane);
  return sessions_[l].has_value() ? sessions_[l]->steps_done() : 0;
}

std::uint64_t BatchSession::compaction_events() const {
  return batched_ != nullptr ? batched_->compaction_events() : 0;
}

SimMetrics BatchSession::metrics(int lane) const {
  const std::size_t l = static_cast<std::size_t>(lane);
  require(errors_[l].empty() && sessions_[l].has_value(),
          "BatchSession::metrics: lane errored");
  return sessions_[l]->metrics();
}

void BatchSession::step() {
  const std::size_t n = prepared_.size();

  if (batched_ == nullptr) {
    // Scalar-fallback lockstep: each live lane advances one interval on
    // its own solver — the unmodified scalar path.
    for (std::size_t l = 0; l < n; ++l) {
      if (!errors_[l].empty() || !sessions_[l].has_value() ||
          sessions_[l]->done()) {
        continue;
      }
      try {
        sessions_[l]->step();
      } catch (const std::exception& e) {
        errors_[l] = e.what();
      } catch (...) {
        errors_[l] = "unknown error";
      }
    }
    return;
  }

  // Batched: run every live lane's control phases, then one batched
  // thermal advance, then the metrics phases.
  const int L = batched_->lanes();
  std::fill(stepping_.begin(), stepping_.end(), std::uint8_t{0});
  for (int b = 0; b < L; ++b) {
    const std::size_t l = static_cast<std::size_t>(lane_of_[b]);
    if (!errors_[l].empty() || sessions_[l]->done()) continue;
    try {
      if (sessions_[l]->step_prepare()) {
        stepping_[static_cast<std::size_t>(b)] = 1;
      }
    } catch (const std::exception& e) {
      errors_[l] = e.what();
    } catch (...) {
      errors_[l] = "unknown error";
    }
  }

  batched_->step_all(
      std::span<const std::uint8_t>(stepping_.data(),
                                    static_cast<std::size_t>(L)),
      std::span<std::uint8_t>(failed_.data(), static_cast<std::size_t>(L)));

  for (int b = 0; b < L; ++b) {
    if (!stepping_[static_cast<std::size_t>(b)]) continue;
    const std::size_t l = static_cast<std::size_t>(lane_of_[b]);
    if (failed_[static_cast<std::size_t>(b)]) {
      // A thrown lane keeps its exception text; plain non-convergence
      // mirrors the scalar path's NumericalError message.
      const std::string& what = batched_->lane_error(b);
      errors_[l] = what.empty() ? "BicgstabSolver: failed to converge" : what;
      continue;
    }
    try {
      sessions_[l]->step_finish();
    } catch (const std::exception& e) {
      errors_[l] = e.what();
    } catch (...) {
      errors_[l] = "unknown error";
    }
  }
}

int BatchSession::run_to_end() {
  int intervals = 0;
  while (!done()) {
    step();
    ++intervals;
  }
  return intervals;
}

}  // namespace tac3d::sim
