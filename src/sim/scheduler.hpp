#pragma once
/// \file scheduler.hpp
/// \brief Thread-to-core scheduler with dynamic load balancing (the
/// paper's LB: "moves threads from a core's queue to another if the
/// difference in queue lengths is over a threshold").

#include <cstdint>
#include <span>
#include <vector>

namespace tac3d::sim {

/// Run-queue scheduler for hardware threads over cores.
class Scheduler {
 public:
  /// \param n_threads hardware threads offered by the workload
  /// \param n_cores physical cores
  /// \param threads_per_core queue capacity normalization (T1: 4)
  /// \param imbalance_threshold queue-length difference (in normalized
  ///        demand units) that triggers a migration
  Scheduler(int n_threads, int n_cores, int threads_per_core,
            double imbalance_threshold = 0.25);

  /// Rebalance for the given per-thread demands and return per-core
  /// normalized demand (sum of thread demands / threads_per_core,
  /// clamped to 1).
  std::vector<double> balance(std::span<const double> thread_demand);

  /// Allocation-free balance into a caller-owned vector of size
  /// cores() — the per-step control tail uses this with persistent
  /// session storage.
  void balance_into(std::span<const double> thread_demand,
                    std::span<double> core_demand);

  /// Threads currently assigned to each core.
  const std::vector<int>& placement() const { return placement_; }

  /// Total migrations performed so far.
  std::int64_t migrations() const { return migrations_; }

  /// Add \p n migrations to the counter without moving any thread.
  /// Limit-cycle replay (sim/replay.hpp) fast-forwards whole control
  /// cycles without invoking balance_into and credits each journaled
  /// cycle's migration count here, so migrations() matches the
  /// step-everything run exactly.
  void credit_migrations(std::int64_t n) { migrations_ += n; }

  int cores() const { return n_cores_; }
  int threads() const { return n_threads_; }

 private:
  int n_threads_;
  int n_cores_;
  int threads_per_core_;
  double threshold_;
  std::vector<int> placement_;  ///< thread -> core
  std::vector<double> queue_;   ///< balance_into() scratch, size n_cores_
  std::int64_t migrations_ = 0;
};

}  // namespace tac3d::sim
