#pragma once
/// \file batch.hpp
/// \brief BatchSession: K bank-prepared scenarios stepped in lockstep by
/// one core, with the thermal solves batched per matrix traversal.
///
/// The closed control loop of a scenario is cheap per step (demand
/// sampling, load balancing, a policy decision, a power update); nearly
/// all the time goes into the per-step linear solve. When K scenarios
/// share a sparsity pattern (same stack/grid — the ScenarioBank's model
/// tier guarantees it) and an iterative solver kind, BatchSession runs
/// the K control loops scalar but advances all K thermal systems through
/// one thermal::BatchedTransientSolver, so a single traversal of the
/// shared CSR pattern steps every lane (see sparse/batched.hpp for why
/// that is both faster and bitwise-neutral per lane).
///
/// Lanes are isolated: a lane whose construction, policy loop or linear
/// solve throws is recorded (lane_error) and deactivated; the remaining
/// lanes keep stepping to completion. Lanes that cannot batch (direct
/// solver, mismatched pattern or kind, or a single lane) fall back to
/// per-lane scalar stepping — still lockstep, still the exact scalar
/// arithmetic.

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "sim/prepared.hpp"

namespace tac3d::thermal {
class BatchedTransientSolver;
}

namespace tac3d::sim {

/// K prepared scenarios advancing in lockstep.
class BatchSession {
 public:
  /// Take ownership of \p prepared (one lane each) and construct the
  /// sessions. Construction failures are captured per lane, not thrown.
  explicit BatchSession(std::vector<PreparedScenario> prepared);
  ~BatchSession();
  BatchSession(BatchSession&&) noexcept;

  int lanes() const { return static_cast<int>(prepared_.size()); }

  /// Did the thermal solves batch (false: scalar-fallback lockstep)?
  bool thermal_batched() const { return batched_ != nullptr; }

  /// Advance every live, unfinished lane one control interval.
  void step();

  /// Step until every lane is done or errored. \return lockstep
  /// intervals executed.
  int run_to_end();

  /// Every lane done or errored?
  bool done() const;

  /// Lane completed so far without error?
  bool lane_ok(int lane) const {
    return errors_[static_cast<std::size_t>(lane)].empty();
  }

  /// Error text of a failed lane (empty when ok).
  const std::string& lane_error(int lane) const {
    return errors_[static_cast<std::size_t>(lane)];
  }

  /// The lane's session (valid whenever construction succeeded — check
  /// has_session(); errored lanes keep their partial state).
  bool has_session(int lane) const {
    return sessions_[static_cast<std::size_t>(lane)].has_value();
  }
  const SimulationSession& session(int lane) const {
    return *sessions_[static_cast<std::size_t>(lane)];
  }

  /// Steps lane \p lane completed (0 when construction failed).
  int lane_steps(int lane) const;

  /// Mid-solve lane-compaction events of the batched thermal solver
  /// (0 on the scalar-fallback path); sweep-footer telemetry.
  std::uint64_t compaction_events() const;

  /// Metrics of a completed, ok lane.
  SimMetrics metrics(int lane) const;

  /// The scenario the lane ran.
  const Scenario& scenario(int lane) const {
    return prepared_[static_cast<std::size_t>(lane)].spec;
  }

 private:
  std::vector<PreparedScenario> prepared_;
  std::vector<std::optional<SimulationSession>> sessions_;
  std::vector<std::string> errors_;
  std::unique_ptr<thermal::BatchedTransientSolver> batched_;
  std::vector<int> lane_of_;  ///< batched lane index -> prepared_ index
  std::vector<std::uint8_t> stepping_, failed_;  ///< step() scratch masks
};

}  // namespace tac3d::sim
