#pragma once
/// \file batch.hpp
/// \brief BatchSession: K bank-prepared scenarios stepped in lockstep by
/// one core, with the thermal solves batched per matrix traversal.
///
/// When K scenarios share a sparsity pattern (same stack/grid — the
/// ScenarioBank's model tier guarantees it) and an iterative solver
/// kind, BatchSession advances all K thermal systems through one
/// thermal::BatchedTransientSolver, so a single traversal of the shared
/// CSR pattern steps every lane (see sparse/batched.hpp for why that is
/// both faster and bitwise-neutral per lane).
///
/// The per-step control tail (sensor gathers, policy decisions, the
/// power/leakage update, metrics) is fused the same way: when every
/// batched lane also shares the floorplan geometry, the leakage +
/// RHS-scatter traversals and the core-temperature gathers run
/// lane-fused over the shared element->cell weights
/// (power/batched_power.hpp), and same-class fuzzy policies share one
/// FuzzyController::evaluate_lanes inference per step. Each lane's
/// floating-point chain is the scalar chain, so per-lane results stay
/// bitwise identical.
///
/// Lanes are isolated: a lane whose construction, policy loop or linear
/// solve throws is recorded (lane_error) and deactivated; the remaining
/// lanes keep stepping to completion. Lanes that cannot batch (direct
/// solver, mismatched pattern or kind, or a single lane) fall back to
/// per-lane scalar stepping — still lockstep, still the exact scalar
/// arithmetic.

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "sim/prepared.hpp"

namespace tac3d::thermal {
class BatchedTransientSolver;
}

namespace tac3d::sim {

/// K prepared scenarios advancing in lockstep.
class BatchSession {
 public:
  /// Take ownership of \p prepared (one lane each) and construct the
  /// sessions. Construction failures are captured per lane, not thrown.
  explicit BatchSession(std::vector<PreparedScenario> prepared);
  ~BatchSession();
  BatchSession(BatchSession&&) noexcept;

  int lanes() const { return static_cast<int>(prepared_.size()); }

  /// Did the thermal solves batch (false: scalar-fallback lockstep)?
  bool thermal_batched() const { return batched_ != nullptr; }

  /// Did the control tail fuse across lanes (requires thermal_batched()
  /// plus a shared floorplan geometry)? Setting the TAC3D_SCALAR_TAIL
  /// environment variable forces this off (per-lane scalar tail) for
  /// same-host A/B benchmarking.
  bool tail_fused() const { return tail_ != nullptr; }

  /// Wall-clock seconds spent in the control tail and in the thermal
  /// solves across all lanes (batch-level stages plus any per-lane
  /// scalar stepping).
  double tail_seconds() const;
  double solve_seconds() const;

  /// Advance every live, unfinished lane one control interval.
  void step();

  /// Step until every lane is done or errored. \return lockstep
  /// intervals executed.
  int run_to_end();

  /// Every lane done or errored?
  bool done() const;

  /// Lane completed so far without error?
  bool lane_ok(int lane) const {
    return errors_[static_cast<std::size_t>(lane)].empty();
  }

  /// Error text of a failed lane (empty when ok).
  const std::string& lane_error(int lane) const {
    return errors_[static_cast<std::size_t>(lane)];
  }

  /// The lane's session (valid whenever construction succeeded — check
  /// has_session(); errored lanes keep their partial state).
  bool has_session(int lane) const {
    return sessions_[static_cast<std::size_t>(lane)].has_value();
  }
  const SimulationSession& session(int lane) const {
    return *sessions_[static_cast<std::size_t>(lane)];
  }

  /// Steps lane \p lane completed (0 when construction failed).
  int lane_steps(int lane) const;

  /// Mid-solve lane-compaction events of the batched thermal solver
  /// (0 on the scalar-fallback path); sweep-footer telemetry.
  std::uint64_t compaction_events() const;

  /// Metrics of a completed, ok lane.
  SimMetrics metrics(int lane) const;

  /// The scenario the lane ran.
  const Scenario& scenario(int lane) const {
    return prepared_[static_cast<std::size_t>(lane)].spec;
  }

 private:
  struct TailPlan;  // fused control-tail geometry + persistent scratch

  void build_tail_plan();
  void step_batched_fused();
  void step_batched_scalar_tail();

  std::vector<PreparedScenario> prepared_;
  std::vector<std::optional<SimulationSession>> sessions_;
  std::vector<std::string> errors_;
  std::unique_ptr<thermal::BatchedTransientSolver> batched_;
  std::unique_ptr<TailPlan> tail_;
  std::vector<int> lane_of_;  ///< batched lane index -> prepared_ index
  std::vector<std::uint8_t> stepping_, failed_;  ///< step() scratch masks
  double tail_seconds_ = 0.0;   ///< batch-level control-tail time
  double solve_seconds_ = 0.0;  ///< batch-level thermal-solve time
};

}  // namespace tac3d::sim
