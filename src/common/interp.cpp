#include "common/interp.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace tac3d {

LinearTable::LinearTable(std::vector<double> x, std::vector<double> y,
                         OutOfRange policy)
    : x_(std::move(x)), y_(std::move(y)), policy_(policy) {
  require(x_.size() == y_.size(), "LinearTable: x/y size mismatch");
  require(x_.size() >= 2, "LinearTable: need at least two points");
  for (std::size_t i = 1; i < x_.size(); ++i) {
    require(x_[i] > x_[i - 1], "LinearTable: abscissae must be increasing");
  }
}

std::size_t LinearTable::segment(double x) const {
  // Index i such that the segment [x_[i], x_[i+1]] is used.
  const auto it = std::upper_bound(x_.begin(), x_.end(), x);
  if (it == x_.begin()) return 0;
  const std::size_t i = static_cast<std::size_t>(it - x_.begin()) - 1;
  return std::min(i, x_.size() - 2);
}

double LinearTable::operator()(double x) const {
  require(!x_.empty(), "LinearTable: empty table");
  if (x < x_.front() || x > x_.back()) {
    switch (policy_) {
      case OutOfRange::kClamp:
        x = std::clamp(x, x_.front(), x_.back());
        break;
      case OutOfRange::kThrow:
        throw ModelRangeError("LinearTable: query outside table domain");
      case OutOfRange::kExtrapolate:
        break;  // fall through to segment extrapolation
    }
  }
  const std::size_t i = segment(x);
  const double t = (x - x_[i]) / (x_[i + 1] - x_[i]);
  return y_[i] + t * (y_[i + 1] - y_[i]);
}

double LinearTable::derivative(double x) const {
  require(!x_.empty(), "LinearTable: empty table");
  const std::size_t i = segment(std::clamp(x, x_.front(), x_.back()));
  return (y_[i + 1] - y_[i]) / (x_[i + 1] - x_[i]);
}

double LinearTable::inverse(double y) const {
  require(!y_.empty(), "LinearTable: empty table");
  const bool increasing = y_.back() > y_.front();
  for (std::size_t i = 1; i < y_.size(); ++i) {
    const bool step_up = y_[i] > y_[i - 1];
    require(step_up == increasing && y_[i] != y_[i - 1],
            "LinearTable::inverse: y must be strictly monotone");
  }
  const double lo = increasing ? y_.front() : y_.back();
  const double hi = increasing ? y_.back() : y_.front();
  const double yc = std::clamp(y, lo, hi);
  // Find the segment containing yc.
  for (std::size_t i = 0; i + 1 < y_.size(); ++i) {
    const double a = y_[i];
    const double b = y_[i + 1];
    if ((increasing && yc >= a && yc <= b) ||
        (!increasing && yc <= a && yc >= b)) {
      const double t = (yc - a) / (b - a);
      return x_[i] + t * (x_[i + 1] - x_[i]);
    }
  }
  return increasing ? x_.back() : x_.front();
}

}  // namespace tac3d
