#pragma once
/// \file geometry.hpp
/// \brief 2D rectangles and overlap arithmetic used by floorplans and
/// grid mapping.

#include <algorithm>
#include <string>
#include <vector>

namespace tac3d {

/// Axis-aligned rectangle in meters; origin at lower-left corner.
struct Rect {
  double x = 0.0;  ///< left edge [m]
  double y = 0.0;  ///< bottom edge [m]
  double w = 0.0;  ///< width [m]
  double h = 0.0;  ///< height [m]

  double right() const { return x + w; }
  double top() const { return y + h; }
  double area() const { return w * h; }

  /// True if the rectangle has strictly positive extent on both axes.
  bool valid() const { return w > 0.0 && h > 0.0; }

  /// Area of the intersection with \p other (0 if disjoint).
  double overlap_area(const Rect& other) const {
    const double ox =
        std::max(0.0, std::min(right(), other.right()) - std::max(x, other.x));
    const double oy =
        std::max(0.0, std::min(top(), other.top()) - std::max(y, other.y));
    return ox * oy;
  }

  /// True if the two rectangles overlap on a set of positive area.
  bool intersects(const Rect& other) const {
    return overlap_area(other) > 0.0;
  }

  /// True if \p other is fully contained (boundary contact allowed).
  bool contains(const Rect& other, double tol = 1e-12) const {
    return other.x >= x - tol && other.y >= y - tol &&
           other.right() <= right() + tol && other.top() <= top() + tol;
  }
};

/// Smallest rectangle containing both inputs.
Rect bounding_box(const Rect& a, const Rect& b);

/// Smallest rectangle containing all inputs; empty input yields a
/// degenerate zero rectangle.
Rect bounding_box(const std::vector<Rect>& rects);

}  // namespace tac3d
