#include "common/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

namespace tac3d {

std::string fmt(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::string fmt_pct(double fraction, int precision) {
  return fmt(100.0 * fraction, precision) + "%";
}

void TextTable::set_header(std::vector<std::string> cells) {
  header_ = std::move(cells);
}

void TextTable::add_row(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
}

void TextTable::add_row(const std::string& label,
                        const std::vector<double>& values, int precision) {
  std::vector<std::string> cells;
  cells.reserve(values.size() + 1);
  cells.push_back(label);
  for (double v : values) cells.push_back(fmt(v, precision));
  rows_.push_back(std::move(cells));
}

std::string TextTable::str() const {
  std::vector<std::size_t> widths;
  auto grow = [&widths](const std::vector<std::string>& row) {
    if (row.size() > widths.size()) widths.resize(row.size(), 0);
    for (std::size_t i = 0; i < row.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  };
  grow(header_);
  for (const auto& r : rows_) grow(r);

  std::ostringstream os;
  auto emit = [&os, &widths](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (i) os << "  ";
      os << std::left << std::setw(static_cast<int>(widths[i])) << row[i];
    }
    os << '\n';
  };
  if (!header_.empty()) {
    emit(header_);
    std::size_t total = 0;
    for (std::size_t i = 0; i < widths.size(); ++i) {
      total += widths[i] + (i ? 2 : 0);
    }
    os << std::string(total, '-') << '\n';
  }
  for (const auto& r : rows_) emit(r);
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const TextTable& t) {
  return os << t.str();
}

}  // namespace tac3d
