#pragma once
/// \file rng.hpp
/// \brief Deterministic pseudo-random number generator for workload
/// synthesis and property tests.
///
/// tac3d avoids std::mt19937 in library code so that traces generated on
/// different standard libraries are bit-identical. The generator is
/// xoshiro256** seeded via splitmix64.

#include <cstdint>

namespace tac3d {

/// Deterministic, seedable RNG (xoshiro256**).
class Rng {
 public:
  /// Seed deterministically; the same seed always yields the same stream.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull) {
    std::uint64_t x = seed;
    for (auto& s : state_) {
      // splitmix64 step
      x += 0x9e3779b97f4a7c15ull;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
      s = z ^ (z >> 31);
    }
  }

  /// Next raw 64-bit value.
  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [0, n).
  std::uint64_t uniform_index(std::uint64_t n) { return next_u64() % n; }

  /// Standard normal via Marsaglia polar method.
  double normal() {
    if (has_spare_) {
      has_spare_ = false;
      return spare_;
    }
    double u, v, s;
    do {
      u = uniform(-1.0, 1.0);
      v = uniform(-1.0, 1.0);
      s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    const double m = norm_scale(s);
    spare_ = v * m;
    has_spare_ = true;
    return u * m;
  }

  /// Normal with given mean and standard deviation.
  double normal(double mean, double stddev) { return mean + stddev * normal(); }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  static double norm_scale(double s);

  std::uint64_t state_[4] = {};
  bool has_spare_ = false;
  double spare_ = 0.0;
};

}  // namespace tac3d
