#include "common/rng.hpp"

#include <cmath>

namespace tac3d {

double Rng::norm_scale(double s) { return std::sqrt(-2.0 * std::log(s) / s); }

}  // namespace tac3d
