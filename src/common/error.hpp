#pragma once
/// \file error.hpp
/// \brief Exception types and precondition helpers for tac3d.

#include <stdexcept>
#include <string>

namespace tac3d {

/// Base class for all tac3d errors.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Thrown when an input violates a documented precondition.
class InvalidArgument : public Error {
 public:
  explicit InvalidArgument(const std::string& what) : Error(what) {}
};

/// Thrown when a numerical routine fails to converge or produces
/// non-finite values.
class NumericalError : public Error {
 public:
  explicit NumericalError(const std::string& what) : Error(what) {}
};

/// Thrown when a model is driven outside its validity envelope
/// (e.g. refrigerant properties queried far off the fitted range,
/// or channel dry-out in a two-phase march).
class ModelRangeError : public Error {
 public:
  explicit ModelRangeError(const std::string& what) : Error(what) {}
};

/// Check a precondition and throw InvalidArgument with \p msg if violated.
/// The const char* overload defers any string construction to the throw
/// path, so require() on a literal is allocation-free when the condition
/// holds — the solver hot path checks preconditions every step.
inline void require(bool cond, const char* msg) {
  if (!cond) throw InvalidArgument(msg);
}

inline void require(bool cond, const std::string& msg) {
  if (!cond) throw InvalidArgument(msg);
}

}  // namespace tac3d
