#pragma once
/// \file table.hpp
/// \brief Aligned ASCII table printer shared by the benchmark harness.
///
/// Every bench binary reproduces a paper table or figure as rows of text;
/// TextTable keeps their formatting consistent.

#include <iosfwd>
#include <string>
#include <vector>

namespace tac3d {

/// Collects rows of string cells and prints them with aligned columns.
class TextTable {
 public:
  /// Set the header row.
  void set_header(std::vector<std::string> cells);

  /// Append a data row (ragged rows are allowed).
  void add_row(std::vector<std::string> cells);

  /// Convenience: append a row from doubles formatted with \p precision.
  void add_row(const std::string& label, const std::vector<double>& values,
               int precision = 2);

  /// Number of data rows.
  std::size_t rows() const { return rows_.size(); }

  /// Render with column separators and a header rule.
  std::string str() const;

  /// Print to a stream.
  friend std::ostream& operator<<(std::ostream& os, const TextTable& t);

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Format a double with fixed precision (helper for bench output).
std::string fmt(double v, int precision = 2);

/// Format a double as a percentage with fixed precision.
std::string fmt_pct(double fraction, int precision = 1);

}  // namespace tac3d
