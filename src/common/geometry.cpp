#include "common/geometry.hpp"

namespace tac3d {

Rect bounding_box(const Rect& a, const Rect& b) {
  const double x0 = std::min(a.x, b.x);
  const double y0 = std::min(a.y, b.y);
  const double x1 = std::max(a.right(), b.right());
  const double y1 = std::max(a.top(), b.top());
  return Rect{x0, y0, x1 - x0, y1 - y0};
}

Rect bounding_box(const std::vector<Rect>& rects) {
  if (rects.empty()) return Rect{};
  Rect box = rects.front();
  for (const Rect& r : rects) box = bounding_box(box, r);
  return box;
}

}  // namespace tac3d
