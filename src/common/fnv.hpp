#pragma once
/// \file fnv.hpp
/// \brief FNV-1a folding over raw value bits.
///
/// Used by the limit-cycle replay machinery (sim/replay.hpp) to
/// fingerprint auxiliary closed-loop state: every fold consumes the
/// exact bit pattern of its input (doubles via their IEEE-754 bits), so
/// two states fold equal only when the folded values are bitwise
/// identical — the same equality notion the replay parity guarantee is
/// stated in.

#include <cstdint>
#include <cstring>
#include <span>

namespace tac3d {

inline constexpr std::uint64_t kFnvOffsetBasis = 1469598103934665603ull;
inline constexpr std::uint64_t kFnvPrime = 1099511628211ull;

inline std::uint64_t fnv1a_bytes(std::uint64_t h, const void* data,
                                 std::size_t bytes) {
  const unsigned char* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < bytes; ++i) {
    h ^= p[i];
    h *= kFnvPrime;
  }
  return h;
}

inline std::uint64_t fnv1a(std::uint64_t h, double v) {
  std::uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  return fnv1a_bytes(h, &bits, sizeof(bits));
}

inline std::uint64_t fnv1a(std::uint64_t h, std::uint64_t v) {
  return fnv1a_bytes(h, &v, sizeof(v));
}

inline std::uint64_t fnv1a(std::uint64_t h, std::int64_t v) {
  return fnv1a_bytes(h, &v, sizeof(v));
}

inline std::uint64_t fnv1a(std::uint64_t h, int v) {
  return fnv1a_bytes(h, &v, sizeof(v));
}

inline std::uint64_t fnv1a(std::uint64_t h, bool v) {
  const unsigned char b = v ? 1 : 0;
  return fnv1a_bytes(h, &b, sizeof(b));
}

inline std::uint64_t fnv1a(std::uint64_t h, std::span<const double> v) {
  return fnv1a_bytes(h, v.data(), v.size_bytes());
}

inline std::uint64_t fnv1a(std::uint64_t h, std::span<const int> v) {
  return fnv1a_bytes(h, v.data(), v.size_bytes());
}

}  // namespace tac3d
