#pragma once
/// \file units.hpp
/// \brief Unit conversions and physical constants used across tac3d.
///
/// All tac3d APIs use SI units internally: meters, kilograms, seconds,
/// watts, kelvin, pascal, cubic meters per second. The helpers below
/// convert the engineering units that appear in the paper (mm, um,
/// Celsius, ml/min, W/cm^2, l/min) at the API boundary, so call sites
/// can mirror the paper's numbers verbatim.

namespace tac3d {

/// Absolute zero offset between Celsius and Kelvin.
inline constexpr double kCelsiusOffset = 273.15;

/// Convert a temperature in Celsius to Kelvin.
constexpr double celsius_to_kelvin(double c) { return c + kCelsiusOffset; }

/// Convert a temperature in Kelvin to Celsius.
constexpr double kelvin_to_celsius(double k) { return k - kCelsiusOffset; }

/// Convert millimeters to meters.
constexpr double mm(double v) { return v * 1e-3; }

/// Convert micrometers to meters.
constexpr double um(double v) { return v * 1e-6; }

/// Convert square millimeters to square meters.
constexpr double mm2(double v) { return v * 1e-6; }

/// Convert square centimeters to square meters.
constexpr double cm2(double v) { return v * 1e-4; }

/// Convert a volumetric flow rate in milliliters per minute to m^3/s.
constexpr double ml_per_min(double v) { return v * 1e-6 / 60.0; }

/// Convert a volumetric flow rate in liters per minute to m^3/s.
constexpr double l_per_min(double v) { return v * 1e-3 / 60.0; }

/// Convert a volumetric flow rate in m^3/s to milliliters per minute.
constexpr double to_ml_per_min(double v) { return v * 60.0 * 1e6; }

/// Convert a heat flux in W/cm^2 to W/m^2.
constexpr double w_per_cm2(double v) { return v * 1e4; }

/// Convert a heat flux in W/m^2 to W/cm^2.
constexpr double to_w_per_cm2(double v) { return v * 1e-4; }

/// Convert bar to pascal.
constexpr double bar(double v) { return v * 1e5; }

/// Convert pascal to bar.
constexpr double to_bar(double v) { return v * 1e-5; }

}  // namespace tac3d
