#pragma once
/// \file interp.hpp
/// \brief Piecewise-linear lookup tables used by property models
/// (fluid/refrigerant data, correlation fits).

#include <cstddef>
#include <vector>

namespace tac3d {

/// Monotone piecewise-linear table y(x).
///
/// Abscissae must be strictly increasing. Queries outside the domain are
/// clamped by default, or throw ModelRangeError when constructed with
/// OutOfRange::kThrow.
class LinearTable {
 public:
  /// Extrapolation behaviour outside [x.front(), x.back()].
  enum class OutOfRange { kClamp, kThrow, kExtrapolate };

  LinearTable() = default;

  /// Construct from matching x/y arrays (x strictly increasing).
  LinearTable(std::vector<double> x, std::vector<double> y,
              OutOfRange policy = OutOfRange::kClamp);

  /// Interpolated value at \p x.
  double operator()(double x) const;

  /// Derivative dy/dx of the active segment at \p x.
  double derivative(double x) const;

  /// Inverse lookup x(y); requires y strictly monotone.
  double inverse(double y) const;

  bool empty() const { return x_.empty(); }
  std::size_t size() const { return x_.size(); }
  double x_min() const { return x_.front(); }
  double x_max() const { return x_.back(); }

 private:
  std::size_t segment(double x) const;

  std::vector<double> x_;
  std::vector<double> y_;
  OutOfRange policy_ = OutOfRange::kClamp;
};

}  // namespace tac3d
