#pragma once
/// \file boiling.hpp
/// \brief Flow-boiling heat transfer and two-phase pressure-drop
/// correlations for micro-channels.
///
/// The local boiling coefficient combines Cooper's pool-boiling
/// correlation (dominant in micro-channels: h ~ q''^0.67, which is what
/// produces the paper's "8x higher HTC under a 15x hot spot") with a
/// convective liquid-film term enhanced by the two-phase multiplier.
/// Pressure drop uses the homogeneous two-phase model, whose falling
/// pressure profile makes the local saturation temperature *decrease*
/// toward the outlet — the distinguishing behaviour highlighted in
/// Section III.

#include "microchannel/duct.hpp"
#include "twophase/refrigerant.hpp"

namespace tac3d::twophase {

/// Cooper pool-boiling coefficient [W/(m^2 K)].
/// h = 55 p_r^0.12 (-log10 p_r)^-0.55 M^-0.5 q''^0.67 with M in g/mol.
double cooper_pool_boiling_htc(const Refrigerant& ref, double pressure,
                               double heat_flux);

/// Inputs of the local flow-boiling state.
///
/// Heat flux and the resulting HTC use the *base-area* (footprint)
/// convention of the multi-microchannel experiments the paper builds on
/// (Agostini [1][2], Costa-Patry [10]): q'' is the heater flux over the
/// die footprint and h = q'' / (T_wall - T_sat). Fin/wetted-area effects
/// are absorbed into the correlation coefficients.
struct BoilingState {
  double pressure = 0.0;    ///< local pressure [Pa]
  double quality = 0.0;     ///< vapor quality x in [0, 1)
  double mass_flux = 0.0;   ///< G [kg/(m^2 s)] over the channel section
  double heat_flux = 0.0;   ///< base-area heat flux [W/m^2 footprint]
};

/// Local flow-boiling HTC [W/(m^2 K)], base-area convention.
///
/// Nucleate term: Cooper pressure/molar-mass coefficient with the
/// steeper flux exponent (0.76) observed in 85-um multi-microchannel
/// R245fa data, combined with a mildly quality-enhanced convective
/// film term (asymptotic cube blend). This is what produces the paper's
/// "~8x higher HTC / ~2x higher wall superheat under a 15x hot spot".
double flow_boiling_htc(const Refrigerant& ref,
                        const microchannel::RectDuct& duct,
                        const BoilingState& state);

/// Critical (dry-out) vapor quality; annular-film dry-out sets the
/// usable quality budget of a micro-evaporator. Decreases mildly with
/// mass flux (Kim & Mudawar-style trend, clamped to [0.4, 0.95]).
double dryout_quality(double mass_flux);

/// Homogeneous two-phase frictional pressure gradient [Pa/m].
double two_phase_pressure_gradient(const Refrigerant& ref,
                                   const microchannel::RectDuct& duct,
                                   const BoilingState& state);

}  // namespace tac3d::twophase
