#include "twophase/tier_model.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "thermal/material.hpp"

namespace tac3d::twophase {

TwoPhaseTierResult simulate_twophase_tier(
    const TwoPhaseTierDesign& d, const thermal::Floorplan& floorplan,
    std::span<const double> element_powers, int rows) {
  require(d.refrigerant != nullptr, "simulate_twophase_tier: no refrigerant");
  require(d.n_channels > 0 && rows >= 2,
          "simulate_twophase_tier: invalid discretization");
  require(element_powers.size() == floorplan.size(),
          "simulate_twophase_tier: one power per floorplan element");
  require(d.channel_width < d.pitch(),
          "simulate_twophase_tier: channels overlap");
  floorplan.validate(d.tier_width, d.tier_length);

  // Flux map [row][channel] from area-weighted element overlap.
  const double dy = d.tier_length / rows;
  const double pitch = d.pitch();
  std::vector<double> flux(static_cast<std::size_t>(rows) * d.n_channels,
                           0.0);
  for (std::size_t e = 0; e < floorplan.size(); ++e) {
    const Rect& r = floorplan[e].rect;
    const double density = element_powers[e] / r.area();  // W/m^2
    for (int row = 0; row < rows; ++row) {
      for (int ch = 0; ch < d.n_channels; ++ch) {
        const Rect cell{ch * pitch, row * dy, pitch, dy};
        const double ov = r.overlap_area(cell);
        if (ov > 0.0) {
          flux[row * d.n_channels + ch] += density * ov / cell.area();
        }
      }
    }
  }

  TwoPhaseTierResult res;
  res.rows = rows;
  res.channels = d.n_channels;
  res.wall_temp.assign(flux.size(), 0.0);
  res.base_temp.assign(flux.size(), 0.0);

  const double k_si = thermal::materials::silicon().conductivity;
  const double m_dot_ch = d.total_mass_flow / d.n_channels;
  double t_sat_out_acc = 0.0;

  for (int ch = 0; ch < d.n_channels; ++ch) {
    ChannelMarchInput in;
    in.refrigerant = d.refrigerant;
    in.duct = microchannel::RectDuct{d.channel_width, d.channel_height};
    in.length = d.tier_length;
    in.steps = rows;
    in.mass_flow = m_dot_ch;
    in.inlet_pressure = d.refrigerant->saturation_pressure(d.inlet_sat_temp);
    in.heated_width = pitch;
    in.heat_flux.resize(rows);
    for (int row = 0; row < rows; ++row) {
      in.heat_flux[row] = flux[row * d.n_channels + ch];
    }
    const ChannelMarchResult march = march_channel(in);

    for (int row = 0; row < rows; ++row) {
      const double tw = march.t_wall[row];
      const double tb =
          tw + in.heat_flux[row] * d.die_thickness / k_si;
      res.wall_temp[row * d.n_channels + ch] = tw;
      res.base_temp[row * d.n_channels + ch] = tb;
      res.peak_base_temp = std::max(res.peak_base_temp, tb);
    }
    res.pressure_drop = std::max(res.pressure_drop, march.pressure_drop);
    res.max_outlet_quality =
        std::max(res.max_outlet_quality, march.quality.back());
    res.dryout = res.dryout || march.dryout;
    t_sat_out_acc += march.outlet_t_sat;
  }
  res.outlet_t_sat = t_sat_out_acc / d.n_channels;
  res.pumping_power = res.pressure_drop * d.total_mass_flow /
                      d.refrigerant->liquid_density(d.inlet_sat_temp);
  return res;
}

}  // namespace tac3d::twophase
