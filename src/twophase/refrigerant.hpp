#pragma once
/// \file refrigerant.hpp
/// \brief Saturation and transport property fits for the refrigerants
/// used in the paper's two-phase experiments (R134a, R236fa, R245fa).
///
/// Properties are piecewise-linear fits against published saturation
/// tables over 0-60 C (the operating window of inter-tier flow boiling;
/// the paper's micro-evaporator runs near 30 C). The fits are accurate
/// to a few percent in that window, which is what the Fig. 8 shapes
/// require; queries outside the window throw ModelRangeError.

#include <string>

#include "microchannel/coolant.hpp"

namespace tac3d::twophase {

/// A two-phase working fluid with temperature-indexed property fits.
class Refrigerant {
 public:
  /// R-134a: the paper's reference for latent heat (~150 kJ/kg hot).
  static const Refrigerant& r134a();
  /// R-236fa: the fluid of Agostini et al. [1] (once-through/split flow).
  static const Refrigerant& r236fa();
  /// R-245fa: the fluid of the 85-um multi-microchannel hot-spot test
  /// of Costa-Patry et al. [10] reproduced in Fig. 8.
  static const Refrigerant& r245fa();

  const std::string& name() const { return name_; }
  double molar_mass() const { return molar_mass_; }            ///< [kg/mol]
  double critical_pressure() const { return p_critical_; }     ///< [Pa]

  /// Saturation pressure at temperature \p t [K] -> [Pa].
  double saturation_pressure(double t) const;

  /// Saturation temperature at pressure \p p [Pa] -> [K].
  double saturation_temperature(double p) const;

  /// Latent heat of vaporization at \p t [K] -> [J/kg].
  double latent_heat(double t) const;

  double liquid_density(double t) const;        ///< [kg/m^3]
  double vapor_density(double t) const;         ///< [kg/m^3]
  double liquid_viscosity(double t) const;      ///< [Pa s]
  double vapor_viscosity(double t) const;       ///< [Pa s]
  double liquid_specific_heat(double t) const;  ///< [J/(kg K)]
  double liquid_conductivity(double t) const;   ///< [W/(m K)]

  /// Reduced pressure p / p_critical (Cooper correlation input).
  double reduced_pressure(double p) const { return p / p_critical_; }

  /// Liquid-phase properties packaged as a Coolant (for single-phase
  /// sections and liquid-film convection).
  microchannel::Coolant liquid_coolant(double t) const;

 private:
  struct Tables;
  Refrigerant(std::string name, double molar_mass, double p_critical,
              const Tables& tables);

  std::string name_;
  double molar_mass_;
  double p_critical_;
  const Tables* tables_;
};

}  // namespace tac3d::twophase
