#pragma once
/// \file evaporator.hpp
/// \brief Silicon micro-evaporator test-vehicle model (Section IV-B,
/// Fig. 8): a heater array on one face, parallel boiling micro-channels
/// engraved in the other, RTD sensor rows along the flow.

#include <vector>

#include "twophase/channel_march.hpp"
#include "twophase/refrigerant.hpp"

namespace tac3d::twophase {

/// Geometry and operating point of the micro-evaporator.
struct EvaporatorDesign {
  double die_width = 0.0;       ///< across the flow [m]
  double die_length = 0.0;      ///< along the flow [m]
  double die_thickness = 0.0;   ///< [m]
  int n_channels = 0;           ///< parallel channels
  double channel_width = 0.0;   ///< [m]
  double channel_height = 0.0;  ///< [m]
  const Refrigerant* refrigerant = nullptr;
  double inlet_sat_temp = 0.0;  ///< [K] (paper: 30 C)
  double total_mass_flow = 0.0; ///< [kg/s]

  /// Channel pitch implied by the width and channel count.
  double pitch() const { return die_width / n_channels; }

  /// The paper's Fig. 8 vehicle: 135 channels of 85 um width, R245fa
  /// at a 30 C inlet saturation temperature.
  static EvaporatorDesign fig8_vehicle();
};

/// Heat flux map applied by the heater array; rows run along the flow.
struct HeaterMap {
  int rows = 0;
  int cols = 0;
  std::vector<double> flux;  ///< row-major [W/m^2]

  double at(int r, int c) const { return flux[r * cols + c]; }

  /// Average flux of one row [W/m^2].
  double row_avg(int r) const;

  /// The paper's 5x7 map: rows 1,2,4,5 at 2 W/cm^2, row 3 at
  /// 30.2 W/cm^2 (15x hot spot).
  static HeaterMap fig8_hotspot();

  /// Uniform map.
  static HeaterMap uniform(int rows, int cols, double flux_w_m2);
};

/// Per-sensor-row outputs (the Fig. 8 series).
struct EvaporatorRow {
  double heat_flux = 0.0;   ///< applied [W/m^2]
  double htc = 0.0;         ///< boiling HTC on the wetted surface
  double fluid_temp = 0.0;  ///< local saturation temperature [K]
  double wall_temp = 0.0;   ///< channel wall temperature [K]
  double base_temp = 0.0;   ///< heater-face temperature [K]
};

/// Full result of an evaporator simulation.
struct EvaporatorResult {
  std::vector<EvaporatorRow> rows;
  double pressure_drop = 0.0;  ///< [Pa]
  double outlet_t_sat = 0.0;   ///< [K]
  double outlet_quality = 0.0;
  bool dryout = false;
  /// Mean pumping power = dP * volumetric flow [W].
  double pumping_power = 0.0;
};

/// Simulate the evaporator under \p heaters with \p steps_per_row axial
/// resolution. All channels see the same row-average flux profile (the
/// Fig. 8 heater rows span the full width).
EvaporatorResult simulate_evaporator(const EvaporatorDesign& design,
                                     const HeaterMap& heaters,
                                     int steps_per_row = 20);

}  // namespace tac3d::twophase
