#include "twophase/channel_march.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace tac3d::twophase {

ChannelMarchResult march_channel(const ChannelMarchInput& in) {
  require(in.refrigerant != nullptr, "march_channel: missing refrigerant");
  require(in.steps >= 2, "march_channel: need at least 2 steps");
  require(static_cast<int>(in.heat_flux.size()) == in.steps,
          "march_channel: heat_flux size must equal steps");
  require(in.mass_flow > 0.0, "march_channel: mass flow must be positive");
  require(in.inlet_pressure > 0.0 && in.length > 0.0 &&
              in.heated_width > 0.0,
          "march_channel: invalid geometry");
  require(in.inlet_quality >= 0.0 && in.inlet_quality < 1.0,
          "march_channel: inlet quality must be in [0, 1)");

  const Refrigerant& ref = *in.refrigerant;
  const double dz = in.length / in.steps;
  const double g_flux = in.mass_flow / in.duct.area();
  const double x_crit = dryout_quality(g_flux);

  ChannelMarchResult res;
  res.z.resize(in.steps);
  res.pressure.resize(in.steps);
  res.t_sat.resize(in.steps);
  res.quality.resize(in.steps);
  res.htc.resize(in.steps);
  res.wall_superheat.resize(in.steps);
  res.t_wall.resize(in.steps);

  double p = in.inlet_pressure;
  double x = in.inlet_quality;

  for (int i = 0; i < in.steps; ++i) {
    res.z[i] = (i + 0.5) * dz;
    const double t_sat = ref.saturation_temperature(p);
    const double q_seg = in.heat_flux[i] * in.heated_width * dz;  // [W]

    // Base-area convention (see BoilingState): the local HTC and wall
    // superheat are defined against the footprint heat flux.
    const BoilingState state{p, std::min(x, 0.999), g_flux,
                             in.heat_flux[i]};
    const double h = flow_boiling_htc(ref, in.duct, state);
    res.pressure[i] = p;
    res.t_sat[i] = t_sat;
    res.quality[i] = x;
    res.htc[i] = h;
    res.wall_superheat[i] = h > 0.0 ? in.heat_flux[i] / h : 0.0;
    res.t_wall[i] = t_sat + res.wall_superheat[i];

    // Advance state to the end of the step.
    const double hfg = ref.latent_heat(t_sat);
    x += q_seg / (in.mass_flow * hfg);
    const BoilingState s{p, std::min(x, 0.999), g_flux, in.heat_flux[i]};
    p -= two_phase_pressure_gradient(ref, in.duct, s) * dz;
    require(p > 0.0, "march_channel: pressure fell below zero");

    if (!res.dryout && x > x_crit) {
      res.dryout = true;
      res.dryout_position = res.z[i];
      if (in.throw_on_dryout) {
        throw ModelRangeError(
            "march_channel: dry-out at z = " + std::to_string(res.z[i]) +
            " m (quality " + std::to_string(x) + ")");
      }
    }
  }
  res.pressure_drop = in.inlet_pressure - p;
  res.outlet_t_sat = ref.saturation_temperature(p);
  return res;
}

}  // namespace tac3d::twophase
