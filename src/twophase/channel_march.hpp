#pragma once
/// \file channel_march.hpp
/// \brief Axial march of a flow-boiling micro-channel: pressure, local
/// saturation temperature, vapor quality, HTC and wall temperature.

#include <vector>

#include "microchannel/duct.hpp"
#include "twophase/boiling.hpp"
#include "twophase/refrigerant.hpp"

namespace tac3d::twophase {

/// Inputs of a single-channel march.
struct ChannelMarchInput {
  const Refrigerant* refrigerant = nullptr;
  microchannel::RectDuct duct;    ///< channel cross-section
  double length = 0.0;            ///< [m]
  int steps = 100;                ///< axial discretization
  double mass_flow = 0.0;         ///< per-channel [kg/s]
  double inlet_pressure = 0.0;    ///< [Pa] (saturated inlet)
  double inlet_quality = 0.0;     ///< x at the inlet, in [0, 1)
  /// Applied heat flux on the channel's footprint per step [W/m^2];
  /// size must equal \p steps. The footprint width is \p heated_width.
  std::vector<double> heat_flux;
  double heated_width = 0.0;      ///< channel pitch (footprint share) [m]
  bool throw_on_dryout = false;
};

/// Axial profiles produced by the march (size = steps).
struct ChannelMarchResult {
  std::vector<double> z;         ///< step mid positions [m]
  std::vector<double> pressure;  ///< [Pa]
  std::vector<double> t_sat;     ///< local saturation temperature [K]
  std::vector<double> quality;   ///< vapor quality
  std::vector<double> htc;       ///< local boiling HTC [W/(m^2 K)]
  std::vector<double> wall_superheat;  ///< T_wall - T_sat [K]
  std::vector<double> t_wall;    ///< channel wall temperature [K]
  double pressure_drop = 0.0;    ///< inlet - outlet [Pa]
  double outlet_t_sat = 0.0;     ///< [K]
  bool dryout = false;           ///< quality exceeded the dry-out limit
  double dryout_position = -1.0; ///< [m] (-1 if no dry-out)
};

/// March the channel from inlet to outlet.
/// Throws ModelRangeError on dry-out when input.throw_on_dryout is set.
ChannelMarchResult march_channel(const ChannelMarchInput& input);

}  // namespace tac3d::twophase
