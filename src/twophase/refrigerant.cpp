#include "twophase/refrigerant.hpp"

#include "common/error.hpp"
#include "common/interp.hpp"
#include "common/units.hpp"

namespace tac3d::twophase {

namespace {

/// Temperature grid of the property tables: 0..60 C.
std::vector<double> t_grid() {
  return {273.15, 283.15, 293.15, 303.15, 313.15, 323.15, 333.15};
}

}  // namespace

struct Refrigerant::Tables {
  LinearTable psat;   ///< [Pa] vs T [K]
  LinearTable hfg;    ///< [J/kg]
  LinearTable rho_l;  ///< [kg/m^3]
  LinearTable rho_v;  ///< [kg/m^3]
  LinearTable mu_l;   ///< [Pa s]
  LinearTable mu_v;   ///< [Pa s]
  LinearTable cp_l;   ///< [J/(kg K)]
  LinearTable k_l;    ///< [W/(m K)]
};

Refrigerant::Refrigerant(std::string name, double molar_mass,
                         double p_critical, const Tables& tables)
    : name_(std::move(name)),
      molar_mass_(molar_mass),
      p_critical_(p_critical),
      tables_(&tables) {}

const Refrigerant& Refrigerant::r134a() {
  static const Tables tables{
      LinearTable(t_grid(), {2.928e5, 4.146e5, 5.717e5, 7.702e5, 10.17e5,
                             13.18e5, 16.82e5},
                  LinearTable::OutOfRange::kThrow),
      LinearTable(t_grid(), {198.6e3, 190.7e3, 182.3e3, 173.1e3, 163.0e3,
                             151.8e3, 139.1e3}),
      LinearTable(t_grid(), {1295.0, 1261.0, 1225.0, 1187.0, 1147.0, 1102.0,
                             1053.0}),
      LinearTable(t_grid(), {14.4, 20.2, 27.8, 37.5, 50.1, 66.3, 87.4}),
      LinearTable(t_grid(), {267e-6, 235e-6, 207e-6, 183e-6, 161e-6, 142e-6,
                             124e-6}),
      LinearTable(t_grid(), {10.7e-6, 11.1e-6, 11.5e-6, 11.9e-6, 12.4e-6,
                             12.9e-6, 13.6e-6}),
      LinearTable(t_grid(), {1335.0, 1367.0, 1405.0, 1447.0, 1500.0, 1569.0,
                             1660.0}),
      LinearTable(t_grid(), {0.0920, 0.0885, 0.0850, 0.0815, 0.0780, 0.0744,
                             0.0708})};
  static const Refrigerant r("R134a", 0.10203, 40.59e5, tables);
  return r;
}

const Refrigerant& Refrigerant::r236fa() {
  static const Tables tables{
      LinearTable(t_grid(), {1.10e5, 1.60e5, 2.29e5, 3.20e5, 4.36e5, 5.80e5,
                             7.58e5},
                  LinearTable::OutOfRange::kThrow),
      LinearTable(t_grid(), {160.1e3, 154.6e3, 148.8e3, 142.4e3, 135.4e3,
                             127.7e3, 119.0e3}),
      LinearTable(t_grid(), {1440.0, 1413.0, 1385.0, 1355.0, 1324.0, 1291.0,
                             1255.0}),
      LinearTable(t_grid(), {7.9, 11.2, 15.5, 21.2, 28.4, 37.6, 49.2}),
      LinearTable(t_grid(), {394e-6, 352e-6, 316e-6, 284e-6, 256e-6, 231e-6,
                             208e-6}),
      LinearTable(t_grid(), {9.9e-6, 10.2e-6, 10.6e-6, 11.0e-6, 11.4e-6,
                             11.8e-6, 12.3e-6}),
      LinearTable(t_grid(), {1184.0, 1207.0, 1232.0, 1260.0, 1291.0, 1327.0,
                             1370.0}),
      LinearTable(t_grid(), {0.0790, 0.0763, 0.0736, 0.0709, 0.0682, 0.0654,
                             0.0626})};
  static const Refrigerant r("R236fa", 0.15204, 32.00e5, tables);
  return r;
}

const Refrigerant& Refrigerant::r245fa() {
  static const Tables tables{
      LinearTable(t_grid(), {0.530e5, 0.824e5, 1.236e5, 1.784e5, 2.510e5,
                             3.441e5, 4.610e5},
                  LinearTable::OutOfRange::kThrow),
      LinearTable(t_grid(), {204.4e3, 199.5e3, 194.3e3, 188.7e3, 182.5e3,
                             175.8e3, 168.4e3}),
      LinearTable(t_grid(), {1404.0, 1385.0, 1366.0, 1339.0, 1313.0, 1285.0,
                             1256.0}),
      LinearTable(t_grid(), {3.2, 4.9, 7.1, 10.1, 14.1, 19.2, 25.8}),
      LinearTable(t_grid(), {480e-6, 438e-6, 400e-6, 365e-6, 334e-6, 306e-6,
                             280e-6}),
      LinearTable(t_grid(), {9.5e-6, 9.8e-6, 10.2e-6, 10.6e-6, 11.0e-6,
                             11.4e-6, 11.8e-6}),
      LinearTable(t_grid(), {1261.0, 1280.0, 1302.0, 1326.0, 1353.0, 1384.0,
                             1419.0}),
      LinearTable(t_grid(), {0.0940, 0.0913, 0.0886, 0.0859, 0.0832, 0.0805,
                             0.0778})};
  static const Refrigerant r("R245fa", 0.13405, 36.51e5, tables);
  return r;
}

double Refrigerant::saturation_pressure(double t) const {
  return tables_->psat(t);
}

double Refrigerant::saturation_temperature(double p) const {
  return tables_->psat.inverse(p);
}

double Refrigerant::latent_heat(double t) const { return tables_->hfg(t); }
double Refrigerant::liquid_density(double t) const {
  return tables_->rho_l(t);
}
double Refrigerant::vapor_density(double t) const { return tables_->rho_v(t); }
double Refrigerant::liquid_viscosity(double t) const {
  return tables_->mu_l(t);
}
double Refrigerant::vapor_viscosity(double t) const { return tables_->mu_v(t); }
double Refrigerant::liquid_specific_heat(double t) const {
  return tables_->cp_l(t);
}
double Refrigerant::liquid_conductivity(double t) const {
  return tables_->k_l(t);
}

microchannel::Coolant Refrigerant::liquid_coolant(double t) const {
  return microchannel::Coolant{name_ + "(liquid)", liquid_density(t),
                               liquid_viscosity(t), liquid_specific_heat(t),
                               liquid_conductivity(t)};
}

}  // namespace tac3d::twophase
