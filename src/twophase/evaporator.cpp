#include "twophase/evaporator.hpp"

#include <cmath>

#include "common/error.hpp"
#include "common/units.hpp"
#include "thermal/material.hpp"

namespace tac3d::twophase {

EvaporatorDesign EvaporatorDesign::fig8_vehicle() {
  EvaporatorDesign d;
  // Costa-Patry et al. [10]: 85 um-wide multi-microchannels, 135 in
  // parallel on a ~12.7 x 12.7 mm silicon die, 560 um deep, R245fa.
  d.die_width = mm(12.7);
  d.die_length = mm(12.7);
  d.die_thickness = um(380.0);
  d.n_channels = 135;
  d.channel_width = um(85.0);
  d.channel_height = um(560.0);
  d.refrigerant = &Refrigerant::r245fa();
  d.inlet_sat_temp = celsius_to_kelvin(30.0);
  // Mass flux ~350 kg/(m^2 s) over the total channel section (chosen,
  // with the channel geometry, to reproduce the 30 -> 29.5 C saturation
  // temperature drop of Fig. 8).
  const double a_total = d.n_channels * d.channel_width * d.channel_height;
  d.total_mass_flow = 350.0 * a_total;
  return d;
}

double HeaterMap::row_avg(int r) const {
  double acc = 0.0;
  for (int c = 0; c < cols; ++c) acc += at(r, c);
  return acc / cols;
}

HeaterMap HeaterMap::fig8_hotspot() {
  HeaterMap m;
  m.rows = 5;
  m.cols = 7;
  m.flux.assign(35, w_per_cm2(2.0));
  for (int c = 0; c < 7; ++c) m.flux[2 * 7 + c] = w_per_cm2(30.2);
  return m;
}

HeaterMap HeaterMap::uniform(int rows, int cols, double flux_w_m2) {
  require(rows > 0 && cols > 0, "HeaterMap::uniform: bad shape");
  HeaterMap m;
  m.rows = rows;
  m.cols = cols;
  m.flux.assign(static_cast<std::size_t>(rows) * cols, flux_w_m2);
  return m;
}

EvaporatorResult simulate_evaporator(const EvaporatorDesign& d,
                                     const HeaterMap& heaters,
                                     int steps_per_row) {
  require(d.refrigerant != nullptr, "simulate_evaporator: no refrigerant");
  require(d.n_channels > 0 && d.channel_width > 0.0,
          "simulate_evaporator: invalid channel geometry");
  require(d.channel_width < d.pitch(),
          "simulate_evaporator: channels overlap");
  require(heaters.rows > 0 && steps_per_row >= 1,
          "simulate_evaporator: invalid heater map");

  ChannelMarchInput in;
  in.refrigerant = d.refrigerant;
  in.duct = microchannel::RectDuct{d.channel_width, d.channel_height};
  in.length = d.die_length;
  in.steps = heaters.rows * steps_per_row;
  in.mass_flow = d.total_mass_flow / d.n_channels;
  in.inlet_pressure =
      d.refrigerant->saturation_pressure(d.inlet_sat_temp);
  in.heated_width = d.pitch();
  in.heat_flux.resize(in.steps);
  for (int r = 0; r < heaters.rows; ++r) {
    const double q = heaters.row_avg(r);
    for (int s = 0; s < steps_per_row; ++s) {
      in.heat_flux[r * steps_per_row + s] = q;
    }
  }

  const ChannelMarchResult march = march_channel(in);

  EvaporatorResult res;
  res.pressure_drop = march.pressure_drop;
  res.outlet_t_sat = march.outlet_t_sat;
  res.outlet_quality = march.quality.back();
  res.dryout = march.dryout;
  const double rho_l = d.refrigerant->liquid_density(d.inlet_sat_temp);
  res.pumping_power = march.pressure_drop * d.total_mass_flow / rho_l;

  const double k_si = thermal::materials::silicon().conductivity;
  const double t_cond = d.die_thickness;  // heater face to channel floor
  res.rows.reserve(heaters.rows);
  for (int r = 0; r < heaters.rows; ++r) {
    EvaporatorRow row;
    row.heat_flux = heaters.row_avg(r);
    double htc = 0.0, tsat = 0.0, twall = 0.0;
    for (int s = 0; s < steps_per_row; ++s) {
      const int i = r * steps_per_row + s;
      htc += march.htc[i];
      tsat += march.t_sat[i];
      twall += march.t_wall[i];
    }
    row.htc = htc / steps_per_row;
    row.fluid_temp = tsat / steps_per_row;
    row.wall_temp = twall / steps_per_row;
    // Heater-face temperature: 1-D conduction through the die under the
    // applied footprint flux.
    row.base_temp = row.wall_temp + row.heat_flux * t_cond / k_si;
    res.rows.push_back(row);
  }
  return res;
}

}  // namespace tac3d::twophase
