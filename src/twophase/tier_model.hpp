#pragma once
/// \file tier_model.hpp
/// \brief Two-phase inter-tier cooling of a full tier: couples a
/// floorplan power map to a micro-channel evaporator cavity.
///
/// This is the paper's forward-looking step (Section IV-B: "existing
/// methods and experimental experience must be scaled down to the 50 um
/// height of micro-channels permissible in between the TSVs"): instead
/// of a uniform heater array, the evaporator sees the non-uniform power
/// map of a processor tier, one march per channel.

#include <span>
#include <vector>

#include "thermal/floorplan.hpp"
#include "twophase/channel_march.hpp"
#include "twophase/refrigerant.hpp"

namespace tac3d::twophase {

/// Geometry/operating point of a two-phase-cooled tier.
struct TwoPhaseTierDesign {
  double tier_width = 0.0;    ///< across the flow [m]
  double tier_length = 0.0;   ///< along the flow [m]
  double die_thickness = 0.0; ///< silicon above the channels [m]
  int n_channels = 0;
  double channel_width = 0.0;
  double channel_height = 0.0;
  const Refrigerant* refrigerant = nullptr;
  double inlet_sat_temp = 0.0;   ///< [K]
  double total_mass_flow = 0.0;  ///< [kg/s]

  double pitch() const { return tier_width / n_channels; }
};

/// Result of a tier simulation: per (row, channel) temperatures.
struct TwoPhaseTierResult {
  int rows = 0;
  int channels = 0;
  std::vector<double> wall_temp;  ///< row-major [row*channels + ch] [K]
  std::vector<double> base_temp;  ///< junction-side temperature [K]
  double peak_base_temp = 0.0;    ///< [K]
  double outlet_t_sat = 0.0;      ///< flow-averaged [K]
  double max_outlet_quality = 0.0;
  double pressure_drop = 0.0;     ///< worst channel [Pa]
  double pumping_power = 0.0;     ///< dP * volumetric flow [W]
  bool dryout = false;            ///< any channel dried out

  double wall(int r, int c) const { return wall_temp[r * channels + c]; }
  double base(int r, int c) const { return base_temp[r * channels + c]; }
};

/// Simulate a tier: distribute \p element_powers (one per floorplan
/// element, watts) onto a rows x channels flux map by area overlap, then
/// march every channel.
TwoPhaseTierResult simulate_twophase_tier(
    const TwoPhaseTierDesign& design, const thermal::Floorplan& floorplan,
    std::span<const double> element_powers, int rows);

}  // namespace tac3d::twophase
