#include "twophase/boiling.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace tac3d::twophase {

double cooper_pool_boiling_htc(const Refrigerant& ref, double pressure,
                               double heat_flux) {
  require(pressure > 0.0, "cooper_pool_boiling_htc: invalid pressure");
  require(heat_flux >= 0.0, "cooper_pool_boiling_htc: negative heat flux");
  if (heat_flux == 0.0) return 0.0;
  const double pr = ref.reduced_pressure(pressure);
  require(pr > 0.0 && pr < 1.0,
          "cooper_pool_boiling_htc: reduced pressure outside (0, 1)");
  const double m_gmol = ref.molar_mass() * 1e3;
  return 55.0 * std::pow(pr, 0.12) *
         std::pow(-std::log10(pr), -0.55) * std::pow(m_gmol, -0.5) *
         std::pow(heat_flux, 0.67);
}

double flow_boiling_htc(const Refrigerant& ref,
                        const microchannel::RectDuct& duct,
                        const BoilingState& s) {
  require(s.quality >= 0.0 && s.quality < 1.0,
          "flow_boiling_htc: quality must be in [0, 1)");
  require(s.mass_flux > 0.0, "flow_boiling_htc: mass flux must be positive");
  const double t_sat = ref.saturation_temperature(s.pressure);

  // Nucleate term: Cooper's reduced-pressure/molar-mass coefficient
  // with the steeper flux exponent of confined multi-microchannel
  // boiling (0.76 vs Cooper's pool value 0.67).
  const double pr = ref.reduced_pressure(s.pressure);
  require(pr > 0.0 && pr < 1.0,
          "flow_boiling_htc: reduced pressure outside (0, 1)");
  const double coeff = 55.0 * std::pow(pr, 0.12) *
                       std::pow(-std::log10(pr), -0.55) *
                       std::pow(ref.molar_mass() * 1e3, -0.5);
  const double h_nb =
      s.heat_flux > 0.0 ? coeff * std::pow(s.heat_flux, 0.76) : 0.0;

  // Convective term: liquid-film Nusselt mildly enhanced by the
  // homogeneous density ratio (thin film accelerates with quality).
  const auto liq = ref.liquid_coolant(t_sat);
  const double h_l = microchannel::heat_transfer_coefficient(duct, liq);
  const double density_ratio =
      ref.liquid_density(t_sat) / ref.vapor_density(t_sat);
  const double enhancement =
      std::pow(1.0 + s.quality * (density_ratio - 1.0), 0.2);
  const double h_cb = h_l * enhancement;

  // Asymptotic combination (power-law blending, n = 3).
  return std::cbrt(h_nb * h_nb * h_nb + h_cb * h_cb * h_cb);
}

double dryout_quality(double mass_flux) {
  require(mass_flux > 0.0, "dryout_quality: mass flux must be positive");
  // Reference: x_crit ~ 0.85 at G = 300 kg/(m^2 s), falling slowly with G.
  const double x = 0.85 - 0.1 * std::log(mass_flux / 300.0);
  return std::clamp(x, 0.4, 0.95);
}

double two_phase_pressure_gradient(const Refrigerant& ref,
                                   const microchannel::RectDuct& duct,
                                   const BoilingState& s) {
  require(s.mass_flux > 0.0,
          "two_phase_pressure_gradient: mass flux must be positive");
  const double t_sat = ref.saturation_temperature(s.pressure);
  const double x = std::clamp(s.quality, 0.0, 0.999);

  // Homogeneous mixture density and McAdams viscosity.
  const double rho_l = ref.liquid_density(t_sat);
  const double rho_v = ref.vapor_density(t_sat);
  const double inv_rho_h = x / rho_v + (1.0 - x) / rho_l;
  const double rho_h = 1.0 / inv_rho_h;
  const double mu_l = ref.liquid_viscosity(t_sat);
  const double mu_v = ref.vapor_viscosity(t_sat);
  const double mu_h = 1.0 / (x / mu_v + (1.0 - x) / mu_l);

  const double dh = duct.hydraulic_diameter();
  const double re_h = s.mass_flux * dh / mu_h;
  double f_fanning;
  if (re_h < 2000.0) {
    f_fanning = microchannel::fanning_friction_constant(duct.aspect()) / re_h;
  } else {
    f_fanning = 0.079 * std::pow(re_h, -0.25);  // Blasius
  }
  return 4.0 * f_fanning / dh * s.mass_flux * s.mass_flux /
         (2.0 * rho_h);
}

}  // namespace tac3d::twophase
