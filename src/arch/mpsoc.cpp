#include "arch/mpsoc.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace tac3d::arch {

Mpsoc3D::Mpsoc3D(Options opts)
    : chip_(std::move(opts.chip)),
      tiers_(opts.tiers),
      cooling_(opts.cooling) {
  model_ = std::make_unique<thermal::RcModel>(
      build_stack(chip_, tiers_, cooling_), opts.grid);
  const auto& grid = model_->grid();
  for (int i = 0; i < chip_.n_cores; ++i) {
    core_elements_.push_back(grid.element_id(core_name(i)));
  }
  for (int i = 0; i < chip_.n_l2_banks; ++i) {
    l2_elements_.push_back(grid.element_id(l2_name(i)));
  }
  const int instances = tiers_ == 2 ? 1 : 2;
  for (int i = 0; i < instances; ++i) {
    xbar_elements_.push_back(grid.element_id(crossbar_name(i)));
    misc_elements_.push_back(grid.element_id(misc_name(i)));
  }
}

Mpsoc3D::Mpsoc3D(const Mpsoc3D& other)
    : chip_(other.chip_),
      tiers_(other.tiers_),
      cooling_(other.cooling_),
      model_(std::make_unique<thermal::RcModel>(*other.model_)),
      core_elements_(other.core_elements_),
      l2_elements_(other.l2_elements_),
      xbar_elements_(other.xbar_elements_),
      misc_elements_(other.misc_elements_) {}

double Mpsoc3D::core_temp(std::span<const double> temps, int core) const {
  return model_->element_max(temps, core_elements_[core]);
}

double Mpsoc3D::max_core_temp(std::span<const double> temps) const {
  double best = -1e300;
  for (int i = 0; i < n_cores(); ++i) {
    best = std::max(best, core_temp(temps, i));
  }
  return best;
}

std::vector<double> Mpsoc3D::element_powers(
    std::span<const CoreState> cores, std::span<const double> temps) const {
  std::vector<double> p(model_->grid().element_count(), 0.0);
  element_powers_into(cores, temps, p);
  return p;
}

void Mpsoc3D::element_powers_into(std::span<const CoreState> cores,
                                  std::span<const double> temps,
                                  std::span<double> out) const {
  element_powers_dynamic_into(cores, out);
  add_leakage_into(temps, out);
}

void Mpsoc3D::element_powers_dynamic_into(std::span<const CoreState> cores,
                                          std::span<double> out) const {
  require(static_cast<int>(cores.size()) == n_cores(),
          "Mpsoc3D::element_powers: need one CoreState per core");
  const auto& grid = model_->grid();
  require(static_cast<int>(out.size()) == grid.element_count(),
          "Mpsoc3D::element_powers: output size mismatch");
  std::fill(out.begin(), out.end(), 0.0);

  double busy_sum = 0.0;
  for (int i = 0; i < n_cores(); ++i) {
    const CoreState& cs = cores[i];
    const double scale = chip_.vf.power_scale(cs.vf_level);
    const double dyn =
        (chip_.powers.core_idle +
         std::clamp(cs.busy, 0.0, 1.0) *
             (chip_.powers.core_active - chip_.powers.core_idle)) *
        scale;
    out[core_elements_[i]] = dyn;
    busy_sum += std::clamp(cs.busy, 0.0, 1.0);
  }
  const double mean_busy = busy_sum / n_cores();

  for (int b = 0; b < chip_.n_l2_banks; ++b) {
    out[l2_elements_[b]] =
        chip_.powers.l2_idle +
        mean_busy * (chip_.powers.l2_active - chip_.powers.l2_idle);
  }
  // Uncore traffic follows aggregate activity with a standby floor.
  for (int x : xbar_elements_) {
    out[x] = chip_.powers.crossbar / xbar_elements_.size() *
             (0.3 + 0.7 * mean_busy);
  }
  for (int m : misc_elements_) {
    out[m] = chip_.powers.misc / misc_elements_.size() *
             (0.3 + 0.7 * mean_busy);
  }
}

void Mpsoc3D::add_leakage_into(std::span<const double> temps,
                               std::span<double> out) const {
  const auto& grid = model_->grid();
  require(static_cast<int>(out.size()) == grid.element_count(),
          "Mpsoc3D::add_leakage_into: output size mismatch");
  // Leakage on every element, from the previous-step temperatures.
  for (int e = 0; e < grid.element_count(); ++e) {
    const double t = temps.empty()
                         ? chip_.leakage.reference_temperature()
                         : model_->element_avg(temps, e);
    out[e] += chip_.leakage.power(grid.element(e).rect.area(), t);
  }
}

double Mpsoc3D::chip_power(std::span<const CoreState> cores,
                           std::span<const double> temps) const {
  const auto p = element_powers(cores, temps);
  double sum = 0.0;
  for (double v : p) sum += v;
  return sum;
}

std::vector<double> Mpsoc3D::leakage_consistent_steady(
    std::span<const CoreState> cores, int iterations,
    sparse::StructureCache* cache) {
  require(iterations >= 1, "leakage_consistent_steady: need >= 1 iteration");
  std::vector<double> temps(model_->node_count(),
                            model_->grid().spec().ambient);
  for (int i = 0; i < iterations; ++i) {
    model_->set_element_powers(element_powers(cores, temps));
    temps = model_->steady_state(sparse::SolverKind::kBicgstabIlu0, cache);
  }
  return temps;
}

}  // namespace tac3d::arch
