#pragma once
/// \file mpsoc.hpp
/// \brief The assembled 3D MPSoC: thermal model + chip power model +
/// named sensors, the object the run-time policies operate on.

#include <memory>
#include <span>
#include <vector>

#include "arch/niagara.hpp"
#include "arch/stacks.hpp"
#include "thermal/rc_model.hpp"

namespace tac3d::arch {

/// Activity of one core as seen by the power model.
struct CoreState {
  double busy = 0.0;  ///< fraction of the interval the core executed
  int vf_level = 0;   ///< index into the chip's VfTable
};

/// A 2- or 4-tier UltraSPARC T1 3D MPSoC with its RC thermal model.
class Mpsoc3D {
 public:
  struct Options {
    int tiers = 2;
    CoolingKind cooling = CoolingKind::kLiquidCooled;
    thermal::GridOptions grid{16, 16};
    NiagaraConfig chip = NiagaraConfig::paper();
  };

  explicit Mpsoc3D(Options opts);

  /// Deep copy: clones the assembled RC model (matrix pattern, values,
  /// resolved advection indices) instead of re-running stack build and
  /// sparse assembly — the clone is bitwise identical to constructing
  /// from the same Options but far cheaper, which is what makes the
  /// model tier of a ScenarioBank (sim/bank.hpp) worthwhile.
  Mpsoc3D(const Mpsoc3D& other);
  Mpsoc3D& operator=(const Mpsoc3D&) = delete;
  Mpsoc3D(Mpsoc3D&&) noexcept = default;
  Mpsoc3D& operator=(Mpsoc3D&&) noexcept = default;

  const NiagaraConfig& chip() const { return chip_; }
  int tiers() const { return tiers_; }
  CoolingKind cooling() const { return cooling_; }
  thermal::RcModel& model() { return *model_; }
  const thermal::RcModel& model() const { return *model_; }

  int n_cores() const { return chip_.n_cores; }
  int core_element(int core) const { return core_elements_[core]; }
  int l2_element(int bank) const { return l2_elements_[bank]; }
  /// All core element ids in core order (for batched sensor gathers).
  std::span<const int> core_element_ids() const { return core_elements_; }

  /// Maximum cell temperature of core \p core [K].
  double core_temp(std::span<const double> temps, int core) const;

  /// Hottest core temperature [K].
  double max_core_temp(std::span<const double> temps) const;

  /// Element power vector [W] for the given core activity and the
  /// temperature field of the *previous* step (explicit leakage
  /// coupling). L2/crossbar/misc activity follows the mean core busy
  /// fraction; uncore blocks stay at the nominal VF point.
  std::vector<double> element_powers(std::span<const CoreState> cores,
                                     std::span<const double> temps) const;

  /// Allocation-free element_powers into a caller-owned vector (size
  /// grid().element_count()): dynamic power then leakage, identical FP
  /// chain to element_powers(). Used by the per-step control tail.
  void element_powers_into(std::span<const CoreState> cores,
                           std::span<const double> temps,
                           std::span<double> out) const;

  /// Just the activity-driven dynamic power (the first half of
  /// element_powers_into): zeroes \p out, fills core/L2/uncore watts.
  void element_powers_dynamic_into(std::span<const CoreState> cores,
                                   std::span<double> out) const;

  /// Just the leakage term (the second half): adds temperature-
  /// dependent leakage for every element onto \p out. Split out so a
  /// lane-fused batched kernel (power/batched_power.hpp) can replace
  /// this one traversal while the dynamic half stays per lane.
  void add_leakage_into(std::span<const double> temps,
                        std::span<double> out) const;

  /// Total chip power [W] for the same inputs (sum of element_powers).
  double chip_power(std::span<const CoreState> cores,
                    std::span<const double> temps) const;

  /// Leakage-consistent steady state: iterate power(T) -> steady(T)
  /// to a fixed point (leakage depends on temperature). Sets the
  /// model's element powers as a side effect and returns the
  /// temperature field. A non-null \p cache shares the symbolic solver
  /// analysis across same-geometry models (see sparse::StructureCache).
  std::vector<double> leakage_consistent_steady(
      std::span<const CoreState> cores, int iterations = 4,
      sparse::StructureCache* cache = nullptr);

 private:
  NiagaraConfig chip_;
  int tiers_;
  CoolingKind cooling_;
  std::unique_ptr<thermal::RcModel> model_;
  std::vector<int> core_elements_;
  std::vector<int> l2_elements_;
  std::vector<int> xbar_elements_;
  std::vector<int> misc_elements_;
};

}  // namespace tac3d::arch
