#include "arch/niagara.hpp"

#include "arch/calibration.hpp"
#include "common/units.hpp"

namespace tac3d::arch {

NiagaraConfig NiagaraConfig::paper() {
  NiagaraConfig cfg{
      /*n_cores=*/8,
      /*threads_per_core=*/4,
      /*n_l2_banks=*/4,
      /*core_area=*/mm2(10.0),
      /*l2_area=*/mm2(19.0),
      /*layer_area=*/mm2(115.0),
      UnitPowers{calib::kCoreActiveW, calib::kCoreIdleW, calib::kL2ActiveW,
                 calib::kL2IdleW, calib::kCrossbarW, calib::kMiscW},
      power::VfTable::ultrasparc_t1(),
      power::LeakageModel(calib::kLeakageDensityW_m2,
                          celsius_to_kelvin(calib::kAmbientC),
                          calib::kLeakageBetaK, calib::kLeakageMaxFactor)};
  return cfg;
}

std::string core_name(int i) { return "core" + std::to_string(i); }
std::string l2_name(int i) { return "l2_" + std::to_string(i); }
std::string crossbar_name(int tier_instance) {
  return "xbar" + std::to_string(tier_instance);
}
std::string misc_name(int tier_instance) {
  return "misc" + std::to_string(tier_instance);
}

}  // namespace tac3d::arch
