#include "arch/stacks.hpp"

#include <cmath>

#include "arch/calibration.hpp"
#include "common/error.hpp"
#include "common/units.hpp"
#include "microchannel/coolant.hpp"
#include "thermal/grid.hpp"
#include "thermal/material.hpp"

namespace tac3d::arch {

using thermal::Floorplan;
using thermal::Layer;
using thermal::StackSpec;
namespace mat = thermal::materials;

Floorplan core_tier_floorplan(const NiagaraConfig& chip, int cores_per_tier,
                              int first_core, int instance,
                              double tier_width) {
  require(cores_per_tier >= 1, "core_tier_floorplan: need cores");
  Floorplan fp;
  const double w = tier_width;
  if (cores_per_tier >= 8) {
    // Two rows of four cores with the crossbar strip in between.
    const double cw = w / 4.0;
    const double ch = chip.core_area / cw;
    for (int i = 0; i < 4; ++i) {
      fp.add(core_name(first_core + i), Rect{i * cw, 0.0, cw, ch});
    }
    for (int i = 0; i < 4; ++i) {
      fp.add(core_name(first_core + 4 + i),
             Rect{i * cw, w - ch, cw, ch});
    }
    fp.add(crossbar_name(instance), Rect{0.0, ch, w, w - 2.0 * ch});
  } else {
    // One row of cores plus the crossbar slice above.
    const double cw = w / cores_per_tier;
    const double ch = chip.core_area / cw;
    for (int i = 0; i < cores_per_tier; ++i) {
      fp.add(core_name(first_core + i), Rect{i * cw, 0.0, cw, ch});
    }
    fp.add(crossbar_name(instance), Rect{0.0, ch, w, w - ch});
  }
  return fp;
}

Floorplan cache_tier_floorplan(const NiagaraConfig& chip, int banks_per_tier,
                               int first_bank, int instance,
                               double tier_width) {
  require(banks_per_tier >= 1, "cache_tier_floorplan: need banks");
  Floorplan fp;
  const double w = tier_width;
  if (banks_per_tier >= 4) {
    const double bw = w / 2.0;
    const double bh = chip.l2_area / bw;
    fp.add(l2_name(first_bank + 0), Rect{0.0, 0.0, bw, bh});
    fp.add(l2_name(first_bank + 1), Rect{bw, 0.0, bw, bh});
    fp.add(l2_name(first_bank + 2), Rect{0.0, w - bh, bw, bh});
    fp.add(l2_name(first_bank + 3), Rect{bw, w - bh, bw, bh});
    fp.add(misc_name(instance), Rect{0.0, bh, w, w - 2.0 * bh});
  } else {
    const double bw = w / banks_per_tier;
    const double bh = chip.l2_area / bw;
    for (int i = 0; i < banks_per_tier; ++i) {
      fp.add(l2_name(first_bank + i), Rect{i * bw, 0.0, bw, bh});
    }
    fp.add(misc_name(instance), Rect{0.0, bh, w, w - bh});
  }
  return fp;
}

namespace {

Layer water_cavity(const std::string& name) {
  return Layer::cavity(name, mm(0.1), mm(0.05), mm(0.15), mat::silicon(),
                       microchannel::water(
                           celsius_to_kelvin(calib::kCoolantInletC)));
}

void append_die(StackSpec& spec, const std::string& name, int floorplan) {
  spec.layers.push_back(
      Layer::solid(name + ".si", mm(0.15), mat::silicon(), floorplan));
  spec.layers.push_back(Layer::solid(name + ".beol", calib::kWiringThickness,
                                     mat::wiring()));
}

void append_air_path(StackSpec& spec) {
  spec.layers.push_back(
      Layer::solid("tim", calib::kTimThickness, mat::tim()));
  spec.layers.push_back(
      Layer::solid("spreader", calib::kSpreaderThickness, mat::copper()));
  spec.sink.present = true;
  spec.sink.conductance_to_ambient = 10.0;  // Table I
  spec.sink.capacitance = 140.0;            // Table I
  spec.sink.coupling_conductance = calib::kSinkCouplingW_K;
}

}  // namespace

StackSpec build_stack(const NiagaraConfig& chip, int tiers,
                      CoolingKind cooling) {
  require(tiers == 2 || tiers == 4, "build_stack: tiers must be 2 or 4");
  StackSpec spec;
  const bool liquid = cooling == CoolingKind::kLiquidCooled;
  spec.name = std::to_string(tiers) + "-tier " +
              (liquid ? "liquid-cooled" : "air-cooled");
  spec.ambient = celsius_to_kelvin(calib::kAmbientC);
  spec.coolant_inlet = celsius_to_kelvin(calib::kCoolantInletC);

  const double layer_area =
      tiers == 2 ? chip.layer_area : chip.layer_area / 2.0;
  const double w = std::sqrt(layer_area);
  spec.width = w;
  spec.length = w;

  if (tiers == 2) {
    spec.floorplans.push_back(core_tier_floorplan(chip, 8, 0, 0, w));
    spec.floorplans.push_back(cache_tier_floorplan(chip, 4, 0, 0, w));
    // Bottom to top: cores (buried), caches (near the sink / top cavity).
    append_die(spec, "tier0", 0);
    if (liquid) spec.layers.push_back(water_cavity("cavity0"));
    append_die(spec, "tier1", 1);
    if (liquid) {
      spec.layers.push_back(water_cavity("cavity1"));
      spec.layers.push_back(
          Layer::solid("lid", calib::kLidThickness, mat::silicon()));
    } else {
      append_air_path(spec);
    }
  } else {
    // cache A / core A / cache B / core B, bottom to top; cores 0-3 on
    // tier 1, cores 4-7 on tier 3.
    spec.floorplans.push_back(cache_tier_floorplan(chip, 2, 0, 0, w));
    spec.floorplans.push_back(core_tier_floorplan(chip, 4, 0, 0, w));
    spec.floorplans.push_back(cache_tier_floorplan(chip, 2, 2, 1, w));
    spec.floorplans.push_back(core_tier_floorplan(chip, 4, 4, 1, w));
    for (int t = 0; t < 4; ++t) {
      append_die(spec, "tier" + std::to_string(t), t);
      if (liquid) {
        spec.layers.push_back(
            water_cavity("cavity" + std::to_string(t)));
      } else if (t < 3) {
        spec.layers.push_back(Layer::solid("bond" + std::to_string(t),
                                           mm(0.1), mat::wiring()));
      }
    }
    if (liquid) {
      spec.layers.push_back(
          Layer::solid("lid", calib::kLidThickness, mat::silicon()));
    } else {
      append_air_path(spec);
    }
  }
  spec.validate();
  return spec;
}

StackSpec build_scalability_stack(int active_tiers, bool inter_tier_cooling,
                                  double hotspot_flux,
                                  double background_flux) {
  require(active_tiers >= 1, "build_scalability_stack: need tiers");
  (void)hotspot_flux;
  (void)background_flux;
  StackSpec spec;
  spec.name = std::to_string(active_tiers) + "-tier scalability (" +
              (inter_tier_cooling ? "inter-tier" : "back-side") + ")";
  spec.width = mm(10.0);
  spec.length = mm(10.0);
  spec.ambient = celsius_to_kelvin(calib::kCoolantInletC);
  spec.coolant_inlet = celsius_to_kelvin(calib::kCoolantInletC);

  // Per-tier floorplan: centered 2x2 mm hot spot + 4 background blocks.
  for (int t = 0; t < active_tiers; ++t) {
    Floorplan fp;
    const std::string s = std::to_string(t);
    fp.add("hs" + s, Rect{mm(4.0), mm(4.0), mm(2.0), mm(2.0)});
    fp.add("bgl" + s, Rect{0.0, 0.0, mm(4.0), mm(10.0)});
    fp.add("bgr" + s, Rect{mm(6.0), 0.0, mm(4.0), mm(10.0)});
    fp.add("bgb" + s, Rect{mm(4.0), 0.0, mm(2.0), mm(4.0)});
    fp.add("bgt" + s, Rect{mm(4.0), mm(6.0), mm(2.0), mm(4.0)});
    spec.floorplans.push_back(fp);
  }

  if (inter_tier_cooling) {
    // tiers + 1 cavities: one below the bottom tier, one between each
    // pair, one above the top tier ("four fluid cavities" for 3 tiers).
    spec.layers.push_back(
        Layer::solid("base", mm(0.3), mat::silicon()));
    spec.layers.push_back(water_cavity("cavity0"));
    for (int t = 0; t < active_tiers; ++t) {
      append_die(spec, "tier" + std::to_string(t), t);
      spec.layers.push_back(
          water_cavity("cavity" + std::to_string(t + 1)));
    }
    spec.layers.push_back(
        Layer::solid("lid", calib::kLidThickness, mat::silicon()));
  } else {
    for (int t = 0; t < active_tiers; ++t) {
      append_die(spec, "tier" + std::to_string(t), t);
      if (t + 1 < active_tiers) {
        spec.layers.push_back(Layer::solid("bond" + std::to_string(t),
                                           mm(0.1), mat::wiring()));
      }
    }
    // Back-side cold plate: a strong single-sided attach (cold-plate
    // conductance chosen as a high-performance 2D solution).
    spec.layers.push_back(
        Layer::solid("tim", calib::kTimThickness, mat::tim()));
    spec.layers.push_back(
        Layer::solid("coldplate", mm(2.0), mat::copper()));
    spec.sink.present = true;
    spec.sink.conductance_to_ambient = 20.0;
    spec.sink.capacitance = 300.0;
    spec.sink.coupling_conductance = 200.0;
  }
  spec.validate();
  return spec;
}

std::vector<double> scalability_element_powers(
    const thermal::ThermalGrid& grid, double hotspot_flux,
    double background_flux) {
  std::vector<double> p(grid.element_count(), 0.0);
  for (int e = 0; e < grid.element_count(); ++e) {
    const auto& info = grid.element(e);
    const double flux =
        info.name.rfind("hs", 0) == 0 ? hotspot_flux : background_flux;
    p[e] = flux * info.rect.area();
  }
  return p;
}

}  // namespace tac3d::arch
