#pragma once
/// \file stacks.hpp
/// \brief Builders for the paper's 3D MPSoC stacks (Fig. 1): 2-tier and
/// 4-tier UltraSPARC T1 stacks in air-cooled and liquid-cooled variants,
/// plus the Section II-C scalability-study stack.

#include "arch/niagara.hpp"
#include "thermal/grid.hpp"
#include "thermal/stackup.hpp"

namespace tac3d::arch {

/// Cooling configuration of a stack.
enum class CoolingKind {
  kAirCooled,     ///< TIM + spreader + lumped sink (Table I air values)
  kLiquidCooled,  ///< inter-tier water cavities (Table I channel values)
};

/// Floorplan of one core tier (cores + crossbar slice).
/// \param cores_per_tier 8 (2-tier) or 4 (4-tier)
/// \param first_core index of the first core on this tier
/// \param instance crossbar instance number (unique names)
thermal::Floorplan core_tier_floorplan(const NiagaraConfig& chip,
                                       int cores_per_tier, int first_core,
                                       int instance, double tier_width);

/// Floorplan of one cache tier (L2 banks + misc slice).
thermal::Floorplan cache_tier_floorplan(const NiagaraConfig& chip,
                                        int banks_per_tier, int first_bank,
                                        int instance, double tier_width);

/// Build the 2- or 4-tier stack.
///
/// 2-tier: cores (bottom) / caches (top), 115 mm^2 layers; liquid
/// variant has a cavity above each tier (2 cavities). 4-tier: the same
/// chip split finer — cache/core/cache/core bottom-to-top on 57.5 mm^2
/// layers with 4 cavities, so every core tier touches two cavities.
/// Air-cooled variants replace cavities with the Table I inter-tier
/// bond material and add TIM + copper spreader + the 10 W/K lumped sink.
thermal::StackSpec build_stack(const NiagaraConfig& chip, int tiers,
                               CoolingKind cooling);

/// Section II-C scalability stack: \p active_tiers tiers of 1 cm^2 with
/// a centered hot spot of \p hotspot_flux [W/m^2] over 2x2 mm on a
/// \p background_flux [W/m^2] background. The inter-tier variant has
/// tiers+1 cavities ("four fluid cavities" for three tiers); the
/// back-side variant conducts everything to a cold plate on top.
thermal::StackSpec build_scalability_stack(int active_tiers,
                                           bool inter_tier_cooling,
                                           double hotspot_flux,
                                           double background_flux);

/// Element powers for the scalability stack's floorplans (same order as
/// the grid's element list): hot-spot and background blocks at their
/// respective fluxes.
std::vector<double> scalability_element_powers(
    const thermal::ThermalGrid& grid, double hotspot_flux,
    double background_flux);

}  // namespace tac3d::arch
