#pragma once
/// \file niagara.hpp
/// \brief UltraSPARC T1 (Niagara-1) chip description: unit counts,
/// areas (Table I), nominal powers, VF ladder and leakage model.

#include <string>

#include "power/leakage.hpp"
#include "power/vf.hpp"

namespace tac3d::arch {

/// Per-unit nominal dynamic powers at the top VF level [W].
struct UnitPowers {
  double core_active = 0.0;
  double core_idle = 0.0;
  double l2_active = 0.0;
  double l2_idle = 0.0;
  double crossbar = 0.0;
  double misc = 0.0;
};

/// Static description of the chip the stacks are built from.
struct NiagaraConfig {
  int n_cores = 8;
  int threads_per_core = 4;
  int n_l2_banks = 4;
  double core_area = 0.0;   ///< [m^2] (Table I: 10 mm^2)
  double l2_area = 0.0;     ///< [m^2] (Table I: 19 mm^2)
  double layer_area = 0.0;  ///< [m^2] (Table I: 115 mm^2, 2-tier layers)
  UnitPowers powers;
  power::VfTable vf = power::VfTable::ultrasparc_t1();
  power::LeakageModel leakage;

  int hardware_threads() const { return n_cores * threads_per_core; }

  /// The paper's configuration (Table I areas, calibrated powers).
  static NiagaraConfig paper();
};

/// Element-name helpers shared by floorplan builders and the simulator.
std::string core_name(int i);
std::string l2_name(int i);
std::string crossbar_name(int tier_instance);
std::string misc_name(int tier_instance);

}  // namespace tac3d::arch
