#pragma once
/// \file calibration.hpp
/// \brief The free parameters of the 3D MPSoC model that Table I of the
/// paper does not pin down, fixed in one place.
///
/// Everything here is chosen once against the paper's reported anchors
/// (Section IV-A): 2-tier air-cooled peak ~87 C, 4-tier air-cooled peak
/// up to ~178 C, 2-tier liquid-cooled peak ~56 C at maximum flow, and a
/// 2-tier chip power of ~70 W. Integration tests in
/// tests/test_integration_paper.cpp assert these anchors with tolerance
/// bands; if you retune a value, run those tests.

#include "common/units.hpp"

namespace tac3d::arch::calib {

/// Air ambient (server inlet), the HotSpot convention.
inline constexpr double kAmbientC = 45.0;

/// Coolant supply temperature (building water loop).
inline constexpr double kCoolantInletC = 27.0;

// --- unit powers at the nominal VF point (dynamic only) ---------------
inline constexpr double kCoreActiveW = 5.8;  ///< fully-utilized core
inline constexpr double kCoreIdleW = 1.1;    ///< idling core (clock on)
inline constexpr double kL2ActiveW = 2.1;    ///< fully-utilized L2 bank
inline constexpr double kL2IdleW = 0.7;
inline constexpr double kCrossbarW = 5.5;    ///< crossbar + FPU + misc logic
inline constexpr double kMiscW = 4.5;        ///< IO, DRAM control, buffers

// --- leakage -----------------------------------------------------------
/// Leakage density at 45 C: ~8 W over the 2.3 cm^2 of active silicon.
inline constexpr double kLeakageDensityW_m2 = 4.4e4;
/// Exponential slope: leakage doubles roughly every 35 K.
inline constexpr double kLeakageBetaK = 58.0;
/// Clamp on the exponential factor (numerical guard in runaway cases).
inline constexpr double kLeakageMaxFactor = 2.5;

// --- air-cooled path ----------------------------------------------------
/// Sink-attach (TIM + base spreading) conductance, total [W/K].
inline constexpr double kSinkCouplingW_K = 5.0;
/// TIM layer thickness [m] / conductivity in materials::tim().
inline constexpr double kTimThickness = 20e-6;
/// Copper spreader thickness [m].
inline constexpr double kSpreaderThickness = 1e-3;

// --- stack geometry (beyond Table I) -------------------------------------
/// BEOL/wiring layer thickness on each die [m].
inline constexpr double kWiringThickness = 10e-6;
/// Silicon lid above the topmost cavity [m].
inline constexpr double kLidThickness = 300e-6;

/// DVFS thresholds of the temperature-triggered policy [C].
inline constexpr double kDvfsTripC = 85.0;
inline constexpr double kDvfsReleaseC = 82.0;

/// Thermal threshold used for hot-spot accounting [C].
inline constexpr double kHotSpotThresholdC = 85.0;

}  // namespace tac3d::arch::calib
