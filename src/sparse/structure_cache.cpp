#include "sparse/structure_cache.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "sparse/rcm.hpp"

namespace tac3d::sparse {

namespace {

/// FNV-1a over the pattern arrays (dims + row_ptr + col_idx).
std::uint64_t pattern_hash(const CsrMatrix& a) {
  std::uint64_t h = 1469598103934665603ull;
  const auto mix = [&h](std::uint64_t x) {
    h ^= x;
    h *= 1099511628211ull;
  };
  mix(static_cast<std::uint64_t>(a.rows()));
  mix(static_cast<std::uint64_t>(a.cols()));
  for (const std::int32_t v : a.row_ptr()) {
    mix(static_cast<std::uint64_t>(static_cast<std::uint32_t>(v)));
  }
  for (const std::int32_t v : a.col_idx()) {
    mix(static_cast<std::uint64_t>(static_cast<std::uint32_t>(v)));
  }
  return h;
}

}  // namespace

bool SymbolicStructure::matches(const CsrMatrix& a) const {
  return a.rows() == rows && a.cols() == rows &&
         static_cast<std::size_t>(a.nnz()) == col_idx.size() &&
         std::equal(row_ptr.begin(), row_ptr.end(), a.row_ptr().begin()) &&
         std::equal(col_idx.begin(), col_idx.end(), a.col_idx().begin());
}

std::shared_ptr<const SymbolicStructure> analyze_structure(
    const CsrMatrix& a) {
  require(a.rows() == a.cols(),
          "analyze_structure: matrix must be square");
  auto s = std::make_shared<SymbolicStructure>();
  const std::int32_t n = a.rows();
  s->rows = n;
  s->row_ptr.assign(a.row_ptr().begin(), a.row_ptr().end());
  s->col_idx.assign(a.col_idx().begin(), a.col_idx().end());

  // RCM ordering and the band extents of the permuted pattern.
  s->rcm_perm = rcm_ordering(a);
  s->rcm_inv_perm.assign(static_cast<std::size_t>(n), 0);
  for (std::int32_t i = 0; i < n; ++i) s->rcm_inv_perm[s->rcm_perm[i]] = i;
  const auto rp = a.row_ptr();
  const auto ci = a.col_idx();
  for (std::int32_t r = 0; r < n; ++r) {
    const std::int32_t pr = s->rcm_inv_perm[r];
    for (std::int32_t k = rp[r]; k < rp[r + 1]; ++k) {
      const std::int32_t pc = s->rcm_inv_perm[ci[k]];
      s->band_lower = std::max(s->band_lower, pr - pc);
      s->band_upper = std::max(s->band_upper, pc - pr);
    }
  }

  // Diagonal entry index per row (ILU(0) pivot map).
  s->ilu_diag.assign(static_cast<std::size_t>(n), -1);
  for (std::int32_t r = 0; r < n; ++r) {
    for (std::int32_t k = rp[r]; k < rp[r + 1]; ++k) {
      if (ci[k] == r) s->ilu_diag[r] = k;
    }
  }
  return s;
}

std::shared_ptr<const SymbolicStructure> StructureCache::get(
    const CsrMatrix& a) {
  const std::uint64_t h = pattern_hash(a);
  const std::lock_guard<std::mutex> lock(mu_);
  auto& bucket = buckets_[h];
  for (const auto& s : bucket) {
    if (s->matches(a)) {
      ++hits_;
      return s;
    }
  }
  ++misses_;
  bucket.push_back(analyze_structure(a));
  return bucket.back();
}

std::size_t StructureCache::size() const {
  const std::lock_guard<std::mutex> lock(mu_);
  std::size_t n = 0;
  for (const auto& [h, bucket] : buckets_) n += bucket.size();
  return n;
}

}  // namespace tac3d::sparse
