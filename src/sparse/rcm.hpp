#pragma once
/// \file rcm.hpp
/// \brief Reverse Cuthill-McKee ordering for bandwidth reduction.
///
/// The banded LU factorization cost is O(n * bw^2); RCM on the
/// structurally-symmetrized RC-network pattern keeps bw near the smallest
/// grid cross-section, which makes cached direct factorization practical
/// for the thermal simulation loop.

#include <cstdint>
#include <vector>

namespace tac3d::sparse {

class CsrMatrix;

/// Compute a reverse Cuthill-McKee permutation of the structurally
/// symmetrized pattern of \p a.
///
/// \returns perm such that perm[new_index] = old_index. Disconnected
/// components are each ordered from a pseudo-peripheral start node.
std::vector<std::int32_t> rcm_ordering(const CsrMatrix& a);

/// Bandwidth of \p a under permutation \p perm (perm[new] = old);
/// the identity permutation is used when perm is empty.
std::int32_t bandwidth(const CsrMatrix& a,
                       const std::vector<std::int32_t>& perm);

}  // namespace tac3d::sparse
