#pragma once
/// \file rcm.hpp
/// \brief Reverse Cuthill-McKee ordering for bandwidth reduction.
///
/// The banded LU factorization cost is O(n * bw^2); RCM on the
/// structurally-symmetrized RC-network pattern keeps bw near the smallest
/// grid cross-section, which makes cached direct factorization practical
/// for the thermal simulation loop.

#include <cstdint>
#include <span>
#include <vector>

namespace tac3d::sparse {

class CsrMatrix;

/// Compute a reverse Cuthill-McKee permutation of the structurally
/// symmetrized pattern of \p a.
///
/// \returns perm such that perm[new_index] = old_index. Disconnected
/// components are each ordered from a pseudo-peripheral start node.
std::vector<std::int32_t> rcm_ordering(const CsrMatrix& a);

/// Tail-constrained RCM: order everything EXCEPT \p tail_rows by RCM on
/// the remaining subgraph, then append \p tail_rows at the end (RCM-
/// ordered among themselves for locality within the tail).
///
/// Built for flow-aware direct solves: with the flow-dependent
/// (fluid/advection) rows pinned to the end of the permutation, a
/// BandedLu partial refactor after a flow update re-eliminates only the
/// tail block [n - tail, n) instead of restarting near row 0 (plain RCM
/// scatters fluid rows across the whole ordering). The price is paid in
/// band width: tail rows couple to wall rows ordered much earlier, so
/// the band — and with it full-factor cost and storage — grows with the
/// solid span between cavity walls. Worth it when the tail refresh is
/// the bottleneck and the stack is small; measured on the paper's
/// 16x16 2-tier stack the band blow-up loses to per-flow-state factor
/// caching (see BandedLuSolver), which is the default. \p tail_rows must
/// be duplicate-free; order within \p tail_rows does not matter.
std::vector<std::int32_t> rcm_ordering_constrained(
    const CsrMatrix& a, std::span<const std::int32_t> tail_rows);

/// Bandwidth of \p a under permutation \p perm (perm[new] = old);
/// the identity permutation is used when perm is empty.
std::int32_t bandwidth(const CsrMatrix& a,
                       const std::vector<std::int32_t>& perm);

}  // namespace tac3d::sparse
