#pragma once
/// \file preconditioner.hpp
/// \brief Jacobi and ILU(0) preconditioners for the iterative solvers.
///
/// Both mutable preconditioners allocate all storage at construction and
/// refresh in place via refactor() when the bound matrix's values change
/// on the same sparsity pattern — the solver hot path never allocates.

#include <memory>
#include <span>
#include <vector>

#include "sparse/csr.hpp"

namespace tac3d::sparse {

struct SymbolicStructure;

/// Applies z = M^{-1} r for some approximation M of A.
class Preconditioner {
 public:
  virtual ~Preconditioner() = default;
  virtual void apply(std::span<const double> r, std::span<double> z) const = 0;
};

/// Identity preconditioner (no-op).
class IdentityPreconditioner final : public Preconditioner {
 public:
  void apply(std::span<const double> r, std::span<double> z) const override;
};

/// Diagonal (Jacobi) preconditioner.
class JacobiPreconditioner final : public Preconditioner {
 public:
  /// \p structure is accepted for interface symmetry with Ilu0 (the
  /// solver facade constructs either kind the same way); Jacobi needs no
  /// symbolic analysis.
  explicit JacobiPreconditioner(const CsrMatrix& a,
                                const SymbolicStructure* structure = nullptr);

  /// Recompute the inverse diagonal in place for new values on the same
  /// pattern (no allocation).
  void refactor(const CsrMatrix& a);

  /// Recompute only the listed rows of the inverse diagonal — exact and
  /// O(|rows|), for value updates that touched a known row subset.
  void refactor_rows(const CsrMatrix& a, std::span<const std::int32_t> rows);

  void apply(std::span<const double> r, std::span<double> z) const override;

 private:
  std::vector<double> inv_diag_;
};

/// Zero-fill incomplete LU factorization; the factors live on the
/// sparsity pattern of A. Stable for the diagonally dominant RC systems.
class Ilu0Preconditioner final : public Preconditioner {
 public:
  /// \p structure optionally supplies the precomputed diagonal index map
  /// (see StructureCache); without it the pattern is scanned here.
  explicit Ilu0Preconditioner(const CsrMatrix& a,
                              const SymbolicStructure* structure = nullptr);

  /// Recompute factors in place for new values on the same pattern
  /// (no allocation).
  void refactor(const CsrMatrix& a);

  void apply(std::span<const double> r, std::span<double> z) const override;

  /// The current factor values (A's pattern order). Exposed so the
  /// solver facade can fold possibly-stale factors into a replay
  /// fingerprint (LinearSolver::fold_replay_state) — unlike Jacobi, the
  /// ILU(0) factors are deliberately left stale under lazy refresh and
  /// therefore carry history.
  std::span<const double> factor_values() const { return lu_.values(); }

 private:
  CsrMatrix lu_;                     ///< combined factors on A's pattern
  std::vector<std::int32_t> diag_;   ///< index of diagonal entry per row
};

}  // namespace tac3d::sparse
