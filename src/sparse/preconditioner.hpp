#pragma once
/// \file preconditioner.hpp
/// \brief Jacobi and ILU(0) preconditioners for the iterative solvers.

#include <memory>
#include <span>
#include <vector>

#include "sparse/csr.hpp"

namespace tac3d::sparse {

/// Applies z = M^{-1} r for some approximation M of A.
class Preconditioner {
 public:
  virtual ~Preconditioner() = default;
  virtual void apply(std::span<const double> r, std::span<double> z) const = 0;
};

/// Identity preconditioner (no-op).
class IdentityPreconditioner final : public Preconditioner {
 public:
  void apply(std::span<const double> r, std::span<double> z) const override;
};

/// Diagonal (Jacobi) preconditioner.
class JacobiPreconditioner final : public Preconditioner {
 public:
  explicit JacobiPreconditioner(const CsrMatrix& a);
  void apply(std::span<const double> r, std::span<double> z) const override;

 private:
  std::vector<double> inv_diag_;
};

/// Zero-fill incomplete LU factorization; the factors live on the
/// sparsity pattern of A. Stable for the diagonally dominant RC systems.
class Ilu0Preconditioner final : public Preconditioner {
 public:
  explicit Ilu0Preconditioner(const CsrMatrix& a);

  /// Recompute factors for new values on the same pattern.
  void refactor(const CsrMatrix& a);

  void apply(std::span<const double> r, std::span<double> z) const override;

 private:
  CsrMatrix lu_;                     ///< combined factors on A's pattern
  std::vector<std::int32_t> diag_;   ///< index of diagonal entry per row
};

}  // namespace tac3d::sparse
