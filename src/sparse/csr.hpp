#pragma once
/// \file csr.hpp
/// \brief Compressed-sparse-row matrix used by the RC thermal solver.
///
/// The RC networks assembled by tac3d::thermal are sparse (<= 7 off-
/// diagonals per row), strictly diagonally dominant, and non-symmetric
/// whenever fluid advection is present. CsrMatrix stores them in CSR form
/// with a stable structure so that numeric values can be updated in place
/// when a cavity flow rate changes without re-running symbolic analysis.

#include <cstdint>
#include <span>
#include <vector>

namespace tac3d::sparse {

/// One assembly contribution: A(row, col) += value.
struct Triplet {
  std::int32_t row = 0;
  std::int32_t col = 0;
  double value = 0.0;
};

/// Square or rectangular CSR matrix with int32 indices.
class CsrMatrix {
 public:
  CsrMatrix() = default;

  /// Build from triplets; duplicate (row, col) entries are summed.
  static CsrMatrix from_triplets(std::int32_t rows, std::int32_t cols,
                                 std::vector<Triplet> entries);

  std::int32_t rows() const { return rows_; }
  std::int32_t cols() const { return cols_; }
  std::int64_t nnz() const { return static_cast<std::int64_t>(values_.size()); }

  std::span<const std::int32_t> row_ptr() const { return row_ptr_; }
  std::span<const std::int32_t> col_idx() const { return col_idx_; }
  std::span<const double> values() const { return values_; }
  std::span<double> values_mut() { return values_; }

  /// y = A x. Sizes must match.
  void multiply(std::span<const double> x, std::span<double> y) const;

  /// y = A^T x. Sizes must match.
  void multiply_transpose(std::span<const double> x,
                          std::span<double> y) const;

  /// Reference to an existing structural entry; throws InvalidArgument if
  /// (row, col) is not in the sparsity pattern.
  double& coeff_ref(std::int32_t row, std::int32_t col);

  /// Value at (row, col), or 0 if not present.
  double coeff(std::int32_t row, std::int32_t col) const;

  /// True if (row, col) is a structural entry.
  bool has_entry(std::int32_t row, std::int32_t col) const;

  /// Index into values() of entry (row, col), or -1 if absent. Lets hot
  /// paths precompute positions once and update values by direct index.
  std::int64_t entry_index(std::int32_t row, std::int32_t col) const {
    return find(row, col);
  }

  /// Set every stored value to zero, keeping the pattern.
  void set_zero();

  /// Copy of the diagonal (missing entries contribute 0).
  std::vector<double> diagonal() const;

  /// Infinity norm ||A||_inf (max absolute row sum).
  double norm_inf() const;

  /// True if strictly diagonally dominant by rows with margin \p eps.
  bool is_diagonally_dominant(double eps = 0.0) const;

 private:
  /// Index into values_ of entry (row, col) or -1.
  std::int64_t find(std::int32_t row, std::int32_t col) const;

  std::int32_t rows_ = 0;
  std::int32_t cols_ = 0;
  std::vector<std::int32_t> row_ptr_;
  std::vector<std::int32_t> col_idx_;
  std::vector<double> values_;
};

}  // namespace tac3d::sparse
