#include "sparse/iterative.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "sparse/kernels.hpp"

namespace tac3d::sparse {

void KrylovWorkspace::resize(std::size_t n) {
  if (n_ == n) return;
  n_ = n;
  for (auto* vec : {&r, &r0, &p, &v, &s, &t, &ph, &sh}) {
    vec->assign(n, 0.0);
  }
}

IterativeResult cg(const CsrMatrix& a, std::span<const double> b,
                   std::span<double> x, const Preconditioner& m,
                   const IterativeOptions& opts, KrylovWorkspace& ws) {
  const std::size_t n = b.size();
  require(a.rows() == a.cols() &&
              static_cast<std::size_t>(a.rows()) == n && x.size() == n,
          "cg: size mismatch");
  ws.resize(n);
  std::vector<double>& r = ws.r;
  std::vector<double>& z = ws.ph;
  std::vector<double>& p = ws.p;
  std::vector<double>& ap = ws.v;

  double bb = 0.0;
  double rr = residual_norms(a, x, b, r, &bb);

  const double bnorm = std::max(std::sqrt(bb), 1e-300);
  IterativeResult res;
  res.residual_norm = std::sqrt(rr);
  if (res.residual_norm / bnorm <= opts.rel_tolerance) {
    res.converged = true;
    return res;
  }

  m.apply(r, z);
  std::copy(z.begin(), z.end(), p.begin());
  double rz = dot(r, z);

  for (std::int32_t it = 1; it <= opts.max_iterations; ++it) {
    const double pap = spmv_dot(a, p, ap, p);
    if (pap <= 0.0) {
      throw NumericalError("cg: matrix is not positive definite");
    }
    const double alpha = rz / pap;
    axpy(alpha, p, x);
    axpy(-alpha, ap, r);
    res.iterations = it;
    res.residual_norm = norm2(r);
    if (res.residual_norm / bnorm <= opts.rel_tolerance) {
      res.converged = true;
      return res;
    }
    m.apply(r, z);
    const double rz_new = dot(r, z);
    const double beta = rz_new / rz;
    rz = rz_new;
    xpby(z, beta, p);
  }
  return res;
}

IterativeResult cg(const CsrMatrix& a, std::span<const double> b,
                   std::span<double> x, const Preconditioner& m,
                   const IterativeOptions& opts) {
  KrylovWorkspace ws;
  return cg(a, b, x, m, opts, ws);
}

IterativeResult bicgstab(const CsrMatrix& a, std::span<const double> b,
                         std::span<double> x, const Preconditioner& m,
                         const IterativeOptions& opts, KrylovWorkspace& ws) {
  const std::size_t n = b.size();
  require(a.rows() == a.cols() &&
              static_cast<std::size_t>(a.rows()) == n && x.size() == n,
          "bicgstab: size mismatch");
  ws.resize(n);
  std::vector<double>& r = ws.r;
  std::vector<double>& r0 = ws.r0;
  std::vector<double>& p = ws.p;
  std::vector<double>& v = ws.v;
  std::vector<double>& s = ws.s;
  std::vector<double>& t = ws.t;
  std::vector<double>& ph = ws.ph;
  std::vector<double>& sh = ws.sh;

  double bb = 0.0;
  double rr = residual_norms(a, x, b, r, &bb);

  const double bnorm = std::max(std::sqrt(bb), 1e-300);
  IterativeResult res;
  res.residual_norm = std::sqrt(rr);
  if (res.residual_norm / bnorm <= opts.rel_tolerance) {
    res.converged = true;  // warm start was good enough; skip all setup
    return res;
  }
  std::copy(r.begin(), r.end(), r0.begin());

  double rho = 1.0, alpha = 1.0, omega = 1.0;
  std::fill(p.begin(), p.end(), 0.0);
  std::fill(v.begin(), v.end(), 0.0);

  for (std::int32_t it = 1; it <= opts.max_iterations; ++it) {
    const double rho_new = dot(r0, r);
    if (rho_new == 0.0) break;  // breakdown; report non-convergence
    const double beta = (rho_new / rho) * (alpha / omega);
    rho = rho_new;
    bicgstab_p_update(r, beta, omega, v, p);
    m.apply(p, ph);
    const double r0v = spmv_dot(a, ph, v, r0);
    if (r0v == 0.0) break;
    alpha = rho / r0v;
    const double ss = waxpby(s, r, -alpha, v);
    res.iterations = it;
    if (std::sqrt(ss) / bnorm <= opts.rel_tolerance) {
      axpy(alpha, ph, x);
      res.residual_norm = std::sqrt(residual(a, x, b, r));
      res.converged = true;
      return res;
    }
    m.apply(s, sh);
    double ts = 0.0;
    const double tt = spmv_dot2(a, sh, t, s, &ts);
    if (tt == 0.0) break;
    omega = ts / tt;
    rr = bicgstab_final_update(alpha, ph, omega, sh, s, t, x, r);
    res.residual_norm = std::sqrt(rr);
    if (res.residual_norm / bnorm <= opts.rel_tolerance) {
      res.converged = true;
      return res;
    }
    if (omega == 0.0) break;
  }
  return res;
}

IterativeResult bicgstab(const CsrMatrix& a, std::span<const double> b,
                         std::span<double> x, const Preconditioner& m,
                         const IterativeOptions& opts) {
  KrylovWorkspace ws;
  return bicgstab(a, b, x, m, opts, ws);
}

}  // namespace tac3d::sparse
