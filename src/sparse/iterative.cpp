#include "sparse/iterative.hpp"

#include <cmath>

#include "common/error.hpp"

namespace tac3d::sparse {

namespace {

double dot(std::span<const double> a, std::span<const double> b) {
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) acc += a[i] * b[i];
  return acc;
}

double norm2(std::span<const double> a) { return std::sqrt(dot(a, a)); }

// y += alpha * x
void axpy(double alpha, std::span<const double> x, std::span<double> y) {
  for (std::size_t i = 0; i < x.size(); ++i) y[i] += alpha * x[i];
}

}  // namespace

IterativeResult cg(const CsrMatrix& a, std::span<const double> b,
                   std::span<double> x, const Preconditioner& m,
                   const IterativeOptions& opts) {
  const std::size_t n = b.size();
  require(a.rows() == a.cols() &&
              static_cast<std::size_t>(a.rows()) == n && x.size() == n,
          "cg: size mismatch");

  std::vector<double> r(n), z(n), p(n), ap(n);
  a.multiply(x, r);
  for (std::size_t i = 0; i < n; ++i) r[i] = b[i] - r[i];

  const double bnorm = std::max(norm2(b), 1e-300);
  IterativeResult res;
  res.residual_norm = norm2(r);
  if (res.residual_norm / bnorm <= opts.rel_tolerance) {
    res.converged = true;
    return res;
  }

  m.apply(r, z);
  p = z;
  double rz = dot(r, z);

  for (std::int32_t it = 1; it <= opts.max_iterations; ++it) {
    a.multiply(p, ap);
    const double pap = dot(p, ap);
    if (pap <= 0.0) {
      throw NumericalError("cg: matrix is not positive definite");
    }
    const double alpha = rz / pap;
    axpy(alpha, p, x);
    axpy(-alpha, ap, r);
    res.iterations = it;
    res.residual_norm = norm2(r);
    if (res.residual_norm / bnorm <= opts.rel_tolerance) {
      res.converged = true;
      return res;
    }
    m.apply(r, z);
    const double rz_new = dot(r, z);
    const double beta = rz_new / rz;
    rz = rz_new;
    for (std::size_t i = 0; i < n; ++i) p[i] = z[i] + beta * p[i];
  }
  return res;
}

IterativeResult bicgstab(const CsrMatrix& a, std::span<const double> b,
                         std::span<double> x, const Preconditioner& m,
                         const IterativeOptions& opts) {
  const std::size_t n = b.size();
  require(a.rows() == a.cols() &&
              static_cast<std::size_t>(a.rows()) == n && x.size() == n,
          "bicgstab: size mismatch");

  std::vector<double> r(n), r0(n), p(n), v(n), s(n), t(n), ph(n), sh(n);
  a.multiply(x, r);
  for (std::size_t i = 0; i < n; ++i) r[i] = b[i] - r[i];
  r0 = r;

  const double bnorm = std::max(norm2(b), 1e-300);
  IterativeResult res;
  res.residual_norm = norm2(r);
  if (res.residual_norm / bnorm <= opts.rel_tolerance) {
    res.converged = true;
    return res;
  }

  double rho = 1.0, alpha = 1.0, omega = 1.0;
  std::fill(p.begin(), p.end(), 0.0);
  std::fill(v.begin(), v.end(), 0.0);

  for (std::int32_t it = 1; it <= opts.max_iterations; ++it) {
    const double rho_new = dot(r0, r);
    if (rho_new == 0.0) break;  // breakdown; report non-convergence
    const double beta = (rho_new / rho) * (alpha / omega);
    rho = rho_new;
    for (std::size_t i = 0; i < n; ++i) {
      p[i] = r[i] + beta * (p[i] - omega * v[i]);
    }
    m.apply(p, ph);
    a.multiply(ph, v);
    const double r0v = dot(r0, v);
    if (r0v == 0.0) break;
    alpha = rho / r0v;
    for (std::size_t i = 0; i < n; ++i) s[i] = r[i] - alpha * v[i];
    res.iterations = it;
    if (norm2(s) / bnorm <= opts.rel_tolerance) {
      axpy(alpha, ph, x);
      a.multiply(x, r);
      for (std::size_t i = 0; i < n; ++i) r[i] = b[i] - r[i];
      res.residual_norm = norm2(r);
      res.converged = true;
      return res;
    }
    m.apply(s, sh);
    a.multiply(sh, t);
    const double tt = dot(t, t);
    if (tt == 0.0) break;
    omega = dot(t, s) / tt;
    for (std::size_t i = 0; i < n; ++i) {
      x[i] += alpha * ph[i] + omega * sh[i];
      r[i] = s[i] - omega * t[i];
    }
    res.residual_norm = norm2(r);
    if (res.residual_norm / bnorm <= opts.rel_tolerance) {
      res.converged = true;
      return res;
    }
    if (omega == 0.0) break;
  }
  return res;
}

}  // namespace tac3d::sparse
