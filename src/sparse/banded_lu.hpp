#pragma once
/// \file banded_lu.hpp
/// \brief Direct banded LU factorization (no pivoting) after RCM
/// reordering.
///
/// The backward-Euler matrices of the RC thermal model are strictly
/// diagonally dominant, so LU without pivoting is numerically stable.
/// The band layout is fixed by the sparsity pattern at construction;
/// refactorizing after an in-place value update (e.g. a flow-rate change)
/// reuses the same storage and permutation.

#include <cstdint>
#include <span>
#include <vector>

#include "sparse/csr.hpp"

namespace tac3d::sparse {

struct SymbolicStructure;

/// LU = P A P^T factorization in banded storage.
class BandedLu {
 public:
  /// Analyze the pattern of \p a (using RCM unless \p perm is supplied)
  /// and factor its values. \p perm maps new index -> old index.
  explicit BandedLu(const CsrMatrix& a, std::vector<std::int32_t> perm = {});

  /// Reuse a precomputed symbolic analysis (RCM permutation and band
  /// extents, see StructureCache) instead of recomputing it; a null
  /// \p structure falls back to the analyzing constructor.
  BandedLu(const CsrMatrix& a, const SymbolicStructure* structure);

  /// Refactor with new values; \p a must have the same sparsity pattern
  /// as the matrix used at construction.
  void factor(const CsrMatrix& a);

  /// Partial refactor after an in-place value update that touched only
  /// \p dirty_rows (original, unpermuted indices): band rows above the
  /// first dirty permuted row keep their LU values (elimination of row i
  /// reads only rows k < i), so only the tail [first_dirty, n) is
  /// reloaded and re-eliminated. Bitwise identical to a full factor().
  void factor_rows(const CsrMatrix& a,
                   std::span<const std::int32_t> dirty_rows);

  /// Smallest permuted index over \p rows (n if empty) — the row a
  /// partial refactor restarts from.
  std::int32_t first_permuted_row(std::span<const std::int32_t> rows) const;

  /// Solve A x = b. \p x and \p b may alias.
  void solve(std::span<const double> b, std::span<double> x) const;

  std::int32_t size() const { return n_; }
  std::int32_t lower_bandwidth() const { return kl_; }
  std::int32_t upper_bandwidth() const { return ku_; }

 private:
  double& band(std::int32_t i, std::int32_t j) {
    return data_[static_cast<std::size_t>(i) * stride_ + (j - i + kl_)];
  }
  double band(std::int32_t i, std::int32_t j) const {
    return data_[static_cast<std::size_t>(i) * stride_ + (j - i + kl_)];
  }
  void load(const CsrMatrix& a, std::int32_t first_row);
  void eliminate(std::int32_t first_row);

  std::int32_t n_ = 0;
  std::int32_t kl_ = 0;
  std::int32_t ku_ = 0;
  std::size_t stride_ = 0;
  std::vector<std::int32_t> perm_;      ///< new -> old
  std::vector<std::int32_t> inv_perm_;  ///< old -> new
  std::vector<double> data_;            ///< row-major band, LU in place
  mutable std::vector<double> work_;
};

}  // namespace tac3d::sparse
