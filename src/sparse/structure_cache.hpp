#pragma once
/// \file structure_cache.hpp
/// \brief Shared symbolic analysis for solvers bound to matrices with
/// the same sparsity pattern.
///
/// A design-space sweep instantiates one RC model per scenario, but
/// scenarios with the same stack geometry produce bit-identical CSR
/// patterns. The expensive symbolic work — RCM ordering, banded-LU band
/// extents, the ILU(0) diagonal index map — depends only on the pattern,
/// so a StructureCache computes it once and hands out a shared immutable
/// SymbolicStructure to every solver. Symbolic analysis is a pure
/// function of the pattern, so a solver built from a cached structure is
/// bitwise identical to one that analyzed the matrix itself; sweeps stay
/// deterministic with the cache on or off, serial or parallel.

#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "sparse/csr.hpp"

namespace tac3d::sparse {

/// Immutable pattern-level analysis shared between solvers.
struct SymbolicStructure {
  std::int32_t rows = 0;
  /// RCM permutation, perm[new] = old (see rcm_ordering).
  std::vector<std::int32_t> rcm_perm;
  /// Inverse permutation, inv[old] = new.
  std::vector<std::int32_t> rcm_inv_perm;
  /// Band extents of the RCM-permuted pattern (banded LU storage).
  std::int32_t band_lower = 0;
  std::int32_t band_upper = 0;
  /// Index into values() of the diagonal entry of each row (ILU(0)).
  std::vector<std::int32_t> ilu_diag;
  /// Pattern copy for exact identity checks on hash-bucket collisions.
  std::vector<std::int32_t> row_ptr;
  std::vector<std::int32_t> col_idx;

  /// True if \p a has exactly this sparsity pattern.
  bool matches(const CsrMatrix& a) const;
};

/// Run the symbolic analysis of \p a directly (no cache).
std::shared_ptr<const SymbolicStructure> analyze_structure(const CsrMatrix& a);

/// Thread-safe, pattern-keyed cache of SymbolicStructure. Lookups hash
/// the pattern and verify exact equality, so distinct patterns never
/// alias. Safe to share across sweep workers.
class StructureCache {
 public:
  /// Return the shared structure of \p a's pattern, computing it on the
  /// first request.
  std::shared_ptr<const SymbolicStructure> get(const CsrMatrix& a);

  /// Distinct patterns analyzed so far.
  std::size_t size() const;

  /// Lookup counters (for bench/telemetry; approximate under races).
  std::uint64_t hits() const { return hits_; }
  std::uint64_t misses() const { return misses_; }

 private:
  mutable std::mutex mu_;
  std::unordered_map<std::uint64_t,
                     std::vector<std::shared_ptr<const SymbolicStructure>>>
      buckets_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

}  // namespace tac3d::sparse
