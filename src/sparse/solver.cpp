#include "sparse/solver.hpp"

#include <algorithm>
#include <type_traits>

#include "common/error.hpp"
#include "sparse/banded_lu.hpp"
#include "sparse/iterative.hpp"
#include "sparse/preconditioner.hpp"

namespace tac3d::sparse {

namespace {

class BandedLuSolver final : public LinearSolver {
 public:
  BandedLuSolver(const CsrMatrix& a,
                 std::shared_ptr<const SymbolicStructure> structure)
      : structure_(std::move(structure)), lu_(a, structure_.get()) {}

  void update_values(const CsrMatrix& a) override {
    lu_.factor(a);
    ++stats_.refactors;
  }

  void update_values(const CsrMatrix& a, const ValueUpdate& update) override {
    if (update.rows.empty() && update.dirty_fraction == 0.0) return;
    // A direct factorization must always be exact, but the partial
    // refactor is exact too: LU rows above the first dirty permuted row
    // are unaffected by the change, so only the band tail is redone.
    if (!policy_.lazy || update.rows.empty()) {
      update_values(a);
      return;
    }
    lu_.factor_rows(a, update.rows);
    ++stats_.partial_refactors;
  }

  void solve(std::span<const double> b, std::span<double> x) override {
    lu_.solve(b, x);
    ++stats_.solves;
  }

  void set_refresh_policy(const RefreshPolicy& policy) override {
    policy_ = policy;
  }

  const char* name() const override { return "banded-lu(rcm)"; }

 private:
  std::shared_ptr<const SymbolicStructure> structure_;
  BandedLu lu_;
  RefreshPolicy policy_;
};

template <typename Precond>
class BicgstabSolver final : public LinearSolver {
 public:
  BicgstabSolver(const CsrMatrix& a,
                 std::shared_ptr<const SymbolicStructure> structure,
                 const char* name)
      : a_(&a),
        structure_(std::move(structure)),
        precond_(a, structure_.get()),
        name_(name) {
    ws_.resize(static_cast<std::size_t>(a.rows()));
    row_dirty_.assign(static_cast<std::size_t>(a.rows()), 0);
    warm_start_.assign(static_cast<std::size_t>(a.rows()), 0.0);
  }

  void update_values(const CsrMatrix& a) override {
    a_ = &a;
    refactor_now(a);
  }

  void update_values(const CsrMatrix& a, const ValueUpdate& update) override {
    a_ = &a;
    if (update.rows.empty() && update.dirty_fraction == 0.0) return;
    if (!policy_.lazy || update.rows.empty()) {
      refactor_now(a);
      return;
    }
    if constexpr (std::is_same_v<Precond, JacobiPreconditioner>) {
      // The inverse diagonal over the dirty rows IS the exact refresh.
      precond_.refactor_rows(a, update.rows);
      ++stats_.partial_refactors;
      return;
    }
    // ILU(0): leave the factors stale — the solve tolerance still
    // guarantees the answer — and track how dirty they have become.
    ++stats_.deferred_updates;
    for (const std::int32_t r : update.rows) {
      if (!row_dirty_[static_cast<std::size_t>(r)]) {
        row_dirty_[static_cast<std::size_t>(r)] = 1;
        ++dirty_rows_;
      }
    }
    stats_.pending_dirty_fraction =
        static_cast<double>(dirty_rows_) / static_cast<double>(a.rows());
    if (stats_.pending_dirty_fraction > policy_.max_dirty_fraction) {
      refactor_now(a);
    }
  }

  void solve(std::span<const double> b, std::span<double> x) override {
    IterativeOptions opts;
    opts.rel_tolerance = rel_tolerance_;
    opts.max_iterations = 5000;
    const bool stale = stats_.pending_dirty_fraction > 0.0;
    if (stale) {
      // Keep the caller's warm start so a diverged stale attempt (which
      // mutates x in place, possibly to NaN) can be retried cleanly.
      std::copy(x.begin(), x.end(), warm_start_.begin());
    }
    IterativeResult res = bicgstab(*a_, b, x, precond_, opts, ws_);
    if (!res.converged && stale) {
      // The stale preconditioner is the likely culprit; refresh, restore
      // the original warm start and retry once before giving up.
      refactor_now(*a_);
      ++stats_.retries;
      std::copy(warm_start_.begin(), warm_start_.end(), x.begin());
      res = bicgstab(*a_, b, x, precond_, opts, ws_);
    }
    if (!res.converged) {
      throw NumericalError("BicgstabSolver: failed to converge");
    }
    ++stats_.solves;
    stats_.iterations += static_cast<std::uint64_t>(res.iterations);
    stats_.last_iterations = res.iterations;
    if (fresh_iterations_ < 0 && stats_.pending_dirty_fraction == 0.0) {
      fresh_iterations_ = res.iterations;
    }
    if (stats_.pending_dirty_fraction > 0.0) {
      // Iteration-degradation trigger: refresh now so the NEXT stale
      // solve starts from current factors.
      const double limit =
          policy_.max_iteration_growth *
              std::max(std::int32_t{1}, fresh_iterations_) +
          policy_.iteration_slack;
      if (static_cast<double>(res.iterations) > limit) refactor_now(*a_);
    }
  }

  bool uses_initial_guess() const override { return true; }

  void set_refresh_policy(const RefreshPolicy& policy) override {
    policy_ = policy;
  }

  void set_tolerance(double rel_tolerance) override {
    rel_tolerance_ = rel_tolerance;
  }

  const char* name() const override { return name_; }

 private:
  void refactor_now(const CsrMatrix& a) {
    precond_.refactor(a);
    ++stats_.refactors;
    stats_.pending_dirty_fraction = 0.0;
    if (dirty_rows_ > 0) {
      std::fill(row_dirty_.begin(), row_dirty_.end(), std::uint8_t{0});
      dirty_rows_ = 0;
    }
    fresh_iterations_ = -1;  // re-baseline on the next clean solve
  }

  const CsrMatrix* a_;
  std::shared_ptr<const SymbolicStructure> structure_;
  Precond precond_;
  KrylovWorkspace ws_;
  RefreshPolicy policy_;
  std::vector<std::uint8_t> row_dirty_;  ///< distinct rows dirty since refactor
  std::vector<double> warm_start_;  ///< saved x for the stale-solve retry
  std::int32_t dirty_rows_ = 0;
  std::int32_t fresh_iterations_ = -1;  ///< iterations right after a refactor
  double rel_tolerance_ = 1e-12;
  const char* name_;
};

}  // namespace

std::unique_ptr<LinearSolver> make_solver(
    SolverKind kind, const CsrMatrix& a,
    std::shared_ptr<const SymbolicStructure> structure) {
  switch (kind) {
    case SolverKind::kBandedLu:
      return std::make_unique<BandedLuSolver>(a, std::move(structure));
    case SolverKind::kBicgstabIlu0:
      return std::make_unique<BicgstabSolver<Ilu0Preconditioner>>(
          a, std::move(structure), "bicgstab+ilu0");
    case SolverKind::kBicgstabJacobi:
      return std::make_unique<BicgstabSolver<JacobiPreconditioner>>(
          a, std::move(structure), "bicgstab+jacobi");
  }
  throw InvalidArgument("make_solver: unknown solver kind");
}

}  // namespace tac3d::sparse
