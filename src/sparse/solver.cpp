#include "sparse/solver.hpp"

#include "common/error.hpp"
#include "sparse/banded_lu.hpp"
#include "sparse/iterative.hpp"
#include "sparse/preconditioner.hpp"

namespace tac3d::sparse {

namespace {

class BandedLuSolver final : public LinearSolver {
 public:
  BandedLuSolver(const CsrMatrix& a,
                 std::shared_ptr<const SymbolicStructure> structure)
      : structure_(std::move(structure)), lu_(a, structure_.get()) {}

  void update_values(const CsrMatrix& a) override { lu_.factor(a); }

  void solve(std::span<const double> b, std::span<double> x) override {
    lu_.solve(b, x);
  }

  const char* name() const override { return "banded-lu(rcm)"; }

 private:
  std::shared_ptr<const SymbolicStructure> structure_;
  BandedLu lu_;
};

template <typename Precond>
class BicgstabSolver final : public LinearSolver {
 public:
  BicgstabSolver(const CsrMatrix& a,
                 std::shared_ptr<const SymbolicStructure> structure,
                 const char* name)
      : a_(&a),
        structure_(std::move(structure)),
        precond_(a, structure_.get()),
        name_(name) {
    ws_.resize(static_cast<std::size_t>(a.rows()));
  }

  void update_values(const CsrMatrix& a) override {
    a_ = &a;
    precond_.refactor(a);
  }

  void solve(std::span<const double> b, std::span<double> x) override {
    IterativeOptions opts;
    opts.rel_tolerance = 1e-12;
    opts.max_iterations = 5000;
    const IterativeResult res = bicgstab(*a_, b, x, precond_, opts, ws_);
    if (!res.converged) {
      throw NumericalError("BicgstabSolver: failed to converge");
    }
  }

  const char* name() const override { return name_; }

 private:
  const CsrMatrix* a_;
  std::shared_ptr<const SymbolicStructure> structure_;
  Precond precond_;
  KrylovWorkspace ws_;
  const char* name_;
};

}  // namespace

std::unique_ptr<LinearSolver> make_solver(
    SolverKind kind, const CsrMatrix& a,
    std::shared_ptr<const SymbolicStructure> structure) {
  switch (kind) {
    case SolverKind::kBandedLu:
      return std::make_unique<BandedLuSolver>(a, std::move(structure));
    case SolverKind::kBicgstabIlu0:
      return std::make_unique<BicgstabSolver<Ilu0Preconditioner>>(
          a, std::move(structure), "bicgstab+ilu0");
    case SolverKind::kBicgstabJacobi:
      return std::make_unique<BicgstabSolver<JacobiPreconditioner>>(
          a, std::move(structure), "bicgstab+jacobi");
  }
  throw InvalidArgument("make_solver: unknown solver kind");
}

}  // namespace tac3d::sparse
