#include "sparse/solver.hpp"

#include <algorithm>
#include <cstring>
#include <type_traits>

#include "common/error.hpp"
#include "common/fnv.hpp"
#include "sparse/banded_lu.hpp"
#include "sparse/iterative.hpp"
#include "sparse/preconditioner.hpp"
#include "sparse/rcm.hpp"

namespace tac3d::sparse {

namespace {

/// Direct banded solver with a per-flow-state factor-slot cache.
///
/// Flow-modulated stepping revisits a small discrete set of pump levels;
/// each level corresponds to one set of advection values and therefore
/// one LU. Instead of re-eliminating the band on every flow change
/// (~full factor cost when the dirty rows permute near row 0), the
/// solver keeps up to RefreshPolicy::factor_slots complete
/// factorizations keyed by the values of the tracked (ever-dirtied)
/// rows. A revisited state is an O(tracked-nnz) key probe plus an
/// active-slot switch; only genuinely new states pay for elimination.
/// Each slot's factor was produced by the same load/eliminate code from
/// bitwise-identical values, so a cache hit is bitwise-equal to a fresh
/// refactor.
class BandedLuSolver final : public LinearSolver {
 public:
  BandedLuSolver(const CsrMatrix& a,
                 std::shared_ptr<const SymbolicStructure> structure,
                 std::span<const std::int32_t> flow_tail_rows)
      : structure_(flow_tail_rows.empty() ? std::move(structure) : nullptr),
        lu_(flow_tail_rows.empty()
                ? BandedLu(a, structure_.get())
                : BandedLu(a, rcm_ordering_constrained(a, flow_tail_rows))),
        flow_tail_(!flow_tail_rows.empty()),
        nnz_(a.nnz()) {
    tracked_mask_.assign(static_cast<std::size_t>(a.rows()), 0);
    tracked_rows_.reserve(static_cast<std::size_t>(a.rows()));
    cur_key_.reserve(static_cast<std::size_t>(nnz_));
  }

  void update_values(const CsrMatrix& a) override {
    if (active_ != nullptr) {
      // Untracked values may have changed: the other slots' bases are no
      // longer reconstructible from tracked rows alone.
      for (Slot& s : slots_) {
        if (&s != active_) {
          s.valid = false;
          s.base_tracked = false;
        }
      }
      active_->lu.factor(a);
      extract_key(a, active_->key);
      active_->hash = hash_key(active_->key);
      active_->valid = true;
      active_->base_tracked = true;
      active_->stamp = ++clock_;
    } else {
      lu_.factor(a);
    }
    ++stats_.refactors;
  }

  void update_values(const CsrMatrix& a, const ValueUpdate& update) override {
    if (update.rows.empty() && update.dirty_fraction == 0.0) return;
    // A direct factorization must always be exact, but the partial
    // refactor is exact too: LU rows above the first dirty permuted row
    // are unaffected by the change, so only the band tail is redone.
    if (!policy_.lazy || update.rows.empty()) {
      update_values(a);
      return;
    }
    if (active_ == nullptr) {
      lu_.factor_rows(a, update.rows);
      ++stats_.partial_refactors;
      return;
    }
    // Grow the tracked flow-row set by union; it is stable (the
    // advection rows) after the first orbit of updates. Growth makes the
    // stored keys incomparable, not the stored factors unusable.
    bool grew = false;
    for (const std::int32_t r : update.rows) {
      if (!tracked_mask_[static_cast<std::size_t>(r)]) {
        tracked_mask_[static_cast<std::size_t>(r)] = 1;
        tracked_rows_.push_back(r);
        grew = true;
      }
    }
    if (grew) {
      std::sort(tracked_rows_.begin(), tracked_rows_.end());
      for (Slot& s : slots_) s.valid = false;
    }
    extract_key(a, cur_key_);
    const std::uint64_t h = hash_key(cur_key_);
    for (Slot& s : slots_) {
      if (s.valid && s.hash == h && s.key.size() == cur_key_.size() &&
          std::equal(s.key.begin(), s.key.end(), cur_key_.begin())) {
        active_ = &s;
        s.stamp = ++clock_;
        ++stats_.factor_cache_hits;
        return;
      }
    }
    // Miss: evict the least-recently-used slot and factor it for this
    // state. A tracked base differs from \p a only inside tracked rows,
    // so re-eliminating from the first tracked permuted row is exact.
    Slot* victim = &slots_.front();
    for (Slot& s : slots_) {
      if (s.stamp < victim->stamp) victim = &s;
    }
    if (victim->base_tracked) {
      victim->lu.factor_rows(a, tracked_rows_);
      ++stats_.partial_refactors;
    } else {
      victim->lu.factor(a);
      ++stats_.refactors;
    }
    victim->key.assign(cur_key_.begin(), cur_key_.end());
    victim->hash = h;
    victim->valid = true;
    victim->base_tracked = true;
    victim->stamp = ++clock_;
    active_ = victim;
  }

  void solve(std::span<const double> b, std::span<double> x) override {
    (active_ != nullptr ? active_->lu : lu_).solve(b, x);
    ++stats_.solves;
  }

  void set_refresh_policy(const RefreshPolicy& policy) override {
    policy_ = policy;
    // (Re)build the factor-slot cache. This runs at solver-bind time,
    // before the stepping loop, so allocating here keeps update_values
    // and solve heap-free. Eager policies bypass the cache entirely.
    const std::size_t want =
        policy_.lazy && policy_.factor_slots > 1
            ? static_cast<std::size_t>(policy_.factor_slots)
            : 0;
    if (slots_.size() != want) {
      slots_.clear();
      slots_.reserve(want);
      for (std::size_t i = 0; i < want; ++i) {
        slots_.push_back(Slot{lu_, {}, 0, 0, false, true});
        slots_.back().key.reserve(static_cast<std::size_t>(nnz_));
      }
      active_ = want > 0 ? &slots_.front() : nullptr;
    }
  }

  // A solve here is a pure function of the bound matrix's current
  // values: the active factor always matches them (a slot-cache hit is
  // bitwise-equal to a fresh refactor, a partial refactor is exact), so
  // slot contents, LRU stamps and eviction order affect cost only —
  // nothing to fold.
  bool fold_replay_state(std::uint64_t& h) const override {
    (void)h;
    return true;
  }

  const char* name() const override {
    return flow_tail_ ? "banded-lu(rcm-flow-tail)" : "banded-lu(rcm)";
  }

 private:
  struct Slot {
    BandedLu lu;
    std::vector<double> key;  ///< tracked-row values this factor matches
    std::uint64_t hash = 0;
    std::uint64_t stamp = 0;       ///< LRU clock
    bool valid = false;            ///< key/hash identify a flow state
    bool base_tracked = true;      ///< differs from current a only in tracked rows
  };

  /// Values of the tracked rows in sorted-row CSR order — the part of
  /// the matrix a flow update is allowed to change.
  void extract_key(const CsrMatrix& a, std::vector<double>& out) const {
    out.clear();
    const auto rp = a.row_ptr();
    const auto v = a.values();
    for (const std::int32_t r : tracked_rows_) {
      for (std::int32_t k = rp[r]; k < rp[r + 1]; ++k) out.push_back(v[k]);
    }
  }

  static std::uint64_t hash_key(const std::vector<double>& key) {
    // FNV-1a over the raw value bits; collisions are resolved by the
    // exact compare at the probe site.
    std::uint64_t h = 1469598103934665603ull;
    for (const double d : key) {
      std::uint64_t bits;
      std::memcpy(&bits, &d, sizeof bits);
      h = (h ^ bits) * 1099511628211ull;
    }
    return h;
  }

  std::shared_ptr<const SymbolicStructure> structure_;
  BandedLu lu_;  ///< the factorization when the slot cache is disabled
  bool flow_tail_ = false;
  std::int64_t nnz_ = 0;
  RefreshPolicy policy_;
  std::vector<Slot> slots_;
  Slot* active_ = nullptr;  ///< non-null iff the slot cache is enabled
  std::vector<std::int32_t> tracked_rows_;  ///< sorted union of dirty rows
  std::vector<std::uint8_t> tracked_mask_;
  std::vector<double> cur_key_;
  std::uint64_t clock_ = 0;
};

template <typename Precond>
class BicgstabSolver final : public LinearSolver {
 public:
  BicgstabSolver(const CsrMatrix& a,
                 std::shared_ptr<const SymbolicStructure> structure,
                 const char* name)
      : a_(&a),
        structure_(std::move(structure)),
        precond_(a, structure_.get()),
        name_(name) {
    ws_.resize(static_cast<std::size_t>(a.rows()));
    row_dirty_.assign(static_cast<std::size_t>(a.rows()), 0);
    warm_start_.assign(static_cast<std::size_t>(a.rows()), 0.0);
  }

  void update_values(const CsrMatrix& a) override {
    a_ = &a;
    refactor_now(a);
  }

  void update_values(const CsrMatrix& a, const ValueUpdate& update) override {
    a_ = &a;
    if (update.rows.empty() && update.dirty_fraction == 0.0) return;
    if (!policy_.lazy || update.rows.empty()) {
      refactor_now(a);
      return;
    }
    if constexpr (std::is_same_v<Precond, JacobiPreconditioner>) {
      // The inverse diagonal over the dirty rows IS the exact refresh.
      precond_.refactor_rows(a, update.rows);
      ++stats_.partial_refactors;
      return;
    }
    // ILU(0): leave the factors stale — the solve tolerance still
    // guarantees the answer — and track how dirty they have become.
    ++stats_.deferred_updates;
    for (const std::int32_t r : update.rows) {
      if (!row_dirty_[static_cast<std::size_t>(r)]) {
        row_dirty_[static_cast<std::size_t>(r)] = 1;
        ++dirty_rows_;
      }
    }
    stats_.pending_dirty_fraction =
        static_cast<double>(dirty_rows_) / static_cast<double>(a.rows());
    if (stats_.pending_dirty_fraction > policy_.max_dirty_fraction) {
      refactor_now(a);
    }
  }

  void solve(std::span<const double> b, std::span<double> x) override {
    IterativeOptions opts;
    opts.rel_tolerance = rel_tolerance_;
    opts.max_iterations = 5000;
    const bool stale = stats_.pending_dirty_fraction > 0.0;
    if (stale) {
      // Keep the caller's warm start so a diverged stale attempt (which
      // mutates x in place, possibly to NaN) can be retried cleanly.
      std::copy(x.begin(), x.end(), warm_start_.begin());
    }
    IterativeResult res = bicgstab(*a_, b, x, precond_, opts, ws_);
    if (!res.converged && stale) {
      // The stale preconditioner is the likely culprit; refresh, restore
      // the original warm start and retry once before giving up.
      refactor_now(*a_);
      ++stats_.retries;
      std::copy(warm_start_.begin(), warm_start_.end(), x.begin());
      res = bicgstab(*a_, b, x, precond_, opts, ws_);
    }
    if (!res.converged) {
      throw NumericalError("BicgstabSolver: failed to converge");
    }
    ++stats_.solves;
    stats_.iterations += static_cast<std::uint64_t>(res.iterations);
    stats_.last_iterations = res.iterations;
    if (fresh_iterations_ < 0 && stats_.pending_dirty_fraction == 0.0) {
      fresh_iterations_ = res.iterations;
    }
    if (stats_.pending_dirty_fraction > 0.0) {
      // Iteration-degradation trigger: refresh now so the NEXT stale
      // solve starts from current factors.
      const double limit =
          policy_.max_iteration_growth *
              std::max(std::int32_t{1}, fresh_iterations_) +
          policy_.iteration_slack;
      if (static_cast<double>(res.iterations) > limit) refactor_now(*a_);
    }
  }

  bool uses_initial_guess() const override { return true; }

  void set_refresh_policy(const RefreshPolicy& policy) override {
    policy_ = policy;
  }

  void set_tolerance(double rel_tolerance) override {
    rel_tolerance_ = rel_tolerance;
  }

  bool fold_replay_state(std::uint64_t& h) const override {
    if constexpr (std::is_same_v<Precond, JacobiPreconditioner>) {
      // The inverse diagonal is refreshed exactly on every value change,
      // so a solve is a pure function of the current matrix values plus
      // (b, x) — nothing history-carrying to fold.
      (void)h;
    } else {
      // ILU(0) factors are deliberately stale under lazy refresh, and
      // the dirty bookkeeping decides *when* future refactors fire —
      // both feed future solve() results, so both go into the print.
      h = fnv1a(h, precond_.factor_values());
      h = fnv1a_bytes(h, row_dirty_.data(), row_dirty_.size());
      h = fnv1a(h, dirty_rows_);
      h = fnv1a(h, fresh_iterations_);
      h = fnv1a(h, stats_.pending_dirty_fraction);
    }
    return true;
  }

  const char* name() const override { return name_; }

 private:
  void refactor_now(const CsrMatrix& a) {
    precond_.refactor(a);
    ++stats_.refactors;
    stats_.pending_dirty_fraction = 0.0;
    if (dirty_rows_ > 0) {
      std::fill(row_dirty_.begin(), row_dirty_.end(), std::uint8_t{0});
      dirty_rows_ = 0;
    }
    fresh_iterations_ = -1;  // re-baseline on the next clean solve
  }

  const CsrMatrix* a_;
  std::shared_ptr<const SymbolicStructure> structure_;
  Precond precond_;
  KrylovWorkspace ws_;
  RefreshPolicy policy_;
  std::vector<std::uint8_t> row_dirty_;  ///< distinct rows dirty since refactor
  std::vector<double> warm_start_;  ///< saved x for the stale-solve retry
  std::int32_t dirty_rows_ = 0;
  std::int32_t fresh_iterations_ = -1;  ///< iterations right after a refactor
  double rel_tolerance_ = 1e-12;
  const char* name_;
};

}  // namespace

std::unique_ptr<LinearSolver> make_solver(
    SolverKind kind, const CsrMatrix& a,
    std::shared_ptr<const SymbolicStructure> structure,
    std::span<const std::int32_t> flow_tail_rows) {
  switch (kind) {
    case SolverKind::kBandedLu:
      return std::make_unique<BandedLuSolver>(a, std::move(structure),
                                              flow_tail_rows);
    case SolverKind::kBicgstabIlu0:
      return std::make_unique<BicgstabSolver<Ilu0Preconditioner>>(
          a, std::move(structure), "bicgstab+ilu0");
    case SolverKind::kBicgstabJacobi:
      return std::make_unique<BicgstabSolver<JacobiPreconditioner>>(
          a, std::move(structure), "bicgstab+jacobi");
  }
  throw InvalidArgument("make_solver: unknown solver kind");
}

}  // namespace tac3d::sparse
