#include "sparse/solver.hpp"

#include "common/error.hpp"
#include "sparse/banded_lu.hpp"
#include "sparse/iterative.hpp"
#include "sparse/preconditioner.hpp"

namespace tac3d::sparse {

namespace {

class BandedLuSolver final : public LinearSolver {
 public:
  explicit BandedLuSolver(const CsrMatrix& a) : lu_(a) {}

  void update_values(const CsrMatrix& a) override { lu_.factor(a); }

  void solve(std::span<const double> b, std::span<double> x) override {
    lu_.solve(b, x);
  }

  const char* name() const override { return "banded-lu(rcm)"; }

 private:
  BandedLu lu_;
};

template <typename Precond>
class BicgstabSolver final : public LinearSolver {
 public:
  explicit BicgstabSolver(const CsrMatrix& a, const char* name)
      : a_(&a), precond_(a), name_(name) {}

  void update_values(const CsrMatrix& a) override {
    a_ = &a;
    precond_ = Precond(a);
  }

  void solve(std::span<const double> b, std::span<double> x) override {
    IterativeOptions opts;
    opts.rel_tolerance = 1e-12;
    opts.max_iterations = 5000;
    const IterativeResult res = bicgstab(*a_, b, x, precond_, opts);
    if (!res.converged) {
      throw NumericalError("BicgstabSolver: failed to converge");
    }
  }

  const char* name() const override { return name_; }

 private:
  const CsrMatrix* a_;
  Precond precond_;
  const char* name_;
};

}  // namespace

std::unique_ptr<LinearSolver> make_solver(SolverKind kind,
                                          const CsrMatrix& a) {
  switch (kind) {
    case SolverKind::kBandedLu:
      return std::make_unique<BandedLuSolver>(a);
    case SolverKind::kBicgstabIlu0:
      return std::make_unique<BicgstabSolver<Ilu0Preconditioner>>(
          a, "bicgstab+ilu0");
    case SolverKind::kBicgstabJacobi:
      return std::make_unique<BicgstabSolver<JacobiPreconditioner>>(
          a, "bicgstab+jacobi");
  }
  throw InvalidArgument("make_solver: unknown solver kind");
}

}  // namespace tac3d::sparse
