#include "sparse/rcm.hpp"

#include <algorithm>
#include <queue>

#include "common/error.hpp"
#include "sparse/csr.hpp"

namespace tac3d::sparse {

namespace {

/// Adjacency of the structurally symmetrized pattern, self-loops removed.
std::vector<std::vector<std::int32_t>> build_adjacency(const CsrMatrix& a) {
  const std::int32_t n = a.rows();
  std::vector<std::vector<std::int32_t>> adj(static_cast<std::size_t>(n));
  const auto rp = a.row_ptr();
  const auto ci = a.col_idx();
  for (std::int32_t r = 0; r < n; ++r) {
    for (std::int32_t k = rp[r]; k < rp[r + 1]; ++k) {
      const std::int32_t c = ci[k];
      if (c == r || c >= n) continue;
      adj[r].push_back(c);
      adj[c].push_back(r);
    }
  }
  for (auto& nb : adj) {
    std::sort(nb.begin(), nb.end());
    nb.erase(std::unique(nb.begin(), nb.end()), nb.end());
  }
  return adj;
}

/// BFS restricted to nodes where \p mask is set, returning
/// (last visited node, eccentricity) from \p start.
std::pair<std::int32_t, std::int32_t> bfs_far(
    const std::vector<std::vector<std::int32_t>>& adj,
    const std::vector<char>& mask, std::int32_t start,
    std::vector<std::int32_t>& depth) {
  std::fill(depth.begin(), depth.end(), -1);
  std::queue<std::int32_t> q;
  q.push(start);
  depth[start] = 0;
  std::int32_t last = start;
  while (!q.empty()) {
    const std::int32_t u = q.front();
    q.pop();
    last = u;
    for (std::int32_t v : adj[u]) {
      if (mask[static_cast<std::size_t>(v)] && depth[v] < 0) {
        depth[v] = depth[u] + 1;
        q.push(v);
      }
    }
  }
  return {last, depth[last]};
}

/// Reverse Cuthill-McKee over the subgraph induced by \p mask
/// (multi-component, pseudo-peripheral starts). Appends the ordered
/// nodes to \p order.
void rcm_masked(const std::vector<std::vector<std::int32_t>>& adj,
                const std::vector<char>& mask,
                std::vector<std::int32_t>& order) {
  const std::int32_t n = static_cast<std::int32_t>(adj.size());
  const std::size_t base = order.size();
  std::vector<bool> visited(static_cast<std::size_t>(n), false);
  std::vector<std::int32_t> depth(static_cast<std::size_t>(n), -1);

  for (std::int32_t seed = 0; seed < n; ++seed) {
    if (!mask[static_cast<std::size_t>(seed)] || visited[seed]) continue;
    // Pseudo-peripheral start: two BFS sweeps from the component seed.
    auto [far1, ecc1] = bfs_far(adj, mask, seed, depth);
    auto [far2, ecc2] = bfs_far(adj, mask, far1, depth);
    (void)far2;
    (void)ecc1;
    (void)ecc2;
    const std::int32_t start = far1;

    // Cuthill-McKee BFS ordering neighbors by increasing degree.
    std::queue<std::int32_t> q;
    q.push(start);
    visited[start] = true;
    while (!q.empty()) {
      const std::int32_t u = q.front();
      q.pop();
      order.push_back(u);
      std::vector<std::int32_t> next;
      for (std::int32_t v : adj[u]) {
        if (mask[static_cast<std::size_t>(v)] && !visited[v]) {
          visited[v] = true;
          next.push_back(v);
        }
      }
      std::sort(next.begin(), next.end(),
                [&adj](std::int32_t x, std::int32_t y) {
                  return adj[x].size() != adj[y].size()
                             ? adj[x].size() < adj[y].size()
                             : x < y;
                });
      for (std::int32_t v : next) q.push(v);
    }
  }
  std::reverse(order.begin() + static_cast<std::ptrdiff_t>(base),
               order.end());
}

}  // namespace

std::vector<std::int32_t> rcm_ordering(const CsrMatrix& a) {
  require(a.rows() == a.cols(), "rcm_ordering: matrix must be square");
  const std::int32_t n = a.rows();
  const auto adj = build_adjacency(a);
  const std::vector<char> all(static_cast<std::size_t>(n), 1);
  std::vector<std::int32_t> order;
  order.reserve(static_cast<std::size_t>(n));
  rcm_masked(adj, all, order);
  return order;
}

std::vector<std::int32_t> rcm_ordering_constrained(
    const CsrMatrix& a, std::span<const std::int32_t> tail_rows) {
  require(a.rows() == a.cols(),
          "rcm_ordering_constrained: matrix must be square");
  const std::int32_t n = a.rows();
  std::vector<char> head(static_cast<std::size_t>(n), 1);
  std::vector<char> tail(static_cast<std::size_t>(n), 0);
  for (const std::int32_t r : tail_rows) {
    require(r >= 0 && r < n, "rcm_ordering_constrained: tail row out of range");
    require(head[static_cast<std::size_t>(r)] == 1,
            "rcm_ordering_constrained: duplicate tail row");
    head[static_cast<std::size_t>(r)] = 0;
    tail[static_cast<std::size_t>(r)] = 1;
  }
  const auto adj = build_adjacency(a);
  std::vector<std::int32_t> order;
  order.reserve(static_cast<std::size_t>(n));
  rcm_masked(adj, head, order);
  rcm_masked(adj, tail, order);
  return order;
}

std::int32_t bandwidth(const CsrMatrix& a,
                       const std::vector<std::int32_t>& perm) {
  const std::int32_t n = a.rows();
  std::vector<std::int32_t> inv(static_cast<std::size_t>(n));
  if (perm.empty()) {
    for (std::int32_t i = 0; i < n; ++i) inv[i] = i;
  } else {
    require(static_cast<std::int32_t>(perm.size()) == n,
            "bandwidth: permutation size mismatch");
    for (std::int32_t i = 0; i < n; ++i) inv[perm[i]] = i;
  }
  std::int32_t bw = 0;
  const auto rp = a.row_ptr();
  const auto ci = a.col_idx();
  for (std::int32_t r = 0; r < n; ++r) {
    for (std::int32_t k = rp[r]; k < rp[r + 1]; ++k) {
      bw = std::max(bw, std::abs(inv[r] - inv[ci[k]]));
    }
  }
  return bw;
}

}  // namespace tac3d::sparse
