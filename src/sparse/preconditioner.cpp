#include "sparse/preconditioner.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "sparse/structure_cache.hpp"

namespace tac3d::sparse {

void IdentityPreconditioner::apply(std::span<const double> r,
                                   std::span<double> z) const {
  std::copy(r.begin(), r.end(), z.begin());
}

JacobiPreconditioner::JacobiPreconditioner(const CsrMatrix& a,
                                           const SymbolicStructure*) {
  inv_diag_.assign(static_cast<std::size_t>(a.rows()), 0.0);
  refactor(a);
}

void JacobiPreconditioner::refactor(const CsrMatrix& a) {
  require(static_cast<std::size_t>(a.rows()) == inv_diag_.size(),
          "JacobiPreconditioner::refactor: size mismatch");
  const auto rp = a.row_ptr();
  const auto ci = a.col_idx();
  const auto v = a.values();
  for (std::int32_t r = 0; r < a.rows(); ++r) {
    double d = 0.0;
    for (std::int32_t k = rp[r]; k < rp[r + 1]; ++k) {
      if (ci[k] == r) d = v[k];
    }
    require(d != 0.0, "JacobiPreconditioner: zero diagonal entry");
    inv_diag_[r] = 1.0 / d;
  }
}

void JacobiPreconditioner::refactor_rows(const CsrMatrix& a,
                                         std::span<const std::int32_t> rows) {
  require(static_cast<std::size_t>(a.rows()) == inv_diag_.size(),
          "JacobiPreconditioner::refactor_rows: size mismatch");
  const auto rp = a.row_ptr();
  const auto ci = a.col_idx();
  const auto v = a.values();
  for (const std::int32_t r : rows) {
    double d = 0.0;
    for (std::int32_t k = rp[r]; k < rp[r + 1]; ++k) {
      if (ci[k] == r) d = v[k];
    }
    require(d != 0.0, "JacobiPreconditioner: zero diagonal entry");
    inv_diag_[r] = 1.0 / d;
  }
}

void JacobiPreconditioner::apply(std::span<const double> r,
                                 std::span<double> z) const {
  require(r.size() == inv_diag_.size() && z.size() == inv_diag_.size(),
          "JacobiPreconditioner: size mismatch");
  for (std::size_t i = 0; i < r.size(); ++i) z[i] = r[i] * inv_diag_[i];
}

Ilu0Preconditioner::Ilu0Preconditioner(const CsrMatrix& a,
                                       const SymbolicStructure* structure)
    : lu_(a) {
  const std::int32_t n = a.rows();
  require(n == a.cols(), "Ilu0Preconditioner: matrix must be square");
  if (structure != nullptr) {
    require(structure->matches(a),
            "Ilu0Preconditioner: structure does not match the matrix");
    diag_ = structure->ilu_diag;
  } else {
    diag_.assign(static_cast<std::size_t>(n), -1);
    const auto rp = lu_.row_ptr();
    const auto ci = lu_.col_idx();
    for (std::int32_t r = 0; r < n; ++r) {
      for (std::int32_t k = rp[r]; k < rp[r + 1]; ++k) {
        if (ci[k] == r) diag_[r] = k;
      }
    }
  }
  for (std::int32_t r = 0; r < n; ++r) {
    require(diag_[r] >= 0, "Ilu0Preconditioner: missing diagonal entry");
  }
  refactor(a);
}

void Ilu0Preconditioner::refactor(const CsrMatrix& a) {
  require(a.nnz() == lu_.nnz() && a.rows() == lu_.rows(),
          "Ilu0Preconditioner::refactor: pattern mismatch");
  std::copy(a.values().begin(), a.values().end(), lu_.values_mut().begin());

  const std::int32_t n = lu_.rows();
  const auto rp = lu_.row_ptr();
  const auto ci = lu_.col_idx();
  auto v = lu_.values_mut();

  // IKJ-variant ILU(0): for each row i, eliminate with previous rows k
  // that appear in row i's pattern.
  for (std::int32_t i = 0; i < n; ++i) {
    for (std::int32_t kk = rp[i]; kk < rp[i + 1]; ++kk) {
      const std::int32_t k = ci[kk];
      if (k >= i) break;
      const double pivot = v[diag_[k]];
      require(pivot != 0.0 && std::isfinite(pivot),
              "Ilu0Preconditioner: zero pivot");
      const double l = v[kk] / pivot;
      v[kk] = l;
      // Subtract l * row_k from row_i, restricted to row_i's pattern.
      std::int32_t pi = kk + 1;
      for (std::int32_t pk = diag_[k] + 1; pk < rp[k + 1]; ++pk) {
        const std::int32_t col = ci[pk];
        while (pi < rp[i + 1] && ci[pi] < col) ++pi;
        if (pi < rp[i + 1] && ci[pi] == col) v[pi] -= l * v[pk];
      }
    }
  }
}

void Ilu0Preconditioner::apply(std::span<const double> r,
                               std::span<double> z) const {
  const std::int32_t n = lu_.rows();
  require(static_cast<std::int32_t>(r.size()) == n &&
              static_cast<std::int32_t>(z.size()) == n,
          "Ilu0Preconditioner: size mismatch");
  const auto rp = lu_.row_ptr();
  const auto ci = lu_.col_idx();
  const auto v = lu_.values();

  // Forward solve L z = r (unit diagonal).
  for (std::int32_t i = 0; i < n; ++i) {
    double acc = r[i];
    for (std::int32_t k = rp[i]; k < rp[i + 1] && ci[k] < i; ++k) {
      acc -= v[k] * z[ci[k]];
    }
    z[i] = acc;
  }
  // Backward solve U z = z.
  for (std::int32_t i = n - 1; i >= 0; --i) {
    double acc = z[i];
    double dii = 0.0;
    for (std::int32_t k = rp[i + 1] - 1; k >= rp[i] && ci[k] >= i; --k) {
      if (ci[k] == i) {
        dii = v[k];
      } else {
        acc -= v[k] * z[ci[k]];
      }
    }
    z[i] = acc / dii;
  }
}

}  // namespace tac3d::sparse
