#include "sparse/batched.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <type_traits>

#include "common/error.hpp"

namespace tac3d::sparse {

// ---------------------------------------------------------------------------
// BatchedCsr
// ---------------------------------------------------------------------------

BatchedCsr::BatchedCsr(const CsrMatrix& pattern, int lanes)
    : rows_(pattern.rows()), nnz_(pattern.nnz()), lanes_(lanes) {
  require(lanes >= 1 && lanes <= kMaxBatchLanes,
          "BatchedCsr: lane count out of range");
  require(pattern.rows() == pattern.cols(),
          "BatchedCsr: pattern must be square");
  row_ptr_.assign(pattern.row_ptr().begin(), pattern.row_ptr().end());
  col_idx_.assign(pattern.col_idx().begin(), pattern.col_idx().end());
  values_.assign(static_cast<std::size_t>(nnz_) * lanes_, 0.0);
  const std::span<const double> pv = pattern.values();
  for (std::int64_t k = 0; k < nnz_; ++k) {
    for (int l = 0; l < lanes_; ++l) {
      values_[static_cast<std::size_t>(k) * lanes_ + l] =
          pv[static_cast<std::size_t>(k)];
    }
  }
}

void BatchedCsr::load_lane(int lane, const CsrMatrix& a) {
  require(lane >= 0 && lane < lanes_, "BatchedCsr::load_lane: bad lane");
  require(a.nnz() == nnz_ && a.rows() == rows_,
          "BatchedCsr::load_lane: pattern mismatch");
  const double* __restrict src = a.values().data();
  double* __restrict dst = values_.data();
  const int L = lanes_;
  for (std::int64_t k = 0; k < nnz_; ++k) {
    dst[k * L + lane] = src[k];
  }
}

void BatchedCsr::load_lane_rows(int lane, const CsrMatrix& a,
                                std::span<const std::int32_t> rows) {
  require(lane >= 0 && lane < lanes_, "BatchedCsr::load_lane_rows: bad lane");
  require(a.nnz() == nnz_ && a.rows() == rows_,
          "BatchedCsr::load_lane_rows: pattern mismatch");
  const std::int32_t* __restrict rp = row_ptr_.data();
  const double* __restrict src = a.values().data();
  double* __restrict dst = values_.data();
  const int L = lanes_;
  for (const std::int32_t r : rows) {
    for (std::int32_t k = rp[r]; k < rp[r + 1]; ++k) {
      dst[static_cast<std::int64_t>(k) * L + lane] = src[k];
    }
  }
}

bool BatchedCsr::matches(const CsrMatrix& a) const {
  return a.rows() == rows_ && a.nnz() == nnz_ &&
         std::equal(row_ptr_.begin(), row_ptr_.end(), a.row_ptr().begin()) &&
         std::equal(col_idx_.begin(), col_idx_.end(), a.col_idx().begin());
}

void pack_lane(std::span<double> dst, int lanes, int lane,
               std::span<const double> src) {
  require(dst.size() == src.size() * static_cast<std::size_t>(lanes),
          "pack_lane: size mismatch");
  double* __restrict d = dst.data();
  const double* __restrict s = src.data();
  const std::size_t n = src.size();
  for (std::size_t i = 0; i < n; ++i) d[i * lanes + lane] = s[i];
}

void unpack_lane(std::span<const double> src, int lanes, int lane,
                 std::span<double> dst) {
  require(src.size() == dst.size() * static_cast<std::size_t>(lanes),
          "unpack_lane: size mismatch");
  const double* __restrict s = src.data();
  double* __restrict d = dst.data();
  const std::size_t n = dst.size();
  for (std::size_t i = 0; i < n; ++i) d[i] = s[i * lanes + lane];
}

void pack_lanes(std::span<double> dst, int lanes,
                const double* const* srcs, std::size_t n) {
  require(dst.size() == n * static_cast<std::size_t>(lanes),
          "pack_lanes: size mismatch");
  double* __restrict d = dst.data();
  for (std::size_t i = 0; i < n; ++i) {
    for (int l = 0; l < lanes; ++l) {
      if (srcs[l] != nullptr) d[i * lanes + l] = srcs[l][i];
    }
  }
}

void unpack_lanes(std::span<const double> src, int lanes,
                  double* const* dsts, std::size_t n) {
  require(src.size() == n * static_cast<std::size_t>(lanes),
          "unpack_lanes: size mismatch");
  const double* __restrict s = src.data();
  for (std::size_t i = 0; i < n; ++i) {
    for (int l = 0; l < lanes; ++l) {
      if (dsts[l] != nullptr) dsts[l][i] = s[i * lanes + l];
    }
  }
}

void BatchedKrylovWorkspace::resize(std::size_t n, int lanes,
                                    std::int64_t nnz) {
  if (n_ == n && lanes_ == lanes && nnz_ == nnz) return;
  n_ = n;
  lanes_ = lanes;
  nnz_ = nnz;
  const std::size_t total = n * static_cast<std::size_t>(lanes);
  for (auto* vec : {&r, &r0, &p, &v, &s, &t, &ph, &sh, &snap}) {
    vec->assign(total, 0.0);
  }
  cx.assign(total, 0.0);
  av.assign(static_cast<std::size_t>(nnz) * static_cast<std::size_t>(lanes),
            0.0);
}

// ---------------------------------------------------------------------------
// Fused batched kernels. Each mirrors its serial counterpart in
// kernels.cpp with the lane dimension as the inner loop: per lane, the
// floating-point expression shapes and accumulation order are identical,
// which is what keeps a batched lane bitwise equal to a serial solve.
// ---------------------------------------------------------------------------

namespace {

/// The fused batched kernels are templated on a compile-time lane count
/// CL (0 = generic runtime width): with the width known, the lane inner
/// loops have constant trip counts, so the compiler unrolls them into
/// SIMD lanes and keeps the per-lane accumulators in registers — the
/// actual mechanism by which one pattern traversal advances K systems at
/// roughly the cost of one. dispatch_lanes() selects the instantiation.
template <typename F>
void dispatch_lanes(int lanes, F&& f) {
  switch (lanes) {
    case 1: f(std::integral_constant<int, 1>{}); return;
    case 2: f(std::integral_constant<int, 2>{}); return;
    case 3: f(std::integral_constant<int, 3>{}); return;
    case 4: f(std::integral_constant<int, 4>{}); return;
    case 5: f(std::integral_constant<int, 5>{}); return;
    case 6: f(std::integral_constant<int, 6>{}); return;
    case 7: f(std::integral_constant<int, 7>{}); return;
    case 8: f(std::integral_constant<int, 8>{}); return;
    case 16: f(std::integral_constant<int, 16>{}); return;
    default: f(std::integral_constant<int, 0>{}); return;
  }
}

/// The SpMV-shaped kernels work on raw (row_ptr, col_idx, values)
/// pointers with an explicit lane stride so the compaction path can
/// point them at the gathered-value scratch at a narrower width.
///
/// Width-16 cache blocking: at stride 16 a lane group spans two cache
/// lines, so the <16, 8, OFF> instantiations process lane halves
/// [0, 8) and [8, 16) in two passes — each pass touches exactly one
/// line per group and carries a width-8 live vector window, which is
/// what keeps width 16 from spilling L2. Per lane the row order and
/// accumulation chains are unchanged, so the bitwise contract holds.
///
/// CL = compile-time stride (0 = runtime), W = lanes processed per pass
/// (0 = runtime = all), OFF = first lane of the pass.

/// r = b - A x per lane; rr[l] = dot(r, r), bb[l] = dot(b, b)
/// (residual_norms).
template <int CL, int W, int OFF>
void t_residual_norms_part(const std::int32_t* __restrict rp,
                           const std::int32_t* __restrict ci,
                           const double* __restrict v, std::int32_t n,
                           int lanes, const double* __restrict x,
                           const double* __restrict b, double* __restrict r,
                           double* __restrict rr, double* __restrict bb) {
  const int L = CL > 0 ? CL : lanes;
  const int Wr = W > 0 ? W : lanes;
  for (int l = 0; l < Wr; ++l) {
    rr[OFF + l] = 0.0;
    bb[OFF + l] = 0.0;
  }
  double acc[kMaxBatchLanes];
  for (std::int32_t row = 0; row < n; ++row) {
    for (int l = 0; l < Wr; ++l) acc[l] = 0.0;
    for (std::int32_t k = rp[row]; k < rp[row + 1]; ++k) {
      const std::int64_t vk = static_cast<std::int64_t>(k) * L + OFF;
      const std::int64_t xk = static_cast<std::int64_t>(ci[k]) * L + OFF;
      for (int l = 0; l < Wr; ++l) acc[l] += v[vk + l] * x[xk + l];
    }
    const std::int64_t rk = static_cast<std::int64_t>(row) * L + OFF;
    for (int l = 0; l < Wr; ++l) {
      const double bi = b[rk + l];
      const double res = bi - acc[l];
      r[rk + l] = res;
      rr[OFF + l] += res * res;
      bb[OFF + l] += bi * bi;
    }
  }
}

template <int CL>
void t_residual_norms(const std::int32_t* rp, const std::int32_t* ci,
                      const double* v, std::int32_t n, int lanes,
                      const double* x, const double* b, double* r, double* rr,
                      double* bb) {
  if constexpr (CL == 16) {
    t_residual_norms_part<16, 8, 0>(rp, ci, v, n, lanes, x, b, r, rr, bb);
    t_residual_norms_part<16, 8, 8>(rp, ci, v, n, lanes, x, b, r, rr, bb);
  } else {
    t_residual_norms_part<CL, CL, 0>(rp, ci, v, n, lanes, x, b, r, rr, bb);
  }
}

void b_residual_norms(const std::int32_t* rp, const std::int32_t* ci,
                      const double* v, std::int32_t n, int lanes,
                      const double* x, const double* b, double* r, double* rr,
                      double* bb) {
  dispatch_lanes(lanes, [&](auto cl) {
    t_residual_norms<cl.value>(rp, ci, v, n, lanes, x, b, r, rr, bb);
  });
}

/// out[l] = dot(a_vec, b_vec) per lane.
template <int CL>
void t_dot(std::size_t n, int lanes, const double* __restrict a,
           const double* __restrict b, double* __restrict out) {
  const int L = CL > 0 ? CL : lanes;
  for (int l = 0; l < L; ++l) out[l] = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t k = i * L;
    for (int l = 0; l < L; ++l) out[l] += a[k + l] * b[k + l];
  }
}

void b_dot(std::size_t n, int lanes, const double* a, const double* b,
           double* out) {
  dispatch_lanes(lanes,
                 [&](auto cl) { t_dot<cl.value>(n, lanes, a, b, out); });
}

/// p = r + beta * (p - omega * v) per lane (bicgstab_p_update).
template <int CL>
void t_p_update(std::size_t n, int lanes, const double* __restrict r,
                const double* __restrict beta, const double* __restrict omega,
                const double* __restrict v, double* __restrict p) {
  const int L = CL > 0 ? CL : lanes;
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t k = i * L;
    for (int l = 0; l < L; ++l) {
      p[k + l] = r[k + l] + beta[l] * (p[k + l] - omega[l] * v[k + l]);
    }
  }
}

void b_p_update(std::size_t n, int lanes, const double* r, const double* beta,
                const double* omega, const double* v, double* p) {
  dispatch_lanes(lanes, [&](auto cl) {
    t_p_update<cl.value>(n, lanes, r, beta, omega, v, p);
  });
}

/// y = A x per lane; out[l] = dot(w, y) (spmv_dot).
template <int CL, int W, int OFF>
void t_spmv_dot_part(const std::int32_t* __restrict rp,
                     const std::int32_t* __restrict ci,
                     const double* __restrict v, std::int32_t n, int lanes,
                     const double* __restrict x, double* __restrict y,
                     const double* __restrict w, double* __restrict out) {
  const int L = CL > 0 ? CL : lanes;
  const int Wr = W > 0 ? W : lanes;
  for (int l = 0; l < Wr; ++l) out[OFF + l] = 0.0;
  double acc[kMaxBatchLanes];
  for (std::int32_t row = 0; row < n; ++row) {
    for (int l = 0; l < Wr; ++l) acc[l] = 0.0;
    for (std::int32_t k = rp[row]; k < rp[row + 1]; ++k) {
      const std::int64_t vk = static_cast<std::int64_t>(k) * L + OFF;
      const std::int64_t xk = static_cast<std::int64_t>(ci[k]) * L + OFF;
      for (int l = 0; l < Wr; ++l) acc[l] += v[vk + l] * x[xk + l];
    }
    const std::int64_t rk = static_cast<std::int64_t>(row) * L + OFF;
    for (int l = 0; l < Wr; ++l) {
      y[rk + l] = acc[l];
      out[OFF + l] += w[rk + l] * acc[l];
    }
  }
}

template <int CL>
void t_spmv_dot(const std::int32_t* rp, const std::int32_t* ci,
                const double* v, std::int32_t n, int lanes, const double* x,
                double* y, const double* w, double* out) {
  if constexpr (CL == 16) {
    t_spmv_dot_part<16, 8, 0>(rp, ci, v, n, lanes, x, y, w, out);
    t_spmv_dot_part<16, 8, 8>(rp, ci, v, n, lanes, x, y, w, out);
  } else {
    t_spmv_dot_part<CL, CL, 0>(rp, ci, v, n, lanes, x, y, w, out);
  }
}

void b_spmv_dot(const std::int32_t* rp, const std::int32_t* ci,
                const double* v, std::int32_t n, int lanes, const double* x,
                double* y, const double* w, double* out) {
  dispatch_lanes(lanes, [&](auto cl) {
    t_spmv_dot<cl.value>(rp, ci, v, n, lanes, x, y, w, out);
  });
}

/// y = A x per lane; yy[l] = dot(y, y), wy[l] = dot(w, y) (spmv_dot2).
template <int CL, int W, int OFF>
void t_spmv_dot2_part(const std::int32_t* __restrict rp,
                      const std::int32_t* __restrict ci,
                      const double* __restrict v, std::int32_t n, int lanes,
                      const double* __restrict x, double* __restrict y,
                      const double* __restrict w, double* __restrict yy,
                      double* __restrict wy) {
  const int L = CL > 0 ? CL : lanes;
  const int Wr = W > 0 ? W : lanes;
  for (int l = 0; l < Wr; ++l) {
    yy[OFF + l] = 0.0;
    wy[OFF + l] = 0.0;
  }
  double acc[kMaxBatchLanes];
  for (std::int32_t row = 0; row < n; ++row) {
    for (int l = 0; l < Wr; ++l) acc[l] = 0.0;
    for (std::int32_t k = rp[row]; k < rp[row + 1]; ++k) {
      const std::int64_t vk = static_cast<std::int64_t>(k) * L + OFF;
      const std::int64_t xk = static_cast<std::int64_t>(ci[k]) * L + OFF;
      for (int l = 0; l < Wr; ++l) acc[l] += v[vk + l] * x[xk + l];
    }
    const std::int64_t rk = static_cast<std::int64_t>(row) * L + OFF;
    for (int l = 0; l < Wr; ++l) {
      y[rk + l] = acc[l];
      yy[OFF + l] += acc[l] * acc[l];
      wy[OFF + l] += w[rk + l] * acc[l];
    }
  }
}

template <int CL>
void t_spmv_dot2(const std::int32_t* rp, const std::int32_t* ci,
                 const double* v, std::int32_t n, int lanes, const double* x,
                 double* y, const double* w, double* yy, double* wy) {
  if constexpr (CL == 16) {
    t_spmv_dot2_part<16, 8, 0>(rp, ci, v, n, lanes, x, y, w, yy, wy);
    t_spmv_dot2_part<16, 8, 8>(rp, ci, v, n, lanes, x, y, w, yy, wy);
  } else {
    t_spmv_dot2_part<CL, CL, 0>(rp, ci, v, n, lanes, x, y, w, yy, wy);
  }
}

void b_spmv_dot2(const std::int32_t* rp, const std::int32_t* ci,
                 const double* v, std::int32_t n, int lanes, const double* x,
                 double* y, const double* w, double* yy, double* wy) {
  dispatch_lanes(lanes, [&](auto cl) {
    t_spmv_dot2<cl.value>(rp, ci, v, n, lanes, x, y, w, yy, wy);
  });
}

/// w = x + alpha * y per lane; out[l] = dot(w, w) (waxpby).
template <int CL>
void t_waxpby(std::size_t n, int lanes, double* __restrict w,
              const double* __restrict x, const double* __restrict alpha,
              const double* __restrict y, double* __restrict out) {
  const int L = CL > 0 ? CL : lanes;
  for (int l = 0; l < L; ++l) out[l] = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t k = i * L;
    for (int l = 0; l < L; ++l) {
      const double wi = x[k + l] + alpha[l] * y[k + l];
      w[k + l] = wi;
      out[l] += wi * wi;
    }
  }
}

void b_waxpby(std::size_t n, int lanes, double* w, const double* x,
              const double* alpha, const double* y, double* out) {
  dispatch_lanes(lanes, [&](auto cl) {
    t_waxpby<cl.value>(n, lanes, w, x, alpha, y, out);
  });
}

/// x += alpha * ph + omega * sh; r = s - omega * t; rr[l] = dot(r, r)
/// per lane (bicgstab_final_update).
template <int CL>
void t_final_update(std::size_t n, int lanes, const double* __restrict alpha,
                    const double* __restrict ph,
                    const double* __restrict omega,
                    const double* __restrict sh, const double* __restrict s,
                    const double* __restrict t, double* __restrict x,
                    double* __restrict r, double* __restrict rr) {
  const int L = CL > 0 ? CL : lanes;
  for (int l = 0; l < L; ++l) rr[l] = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t k = i * L;
    for (int l = 0; l < L; ++l) {
      x[k + l] += alpha[l] * ph[k + l] + omega[l] * sh[k + l];
      const double ri = s[k + l] - omega[l] * t[k + l];
      r[k + l] = ri;
      rr[l] += ri * ri;
    }
  }
}

void b_final_update(std::size_t n, int lanes, const double* alpha,
                    const double* ph, const double* omega, const double* sh,
                    const double* s, const double* t, double* x, double* r,
                    double* rr) {
  dispatch_lanes(lanes, [&](auto cl) {
    t_final_update<cl.value>(n, lanes, alpha, ph, omega, sh, s, t, x, r, rr);
  });
}

/// ILU(0) forward/backward substitution across lanes (the row-
/// sequential dependency is within a lane; every row's update runs
/// lane-wide, in the serial solver's exact entry order per lane).
template <int CL, int W, int OFF>
void t_ilu_apply_part(std::int32_t rows, int lanes,
                      const std::int32_t* __restrict rp,
                      const std::int32_t* __restrict ci,
                      const double* __restrict v, const double* __restrict rs,
                      double* __restrict zs) {
  const int L = CL > 0 ? CL : lanes;
  const int Wr = W > 0 ? W : lanes;
  double acc[kMaxBatchLanes];
  double dii[kMaxBatchLanes];
  // Forward solve L z = r (unit diagonal).
  for (std::int32_t i = 0; i < rows; ++i) {
    const std::int64_t ik = static_cast<std::int64_t>(i) * L + OFF;
    for (int l = 0; l < Wr; ++l) acc[l] = rs[ik + l];
    for (std::int32_t k = rp[i]; k < rp[i + 1] && ci[k] < i; ++k) {
      const std::int64_t vk = static_cast<std::int64_t>(k) * L + OFF;
      const std::int64_t zk = static_cast<std::int64_t>(ci[k]) * L + OFF;
      for (int l = 0; l < Wr; ++l) acc[l] -= v[vk + l] * zs[zk + l];
    }
    for (int l = 0; l < Wr; ++l) zs[ik + l] = acc[l];
  }
  // Backward solve U z = z (entry walk in the serial solver's reverse
  // order, so the per-lane subtraction chains match bitwise).
  for (std::int32_t i = rows - 1; i >= 0; --i) {
    const std::int64_t ik = static_cast<std::int64_t>(i) * L + OFF;
    for (int l = 0; l < Wr; ++l) {
      acc[l] = zs[ik + l];
      dii[l] = 0.0;
    }
    for (std::int32_t k = rp[i + 1] - 1; k >= rp[i] && ci[k] >= i; --k) {
      const std::int64_t vk = static_cast<std::int64_t>(k) * L + OFF;
      if (ci[k] == i) {
        for (int l = 0; l < Wr; ++l) dii[l] = v[vk + l];
      } else {
        const std::int64_t zk = static_cast<std::int64_t>(ci[k]) * L + OFF;
        for (int l = 0; l < Wr; ++l) acc[l] -= v[vk + l] * zs[zk + l];
      }
    }
    for (int l = 0; l < Wr; ++l) zs[ik + l] = acc[l] / dii[l];
  }
}

template <int CL>
void t_ilu_apply(std::int32_t rows, int lanes,
                 const std::int32_t* __restrict rp,
                 const std::int32_t* __restrict ci,
                 const double* __restrict v, const double* __restrict rs,
                 double* __restrict zs) {
  if constexpr (CL == 16) {
    t_ilu_apply_part<16, 8, 0>(rows, lanes, rp, ci, v, rs, zs);
    t_ilu_apply_part<16, 8, 8>(rows, lanes, rp, ci, v, rs, zs);
  } else {
    t_ilu_apply_part<CL, CL, 0>(rows, lanes, rp, ci, v, rs, zs);
  }
}

}  // namespace

void batched_residual_norms(const BatchedCsr& a, std::span<const double> x,
                            std::span<const double> b, std::span<double> r,
                            std::span<double> rr, std::span<double> bb) {
  const std::size_t total =
      static_cast<std::size_t>(a.rows()) * static_cast<std::size_t>(a.lanes());
  require(x.size() == total && b.size() == total && r.size() == total &&
              rr.size() == static_cast<std::size_t>(a.lanes()) &&
              bb.size() == rr.size(),
          "batched_residual_norms: size mismatch");
  b_residual_norms(a.row_ptr().data(), a.col_idx().data(), a.values().data(),
                   a.rows(), a.lanes(), x.data(), b.data(), r.data(),
                   rr.data(), bb.data());
}

// ---------------------------------------------------------------------------
// Batched preconditioners
// ---------------------------------------------------------------------------

BatchedJacobiPreconditioner::BatchedJacobiPreconditioner(const BatchedCsr& a)
    : lanes_(a.lanes()), rows_(a.rows()) {
  inv_diag_.assign(static_cast<std::size_t>(a.rows()) * lanes_, 0.0);
  cdiag_.assign(inv_diag_.size(), 0.0);  // compaction scratch, preallocated
  for (int l = 0; l < lanes_; ++l) refactor_lane(l, a);
}

void BatchedJacobiPreconditioner::compact_lanes(
    std::span<const int> lanes) const {
  cwidth_ = static_cast<int>(lanes.size());
  const double* __restrict src = inv_diag_.data();
  double* __restrict dst = cdiag_.data();
  const int L = lanes_;
  const int W = cwidth_;
  for (std::int32_t i = 0; i < rows_; ++i) {
    for (int c = 0; c < W; ++c) {
      dst[static_cast<std::int64_t>(i) * W + c] =
          src[static_cast<std::int64_t>(i) * L + lanes[c]];
    }
  }
}

void BatchedJacobiPreconditioner::apply_compacted(const double* r,
                                                  double* z) const {
  const double* __restrict ds = cdiag_.data();
  const std::size_t total =
      static_cast<std::size_t>(rows_) * static_cast<std::size_t>(cwidth_);
  for (std::size_t i = 0; i < total; ++i) z[i] = r[i] * ds[i];
}

void BatchedJacobiPreconditioner::refactor_lane(int lane,
                                                const BatchedCsr& a) {
  const auto rp = a.row_ptr();
  const auto ci = a.col_idx();
  const auto v = a.values();
  const int L = lanes_;
  for (std::int32_t r = 0; r < a.rows(); ++r) {
    double d = 0.0;
    for (std::int32_t k = rp[r]; k < rp[r + 1]; ++k) {
      if (ci[k] == r) d = v[static_cast<std::size_t>(k) * L + lane];
    }
    require(d != 0.0, "BatchedJacobiPreconditioner: zero diagonal entry");
    inv_diag_[static_cast<std::size_t>(r) * L + lane] = 1.0 / d;
  }
}

void BatchedJacobiPreconditioner::refactor_rows_lane(
    int lane, const BatchedCsr& a, std::span<const std::int32_t> rows) {
  const auto rp = a.row_ptr();
  const auto ci = a.col_idx();
  const auto v = a.values();
  const int L = lanes_;
  for (const std::int32_t r : rows) {
    double d = 0.0;
    for (std::int32_t k = rp[r]; k < rp[r + 1]; ++k) {
      if (ci[k] == r) d = v[static_cast<std::size_t>(k) * L + lane];
    }
    require(d != 0.0, "BatchedJacobiPreconditioner: zero diagonal entry");
    inv_diag_[static_cast<std::size_t>(r) * L + lane] = 1.0 / d;
  }
}

void BatchedJacobiPreconditioner::apply(std::span<const double> r,
                                        std::span<double> z) const {
  require(r.size() == inv_diag_.size() && z.size() == inv_diag_.size(),
          "BatchedJacobiPreconditioner: size mismatch");
  const double* __restrict rs = r.data();
  const double* __restrict ds = inv_diag_.data();
  double* __restrict zs = z.data();
  const std::size_t total = r.size();
  for (std::size_t i = 0; i < total; ++i) zs[i] = rs[i] * ds[i];
}

BatchedIlu0Preconditioner::BatchedIlu0Preconditioner(const BatchedCsr& a)
    : lanes_(a.lanes()), rows_(a.rows()) {
  row_ptr_.assign(a.row_ptr().begin(), a.row_ptr().end());
  col_idx_.assign(a.col_idx().begin(), a.col_idx().end());
  lu_.assign(static_cast<std::size_t>(a.nnz()) * lanes_, 0.0);
  clu_.assign(lu_.size(), 0.0);  // compaction scratch, preallocated
  diag_.assign(static_cast<std::size_t>(rows_), -1);
  for (std::int32_t r = 0; r < rows_; ++r) {
    for (std::int32_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) {
      if (col_idx_[k] == r) diag_[r] = k;
    }
    require(diag_[r] >= 0,
            "BatchedIlu0Preconditioner: missing diagonal entry");
  }
  for (int l = 0; l < lanes_; ++l) refactor_lane(l, a);
}

void BatchedIlu0Preconditioner::refactor_lane(int lane, const BatchedCsr& a) {
  require(a.nnz() * lanes_ == static_cast<std::int64_t>(lu_.size()) &&
              a.rows() == rows_,
          "BatchedIlu0Preconditioner::refactor_lane: pattern mismatch");
  const std::int32_t* __restrict rp = row_ptr_.data();
  const std::int32_t* __restrict ci = col_idx_.data();
  const double* __restrict av = a.values().data();
  double* __restrict v = lu_.data();
  const int L = lanes_;
  const std::int64_t nnz = a.nnz();
  for (std::int64_t k = 0; k < nnz; ++k) v[k * L + lane] = av[k * L + lane];

  // IKJ-variant ILU(0), identical per-lane arithmetic to the serial
  // Ilu0Preconditioner::refactor (the lane stride is the only change).
  for (std::int32_t i = 0; i < rows_; ++i) {
    for (std::int32_t kk = rp[i]; kk < rp[i + 1]; ++kk) {
      const std::int32_t k = ci[kk];
      if (k >= i) break;
      const double pivot = v[static_cast<std::int64_t>(diag_[k]) * L + lane];
      require(pivot != 0.0 && std::isfinite(pivot),
              "BatchedIlu0Preconditioner: zero pivot");
      const double lij = v[static_cast<std::int64_t>(kk) * L + lane] / pivot;
      v[static_cast<std::int64_t>(kk) * L + lane] = lij;
      std::int32_t pi = kk + 1;
      for (std::int32_t pk = diag_[k] + 1; pk < rp[k + 1]; ++pk) {
        const std::int32_t col = ci[pk];
        while (pi < rp[i + 1] && ci[pi] < col) ++pi;
        if (pi < rp[i + 1] && ci[pi] == col) {
          v[static_cast<std::int64_t>(pi) * L + lane] -=
              lij * v[static_cast<std::int64_t>(pk) * L + lane];
        }
      }
    }
  }
}

void BatchedIlu0Preconditioner::apply(std::span<const double> r,
                                      std::span<double> z) const {
  require(r.size() == static_cast<std::size_t>(rows_) * lanes_ &&
              z.size() == r.size(),
          "BatchedIlu0Preconditioner: size mismatch");
  dispatch_lanes(lanes_, [&](auto cl) {
    t_ilu_apply<cl.value>(rows_, lanes_, row_ptr_.data(), col_idx_.data(),
                          lu_.data(), r.data(), z.data());
  });
}

void BatchedIlu0Preconditioner::compact_lanes(
    std::span<const int> lanes) const {
  cwidth_ = static_cast<int>(lanes.size());
  const double* __restrict src = lu_.data();
  double* __restrict dst = clu_.data();
  const int L = lanes_;
  const int W = cwidth_;
  const std::int64_t nnz =
      static_cast<std::int64_t>(lu_.size()) / static_cast<std::int64_t>(L);
  for (std::int64_t k = 0; k < nnz; ++k) {
    for (int c = 0; c < W; ++c) dst[k * W + c] = src[k * L + lanes[c]];
  }
}

void BatchedIlu0Preconditioner::apply_compacted(const double* r,
                                                double* z) const {
  dispatch_lanes(cwidth_, [&](auto cl) {
    t_ilu_apply<cl.value>(rows_, cwidth_, row_ptr_.data(), col_idx_.data(),
                          clu_.data(), r, z);
  });
}

// ---------------------------------------------------------------------------
// batched_bicgstab
// ---------------------------------------------------------------------------

namespace {

/// Narrowest fused-kernel dispatch width that holds \p k live lanes
/// (every width in [1, 8] has a dedicated instantiation; above that the
/// next stop is the cache-blocked 16).
int compaction_width(int k) {
  return k <= 8 ? std::max(k, 1) : 16;
}

}  // namespace

int batched_bicgstab(const BatchedCsr& a, std::span<const double> b,
                     std::span<double> x, const BatchedPreconditioner& m,
                     std::span<const double> rel_tolerance,
                     std::int32_t max_iterations,
                     std::span<const std::uint8_t> active,
                     BatchedKrylovWorkspace& ws,
                     std::span<BatchedLaneResult> results) {
  const std::int32_t n = a.rows();
  const int L = a.lanes();
  const std::size_t total = static_cast<std::size_t>(n) * L;
  require(b.size() == total && x.size() == total &&
              rel_tolerance.size() == static_cast<std::size_t>(L) &&
              active.size() == static_cast<std::size_t>(L) &&
              results.size() == static_cast<std::size_t>(L),
          "batched_bicgstab: size mismatch");
  ws.resize(static_cast<std::size_t>(n), L, a.nnz());
  const std::int32_t* __restrict rp = a.row_ptr().data();
  const std::int32_t* __restrict ci = a.col_idx().data();

  // Everything below runs in SLOT space: slot s carries original lane
  // slot_lane[s] at the current kernel width W. Before the first
  // compaction W == L and slots are the identity; a compaction event
  // repacks the surviving lanes into slots [0, live) of the next
  // narrower dispatch width (padding slots stream garbage exactly like
  // finished lanes always did). x is viewed through xv (the caller's
  // buffer until the first compaction moves it into ws.cx) and the
  // matrix values through mv (a's interleaved values until the first
  // compaction gathers the survivors into ws.av).
  double rr[kMaxBatchLanes], bb[kMaxBatchLanes], bnorm[kMaxBatchLanes];
  double rho[kMaxBatchLanes], alpha[kMaxBatchLanes], omega[kMaxBatchLanes];
  double beta[kMaxBatchLanes], rho_new[kMaxBatchLanes], r0v[kMaxBatchLanes];
  double neg_alpha[kMaxBatchLanes], ss[kMaxBatchLanes];
  double tt[kMaxBatchLanes], ts[kMaxBatchLanes], ctol[kMaxBatchLanes];
  std::uint8_t running[kMaxBatchLanes];
  int slot_lane[kMaxBatchLanes];
  int n_running = 0;
  int W = L;
  int events = 0;
  bool compacted = false;
  double* xv = x.data();
  const double* mv = a.values().data();

  for (int l = 0; l < L; ++l) {
    slot_lane[l] = l;
    ctol[l] = rel_tolerance[l];
  }

  // Freeze slot s's current column of x into the snapshot buffer (which
  // stays at the caller's stride L, keyed by original lane).
  const auto snap_x = [&](int s) {
    const int lane = slot_lane[s];
    for (std::int32_t i = 0; i < n; ++i) {
      ws.snap[static_cast<std::size_t>(i) * L + lane] =
          xv[static_cast<std::size_t>(i) * W + s];
    }
  };
  // Mid-iteration convergence exit: the serial solver finishes with
  // axpy(alpha, ph, x) — freeze x + alpha*ph without disturbing x.
  const auto snap_x_plus_alpha_ph = [&](int s) {
    const int lane = slot_lane[s];
    for (std::int32_t i = 0; i < n; ++i) {
      const std::size_t k = static_cast<std::size_t>(i) * W + s;
      ws.snap[static_cast<std::size_t>(i) * L + lane] =
          xv[k] + alpha[s] * ws.ph[k];
    }
  };
  const auto finish = [&](int s, bool converged) {
    results[slot_lane[s]].converged = converged;
    running[s] = 0;
    --n_running;
  };
  const auto apply_m = [&](const std::vector<double>& src,
                           std::vector<double>& dst) {
    if (!compacted) {
      m.apply(src, dst);
    } else {
      m.apply_compacted(src.data(), dst.data());
    }
  };

  // Repack the surviving lanes' solver state to the next narrower
  // dispatch width. Whole lane columns move — no per-lane arithmetic —
  // so each lane's bitwise trajectory is unchanged; the per-iteration
  // kernels just stop paying for finished lanes.
  const auto compact = [&]() {
    const int nw = compaction_width(n_running);
    int keep[kMaxBatchLanes];
    int live = 0;
    for (int s = 0; s < W; ++s) {
      if (running[s]) keep[live++] = s;
    }
    // Scalars: keep[] ascends, so in-place moves read ahead of writes.
    for (int c = 0; c < live; ++c) {
      const int s = keep[c];
      rr[c] = rr[s];
      bnorm[c] = bnorm[s];
      rho[c] = rho[s];
      alpha[c] = alpha[s];
      omega[c] = omega[s];
      ctol[c] = ctol[s];
      slot_lane[c] = slot_lane[s];
      running[c] = 1;
    }
    for (int c = live; c < nw; ++c) {
      // Padding slots: finite scalars, slot 0's lane data — they stream
      // through the kernels like finished lanes always did and are never
      // read back.
      rr[c] = 0.0;
      bnorm[c] = 1.0;
      rho[c] = 1.0;
      alpha[c] = 1.0;
      omega[c] = 1.0;
      ctol[c] = 1.0;
      slot_lane[c] = slot_lane[0];
      running[c] = 0;
    }
    // State vectors that live across iterations: x (via cx), r, r0, p,
    // v. (s, t, ph, sh are rebuilt every iteration before use; b is only
    // read by the initial residual.) Row-by-row with a bounce buffer:
    // row i's writes land at or before its reads, ascending.
    double tmp[kMaxBatchLanes];
    const auto repack = [&](double* vec) {
      for (std::int32_t i = 0; i < n; ++i) {
        const std::int64_t src = static_cast<std::int64_t>(i) * W;
        const std::int64_t dst = static_cast<std::int64_t>(i) * nw;
        for (int c = 0; c < live; ++c) tmp[c] = vec[src + keep[c]];
        for (int c = 0; c < live; ++c) vec[dst + c] = tmp[c];
      }
    };
    if (!compacted) {
      for (std::int32_t i = 0; i < n; ++i) {
        const std::int64_t src = static_cast<std::int64_t>(i) * W;
        const std::int64_t dst = static_cast<std::int64_t>(i) * nw;
        for (int c = 0; c < live; ++c) ws.cx[dst + c] = xv[src + keep[c]];
      }
      xv = ws.cx.data();
    } else {
      repack(ws.cx.data());
    }
    repack(ws.r.data());
    repack(ws.r0.data());
    repack(ws.p.data());
    repack(ws.v.data());
    // Gather the survivors' matrix values (always from the original
    // interleave) and preconditioner factors at the new width.
    {
      const double* __restrict src = a.values().data();
      double* __restrict dst = ws.av.data();
      const std::int64_t nnz = a.nnz();
      for (std::int64_t k = 0; k < nnz; ++k) {
        for (int c = 0; c < nw; ++c) {
          dst[k * nw + c] = src[k * L + slot_lane[c]];
        }
      }
      mv = ws.av.data();
    }
    m.compact_lanes(std::span<const int>(slot_lane, static_cast<std::size_t>(nw)));
    compacted = true;
    W = nw;
  };

  b_residual_norms(rp, ci, mv, n, L, xv, b.data(), ws.r.data(), rr, bb);
  for (int l = 0; l < L; ++l) {
    results[l] = BatchedLaneResult{};
    running[l] = 0;
    if (!active[l]) continue;
    bnorm[l] = std::max(std::sqrt(bb[l]), 1e-300);
    results[l].residual_norm = std::sqrt(rr[l]);
    if (results[l].residual_norm / bnorm[l] <= rel_tolerance[l]) {
      results[l].converged = true;  // warm start was good enough
    } else {
      running[l] = 1;
      ++n_running;
    }
  }
  // Every warm start was good enough: x is untouched (only the residual
  // scratch was written), so skip the snapshot/restore machinery and the
  // workspace setup entirely — the common case of well-warm-started
  // lockstep batches.
  if (n_running == 0) return 0;
  for (int l = 0; l < L; ++l) {
    if (active[l] && !running[l]) snap_x(l);
  }

  std::copy(ws.r.begin(), ws.r.end(), ws.r0.begin());
  for (int l = 0; l < L; ++l) {
    rho[l] = 1.0;
    alpha[l] = 1.0;
    omega[l] = 1.0;
  }
  std::fill(ws.p.begin(), ws.p.end(), 0.0);
  std::fill(ws.v.begin(), ws.v.end(), 0.0);

  for (std::int32_t it = 1; it <= max_iterations && n_running > 0; ++it) {
    if (compaction_width(n_running) < W) {
      compact();
      ++events;
    }
    if (it == 1) {
      // rho_1 = dot(r0, r) with r0 == r: element-for-element the sum
      // residual_norms already accumulated in the same order — reuse it
      // (bitwise equal, one streaming pass saved).
      for (int s = 0; s < W; ++s) rho_new[s] = rr[s];
    } else {
      b_dot(static_cast<std::size_t>(n), W, ws.r0.data(), ws.r.data(),
            rho_new);
    }
    for (int s = 0; s < W; ++s) {
      if (running[s] && rho_new[s] == 0.0) {
        snap_x(s);  // breakdown; report non-convergence
        finish(s, false);
      }
    }
    if (n_running == 0) break;
    for (int s = 0; s < W; ++s) {
      beta[s] = (rho_new[s] / rho[s]) * (alpha[s] / omega[s]);
      rho[s] = rho_new[s];
    }
    b_p_update(static_cast<std::size_t>(n), W, ws.r.data(), beta, omega,
               ws.v.data(), ws.p.data());
    apply_m(ws.p, ws.ph);
    b_spmv_dot(rp, ci, mv, n, W, ws.ph.data(), ws.v.data(), ws.r0.data(),
               r0v);
    for (int s = 0; s < W; ++s) {
      if (running[s] && r0v[s] == 0.0) {
        snap_x(s);
        finish(s, false);
      }
    }
    if (n_running == 0) break;
    for (int s = 0; s < W; ++s) {
      alpha[s] = rho[s] / r0v[s];
      neg_alpha[s] = -alpha[s];
    }
    b_waxpby(static_cast<std::size_t>(n), W, ws.s.data(), ws.r.data(),
             neg_alpha, ws.v.data(), ss);
    for (int s = 0; s < W; ++s) {
      if (!running[s]) continue;
      results[slot_lane[s]].iterations = it;
      const double snorm = std::sqrt(ss[s]);
      if (snorm / bnorm[s] <= ctol[s]) {
        // Serial exit point "s is small": x += alpha * ph. (The serial
        // solver additionally re-derives residual_norm with a reporting
        // SpMV; the batched path reports ||s|| instead — x and the
        // iteration count are unaffected.)
        snap_x_plus_alpha_ph(s);
        results[slot_lane[s]].residual_norm = snorm;
        finish(s, true);
      }
    }
    if (n_running == 0) break;
    apply_m(ws.s, ws.sh);
    b_spmv_dot2(rp, ci, mv, n, W, ws.sh.data(), ws.t.data(), ws.s.data(), tt,
                ts);
    for (int s = 0; s < W; ++s) {
      if (running[s] && tt[s] == 0.0) {
        snap_x(s);
        finish(s, false);
      }
    }
    if (n_running == 0) break;
    for (int s = 0; s < W; ++s) omega[s] = ts[s] / tt[s];
    b_final_update(static_cast<std::size_t>(n), W, alpha, ws.ph.data(), omega,
                   ws.sh.data(), ws.s.data(), ws.t.data(), xv, ws.r.data(),
                   rr);
    for (int s = 0; s < W; ++s) {
      if (!running[s]) continue;
      const double rnorm = std::sqrt(rr[s]);
      results[slot_lane[s]].residual_norm = rnorm;
      if (rnorm / bnorm[s] <= ctol[s]) {
        snap_x(s);
        finish(s, true);
      } else if (omega[s] == 0.0) {
        snap_x(s);  // stagnation breakdown, same as the serial break
        finish(s, false);
      }
    }
  }

  // Iteration budget exhausted with lanes still running: their current
  // iterate is the answer the serial solver would have returned too.
  for (int s = 0; s < W; ++s) {
    if (running[s]) {
      snap_x(s);
      finish(s, false);
    }
  }
  // Restore every active lane's frozen solution (later kernels kept
  // streaming garbage through finished lanes' slots; compaction may have
  // moved the live columns out of x entirely). One fused pass.
  {
    double* __restrict xs = x.data();
    const double* __restrict snap = ws.snap.data();
    for (std::int32_t i = 0; i < n; ++i) {
      const std::size_t k = static_cast<std::size_t>(i) * L;
      for (int l = 0; l < L; ++l) {
        if (active[l]) xs[k + l] = snap[k + l];
      }
    }
  }
  return events;
}

// ---------------------------------------------------------------------------
// BatchedBicgstabSolver
// ---------------------------------------------------------------------------

BatchedBicgstabSolver::BatchedBicgstabSolver(SolverKind kind,
                                             const BatchedCsr& a)
    : kind_(kind) {
  switch (kind) {
    case SolverKind::kBicgstabIlu0:
      precond_ = std::make_unique<BatchedIlu0Preconditioner>(a);
      name_ = "batched-bicgstab+ilu0";
      break;
    case SolverKind::kBicgstabJacobi:
      precond_ = std::make_unique<BatchedJacobiPreconditioner>(a);
      name_ = "batched-bicgstab+jacobi";
      break;
    default:
      throw InvalidArgument(
          "BatchedBicgstabSolver: kind must be an iterative BiCGSTAB "
          "strategy");
  }
  const int L = a.lanes();
  lanes_.resize(static_cast<std::size_t>(L));
  for (LaneState& st : lanes_) {
    st.row_dirty.assign(static_cast<std::size_t>(a.rows()), 0);
  }
  tol_.assign(static_cast<std::size_t>(L), 1e-12);
  warm_save_.assign(static_cast<std::size_t>(a.rows()) * L, 0.0);
  results_.resize(static_cast<std::size_t>(L));
  retry_.assign(static_cast<std::size_t>(L), 0);
  ws_.resize(static_cast<std::size_t>(a.rows()), L, a.nnz());
}

void BatchedBicgstabSolver::set_refresh_policy(int lane,
                                               const RefreshPolicy& policy) {
  lanes_[static_cast<std::size_t>(lane)].policy = policy;
}

void BatchedBicgstabSolver::set_tolerance(int lane, double rel_tolerance) {
  lanes_[static_cast<std::size_t>(lane)].rel_tolerance = rel_tolerance;
  tol_[static_cast<std::size_t>(lane)] = rel_tolerance;
}

void BatchedBicgstabSolver::refactor_lane_now(int lane, const BatchedCsr& a) {
  precond_->refactor_lane(lane, a);
  LaneState& st = lanes_[static_cast<std::size_t>(lane)];
  ++st.stats.refactors;
  st.stats.pending_dirty_fraction = 0.0;
  if (st.dirty_rows > 0) {
    std::fill(st.row_dirty.begin(), st.row_dirty.end(), std::uint8_t{0});
    st.dirty_rows = 0;
  }
  st.fresh_iterations = -1;  // re-baseline on the next clean solve
}

void BatchedBicgstabSolver::update_lane_values(int lane, const BatchedCsr& a,
                                               const ValueUpdate& update) {
  LaneState& st = lanes_[static_cast<std::size_t>(lane)];
  if (update.rows.empty() && update.dirty_fraction == 0.0) return;
  if (!st.policy.lazy || update.rows.empty()) {
    refactor_lane_now(lane, a);
    return;
  }
  if (kind_ == SolverKind::kBicgstabJacobi) {
    // The inverse diagonal over the dirty rows IS the exact refresh.
    precond_->refactor_rows_lane(lane, a, update.rows);
    ++st.stats.partial_refactors;
    return;
  }
  // ILU(0): leave the lane's factors stale and track dirtiness, exactly
  // like the serial BicgstabSolver.
  ++st.stats.deferred_updates;
  for (const std::int32_t r : update.rows) {
    if (!st.row_dirty[static_cast<std::size_t>(r)]) {
      st.row_dirty[static_cast<std::size_t>(r)] = 1;
      ++st.dirty_rows;
    }
  }
  st.stats.pending_dirty_fraction =
      static_cast<double>(st.dirty_rows) / static_cast<double>(a.rows());
  if (st.stats.pending_dirty_fraction > st.policy.max_dirty_fraction) {
    refactor_lane_now(lane, a);
  }
}

void BatchedBicgstabSolver::solve(const BatchedCsr& a,
                                  std::span<const double> b,
                                  std::span<double> x,
                                  std::span<const std::uint8_t> active,
                                  std::span<std::uint8_t> failed) {
  const int L = lanes();
  const std::int32_t n = a.rows();
  require(active.size() == static_cast<std::size_t>(L) &&
              failed.size() == static_cast<std::size_t>(L),
          "BatchedBicgstabSolver::solve: mask size mismatch");
  std::fill(failed.begin(), failed.end(), std::uint8_t{0});

  // Save stale lanes' warm starts so a diverged stale attempt (which
  // mutates x, possibly to NaN) can be retried cleanly.
  std::uint8_t stale[kMaxBatchLanes] = {};
  for (int l = 0; l < L; ++l) {
    if (active[l] &&
        lanes_[static_cast<std::size_t>(l)].stats.pending_dirty_fraction >
            0.0) {
      stale[l] = 1;
      for (std::int32_t i = 0; i < n; ++i) {
        const std::size_t k = static_cast<std::size_t>(i) * L + l;
        warm_save_[k] = x[k];
      }
    }
  }

  compaction_events_ += static_cast<std::uint64_t>(
      batched_bicgstab(a, b, x, *precond_, tol_, 5000, active, ws_, results_));

  // Stale-factor retry, per lane: refresh, restore the warm start, and
  // give the failed lanes one more batched pass together.
  bool any_retry = false;
  std::fill(retry_.begin(), retry_.end(), std::uint8_t{0});
  for (int l = 0; l < L; ++l) {
    if (!active[l] || results_[l].converged || !stale[l]) continue;
    try {
      refactor_lane_now(l, a);
    } catch (...) {
      // Refactor blew up on this lane's values (zero pivot); fail the
      // lane alone — its batchmates' solves are already committed.
      failed[l] = 1;
      continue;
    }
    ++lanes_[static_cast<std::size_t>(l)].stats.retries;
    for (std::int32_t i = 0; i < n; ++i) {
      const std::size_t k = static_cast<std::size_t>(i) * L + l;
      x[k] = warm_save_[k];
    }
    retry_[static_cast<std::size_t>(l)] = 1;
    any_retry = true;
  }
  if (any_retry) {
    // The retry pass streams every lane's x column through the fused
    // kernels again (lanes never mix, but finished batchmates' columns
    // do get overwritten and only retried lanes are restored from the
    // snapshot) — save the non-retried lanes' committed solutions and
    // put them back afterwards.
    if (x_save_.size() != x.size()) x_save_.assign(x.size(), 0.0);
    std::copy(x.begin(), x.end(), x_save_.begin());
    std::array<BatchedLaneResult, kMaxBatchLanes> retry_results;
    compaction_events_ += static_cast<std::uint64_t>(batched_bicgstab(
        a, b, x, *precond_, tol_, 5000, retry_, ws_,
        std::span<BatchedLaneResult>(retry_results.data(),
                                     static_cast<std::size_t>(L))));
    for (std::int32_t i = 0; i < n; ++i) {
      const std::size_t k = static_cast<std::size_t>(i) * L;
      for (int l = 0; l < L; ++l) {
        if (!retry_[static_cast<std::size_t>(l)]) x[k + l] = x_save_[k + l];
      }
    }
    for (int l = 0; l < L; ++l) {
      if (retry_[static_cast<std::size_t>(l)]) {
        results_[l] = retry_results[static_cast<std::size_t>(l)];
      }
    }
  }

  for (int l = 0; l < L; ++l) {
    if (!active[l]) continue;
    LaneState& st = lanes_[static_cast<std::size_t>(l)];
    if (!results_[l].converged) {
      failed[l] = 1;  // serial path: NumericalError
      continue;
    }
    ++st.stats.solves;
    st.stats.iterations += static_cast<std::uint64_t>(results_[l].iterations);
    st.stats.last_iterations = results_[l].iterations;
    if (st.fresh_iterations < 0 && st.stats.pending_dirty_fraction == 0.0) {
      st.fresh_iterations = results_[l].iterations;
    }
    if (st.stats.pending_dirty_fraction > 0.0) {
      const double limit =
          st.policy.max_iteration_growth *
              std::max(std::int32_t{1}, st.fresh_iterations) +
          st.policy.iteration_slack;
      if (static_cast<double>(results_[l].iterations) > limit) {
        try {
          refactor_lane_now(l, a);
        } catch (...) {
          // The serial path would throw out of solve() here; fail only
          // this lane (its solution this step was still committed).
          failed[l] = 1;
        }
      }
    }
  }
}

}  // namespace tac3d::sparse
