#pragma once
/// \file batched.hpp
/// \brief Multi-lane (batched) sparse storage, kernels and Krylov solver:
/// K systems that share one sparsity pattern advanced per matrix
/// traversal.
///
/// A design-space sweep steps many scenarios whose matrices differ only
/// in VALUES (same stack/grid -> same CSR pattern; flow modulation
/// rewrites advection entries per lane). Solving them one at a time is
/// memory-bound on index/value traffic and latency-bound on each row's
/// sequential accumulation chain. BatchedCsr stores the K value sets
/// lane-interleaved (entry k of lane l at values[k*L + l]; vectors at
/// x[i*L + l]), so one walk of row_ptr/col_idx feeds K independent
/// accumulation chains that the compiler vectorizes across lanes.
///
/// Bitwise contract: every batched kernel performs, per lane, exactly
/// the floating-point operations of its serial counterpart in
/// sparse/kernels.cpp / preconditioner.cpp, in the same order (the lane
/// chains never mix). batched_bicgstab keeps per-lane rho/alpha/omega
/// and convergence state, so lane l of a batched solve converges after
/// the same iterations to the same bits as a serial bicgstab() on that
/// lane alone. A converged (or broken-down) lane's solution is frozen in
/// a snapshot while its slot keeps streaming through the SIMD lanes —
/// it stops contributing iterations (the loop ends when every live lane
/// is finished) without forcing divergent control flow into the fused
/// kernels.

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "sparse/csr.hpp"
#include "sparse/refresh.hpp"
#include "sparse/solver.hpp"

namespace tac3d::sparse {

/// Hard cap on lanes per batch: keeps the per-row accumulator arrays in
/// registers/stack and bounds interleaved buffer sizes.
inline constexpr int kMaxBatchLanes = 16;

/// One shared CSR pattern with lane-interleaved values for K systems.
class BatchedCsr {
 public:
  /// Copy \p pattern's structure; every lane's values start as \p
  /// pattern's values (load_lane overwrites them per lane).
  BatchedCsr(const CsrMatrix& pattern, int lanes);

  int lanes() const { return lanes_; }
  std::int32_t rows() const { return rows_; }
  std::int64_t nnz() const { return nnz_; }

  std::span<const std::int32_t> row_ptr() const { return row_ptr_; }
  std::span<const std::int32_t> col_idx() const { return col_idx_; }
  /// Interleaved values: entry k of lane l at values()[k*lanes() + l].
  std::span<const double> values() const { return values_; }
  std::span<double> values_mut() { return values_; }

  /// Overwrite lane \p lane's values with \p a's (same pattern required;
  /// verified by nnz/rows only — callers group by pattern key).
  void load_lane(int lane, const CsrMatrix& a);

  /// Overwrite only \p rows of lane \p lane from \p a — the incremental
  /// form for flow updates, which dirty ~a tenth of the rows; reloading
  /// the whole lane every step would cost more than the update itself.
  void load_lane_rows(int lane, const CsrMatrix& a,
                      std::span<const std::int32_t> rows);

  /// Does \p a have exactly this pattern (row_ptr and col_idx equal)?
  bool matches(const CsrMatrix& a) const;

 private:
  std::int32_t rows_ = 0;
  std::int64_t nnz_ = 0;
  int lanes_ = 1;
  std::vector<std::int32_t> row_ptr_;
  std::vector<std::int32_t> col_idx_;
  std::vector<double> values_;
};

/// dst[i*lanes + lane] = src[i] — pack a contiguous lane vector into an
/// interleaved multi-lane buffer.
void pack_lane(std::span<double> dst, int lanes, int lane,
               std::span<const double> src);

/// dst[i] = src[i*lanes + lane] — unpack one lane out of an interleaved
/// buffer.
void unpack_lane(std::span<const double> src, int lanes, int lane,
                 std::span<double> dst);

/// Fused multi-lane pack: dst[i*lanes + l] = srcs[l][i] for every lane
/// with srcs[l] != nullptr (null lanes keep their current contents).
/// One pass over dst — at wide lanes this touches each cache line once
/// instead of once per lane.
void pack_lanes(std::span<double> dst, int lanes,
                const double* const* srcs, std::size_t n);

/// Fused multi-lane unpack: dsts[l][i] = src[i*lanes + l] for every
/// lane with dsts[l] != nullptr.
void unpack_lanes(std::span<const double> src, int lanes,
                  double* const* dsts, std::size_t n);

/// Per-lane outcome of a batched Krylov solve (mirrors IterativeResult).
struct BatchedLaneResult {
  bool converged = false;
  std::int32_t iterations = 0;
  double residual_norm = 0.0;  ///< per-lane ||r||_2 at its own exit point
};

/// Preallocated interleaved scratch for batched_bicgstab (the batched
/// counterpart of KrylovWorkspace). resize() is a no-op when sizes
/// already match.
class BatchedKrylovWorkspace {
 public:
  void resize(std::size_t n, int lanes, std::int64_t nnz = 0);

  std::vector<double> r, r0, p, v, s, t, ph, sh;
  /// Snapshot buffer: a finished lane's solution frozen while its slot
  /// keeps churning through the fused kernels.
  std::vector<double> snap;
  /// Mid-solve lane-compaction scratch (see batched_bicgstab): the
  /// surviving lanes' x columns and matrix values gathered at the
  /// compacted width.
  std::vector<double> cx, av;

 private:
  std::size_t n_ = 0;
  int lanes_ = 0;
  std::int64_t nnz_ = 0;
};

/// r = b - A x for every lane in one traversal of the shared pattern;
/// rr[l] = ||r_l||², bb[l] = ||b_l||². Per-lane arithmetic identical to
/// sparse::residual_norms — the batched transient driver uses it to run
/// all lanes' warm-start guard residuals per traversal.
void batched_residual_norms(const BatchedCsr& a, std::span<const double> x,
                            std::span<const double> b, std::span<double> r,
                            std::span<double> rr, std::span<double> bb);

/// Preconditioner over lane-interleaved storage. apply() serves all
/// lanes in one pattern walk; refactoring is per lane so each lane's
/// refresh timing can mirror an independent serial solver's exactly.
class BatchedPreconditioner {
 public:
  virtual ~BatchedPreconditioner() = default;
  /// z = M^{-1} r for every lane (interleaved vectors).
  virtual void apply(std::span<const double> r, std::span<double> z) const = 0;
  /// Rebuild lane \p lane's factors from its values in \p a.
  virtual void refactor_lane(int lane, const BatchedCsr& a) = 0;
  /// Refresh only \p rows of lane \p lane (exact for Jacobi; others fall
  /// back to a full lane refactor).
  virtual void refactor_rows_lane(int lane, const BatchedCsr& a,
                                  std::span<const std::int32_t> rows) {
    (void)rows;
    refactor_lane(lane, a);
  }
  /// Mid-solve lane compaction support: gather the listed lanes' factors
  /// into an internal view of width lanes.size() so apply_compacted()
  /// serves only the surviving lanes. const because it only rewrites
  /// mutable scratch — the factors themselves are untouched.
  virtual void compact_lanes(std::span<const int> lanes) const = 0;
  /// z = M^{-1} r over the compacted view built by the last
  /// compact_lanes() call (interleaved at that width).
  virtual void apply_compacted(const double* r, double* z) const = 0;
};

/// Lane-interleaved Jacobi: inverse diagonals, refreshed per lane.
class BatchedJacobiPreconditioner final : public BatchedPreconditioner {
 public:
  explicit BatchedJacobiPreconditioner(const BatchedCsr& a);
  void apply(std::span<const double> r, std::span<double> z) const override;
  void refactor_lane(int lane, const BatchedCsr& a) override;
  void refactor_rows_lane(int lane, const BatchedCsr& a,
                          std::span<const std::int32_t> rows) override;
  void compact_lanes(std::span<const int> lanes) const override;
  void apply_compacted(const double* r, double* z) const override;

 private:
  int lanes_;
  std::int32_t rows_;
  std::vector<double> inv_diag_;  ///< interleaved [row*lanes + lane]
  mutable std::vector<double> cdiag_;  ///< compacted-view scratch
  mutable int cwidth_ = 0;
};

/// Lane-interleaved ILU(0): factors on the shared pattern, triangular
/// solves batched across lanes (the row-sequential dependency is within
/// a lane; lanes are independent, so each row's update runs lane-wide).
class BatchedIlu0Preconditioner final : public BatchedPreconditioner {
 public:
  explicit BatchedIlu0Preconditioner(const BatchedCsr& a);
  void apply(std::span<const double> r, std::span<double> z) const override;
  void refactor_lane(int lane, const BatchedCsr& a) override;
  void compact_lanes(std::span<const int> lanes) const override;
  void apply_compacted(const double* r, double* z) const override;

 private:
  int lanes_;
  std::int32_t rows_;
  std::vector<std::int32_t> row_ptr_, col_idx_, diag_;
  std::vector<double> lu_;  ///< interleaved factors [k*lanes + lane]
  mutable std::vector<double> clu_;  ///< compacted-view scratch
  mutable int cwidth_ = 0;
};

/// Preconditioned BiCGSTAB over a BatchedCsr: per-lane scalars,
/// tolerances and convergence masking. Lanes with active[l] == 0 are
/// never read or written back (their interleaved slots stream garbage
/// through the kernels, which is harmless — lanes never mix). On exit
/// every active lane's column of \p x holds its own solution (or its
/// last iterate on breakdown/non-convergence), and results[l] mirrors
/// what a serial bicgstab() on that lane would have reported — same
/// iteration count, same bits in x. (Only residual_norm may differ on
/// the mid-iteration convergence exit, where the serial solver spends an
/// extra reporting SpMV that the batched path skips.)
///
/// Mid-solve lane compaction: whenever the number of still-running lanes
/// drops below the current kernel width, the surviving lanes' state
/// vectors, matrix values and preconditioner factors are repacked to the
/// next narrower dispatch width (… 16 -> 8 -> … -> 1), so per-iteration
/// cost tracks the number of live lanes instead of the batch width —
/// staggered-convergence batches stop paying the slowest lane's width.
/// The repack moves whole lane columns (per-lane arithmetic untouched),
/// so the bitwise contract above is unaffected.
///
/// \returns the number of compaction events performed.
int batched_bicgstab(const BatchedCsr& a, std::span<const double> b,
                     std::span<double> x, const BatchedPreconditioner& m,
                     std::span<const double> rel_tolerance,
                     std::int32_t max_iterations,
                     std::span<const std::uint8_t> active,
                     BatchedKrylovWorkspace& ws,
                     std::span<BatchedLaneResult> results);

/// The batched counterpart of the BicgstabSolver strategy in solver.cpp:
/// per-lane RefreshPolicy state (dirty-row tracking, iteration-
/// degradation triggers, the stale retry) driving one shared batched
/// solve. Lane l's refresh decisions and solve arithmetic are bitwise
/// those of an independent serial BicgstabSolver fed the same sequence
/// of update_values/solve calls.
class BatchedBicgstabSolver {
 public:
  /// \p kind selects the preconditioner (kBicgstabIlu0 or
  /// kBicgstabJacobi; anything else throws). Factors are built from the
  /// lane values currently loaded in \p a.
  BatchedBicgstabSolver(SolverKind kind, const BatchedCsr& a);

  int lanes() const { return static_cast<int>(lanes_.size()); }

  void set_refresh_policy(int lane, const RefreshPolicy& policy);
  void set_tolerance(int lane, double rel_tolerance);

  /// Lane \p lane's values in \p a changed in \p update.rows (mirror of
  /// LinearSolver::update_values(a, update) for one lane).
  void update_lane_values(int lane, const BatchedCsr& a,
                          const ValueUpdate& update);

  /// Solve every lane with active[l] != 0; failed[l] is set for lanes
  /// that did not converge even after the stale-factor retry (serial
  /// path: NumericalError) — their x columns hold the last iterate.
  void solve(const BatchedCsr& a, std::span<const double> b,
             std::span<double> x, std::span<const std::uint8_t> active,
             std::span<std::uint8_t> failed);

  const SolverStats& lane_stats(int lane) const {
    return lanes_[static_cast<std::size_t>(lane)].stats;
  }

  /// Cumulative mid-solve lane-compaction events across all solves (see
  /// batched_bicgstab) — sweep telemetry.
  std::uint64_t compaction_events() const { return compaction_events_; }

  const char* name() const { return name_; }

 private:
  struct LaneState {
    RefreshPolicy policy;
    double rel_tolerance = 1e-12;
    SolverStats stats;
    std::vector<std::uint8_t> row_dirty;
    std::int32_t dirty_rows = 0;
    std::int32_t fresh_iterations = -1;
  };

  void refactor_lane_now(int lane, const BatchedCsr& a);

  SolverKind kind_;
  std::unique_ptr<BatchedPreconditioner> precond_;
  BatchedKrylovWorkspace ws_;
  std::vector<LaneState> lanes_;
  std::vector<double> tol_;        ///< per-lane tolerances for the solve
  std::vector<double> warm_save_;  ///< interleaved warm starts (stale retry)
  std::vector<double> x_save_;     ///< batchmates' solutions across a retry
  std::vector<BatchedLaneResult> results_;
  std::vector<std::uint8_t> retry_;
  std::uint64_t compaction_events_ = 0;
  const char* name_;
};

}  // namespace tac3d::sparse
